// Figure 7 — mean turnaround time (decider's wait for a pool/server
// response) versus decider frequency at 1056 nodes (§4.5.2).
//
// Expected shape: SLURM's mean turnaround climbs toward a ceiling and
// levels off (slightly declining) once the server starts dropping
// packets; its standard deviation grows with frequency. Penelope stays
// flat and sub-millisecond throughout.
//
// Options: nodes=1056 freqs=... reps=3 quick=1 seed=S
#include "cluster/scale.hpp"

#include "bench_common.hpp"

using namespace penelope;
using namespace penelope::bench;

int main(int argc, char** argv) {
  const std::string usage =
      "bench_turnaround_freq [nodes=1056] [freqs=...] [reps=3] [quick=1] "
      "[seed=S]";
  common::Config config = parse_or_die(argc, argv, usage);
  bool quick = config.get_bool("quick", false);
  int nodes = config.get_int("nodes", quick ? 128 : 1056);
  std::vector<double> freqs = config.get_double_list(
      "freqs", quick ? std::vector<double>{1.0, 8.0, 20.0}
                     : std::vector<double>{0.5, 1.0, 2.0, 4.0, 8.0, 12.0,
                                           16.0, 20.0, 24.0, 32.0});
  int reps = config.get_int("reps", quick ? 1 : 3);
  auto seed = static_cast<std::uint64_t>(config.get_int("seed", 42));
  reject_unused(config, usage);

  common::Table fig7({"freq_hz", "slurm_mean_ms", "slurm_stddev_ms",
                      "penelope_mean_ms", "penelope_stddev_ms",
                      "slurm_drops"});

  for (double freq : freqs) {
    common::OnlineStats slurm_mean;
    common::OnlineStats slurm_sd;
    common::OnlineStats pen_mean;
    common::OnlineStats pen_sd;
    std::uint64_t drops = 0;
    for (int r = 0; r < reps; ++r) {
      cluster::ScaleConfig sc;
      sc.n_nodes = nodes;
      sc.frequency_hz = freq;
      sc.seed = seed + static_cast<std::uint64_t>(r);
      sc.window_seconds = 30.0;  // turnaround needs samples, not t100

      sc.manager = cluster::ManagerKind::kCentral;
      cluster::ScaleResult slurm = run_scale_experiment(sc);
      sc.manager = cluster::ManagerKind::kPenelope;
      cluster::ScaleResult pen = run_scale_experiment(sc);

      slurm_mean.add(slurm.mean_turnaround_ms);
      slurm_sd.add(slurm.stddev_turnaround_ms);
      pen_mean.add(pen.mean_turnaround_ms);
      pen_sd.add(pen.stddev_turnaround_ms);
      drops += slurm.server_drops;
    }
    fig7.add_row({common::fmt_double(freq, 1),
                  common::fmt_double(slurm_mean.mean(), 3),
                  common::fmt_double(slurm_sd.mean(), 3),
                  common::fmt_double(pen_mean.mean(), 3),
                  common::fmt_double(pen_sd.mean(), 3),
                  std::to_string(drops)});
  }

  emit(fig7, "fig7_turnaround_vs_freq",
       "Figure 7: mean turnaround time vs decider frequency "
       "(paper: SLURM approaches a ceiling then levels off at the packet-"
       "drop point; Penelope flat)");
  return 0;
}
