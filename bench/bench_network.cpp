// Message-fabric microbenchmark: send→deliver throughput (ping-pong
// round trip) and fan-out burst, plus a steady-state allocation check.
//
// Intentionally self-contained (no google-benchmark) and written
// against the API surface both the pre-variant and post-variant trees
// share, so the exact same source builds in a seed worktree for the
// interleaved A/B comparison documented in BENCH_net.json (method
// follows BENCH_sim.json: same-session alternating runs, medians per
// side).
//
// Modes:
//   bench_network                 throughput numbers (items_per_second)
//   bench_network --min-time=S    longer measurement window
//   bench_network --alloc-check   assert zero heap allocations on the
//                                 warm message path (ctest: net.zero_alloc)
//   bench_network --jobs=N        run the same worlds through the sharded
//                                 engine's staged-send path (N shards);
//                                 with --alloc-check this is the sharded
//                                 zero-alloc gate (ctest: net.zero_alloc_sharded)
//
// The allocation check counts allocator round trips via the shared
// counting operator new/delete hooks (bench/counting_new.hpp, also the
// backbone of telemetry.ZeroOverheadGate): after a warm-up phase (slab,
// free lists, and event heap reach their high-water marks), tens of
// thousands of further send→deliver rounds must not touch the
// allocator at all.
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>

#include "counting_new.hpp"
#include "core/protocol.hpp"
#include "net/network.hpp"
#include "sim/sharded.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace penelope;

/// Ping-pong: node 0 sends a request, node 1 answers with a grant; one
/// round = 2 sends + 2 deliveries through the full latency machinery.
struct RoundTripWorld {
  sim::Simulator sim;
  net::Network net{sim, net::NetworkConfig{}};
  std::uint64_t delivered = 0;

  RoundTripWorld() {
    net.register_endpoint(1, [this](const net::Message& m) {
      ++delivered;
      net.send(1, 0, core::PowerGrant{42.0, m.id, -1});
    });
    net.register_endpoint(0,
                          [this](const net::Message&) { ++delivered; });
  }

  std::size_t round() {
    net.send(0, 1, core::PowerRequest{false, 42.0, 1});
    sim.run();
    return 2;
  }
};

/// Fan-out burst: one hub floods 64 peers in a single event-queue
/// drain — the completion-burst traffic shape of the scale study.
struct FanoutWorld {
  static constexpr int kPeers = 64;
  sim::Simulator sim;
  net::Network net{sim, net::NetworkConfig{}};
  std::uint64_t delivered = 0;
  std::uint64_t txn = 0;

  FanoutWorld() {
    for (int i = 0; i < kPeers; ++i) {
      net.register_endpoint(
          i + 1, [this](const net::Message&) { ++delivered; });
    }
  }

  std::size_t round() {
    for (int i = 0; i < kPeers; ++i)
      net.send(0, i + 1, core::PowerPush{1.0, ++txn});
    sim.run();
    return kPeers;
  }
};

/// The ping-pong through the sharded engine: both sends cross the
/// staged-flush barrier path (node 0 on shard 0, node 1 on the last
/// shard), so a round exercises staging, the canonical sort, and the
/// window machinery — the path that must also be allocation-free once
/// staging buffers, slabs, and heaps reach their high-water marks.
struct ShardedRoundTripWorld {
  static int jobs;  // set from --jobs before construction

  static net::NetworkConfig make_cfg() {
    net::NetworkConfig cfg;
    cfg.latency.floor = common::from_millis(0.05);  // 50 us windows
    return cfg;
  }

  net::NetworkConfig cfg = make_cfg();
  sim::ShardedSimulator engine{jobs, cfg.latency.effective_floor()};
  net::Network net{engine, cfg, shard_map(2)};
  std::uint64_t delivered = 0;
  common::Ticks horizon = 0;

  static std::vector<int> shard_map(int nodes) {
    std::vector<int> map(static_cast<std::size_t>(nodes));
    for (int i = 0; i < nodes; ++i) map[static_cast<std::size_t>(i)] =
        i * jobs / nodes;
    return map;
  }

  ShardedRoundTripWorld() {
    net.register_endpoint(1, [this](const net::Message& m) {
      ++delivered;
      net.send(1, 0, core::PowerGrant{42.0, m.id, -1});
    });
    net.register_endpoint(0,
                          [this](const net::Message&) { ++delivered; });
  }

  std::size_t round() {
    net.send(0, 1, core::PowerRequest{false, 42.0, 1});
    horizon += common::from_millis(1.0);
    engine.run_until(horizon);
    return 2;
  }
};
int ShardedRoundTripWorld::jobs = 2;

/// Fan-out through the sharded engine: the hub's burst is staged in one
/// context, flushed once, and delivered by every shard in parallel
/// windows.
struct ShardedFanoutWorld {
  static constexpr int kPeers = 64;
  net::NetworkConfig cfg = ShardedRoundTripWorld::make_cfg();
  sim::ShardedSimulator engine{ShardedRoundTripWorld::jobs,
                               cfg.latency.effective_floor()};
  net::Network net{engine, cfg,
                   ShardedRoundTripWorld::shard_map(kPeers + 1)};
  std::uint64_t delivered = 0;
  std::uint64_t txn = 0;
  common::Ticks horizon = 0;

  ShardedFanoutWorld() {
    for (int i = 0; i < kPeers; ++i) {
      net.register_endpoint(
          i + 1, [this](const net::Message&) { ++delivered; });
    }
  }

  std::size_t round() {
    for (int i = 0; i < kPeers; ++i)
      net.send(0, i + 1, core::PowerPush{1.0, ++txn});
    horizon += common::from_millis(1.0);
    engine.run_until(horizon);
    return kPeers;
  }
};

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

template <typename World>
double items_per_second(double min_seconds) {
  World world;
  for (int i = 0; i < 500; ++i) world.round();  // warm-up
  std::uint64_t items = 0;
  auto start = std::chrono::steady_clock::now();
  double elapsed = 0.0;
  do {
    for (int i = 0; i < 500; ++i) items += world.round();
    elapsed = seconds_since(start);
  } while (elapsed < min_seconds);
  return static_cast<double>(items) / elapsed;
}

template <typename World>
int alloc_check(const char* name, int warm_rounds, int measured_rounds) {
  World world;
  for (int i = 0; i < warm_rounds; ++i) world.round();
  std::uint64_t before = pen_alloc_gate::allocs_now();
  std::size_t items = 0;
  for (int i = 0; i < measured_rounds; ++i) items += world.round();
  std::uint64_t delta =
      pen_alloc_gate::allocs_now() - before;
  std::printf("%-10s %" PRIu64
              " heap allocations across %d rounds (%zu messages): %s\n",
              name, delta, measured_rounds, items,
              delta == 0 ? "PASS" : "FAIL");
  return delta == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool check = false;
  int jobs = 0;
  double min_seconds = 0.5;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--alloc-check") == 0) {
      check = true;
    } else if (std::strncmp(argv[i], "--min-time=", 11) == 0) {
      min_seconds = std::atof(argv[i] + 11);
    } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      jobs = std::atoi(argv[i] + 7);
    } else {
      std::fprintf(stderr,
                   "usage: bench_network [--alloc-check] [--jobs=N] "
                   "[--min-time=SECONDS]\n");
      return 2;
    }
  }
  if (jobs < 0 || jobs == 1) {
    std::fprintf(stderr, "--jobs wants N >= 2 shards\n");
    return 2;
  }
  if (jobs > 0) ShardedRoundTripWorld::jobs = jobs;

  if (check) {
    int failures = 0;
    if (jobs > 0) {
      failures +=
          alloc_check<ShardedRoundTripWorld>("sh.roundtrip", 2000, 20000);
      failures += alloc_check<ShardedFanoutWorld>("sh.fanout64", 200, 2000);
    } else {
      failures += alloc_check<RoundTripWorld>("roundtrip", 2000, 20000);
      failures += alloc_check<FanoutWorld>("fanout64", 200, 2000);
    }
    return failures == 0 ? 0 : 1;
  }

  if (jobs > 0) {
    std::printf("BM_NetShardedRoundTrip  items_per_second=%.0f\n",
                items_per_second<ShardedRoundTripWorld>(min_seconds));
    std::printf("BM_NetShardedFanout64   items_per_second=%.0f\n",
                items_per_second<ShardedFanoutWorld>(min_seconds));
    return 0;
  }
  std::printf("BM_NetRoundTrip  items_per_second=%.0f\n",
              items_per_second<RoundTripWorld>(min_seconds));
  std::printf("BM_NetFanout64   items_per_second=%.0f\n",
              items_per_second<FanoutWorld>(min_seconds));
  return 0;
}
