// §4.2 — Penelope overhead table.
//
// Runs each of the 9 NPB workloads (as calibrated CPU spin kernels) on a
// single node twice — under a static cap and with Penelope's decider and
// pool-service threads running — and reports the per-workload slowdown
// plus the mean. Paper: 1.3% average overhead. On this single-core
// machine the management threads steal cycles from the same core the
// workload uses (the worst case), and the default decider period is 20x
// the paper's 1 s, so the measured number is a conservative upper bound.
//
// Options: period_ms=50 work_s=0.4 reps=3 quick=1
#include "rt/overhead.hpp"

#include "bench_common.hpp"

using namespace penelope;
using namespace penelope::bench;

int main(int argc, char** argv) {
  const std::string usage =
      "bench_overhead [period_ms=50] [work_s=0.4] [reps=3] [quick=1]";
  common::Config config = parse_or_die(argc, argv, usage);
  bool quick = config.get_bool("quick", false);

  rt::OverheadConfig oc;
  oc.decider_period =
      common::from_millis(config.get_double("period_ms", 50.0));
  oc.work_seconds = config.get_double("work_s", quick ? 0.05 : 0.4);
  oc.repetitions = config.get_int("reps", quick ? 1 : 3);
  reject_unused(config, usage);

  std::vector<rt::OverheadResult> results = rt::measure_overhead(oc);

  common::Table table({"workload", "baseline_s", "with_penelope_s",
                       "overhead"});
  double sum = 0.0;
  for (const auto& r : results) {
    table.add_row({r.workload, common::fmt_double(r.baseline_seconds, 4),
                   common::fmt_double(r.penelope_seconds, 4),
                   common::fmt_percent(r.overhead_fraction)});
    sum += r.overhead_fraction;
  }
  table.add_row({"mean", "-", "-",
                 common::fmt_percent(
                     sum / static_cast<double>(results.size()))});

  emit(table, "overhead",
       "Section 4.2: Penelope overhead per workload "
       "(paper: 1.3% mean on dedicated 48-core nodes; single-core "
       "worst case here)");
  return 0;
}
