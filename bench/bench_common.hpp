// Shared plumbing for the figure benches: argument handling, CSV output
// next to the binary, and the experiment configurations used across
// figures so every bench agrees on what "the paper's setup" means.
//
// Every bench accepts key=value arguments (see each binary's --help) and
// a `quick=1` flag that shrinks sweeps for smoke runs; defaults
// reproduce the full figure.
#pragma once

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/config.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "workload/npb.hpp"

namespace penelope::bench {

/// Parse argv; on malformed input or leftover (typo) keys, print usage
/// and exit. `used_by_help` documents the accepted keys.
inline common::Config parse_or_die(int argc, char** argv,
                                   const std::string& usage) {
  common::Config config;
  if (!config.parse_args(argc, argv)) {
    std::fprintf(stderr, "error: %s\nusage: %s\n",
                 config.error().c_str(), usage.c_str());
    std::exit(2);
  }
  return config;
}

inline void reject_unused(const common::Config& config,
                          const std::string& usage) {
  auto unused = config.unused_keys();
  if (unused.empty()) return;
  for (const auto& key : unused)
    std::fprintf(stderr, "error: unknown option '%s'\n", key.c_str());
  std::fprintf(stderr, "usage: %s\n", usage.c_str());
  std::exit(2);
}

/// Emit a table to stdout and mirror it to `<name>.csv` in the current
/// directory.
inline void emit(const common::Table& table, const std::string& name,
                 const std::string& title) {
  std::printf("\n== %s ==\n%s", title.c_str(), table.render().c_str());
  std::string path = name + ".csv";
  if (table.write_csv(path)) {
    std::printf("(csv written to %s)\n", path.c_str());
  }
}

/// The paper's five initial per-socket powercaps (§4.3).
inline std::vector<double> paper_caps() {
  return {60.0, 70.0, 80.0, 90.0, 100.0};
}

/// Logical cores on this host. Every BENCH_*.json records it: a speedup
/// claim is meaningless without the core count it was measured on.
inline int host_core_count() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

/// Nominal-experiment cluster configuration (§4.1): 20 client nodes,
/// 1 s decider period, epsilon margin, RAPL-like dynamics.
inline cluster::ClusterConfig paper_cluster_config(
    cluster::ManagerKind manager, double per_socket_cap,
    std::uint64_t seed) {
  cluster::ClusterConfig cc;
  cc.manager = manager;
  cc.n_nodes = 20;
  cc.per_socket_cap_watts = per_socket_cap;
  cc.seed = seed;
  cc.max_seconds = 3600.0;
  return cc;
}

/// Workload generation at full class-D-like durations.
inline workload::NpbConfig paper_npb_config(std::uint64_t seed) {
  workload::NpbConfig npb;
  npb.duration_scale = 1.0;
  npb.demand_jitter_frac = 0.02;
  npb.seed = seed;
  return npb;
}

/// Label for one application pair, e.g. "EP+DC".
inline std::string pair_label(workload::NpbApp a, workload::NpbApp b) {
  return std::string(workload::app_name(a)) + "+" +
         workload::app_name(b);
}

}  // namespace penelope::bench
