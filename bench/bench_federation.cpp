// Federation scale bench (DESIGN.md §13, BENCH_scale.json): the
// completion-burst experiment A/B'd across three managers as the
// cluster grows — the rate-limited central server, flat Penelope, and
// the hierarchical pool federation at ~sqrt(N) leaf pools — reporting
// redistribution quality (median time to shift 50% of the released
// watts), convergence, total message volume, and the federation's own
// inter-pool traffic. The second table pushes the federated flat-arena
// path alone to 10^5+ nodes, where the per-actor-object paths stop
// being practical on one host: the acceptance gates are that the big
// run completes at all, that its conservation audit stays below 1e-6,
// and that inter-pool message volume grows sublinearly in N (it tracks
// total pools ~ sqrt(N), asserted here as volume ratio << node ratio).
//
// The third mode, million_smoke=1, is the ctest perf-smoke gate
// (scale.MillionNodeCeiling): a 2^20-node federated run over a
// shortened completion-burst window (burst at 2 s, 20 s of measurement
// — the 1024-pool tree is ~5 levels deep, so released watts need more
// periods to migrate than at 131k) that must finish under the ctest
// wall ceiling with conservation < 1e-6 — proof the batched epoch
// sweeps + active-set scheduling keep a million-node single run
// affordable on one core.
//
// Usage: bench_federation [quick=1] [big=131072] [million_smoke=1]
#include <cinttypes>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "cluster/scale.hpp"
#include "common/check.hpp"

namespace {

using namespace penelope;

int sqrt_pools(int nodes) {
  return static_cast<int>(std::lround(std::sqrt(
      static_cast<double>(nodes))));
}

struct Timed {
  cluster::ScaleResult result;
  double wall_s = 0.0;
};

Timed run_point(int nodes, cluster::ManagerKind manager, int pools,
                double burst_at_seconds = 5.0,
                double window_seconds = 60.0) {
  cluster::ScaleConfig sc;
  sc.n_nodes = nodes;
  sc.manager = manager;
  sc.pools = pools;
  sc.fanout = 8;
  sc.seed = 42;
  sc.burst_at_seconds = burst_at_seconds;
  sc.window_seconds = window_seconds;
  auto start = std::chrono::steady_clock::now();
  Timed out;
  out.result = cluster::run_scale_experiment(sc);
  out.wall_s = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
                   .count();
  return out;
}

std::string fmt_u64(std::uint64_t v) { return std::to_string(v); }

}  // namespace

int main(int argc, char** argv) {
  const std::string usage =
      "bench_federation [quick=1] [big=131072] [million_smoke=1]";
  common::Config config = bench::parse_or_die(argc, argv, usage);
  bool quick = config.get_int("quick", 0) != 0;
  int big = config.get_int("big", quick ? 8192 : 131072);
  bool million_smoke = config.get_int("million_smoke", 0) != 0;
  bench::reject_unused(config, usage);

  std::printf("host cores: %d\n", bench::host_core_count());

  if (million_smoke) {
    // Perf-smoke gate: the full 2^20-node arena over a shortened burst
    // window. Everything the big table checks, minus the wall-clock of
    // the 60 s horizon — sweep throughput dominates either way.
    const int nodes = 1 << 20;
    Timed t = run_point(nodes, cluster::ManagerKind::kPenelope,
                        sqrt_pools(nodes), 2.0, 20.0);
    PEN_CHECK_MSG(t.result.max_conservation_error < 1e-6,
                  "conservation audit failed at the million-node point");
    PEN_CHECK_MSG(t.result.shifted_watts > 0.0,
                  "the million-node burst must redistribute something");
    std::printf("million_smoke: n=%d pools=%d t50_s=%.2f reached=%s "
                "msgs=%s conserv_err=%.2e wall_s=%.2f\n",
                nodes, sqrt_pools(nodes),
                t.result.median_redistribution_s,
                t.result.median_reached ? "yes" : "no",
                fmt_u64(t.result.messages_sent).c_str(),
                t.result.max_conservation_error, t.wall_s);
    return 0;
  }

  // --- A/B: central vs flat vs federated as N grows -------------------
  std::vector<int> scales =
      quick ? std::vector<int>{256, 1024}
            : std::vector<int>{1024, 4096, 16384};
  common::Table table({"nodes", "manager", "pools", "t50_s", "reached",
                       "msgs_total", "fed_msgs", "conserv_err",
                       "wall_s"});
  for (int nodes : scales) {
    struct Row {
      const char* label;
      cluster::ManagerKind manager;
      int pools;
    };
    const Row rows[] = {
        {"central", cluster::ManagerKind::kCentral, 0},
        {"flat", cluster::ManagerKind::kPenelope, 0},
        {"federated", cluster::ManagerKind::kPenelope,
         sqrt_pools(nodes)},
    };
    for (const Row& row : rows) {
      Timed t = run_point(nodes, row.manager, row.pools);
      PEN_CHECK_MSG(t.result.max_conservation_error < 1e-6,
                    "conservation audit failed in the A/B sweep");
      std::uint64_t fed_msgs =
          t.result.federated_requests + t.result.federated_transfers;
      char err[32];
      std::snprintf(err, sizeof err, "%.2e",
                    t.result.max_conservation_error);
      table.add_row({std::to_string(nodes), row.label,
                     std::to_string(row.pools),
                     common::fmt_double(
                         t.result.median_redistribution_s, 2),
                     t.result.median_reached ? "yes" : "no",
                     fmt_u64(t.result.messages_sent), fmt_u64(fed_msgs),
                     err, common::fmt_double(t.wall_s, 2)});
    }
  }
  bench::emit(table, "bench_federation",
              "completion-burst redistribution vs cluster size");

  // --- sublinearity gate: inter-pool traffic vs node count ------------
  // Between the two largest A/B scales N grows 4x while leaf pools grow
  // 2x; the inter-pool message volume must track pools, not nodes.
  {
    int n_small = scales[scales.size() - 2];
    int n_large = scales.back();
    Timed small = run_point(n_small, cluster::ManagerKind::kPenelope,
                            sqrt_pools(n_small));
    Timed large = run_point(n_large, cluster::ManagerKind::kPenelope,
                            sqrt_pools(n_large));
    auto fed_of = [](const Timed& t) {
      return static_cast<double>(t.result.federated_requests +
                                 t.result.federated_transfers);
    };
    double node_ratio = static_cast<double>(n_large) / n_small;
    double fed_ratio = fed_of(large) / fed_of(small);
    std::printf("\ninter-pool volume: %dx nodes -> %.2fx federation "
                "messages (sublinear: %s)\n",
                static_cast<int>(node_ratio), fed_ratio,
                fed_ratio < node_ratio ? "yes" : "NO");
    PEN_CHECK_MSG(fed_ratio < node_ratio,
                  "inter-pool message volume is not sublinear in N");
  }

  // --- the big one: federated flat-arena at 10^5+ nodes ---------------
  common::Table big_table({"nodes", "pools", "t50_s", "reached",
                           "msgs_total", "fed_msgs", "conserv_err",
                           "requests", "wall_s"});
  {
    Timed t = run_point(big, cluster::ManagerKind::kPenelope,
                        sqrt_pools(big));
    PEN_CHECK_MSG(t.result.max_conservation_error < 1e-6,
                  "conservation audit failed at the big scale point");
    char err[32];
    std::snprintf(err, sizeof err, "%.2e",
                  t.result.max_conservation_error);
    big_table.add_row(
        {std::to_string(big), std::to_string(sqrt_pools(big)),
         common::fmt_double(t.result.median_redistribution_s, 2),
         t.result.median_reached ? "yes" : "no",
         fmt_u64(t.result.messages_sent),
         fmt_u64(t.result.federated_requests +
                 t.result.federated_transfers),
         err, fmt_u64(t.result.requests_sent),
         common::fmt_double(t.wall_s, 2)});
  }
  bench::emit(big_table, "bench_federation_big",
              "federated flat-arena scale ceiling");
  return 0;
}
