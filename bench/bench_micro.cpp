// Google-benchmark microbenchmarks for the hot paths: the event queue,
// pool transactions, decider steps, power-model integration, network
// delivery, and a full simulated cluster-second. These quantify the
// simulator's capacity (events/s) and the protocol's per-operation cost,
// which bounds how large a cluster this substrate can reproduce.
#include <benchmark/benchmark.h>

#include <cmath>

#include "central/server.hpp"
#include "cluster/cluster.hpp"
#include "common/rng.hpp"
#include "core/decider.hpp"
#include "core/pool.hpp"
#include "net/codec.hpp"
#include "net/network.hpp"
#include "net/serial_server.hpp"
#include "power/simulated_rapl.hpp"
#include "sim/sharded.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace penelope;

void BM_SimulatorScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    const int n = static_cast<int>(state.range(0));
    for (int i = 0; i < n; ++i) {
      sim.schedule_at(i, [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.executed_events());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulatorScheduleRun)->Arg(1024)->Arg(16384);

void BM_SimulatorTimeoutChurn(benchmark::State& state) {
  // Penelope's dominant event pattern: nearly every scheduled timeout is
  // cancelled when the reply arrives first (actors.cpp request/timeout
  // pairs). Schedule N timeouts, cancel 95% of them, run the remainder —
  // the workload a tombstone-based queue handles worst, since every
  // cancelled event must still be popped through.
  for (auto _ : state) {
    sim::Simulator sim;
    const int n = static_cast<int>(state.range(0));
    std::vector<sim::EventId> ids(static_cast<std::size_t>(n));
    int fired = 0;
    for (int i = 0; i < n; ++i) {
      ids[static_cast<std::size_t>(i)] =
          sim.schedule_at(1000 + i, [&fired] { ++fired; });
    }
    for (int i = 0; i < n; ++i) {
      if (i % 20 != 0) sim.cancel(ids[static_cast<std::size_t>(i)]);
    }
    sim.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulatorTimeoutChurn)->Arg(1024)->Arg(16384);

void BM_PeriodicTick(benchmark::State& state) {
  // Per-firing cost of a periodic task (every node's decider tick rides
  // this path).
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    std::uint64_t ticks = 0;
    sim::PeriodicTask task(sim, 1, 1, [&](common::Ticks) { ++ticks; });
    sim.run_until(n);
    benchmark::DoNotOptimize(ticks);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PeriodicTick)->Arg(16384);

void BM_SimulatorCascade(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    const int n = static_cast<int>(state.range(0));
    int remaining = n;
    std::function<void()> next = [&] {
      if (--remaining > 0) sim.schedule_after(1, next);
    };
    sim.schedule_at(0, next);
    sim.run();
    benchmark::DoNotOptimize(remaining);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulatorCascade)->Arg(16384);

void BM_PoolServe(benchmark::State& state) {
  core::PowerPool pool;
  pool.deposit(1e12);
  core::PowerRequest request;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.serve(request));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PoolServe);

void BM_PoolServeUrgent(benchmark::State& state) {
  core::PowerPool pool;
  pool.deposit(1e12);
  core::PowerRequest request;
  request.urgent = true;
  request.alpha_watts = 25.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.serve(request));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PoolServeUrgent);

void BM_DeciderStep(benchmark::State& state) {
  core::PowerPool pool;
  core::Decider decider(
      core::DeciderConfig{160.0, 5.0,
                          power::SafeRange{80.0, 250.0}},
      pool);
  common::Rng rng(7);
  for (auto _ : state) {
    double p = rng.uniform(90.0, 170.0);
    core::StepOutcome out = decider.begin_step(p);
    if (out.kind == core::StepKind::kNeedsPeer) {
      decider.complete_peer_grant(5.0);
    }
    decider.finish_step();
    benchmark::DoNotOptimize(decider.cap());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DeciderStep);

void BM_CentralServerRequest(benchmark::State& state) {
  central::ServerLogic server;
  server.handle_donation(central::CentralDonation{1e12});
  central::CentralRequest request;
  for (auto _ : state) {
    benchmark::DoNotOptimize(server.handle_request(request));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CentralServerRequest);

void BM_RaplAdvance(benchmark::State& state) {
  power::SimulatedRaplConfig cfg;
  power::SimulatedRapl rapl(cfg);
  rapl.set_demand(180.0, 0);
  common::Ticks t = 0;
  for (auto _ : state) {
    t += 1000;
    benchmark::DoNotOptimize(rapl.read_average_power(t));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RaplAdvance);

void BM_NetworkRoundTrip(benchmark::State& state) {
  sim::Simulator sim;
  net::Network net(sim, net::NetworkConfig{});
  std::uint64_t delivered = 0;
  net.register_endpoint(1, [&](const net::Message& m) {
    ++delivered;
    net.send(1, 0, core::PowerGrant{42.0, m.id, -1});
  });
  net.register_endpoint(0, [&](const net::Message&) { ++delivered; });
  for (auto _ : state) {
    net.send(0, 1, core::PowerRequest{false, 42.0, 1});
    sim.run();
  }
  benchmark::DoNotOptimize(delivered);
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_NetworkRoundTrip);

void BM_CodecEncode(benchmark::State& state) {
  core::PowerRequest request;
  request.urgent = true;
  request.alpha_watts = 42.0;
  request.txn_id = 7;
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::encode(net::WirePayload{request}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CodecEncode);

void BM_CodecDecode(benchmark::State& state) {
  auto bytes = net::encode(net::WirePayload{core::PowerGrant{30.0, 7, -1}});
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::decode(bytes));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CodecDecode);

void BM_TraceHash(benchmark::State& state) {
  // Per-event cost of the trace-hash accumulate (simulator.hpp): a
  // murmur3 finalizer plus a wrapping add, branch-free, on every
  // executed event. This has to stay invisible next to the ~100 ns heap
  // pop it rides on.
  std::uint64_t hash = 0;
  common::Ticks t = 0;
  for (auto _ : state) {
    hash += sim::trace_mix(static_cast<std::uint64_t>(++t));
  }
  benchmark::DoNotOptimize(hash);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceHash);

void BM_ShardWindowMerge(benchmark::State& state) {
  // The sharded fabric's merge path: stage a burst of sends from the
  // barrier context, then run one window cycle — canonical
  // (arrival, id, duplicate) sort, flush into 4 destination shards,
  // parallel delivery. Items are delivered messages.
  constexpr int kShards = 4;
  constexpr int kNodes = 64;
  constexpr int kBurst = 256;
  net::NetworkConfig cfg;
  cfg.latency.floor = common::from_millis(0.05);
  sim::ShardedSimulator engine(kShards, cfg.latency.effective_floor());
  std::vector<int> shard_of(kNodes);
  for (int i = 0; i < kNodes; ++i) shard_of[i] = i * kShards / kNodes;
  net::Network net(engine, cfg, shard_of);
  std::uint64_t delivered = 0;
  for (int i = 0; i < kNodes; ++i) {
    net.register_endpoint(i,
                          [&delivered](const net::Message&) { ++delivered; });
  }
  common::Ticks horizon = 0;
  std::uint64_t txn = 0;
  for (auto _ : state) {
    for (int i = 0; i < kBurst; ++i) {
      net.send(i % kNodes, (i * 7 + 1) % kNodes, core::PowerPush{1.0, ++txn});
    }
    horizon += common::from_millis(1.0);
    engine.run_until(horizon);
  }
  benchmark::DoNotOptimize(delivered);
  state.SetItemsProcessed(state.iterations() * kBurst);
}
BENCHMARK(BM_ShardWindowMerge);

void BM_ArenaSweep(benchmark::State& state) {
  // Per-node cost of one epoch sweep through the flat arena's columns
  // with active-set scheduling off: every node materializes, evaluates
  // its cap-vs-measured band, and (in steady state) does nothing. This
  // is the brute-force floor the active set improves on — the columnar
  // kernel itself, heap events excluded (one sweep event per epoch
  // regardless of N).
  const int nodes = static_cast<int>(state.range(0));
  cluster::ClusterConfig cc;
  cc.manager = cluster::ManagerKind::kPenelope;
  cc.n_nodes = nodes;
  cc.per_socket_cap_watts = 60.0;
  cc.measurement_noise_watts = 0.0;
  cc.federation_pools = static_cast<int>(std::lround(
      std::sqrt(static_cast<double>(nodes))));
  cc.arena_active_set = false;
  std::vector<workload::WorkloadProfile> profiles;
  for (int i = 0; i < nodes; ++i) {
    workload::WorkloadProfile p;
    p.name = "x";
    p.phases.push_back(
        workload::Phase{"hot", i % 2 ? 240.0 : 100.0, 1e9});
    profiles.push_back(std::move(p));
  }
  cluster::Cluster cl(cc, std::move(profiles));
  cl.run_for(5.0);  // warm up past the initial shed/request wave
  double t = 5.0;
  for (auto _ : state) {
    t += 1.0;
    cl.run_for(1.0);
  }
  benchmark::DoNotOptimize(t);
  state.SetItemsProcessed(state.iterations() * nodes);
}
BENCHMARK(BM_ArenaSweep)->Arg(4096)->Arg(65536);

void BM_ActiveSetSkip(benchmark::State& state) {
  // The same steady-state arena with active-set scheduling on: after
  // the shed wave settles the dirty bitsets go empty, so an epoch sweep
  // is a word-scan over zeros plus a wake-heap peek. Items are still
  // nodes — the per-node cost should collapse toward the memory
  // bandwidth of reading N/64 bitset words.
  const int nodes = static_cast<int>(state.range(0));
  cluster::ClusterConfig cc;
  cc.manager = cluster::ManagerKind::kPenelope;
  cc.n_nodes = nodes;
  cc.per_socket_cap_watts = 60.0;
  cc.measurement_noise_watts = 0.0;
  cc.federation_pools = static_cast<int>(std::lround(
      std::sqrt(static_cast<double>(nodes))));
  std::vector<workload::WorkloadProfile> profiles;
  for (int i = 0; i < nodes; ++i) {
    workload::WorkloadProfile p;
    p.name = "steady";
    p.phases.push_back(workload::Phase{"hot", 120.0, 1e9});
    profiles.push_back(std::move(p));
  }
  cluster::Cluster cl(cc, std::move(profiles));
  cl.run_for(5.0);
  double t = 5.0;
  for (auto _ : state) {
    t += 1.0;
    cl.run_for(1.0);
  }
  benchmark::DoNotOptimize(t);
  state.SetItemsProcessed(state.iterations() * nodes);
}
BENCHMARK(BM_ActiveSetSkip)->Arg(4096)->Arg(65536);

void BM_ClusterSimulatedSecond(benchmark::State& state) {
  // Cost of one virtual second of a Penelope cluster at the given node
  // count — the number that bounds the scale study's wall time.
  const int nodes = static_cast<int>(state.range(0));
  cluster::ClusterConfig cc;
  cc.manager = cluster::ManagerKind::kPenelope;
  cc.n_nodes = nodes;
  cc.per_socket_cap_watts = 60.0;
  cc.measurement_noise_watts = 0.0;
  std::vector<workload::WorkloadProfile> profiles;
  for (int i = 0; i < nodes; ++i) {
    workload::WorkloadProfile p;
    p.name = "x";
    p.phases.push_back(
        workload::Phase{"hot", i % 2 ? 240.0 : 100.0, 1e9});
    profiles.push_back(std::move(p));
  }
  cluster::Cluster cl(cc, std::move(profiles));
  for (auto _ : state) {
    cl.run_for(1.0);
  }
  state.SetItemsProcessed(state.iterations() * nodes);
}
BENCHMARK(BM_ClusterSimulatedSecond)->Arg(64)->Arg(256)->Arg(1056);

}  // namespace
