// Figure 8 — mean turnaround time versus scale at 1 Hz (§4.5.2).
//
// Expected shape: SLURM grows roughly linearly with node count (the
// server drains each synchronized burst serially at 80-100 us per
// request — the basis of the paper's 12,500-node extrapolation), landing
// in the tens of milliseconds at 1056 nodes; Penelope stays flat because
// the same load is split over N pools.
//
// Options: scales=44,... reps=3 quick=1 seed=S jobs=N
#include "cluster/scale.hpp"

#include <algorithm>

#include "bench_common.hpp"
#include "common/histogram.hpp"
#include "sweep/sweep.hpp"

using namespace penelope;
using namespace penelope::bench;

int main(int argc, char** argv) {
  const std::string usage =
      "bench_turnaround_scale [scales=44,...] [reps=3] [quick=1] [seed=S]\n"
      "  [jobs=N]  (jobs=0: one per core; output identical to jobs=1)";
  common::Config config = parse_or_die(argc, argv, usage);
  bool quick = config.get_bool("quick", false);
  std::vector<int> scales = config.get_int_list(
      "scales", quick ? std::vector<int>{44, 176, 704}
                      : std::vector<int>{44, 88, 176, 352, 704, 1056});
  int reps = config.get_int("reps", quick ? 1 : 3);
  auto seed = static_cast<std::uint64_t>(config.get_int("seed", 42));
  int jobs = config.get_int("jobs", 1);
  reject_unused(config, usage);

  // Enumerate all (scale, rep, manager) runs, execute via the sweep
  // engine, then aggregate in enumeration order — same bytes out at any
  // jobs=N.
  std::vector<cluster::ScaleConfig> points;
  for (int nodes : scales) {
    for (int r = 0; r < reps; ++r) {
      cluster::ScaleConfig sc;
      sc.n_nodes = nodes;
      sc.frequency_hz = 1.0;
      sc.seed = seed + static_cast<std::uint64_t>(r);
      sc.window_seconds = 30.0;
      sc.manager = cluster::ManagerKind::kCentral;
      points.push_back(sc);
      sc.manager = cluster::ManagerKind::kPenelope;
      points.push_back(sc);
    }
  }
  std::vector<cluster::ScaleResult> results =
      sweep::run_scale_sweep(points, jobs);

  common::Table fig8({"nodes", "slurm_mean_ms", "slurm_p99_ms",
                      "penelope_mean_ms", "penelope_p99_ms",
                      "slurm_ms_per_node"});

  std::vector<double> largest_scale_samples;
  int largest_scale = 0;
  std::size_t k = 0;
  for (int nodes : scales) {
    common::OnlineStats slurm_mean;
    common::OnlineStats slurm_p99;
    common::OnlineStats pen_mean;
    common::OnlineStats pen_p99;
    for (int r = 0; r < reps; ++r) {
      const cluster::ScaleResult& slurm = results[k++];
      slurm_mean.add(slurm.mean_turnaround_ms);
      slurm_p99.add(slurm.p99_turnaround_ms);
      if (nodes >= largest_scale && r == 0) {
        largest_scale = nodes;
        largest_scale_samples = slurm.turnaround_ms;
      }
      const cluster::ScaleResult& pen = results[k++];
      pen_mean.add(pen.mean_turnaround_ms);
      pen_p99.add(pen.p99_turnaround_ms);
    }
    fig8.add_row(
        {std::to_string(nodes), common::fmt_double(slurm_mean.mean(), 3),
         common::fmt_double(slurm_p99.mean(), 3),
         common::fmt_double(pen_mean.mean(), 3),
         common::fmt_double(pen_p99.mean(), 3),
         common::fmt_double(slurm_mean.mean() / nodes * 1000.0, 3)});
  }

  emit(fig8, "fig8_turnaround_vs_scale",
       "Figure 8: mean turnaround time vs scale at 1 Hz "
       "(paper: SLURM ~linear in N, tens of ms at 1056; Penelope flat)");

  // The distribution behind the largest-scale SLURM point: a ramp from
  // ~0 to the full burst-drain time — the uniform queue-position wait
  // the serial server imposes on a synchronized burst.
  if (!largest_scale_samples.empty()) {
    double max_ms =
        common::percentile(largest_scale_samples, 100.0) * 1.05;
    common::Histogram histogram(0.0, std::max(max_ms, 1.0), 20);
    for (double ms : largest_scale_samples) histogram.add(ms);
    std::printf("\nSLURM turnaround distribution at %d nodes (ms):\n%s",
                largest_scale, histogram.render(48).c_str());
  }
  return 0;
}
