// Parallel single-run engine bench: one large Penelope cluster advanced
// by the sharded conservative-window engine (DESIGN.md §12) at several
// sim_jobs settings, reporting events/sec, speedup over serial, and —
// asserted, not just reported — bit-identical merged trace hashes.
// A second sweep varies the latency floor (== the conservative window
// width) at fixed jobs to show the lookahead/throughput trade-off:
// narrow windows flush more barriers per simulated second, wide windows
// batch more events per wakeup.
//
// Usage: bench_parallel [nodes=4096] [seconds=5] [quick=1]
//
// Results on this box are recorded in BENCH_parallel.json (with the
// host's core count — a 1-vCPU host bounds any real speedup at 1x and
// measures only engine overhead; see the json's note).
#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/check.hpp"

namespace {

using namespace penelope;

struct RunStats {
  double wall_s = 0.0;
  std::uint64_t events = 0;
  std::uint64_t hash = 0;
};

RunStats run_once(int nodes, int jobs, double seconds,
                  common::Ticks floor,
                  common::Ticks series_interval = 0) {
  cluster::ClusterConfig cc;
  cc.manager = cluster::ManagerKind::kPenelope;
  cc.n_nodes = nodes;
  cc.per_socket_cap_watts = 60.0;
  cc.measurement_noise_watts = 0.0;
  cc.seed = 42;
  cc.sim_jobs = jobs;
  cc.network.latency.floor = floor;
  cc.series_interval = series_interval;
  std::vector<workload::WorkloadProfile> profiles;
  profiles.reserve(static_cast<std::size_t>(nodes));
  for (int i = 0; i < nodes; ++i) {
    workload::WorkloadProfile p;
    p.name = "x";
    // Half hungry, half donors with real surplus: request/grant traffic
    // crosses shards constantly instead of every node idling at its cap.
    p.phases.push_back(
        workload::Phase{"hot", i % 2 ? 240.0 : 30.0, 1e9});
    profiles.push_back(std::move(p));
  }
  cluster::Cluster cl(cc, std::move(profiles));
  auto start = std::chrono::steady_clock::now();
  cl.run_for(seconds);
  RunStats stats;
  stats.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start)
          .count();
  stats.events = cl.executed_events();
  stats.hash = cl.trace_hash();
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string usage =
      "bench_parallel [nodes=4096] [seconds=5] [quick=1]";
  common::Config config = bench::parse_or_die(argc, argv, usage);
  bool quick = config.get_int("quick", 0) != 0;
  int nodes = config.get_int("nodes", quick ? 512 : 4096);
  double seconds = config.get_double("seconds", quick ? 2.0 : 5.0);
  bench::reject_unused(config, usage);

  const common::Ticks floor = common::from_millis(0.05);  // 50 us

  std::printf("host cores: %d\n", bench::host_core_count());
  std::printf("cluster: %d nodes, %.1f simulated seconds, latency floor "
              "50 us\n",
              nodes, seconds);

  common::Table table({"sim_jobs", "events", "events_per_sec", "speedup",
                       "trace_hash"});
  RunStats serial;
  for (int jobs : {1, 2, 4, 8}) {
    RunStats stats = run_once(nodes, jobs, seconds, floor);
    if (jobs == 1) serial = stats;
    PEN_CHECK_MSG(stats.hash == serial.hash && stats.events == serial.events,
                  "sharded trace diverged from serial");
    char hash[32];
    std::snprintf(hash, sizeof hash, "%016" PRIx64, stats.hash);
    table.add_row({std::to_string(jobs), std::to_string(stats.events),
                   std::to_string(static_cast<std::uint64_t>(
                       static_cast<double>(stats.events) / stats.wall_s)),
                   common::fmt_double(serial.wall_s / stats.wall_s, 2),
                   hash});
  }
  bench::emit(table, "bench_parallel", "sharded engine throughput");

  common::Table windows({"floor_us", "events", "events_per_sec"});
  for (double floor_us : {10.0, 25.0, 50.0, 100.0, 200.0}) {
    common::Ticks f = common::from_millis(floor_us / 1000.0);
    RunStats stats = run_once(nodes, 4, seconds, f);
    windows.add_row(
        {common::fmt_double(floor_us, 0), std::to_string(stats.events),
         std::to_string(static_cast<std::uint64_t>(
             static_cast<double>(stats.events) / stats.wall_s))});
  }
  bench::emit(windows, "bench_parallel_window",
              "window-width sensitivity at sim_jobs=4");
  std::printf("(wider floor = wider conservative window = fewer "
              "barriers per simulated second; the floor also clamps "
              "sampled latencies, so event counts differ across rows "
              "by design)\n");

  // Telemetry sampler overhead: the same runs with the 250 ms windowed
  // sampler + health monitor on (DESIGN.md §14). Interleaved off/on
  // pairs per jobs setting so both sides see the same thermal/cache
  // conditions; the gate in BENCH_parallel.json is < 5% overhead.
  // Method: alternating off/on repeats in one session so both sides see
  // the same thermal/cache conditions, then best-of per side (max
  // events/sec = min runtime). Best-of beats medians here: scheduler
  // noise on small shared hosts only ever makes a run *slower*, so the
  // fastest observation of each side is the least-contaminated estimate
  // of its true cost.
  common::Table sampler({"sim_jobs", "off_events_per_sec",
                         "on_events_per_sec", "overhead_pct"});
  const int repeats = quick ? 3 : 9;
  for (int jobs : {1, 4}) {
    double off_best = 0.0;
    double on_best = 0.0;
    for (int r = 0; r < repeats; ++r) {
      RunStats off = run_once(nodes, jobs, seconds, floor);
      RunStats on = run_once(nodes, jobs, seconds, floor,
                             common::from_millis(250));
      off_best = std::max(
          off_best, static_cast<double>(off.events) / off.wall_s);
      on_best = std::max(
          on_best, static_cast<double>(on.events) / on.wall_s);
    }
    // Events/sec is the honest basis: sampling adds its own events
    // (4/s), so wall-clock alone would conflate more work with slower
    // work.
    double overhead = (off_best / on_best - 1.0) * 100.0;
    sampler.add_row({std::to_string(jobs),
                     std::to_string(static_cast<std::uint64_t>(off_best)),
                     std::to_string(static_cast<std::uint64_t>(on_best)),
                     common::fmt_double(overhead, 2)});
  }
  bench::emit(sampler, "bench_parallel_sampler",
              "250 ms sampler + health monitor overhead");
  return 0;
}
