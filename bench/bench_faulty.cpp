// Figure 3 — Performance with Faulty Power Management.
//
// Same sweep as Figure 2, but SLURM's server node is killed partway
// through every run (the paper induces the failure "partway through
// execution for each application pair"). Fair and Penelope do not use
// that node and run unperturbed; a separate column additionally shows
// Penelope with one client's management plane killed, backing the
// paper's "not significantly perturbed by a client-node failure" claim.
// Expected shape: SLURM's geomean falls to or below Fair (1.0) and
// Penelope beats it by ~8-15%.
//
// Options: caps=... pairs=N kill_frac=0.33 quick=1 seed=S
#include "bench_common.hpp"

using namespace penelope;
using namespace penelope::bench;

namespace {

struct Outcome {
  double runtime = 0.0;
};

Outcome run_one(cluster::ManagerKind manager, workload::NpbApp a,
                workload::NpbApp b, double cap, std::uint64_t seed,
                double kill_at_s, bool kill_management) {
  cluster::ClusterConfig cc = paper_cluster_config(manager, cap, seed);
  if (kill_at_s > 0.0) {
    if (kill_management) {
      cc.faults = {cluster::FaultEvent{
          cluster::FaultEvent::Kind::kKillManagement,
          common::from_seconds(kill_at_s), cc.n_nodes / 2}};
    } else {
      cc.faults = {cluster::FaultEvent{
          cluster::FaultEvent::Kind::kKillServer,
          common::from_seconds(kill_at_s), 0}};
    }
  }
  cluster::Cluster cl(
      cc, cluster::make_pair_workloads(a, b, cc.n_nodes,
                                       paper_npb_config(seed)));
  return Outcome{cl.run().runtime_seconds};
}

}  // namespace

int main(int argc, char** argv) {
  const std::string usage =
      "bench_faulty [caps=...] [pairs=N] [kill_frac=0.33] [quick=1] "
      "[seed=S]";
  common::Config config = parse_or_die(argc, argv, usage);
  bool quick = config.get_bool("quick", false);
  std::vector<double> caps =
      config.get_double_list("caps", quick ? std::vector<double>{60.0, 80.0}
                                           : paper_caps());
  auto all_pairs = workload::unique_pairs();
  int n_pairs = config.get_int(
      "pairs", quick ? 6 : static_cast<int>(all_pairs.size()));
  n_pairs = std::min<int>(n_pairs, static_cast<int>(all_pairs.size()));
  // The server dies this fraction of the way into the (Fair-measured)
  // runtime of the pair.
  double kill_frac = config.get_double("kill_frac", 0.33);
  auto seed = static_cast<std::uint64_t>(config.get_int("seed", 42));
  reject_unused(config, usage);

  common::Table figure({"cap_w_per_socket", "slurm_killed_geomean",
                        "penelope_geomean", "penelope_mgmtkill_geomean",
                        "penelope_vs_slurm"});
  std::vector<double> slurm_all;
  std::vector<double> pen_all;

  for (double cap : caps) {
    std::vector<double> slurm_norms;
    std::vector<double> pen_norms;
    std::vector<double> pen_kill_norms;
    for (int p = 0; p < n_pairs; ++p) {
      auto [a, b] = all_pairs[static_cast<std::size_t>(p)];
      double fair =
          run_one(cluster::ManagerKind::kFair, a, b, cap, seed, 0, false)
              .runtime;
      double kill_at = kill_frac * fair;
      double slurm = run_one(cluster::ManagerKind::kCentral, a, b, cap,
                             seed, kill_at, false)
                         .runtime;
      double pen = run_one(cluster::ManagerKind::kPenelope, a, b, cap,
                           seed, 0, false)
                       .runtime;
      double pen_kill = run_one(cluster::ManagerKind::kPenelope, a, b,
                                cap, seed, kill_at, true)
                            .runtime;
      slurm_norms.push_back(fair / slurm);
      pen_norms.push_back(fair / pen);
      pen_kill_norms.push_back(fair / pen_kill);
    }
    double slurm_geo = common::geomean(slurm_norms);
    double pen_geo = common::geomean(pen_norms);
    double pen_kill_geo = common::geomean(pen_kill_norms);
    figure.add_row(
        {common::fmt_double(cap, 0), common::fmt_double(slurm_geo, 4),
         common::fmt_double(pen_geo, 4),
         common::fmt_double(pen_kill_geo, 4),
         common::fmt_percent(pen_geo / slurm_geo - 1.0)});
    slurm_all.insert(slurm_all.end(), slurm_norms.begin(),
                     slurm_norms.end());
    pen_all.insert(pen_all.end(), pen_norms.begin(), pen_norms.end());
  }
  double slurm_overall = common::geomean(slurm_all);
  double pen_overall = common::geomean(pen_all);
  figure.add_row({"overall", common::fmt_double(slurm_overall, 4),
                  common::fmt_double(pen_overall, 4), "-",
                  common::fmt_percent(pen_overall / slurm_overall - 1.0)});

  emit(figure, "fig3_faulty",
       "Figure 3: performance under faulty conditions "
       "(geomean vs Fair; paper: Penelope +8-15% over killed SLURM, "
       "SLURM at or below Fair)");
  return 0;
}
