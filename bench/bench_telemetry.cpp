// Google-benchmark microbenchmarks for the telemetry layer's hot paths:
// counter/gauge/histogram handle updates (single-threaded and sharded
// under contention), the flight recorder disabled (the cost every sim
// hot path pays unconditionally) and enabled, and a full simulated
// cluster run with the journal on vs off — the "zero-cost when
// disabled" claim, measured.
#include <benchmark/benchmark.h>

#include <thread>

#include "cluster/cluster.hpp"
#include "telemetry/export.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/registry.hpp"

namespace {

using namespace penelope;

void BM_CounterInc(benchmark::State& state) {
  telemetry::MetricsRegistry registry;
  telemetry::Counter counter = registry.counter("bench_total");
  for (auto _ : state) {
    counter.inc();
  }
  benchmark::DoNotOptimize(counter.value());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterInc);

void BM_CounterIncShardedContended(benchmark::State& state) {
  static telemetry::MetricsRegistry registry(
      telemetry::Concurrency::kSharded);
  static telemetry::Counter counter =
      registry.counter("bench_contended_total");
  for (auto _ : state) {
    counter.inc();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterIncShardedContended)->Threads(4);

void BM_GaugeAdd(benchmark::State& state) {
  telemetry::MetricsRegistry registry;
  telemetry::Gauge gauge = registry.gauge("bench_watts");
  double delta = 0.25;
  for (auto _ : state) {
    gauge.add(delta);
    delta = -delta;
  }
  benchmark::DoNotOptimize(gauge.value());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GaugeAdd);

void BM_HistogramObserve(benchmark::State& state) {
  telemetry::MetricsRegistry registry;
  telemetry::Histogram hist =
      registry.histogram("bench_ms", 0.0, 4000.0, 40);
  double x = 0.0;
  for (auto _ : state) {
    hist.observe(x);
    x += 13.7;
    if (x >= 4200.0) x = -10.0;
  }
  benchmark::DoNotOptimize(hist.count());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramObserve);

void BM_FlightRecorderDisabled(benchmark::State& state) {
  // The branch every hot path pays when the journal is off.
  telemetry::FlightRecorder recorder;
  std::uint64_t txn = 0;
  for (auto _ : state) {
    recorder.record(1000, ++txn, telemetry::TxnEventKind::kRequestSent,
                    0, 1, 5.0);
  }
  benchmark::DoNotOptimize(recorder.recorded());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlightRecorderDisabled);

void BM_FlightRecorderEnabled(benchmark::State& state) {
  telemetry::FlightRecorder recorder;
  recorder.enable(1 << 16);
  std::uint64_t txn = 0;
  for (auto _ : state) {
    recorder.record(1000, ++txn, telemetry::TxnEventKind::kRequestSent,
                    0, 1, 5.0);
  }
  benchmark::DoNotOptimize(recorder.recorded());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlightRecorderEnabled);

void BM_RegistrySnapshot(benchmark::State& state) {
  telemetry::MetricsRegistry registry;
  for (int node = 0; node < 20; ++node) {
    telemetry::Labels labels{{"node", std::to_string(node)}};
    registry.counter("bench_grants_total", labels).inc(7);
    registry.gauge("bench_pool_watts", labels).set(40.0);
  }
  registry.histogram("bench_turnaround_ms", 0.0, 4000.0, 40).observe(12.0);
  for (auto _ : state) {
    auto samples = registry.snapshot();
    benchmark::DoNotOptimize(samples.data());
  }
  state.SetItemsProcessed(state.iterations() * registry.size());
}
BENCHMARK(BM_RegistrySnapshot);

void BM_PrometheusRender(benchmark::State& state) {
  telemetry::MetricsRegistry registry;
  for (int node = 0; node < 20; ++node) {
    telemetry::Labels labels{{"node", std::to_string(node)}};
    registry.counter("bench_grants_total", labels).inc(7);
    registry.gauge("bench_pool_watts", labels).set(40.0);
  }
  auto samples = registry.snapshot();
  for (auto _ : state) {
    std::string text = telemetry::to_prometheus_text(samples);
    benchmark::DoNotOptimize(text.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PrometheusRender);

/// One simulated cluster-second with the journal off vs on: the end-to-
/// end number behind the <2% overhead acceptance bar.
void run_cluster_second(std::size_t recorder_capacity) {
  cluster::ClusterConfig cc;
  cc.manager = cluster::ManagerKind::kPenelope;
  cc.n_nodes = 8;
  cc.flight_recorder_capacity = recorder_capacity;
  workload::NpbConfig npb;
  npb.duration_scale = 0.02;
  npb.seed = 3;
  cluster::Cluster cl(
      cc, cluster::make_pair_workloads(workload::NpbApp::kEP,
                                       workload::NpbApp::kDC, cc.n_nodes,
                                       npb));
  cl.run_for(1.0);
}

void BM_ClusterSecondJournalOff(benchmark::State& state) {
  for (auto _ : state) {
    run_cluster_second(0);
  }
}
BENCHMARK(BM_ClusterSecondJournalOff);

void BM_ClusterSecondJournalOn(benchmark::State& state) {
  for (auto _ : state) {
    run_cluster_second(1 << 16);
  }
}
BENCHMARK(BM_ClusterSecondJournalOn);

}  // namespace
