// Figure 2 — Performance Under Nominal Conditions.
//
// All 36 unique NPB pairs on a 20-node cluster (half/half split), under
// initial per-socket caps {60, 70, 80, 90, 100} W. Performance is
// 1/runtime, normalised to Fair; rows report the geometric mean across
// pairs per cap plus the overall geomean, exactly the quantities the
// paper plots. Expected shape: both dynamic systems beat Fair at tight
// caps, the gains shrink as caps loosen, and SLURM leads Penelope by a
// low single-digit percentage (paper: 1.8% mean, never more than 3%).
//
// Options: caps=60,70 pairs=N (first N pairs) quick=1 seed=S
#include "bench_common.hpp"

using namespace penelope;
using namespace penelope::bench;

namespace {

double run_runtime(cluster::ManagerKind manager, workload::NpbApp a,
                   workload::NpbApp b, double cap, std::uint64_t seed) {
  cluster::ClusterConfig cc = paper_cluster_config(manager, cap, seed);
  cluster::Cluster cl(
      cc, cluster::make_pair_workloads(a, b, cc.n_nodes,
                                       paper_npb_config(seed)));
  cluster::RunResult result = cl.run();
  if (!result.all_completed) {
    std::fprintf(stderr, "warning: %s %s cap=%g did not complete\n",
                 cluster::manager_name(manager),
                 pair_label(a, b).c_str(), cap);
  }
  return result.runtime_seconds;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string usage =
      "bench_nominal [caps=60,70,...] [pairs=N] [quick=1] [seed=S]";
  common::Config config = parse_or_die(argc, argv, usage);
  bool quick = config.get_bool("quick", false);
  std::vector<double> caps =
      config.get_double_list("caps", quick ? std::vector<double>{60.0, 80.0}
                                           : paper_caps());
  auto all_pairs = workload::unique_pairs();
  int n_pairs = config.get_int(
      "pairs", quick ? 6 : static_cast<int>(all_pairs.size()));
  n_pairs = std::min<int>(n_pairs, static_cast<int>(all_pairs.size()));
  auto seed = static_cast<std::uint64_t>(config.get_int("seed", 42));
  reject_unused(config, usage);

  common::Table per_pair({"pair", "cap_w_per_socket", "fair_runtime_s",
                          "slurm_norm", "penelope_norm"});
  common::Table figure({"cap_w_per_socket", "slurm_geomean",
                        "penelope_geomean", "slurm_vs_penelope"});

  std::vector<double> slurm_all;
  std::vector<double> penelope_all;
  for (double cap : caps) {
    std::vector<double> slurm_norms;
    std::vector<double> penelope_norms;
    for (int p = 0; p < n_pairs; ++p) {
      auto [a, b] = all_pairs[static_cast<std::size_t>(p)];
      double fair = run_runtime(cluster::ManagerKind::kFair, a, b, cap,
                                seed);
      double slurm = run_runtime(cluster::ManagerKind::kCentral, a, b,
                                 cap, seed);
      double penelope = run_runtime(cluster::ManagerKind::kPenelope, a,
                                    b, cap, seed);
      double slurm_norm = fair / slurm;
      double penelope_norm = fair / penelope;
      slurm_norms.push_back(slurm_norm);
      penelope_norms.push_back(penelope_norm);
      per_pair.add_row({pair_label(a, b), common::fmt_double(cap, 0),
                        common::fmt_double(fair, 1),
                        common::fmt_double(slurm_norm, 4),
                        common::fmt_double(penelope_norm, 4)});
    }
    double slurm_geo = common::geomean(slurm_norms);
    double penelope_geo = common::geomean(penelope_norms);
    figure.add_row({common::fmt_double(cap, 0),
                    common::fmt_double(slurm_geo, 4),
                    common::fmt_double(penelope_geo, 4),
                    common::fmt_percent(slurm_geo / penelope_geo - 1.0)});
    slurm_all.insert(slurm_all.end(), slurm_norms.begin(),
                     slurm_norms.end());
    penelope_all.insert(penelope_all.end(), penelope_norms.begin(),
                        penelope_norms.end());
  }

  double slurm_overall = common::geomean(slurm_all);
  double penelope_overall = common::geomean(penelope_all);
  figure.add_row({"overall", common::fmt_double(slurm_overall, 4),
                  common::fmt_double(penelope_overall, 4),
                  common::fmt_percent(
                      slurm_overall / penelope_overall - 1.0)});

  emit(per_pair, "fig2_per_pair", "Figure 2 raw data (per pair)");
  emit(figure, "fig2_nominal",
       "Figure 2: performance under nominal conditions "
       "(geomean vs Fair; paper: SLURM ~= Penelope, gap ~1.8%)");
  return 0;
}
