// telemetry.ZeroOverheadGate — the two-sided contract of the
// observability subsystem, asserted as a ctest case:
//
//   1. OFF costs nothing: with every observability knob at its default
//      (no sampler, no flow tracer, no flight recorder), the golden
//      20-node run still produces the pinned golden trace hash, at
//      sim_jobs=1 and sim_jobs=4. A telemetry hook that perturbs event
//      timing with telemetry *disabled* fails here.
//
//   2. ON stays off the allocator: after the one-time configure/enable
//      reservations, the per-probe sampler work (one TimeSeries::sample
//      per series, one HealthMonitor::observe, one flow-hop record) is
//      zero-allocation in steady state, counted by the same global
//      operator-new hooks as net.zero_alloc (bench/counting_new.hpp).
//
// Exit 0 iff both gates pass.
#include <cinttypes>
#include <cstdint>
#include <cstdio>

#include "counting_new.hpp"

#include "cluster/cluster.hpp"
#include "telemetry/flow_tracer.hpp"
#include "telemetry/health.hpp"
#include "telemetry/time_series.hpp"

namespace {

using namespace penelope;

/// The pinned golden trace (tests/cluster/sharded_trace_test.cpp): any
/// drift here means observability-off is not free.
constexpr std::uint64_t kGoldenTraceHash = 0x868a597206f3db95ULL;

cluster::ClusterConfig golden_config(int jobs) {
  cluster::ClusterConfig cc;
  cc.manager = cluster::ManagerKind::kPenelope;
  cc.n_nodes = 20;
  cc.per_socket_cap_watts = 60.0;
  cc.network.loss_probability = 0.02;
  cc.seed = 42;
  cc.sim_jobs = jobs;
  return cc;
}

bool golden_gate() {
  bool ok = true;
  for (int jobs : {1, 4}) {
    cluster::Cluster cl(
        golden_config(jobs),
        cluster::make_pair_workloads(workload::NpbApp::kEP,
                                     workload::NpbApp::kDC, 20, {}));
    cl.run_for(30.0);
    bool match = cl.trace_hash() == kGoldenTraceHash;
    std::printf("golden.off jobs=%d trace 0x%016" PRIx64 " %s\n", jobs,
                cl.trace_hash(), match ? "PASS" : "FAIL");
    ok = ok && match;
  }
  return ok;
}

bool alloc_gate() {
  constexpr common::Ticks kWindow = common::from_millis(250);
  constexpr std::size_t kSeriesCapacity = 512;
  constexpr int kIterations = 100000;

  telemetry::TimeSeriesSet set;
  set.configure(kWindow, kSeriesCapacity);
  telemetry::TimeSeries* series[8];
  const char* names[8] = {"delivered_watts", "demand_watts", "cap_watts",
                          "pool_watts",      "stranded_watts",
                          "in_flight_watts", "energy_joules",
                          "jain_index"};
  for (int s = 0; s < 8; ++s) series[s] = set.open(names[s]);

  telemetry::HealthMonitor health;
  health.configure(0.01, static_cast<std::size_t>(kIterations) + 16);

  telemetry::PowerFlowTracer tracer;
  tracer.enable(4096);

  // Warm-up: hit every series and the downsampling path once, then
  // snapshot the counter.
  for (int i = 0; i < 2048; ++i) {
    auto at = static_cast<common::Ticks>(i) * kWindow;
    for (auto* s : series) s->sample(at, 1.0);
  }
  std::uint64_t before = pen_alloc_gate::allocs_now();

  for (int i = 0; i < kIterations; ++i) {
    auto at = static_cast<common::Ticks>(2048 + i) * kWindow;
    double v = static_cast<double>(i % 97);
    for (auto* s : series) s->sample(at, v);
    telemetry::HealthSample hs;
    hs.at = at;
    hs.active_nodes = 64;
    hs.delivered_sum = 64.0 * v;
    hs.delivered_sq_sum = 64.0 * v * v;
    hs.delivered_min = hs.delivered_max = v;
    hs.stranded_watts = 1.0;
    hs.energy_joules = static_cast<double>(i);
    health.observe(hs);
    tracer.record(at, static_cast<std::uint64_t>(i + 1),
                  telemetry::FlowHopKind::kStep, i % 64, -1, v, "hop");
  }
  std::uint64_t allocs = pen_alloc_gate::allocs_now() - before;

  // Budget: zero. Every container reserved up front; a regression that
  // grows anything per probe shows up as >= 1.
  std::printf("sampler.on %" PRIu64
              " heap allocations across %d probes x 8 series "
              "+ health + flow hop: %s\n",
              allocs, kIterations, allocs == 0 ? "PASS" : "FAIL");
  return allocs == 0;
}

}  // namespace

int main() {
  bool ok = golden_gate();
  ok = alloc_gate() && ok;
  return ok ? 0 : 1;
}
