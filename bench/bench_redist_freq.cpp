// Figures 4 and 5 — power redistribution time versus local decider
// frequency, at maximum simulated scale (1056 nodes, §4.5).
//
// Figure 4: median redistribution time (time to shift 50% of the burst).
// Figure 5: total redistribution time (100%); when a system never
// finishes shifting within the window (SLURM once its server drops
// packets, near ~10-20 req/s at this scale), the paper charges the full
// experiment runtime — so does this bench.
//
// Expected shape: Penelope starts slower at 1 Hz (random discovery) but
// improves rapidly with frequency and converges toward SLURM (Fig. 4);
// SLURM's total time explodes at the drop threshold (Fig. 5).
//
// Options: nodes=1056 freqs=0.5,1,... reps=3 quick=1 seed=S
#include "cluster/scale.hpp"

#include "bench_common.hpp"

using namespace penelope;
using namespace penelope::bench;

int main(int argc, char** argv) {
  const std::string usage =
      "bench_redist_freq [nodes=1056] [freqs=0.5,1,2,...] [reps=3] "
      "[quick=1] [seed=S]";
  common::Config config = parse_or_die(argc, argv, usage);
  bool quick = config.get_bool("quick", false);
  int nodes = config.get_int("nodes", quick ? 128 : 1056);
  std::vector<double> freqs = config.get_double_list(
      "freqs", quick ? std::vector<double>{1.0, 8.0, 20.0}
                     : std::vector<double>{0.5, 1.0, 2.0, 4.0, 8.0, 12.0,
                                           16.0, 20.0, 24.0, 32.0});
  int reps = config.get_int("reps", quick ? 1 : 3);
  auto seed = static_cast<std::uint64_t>(config.get_int("seed", 42));
  reject_unused(config, usage);

  common::Table fig4({"freq_hz", "slurm_median_s", "penelope_median_s"});
  common::Table fig5({"freq_hz", "slurm_total_s", "penelope_total_s",
                      "slurm_drops", "slurm_total_capped"});

  for (double freq : freqs) {
    std::vector<double> slurm_median;
    std::vector<double> slurm_total;
    std::vector<double> pen_median;
    std::vector<double> pen_total;
    std::uint64_t drops = 0;
    bool slurm_capped = false;
    for (int r = 0; r < reps; ++r) {
      cluster::ScaleConfig sc;
      sc.n_nodes = nodes;
      sc.frequency_hz = freq;
      sc.seed = seed + static_cast<std::uint64_t>(r);
      // The window must comfortably contain full redistribution at low
      // frequency (Penelope moves the long tail at >= 1 W per probe).
      sc.window_seconds = 120.0 / freq + 40.0;

      sc.manager = cluster::ManagerKind::kCentral;
      cluster::ScaleResult slurm = run_scale_experiment(sc);
      sc.manager = cluster::ManagerKind::kPenelope;
      cluster::ScaleResult pen = run_scale_experiment(sc);

      slurm_median.push_back(slurm.median_redistribution_s);
      slurm_total.push_back(slurm.total_redistribution_s);
      pen_median.push_back(pen.median_redistribution_s);
      pen_total.push_back(pen.total_redistribution_s);
      drops += slurm.server_drops;
      slurm_capped |= !slurm.total_reached;
    }
    fig4.add_row({common::fmt_double(freq, 1),
                  common::fmt_double(common::median(slurm_median), 3),
                  common::fmt_double(common::median(pen_median), 3)});
    fig5.add_row({common::fmt_double(freq, 1),
                  common::fmt_double(common::median(slurm_total), 3),
                  common::fmt_double(common::median(pen_total), 3),
                  std::to_string(drops),
                  slurm_capped ? "yes" : "no"});
  }

  emit(fig4, "fig4_median_redist_vs_freq",
       "Figure 4: median redistribution time (50%) vs decider frequency "
       "(paper: Penelope converges toward SLURM as frequency rises)");
  emit(fig5, "fig5_total_redist_vs_freq",
       "Figure 5: total redistribution time (100%) vs decider frequency "
       "(paper: SLURM blows up once the server drops packets)");
  return 0;
}
