// Figure 6 — median power redistribution time versus scale at a fixed
// 1 Hz decider frequency (44 -> 1056 nodes, §4.5.1).
//
// Expected shape: both systems' curves are essentially flat — "at 1056
// nodes with a one second period, SLURM does not degrade; however,
// Penelope does not either. As scale increases ... the gap in
// redistribution time remains essentially unchanged."
//
// Options: scales=44,88,... reps=3 quick=1 seed=S jobs=N
#include "cluster/scale.hpp"

#include "bench_common.hpp"
#include "sweep/sweep.hpp"

using namespace penelope;
using namespace penelope::bench;

int main(int argc, char** argv) {
  const std::string usage =
      "bench_redist_scale [scales=44,88,...] [reps=3] [quick=1] [seed=S]\n"
      "  [jobs=N]  (jobs=0: one per core; output identical to jobs=1)";
  common::Config config = parse_or_die(argc, argv, usage);
  bool quick = config.get_bool("quick", false);
  std::vector<int> scales = config.get_int_list(
      "scales", quick ? std::vector<int>{44, 176, 704}
                      : std::vector<int>{44, 88, 176, 352, 704, 1056});
  int reps = config.get_int("reps", quick ? 1 : 3);
  auto seed = static_cast<std::uint64_t>(config.get_int("seed", 42));
  int jobs = config.get_int("jobs", 1);
  reject_unused(config, usage);

  // Every (scale, rep, manager) run is independent: enumerate them all
  // up front and run through the sweep engine. Results come back in
  // enumeration order, so the table below is byte-identical at any
  // jobs=N.
  std::vector<cluster::ScaleConfig> points;
  for (int nodes : scales) {
    for (int r = 0; r < reps; ++r) {
      cluster::ScaleConfig sc;
      sc.n_nodes = nodes;
      sc.frequency_hz = 1.0;
      sc.seed = seed + static_cast<std::uint64_t>(r);
      sc.window_seconds = 160.0;
      sc.manager = cluster::ManagerKind::kCentral;
      points.push_back(sc);
      sc.manager = cluster::ManagerKind::kPenelope;
      points.push_back(sc);
    }
  }
  std::vector<cluster::ScaleResult> results =
      sweep::run_scale_sweep(points, jobs);

  common::Table fig6({"nodes", "slurm_median_s", "penelope_median_s",
                      "gap_s"});

  std::size_t k = 0;
  for (int nodes : scales) {
    std::vector<double> slurm_median;
    std::vector<double> pen_median;
    for (int r = 0; r < reps; ++r) {
      slurm_median.push_back(results[k++].median_redistribution_s);
      pen_median.push_back(results[k++].median_redistribution_s);
    }
    double slurm = common::median(slurm_median);
    double pen = common::median(pen_median);
    fig6.add_row({std::to_string(nodes), common::fmt_double(slurm, 3),
                  common::fmt_double(pen, 3),
                  common::fmt_double(pen - slurm, 3)});
  }

  emit(fig6, "fig6_median_redist_vs_scale",
       "Figure 6: median redistribution time (50%) vs scale at 1 Hz "
       "(paper: both flat, constant gap)");
  return 0;
}
