// Extension bench (paper §2.3.3 case study): the PoDD-style
// hierarchical manager against Fair, SLURM, and Penelope on coupled
// workloads. PoDD's profiled initial assignment should shine on
// asymmetric couples (less reactive shifting needed) and degenerate
// gracefully to SLURM on symmetric ones.
//
// Options: caps=60,80 pairs=N quick=1 seed=S
#include "bench_common.hpp"

using namespace penelope;
using namespace penelope::bench;

namespace {

double run_runtime(cluster::ManagerKind manager, workload::NpbApp a,
                   workload::NpbApp b, double cap, std::uint64_t seed) {
  cluster::ClusterConfig cc = paper_cluster_config(manager, cap, seed);
  cluster::Cluster cl(
      cc, cluster::make_pair_workloads(a, b, cc.n_nodes,
                                       paper_npb_config(seed)));
  return cl.run().runtime_seconds;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string usage =
      "bench_hierarchy [caps=60,80] [pairs=N] [quick=1] [seed=S]";
  common::Config config = parse_or_die(argc, argv, usage);
  bool quick = config.get_bool("quick", false);
  std::vector<double> caps = config.get_double_list(
      "caps", quick ? std::vector<double>{70.0}
                    : std::vector<double>{60.0, 80.0});
  auto all_pairs = workload::unique_pairs();
  int n_pairs = config.get_int(
      "pairs", quick ? 4 : static_cast<int>(all_pairs.size()));
  n_pairs = std::min<int>(n_pairs, static_cast<int>(all_pairs.size()));
  auto seed = static_cast<std::uint64_t>(config.get_int("seed", 42));
  reject_unused(config, usage);

  common::Table figure({"cap_w_per_socket", "slurm_geomean",
                        "podd_geomean", "penelope_geomean",
                        "podd_vs_slurm"});

  for (double cap : caps) {
    std::vector<double> slurm_norms;
    std::vector<double> podd_norms;
    std::vector<double> pen_norms;
    for (int p = 0; p < n_pairs; ++p) {
      auto [a, b] = all_pairs[static_cast<std::size_t>(p)];
      double fair =
          run_runtime(cluster::ManagerKind::kFair, a, b, cap, seed);
      slurm_norms.push_back(
          fair / run_runtime(cluster::ManagerKind::kCentral, a, b, cap,
                             seed));
      podd_norms.push_back(
          fair / run_runtime(cluster::ManagerKind::kHierarchical, a, b,
                             cap, seed));
      pen_norms.push_back(
          fair / run_runtime(cluster::ManagerKind::kPenelope, a, b, cap,
                             seed));
    }
    double slurm_geo = common::geomean(slurm_norms);
    double podd_geo = common::geomean(podd_norms);
    double pen_geo = common::geomean(pen_norms);
    figure.add_row({common::fmt_double(cap, 0),
                    common::fmt_double(slurm_geo, 4),
                    common::fmt_double(podd_geo, 4),
                    common::fmt_double(pen_geo, 4),
                    common::fmt_percent(podd_geo / slurm_geo - 1.0)});
  }

  emit(figure, "hierarchy_comparison",
       "Extension: PoDD-style hierarchical manager vs Fair/SLURM/"
       "Penelope on coupled workloads (geomean vs Fair)");
  return 0;
}
