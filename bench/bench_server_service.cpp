// §4.5.2 in-text numbers — central-server service time and the
// saturation extrapolation.
//
// Measures the per-request service time of the SLURM-style server under
// load (paper: 80-100 us) and reproduces the two extrapolations:
//   * nodes at 1 Hz that saturate the server: 1 s / service  (~12,500 at
//     80 us in the paper)
//   * frequency that saturates 1056 nodes: 1 / (1056 * service) (~11.8
//     iterations/s in the paper)
//
// Options: nodes=1056 seconds=20 seed=S
#include "cluster/scale.hpp"

#include "bench_common.hpp"

using namespace penelope;
using namespace penelope::bench;

int main(int argc, char** argv) {
  const std::string usage =
      "bench_server_service [nodes=1056] [seconds=20] [seed=S]";
  common::Config config = parse_or_die(argc, argv, usage);
  int nodes = config.get_int("nodes", 1056);
  double seconds = config.get_double("seconds", 20.0);
  auto seed = static_cast<std::uint64_t>(config.get_int("seed", 42));
  reject_unused(config, usage);

  // Drive a loaded central cluster and read the serial server's stats.
  cluster::ScaleConfig sc;
  sc.manager = cluster::ManagerKind::kCentral;
  sc.n_nodes = nodes;
  sc.frequency_hz = 1.0;
  sc.window_seconds = seconds;
  sc.seed = seed;
  cluster::ClusterConfig cc = cluster::make_scale_cluster_config(sc);

  // Build the cluster directly so the service stats stay accessible.
  std::vector<workload::WorkloadProfile> profiles;
  for (int i = 0; i < nodes; ++i) {
    workload::WorkloadProfile p;
    p.name = "hungry";
    p.phases.push_back(workload::Phase{"hot", 240.0, 1e6});
    profiles.push_back(std::move(p));
  }
  cluster::Cluster cl(cc, std::move(profiles));
  cl.run_for(seconds);
  cluster::RunResult result = cl.collect_result();

  if (!result.server_stats) {
    std::fprintf(stderr, "error: no server stats (not a central run?)\n");
    return 1;
  }
  const auto& stats = *result.server_stats;
  double service_us =
      stats.processed
          ? static_cast<double>(stats.total_service_time) /
                static_cast<double>(stats.processed)
          : 0.0;
  double wait_us = stats.mean_queue_wait_us();

  common::Table table({"metric", "value", "paper"});
  table.add_row({"requests processed", std::to_string(stats.processed),
                 "-"});
  table.add_row({"mean service time (us)",
                 common::fmt_double(service_us, 1), "80-100"});
  table.add_row({"mean queue wait (ms)",
                 common::fmt_double(wait_us / 1000.0, 2), "tens of ms"});
  table.add_row({"saturation nodes @ 1 Hz",
                 common::fmt_double(1e6 / service_us, 0),
                 "~12500 (at 80 us)"});
  table.add_row({"saturation freq @ 1056 nodes (Hz)",
                 common::fmt_double(1e6 / (1056.0 * service_us), 1),
                 "~11.8 (at 80 us)"});

  emit(table, "server_service",
       "Section 4.5.2: central-server service time and saturation "
       "extrapolation");
  return 0;
}
