// Ablation benches for the design choices DESIGN.md §5 calls out:
//
//  A. Transaction-size limit (Algorithm 2's clamp(10%, 1 W, 30 W)) vs
//     unlimited grants — §3.2 argues the limit prevents hoarding and
//     power oscillation. We measure grant-size distribution, Jain
//     fairness of received power, and cap churn.
//  B. Urgency on vs off — §3's starved-node recovery mechanism. A
//     phase-flip workload (idle-then-hot vs always-hot) shows what
//     urgency buys the flipped nodes.
//  C. Local-take policy — Algorithm 1 read literally rate-limits a
//     node's access to its own pool; the library defaults to draining
//     it (see core/decider.hpp). This quantifies the difference.
//  D. Peer discovery — uniform random (the paper) vs retry-last-
//     successful-peer (a locality heuristic in the spirit of the
//     paper's future work).
//
// Options: nodes=20 cap=70 seed=S quick=1
#include "bench_common.hpp"

using namespace penelope;
using namespace penelope::bench;

namespace {

struct AblationOutcome {
  double runtime = 0.0;
  double fairness = 1.0;       ///< Jain over per-node received watts
  double churn_watts = 0.0;    ///< total watts moved per node per second
  double requests_per_grant = 0.0;
};

AblationOutcome run_case(cluster::ClusterConfig cc,
                         std::vector<workload::WorkloadProfile> profiles) {
  cluster::Cluster cl(std::move(cc), std::move(profiles));
  cluster::RunResult result = cl.run();
  AblationOutcome out;
  out.runtime = result.runtime_seconds;

  std::vector<double> per_node(
      static_cast<std::size_t>(cl.config().n_nodes), 0.0);
  double total_applied = 0.0;
  std::size_t grants = 0;
  for (const auto& ev : cl.metrics().applies()) {
    if (ev.node >= 0 &&
        ev.node < static_cast<int>(per_node.size())) {
      per_node[static_cast<std::size_t>(ev.node)] += ev.watts;
    }
    total_applied += ev.watts;
    ++grants;
  }
  out.fairness = common::jain_fairness(per_node);
  out.churn_watts = total_applied /
                    std::max(result.runtime_seconds, 1e-9) /
                    cl.config().n_nodes;
  out.requests_per_grant =
      grants ? static_cast<double>(result.requests_sent) /
                   static_cast<double>(grants)
             : 0.0;
  return out;
}

workload::WorkloadProfile phase_flip_profile(bool flips, double scale) {
  workload::WorkloadProfile p;
  if (flips) {
    p.name = "flip";
    p.phases = {workload::Phase{"idle", 60.0, 30.0 * scale},
                workload::Phase{"hot", 240.0, 60.0 * scale}};
  } else {
    p.name = "steady";
    p.phases = {workload::Phase{"hot", 230.0, 100.0 * scale}};
  }
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string usage = "bench_ablation [nodes=20] [cap=70] [seed=S] "
                            "[quick=1]";
  common::Config config = parse_or_die(argc, argv, usage);
  bool quick = config.get_bool("quick", false);
  int nodes = config.get_int("nodes", quick ? 8 : 20);
  double cap = config.get_double("cap", 70.0);
  auto seed = static_cast<std::uint64_t>(config.get_int("seed", 42));
  reject_unused(config, usage);

  workload::NpbConfig npb = paper_npb_config(seed);
  if (quick) npb.duration_scale = 0.25;

  auto base_cc = [&](cluster::ManagerKind manager) {
    cluster::ClusterConfig cc = paper_cluster_config(manager, cap, seed);
    cc.n_nodes = nodes;
    return cc;
  };
  auto pair_profiles = [&] {
    return cluster::make_pair_workloads(workload::NpbApp::kEP,
                                        workload::NpbApp::kDC, nodes,
                                        npb);
  };

  double fair_runtime =
      run_case(base_cc(cluster::ManagerKind::kFair), pair_profiles())
          .runtime;

  // --- A: transaction limit --------------------------------------------
  common::Table limit_table({"variant", "perf_vs_fair", "jain_fairness",
                             "churn_w_per_node_s"});
  {
    AblationOutcome limited = run_case(
        base_cc(cluster::ManagerKind::kPenelope), pair_profiles());
    cluster::ClusterConfig unlimited_cc =
        base_cc(cluster::ManagerKind::kPenelope);
    unlimited_cc.pool.share_fraction = 1.0;
    unlimited_cc.pool.upper_limit_watts = 1e9;
    unlimited_cc.pool.lower_limit_watts = 0.0;
    AblationOutcome unlimited = run_case(unlimited_cc, pair_profiles());
    limit_table.add_row({"clamped (paper)",
                         common::fmt_double(fair_runtime / limited.runtime,
                                            4),
                         common::fmt_double(limited.fairness, 4),
                         common::fmt_double(limited.churn_watts, 2)});
    limit_table.add_row(
        {"unlimited grants",
         common::fmt_double(fair_runtime / unlimited.runtime, 4),
         common::fmt_double(unlimited.fairness, 4),
         common::fmt_double(unlimited.churn_watts, 2)});
  }
  emit(limit_table, "ablation_txn_limit",
       "Ablation A: transaction-size limit (3.2: the clamp damps "
       "oscillation and spreads power fairly)");

  // --- B: urgency --------------------------------------------------------
  common::Table urgency_table({"variant", "runtime_s", "perf_vs_off"});
  {
    auto flip_profiles = [&] {
      std::vector<workload::WorkloadProfile> profiles;
      double scale = quick ? 0.3 : 1.0;
      for (int i = 0; i < nodes; ++i)
        profiles.push_back(phase_flip_profile(i < nodes / 2, scale));
      return profiles;
    };
    cluster::ClusterConfig on_cc = base_cc(cluster::ManagerKind::kPenelope);
    cluster::ClusterConfig off_cc = on_cc;
    off_cc.urgency_enabled = false;
    AblationOutcome on = run_case(on_cc, flip_profiles());
    AblationOutcome off = run_case(off_cc, flip_profiles());
    urgency_table.add_row({"urgency on (paper)",
                           common::fmt_double(on.runtime, 1),
                           common::fmt_double(off.runtime / on.runtime,
                                              4)});
    urgency_table.add_row({"urgency off",
                           common::fmt_double(off.runtime, 1), "1.0000"});
  }
  emit(urgency_table, "ablation_urgency",
       "Ablation B: urgency on/off under a phase-flip workload "
       "(urgency lets starved nodes reclaim their initial caps)");

  // --- C: local take policy ---------------------------------------------
  common::Table local_table({"variant", "perf_vs_fair",
                             "requests_per_grant"});
  {
    AblationOutcome drain = run_case(
        base_cc(cluster::ManagerKind::kPenelope), pair_profiles());
    cluster::ClusterConfig literal_cc =
        base_cc(cluster::ManagerKind::kPenelope);
    literal_cc.local_take = core::LocalTakePolicy::kRateLimited;
    AblationOutcome literal = run_case(literal_cc, pair_profiles());
    local_table.add_row(
        {"drain-all (default)",
         common::fmt_double(fair_runtime / drain.runtime, 4),
         common::fmt_double(drain.requests_per_grant, 3)});
    local_table.add_row(
        {"rate-limited (Algorithm 1 literal)",
         common::fmt_double(fair_runtime / literal.runtime, 4),
         common::fmt_double(literal.requests_per_grant, 3)});
  }
  emit(local_table, "ablation_local_take",
       "Ablation C: local pool take policy");

  // --- D: peer discovery --------------------------------------------------
  common::Table peer_table({"variant", "perf_vs_fair",
                            "requests_per_grant"});
  {
    AblationOutcome uniform = run_case(
        base_cc(cluster::ManagerKind::kPenelope), pair_profiles());
    cluster::ClusterConfig sticky_cc =
        base_cc(cluster::ManagerKind::kPenelope);
    sticky_cc.sticky_peers = true;
    AblationOutcome sticky = run_case(sticky_cc, pair_profiles());
    cluster::ClusterConfig hint_cc =
        base_cc(cluster::ManagerKind::kPenelope);
    hint_cc.hint_discovery = true;
    AblationOutcome hinted = run_case(hint_cc, pair_profiles());
    peer_table.add_row(
        {"uniform random (paper)",
         common::fmt_double(fair_runtime / uniform.runtime, 4),
         common::fmt_double(uniform.requests_per_grant, 3)});
    peer_table.add_row(
        {"sticky on success",
         common::fmt_double(fair_runtime / sticky.runtime, 4),
         common::fmt_double(sticky.requests_per_grant, 3)});
    peer_table.add_row(
        {"hint forwarding (extension)",
         common::fmt_double(fair_runtime / hinted.runtime, 4),
         common::fmt_double(hinted.requests_per_grant, 3)});
  }
  emit(peer_table, "ablation_peer_discovery",
       "Ablation D: peer discovery policy");

  // --- E: push-gossip diffusion -------------------------------------------
  common::Table push_table({"variant", "perf_vs_fair",
                            "requests_per_grant"});
  {
    AblationOutcome pull_only = run_case(
        base_cc(cluster::ManagerKind::kPenelope), pair_profiles());
    cluster::ClusterConfig push_cc =
        base_cc(cluster::ManagerKind::kPenelope);
    push_cc.push_gossip = true;
    AblationOutcome with_push = run_case(push_cc, pair_profiles());
    push_table.add_row(
        {"pull only (paper)",
         common::fmt_double(fair_runtime / pull_only.runtime, 4),
         common::fmt_double(pull_only.requests_per_grant, 3)});
    push_table.add_row(
        {"pull + push gossip (extension)",
         common::fmt_double(fair_runtime / with_push.runtime, 4),
         common::fmt_double(with_push.requests_per_grant, 3)});
  }
  emit(push_table, "ablation_push_gossip",
       "Ablation E: proactive push-gossip diffusion of excess");

  return 0;
}
