// Counting global operator new/delete hooks for allocation-budget
// gates (net.zero_alloc, telemetry.ZeroOverheadGate).
//
// Including this header REPLACES the global allocation functions for
// the whole binary: every operator new (array, nothrow, and aligned
// forms) bumps pen_alloc_gate::heap_allocs() before delegating to
// malloc. Replacement functions must have external linkage and appear
// exactly once per program, so include this from exactly ONE
// translation unit of a binary — in this tree each bench executable is
// a single .cpp, which is why this lives in bench/ and not src/.
//
// The counter deliberately counts *calls*, not bytes: the gates assert
// a warm steady state performs zero allocator round trips, and one
// stray vector growth is exactly one count.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace pen_alloc_gate {

inline std::atomic<std::uint64_t>& heap_allocs() {
  static std::atomic<std::uint64_t> count{0};
  return count;
}

inline std::uint64_t allocs_now() {
  return heap_allocs().load(std::memory_order_relaxed);
}

inline void* counted_alloc(std::size_t size) {
  heap_allocs().fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

inline void* counted_aligned_alloc(std::size_t size,
                                   std::size_t alignment) {
  heap_allocs().fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, alignment, size ? size : alignment) != 0)
    throw std::bad_alloc();
  return p;
}

}  // namespace pen_alloc_gate

void* operator new(std::size_t size) {
  return pen_alloc_gate::counted_alloc(size);
}
void* operator new[](std::size_t size) {
  return pen_alloc_gate::counted_alloc(size);
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  pen_alloc_gate::heap_allocs().fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  pen_alloc_gate::heap_allocs().fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new(std::size_t size, std::align_val_t alignment) {
  return pen_alloc_gate::counted_aligned_alloc(
      size, static_cast<std::size_t>(alignment));
}
void* operator new[](std::size_t size, std::align_val_t alignment) {
  return pen_alloc_gate::counted_aligned_alloc(
      size, static_cast<std::size_t>(alignment));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
