// Penelope over real UDP sockets — the deployment path.
//
// Spins up N independent Penelope nodes, each with its own loopback UDP
// socket, speaking the binary wire format from net/codec.hpp. On a real
// cluster the same code runs with each node bound to its fabric address
// and SysfsRapl behind the power interface; here the power substrate is
// the simulated RAPL model so the demo runs anywhere.
//
// Usage: ./udp_demo [nodes=4] [seconds=2] [period_ms=20]
//            [metrics=FILE.prom] [perfetto=FILE.json]
//            [flight_recorder=N]
#include <cstdio>
#include <string>

#include "common/config.hpp"
#include "rt/udp_node.hpp"
#include "telemetry/export.hpp"

using namespace penelope;

namespace {
bool write_text_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return std::fclose(f) == 0 && ok;
}
}  // namespace

int main(int argc, char** argv) {
  common::Config config;
  if (!config.parse_args(argc, argv)) {
    std::fprintf(stderr,
                 "usage: udp_demo [nodes=4] [seconds=2] [period_ms=20] "
                 "[metrics=FILE.prom] [perfetto=FILE.json] "
                 "[flight_recorder=N]\n");
    return 2;
  }
  int nodes = config.get_int("nodes", 4);
  double seconds = config.get_double("seconds", 2.0);
  double period_ms = config.get_double("period_ms", 20.0);
  std::string metrics_path = config.get_string("metrics", "");
  std::string perfetto_path = config.get_string("perfetto", "");

  rt::UdpNodeConfig base;
  base.initial_cap_watts = 120.0;
  base.period = common::from_millis(period_ms);
  base.request_timeout = common::from_millis(period_ms);
  base.seed = 21;
  base.flight_recorder_capacity = static_cast<std::size_t>(
      config.get_int("flight_recorder",
                     perfetto_path.empty() ? 0 : 1 << 14));

  // Donors want 60 W, the hungry half wants 240 W against 120 W caps.
  std::vector<std::vector<rt::DemandPhase>> scripts;
  for (int i = 0; i < nodes; ++i) {
    double demand = (i < nodes / 2) ? 60.0 : 240.0;
    scripts.push_back(
        {rt::DemandPhase{demand, common::from_seconds(3600.0)}});
  }

  rt::UdpCluster cluster(nodes, base, std::move(scripts));
  if (!cluster.ok()) {
    std::fprintf(stderr, "failed to bind loopback sockets\n");
    return 1;
  }

  std::printf("running %d Penelope nodes over loopback UDP for %.1f s "
              "(period %.0f ms)...\n\n",
              nodes, seconds, period_ms);
  cluster.run_for(common::from_seconds(seconds));

  for (const auto& report : cluster.reports()) {
    std::printf("node %d: cap %6.1f W  pool %6.1f W  packets %-5llu "
                "grants %-4llu timeouts %-3llu decode-failures %llu\n",
                report.id, report.final_cap, report.final_pool,
                static_cast<unsigned long long>(report.packets_received),
                static_cast<unsigned long long>(report.grants_received),
                static_cast<unsigned long long>(report.timeouts),
                static_cast<unsigned long long>(report.decode_failures));
  }
  std::printf("\nbudget %.0f W, live total %.2f W — conserved across "
              "real sockets.\n",
              cluster.budget(), cluster.total_live_watts());
  std::printf("(swap power::SysfsRapl behind the PowerInterface and bind "
              "non-loopback addresses to deploy on a real cluster)\n");

  if (!metrics_path.empty() &&
      write_text_file(metrics_path, telemetry::to_prometheus_text(
                                        cluster.metrics_snapshot()))) {
    std::printf("metrics -> %s\n", metrics_path.c_str());
  }
  if (!perfetto_path.empty()) {
    std::vector<telemetry::TxnRecord> records = cluster.flight_records();
    if (write_text_file(perfetto_path,
                        telemetry::to_perfetto_json(records))) {
      std::printf("perfetto           %zu txn events -> %s\n",
                  records.size(), perfetto_path.c_str());
    }
  }
  return 0;
}
