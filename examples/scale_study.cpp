// Mini scale study (§4.5): completion-burst experiments over a range of
// cluster sizes, printing redistribution and turnaround times for the
// central and peer-to-peer systems side by side. A condensed version of
// what bench_redist_scale / bench_turnaround_scale sweep in full.
//
// All (scale, manager) runs are independent, so they execute through
// the parallel sweep engine; output is byte-identical at any jobs=N.
//
// Usage: ./examples/scale_study [scales=32,128,512] [freq=1] [jobs=1]
//        [sim_jobs=1]   (threads *within* each run; jobs= parallelizes
//        across runs — the two compose, and neither changes any number
//        printed)
//        [pools=0] [fanout=8]   (DESIGN.md §13: pools>0 adds a third
//        column running the federated flat-arena Penelope; pools=-1
//        picks ~sqrt(nodes) leaf pools per scale point)
#include <cmath>
#include <cstdio>

#include "cluster/scale.hpp"
#include "common/config.hpp"
#include "sweep/sweep.hpp"

using namespace penelope;

int main(int argc, char** argv) {
  common::Config config;
  if (!config.parse_args(argc, argv)) {
    std::fprintf(stderr,
                 "usage: scale_study [scales=32,128,512] [freq=1] "
                 "[jobs=1]\n");
    return 2;
  }
  std::vector<int> scales =
      config.get_int_list("scales", {32, 128, 512});
  double freq = config.get_double("freq", 1.0);
  int jobs = config.get_int("jobs", 1);
  int sim_jobs = config.get_int("sim_jobs", 1);
  int pools = config.get_int("pools", 0);
  int fanout = config.get_int("fanout", 8);
  bool federated = pools != 0;

  std::vector<cluster::ScaleConfig> points;
  for (int nodes : scales) {
    cluster::ScaleConfig sc;
    sc.n_nodes = nodes;
    sc.frequency_hz = freq;
    sc.window_seconds = 120.0;
    sc.sim_jobs = sim_jobs;
    sc.seed = 3;
    sc.manager = cluster::ManagerKind::kCentral;
    points.push_back(sc);
    sc.manager = cluster::ManagerKind::kPenelope;
    points.push_back(sc);
    if (federated) {
      sc.pools = pools > 0 ? pools
                           : static_cast<int>(std::lround(
                                 std::sqrt(static_cast<double>(nodes))));
      sc.fanout = fanout;
      points.push_back(sc);
    }
  }
  std::vector<cluster::ScaleResult> results =
      sweep::run_scale_sweep(points, jobs);

  std::printf("completion burst: half the cluster finishes and its power "
              "must reach the other half\n");
  if (federated) {
    std::printf("%-7s | %-22s | %-22s | %-22s\n", "", "SLURM (central)",
                "Penelope (P2P)", "Penelope (federated)");
    std::printf("%-7s | %10s %11s | %10s %11s | %10s %11s\n", "nodes",
                "t50 (s)", "wait (ms)", "t50 (s)", "wait (ms)", "t50 (s)",
                "wait (ms)");
  } else {
    std::printf("%-7s | %-22s | %-22s\n", "", "SLURM (central)",
                "Penelope (P2P)");
    std::printf("%-7s | %10s %11s | %10s %11s\n", "nodes", "t50 (s)",
                "wait (ms)", "t50 (s)", "wait (ms)");
  }

  std::size_t k = 0;
  for (int nodes : scales) {
    const cluster::ScaleResult& central = results[k++];
    const cluster::ScaleResult& penelope = results[k++];
    if (federated) {
      const cluster::ScaleResult& fed = results[k++];
      std::printf("%-7d | %10.2f %11.3f | %10.2f %11.3f | %10.2f "
                  "%11.3f\n",
                  nodes, central.median_redistribution_s,
                  central.mean_turnaround_ms,
                  penelope.median_redistribution_s,
                  penelope.mean_turnaround_ms,
                  fed.median_redistribution_s, fed.mean_turnaround_ms);
    } else {
      std::printf("%-7d | %10.2f %11.3f | %10.2f %11.3f\n", nodes,
                  central.median_redistribution_s,
                  central.mean_turnaround_ms,
                  penelope.median_redistribution_s,
                  penelope.mean_turnaround_ms);
    }
  }

  std::printf("\nSLURM's wait grows with scale (one server drains every "
              "burst serially);\nPenelope's stays flat (the same load is "
              "split across every node's pool).\n");
  return 0;
}
