// Mini scale study (§4.5): completion-burst experiments over a range of
// cluster sizes, printing redistribution and turnaround times for the
// central and peer-to-peer systems side by side. A condensed version of
// what bench_redist_scale / bench_turnaround_scale sweep in full.
//
// All (scale, manager) runs are independent, so they execute through
// the parallel sweep engine; output is byte-identical at any jobs=N.
//
// Usage: ./examples/scale_study [scales=32,128,512] [freq=1] [jobs=1]
//        [sim_jobs=1]   (threads *within* each run; jobs= parallelizes
//        across runs — the two compose, and neither changes any number
//        printed)
//        [pools=0] [fanout=8]   (DESIGN.md §13: pools>0 adds a third
//        column running the federated flat-arena Penelope; pools=-1
//        picks ~sqrt(nodes) leaf pools per scale point)
//        [convergence=0] [series_window=250] [epsilon=0.01]
//        (convergence=1 switches to the HealthMonitor study: time from
//        the burst until Jain's index over active nodes recovers to
//        >= 1-epsilon, flat Penelope vs pools=sqrt(N) federation,
//        sampled every series_window ms — DESIGN.md §14)
#include <cmath>
#include <cstdio>

#include "cluster/scale.hpp"
#include "common/config.hpp"
#include "sweep/sweep.hpp"

using namespace penelope;

int main(int argc, char** argv) {
  common::Config config;
  if (!config.parse_args(argc, argv)) {
    std::fprintf(stderr,
                 "usage: scale_study [scales=32,128,512] [freq=1] "
                 "[jobs=1]\n");
    return 2;
  }
  std::vector<int> scales =
      config.get_int_list("scales", {32, 128, 512});
  double freq = config.get_double("freq", 1.0);
  int jobs = config.get_int("jobs", 1);
  int sim_jobs = config.get_int("sim_jobs", 1);
  int pools = config.get_int("pools", 0);
  int fanout = config.get_int("fanout", 8);
  bool federated = pools != 0;
  bool convergence = config.get_bool("convergence", false);
  double series_window_ms = config.get_double("series_window", 250.0);
  double epsilon = config.get_double("epsilon", 0.01);

  if (convergence) {
    // Convergence-time-vs-N (ROADMAP item 1's figure): the same
    // completion burst, but measured online by the HealthMonitor —
    // flat Penelope against a pools=sqrt(N) federation.
    std::vector<cluster::ScaleConfig> points;
    for (int nodes : scales) {
      cluster::ScaleConfig sc;
      sc.n_nodes = nodes;
      sc.frequency_hz = freq;
      sc.window_seconds = 120.0;
      sc.sim_jobs = sim_jobs;
      sc.seed = 3;
      sc.manager = cluster::ManagerKind::kPenelope;
      sc.series_interval = common::from_millis(series_window_ms);
      sc.health_epsilon = epsilon;
      points.push_back(sc);
      sc.pools = pools > 0 ? pools
                           : static_cast<int>(std::lround(std::sqrt(
                                 static_cast<double>(nodes))));
      sc.fanout = fanout;
      points.push_back(sc);
    }
    std::vector<cluster::ScaleResult> results =
        sweep::run_scale_sweep(points, jobs);

    std::printf("online convergence: time from the burst until Jain's "
                "index over active nodes\nrecovers to >= %.3f "
                "(sampled every %.0f ms)\n",
                1.0 - epsilon, series_window_ms);
    std::printf("%-8s | %-24s | %-24s\n", "", "Penelope (flat)",
                "Penelope (pools=sqrt N)");
    std::printf("%-8s | %12s %11s | %12s %11s\n", "nodes", "conv (s)",
                "min Jain", "conv (s)", "min Jain");
    std::size_t k = 0;
    for (int nodes : scales) {
      const cluster::ScaleResult& flat = results[k++];
      const cluster::ScaleResult& fed = results[k++];
      char flat_s[16];
      char fed_s[16];
      std::snprintf(flat_s, sizeof flat_s,
                    flat.converged ? "%.2f" : ">%.0f",
                    flat.convergence_s);
      std::snprintf(fed_s, sizeof fed_s, fed.converged ? "%.2f" : ">%.0f",
                    fed.convergence_s);
      std::printf("%-8d | %12s %11.4f | %12s %11.4f\n", nodes, flat_s,
                  flat.min_jain, fed_s, fed.min_jain);
    }
    std::printf("\nconv (s) is measured online by the telemetry sampler "
                "(O(pools) memory);\n>W means Jain never recovered "
                "inside the W-second window.\n");
    return 0;
  }

  std::vector<cluster::ScaleConfig> points;
  for (int nodes : scales) {
    cluster::ScaleConfig sc;
    sc.n_nodes = nodes;
    sc.frequency_hz = freq;
    sc.window_seconds = 120.0;
    sc.sim_jobs = sim_jobs;
    sc.seed = 3;
    sc.manager = cluster::ManagerKind::kCentral;
    points.push_back(sc);
    sc.manager = cluster::ManagerKind::kPenelope;
    points.push_back(sc);
    if (federated) {
      sc.pools = pools > 0 ? pools
                           : static_cast<int>(std::lround(
                                 std::sqrt(static_cast<double>(nodes))));
      sc.fanout = fanout;
      points.push_back(sc);
    }
  }
  std::vector<cluster::ScaleResult> results =
      sweep::run_scale_sweep(points, jobs);

  std::printf("completion burst: half the cluster finishes and its power "
              "must reach the other half\n");
  if (federated) {
    std::printf("%-7s | %-22s | %-22s | %-22s\n", "", "SLURM (central)",
                "Penelope (P2P)", "Penelope (federated)");
    std::printf("%-7s | %10s %11s | %10s %11s | %10s %11s\n", "nodes",
                "t50 (s)", "wait (ms)", "t50 (s)", "wait (ms)", "t50 (s)",
                "wait (ms)");
  } else {
    std::printf("%-7s | %-22s | %-22s\n", "", "SLURM (central)",
                "Penelope (P2P)");
    std::printf("%-7s | %10s %11s | %10s %11s\n", "nodes", "t50 (s)",
                "wait (ms)", "t50 (s)", "wait (ms)");
  }

  std::size_t k = 0;
  for (int nodes : scales) {
    const cluster::ScaleResult& central = results[k++];
    const cluster::ScaleResult& penelope = results[k++];
    if (federated) {
      const cluster::ScaleResult& fed = results[k++];
      std::printf("%-7d | %10.2f %11.3f | %10.2f %11.3f | %10.2f "
                  "%11.3f\n",
                  nodes, central.median_redistribution_s,
                  central.mean_turnaround_ms,
                  penelope.median_redistribution_s,
                  penelope.mean_turnaround_ms,
                  fed.median_redistribution_s, fed.mean_turnaround_ms);
    } else {
      std::printf("%-7d | %10.2f %11.3f | %10.2f %11.3f\n", nodes,
                  central.median_redistribution_s,
                  central.mean_turnaround_ms,
                  penelope.median_redistribution_s,
                  penelope.mean_turnaround_ms);
    }
  }

  std::printf("\nSLURM's wait grows with scale (one server drains every "
              "burst serially);\nPenelope's stays flat (the same load is "
              "split across every node's pool).\n");
  return 0;
}
