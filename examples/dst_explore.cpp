// Deterministic fault-schedule explorer driver.
//
// Sweeps a swarm of (seed, schedule) pairs through the simulated
// Penelope cluster, judges every run with the invariant oracles, and
// shrinks any violating schedule to a minimal fault-event repro plus a
// one-line `run_experiment` replay command.
//
//   ./dst_explore                          # default 32x32 = 1024 pairs
//   ./dst_explore seeds=8 schedules=8      # quick look
//   ./dst_explore plant_bug=1              # self-test: find the planted
//                                          # grant-dedup regression
//
// Exit status: 0 when no oracle fired (or when plant_bug=1 and the bug
// was found and shrunk), 1 otherwise — so CI can gate on both modes.
#include <cstdio>
#include <string>

#include "common/config.hpp"
#include "dst/explorer.hpp"

namespace {

constexpr const char* kUsage = R"(dst_explore: fault-schedule swarm + oracle + shrinker

  knobs (key=value):
    nodes=N           cluster size                       [8]
    seeds=N           workload seeds in the swarm        [32]
    schedules=N       schedule variants per seed         [32]
    seed=N            base seed                          [1]
    jobs=N            swarm worker threads (0=hw)        [0]
    duration_scale=F  NPB workload scale                 [0.3]
    horizon_s=F       faults land in [1, horizon)        [40]
    episodes=N        fault episodes per schedule        [4]
    watchdog_s=F      liveness watchdog window           [30]
    shrink=0|1        ddmin violating schedules          [1]
    plant_bug=0|1     self-test against the planted bug  [0]
)";

}  // namespace

int main(int argc, char** argv) {
  penelope::common::Config config;
  if (!config.parse_args(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", config.error().c_str(), kUsage);
    return 2;
  }

  penelope::dst::ExplorerConfig cfg;
  cfg.n_nodes = config.get_int("nodes", 8);
  cfg.seeds = config.get_int("seeds", 32);
  cfg.schedules = config.get_int("schedules", 32);
  cfg.base_seed = static_cast<std::uint64_t>(config.get_int("seed", 1));
  cfg.jobs = config.get_int("jobs", 0);
  cfg.duration_scale = config.get_double("duration_scale", 0.3);
  cfg.spec.horizon_s = config.get_double("horizon_s", 40.0);
  cfg.spec.episodes = config.get_int("episodes", 4);
  cfg.watchdog_s = config.get_double("watchdog_s", 30.0);
  cfg.plant_bug = config.get_bool("plant_bug", false);
  const bool do_shrink = config.get_bool("shrink", true);
  if (!config.unused_keys().empty()) {
    for (const std::string& key : config.unused_keys())
      std::fprintf(stderr, "unknown option: %s\n", key.c_str());
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }

  std::printf("dst_explore: %d seeds x %d schedules = %d runs "
              "(nodes=%d, horizon=%gs, episodes=%d%s)\n",
              cfg.seeds, cfg.schedules, cfg.seeds * cfg.schedules,
              cfg.n_nodes, cfg.spec.horizon_s, cfg.spec.episodes,
              cfg.plant_bug ? ", PLANTED BUG ARMED" : "");

  penelope::dst::SwarmReport report = penelope::dst::run_swarm(cfg);
  std::printf("swarm: %zu runs, %zu violating, outcome hash %016llx\n",
              report.runs, report.violating_runs,
              static_cast<unsigned long long>(report.outcome_hash));

  std::size_t shown = 0;
  for (const penelope::dst::RunOutcome& out : report.violations) {
    if (++shown > 5) {
      std::printf("... and %zu more violating runs\n",
                  report.violations.size() - 5);
      break;
    }
    std::printf("\nVIOLATION seed=%llu salt=%016llx\n  schedule: %s\n",
                static_cast<unsigned long long>(out.seed),
                static_cast<unsigned long long>(out.schedule_salt),
                out.schedule.c_str());
    for (const penelope::dst::Violation& v : out.violations)
      std::printf("  oracle %-12s %s\n", v.oracle.c_str(),
                  v.detail.c_str());
    if (!do_shrink) continue;

    std::vector<penelope::cluster::FaultEvent> schedule;
    if (!penelope::dst::parse_schedule(out.schedule, &schedule))
      continue;
    std::size_t spent = 0;
    std::vector<penelope::cluster::FaultEvent> minimal =
        penelope::dst::shrink_schedule(cfg, out.seed, schedule,
                                       out.violations.front().oracle,
                                       &spent);
    std::printf("  shrunk %zu -> %zu fault events in %zu runs\n",
                schedule.size(), minimal.size(), spent);
    std::printf("  minimal: %s\n",
                penelope::dst::format_schedule(minimal).c_str());
    std::printf("  repro: %s\n",
                penelope::dst::repro_command(cfg, out.seed, minimal)
                    .c_str());
  }

  if (cfg.plant_bug) {
    // Self-test mode: the planted bug MUST be found.
    if (report.violating_runs == 0) {
      std::fprintf(stderr,
                   "plant_bug=1 but no oracle fired: the explorer lost "
                   "its ability to find known bugs\n");
      return 1;
    }
    std::printf("\nplanted bug found by %zu/%zu runs\n",
                report.violating_runs, report.runs);
    return 0;
  }
  return report.violating_runs == 0 ? 0 : 1;
}
