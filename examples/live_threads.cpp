// Live real-thread Penelope: the same decider/pool logic the simulator
// drives, running as actual threads with wall-clock periods — one
// decider thread plus one pool-service thread per "node", in-process
// mailboxes as the fabric.
//
// On a machine with Intel RAPL exposed (and writable) under
// /sys/class/powercap, this example also probes the real power backend
// and reports what it found; everywhere else it falls back to the
// simulated RAPL model, exactly as §3.3 allows ("Penelope only requires
// an interface through which power can be read and node-level powercaps
// can be set").
//
// Usage: ./examples/live_threads [nodes=4] [seconds=2]
//            [metrics=FILE.prom] [perfetto=FILE.json]
//            [flight_recorder=N]
#include <cstdio>
#include <string>

#include "common/config.hpp"
#include "power/sysfs_rapl.hpp"
#include "rt/thread_cluster.hpp"
#include "telemetry/export.hpp"

using namespace penelope;

namespace {
bool write_text_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return std::fclose(f) == 0 && ok;
}
}  // namespace

int main(int argc, char** argv) {
  common::Config config;
  if (!config.parse_args(argc, argv)) {
    std::fprintf(stderr,
                 "usage: live_threads [nodes=4] [seconds=2] "
                 "[metrics=FILE.prom] [perfetto=FILE.json] "
                 "[flight_recorder=N]\n");
    return 2;
  }
  int nodes = config.get_int("nodes", 4);
  double seconds = config.get_double("seconds", 2.0);
  std::string metrics_path = config.get_string("metrics", "");
  std::string perfetto_path = config.get_string("perfetto", "");

  // Probe for real RAPL hardware first.
  power::SysfsRapl rapl(power::SysfsRaplConfig{});
  if (rapl.available()) {
    std::printf("intel-rapl: %zu package domain(s) found, caps %s; "
                "package power now: %.1f W\n",
                rapl.package_count(),
                rapl.cap_writable() ? "writable" : "READ-ONLY",
                rapl.read_average_power(0));
  } else {
    std::printf("intel-rapl: not available on this host — using the "
                "simulated RAPL model\n");
  }

  // Half the nodes want little power, half want more than their cap.
  rt::ThreadClusterConfig tc;
  tc.n_nodes = nodes;
  tc.initial_cap_watts = 120.0;
  tc.period = common::from_millis(20);
  tc.request_timeout = common::from_millis(20);
  tc.flight_recorder_capacity = static_cast<std::size_t>(
      config.get_int("flight_recorder",
                     perfetto_path.empty() ? 0 : 1 << 14));
  std::vector<std::vector<rt::DemandPhase>> scripts;
  for (int i = 0; i < nodes; ++i) {
    double demand = (i < nodes / 2) ? 60.0 : 240.0;
    scripts.push_back(
        {rt::DemandPhase{demand, common::from_seconds(3600.0)}});
  }

  std::printf("\nrunning %d real-thread nodes for %.1f s "
              "(period %.0f ms)...\n\n",
              nodes, seconds, common::to_millis(tc.period));
  rt::ThreadCluster cluster(tc, std::move(scripts));
  cluster.run_for(common::from_seconds(seconds));

  for (const auto& report : cluster.reports()) {
    std::printf(
        "node %d: cap %6.1f W  pool %6.1f W  steps %-4llu "
        "grants %-3llu timeouts %-3llu donated %.0f W received %.0f W\n",
        report.id, report.final_cap, report.final_pool,
        static_cast<unsigned long long>(report.decider.steps),
        static_cast<unsigned long long>(report.grants_received),
        static_cast<unsigned long long>(report.timeouts),
        report.decider.watts_donated, report.decider.watts_received);
  }
  std::printf("\nbudget %.0f W, live total %.2f W (conserved to "
              "floating point)\n",
              cluster.budget(), cluster.total_live_watts());

  if (!metrics_path.empty() &&
      write_text_file(metrics_path, telemetry::to_prometheus_text(
                                        cluster.metrics_snapshot()))) {
    std::printf("metrics -> %s\n", metrics_path.c_str());
  }
  if (!perfetto_path.empty()) {
    const telemetry::FlightRecorder& recorder = cluster.flight_recorder();
    if (write_text_file(perfetto_path,
                        telemetry::to_perfetto_json(recorder.snapshot()))) {
      std::printf("perfetto           %llu txn events -> %s\n",
                  static_cast<unsigned long long>(recorder.recorded()),
                  perfetto_path.c_str());
    }
  }
  return 0;
}
