// Quickstart: a 6-node simulated cluster under Penelope in ~60 lines.
//
// Three nodes run a power-hungry compute workload, three run an
// I/O-heavy one; Penelope shifts the I/O nodes' unused watts to the
// compute nodes through peer-to-peer transactions. Compare the runtime
// against the static Fair baseline printed alongside.
//
// Build & run:   ./examples/quickstart
#include <cstdio>

#include "cluster/cluster.hpp"
#include "workload/npb.hpp"

using namespace penelope;

namespace {

cluster::RunResult run(cluster::ManagerKind manager) {
  // 6 nodes at 70 W/socket (2 sockets): a 840 W system-wide budget.
  cluster::ClusterConfig config;
  config.manager = manager;
  config.n_nodes = 6;
  config.per_socket_cap_watts = 70.0;
  config.seed = 1;

  // Half the cluster runs EP (compute-hungry, ~230 W), half runs DC
  // (I/O-heavy, ~110 W): the canonical donor/consumer split.
  workload::NpbConfig npb;
  npb.duration_scale = 0.5;  // shrink class-D durations for a demo
  npb.demand_jitter_frac = 0.02;
  auto workloads = cluster::make_pair_workloads(
      workload::NpbApp::kEP, workload::NpbApp::kDC, config.n_nodes, npb);

  cluster::Cluster cl(config, std::move(workloads));
  return cl.run();
}

}  // namespace

int main() {
  std::printf("running 6-node cluster, EP (hungry) + DC (donor)...\n\n");

  cluster::RunResult fair = run(cluster::ManagerKind::kFair);
  cluster::RunResult penelope = run(cluster::ManagerKind::kPenelope);

  std::printf("Fair (static split):   %.1f s\n", fair.runtime_seconds);
  std::printf("Penelope (P2P shift):  %.1f s   (%.1f%% faster)\n",
              penelope.runtime_seconds,
              (fair.runtime_seconds / penelope.runtime_seconds - 1.0) *
                  100.0);
  std::printf("\npeer transactions: %llu requests, %zu completed, "
              "%llu timeouts\n",
              static_cast<unsigned long long>(penelope.requests_sent),
              penelope.turnaround_ms.size(),
              static_cast<unsigned long long>(penelope.timeouts));
  std::printf("system-wide cap held: max live overshoot %.2e W over "
              "%zu audits\n",
              penelope.audit.max_live_overshoot, penelope.audit.audits);
  return 0;
}
