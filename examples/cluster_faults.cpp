// Fault-tolerance scenario (the Figure 3 story, §4.4): the same workload
// runs under SLURM-style central management and under Penelope, and a
// node is killed mid-run — the central server in SLURM's case, one
// client's management plane in Penelope's.
//
// Watch the central system lose all power shifting (and keep donating
// into the void, stranding watts), while Penelope barely notices.
//
// Usage: ./examples/cluster_faults [nodes=8] [kill_s=30]
#include <cstdio>

#include "cluster/cluster.hpp"
#include "common/config.hpp"
#include "workload/npb.hpp"

using namespace penelope;

namespace {

cluster::RunResult run(cluster::ManagerKind manager, int nodes,
                       double kill_s) {
  cluster::ClusterConfig config;
  config.manager = manager;
  config.n_nodes = nodes;
  config.per_socket_cap_watts = 70.0;
  config.seed = 7;
  if (kill_s > 0.0) {
    if (manager == cluster::ManagerKind::kCentral) {
      config.faults = {cluster::FaultEvent{
          cluster::FaultEvent::Kind::kKillServer,
          common::from_seconds(kill_s), 0}};
    } else if (manager == cluster::ManagerKind::kPenelope) {
      config.faults = {cluster::FaultEvent{
          cluster::FaultEvent::Kind::kKillManagement,
          common::from_seconds(kill_s), nodes / 2}};
    }
  }

  workload::NpbConfig npb;
  npb.duration_scale = 0.5;
  npb.demand_jitter_frac = 0.02;
  auto workloads = cluster::make_pair_workloads(
      workload::NpbApp::kFT, workload::NpbApp::kCG, nodes, npb);

  cluster::Cluster cl(config, std::move(workloads));
  return cl.run();
}

void report(const char* label, const cluster::RunResult& result,
            double fair_runtime) {
  std::printf("%-28s %7.1f s  perf vs Fair %.3f  timeouts %-6llu "
              "stranded %.0f W\n",
              label, result.runtime_seconds,
              fair_runtime / result.runtime_seconds,
              static_cast<unsigned long long>(result.timeouts),
              result.stranded_watts);
}

}  // namespace

int main(int argc, char** argv) {
  common::Config config;
  if (!config.parse_args(argc, argv)) {
    std::fprintf(stderr, "usage: cluster_faults [nodes=8] [kill_s=30]\n");
    return 2;
  }
  int nodes = config.get_int("nodes", 8);
  double kill_s = config.get_double("kill_s", 30.0);

  std::printf("FT + CG on %d nodes; fault injected at t=%.0fs\n\n",
              nodes, kill_s);

  cluster::RunResult fair = run(cluster::ManagerKind::kFair, nodes, 0);
  report("Fair (no manager)", fair, fair.runtime_seconds);

  report("SLURM healthy",
         run(cluster::ManagerKind::kCentral, nodes, 0),
         fair.runtime_seconds);
  report("SLURM, server killed",
         run(cluster::ManagerKind::kCentral, nodes, kill_s),
         fair.runtime_seconds);

  report("Penelope healthy",
         run(cluster::ManagerKind::kPenelope, nodes, 0),
         fair.runtime_seconds);
  report("Penelope, 1 mgmt plane killed",
         run(cluster::ManagerKind::kPenelope, nodes, kill_s),
         fair.runtime_seconds);

  std::printf("\nThe killed central server strands every donation sent "
              "after the fault;\nPenelope has no single node whose loss "
              "stops power shifting.\n");
  return 0;
}
