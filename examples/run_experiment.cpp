// Configurable experiment runner: assemble any cluster the library can
// express from the command line, run it, and get a summary plus an
// optional per-node trajectory CSV for plotting.
//
// Examples:
//   ./run_experiment manager=penelope apps=EP,DC nodes=20 cap=80
//   ./run_experiment manager=central apps=FT,CG kill_server_at=60
//       trace=run.csv
//   ./run_experiment manager=penelope apps=EP,DC loss=0.05
//       hint_discovery=1 period_ms=250
#include <cstdio>
#include <cstring>

#include "cluster/cluster.hpp"
#include "common/config.hpp"
#include "common/stats.hpp"
#include "dst/explorer.hpp"
#include "sweep/sweep.hpp"
#include "telemetry/export.hpp"
#include "workload/npb.hpp"

using namespace penelope;

namespace {

const char* kUsage =
    "run_experiment [manager=penelope|central|fair] [apps=EP,DC]\n"
    "  [nodes=20] [cap=80] [period_ms=1000] [epsilon=5] [seed=42]\n"
    "  [sim_jobs=1]  (threads *within* one run; trace stays\n"
    "  bit-identical for any value)\n"
    "  [duration_scale=1.0] [loss=0.0] [dup=0.0] [reorder=0.0]\n"
    "  [reorder_delay_ms=250] [kill_server_at=S]\n"
    "  [kill_mgmt_node=I] [kill_mgmt_at=S] [urgency=1]\n"
    "  [membership=0] [heartbeat_ms=1000] [suspect_missed=3]\n"
    "  [dead_missed=6] [churn=0] [mtbf=120] [mttr=10]\n"
    "  [sticky_peers=0] [hint_discovery=0] [local_take=drain|limited]\n"
    "  [pools=0] [fanout=8] [low_water=30]  (hierarchical pool\n"
    "  federation on the flat-arena path, penelope only; pools=0 is\n"
    "  the classic flat path)\n"
    "  [trace=FILE] [trace_ms=1000] [trace_format=csv|jsonl|both]\n"
    "  [flight_ring=N] [flow_ring=N] [perfetto=FILE.json]\n"
    "  [metrics=FILE.prom]\n"
    "  [series=FILE.csv] [series_window=250] [health_epsilon=0.01]\n"
    "  (windowed time-series + health probes; series_window in ms,\n"
    "  sampling on changes the trace vs off but is bit-identical for\n"
    "  every sim_jobs value)\n"
    "fault-schedule / DST knobs:\n"
    "  [schedule='crash@12.5,3/recover@14,3/...']  (see src/dst/\n"
    "  schedule.hpp for the grammar; composes with kill_*_at=)\n"
    "  [watchdog_s=S] [watchdog_abort=0] [corrupt=0.0]\n"
    "  [dst=1]  (adopt the DST explorer's exact cluster base, so a\n"
    "  dst_explore repro line replays byte-identically)\n"
    "  [dst_bug=0]  (planted-bug test hook; only for DST self-tests)\n"
    "sweep mode (prints one table row per run; parallel output is\n"
    "byte-identical to jobs=1):\n"
    "  [seeds=1,2,3] [managers=penelope,central] [jobs=N] "
    "[sweep_csv=FILE]";

bool write_text_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return std::fclose(f) == 0 && ok;
}

bool parse_app(const std::string& name, workload::NpbApp* out) {
  for (auto app : workload::all_apps()) {
    if (name == workload::app_name(app)) {
      *out = app;
      return true;
    }
  }
  return false;
}

bool parse_manager(const std::string& name, cluster::ManagerKind* out) {
  if (name == "penelope") {
    *out = cluster::ManagerKind::kPenelope;
  } else if (name == "central" || name == "slurm") {
    *out = cluster::ManagerKind::kCentral;
  } else if (name == "fair") {
    *out = cluster::ManagerKind::kFair;
  } else if (name == "podd" || name == "hierarchical") {
    *out = cluster::ManagerKind::kHierarchical;
  } else {
    return false;
  }
  return true;
}

std::vector<std::string> split_csv(const std::string& list) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= list.size()) {
    std::size_t comma = list.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(list.substr(start));
      break;
    }
    out.push_back(list.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  common::Config config;
  if (!config.parse_args(argc, argv)) {
    std::fprintf(stderr, "error: %s\n%s\n", config.error().c_str(),
                 kUsage);
    return 2;
  }

  cluster::ClusterConfig cc;
  std::string manager = config.get_string("manager", "penelope");
  if (!parse_manager(manager, &cc.manager)) {
    std::fprintf(stderr, "error: unknown manager '%s'\n%s\n",
                 manager.c_str(), kUsage);
    return 2;
  }

  cc.n_nodes = config.get_int("nodes", 20);
  cc.per_socket_cap_watts = config.get_double("cap", 80.0);
  cc.period = common::from_millis(config.get_double("period_ms", 1000.0));
  cc.epsilon_watts = config.get_double("epsilon", 5.0);
  cc.seed = static_cast<std::uint64_t>(config.get_int("seed", 42));
  cc.sim_jobs = config.get_int("sim_jobs", 1);

  // DST repro mode: swap in the fault-schedule explorer's cluster base
  // so `dst_explore`'s one-line repro commands replay the exact run
  // (same manager, discovery knobs, audit cadence, watchdog, journal).
  const bool dst_mode = config.get_bool("dst", false);
  const double watchdog_s =
      config.get_double("watchdog_s", dst_mode ? 30.0 : 0.0);
  const bool dst_bug = config.get_bool("dst_bug", false);
  if (dst_mode) {
    dst::ExplorerConfig dcfg;
    dcfg.n_nodes = cc.n_nodes;
    dcfg.duration_scale = config.get_double("duration_scale", 0.3);
    dcfg.watchdog_s = watchdog_s;
    dcfg.plant_bug = dst_bug;
    cluster::ClusterConfig base = dst::make_dst_config(dcfg, cc.seed);
    base.sim_jobs = cc.sim_jobs;
    cc = base;
  }
  cc.network.loss_probability = config.get_double("loss", 0.0);
  cc.network.duplicate_probability = config.get_double("dup", 0.0);
  cc.network.reorder_probability = config.get_double("reorder", 0.0);
  cc.network.reorder_delay =
      common::from_millis(config.get_double("reorder_delay_ms", 250.0));
  cc.urgency_enabled = config.get_bool("urgency", true);
  cc.sticky_peers = config.get_bool("sticky_peers", false);
  cc.hint_discovery = config.get_bool("hint_discovery", false);
  if (config.get_string("local_take", "drain") == "limited")
    cc.local_take = core::LocalTakePolicy::kRateLimited;
  cc.federation_pools = config.get_int("pools", 0);
  cc.federation_fanout = config.get_int("fanout", 8);
  cc.federation_low_water_watts = config.get_double("low_water", 30.0);

  // Membership + churn (off by default; zero-churn runs with membership
  // off stay bit-identical to the pre-membership golden trace). The
  // churn schedule is drawn from a seed-derived stream, so churn=1
  // composes with seeds=/managers=/jobs= sweeps deterministically.
  cc.membership_enabled = config.get_bool("membership", false);
  cc.membership.heartbeat_period =
      common::from_millis(config.get_double("heartbeat_ms", 1000.0));
  cc.membership.suspect_after_missed =
      static_cast<std::uint32_t>(config.get_int("suspect_missed", 3));
  cc.membership.dead_after_missed =
      static_cast<std::uint32_t>(config.get_int("dead_missed", 6));
  cc.churn_enabled = config.get_bool("churn", false);
  cc.churn_mtbf_seconds = config.get_double("mtbf", 120.0);
  cc.churn_mttr_seconds = config.get_double("mttr", 10.0);

  double kill_server_at = config.get_double("kill_server_at", 0.0);
  if (kill_server_at > 0.0) {
    cc.faults.push_back(
        cluster::FaultEvent{cluster::FaultEvent::Kind::kKillServer,
                            common::from_seconds(kill_server_at), 0});
  }
  double kill_mgmt_at = config.get_double("kill_mgmt_at", 0.0);
  if (kill_mgmt_at > 0.0) {
    cc.faults.push_back(cluster::FaultEvent{
        cluster::FaultEvent::Kind::kKillManagement,
        common::from_seconds(kill_mgmt_at),
        config.get_int("kill_mgmt_node", 0)});
  }
  std::string schedule_text = config.get_string("schedule", "");
  std::vector<cluster::FaultEvent> schedule;
  if (!schedule_text.empty()) {
    std::string schedule_error;
    if (!dst::parse_schedule(schedule_text, &schedule,
                             &schedule_error)) {
      std::fprintf(stderr, "error: bad schedule: %s\n%s\n",
                   schedule_error.c_str(), kUsage);
      return 2;
    }
    cc.faults.insert(cc.faults.end(), schedule.begin(), schedule.end());
  }
  if (!dst_mode) {
    cc.watchdog_s = watchdog_s;
    cc.test_revert_grant_fix = dst_bug;
  }
  cc.watchdog_abort = config.get_bool("watchdog_abort", false);
  cc.network.corrupt_probability =
      config.get_double("corrupt", cc.network.corrupt_probability);

  std::string trace_path = config.get_string("trace", "");
  std::string trace_format = config.get_string("trace_format", "csv");
  if (trace_format != "csv" && trace_format != "jsonl" &&
      trace_format != "both") {
    std::fprintf(stderr, "error: trace_format must be csv, jsonl or "
                         "both\n%s\n",
                 kUsage);
    return 2;
  }
  std::string perfetto_path = config.get_string("perfetto", "");
  std::string metrics_path = config.get_string("metrics", "");
  // flight_ring= is the documented name; flight_recorder= predates it
  // and keeps working.
  cc.flight_recorder_capacity = static_cast<std::size_t>(config.get_int(
      "flight_ring",
      config.get_int("flight_recorder",
                     perfetto_path.empty() ? 0 : 1 << 16)));
  cc.flow_tracer_capacity = static_cast<std::size_t>(
      config.get_int("flow_ring", perfetto_path.empty() ? 0 : 1 << 16));
  if (!trace_path.empty() || !perfetto_path.empty()) {
    cc.trace_interval =
        common::from_millis(config.get_double("trace_ms", 1000.0));
  }
  // Windowed series + health sampling: on when series= names an output
  // file or series_window= is set explicitly.
  std::string series_path = config.get_string("series", "");
  double series_window_ms = config.get_double(
      "series_window", series_path.empty() ? 0.0 : 250.0);
  cc.series_interval = common::from_millis(series_window_ms);
  cc.health_epsilon = config.get_double("health_epsilon", 0.01);

  std::string apps = config.get_string("apps", "EP,DC");
  auto comma = apps.find(',');
  workload::NpbApp app_a{};
  workload::NpbApp app_b{};
  if (comma == std::string::npos ||
      !parse_app(apps.substr(0, comma), &app_a) ||
      !parse_app(apps.substr(comma + 1), &app_b)) {
    std::fprintf(stderr, "error: apps must be two of "
                         "BT,CG,EP,FT,LU,MG,SP,UA,DC\n%s\n",
                 kUsage);
    return 2;
  }

  workload::NpbConfig npb;
  npb.duration_scale =
      config.get_double("duration_scale", dst_mode ? 0.3 : 1.0);
  // DST runs use the explorer's jitter so repro lines replay exactly.
  npb.demand_jitter_frac = dst_mode ? 0.03 : 0.02;
  npb.seed = cc.seed;

  // Sweep mode: seeds= and/or managers= expand into independent runs
  // executed by the parallel sweep engine (src/sweep). The result table
  // is ordered by the spec expansion, never by completion, so jobs=N
  // output is byte-identical to jobs=1.
  int jobs = config.get_int("jobs", 1);
  std::vector<int> seed_list = config.get_int_list("seeds", {});
  std::string managers_list = config.get_string("managers", "");
  std::string sweep_csv = config.get_string("sweep_csv", "");
  bool sweep_mode = !seed_list.empty() || !managers_list.empty();

  for (const auto& key : config.unused_keys()) {
    std::fprintf(stderr, "error: unknown option '%s'\n%s\n", key.c_str(),
                 kUsage);
    return 2;
  }

  if (sweep_mode) {
    if (!trace_path.empty() || !perfetto_path.empty() ||
        !metrics_path.empty() || !series_path.empty()) {
      std::fprintf(stderr, "error: trace/perfetto/metrics/series are "
                           "single-run options (not available with "
                           "seeds=/managers= sweeps)\n%s\n",
                   kUsage);
      return 2;
    }
    sweep::SweepSpec spec;
    spec.configs = {cc};
    spec.app_a = app_a;
    spec.app_b = app_b;
    spec.npb = npb;
    if (managers_list.empty()) {
      spec.managers = {cc.manager};
    } else {
      for (const std::string& name : split_csv(managers_list)) {
        cluster::ManagerKind kind;
        if (!parse_manager(name, &kind)) {
          std::fprintf(stderr, "error: unknown manager '%s'\n%s\n",
                       name.c_str(), kUsage);
          return 2;
        }
        spec.managers.push_back(kind);
      }
    }
    if (seed_list.empty()) {
      spec.seeds = {cc.seed};
    } else {
      for (int s : seed_list)
        spec.seeds.push_back(static_cast<std::uint64_t>(s));
    }

    std::vector<sweep::SweepRunResult> results =
        sweep::run_sweep(spec, jobs);
    common::Table table = sweep::sweep_table(spec, results);
    std::printf("%s", table.render().c_str());
    if (!sweep_csv.empty() && table.write_csv(sweep_csv))
      std::printf("csv -> %s\n", sweep_csv.c_str());
    for (const auto& r : results)
      if (!r.result.all_completed) return 1;
    return 0;
  }

  cluster::Cluster cl(
      cc, cluster::make_pair_workloads(app_a, app_b, cc.n_nodes, npb));
  cluster::RunResult result = cl.run();

  std::printf("manager            %s\n",
              cluster::manager_name(cc.manager));
  std::printf("workloads          %s (nodes 0-%d) + %s (nodes %d-%d)\n",
              workload::app_name(app_a), cc.n_nodes / 2 - 1,
              workload::app_name(app_b), cc.n_nodes / 2, cc.n_nodes - 1);
  std::printf("completed          %s\n",
              result.all_completed ? "yes" : "NO (deadline)");
  if (cc.watchdog_s > 0.0) {
    std::printf("liveness           %s (watchdog_s=%g)\n",
                result.wedged ? "WEDGED (see dump above)" : "ok",
                cc.watchdog_s);
  }
  std::printf("runtime            %.2f s\n", result.runtime_seconds);
  std::printf("performance        %.6f (1/runtime)\n", result.performance);
  std::printf("requests sent      %llu (%llu timeouts)\n",
              static_cast<unsigned long long>(result.requests_sent),
              static_cast<unsigned long long>(result.timeouts));
  if (!result.turnaround_ms.empty()) {
    common::Summary turnaround = common::summarize(result.turnaround_ms);
    std::printf("turnaround (ms)    mean %.3f  p50 %.3f  p75 %.3f  "
                "max %.3f\n",
                turnaround.mean, turnaround.median, turnaround.p75,
                turnaround.max);
  }
  std::printf("messages           %llu sent, %llu dropped, "
              "%llu duplicated, %llu reordered\n",
              static_cast<unsigned long long>(result.net_stats.sent),
              static_cast<unsigned long long>(
                  result.net_stats.dropped_total()),
              static_cast<unsigned long long>(result.net_stats.duplicated),
              static_cast<unsigned long long>(result.net_stats.reordered));
  std::printf("stranded power     %.2f W\n", result.stranded_watts);
  if (cc.membership_enabled || cc.churn_enabled) {
    std::printf("membership         %llu suspected, %llu declared dead, "
                "%llu false suspicions\n",
                static_cast<unsigned long long>(result.nodes_suspected),
                static_cast<unsigned long long>(
                    result.nodes_declared_dead),
                static_cast<unsigned long long>(result.false_suspicions));
    std::printf("reclaimed power    %.2f W over %llu reclaims\n",
                result.watts_reclaimed,
                static_cast<unsigned long long>(result.reclaims));
  }
  std::printf("conservation       max |error| %.2e W, live overshoot "
              "%.2e W over %zu audits\n",
              result.audit.max_abs_conservation_error,
              result.audit.max_live_overshoot, result.audit.audits);
  if (dst_mode) {
    // Judge the replay with the same oracles the explorer used, so a
    // `dst_explore` repro line reproduces the violation verbatim.
    dst::OracleFacts facts = dst::gather_facts(cl, result, schedule);
    std::vector<dst::Violation> violations = dst::check_oracles(facts);
    if (violations.empty()) {
      std::printf("oracles            all clean\n");
    } else {
      for (const dst::Violation& v : violations)
        std::printf("oracle VIOLATION   %-12s %s\n", v.oracle.c_str(),
                    v.detail.c_str());
    }
  }
  if (cc.series_interval > 0 && !cl.health().probes().empty()) {
    const telemetry::HealthProbe& last = cl.health().probes().back();
    auto conv = cl.health().convergence_seconds(0);
    std::printf("health             %zu probes, min Jain %.4f, "
                "final Jain %.4f, %.1f J delivered\n",
                cl.health().probes().size(), cl.health().min_jain_since(0),
                last.jain, last.energy_joules);
    if (conv.has_value()) {
      std::printf("convergence        %.2f s to Jain >= %.3f\n", *conv,
                  1.0 - cc.health_epsilon);
    } else {
      std::printf("convergence        not reached (Jain < %.3f at end)\n",
                  1.0 - cc.health_epsilon);
    }
  }

  if (!trace_path.empty()) {
    bool wrote = false;
    if (trace_format == "csv" || trace_format == "both") {
      wrote = cl.trace().write_csv(trace_path);
    }
    if (trace_format == "jsonl" || trace_format == "both") {
      std::string jsonl_path =
          trace_format == "jsonl" ? trace_path : trace_path + ".jsonl";
      wrote = cl.trace().write_jsonl(jsonl_path) || wrote;
    }
    if (wrote) {
      std::printf("trace              %zu samples -> %s "
                  "(mean cap oscillation %.2f W)\n",
                  cl.trace().samples().size(), trace_path.c_str(),
                  cl.trace().mean_cap_oscillation());
    }
  }
  if (!perfetto_path.empty()) {
    const telemetry::FlightRecorder& recorder = cl.metrics().recorder();
    const telemetry::PowerFlowTracer& tracer = cl.metrics().tracer();
    std::string json = telemetry::to_perfetto_json(
        recorder.snapshot(), cl.trace().counter_tracks(),
        tracer.snapshot());
    if (write_text_file(perfetto_path, json)) {
      std::printf("perfetto           %llu txn events (%llu dropped), "
                  "%llu flow hops -> %s\n",
                  static_cast<unsigned long long>(recorder.recorded()),
                  static_cast<unsigned long long>(recorder.dropped()),
                  static_cast<unsigned long long>(tracer.recorded()),
                  perfetto_path.c_str());
    }
  }
  if (!series_path.empty()) {
    if (write_text_file(series_path, cl.series().to_csv())) {
      std::size_t windows = 0;
      for (const auto& s : cl.series().series())
        windows += s->windows().size();
      std::printf("series             %zu series, %zu windows -> %s\n",
                  cl.series().series().size(), windows,
                  series_path.c_str());
    }
    std::string health_path = series_path + ".health.csv";
    if (cc.series_interval > 0 &&
        write_text_file(health_path, cl.health().to_csv())) {
      std::printf("health csv         %zu probes -> %s\n",
                  cl.health().probes().size(), health_path.c_str());
    }
  }
  if (!metrics_path.empty()) {
    std::string text = telemetry::to_prometheus_text(
        cl.metrics().registry().snapshot());
    if (write_text_file(metrics_path, text)) {
      std::printf("metrics            %zu series -> %s\n",
                  cl.metrics().registry().size(), metrics_path.c_str());
    }
  }
  return result.all_completed ? 0 : 1;
}
