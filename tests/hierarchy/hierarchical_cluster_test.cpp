// Full-cluster behaviour of the PoDD-style hierarchical manager:
// profiling, assignment, conservation, and the coupled-workload payoff
// (asymmetric pairs get asymmetric initial caps, so less reactive
// shifting is needed than under SLURM's even split).
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"

namespace penelope::cluster {
namespace {

workload::NpbConfig short_npb(std::uint64_t seed = 19) {
  workload::NpbConfig cfg;
  cfg.duration_scale = 0.3;
  cfg.demand_jitter_frac = 0.02;
  cfg.seed = seed;
  return cfg;
}

ClusterConfig podd_config(int nodes = 8, double cap = 70.0) {
  ClusterConfig cc;
  cc.manager = ManagerKind::kHierarchical;
  cc.n_nodes = nodes;
  cc.per_socket_cap_watts = cap;
  cc.seed = 23;
  cc.max_seconds = 1200.0;
  return cc;
}

TEST(HierarchicalCluster, RunsToCompletion) {
  ClusterConfig cc = podd_config();
  Cluster cluster(cc, make_pair_workloads(workload::NpbApp::kEP,
                                          workload::NpbApp::kDC,
                                          cc.n_nodes, short_npb()));
  RunResult result = cluster.run();
  EXPECT_TRUE(result.all_completed);
  ASSERT_TRUE(result.server_stats.has_value());
  EXPECT_GT(result.server_stats->processed, 0u);
}

TEST(HierarchicalCluster, AssignsAsymmetricCapsToAsymmetricPair) {
  ClusterConfig cc = podd_config();
  Cluster cluster(cc, make_pair_workloads(workload::NpbApp::kEP,
                                          workload::NpbApp::kDC,
                                          cc.n_nodes, short_npb()));
  // Run past the profiling window (5 periods) plus assignment delivery.
  cluster.run_for(10.0);
  // EP (hungry, nodes 0..3) should hold more cap than DC (nodes 4..7).
  double ep_caps = 0.0;
  double dc_caps = 0.0;
  for (int i = 0; i < 4; ++i) ep_caps += cluster.node_cap(i);
  for (int i = 4; i < 8; ++i) dc_caps += cluster.node_cap(i);
  EXPECT_GT(ep_caps, dc_caps + 40.0);
}

TEST(HierarchicalCluster, ConservationHoldsThroughReassignment) {
  // The reassignment moves a lot of power at once (donations down,
  // urgency up); the audit must stay exact throughout.
  ClusterConfig cc = podd_config();
  cc.audit_interval = common::from_millis(250);
  Cluster cluster(cc, make_pair_workloads(workload::NpbApp::kEP,
                                          workload::NpbApp::kDC,
                                          cc.n_nodes, short_npb()));
  RunResult result = cluster.run();
  EXPECT_TRUE(result.all_completed);
  EXPECT_LT(result.audit.max_abs_conservation_error, 1e-6);
  EXPECT_LE(result.audit.max_live_overshoot, 1e-6);
}

TEST(HierarchicalCluster, BeatsFairOnCoupledAsymmetricPair) {
  auto run_with = [](ManagerKind manager) {
    ClusterConfig cc = podd_config();
    cc.manager = manager;
    Cluster cluster(cc, make_pair_workloads(workload::NpbApp::kEP,
                                            workload::NpbApp::kDC,
                                            cc.n_nodes, short_npb()));
    return cluster.run();
  };
  RunResult fair = run_with(ManagerKind::kFair);
  RunResult podd = run_with(ManagerKind::kHierarchical);
  ASSERT_TRUE(fair.all_completed && podd.all_completed);
  EXPECT_LT(podd.runtime_seconds, fair.runtime_seconds);
}

TEST(HierarchicalCluster, SymmetricPairKeepsEvenSplit) {
  ClusterConfig cc = podd_config();
  Cluster cluster(cc, make_pair_workloads(workload::NpbApp::kEP,
                                          workload::NpbApp::kEP,
                                          cc.n_nodes, short_npb()));
  cluster.run_for(10.0);
  double group_a = cluster.node_cap(0);
  double group_b = cluster.node_cap(5);
  // Same app on both halves: the learned split stays near even (within
  // jitter), i.e. PoDD degenerates gracefully to SLURM's assignment.
  EXPECT_NEAR(group_a, group_b, 12.0);
}

TEST(HierarchicalCluster, ServerKillDuringProfilingFreezesEvenSplit) {
  ClusterConfig cc = podd_config();
  cc.faults = {FaultEvent{FaultEvent::Kind::kKillServer,
                          common::from_seconds(2.0), 0}};
  Cluster cluster(cc, make_pair_workloads(workload::NpbApp::kEP,
                                          workload::NpbApp::kDC,
                                          cc.n_nodes, short_npb()));
  RunResult result = cluster.run();
  // Clients never leave the profiling state: caps stay at the even
  // split and the run degenerates to Fair (plus report traffic into the
  // void). It must still complete and balance.
  EXPECT_TRUE(result.all_completed);
  for (int i = 0; i < cc.n_nodes; ++i) {
    EXPECT_DOUBLE_EQ(cluster.node_cap(i), cc.initial_node_cap());
  }
  EXPECT_LT(result.audit.max_abs_conservation_error, 1e-6);
}

TEST(HierarchicalCluster, DeterministicForSeed) {
  auto run_once = [] {
    ClusterConfig cc = podd_config();
    Cluster cluster(cc, make_pair_workloads(workload::NpbApp::kFT,
                                            workload::NpbApp::kDC,
                                            cc.n_nodes, short_npb()));
    return cluster.run().runtime_seconds;
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace penelope::cluster
