#include "hierarchy/podd_server.hpp"

#include <gtest/gtest.h>

namespace penelope::hierarchy {
namespace {

PoddConfig base_config(int n_nodes = 4, int periods = 2) {
  PoddConfig cfg;
  cfg.n_nodes = n_nodes;
  cfg.initial_cap_watts = 140.0;
  cfg.safe_range = {.min_watts = 80.0, .max_watts = 250.0};
  cfg.profile_periods = periods;
  return cfg;
}

TEST(PoddServer, ProfilingCompletesAfterEnoughReports) {
  PoddServerLogic server(base_config(2, 3));
  EXPECT_FALSE(server.profiling_complete());
  for (int round = 0; round < 3; ++round) {
    bool last = (round == 2);
    EXPECT_EQ(server.handle_profile_report(0, {100.0}), true);
    EXPECT_EQ(server.handle_profile_report(1, {200.0}), !last);
  }
  EXPECT_TRUE(server.profiling_complete());
}

TEST(PoddServer, DemandsAreMeansOfReports) {
  PoddServerLogic server(base_config(4, 2));
  // Group A (nodes 0,1): 90 and 110 -> mean 100.
  // Group B (nodes 2,3): 190 and 210 -> mean 200.
  for (int round = 0; round < 2; ++round) {
    server.handle_profile_report(0, {90.0});
    server.handle_profile_report(1, {110.0});
    server.handle_profile_report(2, {190.0});
    server.handle_profile_report(3, {210.0});
  }
  EXPECT_TRUE(server.profiling_complete());
  EXPECT_NEAR(server.group_a_demand(), 100.0, 1e-9);
  EXPECT_NEAR(server.group_b_demand(), 200.0, 1e-9);
}

TEST(PoddServer, AssignmentIsDemandProportional) {
  PoddServerLogic server(base_config(4, 1));
  server.handle_profile_report(0, {100.0});
  server.handle_profile_report(1, {100.0});
  server.handle_profile_report(2, {200.0});
  server.handle_profile_report(3, {200.0});
  GroupAssignment assignment = server.assignment();
  // Budget 4 x 140 = 560; proportional: A gets 560/3/... per node:
  // 560 * 100 / (2*100 + 2*200) = 93.33; B: 186.67.
  EXPECT_NEAR(assignment.group_a_cap, 560.0 * 100.0 / 600.0, 1e-6);
  EXPECT_NEAR(assignment.group_b_cap, 560.0 * 200.0 / 600.0, 1e-6);
  EXPECT_NEAR(assignment.group_a_cap * 2 + assignment.group_b_cap * 2,
              560.0, 1e-6);
  EXPECT_DOUBLE_EQ(server.assigned_cap(0), assignment.group_a_cap);
  EXPECT_DOUBLE_EQ(server.assigned_cap(3), assignment.group_b_cap);
}

TEST(PoddServer, ExtraReportsAfterCompletionIgnored) {
  PoddServerLogic server(base_config(2, 1));
  server.handle_profile_report(0, {100.0});
  server.handle_profile_report(1, {100.0});
  ASSERT_TRUE(server.profiling_complete());
  double before = server.group_a_demand();
  EXPECT_FALSE(server.handle_profile_report(0, {999.0}));
  EXPECT_DOUBLE_EQ(server.group_a_demand(), before);
}

TEST(SplitBudget, EqualDemandsSplitEvenly) {
  power::SafeRange range{80.0, 250.0};
  GroupAssignment a =
      PoddServerLogic::split_budget(560.0, 2, 2, 150.0, 150.0, range);
  EXPECT_NEAR(a.group_a_cap, 140.0, 1e-9);
  EXPECT_NEAR(a.group_b_cap, 140.0, 1e-9);
}

TEST(SplitBudget, ClampsToSafeMinimumAndPaysFromOther) {
  power::SafeRange range{80.0, 250.0};
  // Extreme asymmetry: proportional share of A would be ~36 W, below
  // the 80 W floor; B pays for the difference.
  GroupAssignment a =
      PoddServerLogic::split_budget(560.0, 2, 2, 30.0, 200.0, range);
  EXPECT_DOUBLE_EQ(a.group_a_cap, 80.0);
  EXPECT_NEAR(a.group_a_cap * 2 + a.group_b_cap * 2, 560.0, 1e-6);
  EXPECT_GE(a.group_b_cap, range.min_watts);
  EXPECT_LE(a.group_b_cap, range.max_watts);
}

TEST(SplitBudget, ClampsToSafeMaximumAndDonatesToOther) {
  power::SafeRange range{80.0, 250.0};
  // B's proportional share would exceed 250; A absorbs the surplus.
  GroupAssignment a =
      PoddServerLogic::split_budget(800.0, 2, 2, 50.0, 400.0, range);
  EXPECT_DOUBLE_EQ(a.group_b_cap, 250.0);
  EXPECT_LE(a.group_a_cap * 2 + a.group_b_cap * 2, 800.0 + 1e-6);
  EXPECT_GE(a.group_a_cap, range.min_watts);
}

TEST(SplitBudget, NeverExceedsBudget) {
  power::SafeRange range{80.0, 250.0};
  for (double da : {10.0, 100.0, 200.0, 300.0}) {
    for (double db : {10.0, 100.0, 200.0, 300.0}) {
      for (double budget : {320.0, 560.0, 900.0}) {
        GroupAssignment a =
            PoddServerLogic::split_budget(budget, 2, 2, da, db, range);
        EXPECT_LE(a.group_a_cap * 2 + a.group_b_cap * 2, budget + 1e-6)
            << "da=" << da << " db=" << db << " budget=" << budget;
        EXPECT_GE(a.group_a_cap, range.min_watts - 1e-9);
        EXPECT_LE(a.group_a_cap, range.max_watts + 1e-9);
        EXPECT_GE(a.group_b_cap, range.min_watts - 1e-9);
        EXPECT_LE(a.group_b_cap, range.max_watts + 1e-9);
      }
    }
  }
}

TEST(SplitBudget, ZeroDemandFallsBackToEven) {
  power::SafeRange range{80.0, 250.0};
  GroupAssignment a =
      PoddServerLogic::split_budget(560.0, 2, 2, 0.0, 0.0, range);
  EXPECT_NEAR(a.group_a_cap, 140.0, 1e-9);
  EXPECT_NEAR(a.group_b_cap, 140.0, 1e-9);
}

TEST(PoddServer, ExpiredNodeNoLongerGatesProfilingCompletion) {
  // Regression: a node that crashes mid-profiling-window used to gate
  // completion forever — the server waited for reports that would never
  // arrive, and the whole cluster sat at the uniform initial cap.
  PoddServerLogic server(base_config(4, 1));
  server.handle_profile_report(0, {100.0});
  server.handle_profile_report(1, {100.0});
  server.handle_profile_report(2, {200.0});
  ASSERT_FALSE(server.profiling_complete());
  // Node 3 dies; its expiry must complete the window on the spot.
  EXPECT_TRUE(server.expire_reports(3));
  EXPECT_TRUE(server.profiling_complete());
}

TEST(PoddServer, ExpiryDropsStaleReportsAndRenormalizes) {
  // The crashed node's accumulated draw must not skew the surviving
  // nodes' demand means.
  PoddServerLogic server(base_config(4, 2));
  for (int round = 0; round < 2; ++round) {
    server.handle_profile_report(0, {90.0});
    server.handle_profile_report(1, {110.0});
    server.handle_profile_report(3, {210.0});
  }
  // Node 2 reported a wild outlier once, then crashed. Expiring it both
  // unblocks the window (everyone else already reported) and discards
  // the outlier.
  server.handle_profile_report(2, {900.0});
  EXPECT_TRUE(server.expire_reports(2));
  ASSERT_TRUE(server.profiling_complete());
  // Group A mean unaffected; group B mean is node 3 alone — the 900 W
  // outlier is gone.
  EXPECT_NEAR(server.group_a_demand(), 100.0, 1e-9);
  EXPECT_NEAR(server.group_b_demand(), 210.0, 1e-9);
}

TEST(PoddServer, ExpiryOfEveryNodeDoesNotCompleteAnEmptyWindow) {
  // With all participants expired there is no demand signal at all;
  // completing would assign caps from 0/0 means. The window must stay
  // open until somebody reports again.
  PoddServerLogic server(base_config(2, 1));
  EXPECT_FALSE(server.expire_reports(0));
  EXPECT_FALSE(server.expire_reports(1));
  EXPECT_FALSE(server.profiling_complete());
  // A rejoining node readmits itself by reporting; once every live
  // participant (just node 0 now) has reported, the window closes.
  EXPECT_FALSE(server.handle_profile_report(0, {120.0}));
  EXPECT_TRUE(server.profiling_complete());
  EXPECT_NEAR(server.group_a_demand(), 120.0, 1e-9);
}

TEST(PoddServer, ReportAfterExpiryReadmitsAndRestartsAccumulation) {
  PoddServerLogic server(base_config(2, 2));
  server.handle_profile_report(0, {100.0});
  server.handle_profile_report(1, {300.0});
  EXPECT_FALSE(server.expire_reports(1));
  // Node 1 rejoins: its old 300 W sample is gone, accumulation restarts.
  server.handle_profile_report(1, {180.0});
  server.handle_profile_report(0, {100.0});
  EXPECT_FALSE(server.profiling_complete());  // node 1 has 1 of 2
  server.handle_profile_report(1, {220.0});
  ASSERT_TRUE(server.profiling_complete());
  EXPECT_NEAR(server.group_b_demand(), 200.0, 1e-9);
}

TEST(PoddServer, ExpiryAfterCompletionIsANoOp) {
  PoddServerLogic server(base_config(2, 1));
  server.handle_profile_report(0, {100.0});
  server.handle_profile_report(1, {200.0});
  ASSERT_TRUE(server.profiling_complete());
  GroupAssignment before = server.assignment();
  EXPECT_FALSE(server.expire_reports(0));
  EXPECT_DOUBLE_EQ(server.assignment().group_a_cap, before.group_a_cap);
  EXPECT_DOUBLE_EQ(server.assignment().group_b_cap, before.group_b_cap);
}

TEST(PoddServer, CentralDelegationWorks) {
  PoddServerLogic server(base_config(2, 1));
  server.central().handle_donation(central::CentralDonation{50.0});
  EXPECT_DOUBLE_EQ(server.central().cache_watts(), 50.0);
  central::CentralRequest req;
  auto grant = server.central().handle_request(req);
  EXPECT_GT(grant.watts, 0.0);
}

}  // namespace
}  // namespace penelope::hierarchy
