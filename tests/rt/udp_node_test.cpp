// Penelope over real loopback UDP sockets: the deployment-path driver.
// These tests exercise actual sendto/recvfrom, the binary codec on the
// wire, kernel port assignment, and two-phase shutdown conservation.
#include "rt/udp_node.hpp"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "net/codec.hpp"

namespace penelope::rt {
namespace {

UdpNodeConfig quick_config() {
  UdpNodeConfig cfg;
  cfg.initial_cap_watts = 120.0;
  cfg.period = common::from_millis(10);
  cfg.request_timeout = common::from_millis(15);
  cfg.seed = 11;
  return cfg;
}

std::vector<std::vector<DemandPhase>> donor_hungry_scripts(int nodes) {
  std::vector<std::vector<DemandPhase>> scripts;
  for (int i = 0; i < nodes; ++i) {
    double demand = (i < nodes / 2) ? 60.0 : 240.0;
    scripts.push_back({DemandPhase{demand, common::from_seconds(60.0)}});
  }
  return scripts;
}

TEST(UdpNode, BindsAndReportsKernelAssignedPort) {
  UdpPenelopeNode node(quick_config(), {DemandPhase{100.0, 1000000}});
  ASSERT_TRUE(node.ok()) << node.error();
  EXPECT_GT(node.port(), 0);
}

TEST(UdpNode, DistinctNodesGetDistinctPorts) {
  UdpPenelopeNode a(quick_config(), {DemandPhase{100.0, 1000000}});
  UdpPenelopeNode b(quick_config(), {DemandPhase{100.0, 1000000}});
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a.port(), b.port());
}

TEST(UdpCluster, PowerShiftsOverRealSockets) {
  UdpCluster cluster(4, quick_config(), donor_hungry_scripts(4));
  ASSERT_TRUE(cluster.ok());
  cluster.run_for(common::from_millis(1200));

  auto reports = cluster.reports();
  std::uint64_t total_grants = 0;
  std::uint64_t total_packets = 0;
  for (const auto& report : reports) {
    total_grants += report.grants_received;
    total_packets += report.packets_received;
    EXPECT_EQ(report.decode_failures, 0u) << "node " << report.id;
  }
  EXPECT_GT(total_grants, 0u);
  EXPECT_GT(total_packets, 0u);
  // Hungry nodes (2,3) ended up with more cap than donors (0,1).
  EXPECT_GT(reports[2].final_cap + reports[3].final_cap,
            reports[0].final_cap + reports[1].final_cap);
}

TEST(UdpCluster, ShutdownConservesPower) {
  UdpCluster cluster(4, quick_config(), donor_hungry_scripts(4));
  ASSERT_TRUE(cluster.ok());
  cluster.run_for(common::from_millis(600));
  EXPECT_NEAR(cluster.total_live_watts(), cluster.budget(), 1e-6);
}

TEST(UdpCluster, CapsStayInSafeRange) {
  UdpNodeConfig cfg = quick_config();
  UdpCluster cluster(4, cfg, donor_hungry_scripts(4));
  ASSERT_TRUE(cluster.ok());
  cluster.run_for(common::from_millis(600));
  for (const auto& report : cluster.reports()) {
    EXPECT_GE(report.final_cap, cfg.safe_range.min_watts - 1e-9);
    EXPECT_LE(report.final_cap, cfg.safe_range.max_watts + 1e-9);
    EXPECT_GE(report.final_pool, 0.0);
  }
}

TEST(UdpCluster, RepeatedRunsDoNotLeakSocketsOrDeadlock) {
  for (int round = 0; round < 3; ++round) {
    UdpNodeConfig cfg = quick_config();
    cfg.seed = 100 + static_cast<std::uint64_t>(round);
    UdpCluster cluster(3, cfg, donor_hungry_scripts(3));
    ASSERT_TRUE(cluster.ok());
    cluster.run_for(common::from_millis(150));
    EXPECT_NEAR(cluster.total_live_watts(), cluster.budget(), 1e-6);
  }
}

TEST(UdpCluster, MetricsSnapshotMatchesReports) {
  UdpNodeConfig cfg = quick_config();
  cfg.flight_recorder_capacity = 1 << 14;
  UdpCluster cluster(4, cfg, donor_hungry_scripts(4));
  ASSERT_TRUE(cluster.ok());
  cluster.run_for(common::from_millis(1000));

  auto reports = cluster.reports();
  std::uint64_t report_grants = 0;
  std::uint64_t report_packets = 0;
  for (const auto& report : reports) {
    report_grants += report.grants_received;
    report_packets += report.packets_received;
  }
  ASSERT_GT(report_grants, 0u);

  // The merged snapshot keeps one labeled series per node per name and
  // agrees with the report counters.
  std::uint64_t snap_grants = 0;
  std::uint64_t snap_packets = 0;
  int grant_series = 0;
  for (const auto& sample : cluster.metrics_snapshot()) {
    if (sample.name == "udp_grants_applied_total") {
      snap_grants += static_cast<std::uint64_t>(sample.value);
      ++grant_series;
      ASSERT_EQ(sample.labels.size(), 1u);
      EXPECT_EQ(sample.labels[0].first, "node");
    } else if (sample.name == "udp_packets_received_total") {
      snap_packets += static_cast<std::uint64_t>(sample.value);
    }
  }
  EXPECT_EQ(grant_series, 4);
  EXPECT_EQ(snap_grants, report_grants);
  EXPECT_EQ(snap_packets, report_packets);

  // Merged flight journal: time-ordered, every request event carries a
  // real transaction id.
  auto records = cluster.flight_records();
  EXPECT_FALSE(records.empty());
  for (std::size_t i = 1; i < records.size(); ++i) {
    EXPECT_LE(records[i - 1].at, records[i].at);
  }
  std::uint64_t journal_grants = 0;
  for (const auto& record : records) {
    if (record.kind == telemetry::TxnEventKind::kGrantReceived) {
      ++journal_grants;
      EXPECT_NE(record.txn_id, 0u);
    }
  }
  EXPECT_EQ(journal_grants, report_grants);
}

TEST(UdpCluster, CrashRestartMidRunConservesPower) {
  // A node crash-restarts while the cluster is trading: its TxnWindows
  // and queued grants are wiped (grants self-reclaim into the pool),
  // its incarnation bumps, and no watts leak through the restart.
  UdpNodeConfig cfg = quick_config();
  cfg.heartbeats = true;
  UdpCluster cluster(4, cfg, donor_hungry_scripts(4));
  ASSERT_TRUE(cluster.ok());
  std::jthread chaos([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    cluster.node(3).crash_restart();
  });
  cluster.run_for(common::from_millis(900));
  chaos.join();

  auto reports = cluster.reports();
  EXPECT_EQ(reports[3].incarnation, 2u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(reports[static_cast<std::size_t>(i)].incarnation, 1u);
  }
  std::uint64_t beats = 0;
  for (const auto& report : reports) {
    beats += report.heartbeats_received;
    EXPECT_EQ(report.decode_failures, 0u) << "node " << report.id;
  }
  EXPECT_GT(beats, 0u);
  EXPECT_NEAR(cluster.total_live_watts(), cluster.budget(), 1e-6);
}

TEST(UdpNode, StalePreCrashBeaconsAreQuarantined) {
  // Two nodes beacon at each other; node 1 crash-restarts to
  // incarnation 2, then a forged "incarnation 1" beacon — standing in
  // for a pre-crash datagram the kernel delivered late — arrives at
  // node 0. It must be counted stale and change nothing.
  UdpNodeConfig cfg = quick_config();
  cfg.heartbeats = true;
  cfg.id = 0;
  UdpPenelopeNode donor(cfg, {DemandPhase{60.0, common::from_seconds(60)}});
  cfg.id = 1;
  cfg.seed = 12;
  UdpPenelopeNode hungry(cfg,
                         {DemandPhase{240.0, common::from_seconds(60)}});
  ASSERT_TRUE(donor.ok() && hungry.ok());
  donor.set_peers({UdpPeer{1, hungry.port()}});
  hungry.set_peers({UdpPeer{0, donor.port()}});

  donor.start();
  hungry.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  hungry.crash_restart();
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  EXPECT_EQ(hungry.incarnation(), 2u);

  // Forge the late pre-crash beacon from node 1's first incarnation.
  int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(donor.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  auto stale = net::encode_frame(net::WirePayload{core::Heartbeat{1, 1}});
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(::sendto(fd, stale.data(), stale.size(), 0,
                       reinterpret_cast<sockaddr*>(&addr), sizeof addr),
              static_cast<ssize_t>(stale.size()));
  }
  ::close(fd);
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  donor.stop_decider();
  hungry.stop_decider();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  donor.stop_receiver();
  hungry.stop_receiver();

  auto donor_report = donor.report();
  EXPECT_GT(donor_report.heartbeats_received, 0u);
  EXPECT_GE(donor_report.stale_heartbeats, 3u);
  EXPECT_GT(hungry.report().heartbeats_received, 0u);
  EXPECT_NEAR(donor.cap() + donor.pool_watts() + hungry.cap() +
                  hungry.pool_watts(),
              2 * cfg.initial_cap_watts, 1e-6);
}

TEST(UdpNode, GarbagePacketsAreCountedNotFatal) {
  // Fire raw garbage at a node's socket; it must count the junk and
  // keep serving the real protocol.
  UdpNodeConfig cfg = quick_config();
  cfg.id = 0;
  UdpPenelopeNode donor(cfg, {DemandPhase{60.0, common::from_seconds(60)}});
  cfg.id = 1;
  cfg.seed = 12;
  UdpPenelopeNode hungry(cfg,
                         {DemandPhase{240.0, common::from_seconds(60)}});
  ASSERT_TRUE(donor.ok() && hungry.ok());
  donor.set_peers({UdpPeer{1, hungry.port()}});
  hungry.set_peers({UdpPeer{0, donor.port()}});

  // Queue garbage into the donor's socket before it starts reading.
  int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(donor.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  const char junk[] = "\xff" "\x00" "definitely not a penelope packet";
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(::sendto(fd, junk, sizeof junk, 0,
                       reinterpret_cast<sockaddr*>(&addr), sizeof addr),
              static_cast<ssize_t>(sizeof junk));
  }
  ::close(fd);

  donor.start();
  hungry.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  donor.stop_decider();
  hungry.stop_decider();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  donor.stop_receiver();
  hungry.stop_receiver();

  EXPECT_GE(donor.report().decode_failures, 5u);
  EXPECT_GE(donor.report().udp_malformed_dropped, 5u);
  // The protocol still worked around the junk.
  EXPECT_GT(hungry.report().grants_received, 0u);
  EXPECT_NEAR(donor.cap() + donor.pool_watts() + hungry.cap() +
                  hungry.pool_watts(),
              2 * cfg.initial_cap_watts, 1e-6);
}

TEST(UdpNode, ChecksumRejectsEveryHostileFrameShape) {
  // One datagram per frame-decoder failure class, all over a real
  // socket: truncated header, bad magic, bit-flipped body (checksum),
  // checksum-valid unknown tag, and a checksum-valid malformed body.
  // Every one must be dropped and counted; none may reach the decider.
  UdpNodeConfig cfg = quick_config();
  cfg.id = 0;
  UdpPenelopeNode node(cfg, {DemandPhase{60.0, common::from_seconds(60)}});
  ASSERT_TRUE(node.ok());
  node.set_peers({UdpPeer{1, 1}});  // never contacted: deciders idle-rich

  int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(node.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  auto fire = [&](const std::vector<std::uint8_t>& bytes) {
    ASSERT_EQ(::sendto(fd, bytes.data(), bytes.size(), 0,
                       reinterpret_cast<sockaddr*>(&addr), sizeof addr),
              static_cast<ssize_t>(bytes.size()));
  };

  auto good = net::encode_frame(net::WirePayload{core::PowerGrant{5.0, 9}});
  std::vector<std::uint8_t> truncated(good.begin(), good.begin() + 3);
  fire(truncated);
  auto bad_magic = good;
  bad_magic[0] ^= 0xFF;
  fire(bad_magic);
  auto flipped = good;
  flipped[net::kFrameHeaderBytes] ^= 0x01;  // first body byte
  fire(flipped);
  // Unknown tag with a *valid* checksum: body of one unassigned tag
  // byte, header recomputed honestly.
  std::vector<std::uint8_t> body{0x7F};
  std::uint32_t sum = net::fnv1a32(body.data(), body.size());
  std::vector<std::uint8_t> unknown{net::kFrameMagic,
                                    static_cast<std::uint8_t>(sum),
                                    static_cast<std::uint8_t>(sum >> 8),
                                    static_cast<std::uint8_t>(sum >> 16),
                                    static_cast<std::uint8_t>(sum >> 24),
                                    0x7F};
  fire(unknown);
  // Malformed body: a real tag with its payload cut short, reframed
  // with a correct checksum so only structural decode can reject it.
  std::vector<std::uint8_t> stub(good.begin() + net::kFrameHeaderBytes,
                                 good.begin() + net::kFrameHeaderBytes + 2);
  sum = net::fnv1a32(stub.data(), stub.size());
  std::vector<std::uint8_t> malformed{net::kFrameMagic,
                                      static_cast<std::uint8_t>(sum),
                                      static_cast<std::uint8_t>(sum >> 8),
                                      static_cast<std::uint8_t>(sum >> 16),
                                      static_cast<std::uint8_t>(sum >> 24)};
  malformed.insert(malformed.end(), stub.begin(), stub.end());
  fire(malformed);
  ::close(fd);

  node.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  node.stop_decider();
  node.stop_receiver();

  auto report = node.report();
  EXPECT_EQ(report.udp_malformed_dropped, 5u);
  EXPECT_EQ(report.grants_received, 0u);
  // Nothing slipped into the pool or the ledger.
  EXPECT_NEAR(node.cap() + node.pool_watts(), cfg.initial_cap_watts, 1e-6);
}

TEST(UdpCluster, WireCorruptionStrandsButConserves) {
  // 1% of outgoing frames get a random bit flipped. Every corrupted
  // frame must be caught by the receiver's checksum (no aborts, no
  // misparses) and any watts it carried land in the stranded ledger,
  // keeping the conservation identity exact.
  UdpNodeConfig cfg = quick_config();
  cfg.corrupt_probability = 0.01;
  UdpCluster cluster(4, cfg, donor_hungry_scripts(4));
  ASSERT_TRUE(cluster.ok());
  cluster.run_for(common::from_millis(1500));

  std::uint64_t corrupted = 0;
  std::uint64_t malformed = 0;
  for (const auto& report : cluster.reports()) {
    corrupted += report.frames_corrupted;
    malformed += report.udp_malformed_dropped;
  }
  // 4 nodes x ~100 periods x (requests + replies): expect a handful of
  // corrupted frames. Every one that reached a socket was dropped by a
  // checksum, never misparsed.
  EXPECT_GT(corrupted, 0u);
  EXPECT_GE(malformed, corrupted > 0 ? 1u : 0u);
  EXPECT_NEAR(cluster.total_live_watts() + cluster.corrupt_stranded_watts(),
              cluster.budget(), 1e-6);
}

}  // namespace
}  // namespace penelope::rt
