#include "rt/mailbox.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace penelope::rt {
namespace {

using namespace std::chrono_literals;

TEST(Mailbox, PushPopSingleThread) {
  Mailbox<int> box;
  ASSERT_TRUE(box.push(1));
  ASSERT_TRUE(box.push(2));
  EXPECT_EQ(box.size(), 2u);
  EXPECT_EQ(box.pop().value(), 1);
  EXPECT_EQ(box.pop().value(), 2);
}

TEST(Mailbox, PopForTimesOutOnEmpty) {
  Mailbox<int> box;
  auto result = box.pop_for(5ms);
  EXPECT_FALSE(result.has_value());
}

TEST(Mailbox, PopUntilTimesOutAtDeadline) {
  Mailbox<int> box;
  auto deadline = std::chrono::steady_clock::now() + 5ms;
  EXPECT_FALSE(box.pop_until(deadline).has_value());
  EXPECT_GE(std::chrono::steady_clock::now(), deadline);
}

TEST(Mailbox, PopUntilReturnsQueuedItemEvenPastDeadline) {
  Mailbox<int> box;
  box.push(7);
  auto past = std::chrono::steady_clock::now() - 1ms;
  EXPECT_EQ(box.pop_until(past).value(), 7);
}

TEST(Mailbox, PopUntilWokenByPush) {
  Mailbox<int> box;
  std::thread producer([&] {
    std::this_thread::sleep_for(5ms);
    box.push(9);
  });
  auto deadline = std::chrono::steady_clock::now() + 5s;
  EXPECT_EQ(box.pop_until(deadline).value(), 9);
  producer.join();
}

TEST(Mailbox, TryPopIsNonBlocking) {
  Mailbox<int> box;
  EXPECT_FALSE(box.try_pop().has_value());
  box.push(3);
  EXPECT_EQ(box.try_pop().value(), 3);
  EXPECT_FALSE(box.try_pop().has_value());
  box.push(4);
  box.close();
  EXPECT_EQ(box.try_pop().value(), 4) << "close drains pending items";
  EXPECT_FALSE(box.try_pop().has_value());
}

TEST(Mailbox, TryPushFailsWhenFull) {
  Mailbox<int> box(2);
  EXPECT_TRUE(box.try_push(1));
  EXPECT_TRUE(box.try_push(2));
  EXPECT_FALSE(box.try_push(3));
  box.pop();
  EXPECT_TRUE(box.try_push(3));
}

TEST(Mailbox, CloseWakesBlockedPop) {
  Mailbox<int> box;
  std::atomic<bool> woke{false};
  std::thread waiter([&] {
    auto result = box.pop();
    EXPECT_FALSE(result.has_value());
    woke = true;
  });
  std::this_thread::sleep_for(10ms);
  box.close();
  waiter.join();
  EXPECT_TRUE(woke);
}

TEST(Mailbox, CloseDrainsPendingItemsFirst) {
  Mailbox<int> box;
  box.push(42);
  box.close();
  EXPECT_EQ(box.pop().value(), 42);
  EXPECT_FALSE(box.pop().has_value());
}

TEST(Mailbox, PushFailsAfterClose) {
  Mailbox<int> box;
  box.close();
  EXPECT_FALSE(box.push(1));
  EXPECT_FALSE(box.try_push(1));
}

TEST(Mailbox, BlockingPushWaitsForSpace) {
  Mailbox<int> box(1);
  box.push(1);
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    box.push(2);  // blocks until consumer pops
    pushed = true;
  });
  std::this_thread::sleep_for(10ms);
  EXPECT_FALSE(pushed);
  EXPECT_EQ(box.pop().value(), 1);
  producer.join();
  EXPECT_TRUE(pushed);
  EXPECT_EQ(box.pop().value(), 2);
}

TEST(Mailbox, CloseWakesBlockedPush) {
  Mailbox<int> box(1);
  box.push(1);
  std::atomic<bool> returned{false};
  std::thread producer([&] {
    EXPECT_FALSE(box.push(2));
    returned = true;
  });
  std::this_thread::sleep_for(10ms);
  box.close();
  producer.join();
  EXPECT_TRUE(returned);
}

TEST(Mailbox, ManyProducersOneConsumerDeliversAll) {
  Mailbox<int> box(64);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&box, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(box.push(p * kPerProducer + i));
      }
    });
  }
  std::vector<bool> seen(kProducers * kPerProducer, false);
  for (int i = 0; i < kProducers * kPerProducer; ++i) {
    auto v = box.pop();
    ASSERT_TRUE(v.has_value());
    ASSERT_FALSE(seen[static_cast<std::size_t>(*v)]);
    seen[static_cast<std::size_t>(*v)] = true;
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(box.size(), 0u);
}

TEST(Mailbox, FifoOrderPerProducer) {
  Mailbox<int> box;
  for (int i = 0; i < 100; ++i) box.push(i);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(box.pop().value(), i);
}

TEST(Mailbox, MoveOnlyPayloads) {
  Mailbox<std::unique_ptr<int>> box;
  box.push(std::make_unique<int>(5));
  auto v = box.pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 5);
}

}  // namespace
}  // namespace penelope::rt
