// Real-concurrency exercises of the shared protocol logic: on this
// machine all threads share one core, which is the harshest interleaving
// regime — exactly where lock or accounting bugs would surface.
#include "rt/thread_cluster.hpp"

#include <gtest/gtest.h>

#include "rt/overhead.hpp"

namespace penelope::rt {
namespace {

ThreadClusterConfig quick_config(int nodes) {
  ThreadClusterConfig cfg;
  cfg.n_nodes = nodes;
  cfg.initial_cap_watts = 120.0;
  cfg.period = common::from_millis(10);
  cfg.request_timeout = common::from_millis(10);
  cfg.seed = 77;
  return cfg;
}

std::vector<std::vector<DemandPhase>> steady_scripts(
    int nodes, double donor_demand, double hungry_demand) {
  std::vector<std::vector<DemandPhase>> scripts;
  for (int i = 0; i < nodes; ++i) {
    double demand = (i < nodes / 2) ? donor_demand : hungry_demand;
    scripts.push_back({DemandPhase{demand, common::from_seconds(60.0)}});
  }
  return scripts;
}

TEST(ThreadCluster, ConservesPowerUnderRealConcurrency) {
  ThreadClusterConfig cfg = quick_config(4);
  ThreadCluster cluster(cfg, steady_scripts(4, 60.0, 240.0));
  cluster.run_for(common::from_millis(600));
  EXPECT_NEAR(cluster.total_live_watts(), cluster.budget(), 1e-6);
}

TEST(ThreadCluster, PowerShiftsTowardHungryNodes) {
  ThreadClusterConfig cfg = quick_config(4);
  ThreadCluster cluster(cfg, steady_scripts(4, 60.0, 240.0));
  cluster.run_for(common::from_millis(1500));
  auto reports = cluster.reports();
  ASSERT_EQ(reports.size(), 4u);
  // Donors (0,1) end below the initial cap; hungry nodes (2,3) at or
  // above it.
  double donor_caps = reports[0].final_cap + reports[1].final_cap;
  double hungry_caps = reports[2].final_cap + reports[3].final_cap;
  EXPECT_LT(donor_caps, 2 * cfg.initial_cap_watts);
  EXPECT_GT(hungry_caps, donor_caps);
}

TEST(ThreadCluster, DecidersActuallyIterate) {
  ThreadClusterConfig cfg = quick_config(2);
  ThreadCluster cluster(cfg, steady_scripts(2, 60.0, 240.0));
  cluster.run_for(common::from_millis(500));
  for (const auto& report : cluster.reports()) {
    EXPECT_GT(report.decider.steps, 10u) << "node " << report.id;
  }
}

TEST(ThreadCluster, TransactionsComplete) {
  ThreadClusterConfig cfg = quick_config(4);
  ThreadCluster cluster(cfg, steady_scripts(4, 60.0, 240.0));
  cluster.run_for(common::from_millis(1500));
  std::uint64_t grants = 0;
  for (const auto& report : cluster.reports()) {
    grants += report.grants_received;
  }
  EXPECT_GT(grants, 0u);
}

TEST(ThreadCluster, CapsStayInSafeRange) {
  ThreadClusterConfig cfg = quick_config(6);
  ThreadCluster cluster(cfg, steady_scripts(6, 50.0, 245.0));
  cluster.run_for(common::from_millis(1000));
  for (const auto& report : cluster.reports()) {
    EXPECT_GE(report.final_cap, cfg.safe_range.min_watts - 1e-9);
    EXPECT_LE(report.final_cap, cfg.safe_range.max_watts + 1e-9);
    EXPECT_GE(report.final_pool, 0.0);
  }
}

TEST(ThreadCluster, RepeatedRunsDoNotDeadlock) {
  for (int i = 0; i < 3; ++i) {
    ThreadClusterConfig cfg = quick_config(3);
    cfg.seed = 100 + static_cast<std::uint64_t>(i);
    ThreadCluster cluster(cfg, steady_scripts(3, 60.0, 240.0));
    cluster.run_for(common::from_millis(200));
    EXPECT_NEAR(cluster.total_live_watts(), cluster.budget(), 1e-6);
  }
}

TEST(ThreadCluster, PhasedScriptsChangeRoles) {
  // Node 0 starts as the donor then goes hot; node 1 does the reverse.
  // After the flip the power flow must reverse too — the script walker
  // and urgency both working under real time.
  ThreadClusterConfig cfg = quick_config(2);
  std::vector<std::vector<DemandPhase>> scripts;
  scripts.push_back({DemandPhase{60.0, common::from_millis(400)},
                     DemandPhase{240.0, common::from_seconds(60)}});
  scripts.push_back({DemandPhase{240.0, common::from_millis(400)},
                     DemandPhase{60.0, common::from_seconds(60)}});
  ThreadCluster cluster(cfg, std::move(scripts));
  cluster.run_for(common::from_millis(1500));
  auto reports = cluster.reports();
  // Both nodes both donated and received at some point.
  for (const auto& report : reports) {
    EXPECT_GT(report.decider.watts_donated, 0.0) << report.id;
    EXPECT_GT(report.decider.excess_steps, 0u) << report.id;
    EXPECT_GT(report.decider.hungry_steps, 0u) << report.id;
  }
  // And nothing leaked through the role swap.
  EXPECT_NEAR(cluster.total_live_watts(), cluster.budget(), 1e-6);
}

TEST(ThreadCluster, MetricsSnapshotMatchesReports) {
  ThreadClusterConfig cfg = quick_config(4);
  cfg.flight_recorder_capacity = 1 << 14;
  ThreadCluster cluster(cfg, steady_scripts(4, 60.0, 240.0));
  cluster.run_for(common::from_millis(1000));

  auto reports = cluster.reports();
  std::uint64_t report_grants = 0;
  std::uint64_t report_timeouts = 0;
  for (const auto& report : reports) {
    report_grants += report.grants_received;
    report_timeouts += report.timeouts;
  }
  ASSERT_GT(report_grants, 0u);

  // The registry snapshot carries the same counts, one labeled series
  // per node, aggregated across the per-thread shards.
  std::uint64_t snap_grants = 0;
  std::uint64_t snap_timeouts = 0;
  std::uint64_t snap_requests = 0;
  int grant_series = 0;
  for (const auto& sample : cluster.metrics_snapshot()) {
    if (sample.name == "rt_grants_applied_total") {
      snap_grants += static_cast<std::uint64_t>(sample.value);
      ++grant_series;
      ASSERT_EQ(sample.labels.size(), 1u);
      EXPECT_EQ(sample.labels[0].first, "node");
    } else if (sample.name == "rt_timeouts_total") {
      snap_timeouts += static_cast<std::uint64_t>(sample.value);
    } else if (sample.name == "rt_requests_sent_total") {
      snap_requests += static_cast<std::uint64_t>(sample.value);
    }
  }
  EXPECT_EQ(grant_series, cfg.n_nodes);
  EXPECT_EQ(snap_grants, report_grants);
  EXPECT_EQ(snap_timeouts, report_timeouts);
  // Every sent request resolved as exactly one grant or timeout; the
  // timeout count can additionally include rounds whose request never
  // left (peer inbox full), so sent <= grants + timeouts.
  EXPECT_GE(snap_requests, snap_grants);
  EXPECT_LE(snap_requests, snap_grants + snap_timeouts);

  // The flight recorder journaled the same protocol traffic.
  const telemetry::FlightRecorder& recorder = cluster.flight_recorder();
  EXPECT_TRUE(recorder.enabled());
  std::uint64_t journal_sent = 0;
  std::uint64_t journal_grants = 0;
  for (const auto& record : recorder.snapshot()) {
    if (record.kind == telemetry::TxnEventKind::kRequestSent) {
      ++journal_sent;
      EXPECT_NE(record.txn_id, 0u);
    }
    if (record.kind == telemetry::TxnEventKind::kGrantReceived) {
      ++journal_grants;
    }
  }
  if (recorder.dropped() == 0) {
    EXPECT_EQ(journal_sent, snap_requests);
    EXPECT_EQ(journal_grants, report_grants);
  }
}

TEST(ThreadCluster, CrashRestartBumpsIncarnationAndConserves) {
  // Node 1 crashes 150 ms in and restarts 150 ms later: its volatile
  // state is wiped, the seized watts ride the orphan ledger while it is
  // down, and the restart self-reclaims them into the pool.
  ThreadClusterConfig cfg = quick_config(4);
  cfg.crash_events = {ThreadCrashEvent{1, common::from_millis(150),
                                       common::from_millis(150)}};
  ThreadCluster cluster(cfg, steady_scripts(4, 60.0, 240.0));
  cluster.run_for(common::from_millis(1000));

  auto reports = cluster.reports();
  EXPECT_EQ(reports[1].crashes, 1u);
  EXPECT_EQ(reports[1].restarts, 1u);
  EXPECT_EQ(reports[1].incarnation, 2u);
  EXPECT_NEAR(reports[1].orphaned_watts, 0.0, 1e-9);
  for (int i : {0, 2, 3}) {
    EXPECT_EQ(reports[static_cast<std::size_t>(i)].crashes, 0u);
    EXPECT_EQ(reports[static_cast<std::size_t>(i)].incarnation, 1u);
  }
  EXPECT_NEAR(cluster.total_live_watts() + cluster.orphaned_watts(),
              cluster.budget(), 1e-6);
}

TEST(ThreadCluster, NodeStillDownAtShutdownLeavesOrphanedWatts) {
  // The down window outlasts the run: the node never restarts, so its
  // seized watts stay on the orphan ledger — visible, attributed, and
  // still part of the conservation identity.
  ThreadClusterConfig cfg = quick_config(4);
  cfg.crash_events = {ThreadCrashEvent{2, common::from_millis(100),
                                       common::from_seconds(60.0)}};
  ThreadCluster cluster(cfg, steady_scripts(4, 60.0, 240.0));
  cluster.run_for(common::from_millis(500));

  auto reports = cluster.reports();
  EXPECT_EQ(reports[2].crashes, 1u);
  EXPECT_EQ(reports[2].restarts, 0u);
  EXPECT_EQ(reports[2].incarnation, 1u);
  EXPECT_GT(reports[2].orphaned_watts, 0.0);
  EXPECT_GT(cluster.orphaned_watts(), 0.0);
  EXPECT_NEAR(cluster.total_live_watts() + cluster.orphaned_watts(),
              cluster.budget(), 1e-6);
}

TEST(ThreadCluster, PeersKeepTradingAroundACrashedNode) {
  // With one node dark for most of the run, requests routed to it time
  // out like probes of any dead peer; the survivors keep exchanging
  // power and shutdown still joins cleanly.
  ThreadClusterConfig cfg = quick_config(4);
  cfg.crash_events = {ThreadCrashEvent{3, common::from_millis(100),
                                       common::from_seconds(60.0)}};
  ThreadCluster cluster(cfg, steady_scripts(4, 60.0, 240.0));
  cluster.run_for(common::from_millis(1200));

  std::uint64_t survivor_grants = 0;
  for (const auto& report : cluster.reports()) {
    if (report.id != 3) survivor_grants += report.grants_received;
  }
  EXPECT_GT(survivor_grants, 0u);
  EXPECT_NEAR(cluster.total_live_watts() + cluster.orphaned_watts(),
              cluster.budget(), 1e-6);
}

TEST(SpinKernel, DeterministicAndWorkProportional) {
  EXPECT_EQ(spin_kernel(1000), spin_kernel(1000));
  EXPECT_NE(spin_kernel(1000), spin_kernel(1001));
}

TEST(Overhead, MeasuresAllNineWorkloads) {
  OverheadConfig cfg;
  cfg.work_seconds = 0.02;  // keep the test quick
  cfg.repetitions = 1;
  auto results = measure_overhead(cfg);
  ASSERT_EQ(results.size(), 9u);
  for (const auto& r : results) {
    EXPECT_GT(r.baseline_seconds, 0.0) << r.workload;
    EXPECT_GT(r.penelope_seconds, 0.0) << r.workload;
    // Overhead can be noisy at this tiny scale but must not be absurd.
    EXPECT_LT(r.overhead_fraction, 2.0) << r.workload;
    EXPECT_GT(r.overhead_fraction, -0.9) << r.workload;
  }
}

}  // namespace
}  // namespace penelope::rt
