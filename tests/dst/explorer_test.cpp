// End-to-end properties of the fault-schedule explorer: byte-identical
// replay, swarm determinism across worker counts, a quiet verdict on the
// hardened tree, and the self-test that matters most — the planted
// grant-dedup regression is found by the swarm and ddmin-shrunk to a
// handful of fault events with a working repro command.
#include "dst/explorer.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace penelope::dst {
namespace {

ExplorerConfig small_config() {
  ExplorerConfig cfg;
  cfg.n_nodes = 8;
  cfg.base_seed = 1;
  cfg.seeds = 2;
  cfg.schedules = 4;
  cfg.jobs = 2;
  return cfg;
}

TEST(DstSwarm, ReplayIsByteIdentical) {
  ExplorerConfig cfg = small_config();
  const std::uint64_t salt = schedule_salt(cfg, 0);
  auto schedule = generate_schedule(cfg.spec, salt);
  RunOutcome a = execute_one(cfg, 3, salt, schedule);
  RunOutcome b = execute_one(cfg, 3, salt, schedule);
  EXPECT_EQ(a.trace_hash, b.trace_hash);
  EXPECT_EQ(a.executed_events, b.executed_events);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.violations.size(), b.violations.size());
  EXPECT_GT(a.executed_events, 0u);
}

TEST(DstSwarm, SwarmOutcomeIsIndependentOfWorkerCount) {
  ExplorerConfig cfg = small_config();
  cfg.jobs = 1;
  SwarmReport serial = run_swarm(cfg);
  cfg.jobs = 4;
  SwarmReport parallel = run_swarm(cfg);
  EXPECT_EQ(serial.runs, 8u);
  EXPECT_EQ(serial.outcome_hash, parallel.outcome_hash);
  EXPECT_EQ(serial.violating_runs, parallel.violating_runs);
}

TEST(DstSwarm, HardenedClusterSurvivesTheSwarm) {
  ExplorerConfig cfg = small_config();
  cfg.seeds = 2;
  cfg.schedules = 8;
  SwarmReport report = run_swarm(cfg);
  EXPECT_EQ(report.runs, 16u);
  EXPECT_EQ(report.violating_runs, 0u)
      << "first: seed=" << report.violations.front().seed << " schedule "
      << report.violations.front().schedule;
}

TEST(DstSwarm, PlantedBugIsFoundAndShrunkToAMinimalRepro) {
  // The acceptance test from the issue: revert the PR 2 grant hardening
  // behind the test hook, let the swarm find it, and shrink the first
  // violating schedule to <= 5 fault events that still reproduce it.
  ExplorerConfig cfg = small_config();
  cfg.plant_bug = true;
  cfg.seeds = 4;
  cfg.schedules = 8;
  cfg.jobs = 0;
  SwarmReport report = run_swarm(cfg);
  ASSERT_GT(report.violating_runs, 0u)
      << "the swarm lost its ability to find the planted bug";

  const RunOutcome& first = report.violations.front();
  std::vector<cluster::FaultEvent> schedule;
  ASSERT_TRUE(parse_schedule(first.schedule, &schedule));
  const std::string& oracle = first.violations.front().oracle;

  std::size_t spent = 0;
  auto minimal = shrink_schedule(cfg, first.seed, schedule, oracle, &spent);
  EXPECT_LE(minimal.size(), 5u)
      << "minimal repro too large: " << format_schedule(minimal);
  EXPECT_GE(minimal.size(), 1u);
  EXPECT_GT(spent, 0u);
  EXPECT_LE(spent, cfg.shrink_budget);

  // The shrunk schedule still violates the SAME oracle.
  RunOutcome replay = execute_one(cfg, first.seed, 0, minimal);
  EXPECT_TRUE(has_oracle(replay.violations, oracle))
      << format_schedule(minimal);

  // ddmin is deterministic: shrinking again lands on the same minimum.
  std::size_t spent2 = 0;
  auto minimal2 =
      shrink_schedule(cfg, first.seed, schedule, oracle, &spent2);
  EXPECT_EQ(format_schedule(minimal), format_schedule(minimal2));
  EXPECT_EQ(spent, spent2);

  // And the one-line repro names the run.
  std::string repro = repro_command(cfg, first.seed, minimal);
  EXPECT_NE(repro.find("run_experiment"), std::string::npos);
  EXPECT_NE(repro.find("dst=1"), std::string::npos);
  EXPECT_NE(repro.find("dst_bug=1"), std::string::npos);
  EXPECT_NE(repro.find("schedule='" + format_schedule(minimal) + "'"),
            std::string::npos)
      << repro;
}

TEST(DstSwarm, CorruptionWeatherAloneLeavesTheLedgerExact) {
  // A schedule that is nothing but a 1%-corruption window: every
  // corrupted frame is dropped by the checksum (never decoded into a
  // wrong message), watts stay conserved to tolerance, and the run
  // completes. Mirrors the acceptance criterion for the sim side.
  ExplorerConfig cfg = small_config();
  std::vector<cluster::FaultEvent> schedule;
  ASSERT_TRUE(parse_schedule("rates@2,0,0,0,0.01/rates@30,0,0,0,0",
                             &schedule));
  RunOutcome out = execute_one(cfg, 5, 0, schedule);
  EXPECT_TRUE(out.completed);
  EXPECT_TRUE(out.violations.empty())
      << out.violations.front().oracle << ": "
      << out.violations.front().detail;
}

}  // namespace
}  // namespace penelope::dst
