// The schedule text format is the repro channel: a violating run is
// communicated as `schedule='...'` on a run_experiment command line, so
// format -> parse -> format must be the identity down to the exact tick,
// and the generator must be a pure function of (spec, salt).
#include "dst/schedule.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace penelope::dst {
namespace {

using cluster::FaultEvent;

bool events_equal(const FaultEvent& a, const FaultEvent& b) {
  return a.kind == b.kind && a.at == b.at && a.node == b.node &&
         a.until == b.until && a.magnitude == b.magnitude &&
         a.rates.loss == b.rates.loss &&
         a.rates.duplicate == b.rates.duplicate &&
         a.rates.reorder == b.rates.reorder &&
         a.rates.corrupt == b.rates.corrupt;
}

TEST(DstSchedule, GeneratorIsAPureFunctionOfSpecAndSalt) {
  ScheduleSpec spec;
  auto a = generate_schedule(spec, 0x1234);
  auto b = generate_schedule(spec, 0x1234);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(events_equal(a[i], b[i])) << "event " << i;
  }
  EXPECT_FALSE(a.empty());
  // A different salt draws a different schedule.
  auto c = generate_schedule(spec, 0x5678);
  EXPECT_NE(format_schedule(a), format_schedule(c));
}

TEST(DstSchedule, GeneratedSchedulesAreSortedAndInHorizon) {
  ScheduleSpec spec;
  spec.horizon_s = 25.0;
  spec.episodes = 6;
  for (std::uint64_t salt = 0; salt < 20; ++salt) {
    auto events = generate_schedule(spec, salt);
    for (std::size_t i = 1; i < events.size(); ++i) {
      EXPECT_LE(events[i - 1].at, events[i].at) << "salt " << salt;
    }
    for (const FaultEvent& e : events) {
      EXPECT_GE(e.at, common::from_seconds(1.0)) << "salt " << salt;
      // Undo events may overshoot the horizon by the episode length
      // bound; injected faults may not.
      EXPECT_LT(e.at, common::from_seconds(spec.horizon_s + 10.0))
          << "salt " << salt;
    }
  }
}

TEST(DstSchedule, FormatParseRoundTripIsTheIdentity) {
  ScheduleSpec spec;
  spec.episodes = 8;
  for (std::uint64_t salt = 1; salt <= 50; ++salt) {
    auto events = generate_schedule(spec, salt);
    std::string text = format_schedule(events);
    std::vector<FaultEvent> parsed;
    std::string error;
    ASSERT_TRUE(parse_schedule(text, &parsed, &error))
        << "salt " << salt << ": " << error << "\n  " << text;
    ASSERT_EQ(parsed.size(), events.size()) << text;
    for (std::size_t i = 0; i < events.size(); ++i) {
      EXPECT_TRUE(events_equal(events[i], parsed[i]))
          << "salt " << salt << " event " << i << "\n  " << text;
    }
    EXPECT_EQ(format_schedule(parsed), text);
  }
}

TEST(DstSchedule, TimesRoundTripExactlyAtMicrosecondGranularity) {
  // 12.502999 s is not representable in binary floating point; the
  // text format must still name the exact tick.
  FaultEvent e;
  e.kind = FaultEvent::Kind::kCrashNode;
  e.at = 12'502'999;  // ticks = microseconds
  e.node = 3;
  std::string text = format_schedule({e});
  EXPECT_NE(text.find("12.502999"), std::string::npos) << text;
  std::vector<FaultEvent> parsed;
  ASSERT_TRUE(parse_schedule(text, &parsed));
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].at, 12'502'999);
}

TEST(DstSchedule, ParseSortsIntoCanonicalOrder) {
  std::vector<FaultEvent> parsed;
  ASSERT_TRUE(
      parse_schedule("recover@14,3/crash@2.5,3/pause@7,1", &parsed));
  ASSERT_EQ(parsed.size(), 3u);
  EXPECT_EQ(parsed[0].kind, FaultEvent::Kind::kCrashNode);
  EXPECT_EQ(parsed[1].kind, FaultEvent::Kind::kPauseNode);
  EXPECT_EQ(parsed[2].kind, FaultEvent::Kind::kRecoverNode);
}

TEST(DstSchedule, ParseRejectsMalformedInputAndLeavesOutUntouched) {
  const char* bad[] = {
      "frobnicate@3",       // unknown kind
      "crash@",             // missing time
      "crash@abc,1",        // non-numeric time
      "crash@3",            // missing node arg
      "crash@3,1,9",        // excess args
      "burst@3,1,50",       // burst needs E and U
      "rates@3,0.1",        // rates needs all four
      "crash@3,1/",         // trailing empty event
      "crash@-1,0",         // negative time
      "crash@3.1234567,0",  // more than tick precision
  };
  for (const char* text : bad) {
    std::vector<FaultEvent> out;
    out.push_back(FaultEvent{});  // sentinel: must survive a failed parse
    std::string error;
    EXPECT_FALSE(parse_schedule(text, &out, &error)) << text;
    EXPECT_FALSE(error.empty()) << text;
    EXPECT_EQ(out.size(), 1u) << text;
  }
}

TEST(DstSchedule, CleanlinessTracksWhetherEveryFaultIsUndone) {
  auto clean = [](const std::string& text) {
    std::vector<FaultEvent> events;
    EXPECT_TRUE(parse_schedule(text, &events)) << text;
    return schedule_is_clean(events);
  };
  EXPECT_TRUE(clean("crash@2,1/recover@5,1"));
  EXPECT_FALSE(clean("crash@2,1"));
  EXPECT_FALSE(clean("crash@2,1/recover@5,2"));  // wrong node recovered
  EXPECT_TRUE(clean("part@2,4/heal@6"));
  EXPECT_FALSE(clean("part@2,4"));
  EXPECT_TRUE(clean("asym@2,4/asymheal@6"));
  EXPECT_FALSE(clean("asym@2,4"));
  EXPECT_TRUE(clean("pause@2,3/resume@4,3"));
  EXPECT_FALSE(clean("pause@2,3"));
  EXPECT_TRUE(clean("rates@2,0.1,0.05,0,0/rates@8,0,0,0,0"));
  EXPECT_FALSE(clean("rates@2,0.1,0.05,0,0"));
  // Kills are never undone.
  EXPECT_FALSE(clean("killsrv@3"));
  EXPECT_FALSE(clean("killmgmt@3,2"));
  // Bursts self-expire: clean by construction.
  EXPECT_TRUE(clean("burst@2,1,50,4"));
  EXPECT_TRUE(clean(""));
}

TEST(DstSchedule, EmptyScheduleFormatsAndParsesAsEmpty) {
  EXPECT_EQ(format_schedule({}), "");
  std::vector<FaultEvent> parsed;
  EXPECT_TRUE(parse_schedule("", &parsed));
  EXPECT_TRUE(parsed.empty());
}

}  // namespace
}  // namespace penelope::dst
