// Each invariant oracle must fire on a hand-built violating history and
// stay quiet on a healthy one. OracleFacts is deliberately forgeable —
// no live Cluster needed — so every oracle's trigger condition is pinned
// here directly, including the subset-robustness gates (clean-schedule
// arming, schedule-derived incarnation bounds).
#include "dst/oracles.hpp"

#include <gtest/gtest.h>

#include "telemetry/flight_recorder.hpp"

namespace penelope::dst {
namespace {

using telemetry::TxnEventKind;
using telemetry::TxnRecord;

TxnRecord settle(std::uint64_t txn, TxnEventKind kind) {
  TxnRecord rec;
  rec.at = 1000;
  rec.txn_id = txn;
  rec.kind = kind;
  rec.node = 0;
  rec.peer = 1;
  rec.watts = 5.0;
  return rec;
}

OracleFacts healthy_facts() {
  OracleFacts facts;
  facts.audit.max_abs_conservation_error = 1e-13;
  facts.audit.max_live_overshoot = 0.0;
  facts.audit.audits = 100;
  facts.journal = {settle(1, TxnEventKind::kGrantReceived),
                   settle(2, TxnEventKind::kLateGrant),
                   settle(3, TxnEventKind::kGrantReceived)};
  facts.incarnations = {1, 2, 1};
  facts.allowed_restarts = {0, 1, 0};
  facts.wedged = false;
  facts.all_completed = true;
  facts.clean_schedule = true;
  facts.reconverged = true;
  return facts;
}

TEST(DstOracles, HealthyRunProducesNoViolations) {
  EXPECT_TRUE(check_oracles(healthy_facts()).empty());
}

TEST(DstOracles, ConservationFiresOnLedgerDrift) {
  OracleFacts facts = healthy_facts();
  facts.audit.max_abs_conservation_error = 0.5;
  auto v = check_oracles(facts);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].oracle, "conservation");
  EXPECT_TRUE(has_oracle(v, "conservation"));
  EXPECT_FALSE(has_oracle(v, "cap-overshoot"));
  // Sub-tolerance drift is noise, not a violation.
  facts.audit.max_abs_conservation_error = 1e-9;
  EXPECT_TRUE(check_oracles(facts).empty());
}

TEST(DstOracles, CapOvershootFiresOnLiveWattsAboveBudget) {
  OracleFacts facts = healthy_facts();
  facts.audit.max_live_overshoot = 2.0;
  auto v = check_oracles(facts);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].oracle, "cap-overshoot");
}

TEST(DstOracles, AtMostOnceFiresOnDoubleSettlement) {
  // The same transaction both applied by the decider AND banked late:
  // the double-apply the PR 2 dedup window exists to prevent.
  OracleFacts facts = healthy_facts();
  facts.journal.push_back(settle(7, TxnEventKind::kGrantReceived));
  facts.journal.push_back(settle(7, TxnEventKind::kLateGrant));
  auto v = check_oracles(facts);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].oracle, "at-most-once");
  EXPECT_NE(v[0].detail.find("txn 7"), std::string::npos) << v[0].detail;

  // Two applications of the same grant is the same violation.
  facts = healthy_facts();
  facts.journal.push_back(settle(9, TxnEventKind::kGrantReceived));
  facts.journal.push_back(settle(9, TxnEventKind::kGrantReceived));
  EXPECT_TRUE(has_oracle(check_oracles(facts), "at-most-once"));

  // A wrapped ring does not excuse a double-settle that was retained.
  facts.journal_complete = false;
  EXPECT_TRUE(has_oracle(check_oracles(facts), "at-most-once"));

  // Non-settlement events never count toward the limit.
  facts = healthy_facts();
  facts.journal.push_back(settle(4, TxnEventKind::kRequestSent));
  facts.journal.push_back(settle(4, TxnEventKind::kRequestServed));
  facts.journal.push_back(settle(4, TxnEventKind::kGrantReceived));
  EXPECT_TRUE(check_oracles(facts).empty());
}

TEST(DstOracles, IncarnationFiresOutsideTheScheduleDerivedBound) {
  // Node 2 reports incarnation 3 but the schedule only ever recovered
  // it once: it re-admitted itself through a path that never existed.
  OracleFacts facts = healthy_facts();
  facts.incarnations = {1, 1, 3};
  facts.allowed_restarts = {0, 0, 1};
  auto v = check_oracles(facts);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].oracle, "incarnation");
  EXPECT_NE(v[0].detail.find("node 2"), std::string::npos) << v[0].detail;

  // Incarnation 0 is below the floor: monotonicity broke.
  facts = healthy_facts();
  facts.incarnations = {0, 1, 1};
  facts.allowed_restarts = {0, 0, 0};
  EXPECT_TRUE(has_oracle(check_oracles(facts), "incarnation"));

  // Churn makes the bound void: the churn process restarts nodes
  // outside the schedule, so the oracle must stand down.
  facts.churny = true;
  EXPECT_TRUE(check_oracles(facts).empty());
}

TEST(DstOracles, WedgeIsReportedRegardlessOfScheduleCleanliness) {
  OracleFacts facts = healthy_facts();
  facts.wedged = true;
  facts.clean_schedule = false;
  auto v = check_oracles(facts);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].oracle, "liveness-wedged");
}

TEST(DstOracles, IncompleteRunFiresOnlyOnCleanSchedules) {
  OracleFacts facts = healthy_facts();
  facts.all_completed = false;
  EXPECT_TRUE(has_oracle(check_oracles(facts), "liveness-incomplete"));

  // An unhealed schedule is allowed to leave the cluster degraded: the
  // shrinker must be able to drop a recover event without inventing a
  // liveness violation that the original run never had.
  facts.clean_schedule = false;
  EXPECT_TRUE(check_oracles(facts).empty());

  // A wedge subsumes mere incompleteness.
  facts = healthy_facts();
  facts.all_completed = false;
  facts.wedged = true;
  auto v = check_oracles(facts);
  EXPECT_TRUE(has_oracle(v, "liveness-wedged"));
  EXPECT_FALSE(has_oracle(v, "liveness-incomplete"));
}

TEST(DstOracles, NoReconvergenceFiresOnlyOnCleanSchedules) {
  OracleFacts facts = healthy_facts();
  facts.reconverged = false;
  EXPECT_TRUE(
      has_oracle(check_oracles(facts), "liveness-no-reconvergence"));
  facts.clean_schedule = false;
  EXPECT_TRUE(check_oracles(facts).empty());
}

TEST(DstOracles, ViolationsAccumulateIndependently) {
  OracleFacts facts = healthy_facts();
  facts.audit.max_abs_conservation_error = 1.0;
  facts.audit.max_live_overshoot = 1.0;
  facts.journal.push_back(settle(5, TxnEventKind::kGrantReceived));
  facts.journal.push_back(settle(5, TxnEventKind::kLateGrant));
  facts.wedged = true;
  auto v = check_oracles(facts);
  EXPECT_EQ(v.size(), 4u);
  EXPECT_TRUE(has_oracle(v, "conservation"));
  EXPECT_TRUE(has_oracle(v, "cap-overshoot"));
  EXPECT_TRUE(has_oracle(v, "at-most-once"));
  EXPECT_TRUE(has_oracle(v, "liveness-wedged"));
}

}  // namespace
}  // namespace penelope::dst
