#include "power/sysfs_rapl.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>

namespace penelope::power {
namespace {

namespace fs = std::filesystem;

/// Builds a fake /sys/class/powercap tree so the backend can be tested
/// without RAPL hardware (and without root).
class FakePowercapTree {
 public:
  FakePowercapTree() {
    root_ = fs::temp_directory_path() /
            ("penelope_rapl_test_" + std::to_string(::getpid()));
    fs::create_directories(root_);
  }
  ~FakePowercapTree() { fs::remove_all(root_); }

  void add_package(int index, double energy_uj, double limit_uw,
                   double max_energy_uj = 262143328850.0) {
    fs::path pkg = root_ / ("intel-rapl:" + std::to_string(index));
    fs::create_directories(pkg);
    write(pkg / "energy_uj", energy_uj);
    write(pkg / "constraint_0_power_limit_uw", limit_uw);
    write(pkg / "max_energy_range_uj", max_energy_uj);
  }

  void add_subdomain(int pkg, int sub) {
    fs::path p = root_ / ("intel-rapl:" + std::to_string(pkg) + ":" +
                          std::to_string(sub));
    fs::create_directories(p);
    write(p / "energy_uj", 123.0);
  }

  void set_energy(int index, double energy_uj) {
    fs::path pkg = root_ / ("intel-rapl:" + std::to_string(index));
    write(pkg / "energy_uj", energy_uj);
  }

  double read_limit(int index) const {
    fs::path pkg = root_ / ("intel-rapl:" + std::to_string(index));
    std::ifstream f(pkg / "constraint_0_power_limit_uw");
    double v = 0.0;
    f >> v;
    return v;
  }

  std::string path() const { return root_.string(); }

 private:
  static void write(const fs::path& p, double value) {
    std::ofstream f(p, std::ios::trunc);
    f << static_cast<long long>(value);
  }

  fs::path root_;
};

SysfsRaplConfig config_for(const FakePowercapTree& tree) {
  SysfsRaplConfig cfg;
  cfg.powercap_root = tree.path();
  cfg.safe_range = {.min_watts = 80.0, .max_watts = 250.0};
  return cfg;
}

TEST(SysfsRapl, UnavailableWhenRootMissing) {
  SysfsRaplConfig cfg;
  cfg.powercap_root = "/definitely/not/a/real/path";
  SysfsRapl rapl(cfg);
  EXPECT_FALSE(rapl.available());
  EXPECT_EQ(rapl.read_average_power(0), 0.0);
}

TEST(SysfsRapl, DiscoversPackageDomainsOnly) {
  FakePowercapTree tree;
  tree.add_package(0, 1'000'000, 100'000'000);
  tree.add_package(1, 2'000'000, 100'000'000);
  tree.add_subdomain(0, 0);  // core subdomain must be ignored
  SysfsRapl rapl(config_for(tree));
  EXPECT_TRUE(rapl.available());
  EXPECT_EQ(rapl.package_count(), 2u);
}

TEST(SysfsRapl, SetCapSplitsAcrossPackages) {
  FakePowercapTree tree;
  tree.add_package(0, 0, 125'000'000);
  tree.add_package(1, 0, 125'000'000);
  SysfsRapl rapl(config_for(tree));
  ASSERT_TRUE(rapl.cap_writable());
  rapl.set_cap(200.0);
  EXPECT_DOUBLE_EQ(rapl.cap(), 200.0);
  EXPECT_DOUBLE_EQ(tree.read_limit(0), 100'000'000.0);
  EXPECT_DOUBLE_EQ(tree.read_limit(1), 100'000'000.0);
}

TEST(SysfsRapl, SetCapClampsToSafeRange) {
  FakePowercapTree tree;
  tree.add_package(0, 0, 125'000'000);
  SysfsRapl rapl(config_for(tree));
  rapl.set_cap(10.0);
  EXPECT_DOUBLE_EQ(rapl.cap(), 80.0);
  rapl.set_cap(9000.0);
  EXPECT_DOUBLE_EQ(rapl.cap(), 250.0);
}

TEST(SysfsRapl, EnergyDeltaBecomesPower) {
  FakePowercapTree tree;
  tree.add_package(0, 1'000'000, 100'000'000);
  SysfsRapl rapl(config_for(tree));
  // Bump the counter by 5 J; whatever wall time elapsed, power must be
  // positive and finite. Sleep so the wall interval is measurable.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  tree.set_energy(0, 6'000'000);
  double p = rapl.read_average_power(0);
  EXPECT_GT(p, 0.0);
}

TEST(SysfsRapl, CounterWrapIsHandled) {
  FakePowercapTree tree;
  double max_range = 1'000'000'000.0;
  tree.add_package(0, 999'999'000, 100'000'000, max_range);
  SysfsRapl rapl(config_for(tree));
  // Wrap: counter goes past max and restarts near zero.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  tree.set_energy(0, 1'000);
  double p = rapl.read_average_power(0);
  // Delta should be +2000 uJ (wrap-corrected), never negative.
  EXPECT_GE(p, 0.0);
}

TEST(SysfsRapl, InstantaneousFallsBackToLastInterval) {
  FakePowercapTree tree;
  tree.add_package(0, 1'000'000, 100'000'000);
  SysfsRapl rapl(config_for(tree));
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  tree.set_energy(0, 2'000'000);
  double avg = rapl.read_average_power(0);
  EXPECT_DOUBLE_EQ(rapl.instantaneous_power(0), avg);
}

}  // namespace
}  // namespace penelope::power
