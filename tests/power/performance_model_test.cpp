#include "power/performance_model.hpp"

#include <gtest/gtest.h>

namespace penelope::power {
namespace {

TEST(PerformanceModel, FullPowerIsFullSpeed) {
  PerformanceModel model;
  EXPECT_DOUBLE_EQ(model.speed(200.0, 200.0), 1.0);
  EXPECT_DOUBLE_EQ(model.speed(300.0, 200.0), 1.0);
}

TEST(PerformanceModel, ZeroOrBasePowerIsZeroSpeed) {
  PerformanceModel model(
      PerformanceModelConfig{.alpha = 0.5, .base_fraction = 0.25});
  EXPECT_DOUBLE_EQ(model.speed(0.0, 200.0), 0.0);
  EXPECT_DOUBLE_EQ(model.speed(50.0, 200.0), 0.0);  // exactly base
  EXPECT_DOUBLE_EQ(model.speed(40.0, 200.0), 0.0);  // below base
}

TEST(PerformanceModel, IdlePhaseRunsFullSpeed) {
  PerformanceModel model;
  EXPECT_DOUBLE_EQ(model.speed(0.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(model.speed(100.0, -5.0), 1.0);
}

TEST(PerformanceModel, MonotoneInDeliveredPower) {
  PerformanceModel model;
  double prev = 0.0;
  for (double p = 60.0; p <= 200.0; p += 10.0) {
    double s = model.speed(p, 200.0);
    EXPECT_GE(s, prev);
    prev = s;
  }
}

TEST(PerformanceModel, ConcavityGivingToStarvedBeatsTakingFromFed) {
  // The property that makes power shifting worthwhile at all: 10 W moved
  // from a node at 90% of demand to a node at 50% of demand increases
  // total speed.
  PerformanceModel model;
  double d = 200.0;
  double rich = 180.0;
  double poor = 100.0;
  double before = model.speed(rich, d) + model.speed(poor, d);
  double after = model.speed(rich - 10.0, d) + model.speed(poor + 10.0, d);
  EXPECT_GT(after, before);
}

TEST(PerformanceModel, AlphaOneIsLinearInEffectiveBand) {
  PerformanceModel model(
      PerformanceModelConfig{.alpha = 1.0, .base_fraction = 0.0});
  EXPECT_NEAR(model.speed(100.0, 200.0), 0.5, 1e-12);
  EXPECT_NEAR(model.speed(150.0, 200.0), 0.75, 1e-12);
}

TEST(PerformanceModel, DefaultAlphaIsConcave) {
  PerformanceModel model(
      PerformanceModelConfig{.alpha = 0.5, .base_fraction = 0.0});
  // Half power gives sqrt(1/2) ~ 0.707 of speed: concave.
  EXPECT_NEAR(model.speed(100.0, 200.0), 0.7071, 1e-3);
}

TEST(PerformanceModel, PowerForSpeedInvertsSpeed) {
  PerformanceModel model;
  double d = 180.0;
  for (double target : {0.1, 0.3, 0.5, 0.7, 0.9, 1.0}) {
    double p = model.power_for_speed(target, d);
    EXPECT_NEAR(model.speed(p, d), target, 1e-9);
  }
}

TEST(PerformanceModel, PowerForSpeedEdges) {
  PerformanceModel model;
  EXPECT_DOUBLE_EQ(model.power_for_speed(1.0, 200.0), 200.0);
  EXPECT_DOUBLE_EQ(model.power_for_speed(2.0, 200.0), 200.0);  // clamped
  EXPECT_DOUBLE_EQ(model.power_for_speed(0.5, 0.0), 0.0);
}

TEST(PerformanceModelDeath, RejectsBadConfig) {
  EXPECT_DEATH(PerformanceModel(PerformanceModelConfig{.alpha = 0.0,
                                                       .base_fraction = 0.0}),
               "alpha");
  EXPECT_DEATH(PerformanceModel(PerformanceModelConfig{.alpha = 0.5,
                                                       .base_fraction = 1.0}),
               "base_fraction");
}

class SpeedSweep : public ::testing::TestWithParam<double> {};

TEST_P(SpeedSweep, SpeedAlwaysInUnitInterval) {
  PerformanceModel model(
      PerformanceModelConfig{.alpha = GetParam(), .base_fraction = 0.25});
  for (double p = 0.0; p <= 300.0; p += 7.0) {
    for (double d = 0.0; d <= 300.0; d += 13.0) {
      double s = model.speed(p, d);
      EXPECT_GE(s, 0.0);
      EXPECT_LE(s, 1.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, SpeedSweep,
                         ::testing::Values(0.25, 0.5, 0.75, 1.0));

}  // namespace
}  // namespace penelope::power
