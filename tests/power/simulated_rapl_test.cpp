#include "power/simulated_rapl.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace penelope::power {
namespace {

using common::from_seconds;

SimulatedRaplConfig base_config() {
  SimulatedRaplConfig cfg;
  cfg.safe_range = {.min_watts = 80.0, .max_watts = 250.0};
  cfg.tau_seconds = 0.15;
  cfg.idle_watts = 40.0;
  cfg.initial_cap_watts = 160.0;
  cfg.initial_demand_watts = 40.0;
  cfg.read_noise_watts = 0.0;
  return cfg;
}

TEST(SimulatedRapl, CapIsClampedToSafeRange) {
  auto cfg = base_config();
  SimulatedRapl rapl(cfg);
  rapl.set_cap(10.0);
  EXPECT_DOUBLE_EQ(rapl.cap(), 80.0);
  rapl.set_cap(9999.0);
  EXPECT_DOUBLE_EQ(rapl.cap(), 250.0);
  rapl.set_cap(120.0);
  EXPECT_DOUBLE_EQ(rapl.cap(), 120.0);
}

TEST(SimulatedRapl, PowerConvergesToDemandUnderCap) {
  auto cfg = base_config();
  SimulatedRapl rapl(cfg);
  rapl.set_demand(120.0, 0);
  // After 1 s (~6.7 tau), power should be at the target.
  double p = rapl.instantaneous_power(from_seconds(1.0));
  EXPECT_NEAR(p, 120.0, 0.5);
}

TEST(SimulatedRapl, PowerConvergesToCapWhenDemandExceedsIt) {
  auto cfg = base_config();
  SimulatedRapl rapl(cfg);
  rapl.set_cap(100.0);
  rapl.set_demand(240.0, 0);
  double p = rapl.instantaneous_power(from_seconds(1.0));
  EXPECT_NEAR(p, 100.0, 0.5);
}

TEST(SimulatedRapl, ConvergenceWithinHalfSecond) {
  // The paper cites RAPL converging on average in under 0.5 s [48]; the
  // model must honour that.
  auto cfg = base_config();
  SimulatedRapl rapl(cfg);
  rapl.set_demand(200.0, 0);
  rapl.set_cap(150.0);
  double p = rapl.instantaneous_power(from_seconds(0.5));
  EXPECT_NEAR(p, 150.0, 150.0 * 0.05);  // within 5% after 0.5 s
}

TEST(SimulatedRapl, IdleFloorHolds) {
  auto cfg = base_config();
  SimulatedRapl rapl(cfg);
  rapl.set_demand(0.0, 0);
  double p = rapl.instantaneous_power(from_seconds(2.0));
  EXPECT_NEAR(p, cfg.idle_watts, 0.1);
}

TEST(SimulatedRapl, AverageMatchesConstantPower) {
  auto cfg = base_config();
  cfg.initial_demand_watts = 120.0;
  SimulatedRapl rapl(cfg);
  // Let it settle, reset the read marker, then measure a steady window.
  (void)rapl.read_average_power(from_seconds(2.0));
  double avg = rapl.read_average_power(from_seconds(4.0));
  EXPECT_NEAR(avg, 120.0, 0.2);
}

TEST(SimulatedRapl, AverageReflectsTransition) {
  auto cfg = base_config();
  cfg.tau_seconds = 0.001;  // near-instant dynamics isolate the averaging
  SimulatedRapl rapl(cfg);
  (void)rapl.read_average_power(from_seconds(1.0));
  // Jump demand to 140 at t=1; read at t=3: the window is ~all at 140.
  rapl.set_demand(140.0, from_seconds(1.0));
  double avg = rapl.read_average_power(from_seconds(3.0));
  EXPECT_NEAR(avg, 140.0, 1.0);
}

TEST(SimulatedRapl, HalfWindowTransitionAveragesBetween) {
  auto cfg = base_config();
  cfg.tau_seconds = 1e-4;
  cfg.initial_demand_watts = 100.0;
  SimulatedRapl rapl(cfg);
  (void)rapl.read_average_power(from_seconds(1.0));
  // Demand steps to 140 (still under the 160 W cap) halfway through the
  // window: the average must land midway between the two levels.
  rapl.set_demand(140.0, from_seconds(2.0));
  double avg = rapl.read_average_power(from_seconds(3.0));
  EXPECT_NEAR(avg, 120.0, 1.5);
}

TEST(SimulatedRapl, EnergyIntegralIsExact) {
  auto cfg = base_config();
  cfg.initial_demand_watts = 100.0;
  SimulatedRapl rapl(cfg);
  // From the closed form: starting at p0=100 (initial power is
  // min(demand, cap) = 100), target 100 -> constant 100 W.
  double e = rapl.total_energy_joules(from_seconds(10.0));
  EXPECT_NEAR(e, 1000.0, 1e-6);
}

TEST(SimulatedRapl, EnergyOfExponentialApproachMatchesClosedForm) {
  auto cfg = base_config();
  cfg.initial_demand_watts = 40.0;  // start at idle
  SimulatedRapl rapl(cfg);
  rapl.set_demand(140.0, 0);  // step at t=0, p0 = 40
  double t = 0.3;
  double tau = cfg.tau_seconds;
  double expected = 140.0 * t + (40.0 - 140.0) * tau *
                                    (1.0 - std::exp(-t / tau));
  EXPECT_NEAR(rapl.total_energy_joules(from_seconds(t)), expected, 1e-6);
}

TEST(SimulatedRapl, SparseAndDenseSamplingAgree) {
  // The analytic model must be exact regardless of sampling cadence.
  auto cfg = base_config();
  SimulatedRapl dense(cfg);
  SimulatedRapl sparse(cfg);
  dense.set_demand(180.0, 0);
  sparse.set_demand(180.0, 0);
  for (int i = 1; i <= 1000; ++i) {
    (void)dense.instantaneous_power(from_seconds(i * 0.002));
  }
  double pd = dense.instantaneous_power(from_seconds(2.0));
  double ps = sparse.instantaneous_power(from_seconds(2.0));
  EXPECT_NEAR(pd, ps, 1e-9);
  EXPECT_NEAR(dense.total_energy_joules(from_seconds(2.0)),
              sparse.total_energy_joules(from_seconds(2.0)), 1e-6);
}

TEST(SimulatedRapl, ReadNoiseIsZeroMeanAndBounded) {
  auto cfg = base_config();
  cfg.read_noise_watts = 1.0;
  cfg.initial_demand_watts = 120.0;
  SimulatedRapl rapl(cfg);
  double sum = 0.0;
  const int n = 2000;
  for (int i = 1; i <= n; ++i) {
    double avg = rapl.read_average_power(from_seconds(2.0 + i));
    EXPECT_GE(avg, 0.0);
    sum += avg;
  }
  EXPECT_NEAR(sum / n, 120.0, 0.2);
}

TEST(SimulatedRapl, SameInstantReadReportsInstantaneous) {
  auto cfg = base_config();
  cfg.initial_demand_watts = 120.0;
  SimulatedRapl rapl(cfg);
  double a = rapl.read_average_power(from_seconds(1.0));
  double b = rapl.read_average_power(from_seconds(1.0));
  EXPECT_NEAR(a, b, 1.0);
}

TEST(SimulatedRapl, TargetPowerRespectsCapAndIdle) {
  auto cfg = base_config();
  SimulatedRapl rapl(cfg);
  rapl.set_demand(500.0, 0);
  rapl.set_cap(100.0);
  EXPECT_DOUBLE_EQ(rapl.target_power(), 100.0);
  rapl.set_demand(10.0, 0);
  EXPECT_DOUBLE_EQ(rapl.target_power(), cfg.idle_watts);
}

TEST(SimulatedRaplDeath, TimeCannotRunBackwards) {
  auto cfg = base_config();
  SimulatedRapl rapl(cfg);
  (void)rapl.instantaneous_power(from_seconds(5.0));
  EXPECT_DEATH((void)rapl.instantaneous_power(from_seconds(1.0)),
               "backwards");
}

}  // namespace
}  // namespace penelope::power
