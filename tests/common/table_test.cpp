#include "common/table.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace penelope::common {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  // Every line has the same column start for "value" data.
  EXPECT_NE(out.find("alpha  1"), std::string::npos);
}

TEST(Table, AddRowValuesFormatsDoubles) {
  Table t({"a", "b"});
  t.add_row_values({1.23456, 2.0}, 2);
  std::string csv = t.to_csv();
  EXPECT_NE(csv.find("1.23"), std::string::npos);
  EXPECT_NE(csv.find("2.00"), std::string::npos);
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table t({"x"});
  t.add_row({"a,b"});
  t.add_row({"say \"hi\""});
  std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, CsvRoundTripStructure) {
  Table t({"h1", "h2"});
  t.add_row({"r1c1", "r1c2"});
  EXPECT_EQ(t.to_csv(), "h1,h2\nr1c1,r1c2\n");
}

TEST(Table, WriteCsvCreatesFile) {
  Table t({"k"});
  t.add_row({"v"});
  std::string path = testing::TempDir() + "/penelope_table_test.csv";
  ASSERT_TRUE(t.write_csv(path));
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "k");
  std::remove(path.c_str());
}

TEST(Table, WriteCsvFailsGracefully) {
  Table t({"k"});
  EXPECT_FALSE(t.write_csv("/nonexistent-dir/x.csv"));
}

TEST(FmtHelpers, Format) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_percent(0.123, 1), "12.3%");
  EXPECT_EQ(fmt_percent(-0.05, 0), "-5%");
}

}  // namespace
}  // namespace penelope::common
