#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace penelope::common {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u32(), b.next_u32());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next_u32() == b.next_u32()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (std::uint32_t bound : {1u, 2u, 3u, 10u, 1000u, 1u << 31}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowOneIsAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform(10.0, 20.0);
  EXPECT_NEAR(sum / n, 15.0, 0.05);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(13);
  std::set<int> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_int(3, 7));
  EXPECT_EQ(seen, (std::set<int>{3, 4, 5, 6, 7}));
}

TEST(Rng, NormalMomentsAreSane) {
  Rng rng(17);
  const int n = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, NormalWithParamsShiftsAndScales) {
  Rng rng(19);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(42.0, 3.0);
  EXPECT_NEAR(sum / n, 42.0, 0.1);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(23);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.15);
}

TEST(Rng, ExponentialIsNonNegative) {
  Rng rng(29);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.exponential(1.0), 0.0);
}

TEST(Rng, ChanceEdgesAreExact) {
  Rng rng(31);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-0.5));
    EXPECT_TRUE(rng.chance(1.5));
  }
}

TEST(Rng, ChanceFrequencyTracksProbability) {
  Rng rng(37);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(41);
  Rng child = parent.fork();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (parent.next_u32() == child.next_u32()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, ForkIsDeterministic) {
  Rng a(43);
  Rng b(43);
  Rng ca = a.fork();
  Rng cb = b.fork();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(ca.next_u64(), cb.next_u64());
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(47);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(53);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  auto original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);
}

TEST(Splitmix64, KnownSequenceIsStable) {
  std::uint64_t state = 0;
  std::uint64_t first = splitmix64(state);
  std::uint64_t second = splitmix64(state);
  EXPECT_NE(first, second);
  // Regression pin: splitmix64(0) is a published constant.
  std::uint64_t check_state = 0;
  EXPECT_EQ(splitmix64(check_state), 0xe220a8397b1dcdafULL);
}

}  // namespace
}  // namespace penelope::common
