#include "common/histogram.hpp"

#include <gtest/gtest.h>

namespace penelope::common {
namespace {

TEST(Histogram, BucketsCoverRange) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.bucket_count(), 5u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(4), 10.0);
}

TEST(Histogram, SamplesLandInCorrectBuckets) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.0);
  h.add(1.9);
  h.add(2.0);
  h.add(9.9);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(4), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, UnderOverflowCounted) {
  Histogram h(0.0, 10.0, 2);
  h.add(-1.0);
  h.add(10.0);
  h.add(100.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.bucket(0) + h.bucket(1), 0u);
}

TEST(Histogram, QuantileApproximatesUniform) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 2.0);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 2.0);
  EXPECT_NEAR(h.quantile(0.0), 0.0, 2.0);
}

TEST(Histogram, QuantileOnEmptyReturnsLo) {
  Histogram h(5.0, 10.0, 4);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 5.0);
}

TEST(Histogram, QuantileExtremesStayInRange) {
  Histogram h(0.0, 100.0, 10);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  // q=1 must land inside the highest populated bucket, not past it.
  double top = h.quantile(1.0);
  EXPECT_GE(top, 90.0);
  EXPECT_LE(top, 100.0);
}

TEST(Histogram, QuantileAllUnderflowReturnsLo) {
  Histogram h(10.0, 20.0, 4);
  h.add(1.0);
  h.add(2.0);
  h.add(3.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 10.0);
}

TEST(Histogram, QuantileAllOverflowReturnsHi) {
  Histogram h(10.0, 20.0, 4);
  h.add(30.0);
  h.add(40.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 20.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 20.0);
}

TEST(Histogram, QuantileUnderflowShiftsRanks) {
  // 5 underflow samples + 5 in-range: the median rank falls on the
  // in-range half's first samples, not mid-range.
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 5; ++i) h.add(-1.0);
  for (int i = 0; i < 5; ++i) h.add(i + 0.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_LT(h.quantile(0.6), 2.0);
  EXPECT_GE(h.quantile(1.0), 4.0);
}

TEST(Histogram, QuantileInterpolatesWithinSingleSampleBucket) {
  // One sample in bucket [5, 6): the continuous rank spreads its unit
  // of mass uniformly over the bucket, so q sweeps the bucket linearly
  // instead of clamping to an edge.
  Histogram h(0.0, 10.0, 10);
  h.add(5.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.5);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 6.0);
}

TEST(Histogram, QuantileInterpolationIsExactAcrossBuckets) {
  // Two buckets, 1 and 3 samples: r = q*4 crosses from bucket [0, 10)
  // to [10, 20) at q = 0.25, and interpolates linearly inside each.
  Histogram h(0.0, 20.0, 2);
  h.add(5.0);
  h.add(15.0);
  h.add(15.0);
  h.add(15.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.125), 5.0);   // r=0.5, mid first bucket
  EXPECT_DOUBLE_EQ(h.quantile(0.25), 10.0);   // bucket boundary
  EXPECT_DOUBLE_EQ(h.quantile(0.625), 15.0);  // r=2.5, mid second bucket
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 20.0);
}

TEST(Histogram, QuantileIsMonotoneInQ) {
  Histogram h(0.0, 50.0, 7);
  h.add(-3.0);
  for (int i = 0; i < 20; ++i) h.add(2.5 * i);
  h.add(99.0);
  double prev = h.quantile(0.0);
  for (int i = 1; i <= 100; ++i) {
    double cur = h.quantile(i / 100.0);
    EXPECT_GE(cur, prev) << "q=" << i / 100.0;
    prev = cur;
  }
}

TEST(Histogram, RenderShowsBarsAndCounts) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(0.6);
  h.add(1.5);
  std::string out = h.render(10);
  EXPECT_NE(out.find("##########"), std::string::npos);  // peak bucket
  EXPECT_NE(out.find("2"), std::string::npos);
}

}  // namespace
}  // namespace penelope::common
