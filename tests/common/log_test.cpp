#include "common/log.hpp"

#include <gtest/gtest.h>

namespace penelope::common {
namespace {

TEST(LogRateLimiter, FirstOccurrenceAlwaysEmits) {
  LogRateLimiter limiter(10);
  std::uint64_t suppressed = 99;
  EXPECT_TRUE(limiter.should_emit(&suppressed));
  EXPECT_EQ(suppressed, 0u);
  EXPECT_EQ(limiter.occurrences(), 1u);
}

TEST(LogRateLimiter, EmitsEveryNthWithSuppressedCount) {
  LogRateLimiter limiter(4);
  std::uint64_t suppressed = 0;
  EXPECT_TRUE(limiter.should_emit(&suppressed));  // occurrence 0
  EXPECT_EQ(suppressed, 0u);
  EXPECT_FALSE(limiter.should_emit());  // 1
  EXPECT_FALSE(limiter.should_emit());  // 2
  EXPECT_FALSE(limiter.should_emit());  // 3
  EXPECT_TRUE(limiter.should_emit(&suppressed));  // 4
  EXPECT_EQ(suppressed, 3u);
  EXPECT_EQ(limiter.occurrences(), 5u);
}

TEST(LogRateLimiter, EveryOneNeverSuppresses) {
  LogRateLimiter limiter(1);
  std::uint64_t suppressed = 7;
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(limiter.should_emit(&suppressed));
    EXPECT_EQ(suppressed, 0u);
  }
}

TEST(LogRateLimiter, ZeroClampsToOne) {
  LogRateLimiter limiter(0);
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(limiter.should_emit());
}

TEST(LogRateLimiter, NullSuppressedPointerIsFine) {
  LogRateLimiter limiter(2);
  EXPECT_TRUE(limiter.should_emit(nullptr));
  EXPECT_FALSE(limiter.should_emit(nullptr));
  EXPECT_TRUE(limiter.should_emit(nullptr));
}

TEST(LogRateLimiter, LongRunEmissionDensity) {
  // 1000 occurrences at every=64: exactly ceil(1000/64) = 16 emissions.
  LogRateLimiter limiter(64);
  int emitted = 0;
  for (int i = 0; i < 1000; ++i) {
    if (limiter.should_emit()) ++emitted;
  }
  EXPECT_EQ(emitted, 16);
  EXPECT_EQ(limiter.occurrences(), 1000u);
}

TEST(LogRateLimiter, MacroCompilesAndIsQuietWhenDisabled) {
  // The macro's call-site static must count occurrences even when the
  // log level filters the actual emission; this is a smoke test that
  // the expansion compiles in a loop with format args and emits
  // nothing at kOff.
  LogLevel before = log_level();
  set_log_level(LogLevel::kOff);
  for (int i = 0; i < 100; ++i) {
    PEN_LOG_WARN_RATED(8, "repeated fallback warning %d", i);
  }
  PEN_LOG_WARN_RATED(8, "no-argument variant");
  set_log_level(before);
}

}  // namespace
}  // namespace penelope::common
