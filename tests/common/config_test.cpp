#include "common/config.hpp"

#include <gtest/gtest.h>

namespace penelope::common {
namespace {

TEST(Config, ParsesKeyValues) {
  Config c;
  ASSERT_TRUE(c.parse_entry("nodes=20"));
  ASSERT_TRUE(c.parse_entry("cap=80.5"));
  ASSERT_TRUE(c.parse_entry("name=penelope"));
  EXPECT_EQ(c.get_int("nodes", 0), 20);
  EXPECT_DOUBLE_EQ(c.get_double("cap", 0.0), 80.5);
  EXPECT_EQ(c.get_string("name", ""), "penelope");
}

TEST(Config, DefaultsWhenMissing) {
  Config c;
  EXPECT_EQ(c.get_int("absent", 7), 7);
  EXPECT_DOUBLE_EQ(c.get_double("absent", 1.5), 1.5);
  EXPECT_EQ(c.get_string("absent", "d"), "d");
  EXPECT_TRUE(c.get_bool("absent", true));
}

TEST(Config, RejectsMalformedEntries) {
  Config c;
  EXPECT_FALSE(c.parse_entry("noequals"));
  EXPECT_FALSE(c.parse_entry("=value"));
  EXPECT_FALSE(c.error().empty());
}

TEST(Config, BoolVariants) {
  Config c;
  c.parse_entry("a=1");
  c.parse_entry("b=true");
  c.parse_entry("c=yes");
  c.parse_entry("d=on");
  c.parse_entry("e=0");
  c.parse_entry("f=false");
  EXPECT_TRUE(c.get_bool("a", false));
  EXPECT_TRUE(c.get_bool("b", false));
  EXPECT_TRUE(c.get_bool("c", false));
  EXPECT_TRUE(c.get_bool("d", false));
  EXPECT_FALSE(c.get_bool("e", true));
  EXPECT_FALSE(c.get_bool("f", true));
}

TEST(Config, DoubleListParsing) {
  Config c;
  c.parse_entry("caps=60,70,80");
  auto caps = c.get_double_list("caps", {});
  ASSERT_EQ(caps.size(), 3u);
  EXPECT_DOUBLE_EQ(caps[0], 60.0);
  EXPECT_DOUBLE_EQ(caps[2], 80.0);
}

TEST(Config, IntListDefault) {
  Config c;
  auto v = c.get_int_list("absent", {1, 2});
  EXPECT_EQ(v, (std::vector<int>{1, 2}));
}

TEST(Config, ParseArgsSkipsProgramName) {
  const char* argv_c[] = {"prog", "x=1", "y=2"};
  char** argv = const_cast<char**>(argv_c);
  Config c;
  ASSERT_TRUE(c.parse_args(3, argv));
  EXPECT_EQ(c.get_int("x", 0), 1);
  EXPECT_EQ(c.get_int("y", 0), 2);
}

TEST(Config, UnusedKeysTracksReads) {
  Config c;
  c.parse_entry("used=1");
  c.parse_entry("typo=1");
  (void)c.get_int("used", 0);
  auto unused = c.unused_keys();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(Config, ValueWithEqualsSign) {
  Config c;
  ASSERT_TRUE(c.parse_entry("expr=a=b"));
  EXPECT_EQ(c.get_string("expr", ""), "a=b");
}

}  // namespace
}  // namespace penelope::common
