#include "common/units.hpp"

#include <gtest/gtest.h>

namespace penelope::common {
namespace {

TEST(Units, SecondConversionsRoundTrip) {
  EXPECT_EQ(from_seconds(1.0), kTicksPerSecond);
  EXPECT_EQ(from_seconds(0.5), kTicksPerSecond / 2);
  EXPECT_DOUBLE_EQ(to_seconds(from_seconds(2.25)), 2.25);
}

TEST(Units, MillisecondConversions) {
  EXPECT_EQ(from_millis(1.0), kTicksPerMillisecond);
  EXPECT_DOUBLE_EQ(to_millis(from_millis(12.5)), 12.5);
}

TEST(Units, WattsEqualWithinEpsilon) {
  EXPECT_TRUE(watts_equal(1.0, 1.0 + kWattEpsilon / 2));
  EXPECT_FALSE(watts_equal(1.0, 1.0 + 2 * kWattEpsilon));
}

TEST(Units, WattsLessRespectsTolerance) {
  EXPECT_TRUE(watts_less(1.0, 2.0));
  EXPECT_FALSE(watts_less(1.0, 1.0 + kWattEpsilon / 2));
  EXPECT_FALSE(watts_less(2.0, 1.0));
}

TEST(Units, ClampWatts) {
  EXPECT_DOUBLE_EQ(clamp_watts(5.0, 1.0, 10.0), 5.0);
  EXPECT_DOUBLE_EQ(clamp_watts(-1.0, 1.0, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(clamp_watts(99.0, 1.0, 10.0), 10.0);
}

TEST(Units, JoulesOverInterval) {
  EXPECT_DOUBLE_EQ(joules_over(100.0, kTicksPerSecond), 100.0);
  EXPECT_DOUBLE_EQ(joules_over(50.0, kTicksPerSecond * 2), 100.0);
  EXPECT_DOUBLE_EQ(joules_over(100.0, 0), 0.0);
}

}  // namespace
}  // namespace penelope::common
