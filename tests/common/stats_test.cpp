#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace penelope::common {
namespace {

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(OnlineStats, MatchesClosedForm) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 7: sum of squared deviations is 32.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStats, MergeEqualsSequential) {
  OnlineStats whole;
  OnlineStats left;
  OnlineStats right;
  for (int i = 0; i < 50; ++i) {
    double x = std::sin(i) * 10 + i;
    whole.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(OnlineStats, MergeWithEmptyIsIdentity) {
  OnlineStats s;
  s.add(1.0);
  s.add(3.0);
  OnlineStats empty;
  s.merge(empty);
  EXPECT_EQ(s.count(), 2u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);

  OnlineStats other;
  other.merge(s);
  EXPECT_EQ(other.count(), 2u);
  EXPECT_DOUBLE_EQ(other.mean(), 2.0);
}

TEST(Geomean, MatchesHandComputation) {
  EXPECT_DOUBLE_EQ(geomean({4.0, 9.0}), 6.0);
  EXPECT_NEAR(geomean({1.0, 10.0, 100.0}), 10.0, 1e-9);
}

TEST(Geomean, EmptyIsZero) { EXPECT_EQ(geomean({}), 0.0); }

TEST(Geomean, SingleValueIsItself) {
  EXPECT_DOUBLE_EQ(geomean({3.7}), 3.7);
}

TEST(Geomean, IsBelowArithmeticMeanForSpreadValues) {
  std::vector<double> v{1.0, 2.0, 8.0, 16.0};
  EXPECT_LT(geomean(v), mean_of(v));
}

TEST(Percentile, InterpolatesBetweenRanks) {
  std::vector<double> v{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 25.0);
}

TEST(Percentile, UnsortedInputHandled) {
  std::vector<double> v{40.0, 10.0, 30.0, 20.0};
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 25.0);
}

TEST(Percentile, EmptyAndSingle) {
  EXPECT_EQ(percentile({}, 50.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 99.0), 7.0);
}

TEST(Median, OddAndEven) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(MeanStddev, BasicValues) {
  std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean_of(v), 5.0);
  EXPECT_NEAR(stddev_of(v), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(stddev_of({1.0}), 0.0);
  EXPECT_EQ(mean_of({}), 0.0);
}

TEST(JainFairness, PerfectlyFairIsOne) {
  EXPECT_DOUBLE_EQ(jain_fairness({5.0, 5.0, 5.0, 5.0}), 1.0);
}

TEST(JainFairness, SingleHoarderApproachesOneOverN) {
  double f = jain_fairness({100.0, 0.0, 0.0, 0.0});
  EXPECT_NEAR(f, 0.25, 1e-12);
}

TEST(JainFairness, EdgeCases) {
  EXPECT_DOUBLE_EQ(jain_fairness({}), 1.0);
  EXPECT_DOUBLE_EQ(jain_fairness({0.0, 0.0}), 1.0);
}

TEST(Summarize, FillsAllFields) {
  Summary s = summarize({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.p25, 2.0);
  EXPECT_DOUBLE_EQ(s.p75, 4.0);
}

TEST(Summarize, EmptyIsAllZero) {
  Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.max, 0.0);
}

}  // namespace
}  // namespace penelope::common
