// Minimal recursive-descent JSON parser for tests: strict enough to
// prove exporter output is well-formed JSON a real tool would load,
// small enough to live next to the tests that use it. Not a library —
// test-only.
#pragma once

#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace penelope::testjson {

struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::map<std::string, Value> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_number() const { return kind == Kind::kNumber; }

  bool has(const std::string& key) const {
    return kind == Kind::kObject && object.count(key) > 0;
  }
  const Value& at(const std::string& key) const {
    static const Value kNullValue;
    auto it = object.find(key);
    return it == object.end() ? kNullValue : it->second;
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  /// Parses the whole input; sets ok=false on any syntax error or
  /// trailing garbage.
  Value parse(bool* ok) {
    Value v = parse_value();
    skip_ws();
    *ok = !failed_ && pos_ == text_.size();
    return v;
  }

 private:
  void fail() { failed_ = true; }
  char peek() { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  char next() { return pos_ < text_.size() ? text_[pos_++] : '\0'; }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool consume(const char* literal) {
    std::size_t len = std::string(literal).size();
    if (text_.compare(pos_, len, literal) != 0) {
      fail();
      return false;
    }
    pos_ += len;
    return true;
  }

  Value parse_value() {
    skip_ws();
    if (failed_) return {};
    char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return parse_string();
      case 't': {
        Value v;
        v.kind = Value::Kind::kBool;
        v.boolean = true;
        consume("true");
        return v;
      }
      case 'f': {
        Value v;
        v.kind = Value::Kind::kBool;
        consume("false");
        return v;
      }
      case 'n':
        consume("null");
        return {};
      default: return parse_number();
    }
  }

  Value parse_object() {
    Value v;
    v.kind = Value::Kind::kObject;
    next();  // '{'
    skip_ws();
    if (peek() == '}') {
      next();
      return v;
    }
    while (!failed_) {
      skip_ws();
      Value key = parse_string();
      skip_ws();
      if (next() != ':') {
        fail();
        break;
      }
      v.object[key.string] = parse_value();
      skip_ws();
      char c = next();
      if (c == '}') break;
      if (c != ',') {
        fail();
        break;
      }
    }
    return v;
  }

  Value parse_array() {
    Value v;
    v.kind = Value::Kind::kArray;
    next();  // '['
    skip_ws();
    if (peek() == ']') {
      next();
      return v;
    }
    while (!failed_) {
      v.array.push_back(parse_value());
      skip_ws();
      char c = next();
      if (c == ']') break;
      if (c != ',') {
        fail();
        break;
      }
    }
    return v;
  }

  Value parse_string() {
    Value v;
    v.kind = Value::Kind::kString;
    if (next() != '"') {
      fail();
      return v;
    }
    while (!failed_) {
      char c = next();
      if (c == '"') break;
      if (c == '\0') {
        fail();
        break;
      }
      if (c == '\\') {
        char esc = next();
        switch (esc) {
          case '"': v.string += '"'; break;
          case '\\': v.string += '\\'; break;
          case '/': v.string += '/'; break;
          case 'b': v.string += '\b'; break;
          case 'f': v.string += '\f'; break;
          case 'n': v.string += '\n'; break;
          case 'r': v.string += '\r'; break;
          case 't': v.string += '\t'; break;
          case 'u': {
            // Tests only emit ASCII escapes; decode the code unit
            // directly.
            std::string hex;
            for (int i = 0; i < 4; ++i) hex += next();
            v.string +=
                static_cast<char>(std::strtol(hex.c_str(), nullptr, 16));
            break;
          }
          default: fail(); break;
        }
        continue;
      }
      v.string += c;
    }
    return v;
  }

  Value parse_number() {
    Value v;
    v.kind = Value::Kind::kNumber;
    std::size_t start = pos_;
    if (peek() == '-') next();
    while (std::isdigit(static_cast<unsigned char>(peek())) ||
           peek() == '.' || peek() == 'e' || peek() == 'E' ||
           peek() == '+' || peek() == '-') {
      next();
    }
    if (pos_ == start) {
      fail();
      return v;
    }
    char* end = nullptr;
    std::string token = text_.substr(start, pos_ - start);
    v.number = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail();
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

inline Value parse_json(const std::string& text, bool* ok) {
  return Parser(text).parse(ok);
}

}  // namespace penelope::testjson
