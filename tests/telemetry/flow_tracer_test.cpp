#include "telemetry/flow_tracer.hpp"

#include <gtest/gtest.h>

namespace penelope::telemetry {
namespace {

TEST(PowerFlowTracer, DisabledByDefaultAndDiscardsEverything) {
  PowerFlowTracer tracer;
  EXPECT_FALSE(tracer.enabled());
  tracer.record(1, 42, FlowHopKind::kSource, 0, -1, 5.0, "push");
  tracer.bind(7, 42);
  EXPECT_EQ(tracer.flow_of(7), 0u);
  EXPECT_TRUE(tracer.snapshot().empty());
  EXPECT_EQ(tracer.recorded(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(PowerFlowTracer, RecordsHopsOldestToNewest) {
  PowerFlowTracer tracer;
  tracer.enable(8);
  tracer.record(10, 1, FlowHopKind::kSource, 3, -1, 12.0, "push");
  tracer.record(20, 1, FlowHopKind::kStep, 100, 3, 12.0, "bank");
  tracer.record(30, 1, FlowHopKind::kSink, 4, 100, 12.0, "apply");
  auto hops = tracer.snapshot();
  ASSERT_EQ(hops.size(), 3u);
  EXPECT_EQ(hops[0].at, 10);
  EXPECT_EQ(hops[0].kind, FlowHopKind::kSource);
  EXPECT_STREQ(hops[0].label, "push");
  EXPECT_EQ(hops[1].node, 100);
  EXPECT_EQ(hops[2].kind, FlowHopKind::kSink);
  EXPECT_DOUBLE_EQ(hops[2].watts, 12.0);
  EXPECT_EQ(tracer.recorded(), 3u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(PowerFlowTracer, RingKeepsMostRecentCapacityHops) {
  PowerFlowTracer tracer;
  tracer.enable(4);
  for (int i = 0; i < 10; ++i) {
    tracer.record(i, static_cast<std::uint64_t>(i), FlowHopKind::kStep,
                  i, -1, 1.0, "hop");
  }
  auto hops = tracer.snapshot();
  ASSERT_EQ(hops.size(), 4u);
  EXPECT_EQ(hops.front().at, 6);  // oldest retained
  EXPECT_EQ(hops.back().at, 9);
  EXPECT_EQ(tracer.recorded(), 10u);
  EXPECT_EQ(tracer.dropped(), 6u);
}

TEST(PowerFlowTracer, BindAndLookup) {
  PowerFlowTracer tracer;
  tracer.enable(8);
  tracer.bind(0xabcULL, 0x123ULL);
  EXPECT_EQ(tracer.flow_of(0xabcULL), 0x123ULL);
  EXPECT_EQ(tracer.flow_of(0xdefULL), 0u);  // unknown txn
  // Re-binding overwrites (latest wins — a txn id is never reused for a
  // different parcel while in flight).
  tracer.bind(0xabcULL, 0x456ULL);
  EXPECT_EQ(tracer.flow_of(0xabcULL), 0x456ULL);
}

TEST(PowerFlowTracer, FlowZeroBindIsANoOp) {
  PowerFlowTracer tracer;
  tracer.enable(8);
  tracer.bind(0xabcULL, 0);
  EXPECT_EQ(tracer.flow_of(0xabcULL), 0u);
}

TEST(PowerFlowTracer, BindingTableIsBounded) {
  PowerFlowTracer tracer;
  tracer.enable(2);  // table bound: 4 x 2 = 8 entries
  for (std::uint64_t txn = 1; txn <= 8; ++txn) tracer.bind(txn, txn);
  EXPECT_EQ(tracer.flow_of(1), 1u);
  // The ninth binding clears the full table first: old in-flight txns
  // resolve to "unknown origin" (0), never an error.
  tracer.bind(9, 9);
  EXPECT_EQ(tracer.flow_of(1), 0u);
  EXPECT_EQ(tracer.flow_of(9), 9u);
}

TEST(PowerFlowTracer, ReenableClearsState) {
  PowerFlowTracer tracer;
  tracer.enable(4);
  tracer.record(1, 1, FlowHopKind::kStep, 0, -1, 1.0, "hop");
  tracer.bind(5, 6);
  tracer.enable(4);
  EXPECT_TRUE(tracer.snapshot().empty());
  EXPECT_EQ(tracer.recorded(), 0u);
  EXPECT_EQ(tracer.flow_of(5), 0u);
}

}  // namespace
}  // namespace penelope::telemetry
