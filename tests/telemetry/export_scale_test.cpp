// Exporters at cluster scale: a synthetic 131072-node federated
// snapshot (the scale study's largest configuration, pools = sqrt(N))
// rendered to Prometheus text and Perfetto JSON. Pins three things:
// the output is valid (parseable, no duplicate series), its size stays
// within linear bounds, and rendering completes in interactive time —
// exporters run at experiment end, but a quadratic regression here
// would turn the 131k run's teardown into minutes.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>

#include "json_mini.hpp"
#include "telemetry/export.hpp"

namespace penelope::telemetry {
namespace {

constexpr int kNodes = 131072;
constexpr int kPools = 362;  // ~sqrt(131072)

double elapsed_s(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       since)
      .count();
}

TEST(ExportScale, PrometheusTextOverFederatedSnapshot) {
  // One cap gauge per node plus one occupancy gauge per pool — the
  // shape a per-node registry dump of the 131k federation would have.
  std::vector<MetricSample> samples;
  samples.reserve(static_cast<std::size_t>(kNodes + kPools) + 1);
  char buf[32];
  for (int i = 0; i < kNodes; ++i) {
    MetricSample s;
    s.name = "pen_node_cap_watts";
    s.kind = MetricKind::kGauge;
    std::snprintf(buf, sizeof buf, "%d", i);
    s.labels = {{"node", buf}};
    s.value = 120.0 + (i % 7);
    samples.push_back(std::move(s));
  }
  for (int p = 0; p < kPools; ++p) {
    MetricSample s;
    s.name = "pen_pool_available_watts";
    s.kind = MetricKind::kGauge;
    std::snprintf(buf, sizeof buf, "%d", p);
    s.labels = {{"pool", buf}};
    s.value = 30.0 + p;
    samples.push_back(std::move(s));
  }
  MetricSample hist;
  hist.name = "pen_turnaround_ms";
  hist.kind = MetricKind::kHistogram;
  hist.histogram = HistogramSnapshot{};
  hist.histogram->upper_bounds = {1.0, 10.0, 100.0};
  hist.histogram->counts = {5, 10, 3};
  hist.histogram->underflow = 1;
  hist.histogram->overflow = 2;
  hist.histogram->total = 21;
  hist.histogram->sum = 250.0;
  samples.push_back(std::move(hist));

  auto start = std::chrono::steady_clock::now();
  std::string text = to_prometheus_text(samples);
  double took = elapsed_s(start);

  // One line per series plus two header lines per metric name, plus the
  // histogram's buckets/sum/count.
  std::size_t lines = 0;
  for (char c : text) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, static_cast<std::size_t>(kNodes + kPools) +
                       /*TYPE headers*/ 3u + /*HELP*/ 0u +
                       /*hist bucket+inf+sum+count*/ 6u);
  EXPECT_NE(text.find("pen_node_cap_watts{node=\"131071\"}"),
            std::string::npos);
  EXPECT_NE(text.find("pen_pool_available_watts{pool=\"0\"}"),
            std::string::npos);
  // Linear size bound: ~48 bytes per series, never megabytes per node.
  EXPECT_LT(text.size(), 16u * 1024 * 1024);
  EXPECT_GT(text.size(), static_cast<std::size_t>(kNodes) * 20);
  EXPECT_LT(took, 10.0) << "prometheus render took " << took << " s";
}

TEST(ExportScale, PerfettoJsonOverFederatedJournalAndFlows) {
  // A large flight-recorder journal (two hops per txn so every txn
  // renders a span) plus a flow-hop ring threading the federation
  // tree, plus per-pool counter tracks.
  constexpr int kTxns = 20000;
  std::vector<TxnRecord> events;
  events.reserve(2 * kTxns);
  for (int i = 0; i < kTxns; ++i) {
    auto txn = static_cast<std::uint64_t>(i + 1);
    std::int32_t node = i % kNodes;
    events.push_back(TxnRecord{static_cast<common::Ticks>(10 * i), txn,
                               TxnEventKind::kRequestSent, node, -1,
                               25.0});
    events.push_back(TxnRecord{static_cast<common::Ticks>(10 * i + 5),
                               txn, TxnEventKind::kApplied, node, -1,
                               25.0});
  }
  std::vector<FlowHop> flows;
  flows.reserve(3 * (kTxns / 4));
  for (int i = 0; i < kTxns / 4; ++i) {
    auto flow = static_cast<std::uint64_t>(i + 1);
    std::int32_t node = i % kNodes;
    std::int32_t pool = kNodes + (i % kPools);
    flows.push_back(FlowHop{static_cast<common::Ticks>(40 * i), flow,
                            FlowHopKind::kSource, node, pool, 12.5,
                            "push"});
    flows.push_back(FlowHop{static_cast<common::Ticks>(40 * i + 10),
                            flow, FlowHopKind::kStep, pool, node, 12.5,
                            "bank"});
    flows.push_back(FlowHop{static_cast<common::Ticks>(40 * i + 20),
                            flow, FlowHopKind::kSink, (node + 1) % kNodes,
                            pool, 12.5, "apply"});
  }
  std::vector<CounterTrack> tracks(4);
  for (int t = 0; t < 4; ++t) {
    tracks[static_cast<std::size_t>(t)].name =
        "pool_" + std::to_string(t) + "_watts";
    for (int i = 0; i < 512; ++i) {
      tracks[static_cast<std::size_t>(t)].points.emplace_back(
          static_cast<common::Ticks>(1000 * i), 30.0 + t + i % 5);
    }
  }

  auto start = std::chrono::steady_clock::now();
  std::string json = to_perfetto_json(events, tracks, flows);
  double took = elapsed_s(start);

  bool ok = false;
  testjson::Value root = testjson::parse_json(json, &ok);
  ASSERT_TRUE(ok) << "perfetto output is not valid JSON";
  ASSERT_TRUE(root.at("traceEvents").is_array());
  const auto& ev = root.at("traceEvents").array;
  // Per txn: one X span. Per flow: 3 X slices + 3 s/t/f events. Plus
  // counters and metadata. Exact census keeps accidental duplication
  // (quadratic re-emission) visible.
  std::size_t spans = 0;
  std::size_t flow_arrows = 0;
  std::size_t counters = 0;
  for (const auto& e : ev) {
    const std::string& ph = e.at("ph").string;
    if (ph == "X") ++spans;
    if (ph == "s" || ph == "t" || ph == "f") ++flow_arrows;
    if (ph == "C") ++counters;
  }
  EXPECT_EQ(spans,
            static_cast<std::size_t>(kTxns) + 3u * (kTxns / 4));
  EXPECT_EQ(flow_arrows, 3u * (kTxns / 4));
  EXPECT_EQ(counters, 4u * 512);
  EXPECT_LT(json.size(), 64u * 1024 * 1024);
  EXPECT_LT(took, 20.0) << "perfetto render took " << took << " s";
}

}  // namespace
}  // namespace penelope::telemetry
