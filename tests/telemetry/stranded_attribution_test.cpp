// The flight recorder's reason to exist: after a chaotic run, every
// stranded watt in the aggregate ledger must be attributable to a
// specific recorded transaction — who minted it, which hop lost it, how
// many watts — and the journal must export to Perfetto-loadable JSON.
#include <gtest/gtest.h>

#include <cmath>

#include "cluster/cluster.hpp"
#include "core/protocol.hpp"
#include "json_mini.hpp"
#include "telemetry/export.hpp"

namespace penelope::cluster {
namespace {

ClusterConfig lossy_config() {
  ClusterConfig cc;
  cc.manager = ManagerKind::kPenelope;
  cc.n_nodes = 12;
  cc.per_socket_cap_watts = 70.0;
  cc.seed = 5;
  cc.max_seconds = 2500.0;
  cc.network.loss_probability = 0.08;
  cc.network.duplicate_probability = 0.05;
  cc.push_gossip = true;  // pushes can strand too; they must be journaled
  cc.audit_interval = common::from_seconds(1.0);
  // Big enough that nothing wraps: attribution needs the whole journal.
  cc.flight_recorder_capacity = 1u << 20;
  cc.trace_interval = common::from_seconds(5.0);
  return cc;
}

workload::NpbConfig npb_config(std::uint64_t seed) {
  workload::NpbConfig cfg;
  cfg.duration_scale = 0.5;
  cfg.demand_jitter_frac = 0.03;
  cfg.seed = seed;
  return cfg;
}

TEST(StrandedAttribution, EveryStrandedWattHasARecordedTransaction) {
  ClusterConfig cc = lossy_config();
  Cluster cluster(cc, make_pair_workloads(workload::NpbApp::kEP,
                                          workload::NpbApp::kDC,
                                          cc.n_nodes, npb_config(cc.seed)));
  RunResult result = cluster.run();
  EXPECT_TRUE(result.all_completed);
  // A lossy fabric must actually strand power or this test tests nothing.
  ASSERT_GT(result.stranded_watts, 0.0);

  const telemetry::FlightRecorder& recorder = cluster.metrics().recorder();
  EXPECT_EQ(recorder.dropped(), 0u) << "ring wrapped; attribution is lossy";

  double journaled_stranded = 0.0;
  for (const telemetry::TxnRecord& record : recorder.snapshot()) {
    if (record.kind != telemetry::TxnEventKind::kStranded) continue;
    // Attribution: a stranded event names its transaction and victim.
    EXPECT_NE(record.txn_id, core::kNoTxn);
    EXPECT_GE(record.node, 0);
    EXPECT_GT(record.watts, 0.0);
    journaled_stranded += record.watts;
    // The minting node is recoverable from the txn id itself.
    EXPECT_GE(core::txn_node(record.txn_id), 0);
    EXPECT_LT(core::txn_node(record.txn_id), cc.n_nodes);
  }
  // The journal and the aggregate ledger agree to float noise: every
  // stranded watt is accounted for by a specific transaction.
  EXPECT_NEAR(journaled_stranded, result.stranded_watts,
              1e-6 * std::max(1.0, result.stranded_watts));
  EXPECT_NEAR(journaled_stranded, cluster.metrics().stranded_watts(),
              1e-6 * std::max(1.0, journaled_stranded));
}

TEST(StrandedAttribution,
     ReclaimedWattsAreAttributableToNodeAndIncarnation) {
  // Under churn the stranded ledger is no longer monotone: dead nodes'
  // watts flow back out through reclamation. The journal must still
  // balance exactly — every stranded watt is a kStranded record, every
  // reclaimed watt a kReclaimed record naming (node, incarnation) in
  // its membership-stream txn id, and the difference is what the
  // aggregate ledger holds at the end.
  ClusterConfig cc = lossy_config();
  cc.seed = 21;
  cc.membership_enabled = true;
  cc.churn_enabled = true;
  cc.churn_mtbf_seconds = 40.0;
  cc.churn_mttr_seconds = 4.0;
  Cluster cluster(cc, make_pair_workloads(workload::NpbApp::kEP,
                                          workload::NpbApp::kDC,
                                          cc.n_nodes, npb_config(cc.seed)));
  RunResult result = cluster.run();
  EXPECT_TRUE(result.all_completed);
  // Churn must actually reclaim or this test tests nothing.
  ASSERT_GT(result.reclaims, 0u);
  ASSERT_GT(result.watts_reclaimed, 0.0);

  const telemetry::FlightRecorder& recorder = cluster.metrics().recorder();
  ASSERT_EQ(recorder.dropped(), 0u) << "ring wrapped; attribution is lossy";

  double journaled_stranded = 0.0;
  double journaled_reclaimed = 0.0;
  for (const telemetry::TxnRecord& record : recorder.snapshot()) {
    if (record.kind == telemetry::TxnEventKind::kStranded) {
      journaled_stranded += record.watts;
    } else if (record.kind == telemetry::TxnEventKind::kReclaimed) {
      EXPECT_GT(record.watts, 0.0);
      journaled_reclaimed += record.watts;
      // Attribution: the id is on the membership stream and decodes to
      // the dead node and the incarnation whose watts these were.
      EXPECT_EQ(core::txn_stream(record.txn_id), 2u);
      EXPECT_GE(core::txn_node(record.txn_id), 0);
      EXPECT_LT(core::txn_node(record.txn_id), cc.n_nodes);
      EXPECT_GE(core::txn_seq(record.txn_id), 1u);
    }
  }
  double tolerance = 1e-6 * std::max(1.0, journaled_stranded);
  // Journal vs counters: reclaimed watts agree...
  EXPECT_NEAR(journaled_reclaimed, result.watts_reclaimed, tolerance);
  // ...and stranded-minus-reclaimed is exactly the final ledger.
  EXPECT_NEAR(journaled_stranded - journaled_reclaimed,
              result.stranded_watts, tolerance);
  EXPECT_NEAR(journaled_stranded - journaled_reclaimed,
              cluster.metrics().stranded_watts(), tolerance);
}

TEST(StrandedAttribution, ChaosJournalExportsPerfettoLoadableJson) {
  ClusterConfig cc = lossy_config();
  Cluster cluster(cc, make_pair_workloads(workload::NpbApp::kEP,
                                          workload::NpbApp::kDC,
                                          cc.n_nodes, npb_config(9)));
  RunResult result = cluster.run();
  EXPECT_TRUE(result.all_completed);

  const telemetry::FlightRecorder& recorder = cluster.metrics().recorder();
  ASSERT_GT(recorder.recorded(), 0u);
  std::string json = telemetry::to_perfetto_json(
      recorder.snapshot(), cluster.trace().counter_tracks());

  bool ok = false;
  testjson::Value root = testjson::parse_json(json, &ok);
  ASSERT_TRUE(ok) << "perfetto export is not valid JSON";
  ASSERT_TRUE(root.at("traceEvents").is_array());

  int spans = 0;
  int stranded_instants = 0;
  int counter_events = 0;
  for (const auto& event : root.at("traceEvents").array) {
    ASSERT_TRUE(event.is_object());
    const std::string& ph = event.at("ph").string;
    if (ph == "X") {
      ++spans;
      EXPECT_TRUE(event.at("args").at("hops").is_array());
      EXPECT_GE(event.at("args").at("hops").array.size(), 2u);
      EXPECT_GE(event.at("dur").number, 0.0);
    } else if (ph == "i") {
      if (event.at("name").string == "stranded") ++stranded_instants;
    } else if (ph == "C") {
      ++counter_events;
    }
  }
  // A lossy run produces spans, visible strand markers, and cap/pool
  // counter tracks from the trajectory trace.
  EXPECT_GT(spans, 0);
  EXPECT_GT(stranded_instants, 0);
  EXPECT_GT(counter_events, 0);

  // And the same run's metrics render as Prometheus text (smoke: the
  // dedicated round-trip tests live in export_test.cpp).
  std::string text = telemetry::to_prometheus_text(
      cluster.metrics().registry().snapshot());
  EXPECT_NE(text.find("penelope_stranded_watts"), std::string::npos);
  EXPECT_NE(text.find("# TYPE penelope_turnaround_ms histogram"),
            std::string::npos);
}

}  // namespace
}  // namespace penelope::cluster
