#include "telemetry/time_series.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "json_mini.hpp"

namespace penelope::telemetry {
namespace {

constexpr common::Ticks kWindow = 1000;

TEST(TimeSeries, AggregatesWithinOneWindow) {
  TimeSeries s("x", kWindow, 8);
  s.sample(10, 4.0);
  s.sample(500, 2.0);
  s.sample(999, 6.0);
  ASSERT_EQ(s.windows().size(), 1u);
  const SeriesWindow& w = s.windows().front();
  EXPECT_EQ(w.start, 0);
  EXPECT_DOUBLE_EQ(w.sum, 12.0);
  EXPECT_DOUBLE_EQ(w.min, 2.0);
  EXPECT_DOUBLE_EQ(w.max, 6.0);
  EXPECT_DOUBLE_EQ(w.last, 6.0);
  EXPECT_EQ(w.count, 3u);
  EXPECT_DOUBLE_EQ(w.avg(), 4.0);
  EXPECT_EQ(s.total_samples(), 3u);
}

TEST(TimeSeries, NewWindowStartsAtAlignedBoundary) {
  TimeSeries s("x", kWindow, 8);
  s.sample(100, 1.0);
  s.sample(2500, 3.0);  // skips window [1000, 2000)
  ASSERT_EQ(s.windows().size(), 2u);
  EXPECT_EQ(s.windows()[0].start, 0);
  EXPECT_EQ(s.windows()[1].start, 2000);
  EXPECT_DOUBLE_EQ(s.windows()[1].last, 3.0);
}

TEST(TimeSeries, DownsampleDoublesWidthAndMergesAdjacent) {
  TimeSeries s("x", kWindow, 4);
  for (int i = 0; i < 4; ++i) {
    s.sample(static_cast<common::Ticks>(i) * kWindow,
             static_cast<double>(i + 1));
  }
  ASSERT_EQ(s.windows().size(), 4u);
  EXPECT_EQ(s.window_width(), kWindow);

  // A fifth distinct window triggers the merge: [0,1],[2,3] fold and
  // the new sample lands in the (re-aligned) window at 4000.
  s.sample(4 * kWindow, 5.0);
  EXPECT_EQ(s.window_width(), 2 * kWindow);
  ASSERT_EQ(s.windows().size(), 3u);
  EXPECT_EQ(s.windows()[0].start, 0);
  EXPECT_DOUBLE_EQ(s.windows()[0].sum, 1.0 + 2.0);
  EXPECT_EQ(s.windows()[0].count, 2u);
  EXPECT_DOUBLE_EQ(s.windows()[0].min, 1.0);
  EXPECT_DOUBLE_EQ(s.windows()[0].max, 2.0);
  EXPECT_DOUBLE_EQ(s.windows()[0].last, 2.0);
  EXPECT_EQ(s.windows()[1].start, 2000);
  EXPECT_DOUBLE_EQ(s.windows()[1].sum, 3.0 + 4.0);
  EXPECT_EQ(s.windows()[2].start, 4000);
  EXPECT_DOUBLE_EQ(s.windows()[2].last, 5.0);
  EXPECT_EQ(s.total_samples(), 5u);
}

TEST(TimeSeries, LongRunStaysBoundedAndConservesMass) {
  constexpr std::size_t kCapacity = 8;
  TimeSeries s("x", kWindow, kCapacity);
  double fed = 0.0;
  for (int i = 0; i < 100000; ++i) {
    double v = static_cast<double>(i % 17);
    s.sample(static_cast<common::Ticks>(i) * kWindow, v);
    fed += v;
  }
  EXPECT_LE(s.windows().size(), kCapacity);
  EXPECT_EQ(s.total_samples(), 100000u);
  // Width only ever doubles.
  common::Ticks width = s.window_width();
  EXPECT_GT(width, kWindow);
  while (width > kWindow) {
    EXPECT_EQ(width % 2, 0);
    width /= 2;
  }
  EXPECT_EQ(width, kWindow);
  // Downsampling merges, never drops: total sum and count survive.
  double sum = 0.0;
  std::uint64_t count = 0;
  for (const SeriesWindow& w : s.windows()) {
    sum += w.sum;
    count += w.count;
  }
  EXPECT_EQ(count, 100000u);
  EXPECT_NEAR(sum, fed, 1e-6 * fed);
}

TEST(TimeSeries, CapacityFloorIsTwo) {
  TimeSeries s("x", kWindow, 0);
  EXPECT_EQ(s.capacity(), 2u);
}

TEST(TimeSeriesSet, UnconfiguredOpensNothing) {
  TimeSeriesSet set;
  EXPECT_FALSE(set.enabled());
  EXPECT_EQ(set.open("a"), nullptr);
  EXPECT_TRUE(set.series().empty());
  EXPECT_EQ(set.to_csv(), "series,t_s,window_s,count,avg,min,max,last\n");
}

TEST(TimeSeriesSet, OpenIsFindOrCreateWithStablePointers) {
  TimeSeriesSet set;
  set.configure(kWindow, 16);
  TimeSeries* a = set.open("a");
  TimeSeries* b = set.open("b");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  EXPECT_EQ(set.open("a"), a);  // dedup, same pointer
  EXPECT_EQ(set.find("a"), a);
  EXPECT_EQ(set.find("missing"), nullptr);
  ASSERT_EQ(set.series().size(), 2u);
  EXPECT_EQ(set.series()[0]->name(), "a");  // creation order
  EXPECT_EQ(set.series()[1]->name(), "b");
}

TEST(TimeSeriesSet, CsvHasHeaderAndOneRowPerWindow) {
  TimeSeriesSet set;
  set.configure(common::kTicksPerSecond, 16);
  TimeSeries* a = set.open("watts");
  a->sample(0, 1.5);
  a->sample(2 * common::kTicksPerSecond, 2.5);
  std::string csv = set.to_csv();
  std::istringstream in(csv);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "series,t_s,window_s,count,avg,min,max,last");
  int rows = 0;
  while (std::getline(in, line)) {
    EXPECT_EQ(line.rfind("watts,", 0), 0u) << line;
    ++rows;
  }
  EXPECT_EQ(rows, 2);
}

TEST(TimeSeriesSet, JsonlLinesAreValidJson) {
  TimeSeriesSet set;
  set.configure(common::kTicksPerSecond, 16);
  TimeSeries* a = set.open("pool_0_watts");
  TimeSeries* b = set.open("jain_index");
  for (int i = 0; i < 5; ++i) {
    a->sample(static_cast<common::Ticks>(i) * common::kTicksPerSecond,
              static_cast<double>(i));
    b->sample(static_cast<common::Ticks>(i) * common::kTicksPerSecond,
              0.99);
  }
  std::istringstream in(set.to_jsonl());
  std::string line;
  int rows = 0;
  while (std::getline(in, line)) {
    bool ok = false;
    testjson::Value v = testjson::parse_json(line, &ok);
    ASSERT_TRUE(ok) << line;
    EXPECT_TRUE(v.at("series").is_string());
    EXPECT_TRUE(v.at("avg").is_number());
    EXPECT_TRUE(v.at("count").is_number());
    ++rows;
  }
  EXPECT_EQ(rows, 10);
}

}  // namespace
}  // namespace penelope::telemetry
