#include "telemetry/export.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "json_mini.hpp"
#include "telemetry/registry.hpp"

namespace penelope::telemetry {
namespace {

/// A parsed Prometheus sample line: `name{labels} value`.
struct PromLine {
  std::string series;  // name + label block, the dedup identity
  std::string name;
  double value = 0.0;
};

/// Parse text exposition the way a scraper would: `# HELP`/`# TYPE`
/// comments tracked per name, every other non-empty line split into
/// series and value. Fails the test on malformed lines.
struct PromParse {
  std::vector<PromLine> lines;
  std::map<std::string, std::string> types;  // name -> counter|gauge|...
};

PromParse parse_prometheus(const std::string& text) {
  PromParse parsed;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream rest(line.substr(7));
      std::string name;
      std::string type;
      rest >> name >> type;
      EXPECT_FALSE(name.empty());
      EXPECT_FALSE(type.empty());
      // One TYPE comment per name, ever.
      EXPECT_EQ(parsed.types.count(name), 0u)
          << "duplicate # TYPE for " << name;
      parsed.types[name] = type;
      continue;
    }
    if (line[0] == '#') continue;  // HELP
    auto space = line.rfind(' ');
    if (space == std::string::npos) {
      ADD_FAILURE() << "malformed line: " << line;
      continue;
    }
    PromLine sample;
    sample.series = line.substr(0, space);
    auto brace = sample.series.find('{');
    sample.name = brace == std::string::npos ? sample.series
                                             : sample.series.substr(0, brace);
    char* end = nullptr;
    std::string value = line.substr(space + 1);
    sample.value = std::strtod(value.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      ADD_FAILURE() << "bad value in: " << line;
      continue;
    }
    parsed.lines.push_back(sample);
  }
  return parsed;
}

TEST(PrometheusExport, CounterAndGaugeRoundTrip) {
  MetricsRegistry registry;
  Counter c = registry.counter("requests_total", {{"node", "3"}},
                               "requests sent");
  Gauge g = registry.gauge("pool_watts", {}, "pool level");
  c.inc(42);
  g.set(67.5);

  PromParse parsed = parse_prometheus(
      to_prometheus_text(registry.snapshot()));
  ASSERT_EQ(parsed.lines.size(), 2u);
  EXPECT_EQ(parsed.types.at("requests_total"), "counter");
  EXPECT_EQ(parsed.types.at("pool_watts"), "gauge");

  std::map<std::string, double> by_series;
  for (const auto& line : parsed.lines) {
    by_series[line.series] = line.value;
  }
  EXPECT_DOUBLE_EQ(by_series.at("requests_total{node=\"3\"}"), 42.0);
  EXPECT_DOUBLE_EQ(by_series.at("pool_watts"), 67.5);
}

TEST(PrometheusExport, NoDuplicateSeriesAfterMerge) {
  // Two registries with overlapping names (the UdpCluster merge path):
  // identical series collapse to one line, label-distinct ones survive.
  MetricsRegistry a;
  MetricsRegistry b;
  a.counter("udp_grants_total", {{"node", "0"}}).inc(1);
  b.counter("udp_grants_total", {{"node", "1"}}).inc(2);
  a.counter("udp_shared_total").inc(5);
  b.counter("udp_shared_total").inc(7);

  std::vector<MetricSample> merged = a.snapshot();
  std::vector<MetricSample> other = b.snapshot();
  merged.insert(merged.end(), other.begin(), other.end());

  PromParse parsed = parse_prometheus(to_prometheus_text(merged));
  std::set<std::string> series;
  for (const auto& line : parsed.lines) {
    EXPECT_TRUE(series.insert(line.series).second)
        << "duplicate series: " << line.series;
  }
  EXPECT_EQ(series.count("udp_grants_total{node=\"0\"}"), 1u);
  EXPECT_EQ(series.count("udp_grants_total{node=\"1\"}"), 1u);
  EXPECT_EQ(series.count("udp_shared_total"), 1u);
}

TEST(PrometheusExport, HistogramCumulativeAndConsistent) {
  MetricsRegistry registry;
  Histogram h = registry.histogram("turnaround_ms", 0.0, 100.0, 4, {},
                                   "turnaround");
  h.observe(-5.0);   // underflow: folded into every bucket
  h.observe(10.0);   // bucket le=25
  h.observe(60.0);   // bucket le=75
  h.observe(500.0);  // overflow: only +Inf

  std::string text = to_prometheus_text(registry.snapshot());
  PromParse parsed = parse_prometheus(text);
  EXPECT_EQ(parsed.types.at("turnaround_ms"), "histogram");

  std::vector<double> buckets;
  double count = -1.0;
  double sum = 0.0;
  for (const auto& line : parsed.lines) {
    if (line.name == "turnaround_ms_bucket") buckets.push_back(line.value);
    if (line.name == "turnaround_ms_count") count = line.value;
    if (line.name == "turnaround_ms_sum") sum = line.value;
  }
  ASSERT_EQ(buckets.size(), 5u);  // 4 bounds + +Inf
  // Cumulative and monotone, underflow counted from the first bucket.
  EXPECT_DOUBLE_EQ(buckets[0], 2.0);  // underflow + 10.0
  for (std::size_t i = 1; i < buckets.size(); ++i) {
    EXPECT_GE(buckets[i], buckets[i - 1]);
  }
  // +Inf bucket equals _count equals total observations.
  EXPECT_DOUBLE_EQ(buckets.back(), 4.0);
  EXPECT_DOUBLE_EQ(count, 4.0);
  EXPECT_NEAR(sum, 565.0, 1e-9);
}

TEST(PrometheusExport, EscapesLabelValues) {
  MetricsRegistry registry;
  registry.counter("weird_total", {{"path", "a\"b\\c\nd"}}).inc();
  std::string text = to_prometheus_text(registry.snapshot());
  EXPECT_NE(text.find("path=\"a\\\"b\\\\c\\nd\""), std::string::npos);
}

TEST(PerfettoExport, EmitsValidJsonWithSpansAndInstants) {
  std::vector<TxnRecord> events;
  std::uint64_t txn = 0x1234;
  events.push_back({100, txn, TxnEventKind::kRequestSent, 0, 1, 5.0});
  events.push_back({180, txn, TxnEventKind::kRequestServed, 1, 0, 4.0});
  events.push_back({250, txn, TxnEventKind::kGrantReceived, 0, 1, 4.0});
  events.push_back({400, 0x9999, TxnEventKind::kStranded, 2, 0, 3.5});

  std::vector<CounterTrack> tracks;
  tracks.push_back({"node 0 cap_w", {{0, 120.0}, {1000, 140.0}}});

  std::string json = to_perfetto_json(events, tracks);
  bool ok = false;
  testjson::Value root = testjson::parse_json(json, &ok);
  ASSERT_TRUE(ok) << "not valid JSON:\n" << json;
  ASSERT_TRUE(root.is_object());
  ASSERT_TRUE(root.at("traceEvents").is_array());
  const auto& trace_events = root.at("traceEvents").array;

  int spans = 0;
  int instants = 0;
  int counters = 0;
  for (const auto& event : trace_events) {
    ASSERT_TRUE(event.is_object());
    ASSERT_TRUE(event.at("ph").is_string());
    const std::string& ph = event.at("ph").string;
    if (ph == "X") {
      ++spans;
      // The span covers first-to-last hop on the minting node's track.
      EXPECT_DOUBLE_EQ(event.at("ts").number, 100.0);
      EXPECT_DOUBLE_EQ(event.at("dur").number, 150.0);
      EXPECT_DOUBLE_EQ(event.at("tid").number, 0.0);
      const auto& hops = event.at("args").at("hops");
      ASSERT_TRUE(hops.is_array());
      EXPECT_EQ(hops.array.size(), 3u);
      EXPECT_EQ(hops.array[0].at("event").string, "request_sent");
      EXPECT_EQ(hops.array[2].at("event").string, "grant_received");
    } else if (ph == "i") {
      ++instants;
      EXPECT_EQ(event.at("name").string, "stranded");
      EXPECT_DOUBLE_EQ(event.at("args").at("watts").number, 3.5);
    } else if (ph == "C") {
      ++counters;
      EXPECT_EQ(event.at("name").string, "node 0 cap_w");
    }
  }
  EXPECT_EQ(spans, 1);
  EXPECT_EQ(instants, 1);
  EXPECT_EQ(counters, 2);
}

TEST(PerfettoExport, EmptyJournalStillParses) {
  bool ok = false;
  testjson::Value root =
      testjson::parse_json(to_perfetto_json({}), &ok);
  ASSERT_TRUE(ok);
  EXPECT_TRUE(root.at("traceEvents").is_array());
}

TEST(PerfettoExport, SingleRecordTxnGetsNoSpanButKeepsMarkers) {
  // One lone timeout record: no "X" span (nothing to measure), but a
  // stranded marker must never be dropped.
  std::vector<TxnRecord> events;
  events.push_back({50, 7, TxnEventKind::kStranded, 1, 0, 2.0});
  bool ok = false;
  testjson::Value root =
      testjson::parse_json(to_perfetto_json(events), &ok);
  ASSERT_TRUE(ok);
  int spans = 0;
  int instants = 0;
  for (const auto& event : root.at("traceEvents").array) {
    if (event.at("ph").string == "X") ++spans;
    if (event.at("ph").string == "i") ++instants;
  }
  EXPECT_EQ(spans, 0);
  EXPECT_EQ(instants, 1);
}

}  // namespace
}  // namespace penelope::telemetry
