#include "telemetry/health.hpp"

#include <gtest/gtest.h>

namespace penelope::telemetry {
namespace {

constexpr common::Ticks kSecond = common::kTicksPerSecond;

HealthSample sample_of(common::Ticks at, std::vector<double> delivered) {
  HealthSample s;
  s.at = at;
  for (double d : delivered) {
    ++s.active_nodes;
    s.delivered_sum += d;
    s.delivered_sq_sum += d * d;
    if (s.active_nodes == 1) {
      s.delivered_min = s.delivered_max = d;
    } else {
      s.delivered_min = std::min(s.delivered_min, d);
      s.delivered_max = std::max(s.delivered_max, d);
    }
  }
  return s;
}

TEST(HealthMonitor, JainIndexEqualSharesIsOne) {
  EXPECT_DOUBLE_EQ(HealthMonitor::jain_index(4, 4 * 50.0, 4 * 50.0 * 50.0),
                   1.0);
}

TEST(HealthMonitor, JainIndexSingleHogIsOneOverN) {
  // One node holds everything: J = (x)^2 / (n * x^2) = 1/n.
  EXPECT_DOUBLE_EQ(HealthMonitor::jain_index(5, 100.0, 100.0 * 100.0),
                   1.0 / 5.0);
}

TEST(HealthMonitor, JainIndexDegenerateCasesAreConverged) {
  EXPECT_DOUBLE_EQ(HealthMonitor::jain_index(0, 0.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(HealthMonitor::jain_index(3, 0.0, 0.0), 1.0);
}

TEST(HealthMonitor, ObserveDerivesSpreadAndRates) {
  HealthMonitor mon;
  mon.configure(0.01);
  HealthSample s1 = sample_of(kSecond, {40.0, 60.0});
  s1.stranded_watts = 10.0;
  s1.suspicions = 2;
  mon.observe(s1);
  HealthSample s2 = sample_of(3 * kSecond, {50.0, 50.0});
  s2.stranded_watts = 16.0;
  s2.suspicions = 6;
  mon.observe(s2);

  ASSERT_EQ(mon.probes().size(), 2u);
  const HealthProbe& p1 = mon.probes()[0];
  EXPECT_DOUBLE_EQ(p1.spread_watts, 20.0);
  EXPECT_DOUBLE_EQ(p1.stranded_rate_wps, 0.0);  // no previous probe
  const HealthProbe& p2 = mon.probes()[1];
  EXPECT_DOUBLE_EQ(p2.jain, 1.0);
  EXPECT_DOUBLE_EQ(p2.spread_watts, 0.0);
  EXPECT_DOUBLE_EQ(p2.stranded_rate_wps, 3.0);  // 6 W over 2 s
  EXPECT_DOUBLE_EQ(p2.suspicion_rate_hz, 2.0);  // 4 over 2 s
}

TEST(HealthMonitor, ConvergenceImmediateWhenNeverDipped) {
  HealthMonitor mon;
  mon.configure(0.01);
  for (int i = 1; i <= 5; ++i) {
    mon.observe(sample_of(i * kSecond, {50.0, 50.0}));
  }
  auto conv = mon.convergence_seconds(2 * kSecond);
  ASSERT_TRUE(conv.has_value());
  EXPECT_DOUBLE_EQ(*conv, 0.0);
}

TEST(HealthMonitor, ConvergenceMeasuredFromDisturbanceToRecovery) {
  HealthMonitor mon;
  mon.configure(0.01);
  mon.observe(sample_of(1 * kSecond, {50.0, 50.0}));   // converged
  mon.observe(sample_of(2 * kSecond, {90.0, 10.0}));   // dip
  mon.observe(sample_of(3 * kSecond, {70.0, 30.0}));   // still low
  mon.observe(sample_of(4 * kSecond, {51.0, 49.0}));   // recovered
  mon.observe(sample_of(5 * kSecond, {50.0, 50.0}));
  auto conv = mon.convergence_seconds(2 * kSecond);
  ASSERT_TRUE(conv.has_value());
  EXPECT_DOUBLE_EQ(*conv, 2.0);  // 4 s probe minus 2 s disturbance
  EXPECT_LT(mon.min_jain_since(2 * kSecond), 0.7);
  EXPECT_DOUBLE_EQ(mon.min_jain_since(5 * kSecond), 1.0);
}

TEST(HealthMonitor, DippedAndNeverRecoveredIsNullopt) {
  HealthMonitor mon;
  mon.configure(0.01);
  mon.observe(sample_of(1 * kSecond, {90.0, 10.0}));
  mon.observe(sample_of(2 * kSecond, {80.0, 20.0}));
  EXPECT_FALSE(mon.convergence_seconds(0).has_value());
}

TEST(HealthMonitor, NoProbesAfterDisturbanceIsNullopt) {
  HealthMonitor mon;
  mon.configure(0.01);
  mon.observe(sample_of(1 * kSecond, {50.0, 50.0}));
  EXPECT_FALSE(mon.convergence_seconds(10 * kSecond).has_value());
}

TEST(HealthMonitor, CsvHasHeaderAndOneRowPerProbe) {
  HealthMonitor mon;
  mon.configure(0.05);
  mon.observe(sample_of(kSecond, {50.0, 50.0}));
  mon.observe(sample_of(2 * kSecond, {60.0, 40.0}));
  std::string csv = mon.to_csv();
  EXPECT_EQ(csv.rfind("t_s,active,jain,spread_w,delivered_w,stranded_wps,"
                      "suspicions_hz,conservation_drift,energy_j\n",
                      0),
            0u);
  int newlines = 0;
  for (char c : csv) {
    if (c == '\n') ++newlines;
  }
  EXPECT_EQ(newlines, 3);  // header + 2 probes
}

}  // namespace
}  // namespace penelope::telemetry
