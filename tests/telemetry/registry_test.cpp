#include "telemetry/registry.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace penelope::telemetry {
namespace {

TEST(Registry, DefaultHandlesAreNoOpSinks) {
  Counter c;
  Gauge g;
  Histogram h;
  c.inc();
  g.set(5.0);
  g.add(1.0);
  h.observe(3.0);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
}

TEST(Registry, CounterAccumulates) {
  MetricsRegistry registry;
  Counter c = registry.counter("events_total", {}, "test counter");
  c.inc();
  c.inc(4);
  EXPECT_EQ(c.value(), 5u);
}

TEST(Registry, ReRegistrationReturnsSameCell) {
  MetricsRegistry registry;
  Counter a = registry.counter("shared_total");
  Counter b = registry.counter("shared_total");
  a.inc(3);
  b.inc(2);
  EXPECT_EQ(a.value(), 5u);
  EXPECT_EQ(b.value(), 5u);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(Registry, LabelsDistinguishSeries) {
  MetricsRegistry registry;
  Counter a = registry.counter("grants_total", {{"node", "0"}});
  Counter b = registry.counter("grants_total", {{"node", "1"}});
  a.inc(7);
  b.inc(1);
  EXPECT_EQ(a.value(), 7u);
  EXPECT_EQ(b.value(), 1u);
  EXPECT_EQ(registry.size(), 2u);
}

TEST(Registry, GaugeSetAndAdd) {
  MetricsRegistry registry;
  Gauge g = registry.gauge("pool_watts");
  g.set(80.0);
  g.add(-12.5);
  EXPECT_DOUBLE_EQ(g.value(), 67.5);
}

TEST(Registry, HistogramBucketsAndOverflow) {
  MetricsRegistry registry;
  Histogram h = registry.histogram("latency_ms", 0.0, 10.0, 5);
  h.observe(-1.0);   // underflow
  h.observe(0.5);    // bucket 0
  h.observe(9.5);    // bucket 4
  h.observe(100.0);  // overflow
  EXPECT_EQ(h.count(), 4u);

  std::vector<MetricSample> samples = registry.snapshot();
  ASSERT_EQ(samples.size(), 1u);
  ASSERT_TRUE(samples[0].histogram.has_value());
  const HistogramSnapshot& snap = *samples[0].histogram;
  ASSERT_EQ(snap.counts.size(), 5u);
  EXPECT_EQ(snap.underflow, 1u);
  EXPECT_EQ(snap.overflow, 1u);
  EXPECT_EQ(snap.total, 4u);
  EXPECT_EQ(snap.counts[0], 1u);
  EXPECT_EQ(snap.counts[4], 1u);
  EXPECT_DOUBLE_EQ(snap.upper_bounds.back(), 10.0);
  EXPECT_NEAR(snap.sum, 109.0, 1e-9);
}

TEST(Registry, SnapshotSortedByNameThenLabels) {
  MetricsRegistry registry;
  registry.counter("zeta_total");
  registry.counter("alpha_total", {{"node", "1"}});
  registry.counter("alpha_total", {{"node", "0"}});
  std::vector<MetricSample> samples = registry.snapshot();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].name, "alpha_total");
  EXPECT_EQ(samples[0].labels[0].second, "0");
  EXPECT_EQ(samples[1].name, "alpha_total");
  EXPECT_EQ(samples[1].labels[0].second, "1");
  EXPECT_EQ(samples[2].name, "zeta_total");
}

TEST(Registry, ShardedCounterExactUnderContention) {
  MetricsRegistry registry(Concurrency::kSharded);
  Counter c = registry.counter("contended_total");
  constexpr int kThreads = 8;
  constexpr int kIncrements = 50'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kIncrements; ++i) c.inc();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(c.value(),
            static_cast<std::uint64_t>(kThreads) * kIncrements);
}

TEST(Registry, ShardedHistogramExactTotalUnderContention) {
  MetricsRegistry registry(Concurrency::kSharded);
  Histogram h = registry.histogram("contended_hist", 0.0, 1.0, 4);
  constexpr int kThreads = 4;
  constexpr int kObservations = 20'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kObservations; ++i) {
        h.observe(static_cast<double>(t) / kThreads);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(h.count(),
            static_cast<std::uint64_t>(kThreads) * kObservations);
}

}  // namespace
}  // namespace penelope::telemetry
