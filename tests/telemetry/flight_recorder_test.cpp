#include "telemetry/flight_recorder.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace penelope::telemetry {
namespace {

TEST(FlightRecorder, DisabledByDefaultAndRecordsNothing) {
  FlightRecorder recorder;
  EXPECT_FALSE(recorder.enabled());
  recorder.record(10, 42, TxnEventKind::kRequestSent, 0, 1, 5.0);
  EXPECT_TRUE(recorder.snapshot().empty());
  EXPECT_EQ(recorder.recorded(), 0u);
  EXPECT_EQ(recorder.dropped(), 0u);
}

TEST(FlightRecorder, RecordsInOrder) {
  FlightRecorder recorder;
  recorder.enable(8);
  recorder.record(10, 1, TxnEventKind::kRequestSent, 0, 1, 5.0);
  recorder.record(20, 1, TxnEventKind::kRequestServed, 1, 0, 4.0);
  recorder.record(30, 1, TxnEventKind::kGrantReceived, 0, 1, 4.0);

  std::vector<TxnRecord> events = recorder.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, TxnEventKind::kRequestSent);
  EXPECT_EQ(events[1].kind, TxnEventKind::kRequestServed);
  EXPECT_EQ(events[2].kind, TxnEventKind::kGrantReceived);
  EXPECT_EQ(events[0].at, 10);
  EXPECT_EQ(events[2].watts, 4.0);
  EXPECT_EQ(recorder.recorded(), 3u);
  EXPECT_EQ(recorder.dropped(), 0u);
}

TEST(FlightRecorder, RingWrapKeepsNewestAndCountsDropped) {
  FlightRecorder recorder;
  recorder.enable(4);
  for (int i = 0; i < 10; ++i) {
    recorder.record(i, static_cast<std::uint64_t>(i),
                    TxnEventKind::kApplied, 0, -1, 1.0);
  }
  std::vector<TxnRecord> events = recorder.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-to-newest: the last four records survive.
  EXPECT_EQ(events[0].at, 6);
  EXPECT_EQ(events[3].at, 9);
  EXPECT_EQ(recorder.recorded(), 10u);
  EXPECT_EQ(recorder.dropped(), 6u);
}

TEST(FlightRecorder, ForTxnFiltersJournal) {
  FlightRecorder recorder;
  recorder.enable(16);
  recorder.record(1, 7, TxnEventKind::kRequestSent, 0, 1, 5.0);
  recorder.record(2, 9, TxnEventKind::kRequestSent, 2, 3, 5.0);
  recorder.record(3, 7, TxnEventKind::kTimeout, 0, 1, 0.0);

  std::vector<TxnRecord> events = recorder.for_txn(7);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, TxnEventKind::kRequestSent);
  EXPECT_EQ(events[1].kind, TxnEventKind::kTimeout);
  EXPECT_TRUE(recorder.for_txn(12345).empty());
}

TEST(FlightRecorder, ReEnableClearsJournal) {
  FlightRecorder recorder;
  recorder.enable(4);
  recorder.record(1, 1, TxnEventKind::kApplied, 0, -1, 1.0);
  recorder.enable(4);
  EXPECT_TRUE(recorder.snapshot().empty());
  recorder.enable(0);
  EXPECT_FALSE(recorder.enabled());
  recorder.record(2, 2, TxnEventKind::kApplied, 0, -1, 1.0);
  EXPECT_TRUE(recorder.snapshot().empty());
}

TEST(FlightRecorder, EventNamesAreStable) {
  EXPECT_STREQ(txn_event_name(TxnEventKind::kRequestSent),
               "request_sent");
  EXPECT_STREQ(txn_event_name(TxnEventKind::kStranded), "stranded");
  EXPECT_STREQ(txn_event_name(TxnEventKind::kDuplicateDropped),
               "duplicate_dropped");
}

TEST(FlightRecorder, ConcurrentRecordsAllLand) {
  FlightRecorder recorder;
  constexpr int kThreads = 4;
  constexpr int kEvents = 5'000;
  recorder.enable(kThreads * kEvents);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, t] {
      for (int i = 0; i < kEvents; ++i) {
        recorder.record(i, static_cast<std::uint64_t>(t + 1),
                        TxnEventKind::kBanked, t, -1, 0.5);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(recorder.recorded(),
            static_cast<std::uint64_t>(kThreads) * kEvents);
  EXPECT_EQ(recorder.dropped(), 0u);
  EXPECT_EQ(recorder.snapshot().size(),
            static_cast<std::size_t>(kThreads) * kEvents);
}

}  // namespace
}  // namespace penelope::telemetry
