#include "central/server.hpp"

#include <gtest/gtest.h>

namespace penelope::central {
namespace {

TEST(ServerLogic, StartsEmpty) {
  ServerLogic server;
  EXPECT_DOUBLE_EQ(server.cache_watts(), 0.0);
  EXPECT_DOUBLE_EQ(server.unmet_urgent_watts(), 0.0);
}

TEST(ServerLogic, DonationsAccumulate) {
  ServerLogic server;
  server.handle_donation(CentralDonation{25.0});
  server.handle_donation(CentralDonation{10.0});
  EXPECT_DOUBLE_EQ(server.cache_watts(), 35.0);
  EXPECT_EQ(server.stats().donations, 2u);
  EXPECT_DOUBLE_EQ(server.stats().watts_collected, 35.0);
}

TEST(ServerLogic, NonUrgentGrantIsPercentageClamped) {
  ServerLogic server;
  server.handle_donation(CentralDonation{500.0});
  CentralGrant grant = server.handle_request(CentralRequest{});
  EXPECT_DOUBLE_EQ(grant.watts, 30.0);  // clamp(50, 1, 30)
  EXPECT_FALSE(grant.release_to_initial);
  EXPECT_DOUBLE_EQ(server.cache_watts(), 470.0);
}

TEST(ServerLogic, NonUrgentGrantMidRangeIsShare) {
  ServerLogic server;
  server.handle_donation(CentralDonation{100.0});
  CentralGrant grant = server.handle_request(CentralRequest{});
  EXPECT_DOUBLE_EQ(grant.watts, 10.0);
}

TEST(ServerLogic, NonUrgentGrantLowerClampBoundedByCache) {
  ServerLogic server;
  server.handle_donation(CentralDonation{0.5});
  CentralGrant grant = server.handle_request(CentralRequest{});
  EXPECT_DOUBLE_EQ(grant.watts, 0.5);  // min(cache, clamp)
  EXPECT_DOUBLE_EQ(server.cache_watts(), 0.0);
}

TEST(ServerLogic, EmptyCacheGrantsZero) {
  ServerLogic server;
  CentralGrant grant = server.handle_request(CentralRequest{});
  EXPECT_DOUBLE_EQ(grant.watts, 0.0);
  EXPECT_FALSE(grant.release_to_initial);
}

TEST(ServerLogic, UnclampedConfigGivesRawShare) {
  ServerConfig cfg;
  cfg.clamp_grants = false;
  ServerLogic server(cfg);
  server.handle_donation(CentralDonation{500.0});
  CentralGrant grant = server.handle_request(CentralRequest{});
  EXPECT_DOUBLE_EQ(grant.watts, 50.0);  // 10% of 500, unclamped
}

TEST(ServerLogic, UrgentServedGreedilyUpToAlpha) {
  ServerLogic server;
  server.handle_donation(CentralDonation{200.0});
  CentralRequest req;
  req.urgent = true;
  req.alpha_watts = 70.0;
  CentralGrant grant = server.handle_request(req);
  EXPECT_DOUBLE_EQ(grant.watts, 70.0);  // bypasses the 30 W clamp
  EXPECT_DOUBLE_EQ(server.cache_watts(), 130.0);
  EXPECT_DOUBLE_EQ(server.unmet_urgent_watts(), 0.0);
}

TEST(ServerLogic, UnmetUrgentTriggersReleaseOrders) {
  ServerLogic server;
  server.handle_donation(CentralDonation{10.0});
  CentralRequest urgent;
  urgent.urgent = true;
  urgent.alpha_watts = 50.0;
  CentralGrant ugrant = server.handle_request(urgent);
  EXPECT_DOUBLE_EQ(ugrant.watts, 10.0);
  EXPECT_DOUBLE_EQ(server.unmet_urgent_watts(), 40.0);

  // Non-urgent requesters are now ordered to release, and get nothing.
  CentralGrant grant = server.handle_request(CentralRequest{});
  EXPECT_DOUBLE_EQ(grant.watts, 0.0);
  EXPECT_TRUE(grant.release_to_initial);
  EXPECT_EQ(server.stats().release_orders, 1u);
}

TEST(ServerLogic, DonationsClearUnmetUrgentDeficit) {
  ServerLogic server;
  CentralRequest urgent;
  urgent.urgent = true;
  urgent.alpha_watts = 30.0;
  server.handle_request(urgent);  // 30 unmet
  server.handle_donation(CentralDonation{12.0});
  EXPECT_DOUBLE_EQ(server.unmet_urgent_watts(), 18.0);
  server.handle_donation(CentralDonation{30.0});
  EXPECT_DOUBLE_EQ(server.unmet_urgent_watts(), 0.0);
  // Back to normal grants.
  CentralGrant grant = server.handle_request(CentralRequest{});
  EXPECT_FALSE(grant.release_to_initial);
  EXPECT_GT(grant.watts, 0.0);
}

TEST(ServerLogic, RepeatedUrgentRequestsDoNotDoubleCount) {
  ServerLogic server;
  CentralRequest urgent;
  urgent.urgent = true;
  urgent.alpha_watts = 50.0;
  server.handle_request(urgent);
  server.handle_request(urgent);  // same node retries next period
  EXPECT_DOUBLE_EQ(server.unmet_urgent_watts(), 50.0);  // not 100
}

TEST(ServerLogic, UrgentFullySatisfiedClearsDeficit) {
  ServerLogic server;
  CentralRequest urgent;
  urgent.urgent = true;
  urgent.alpha_watts = 50.0;
  server.handle_request(urgent);  // unmet 50
  server.handle_donation(CentralDonation{100.0});
  CentralGrant grant = server.handle_request(urgent);
  EXPECT_DOUBLE_EQ(grant.watts, 50.0);
  EXPECT_DOUBLE_EQ(server.unmet_urgent_watts(), 0.0);
}

TEST(ServerLogic, ConservationAcrossMixedTraffic) {
  ServerLogic server;
  double donated = 0.0;
  double granted = 0.0;
  for (int i = 0; i < 100; ++i) {
    double amount = 3.0 + (i % 7);
    server.handle_donation(CentralDonation{amount});
    donated += amount;
    CentralRequest req;
    req.urgent = (i % 5 == 0);
    req.alpha_watts = 11.0;
    granted += server.handle_request(req).watts;
  }
  EXPECT_NEAR(donated, granted + server.cache_watts(), 1e-9);
}

TEST(ServerLogic, TxnIdEchoedInGrant) {
  ServerLogic server;
  CentralRequest req;
  req.txn_id = 777;
  EXPECT_EQ(server.handle_request(req).txn_id, 777u);
}

TEST(ServerLogicDeath, NegativeDonationAborts) {
  ServerLogic server;
  EXPECT_DEATH(server.handle_donation(CentralDonation{-5.0}), "negative");
}

}  // namespace
}  // namespace penelope::central
