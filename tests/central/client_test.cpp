#include "central/client.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace penelope::central {
namespace {

ClientConfig base_config() {
  ClientConfig cfg;
  cfg.initial_cap_watts = 160.0;
  cfg.epsilon_watts = 5.0;
  cfg.safe_range = {.min_watts = 80.0, .max_watts = 250.0};
  return cfg;
}

TEST(Client, ExcessBranchDonatesAndLowersCap) {
  Client client(base_config());
  ClientStepOutcome out = client.begin_step(120.0);
  EXPECT_EQ(out.kind, ClientStepKind::kDonate);
  EXPECT_DOUBLE_EQ(out.delta_watts, 40.0);
  EXPECT_DOUBLE_EQ(client.cap(), 120.0);  // C_i = P_i, per §2.3.2
}

TEST(Client, ExcessClampedAtSafeMin) {
  Client client(base_config());
  ClientStepOutcome out = client.begin_step(20.0);
  EXPECT_EQ(out.kind, ClientStepKind::kDonate);
  EXPECT_DOUBLE_EQ(client.cap(), 80.0);
  EXPECT_DOUBLE_EQ(out.delta_watts, 80.0);
}

TEST(Client, HungrySendsRequest) {
  Client client(base_config());
  ClientStepOutcome out = client.begin_step(157.0);
  EXPECT_EQ(out.kind, ClientStepKind::kNeedsServer);
  EXPECT_FALSE(out.request.urgent);
}

TEST(Client, UrgentBelowInitialCap) {
  Client client(base_config());
  client.begin_step(100.0);  // donate down to 100
  ClientStepOutcome out = client.begin_step(99.0);
  EXPECT_EQ(out.kind, ClientStepKind::kNeedsServer);
  EXPECT_TRUE(out.request.urgent);
  EXPECT_DOUBLE_EQ(out.request.alpha_watts, 60.0);
  EXPECT_TRUE(client.last_step_urgent());
}

TEST(Client, HungryAtCeilingHolds) {
  ClientConfig cfg = base_config();
  cfg.initial_cap_watts = 250.0;
  Client client(cfg);
  ClientStepOutcome out = client.begin_step(249.0);
  EXPECT_EQ(out.kind, ClientStepKind::kHeld);
}

TEST(Client, GrantRaisesCap) {
  Client client(base_config());
  client.begin_step(157.0);
  GrantApplication result = client.apply_grant(CentralGrant{20.0, false, 1});
  EXPECT_DOUBLE_EQ(result.applied_watts, 20.0);
  EXPECT_DOUBLE_EQ(result.donate_back_watts, 0.0);
  EXPECT_DOUBLE_EQ(client.cap(), 180.0);
}

TEST(Client, GrantOverflowBeyondCeilingDonatedBack) {
  ClientConfig cfg = base_config();
  cfg.initial_cap_watts = 240.0;
  Client client(cfg);
  client.begin_step(239.0);
  GrantApplication result = client.apply_grant(CentralGrant{30.0, false, 1});
  EXPECT_DOUBLE_EQ(result.applied_watts, 10.0);
  EXPECT_DOUBLE_EQ(result.donate_back_watts, 20.0);
  EXPECT_DOUBLE_EQ(client.cap(), 250.0);
}

TEST(Client, ReleaseOrderDropsToInitialAndDonates) {
  Client client(base_config());
  client.begin_step(157.0);
  client.apply_grant(CentralGrant{30.0, false, 1});  // cap 190
  client.begin_step(187.0);                          // hungry, not urgent
  GrantApplication result =
      client.apply_grant(CentralGrant{0.0, true, 2});
  EXPECT_DOUBLE_EQ(result.donate_back_watts, 30.0);
  EXPECT_DOUBLE_EQ(client.cap(), 160.0);
  EXPECT_EQ(client.stats().release_orders_obeyed, 1u);
}

TEST(Client, UrgentClientIgnoresReleaseOrder) {
  Client client(base_config());
  client.begin_step(100.0);  // cap 100, below initial
  client.begin_step(99.0);   // urgent request
  GrantApplication result =
      client.apply_grant(CentralGrant{0.0, true, 1});
  EXPECT_DOUBLE_EQ(result.donate_back_watts, 0.0);
  EXPECT_DOUBLE_EQ(client.cap(), 100.0);
}

TEST(Client, ReleaseOrderAtInitialCapDonatesNothing) {
  Client client(base_config());
  client.begin_step(157.0);
  GrantApplication result =
      client.apply_grant(CentralGrant{0.0, true, 1});
  EXPECT_DOUBLE_EQ(result.donate_back_watts, 0.0);
  EXPECT_DOUBLE_EQ(client.cap(), 160.0);
}

TEST(Client, ReleaseOrderWithGrantAppliesBoth) {
  // Defensive: a grant carrying both watts and a release order first
  // releases, then applies the watts.
  Client client(base_config());
  client.begin_step(157.0);
  client.apply_grant(CentralGrant{40.0, false, 1});  // cap 200
  client.begin_step(197.0);
  GrantApplication result =
      client.apply_grant(CentralGrant{5.0, true, 2});
  EXPECT_DOUBLE_EQ(client.cap(), 165.0);  // 160 + 5
  EXPECT_DOUBLE_EQ(result.donate_back_watts, 40.0);
}

TEST(Client, TimeoutLeavesStateUntouched) {
  Client client(base_config());
  client.begin_step(157.0);
  double cap = client.cap();
  client.on_grant_timeout();
  EXPECT_DOUBLE_EQ(client.cap(), cap);
}

TEST(Client, DonationRatchetUnderDeadServer) {
  // With a dead server the client keeps donating into the void whenever
  // demand drops — the Figure 3 degradation mechanism. Verify the cap
  // ratchets down monotonically and never recovers without grants.
  Client client(base_config());
  double readings[] = {150.0, 140.0, 155.0, 130.0, 150.0};
  double min_cap = client.cap();
  for (double p : readings) {
    ClientStepOutcome out = client.begin_step(p);
    if (out.kind == ClientStepKind::kNeedsServer) {
      client.on_grant_timeout();  // server never answers
    }
    min_cap = std::min(min_cap, client.cap());
    EXPECT_DOUBLE_EQ(client.cap(), min_cap);  // never rises
  }
  EXPECT_DOUBLE_EQ(client.cap(), 130.0);
}

TEST(Client, StatsAccumulate) {
  Client client(base_config());
  client.begin_step(100.0);
  client.begin_step(99.0);
  client.apply_grant(CentralGrant{10.0, false, 1});
  const ClientStats& stats = client.stats();
  EXPECT_EQ(stats.steps, 2u);
  EXPECT_EQ(stats.excess_steps, 1u);
  EXPECT_EQ(stats.hungry_steps, 1u);
  EXPECT_EQ(stats.urgent_requests, 1u);
  EXPECT_DOUBLE_EQ(stats.watts_donated, 60.0);
  EXPECT_DOUBLE_EQ(stats.watts_received, 10.0);
}

TEST(ClientDeath, InitialCapOutsideSafeRangeRejected) {
  ClientConfig cfg = base_config();
  cfg.initial_cap_watts = 10.0;
  EXPECT_DEATH(Client{cfg}, "safe range");
}

}  // namespace
}  // namespace penelope::central
