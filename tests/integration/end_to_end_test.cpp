// End-to-end integration: full cluster runs under all three managers on
// real NPB pair workloads, checking the paper's qualitative claims at
// test scale — the dynamic systems beat Fair where shifting matters,
// Penelope tracks SLURM under nominal conditions, and the fault story of
// Figure 3 reproduces.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "common/stats.hpp"

namespace penelope::cluster {
namespace {

workload::NpbConfig npb_config(std::uint64_t seed) {
  workload::NpbConfig cfg;
  cfg.duration_scale = 0.12;
  cfg.demand_jitter_frac = 0.02;
  cfg.seed = seed;
  return cfg;
}

RunResult run_pair(ManagerKind manager, workload::NpbApp a,
                   workload::NpbApp b, double per_socket_cap,
                   std::vector<FaultEvent> faults = {}) {
  ClusterConfig cc;
  cc.manager = manager;
  cc.n_nodes = 8;
  cc.per_socket_cap_watts = per_socket_cap;
  cc.seed = 17;
  cc.max_seconds = 600.0;
  cc.faults = std::move(faults);
  Cluster cluster(cc, make_pair_workloads(a, b, cc.n_nodes,
                                          npb_config(23)));
  return cluster.run();
}

TEST(EndToEnd, NominalPenelopeTracksCentralAcrossPairs) {
  // A small slice of Figure 2: over several pairs, normalised
  // performance of Penelope stays close to SLURM's (paper: within ~3%
  // on average at 20 nodes; we allow a wider band at 8 nodes and short
  // profiles, and also require both to not lose to Fair overall).
  std::vector<std::pair<workload::NpbApp, workload::NpbApp>> pairs = {
      {workload::NpbApp::kEP, workload::NpbApp::kDC},
      {workload::NpbApp::kEP, workload::NpbApp::kCG},
      {workload::NpbApp::kFT, workload::NpbApp::kDC},
  };
  std::vector<double> penelope_norm;
  std::vector<double> central_norm;
  for (auto [a, b] : pairs) {
    RunResult fair = run_pair(ManagerKind::kFair, a, b, 70.0);
    RunResult pen = run_pair(ManagerKind::kPenelope, a, b, 70.0);
    RunResult cen = run_pair(ManagerKind::kCentral, a, b, 70.0);
    ASSERT_TRUE(fair.all_completed && pen.all_completed &&
                cen.all_completed);
    penelope_norm.push_back(pen.performance / fair.performance);
    central_norm.push_back(cen.performance / fair.performance);
  }
  double pen_geo = common::geomean(penelope_norm);
  double cen_geo = common::geomean(central_norm);
  // Both dynamic systems help on these donor/hog pairs...
  EXPECT_GT(pen_geo, 1.0);
  EXPECT_GT(cen_geo, 1.0);
  // ...and Penelope is within 10% of the central manager.
  EXPECT_GT(pen_geo / cen_geo, 0.90);
}

TEST(EndToEnd, FaultStoryMatchesFigure3) {
  // Kill the central server mid-run; Penelope (which has no such node)
  // must now beat SLURM clearly, and SLURM falls to roughly Fair or
  // below. Uses realistic phase lengths (duration_scale 0.5) so the
  // post-kill donation ratchet operates as in the paper.
  auto run_scaled = [](ManagerKind manager,
                       std::vector<FaultEvent> faults) {
    ClusterConfig cc;
    cc.manager = manager;
    cc.n_nodes = 8;
    cc.per_socket_cap_watts = 70.0;
    cc.seed = 17;
    cc.max_seconds = 1200.0;
    cc.faults = std::move(faults);
    workload::NpbConfig npb;
    npb.duration_scale = 0.5;
    npb.demand_jitter_frac = 0.02;
    npb.seed = 23;
    Cluster cluster(cc,
                    make_pair_workloads(workload::NpbApp::kEP,
                                        workload::NpbApp::kDC,
                                        cc.n_nodes, npb));
    return cluster.run();
  };
  // Kill before the first decider round completes (start offsets stay
  // under period/4, so at 0.5 s no grant has landed yet): the surviving
  // cap distribution is exactly uniform and the remaining run shows the
  // cost of management without power shifting. A later kill makes the
  // outcome a per-seed lottery — whatever allocation froze in the first
  // few rounds can happen to fit the rest of the workload.
  auto kill_early = std::vector<FaultEvent>{
      {FaultEvent::Kind::kKillServer, common::from_seconds(0.5), 0}};
  RunResult fair = run_scaled(ManagerKind::kFair, {});
  RunResult pen = run_scaled(ManagerKind::kPenelope, {});
  RunResult cen_faulty = run_scaled(ManagerKind::kCentral, kill_early);
  ASSERT_TRUE(fair.all_completed && pen.all_completed &&
              cen_faulty.all_completed);
  double pen_norm = pen.performance / fair.performance;
  double cen_norm = cen_faulty.performance / fair.performance;
  EXPECT_GT(pen_norm, cen_norm * 1.03);  // paper: 8-15% gain
  EXPECT_LT(cen_norm, 1.03);             // SLURM ~at or below Fair
}

TEST(EndToEnd, HigherCapsShrinkDynamicAdvantage) {
  // Figure 2's trend across initial caps: at generous caps everyone runs
  // unconstrained and the dynamic advantage fades toward 1.0.
  auto advantage_at = [&](double cap) {
    RunResult fair = run_pair(ManagerKind::kFair, workload::NpbApp::kEP,
                              workload::NpbApp::kDC, cap);
    RunResult pen = run_pair(ManagerKind::kPenelope,
                             workload::NpbApp::kEP,
                             workload::NpbApp::kDC, cap);
    EXPECT_TRUE(fair.all_completed && pen.all_completed);
    return pen.performance / fair.performance;
  };
  double tight = advantage_at(60.0);
  double loose = advantage_at(100.0);
  EXPECT_GT(tight, loose);
  EXPECT_NEAR(loose, 1.0, 0.06);
}

TEST(EndToEnd, SymmetricPairGainsLittle) {
  // Two copies of the same hog leave nothing to shift; all three
  // managers should land within a few percent of each other.
  RunResult fair = run_pair(ManagerKind::kFair, workload::NpbApp::kEP,
                            workload::NpbApp::kEP, 70.0);
  RunResult pen = run_pair(ManagerKind::kPenelope, workload::NpbApp::kEP,
                           workload::NpbApp::kEP, 70.0);
  ASSERT_TRUE(fair.all_completed && pen.all_completed);
  EXPECT_NEAR(pen.performance / fair.performance, 1.0, 0.05);
}

TEST(EndToEnd, TurnaroundWellUnderPeriodNominally) {
  RunResult pen = run_pair(ManagerKind::kPenelope, workload::NpbApp::kEP,
                           workload::NpbApp::kDC, 70.0);
  RunResult cen = run_pair(ManagerKind::kCentral, workload::NpbApp::kEP,
                           workload::NpbApp::kDC, 70.0);
  ASSERT_FALSE(pen.turnaround_ms.empty());
  ASSERT_FALSE(cen.turnaround_ms.empty());
  EXPECT_LT(common::mean_of(pen.turnaround_ms), 100.0);
  EXPECT_LT(common::mean_of(cen.turnaround_ms), 100.0);
}

TEST(EndToEnd, EveryManagerBalancesTheBooks) {
  for (ManagerKind manager : {ManagerKind::kFair, ManagerKind::kCentral,
                              ManagerKind::kPenelope}) {
    RunResult result = run_pair(manager, workload::NpbApp::kUA,
                                workload::NpbApp::kDC, 80.0);
    EXPECT_TRUE(result.all_completed) << manager_name(manager);
    EXPECT_LT(result.audit.max_abs_conservation_error, 1e-6)
        << manager_name(manager);
    EXPECT_LE(result.audit.max_live_overshoot, 1e-6)
        << manager_name(manager);
  }
}

}  // namespace
}  // namespace penelope::cluster
