// Chaos soak: the at-most-once delivery layer under everything the
// fabric can throw at once — loss, duplication, reordering past the
// protocol timeout, two management-plane kills, and a partition episode
// that splits the cluster in half and heals mid-run. Across seeds, the
// conservation audit must stay at float noise and every node must still
// finish its workload (no wedged deciders). Runs under the `chaos` ctest
// preset as well as the default suite.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"

namespace penelope::cluster {
namespace {

workload::NpbConfig chaos_npb(std::uint64_t seed) {
  workload::NpbConfig cfg;
  // Long enough that every scheduled fault (latest: the heal at 150 s)
  // fires while applications are still running and shifting power.
  cfg.duration_scale = 1.0;
  cfg.demand_jitter_frac = 0.03;
  cfg.seed = seed;
  return cfg;
}

void add_chaos_network(ClusterConfig& cc) {
  cc.network.loss_probability = 0.05;
  cc.network.duplicate_probability = 0.05;
  cc.network.reorder_probability = 0.05;
  // Past the one-period request timeout: reordered grants arrive after
  // the requester gave up, exercising the stale-banking path as well.
  cc.network.reorder_delay = 2 * common::kTicksPerSecond;
}

class ChaosSoak : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosSoak, PenelopeConservesThroughCombinedChaos) {
  ClusterConfig cc;
  cc.manager = ManagerKind::kPenelope;
  cc.n_nodes = 20;
  cc.per_socket_cap_watts = 70.0;
  cc.seed = GetParam();
  cc.max_seconds = 2500.0;
  add_chaos_network(cc);
  // Turn on every discovery refinement so duplicated/reordered copies
  // hit the sticky, hinted, blacklist, and push-gossip paths too.
  cc.sticky_peers = true;
  cc.hint_discovery = true;
  cc.blacklist_after_timeouts = 3;
  cc.push_gossip = true;
  cc.audit_interval = common::from_seconds(1.0);
  cc.faults = {
      FaultEvent{FaultEvent::Kind::kKillManagement,
                 common::from_seconds(60.0), 3},
      FaultEvent{FaultEvent::Kind::kPartition, common::from_seconds(90.0),
                 10},
      FaultEvent{FaultEvent::Kind::kKillManagement,
                 common::from_seconds(120.0), 7},
      FaultEvent{FaultEvent::Kind::kHealPartition,
                 common::from_seconds(150.0), 0},
  };

  Cluster cluster(cc, make_pair_workloads(workload::NpbApp::kEP,
                                          workload::NpbApp::kDC,
                                          cc.n_nodes,
                                          chaos_npb(cc.seed)));
  RunResult result = cluster.run();

  // No wedged nodes: every application finished despite the chaos.
  EXPECT_TRUE(result.all_completed);
  // The fault schedule overlapped live traffic (otherwise this test
  // silently stops testing anything).
  EXPECT_GT(result.runtime_seconds, 150.0);
  for (int i = 0; i < cc.n_nodes; ++i) {
    EXPECT_TRUE(cluster.node_app_done(i)) << "node " << i << " wedged";
  }
  // Every fault class actually fired.
  EXPECT_GT(result.net_stats.dropped_loss, 0u);
  EXPECT_GT(result.net_stats.duplicated, 0u);
  EXPECT_GT(result.net_stats.reordered, 0u);
  EXPECT_GT(result.net_stats.dropped_partition, 0u);
  EXPECT_GT(result.timeouts, 0u);
  EXPECT_GT(cluster.metrics().duplicates_dropped(), 0u);
  // The invariant under test: duplicated/reordered/lost power is either
  // applied once, banked once, or ledgered as stranded — never minted.
  EXPECT_LT(result.audit.max_abs_conservation_error, 1e-6);
  EXPECT_LE(result.audit.max_live_overshoot, 1e-6);
  for (int i = 0; i < cc.n_nodes; ++i) {
    EXPECT_GE(cluster.node_cap(i), cc.rapl.safe_range.min_watts - 1e-9);
    EXPECT_LE(cluster.node_cap(i), cc.rapl.safe_range.max_watts + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSoak,
                         ::testing::Values(1u, 2u, 3u),
                         [](const ::testing::TestParamInfo<std::uint64_t>&
                                info) {
                           return "seed" + std::to_string(info.param);
                         });

// The membership layer under the same fabric chaos plus node churn:
// nodes crash (volatile state lost, residue stranded against their
// incarnation), restart with bumped incarnations, and a mid-run
// partition manufactures false suspicions on top. Dead nodes' watts
// must be reclaimed exactly once and conservation must stay at float
// noise across seeds.
class ChaosChurnSoak : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosChurnSoak, ChurnWithReclamationConservesAcrossSeeds) {
  ClusterConfig cc;
  cc.manager = ManagerKind::kPenelope;
  cc.n_nodes = 20;
  cc.per_socket_cap_watts = 70.0;
  cc.seed = GetParam();
  cc.max_seconds = 3000.0;
  add_chaos_network(cc);
  cc.sticky_peers = true;
  cc.hint_discovery = true;
  cc.blacklist_after_timeouts = 3;
  cc.push_gossip = true;
  cc.audit_interval = common::from_seconds(1.0);
  cc.membership_enabled = true;
  cc.churn_enabled = true;
  cc.churn_mtbf_seconds = 60.0;
  cc.churn_mttr_seconds = 5.0;
  cc.faults = {
      FaultEvent{FaultEvent::Kind::kPartition, common::from_seconds(90.0),
                 10},
      FaultEvent{FaultEvent::Kind::kHealPartition,
                 common::from_seconds(150.0), 0},
  };

  Cluster cluster(cc, make_pair_workloads(workload::NpbApp::kEP,
                                          workload::NpbApp::kDC,
                                          cc.n_nodes,
                                          chaos_npb(cc.seed)));
  RunResult result = cluster.run();

  EXPECT_TRUE(result.all_completed);
  for (int i = 0; i < cc.n_nodes; ++i) {
    EXPECT_TRUE(cluster.node_app_done(i)) << "node " << i << " wedged";
  }
  // Every chaos class fired: fabric faults, kills, restarts, and the
  // partition episode.
  EXPECT_GT(result.net_stats.dropped_loss, 0u);
  EXPECT_GT(result.net_stats.duplicated, 0u);
  EXPECT_GT(result.net_stats.dropped_partition, 0u);
  EXPECT_GT(result.net_stats.node_failures, 0u);
  EXPECT_GT(result.net_stats.node_recoveries, 0u);
  // The membership layer detected and reclaimed.
  EXPECT_GT(result.nodes_declared_dead, 0u);
  EXPECT_GT(result.reclaims, 0u);
  EXPECT_GT(result.watts_reclaimed, 0.0);
  // The tentpole invariant: crashes, rejoins, false suspicions, and
  // reclamation never mint or destroy power.
  EXPECT_LT(result.audit.max_abs_conservation_error, 1e-6);
  EXPECT_LE(result.audit.max_live_overshoot, 1e-6);
  for (int i = 0; i < cc.n_nodes; ++i) {
    EXPECT_GE(cluster.node_cap(i), cc.rapl.safe_range.min_watts - 1e-9);
    EXPECT_LE(cluster.node_cap(i), cc.rapl.safe_range.max_watts + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosChurnSoak,
                         ::testing::Values(1u, 2u, 3u),
                         [](const ::testing::TestParamInfo<std::uint64_t>&
                                info) {
                           return "seed" + std::to_string(info.param);
                         });

TEST(ChaosSoakCentral, ServerKillUnderChaosStillBalances) {
  // The centralized manager under the same fabric chaos plus its worst
  // fault: the server dies mid-run while duplicated donations are in
  // flight. Stranded watts must be ledgered once — a redelivered copy of
  // a stranded donation must not strand (or credit) twice.
  ClusterConfig cc;
  cc.manager = ManagerKind::kCentral;
  cc.n_nodes = 20;
  cc.per_socket_cap_watts = 70.0;
  cc.seed = 11;
  cc.max_seconds = 3000.0;
  add_chaos_network(cc);
  cc.audit_interval = common::from_seconds(1.0);
  cc.faults = {FaultEvent{FaultEvent::Kind::kKillServer,
                          common::from_seconds(40.0), 0}};

  Cluster cluster(cc, make_pair_workloads(workload::NpbApp::kEP,
                                          workload::NpbApp::kDC,
                                          cc.n_nodes, chaos_npb(17)));
  RunResult result = cluster.run();
  EXPECT_TRUE(result.all_completed);
  EXPECT_GT(result.stranded_watts, 0.0);
  EXPECT_GT(cluster.metrics().duplicates_dropped(), 0u);
  EXPECT_LT(result.audit.max_abs_conservation_error, 1e-6);
  EXPECT_LE(result.audit.max_live_overshoot, 1e-6);
}

}  // namespace
}  // namespace penelope::cluster
