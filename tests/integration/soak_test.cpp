// Soak: a long virtual-time run combining everything at once — phased
// workloads, measurement noise, a lossy fabric, a mid-run budget cut
// and a later restoration, plus a management-plane fault — under every
// manager. The books must balance at every audit and no invariant may
// crack. This is the "leave it running overnight" test, compressed into
// virtual time.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"

namespace penelope::cluster {
namespace {

class Soak : public ::testing::TestWithParam<ManagerKind> {};

TEST_P(Soak, EverythingAtOnceForALongTime) {
  ClusterConfig cc;
  cc.manager = GetParam();
  cc.n_nodes = 10;
  cc.per_socket_cap_watts = 70.0;
  cc.seed = 77;
  cc.max_seconds = 4000.0;
  cc.network.loss_probability = 0.01;
  cc.measurement_noise_watts = 1.0;
  cc.audit_interval = common::from_seconds(2.0);
  if (cc.manager == ManagerKind::kPenelope) {
    cc.blacklist_after_timeouts = 3;
    cc.faults = {FaultEvent{FaultEvent::Kind::kKillManagement,
                            common::from_seconds(200.0), 3}};
  }

  // Long phased workloads: cycle through compute / memory / idle over
  // and over, with per-node jitter.
  std::vector<workload::WorkloadProfile> profiles;
  common::Rng rng(5);
  for (int i = 0; i < cc.n_nodes; ++i) {
    workload::WorkloadProfile p;
    p.name = "soak" + std::to_string(i);
    for (int cycle = 0; cycle < 12; ++cycle) {
      p.phases.push_back(workload::Phase{
          "compute", rng.uniform(190.0, 240.0), rng.uniform(15.0, 30.0)});
      p.phases.push_back(workload::Phase{
          "memory", rng.uniform(130.0, 170.0), rng.uniform(8.0, 15.0)});
      p.phases.push_back(workload::Phase{
          "idle", rng.uniform(60.0, 100.0), rng.uniform(4.0, 10.0)});
    }
    profiles.push_back(std::move(p));
  }

  Cluster cluster(cc, std::move(profiles));

  // Budget storyline: cut 20% at t=100 s, restore at t=300 s.
  cluster.run_for(100.0);
  cluster.set_system_budget(cc.system_budget() * 0.8);
  cluster.run_for(200.0);
  cluster.set_system_budget(cc.system_budget());

  RunResult result = cluster.run();
  EXPECT_TRUE(result.all_completed) << manager_name(GetParam());
  EXPECT_GT(result.audit.audits, 100u);
  EXPECT_LT(result.audit.max_abs_conservation_error, 1e-6)
      << manager_name(GetParam());
  EXPECT_LE(result.audit.max_live_overshoot, 1e-6)
      << manager_name(GetParam());
  EXPECT_GT(result.total_energy_joules, 0.0);
  // Deterministic wrap-up: all caps inside the safe range.
  for (int i = 0; i < cc.n_nodes; ++i) {
    EXPECT_GE(cluster.node_cap(i), cc.rapl.safe_range.min_watts - 1e-9);
    EXPECT_LE(cluster.node_cap(i), cc.rapl.safe_range.max_watts + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Managers, Soak,
    ::testing::Values(ManagerKind::kFair, ManagerKind::kCentral,
                      ManagerKind::kPenelope, ManagerKind::kHierarchical),
    [](const ::testing::TestParamInfo<ManagerKind>& info) {
      return manager_name(info.param);
    });

}  // namespace
}  // namespace penelope::cluster
