#include "sim/event_fn.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "sim/simulator.hpp"

// Global allocation counter: every operator new in this test binary
// bumps it, so a snapshot around a region measures exactly the heap
// allocations that region performed.
namespace {
std::atomic<std::size_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace penelope::sim {
namespace {

std::size_t allocs() { return g_allocs.load(std::memory_order_relaxed); }

TEST(EventFn, EmptyByDefault) {
  EventFn fn;
  EXPECT_FALSE(static_cast<bool>(fn));
  EventFn null_fn = nullptr;
  EXPECT_FALSE(static_cast<bool>(null_fn));
}

TEST(EventFn, InvokesWithFiringTime) {
  Ticks seen = -1;
  EventFn fn = [&](Ticks t) { seen = t; };
  ASSERT_TRUE(static_cast<bool>(fn));
  fn(42);
  EXPECT_EQ(seen, 42);
}

TEST(EventFn, AdaptsZeroArgCallables) {
  int calls = 0;
  EventFn fn = [&] { ++calls; };
  fn(7);
  fn(8);
  EXPECT_EQ(calls, 2);
}

TEST(EventFn, MoveTransfersAndEmptiesSource) {
  int calls = 0;
  EventFn a = [&] { ++calls; };
  EventFn b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b(0);
  EXPECT_EQ(calls, 1);

  EventFn c;
  c = std::move(b);
  c(0);
  EXPECT_EQ(calls, 2);
}

TEST(EventFn, AcceptsMoveOnlyCallables) {
  auto flag = std::make_unique<int>(0);
  int* raw = flag.get();
  EventFn fn = [owned = std::move(flag)](Ticks) { ++*owned; };
  EventFn moved = std::move(fn);
  moved(0);
  EXPECT_EQ(*raw, 1);
}

// A callable with non-trivial move/destroy, to exercise the indirect
// relocate path (trivially-copyable captures take the memcpy path and
// are covered by every other test here).
struct Tracked {
  static int live;
  std::vector<int>* out;
  explicit Tracked(std::vector<int>* o) : out(o) { ++live; }
  Tracked(const Tracked& other) : out(other.out) { ++live; }
  Tracked(Tracked&& other) noexcept : out(other.out) { ++live; }
  ~Tracked() { --live; }
  void operator()(common::Ticks t) { out->push_back(static_cast<int>(t)); }
};
int Tracked::live = 0;

TEST(EventFn, NonTrivialCallableRelocatesAndDestroys) {
  std::vector<int> out;
  {
    EventFn a = Tracked{&out};
    EXPECT_EQ(Tracked::live, 1);
    EventFn b = std::move(a);
    EXPECT_EQ(Tracked::live, 1);  // relocate = move + destroy source
    b(5);
  }
  EXPECT_EQ(Tracked::live, 0);
  EXPECT_EQ(out, (std::vector<int>{5}));
}

TEST(EventFn, SmallCapturesStayInline) {
  struct {
    char bytes[EventFn::kInlineCapacity - 16];
  } capture{};
  const std::size_t before = allocs();
  EventFn fn = [capture](Ticks) { (void)capture; };
  EventFn moved = std::move(fn);
  moved(0);
  EXPECT_EQ(allocs(), before);
}

TEST(EventFn, OversizedCapturesFallBackToOneHeapAllocation) {
  struct {
    char bytes[EventFn::kInlineCapacity + 1];
  } capture{};
  const std::size_t before = allocs();
  EventFn fn = [capture](Ticks) { (void)capture; };
  EXPECT_EQ(allocs(), before + 1);
  // Moving a heap-held callable moves the pointer: no further allocation.
  EventFn moved = std::move(fn);
  moved(0);
  EXPECT_EQ(allocs(), before + 1);
}

// Acceptance gate: schedule_after of a lambda capturing <= 32 bytes
// performs zero heap allocations. With reserve() covering the pending
// count, a full schedule -> cancel -> run cycle stays allocation-free.
TEST(EventFn, ScheduleAfterSmallCaptureNeverAllocates) {
  Simulator sim;
  sim.reserve(256);
  std::uint64_t sum = 0;
  struct Capture {
    std::uint64_t* sum;
    std::uint64_t a, b, c;
  };
  static_assert(sizeof(Capture) == 32);

  std::vector<EventId> ids;
  ids.reserve(256);  // the test's own bookkeeping, allocated up front
  std::uint64_t expected = 0;
  for (int i = 1; i < 256; i += 2) {
    expected += static_cast<std::uint64_t>(i) + 2 + 3;
  }

  const std::size_t before = allocs();
  for (int i = 0; i < 256; ++i) {
    Capture cap{&sum, static_cast<std::uint64_t>(i), 2, 3};
    ids.push_back(sim.schedule_after(
        i, [cap](Ticks) { *cap.sum += cap.a + cap.b + cap.c; }));
  }
  for (int i = 0; i < 256; i += 2) sim.cancel(ids[static_cast<size_t>(i)]);
  sim.run();
  EXPECT_EQ(allocs(), before);
  EXPECT_EQ(sum, expected);
}

}  // namespace
}  // namespace penelope::sim
