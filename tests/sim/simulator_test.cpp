#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

namespace penelope::sim {
namespace {

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulator, EqualTimestampsAreFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulator, ScheduleAfterIsRelative) {
  Simulator sim;
  Ticks fired_at = -1;
  sim.schedule_at(100, [&] {
    sim.schedule_after(50, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired_at, 150);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.schedule_after(10, recurse);
  };
  sim.schedule_at(0, recurse);
  sim.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), 40);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  EventId id = sim.schedule_at(10, [&] { ran = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, CancelOneOfManyAtSameTime) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(10, [&] { ++count; });
  EventId id = sim.schedule_at(10, [&] { ++count; });
  sim.schedule_at(10, [&] { ++count; });
  sim.cancel(id);
  sim.run();
  EXPECT_EQ(count, 2);
}

TEST(Simulator, CancelInvalidIdIsNoop) {
  Simulator sim;
  sim.cancel(kInvalidEventId);
  sim.cancel(9999);
  bool ran = false;
  sim.schedule_at(1, [&] { ran = true; });
  sim.run();
  EXPECT_TRUE(ran);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  std::vector<Ticks> fired;
  for (Ticks t = 10; t <= 100; t += 10) {
    sim.schedule_at(t, [&fired, &sim] { fired.push_back(sim.now()); });
  }
  sim.run_until(45);
  EXPECT_EQ(fired.size(), 4u);
  EXPECT_EQ(sim.now(), 45);
  sim.run_until(100);
  EXPECT_EQ(fired.size(), 10u);
}

TEST(Simulator, RunUntilAdvancesTimeWithEmptyQueue) {
  Simulator sim;
  sim.run_until(500);
  EXPECT_EQ(sim.now(), 500);
}

TEST(Simulator, EventAtExactDeadlineRuns) {
  Simulator sim;
  bool ran = false;
  sim.schedule_at(50, [&] { ran = true; });
  sim.run_until(50);
  EXPECT_TRUE(ran);
}

TEST(Simulator, StopHaltsRun) {
  Simulator sim;
  int count = 0;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(i * 10, [&] {
      if (++count == 3) sim.stop();
    });
  }
  sim.run();
  EXPECT_EQ(count, 3);
  EXPECT_TRUE(sim.stopped());
}

TEST(Simulator, RunStepsExecutesBoundedCount) {
  Simulator sim;
  int count = 0;
  for (int i = 0; i < 10; ++i) sim.schedule_at(i, [&] { ++count; });
  EXPECT_EQ(sim.run_steps(4), 4u);
  EXPECT_EQ(count, 4);
  EXPECT_EQ(sim.run_steps(100), 6u);
}

TEST(Simulator, ExecutedEventsCounts) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule_at(i, [] {});
  sim.run();
  EXPECT_EQ(sim.executed_events(), 7u);
}

TEST(Simulator, CancelInsideOwnCallbackIsNoop) {
  Simulator sim;
  int count = 0;
  EventId id = kInvalidEventId;
  id = sim.schedule_at(10, [&] {
    ++count;
    sim.cancel(id);  // already fired: must not touch anything
  });
  sim.schedule_at(20, [&] { ++count; });
  sim.run();
  EXPECT_EQ(count, 2);
}

TEST(Simulator, CancelOfFiredIdNeverHitsRecycledSlot) {
  Simulator sim;
  EventId first = sim.schedule_at(10, [] {});
  sim.run();
  // The engine recycles the fired event's slot for the next schedule;
  // the stale id carries the old generation and must not cancel the
  // new event.
  bool second_ran = false;
  sim.schedule_at(20, [&] { second_ran = true; });
  sim.cancel(first);
  sim.run();
  EXPECT_TRUE(second_ran);
}

TEST(Simulator, ScheduleAtNowFromCallbackRunsFifoAfterPending) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(10, [&] {
    order.push_back(0);
    // Same-timestamp events scheduled from inside a callback run after
    // everything already pending at that timestamp, in FIFO order.
    sim.schedule_at(10, [&] { order.push_back(2); });
    sim.schedule_at(10, [&] { order.push_back(3); });
  });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(sim.now(), 10);
}

TEST(Simulator, RunUntilLandingExactlyOnTimestampRunsEventOnce) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(50, [&] { ++count; });
  sim.schedule_at(51, [&] { ++count; });
  sim.run_until(50);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(sim.now(), 50);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run_until(51);
  EXPECT_EQ(count, 2);
}

TEST(Simulator, PendingEventsIsExactThroughCancelChurn) {
  Simulator sim;
  std::vector<EventId> ids;
  for (int i = 0; i < 10; ++i) {
    ids.push_back(sim.schedule_at(100 + i, [] {}));
  }
  EXPECT_EQ(sim.pending_events(), 10u);
  for (int i = 0; i < 10; i += 3) sim.cancel(ids[static_cast<size_t>(i)]);
  EXPECT_EQ(sim.pending_events(), 6u);  // exact, no tombstones counted
  sim.cancel(ids[0]);                   // double-cancel: no effect
  EXPECT_EQ(sim.pending_events(), 6u);
  sim.run();
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, SetPeriodRefusesOneShotEvents) {
  Simulator sim;
  EventId one_shot = sim.schedule_at(10, [] {});
  EXPECT_FALSE(sim.set_period(one_shot, 5));
  EventId periodic = sim.schedule_periodic(10, 5, [] {});
  EXPECT_TRUE(sim.set_period(periodic, 7));
  sim.cancel(periodic);
  sim.run();
}

TEST(Simulator, TraceHashPinsExecutionOrder) {
  auto run_one = [](bool reversed) {
    Simulator sim;
    for (int i = 0; i < 100; ++i) {
      Ticks at = reversed ? 1000 - i : 900 + i;
      sim.schedule_at(at, [] {});
    }
    sim.run();
    return std::pair{sim.executed_events(), sim.trace_hash()};
  };
  // Identical schedules hash identically; a different timestamp
  // sequence does not.
  EXPECT_EQ(run_one(false), run_one(false));
  EXPECT_NE(run_one(false).second, run_one(true).second);
}

TEST(SimulatorDeath, SchedulingIntoPastAborts) {
  Simulator sim;
  sim.schedule_at(100, [] {});
  sim.run();
  EXPECT_DEATH(sim.schedule_at(50, [] {}), "past");
}

TEST(PeriodicTask, FiresAtFixedPeriod) {
  Simulator sim;
  std::vector<Ticks> fired;
  PeriodicTask task(sim, 100, 50,
                    [&](Ticks t) { fired.push_back(t); });
  sim.run_until(300);
  EXPECT_EQ(fired, (std::vector<Ticks>{100, 150, 200, 250, 300}));
}

TEST(PeriodicTask, CancelStopsFiring) {
  Simulator sim;
  int count = 0;
  PeriodicTask task(sim, 10, 10, [&](Ticks) {
    if (++count == 3) task.cancel();
  });
  sim.run_until(1000);
  EXPECT_EQ(count, 3);
  EXPECT_FALSE(task.active());
}

TEST(PeriodicTask, DestructorCancels) {
  Simulator sim;
  int count = 0;
  {
    PeriodicTask task(sim, 10, 10, [&](Ticks) { ++count; });
    sim.run_until(35);
  }
  sim.run_until(1000);
  EXPECT_EQ(count, 3);
}

TEST(PeriodicTask, SetPeriodTakesEffectNextFiring) {
  Simulator sim;
  std::vector<Ticks> fired;
  PeriodicTask task(sim, 10, 10, [&](Ticks t) {
    fired.push_back(t);
    if (fired.size() == 2) task.set_period(100);
  });
  sim.run_until(250);
  EXPECT_EQ(fired, (std::vector<Ticks>{10, 20, 120, 220}));
}

TEST(PeriodicTask, SetPeriodBetweenFiringsKeepsArmedFiring) {
  // Pin the documented semantics: a period change made *between*
  // firings leaves the already-armed next firing at its time; the new
  // spacing applies from the firing after it.
  Simulator sim;
  std::vector<Ticks> fired;
  PeriodicTask task(sim, 10, 10, [&](Ticks t) { fired.push_back(t); });
  sim.run_until(15);  // fired at 10; next armed for 20
  task.set_period(100);
  sim.run_until(250);
  EXPECT_EQ(fired, (std::vector<Ticks>{10, 20, 120, 220}));
}

TEST(PeriodicTask, CallbackMayCancelSafely) {
  Simulator sim;
  int count = 0;
  PeriodicTask task(sim, 5, 5, [&](Ticks) {
    ++count;
    task.cancel();
  });
  sim.run_until(100);
  EXPECT_EQ(count, 1);
}

TEST(SweepLane, OrdersBetweenPreAndNormalAtEqualTimestamps) {
  // pre < sweep < normal at tied timestamps, across re-arms: observers
  // see pre-sweep state, and deliveries scheduled for the sweep's
  // timestamp run after it — in every engine, every period.
  Simulator sim;
  std::vector<std::string> order;
  PeriodicTask normal(sim, 10, 10, [&](Ticks) { order.push_back("n"); });
  PeriodicTask sweep(sim, 10, 10, [&](Ticks) { order.push_back("s"); },
                     TaskOrder::kSweep);
  PeriodicTask pre(sim, 10, 10, [&](Ticks) { order.push_back("p"); },
                   TaskOrder::kPre);
  sim.run_until(30);
  EXPECT_EQ(order, (std::vector<std::string>{"p", "s", "n", "p", "s", "n",
                                             "p", "s", "n"}));
}

TEST(SweepLane, FiringsAreTraceNeutral) {
  // A sweep firing bumps neither executed_events nor trace_hash — its
  // event count depends on the engine shape (one per shard), so letting
  // it into the trace would break sim_jobs invariance. Events the sweep
  // schedules land in the trace as usual.
  Simulator with_sweep;
  int fired = 0;
  with_sweep.schedule_periodic_sweep(10, 10, [&](Ticks t) {
    ++fired;
    with_sweep.schedule_at(t, [] {});  // a normal event it causes
  });
  with_sweep.run_until(50);
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(with_sweep.executed_events(), 5u);  // only the caused events

  Simulator plain;
  for (Ticks t : {10, 20, 30, 40, 50}) plain.schedule_at(t, [] {});
  plain.run_until(50);
  EXPECT_EQ(with_sweep.trace_hash(), plain.trace_hash());
}

TEST(SweepLane, CancelInsideCallbackStopsRearm) {
  Simulator sim;
  int count = 0;
  EventId id = sim.schedule_periodic_sweep(5, 5, [&](Ticks) {
    if (++count == 3) sim.cancel(id);
  });
  sim.run_until(100);
  EXPECT_EQ(count, 3);
}

}  // namespace
}  // namespace penelope::sim
