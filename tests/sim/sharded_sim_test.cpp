// Unit tests for the sharded conservative-window engine itself: merged
// views, control-plane ordering, barrier posts/stop, and — the heart of
// the K-invariance contract — the canonical merge order of staged sends
// whose arrivals collide on the same tick.
#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "common/units.hpp"
#include "net/network.hpp"
#include "sim/sharded.hpp"
#include "sim/simulator.hpp"

namespace penelope::sim {
namespace {

using common::from_millis;
using common::from_seconds;
using common::Ticks;

TEST(ShardedSim, MergedViewsMatchASerialRunOfTheSameEvents) {
  // The same multiset of event timestamps, executed by one serial engine
  // and by three shards, must report identical (executed, hash) — the
  // trace hash is an order-insensitive sum, so the split cannot show.
  std::vector<Ticks> stamps = {10, 10, 25, 40, 40, 40, 90, 1000, 5000};
  Simulator serial;
  for (Ticks at : stamps) serial.schedule_at(at, [] {});
  serial.run_until(from_seconds(1.0));

  ShardedSimulator engine(3, /*lookahead=*/100);
  for (std::size_t i = 0; i < stamps.size(); ++i) {
    engine.shard(static_cast<int>(i % 3)).schedule_at(stamps[i], [] {});
  }
  engine.run_until(from_seconds(1.0));

  EXPECT_EQ(engine.executed_events(), serial.executed_events());
  EXPECT_EQ(engine.trace_hash(), serial.trace_hash());
  EXPECT_EQ(engine.pending_events(), 0u);
  EXPECT_EQ(engine.now(), from_seconds(1.0));
}

TEST(ShardedSim, ControlEventsRunBeforeEqualTimestampShardEvents) {
  // Cluster-global mutations (faults, churn) live on the control engine
  // and must be visible to every shard event at the same timestamp, for
  // any shard count. Each shard records into its own slot — the barrier
  // handshake orders the control write before the window reads.
  ShardedSimulator engine(2, /*lookahead=*/50);
  bool flag = false;
  std::array<int, 2> saw = {-1, -1};
  engine.control().schedule_at(1000, [&flag] { flag = true; });
  engine.shard(0).schedule_at(1000, [&] { saw[0] = flag ? 1 : 0; });
  engine.shard(1).schedule_at(1000, [&] { saw[1] = flag ? 1 : 0; });
  engine.run_until(2000);
  EXPECT_EQ(saw[0], 1);
  EXPECT_EQ(saw[1], 1);
}

TEST(ShardedSim, PostToBarrierStopEndsTheRunAtTheWindowBoundary) {
  ShardedSimulator engine(2, /*lookahead=*/10);
  engine.shard(0).schedule_at(10, [&engine] {
    engine.post_to_barrier([&engine] { engine.stop(); });
  });
  bool far_ran = false;
  engine.shard(1).schedule_at(from_seconds(100.0),
                              [&far_ran] { far_ran = true; });
  engine.run_until(from_seconds(1000.0));
  EXPECT_TRUE(engine.stopped());
  EXPECT_FALSE(far_ran);
  EXPECT_EQ(engine.executed_events(), 1u);
  EXPECT_EQ(engine.pending_events(), 1u);
}

TEST(ShardedSim, ReserveTracksPendingHighWater) {
  ShardedSimulator engine(2, /*lookahead=*/10);
  engine.reserve(32);
  for (int i = 0; i < 8; ++i) {
    engine.shard(i % 2).schedule_at(100 + i, [] {});
  }
  EXPECT_EQ(engine.pending_events(), 8u);
  engine.run_until(1000);
  EXPECT_GE(engine.pending_high_water(), 4u);  // 4 per shard before run
}

/// Six sources all land messages on node 0 at the same tick (zero
/// jitter). Returns (id, duplicate) in delivery order.
std::vector<std::pair<std::uint64_t, bool>> collision_order(int shards,
                                                            bool duplicate) {
  const int n = 6;
  net::NetworkConfig cfg;
  cfg.latency.jitter_stddev = 0;  // every latency == base, exact collision
  cfg.duplicate_probability = duplicate ? 1.0 : 0.0;
  ShardedSimulator engine(shards, cfg.latency.effective_floor());
  std::vector<int> shard_of(n);
  for (int i = 0; i < n; ++i) shard_of[i] = i * shards / n;
  net::Network net(engine, cfg, shard_of);

  std::vector<std::pair<std::uint64_t, bool>> order;
  net.register_endpoint(0, [&order](const net::Message& m) {
    order.emplace_back(m.id, m.duplicate);
  });
  // Send in *descending* source order, two messages per source: the
  // staging order is the reverse of the canonical one, so the flush has
  // to actually sort.
  for (int src = n - 1; src >= 0; --src) {
    for (int k = 0; k < 2; ++k) {
      net.send(src, 0, core::Heartbeat{});
    }
  }
  engine.run_until(from_millis(1.0));
  return order;
}

TEST(ShardedSim, EqualTimestampCollisionsMergeInSourceIdOrder) {
  // All twelve arrivals collide on one tick. The canonical flush order
  // is (arrival, message id, duplicate); ids embed the source node, so
  // delivery runs src 0..5 regardless of send order — and regardless of
  // how the six sources were laid out across shards.
  auto baseline = collision_order(1, false);
  ASSERT_EQ(baseline.size(), 12u);
  for (std::size_t i = 1; i < baseline.size(); ++i) {
    EXPECT_LT(baseline[i - 1].first, baseline[i].first);
  }
  EXPECT_EQ(collision_order(2, false), baseline);
  EXPECT_EQ(collision_order(3, false), baseline);
  EXPECT_EQ(collision_order(6, false), baseline);
}

TEST(ShardedSim, DuplicateCopiesDeliverAfterTheirOriginalOnCollision) {
  // With 100% duplication and zero jitter, each copy collides with its
  // original; the canonical order puts the original first, at every
  // shard count.
  auto baseline = collision_order(1, true);
  ASSERT_EQ(baseline.size(), 24u);
  for (std::size_t i = 0; i < baseline.size(); i += 2) {
    EXPECT_EQ(baseline[i].first, baseline[i + 1].first);
    EXPECT_FALSE(baseline[i].second);
    EXPECT_TRUE(baseline[i + 1].second);
  }
  EXPECT_EQ(collision_order(2, true), baseline);
  EXPECT_EQ(collision_order(6, true), baseline);
}

}  // namespace
}  // namespace penelope::sim
