#include "sim/timer_heap.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <utility>
#include <vector>

namespace penelope::sim {
namespace {

using common::Ticks;

// Drain the heap completely, recording (at, value) for every fired
// event. Values are delivered through the callback capture, so this
// also checks that each entry fires with its own closure.
std::vector<std::pair<Ticks, int>> drain(TimerHeap& heap,
                                         std::vector<int>& sink) {
  std::vector<std::pair<Ticks, int>> fired;
  while (!heap.empty()) {
    sink.clear();
    TimerHeap::Fired f = heap.fire_top();
    f.fn(f.at);
    EXPECT_EQ(sink.size(), 1u) << "each event fires exactly once";
    if (sink.size() != 1) break;
    fired.emplace_back(f.at, sink[0]);
  }
  return fired;
}

TEST(TimerHeap, FiresInTimestampThenFifoOrder) {
  TimerHeap heap;
  std::vector<int> sink;
  std::uint64_t seq = 1;
  // Same timestamp for 5, 15, 25: insertion order must win.
  for (int i = 0; i < 32; ++i) {
    Ticks at = (i % 3 == 0) ? 100 : 100 + i;
    heap.insert(at, seq++, /*period=*/0, [&sink, i](Ticks) {
      sink.push_back(i);
    });
  }
  std::vector<std::pair<Ticks, int>> fired = drain(heap, sink);
  ASSERT_EQ(fired.size(), 32u);
  for (std::size_t i = 1; i < fired.size(); ++i) {
    EXPECT_LE(fired[i - 1].first, fired[i].first);
    if (fired[i - 1].first == fired[i].first) {
      EXPECT_LT(fired[i - 1].second, fired[i].second) << "FIFO tie-break";
    }
  }
}

TEST(TimerHeap, RandomInsertCancelMatchesReferenceOrder) {
  std::mt19937 rng(12345);
  for (int round = 0; round < 20; ++round) {
    TimerHeap heap;
    std::vector<int> sink;
    std::uint64_t seq = 1;
    std::vector<EventId> ids;
    std::vector<std::pair<Ticks, int>> reference;
    const int n = 200;
    for (int i = 0; i < n; ++i) {
      Ticks at = static_cast<Ticks>(rng() % 50);  // dense: many ties
      ids.push_back(heap.insert(at, seq++, 0, [&sink, i](Ticks) {
        sink.push_back(i);
      }));
      reference.emplace_back(at, i);
    }
    // Cancel a random ~40% subset.
    std::vector<bool> cancelled(n, false);
    for (int i = 0; i < n; ++i) {
      if (rng() % 5 < 2) {
        EXPECT_TRUE(heap.cancel(ids[static_cast<size_t>(i)]));
        EXPECT_FALSE(heap.cancel(ids[static_cast<size_t>(i)]))
            << "second cancel of the same id must fail";
        cancelled[static_cast<size_t>(i)] = true;
      }
    }
    std::erase_if(reference, [&](const std::pair<Ticks, int>& e) {
      return cancelled[static_cast<size_t>(e.second)];
    });
    std::stable_sort(reference.begin(), reference.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    EXPECT_EQ(heap.size(), reference.size());
    EXPECT_EQ(drain(heap, sink), reference);
  }
}

TEST(TimerHeap, DrainRunConversionPreservesOrderAboveThreshold) {
  // > 64 pending one-shots triggers the sorted-run conversion inside
  // fire_top; the fired order must be indistinguishable from pure heap
  // operation, including for descending insertion (forces the sort).
  TimerHeap heap;
  std::vector<int> sink;
  std::uint64_t seq = 1;
  const int n = 300;
  for (int i = 0; i < n; ++i) {
    heap.insert(static_cast<Ticks>(n - i), seq++, 0, [&sink, i](Ticks) {
      sink.push_back(i);
    });
  }
  std::vector<std::pair<Ticks, int>> fired = drain(heap, sink);
  ASSERT_EQ(fired.size(), static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(fired[static_cast<size_t>(i)].first, i + 1);
    EXPECT_EQ(fired[static_cast<size_t>(i)].second, n - 1 - i);
  }
}

TEST(TimerHeap, CancelWorksWhileRunResident) {
  TimerHeap heap;
  std::vector<int> sink;
  std::uint64_t seq = 1;
  std::vector<EventId> ids;
  const int n = 128;  // above the conversion threshold
  for (int i = 0; i < n; ++i) {
    ids.push_back(heap.insert(i, seq++, 0, [&sink, i](Ticks) {
      sink.push_back(i);
    }));
  }
  // Fire once to trigger conversion; everything else is now in the run.
  sink.clear();
  TimerHeap::Fired first = heap.fire_top();
  first.fn(first.at);
  EXPECT_EQ(sink, std::vector<int>{0});
  // Cancel run-resident entries: the next one (head skip path) and a
  // couple in the middle (lazy skip path).
  EXPECT_TRUE(heap.cancel(ids[1]));
  EXPECT_TRUE(heap.cancel(ids[50]));
  EXPECT_TRUE(heap.cancel(ids[51]));
  EXPECT_FALSE(heap.contains(ids[50]));
  EXPECT_EQ(heap.size(), static_cast<size_t>(n - 4));
  std::vector<std::pair<Ticks, int>> fired = drain(heap, sink);
  EXPECT_EQ(fired.size(), static_cast<size_t>(n - 4));
  for (const auto& [at, i] : fired) {
    EXPECT_NE(i, 1);
    EXPECT_NE(i, 50);
    EXPECT_NE(i, 51);
  }
}

TEST(TimerHeap, InsertDuringDrainInterleavesCorrectly) {
  TimerHeap heap;
  std::vector<int> sink;
  std::uint64_t seq = 1;
  const int n = 100;
  for (int i = 0; i < n; ++i) {
    heap.insert(10 * i, seq++, 0, [&sink, i](Ticks) { sink.push_back(i); });
  }
  // Drain a third, then insert events that land between the remaining
  // run entries — they go to the heap, and fire_top must merge the two
  // sources in global (at, seq) order.
  std::vector<Ticks> fired_at;
  for (int i = 0; i < n / 3; ++i) {
    TimerHeap::Fired f = heap.fire_top();
    f.fn(f.at);
    fired_at.push_back(f.at);
  }
  Ticks resume = fired_at.back();
  for (int i = 0; i < 50; ++i) {
    heap.insert(resume + 5 + 10 * i, seq++, 0, [&sink](Ticks) {
      sink.push_back(-1);
    });
  }
  while (!heap.empty()) {
    TimerHeap::Fired f = heap.fire_top();
    f.fn(f.at);
    fired_at.push_back(f.at);
  }
  EXPECT_TRUE(std::is_sorted(fired_at.begin(), fired_at.end()));
  EXPECT_EQ(fired_at.size(), static_cast<size_t>(n + 50));
}

TEST(TimerHeap, SlotReuseBumpsGeneration) {
  TimerHeap heap;
  std::uint64_t seq = 1;
  EventId a = heap.insert(10, seq++, 0, [](Ticks) {});
  ASSERT_TRUE(heap.cancel(a));
  EventId b = heap.insert(20, seq++, 0, [](Ticks) {});
  EXPECT_NE(a, b) << "reused slot must mint a distinct id";
  EXPECT_FALSE(heap.contains(a));
  EXPECT_TRUE(heap.contains(b));
  EXPECT_FALSE(heap.cancel(a)) << "stale id must not cancel the new event";
  EXPECT_TRUE(heap.contains(b));
}

TEST(TimerHeap, SetPeriodRefusesOneShots) {
  TimerHeap heap;
  std::uint64_t seq = 1;
  EventId one_shot = heap.insert(10, seq++, 0, [](Ticks) {});
  EventId periodic = heap.insert(10, seq++, 7, [](Ticks) {});
  EXPECT_FALSE(heap.set_period(one_shot, 5));
  EXPECT_TRUE(heap.set_period(periodic, 5));
  EXPECT_FALSE(heap.set_period(kInvalidEventId, 5));
}

TEST(TimerHeap, PeriodicRearmKeepsIdAndOrder) {
  TimerHeap heap;
  std::vector<Ticks> ticks;
  std::uint64_t seq = 1;
  EventId id = heap.insert(10, seq++, 10, [&ticks](Ticks t) {
    ticks.push_back(t);
  });
  for (int i = 0; i < 5; ++i) {
    TimerHeap::Fired f = heap.fire_top();
    EXPECT_EQ(f.id, id);
    EXPECT_TRUE(f.periodic);
    f.fn(f.at);
    ASSERT_TRUE(heap.rearm(id, f.at, seq++, std::move(f.fn)));
  }
  EXPECT_EQ(ticks, (std::vector<Ticks>{10, 20, 30, 40, 50}));
  EXPECT_TRUE(heap.contains(id));
  EXPECT_TRUE(heap.cancel(id));
  EXPECT_TRUE(heap.empty());
}

TEST(TimerHeap, PeriodicTimersSurviveDrainConversion) {
  // Periodic timers stay heap-resident across the one-shot conversion;
  // interleaved firing order must hold with > threshold one-shots.
  TimerHeap heap;
  std::vector<Ticks> fired_at;
  std::uint64_t seq = 1;
  EventId tick = heap.insert(5, seq++, 10, [](Ticks) {});
  for (int i = 0; i < 100; ++i) {
    heap.insert(i, seq++, 0, [](Ticks) {});
  }
  for (int i = 0; i < 60; ++i) {
    TimerHeap::Fired f = heap.fire_top();
    f.fn(f.at);
    fired_at.push_back(f.at);
    if (f.periodic) {
      ASSERT_TRUE(heap.rearm(f.id, f.at, seq++, std::move(f.fn)));
    }
  }
  EXPECT_TRUE(std::is_sorted(fired_at.begin(), fired_at.end()));
  EXPECT_TRUE(heap.contains(tick));
}

TEST(TimerHeap, SizeAndMinAtTrackChurn) {
  TimerHeap heap;
  std::uint64_t seq = 1;
  EXPECT_TRUE(heap.empty());
  EXPECT_EQ(heap.size(), 0u);
  EventId a = heap.insert(30, seq++, 0, [](Ticks) {});
  EventId b = heap.insert(10, seq++, 0, [](Ticks) {});
  heap.insert(20, seq++, 0, [](Ticks) {});
  EXPECT_EQ(heap.size(), 3u);
  EXPECT_EQ(heap.min_at(), 10);
  EXPECT_TRUE(heap.cancel(b));
  EXPECT_EQ(heap.size(), 2u);
  EXPECT_EQ(heap.min_at(), 20);
  EXPECT_TRUE(heap.cancel(a));
  TimerHeap::Fired f = heap.fire_top();
  EXPECT_EQ(f.at, 20);
  EXPECT_TRUE(heap.empty());
}

}  // namespace
}  // namespace penelope::sim
