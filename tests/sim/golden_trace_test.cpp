// Golden-trace determinism pin for the event engine.
//
// The baked constants were captured from the pre-rewrite engine
// (std::priority_queue + tombstone-set scheduler) running this exact
// configuration: a 20-node Penelope cluster with 2% message loss, so the
// run exercises the request/timeout/cancel churn that dominates real
// workloads, plus periodic decider/audit/trace timers. The rewritten
// engine (indexed 4-ary heap, drain run, native periodic timers) must
// execute the *identical* event sequence — same count, same per-event
// timestamps in order (trace_hash folds every executed timestamp, in
// execution order, through FNV-1a), same end state. Any engine change
// that reorders equal-timestamp events, drops a firing, or shifts a
// re-arm breaks this test even if every behavioral test still passes.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "sim/simulator.hpp"

namespace penelope {
namespace {

cluster::Cluster make_golden_cluster() {
  cluster::ClusterConfig cc;
  cc.manager = cluster::ManagerKind::kPenelope;
  cc.n_nodes = 20;
  cc.per_socket_cap_watts = 60.0;
  cc.network.loss_probability = 0.02;  // force timeout + cancel churn
  cc.seed = 42;
  auto profiles = cluster::make_pair_workloads(
      workload::NpbApp::kEP, workload::NpbApp::kDC, cc.n_nodes, {});
  return cluster::Cluster(cc, std::move(profiles));
}

TEST(GoldenTrace, TwentyNodePenelopeRunMatchesPreRewriteEngine) {
  cluster::Cluster cl = make_golden_cluster();
  cl.run_for(30.0);
  const sim::Simulator& sim = cl.simulator();
  EXPECT_EQ(sim.executed_events(), 1662u);
  EXPECT_EQ(sim.trace_hash(), 0x70f7fa668d936081ull);
  EXPECT_EQ(sim.now(), 30000000);
  EXPECT_EQ(sim.pending_events(), 21u);
  EXPECT_EQ(cl.metrics().requests_sent(), 348u);
  EXPECT_EQ(cl.metrics().timeouts(), 11u);
}

TEST(GoldenTrace, RepeatedRunsAreBitIdentical) {
  cluster::Cluster a = make_golden_cluster();
  cluster::Cluster b = make_golden_cluster();
  a.run_for(30.0);
  b.run_for(30.0);
  EXPECT_EQ(a.simulator().executed_events(), b.simulator().executed_events());
  EXPECT_EQ(a.simulator().trace_hash(), b.simulator().trace_hash());
  EXPECT_EQ(a.metrics().requests_sent(), b.metrics().requests_sent());
}

}  // namespace
}  // namespace penelope
