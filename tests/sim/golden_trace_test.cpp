// Golden-trace determinism pin for the event engine.
//
// The baked constants pin the exact event sequence of this
// configuration: a 20-node Penelope cluster with 2% message loss, so the
// run exercises the request/timeout/cancel churn that dominates real
// workloads, plus periodic decider/audit/trace timers. Any engine change
// that drops a firing, shifts a re-arm, or perturbs an RNG draw breaks
// this test even if every behavioral test still passes.
//
// Rebaselined twice since the original pre-rewrite capture: once for the
// indexed 4-ary heap engine (identical sequence, new hash constant), and
// once for the sharded-execution PR, which (a) made trace_hash an
// order-insensitive sum of murmur3-mixed timestamps so shard-local
// hashes merge by addition, and (b) moved network latency/loss draws and
// message ids onto per-source-node streams so one node's sends cannot
// perturb another's draws — a prerequisite for shard-layout-invariant
// traces, and a deliberate (small) change to the serial sequence.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "sim/simulator.hpp"

namespace penelope {
namespace {

cluster::Cluster make_golden_cluster() {
  cluster::ClusterConfig cc;
  cc.manager = cluster::ManagerKind::kPenelope;
  cc.n_nodes = 20;
  cc.per_socket_cap_watts = 60.0;
  cc.network.loss_probability = 0.02;  // force timeout + cancel churn
  cc.seed = 42;
  auto profiles = cluster::make_pair_workloads(
      workload::NpbApp::kEP, workload::NpbApp::kDC, cc.n_nodes, {});
  return cluster::Cluster(cc, std::move(profiles));
}

TEST(GoldenTrace, TwentyNodePenelopeRunMatchesPreRewriteEngine) {
  cluster::Cluster cl = make_golden_cluster();
  cl.run_for(30.0);
  const sim::Simulator& sim = cl.simulator();
  EXPECT_EQ(sim.executed_events(), 1665u);
  EXPECT_EQ(sim.trace_hash(), 0x868a597206f3db95ull);
  EXPECT_EQ(sim.now(), 30000000);
  EXPECT_EQ(sim.pending_events(), 22u);
  EXPECT_EQ(cl.metrics().requests_sent(), 352u);
  EXPECT_EQ(cl.metrics().timeouts(), 15u);
}

TEST(GoldenTrace, RepeatedRunsAreBitIdentical) {
  cluster::Cluster a = make_golden_cluster();
  cluster::Cluster b = make_golden_cluster();
  a.run_for(30.0);
  b.run_for(30.0);
  EXPECT_EQ(a.simulator().executed_events(), b.simulator().executed_events());
  EXPECT_EQ(a.simulator().trace_hash(), b.simulator().trace_hash());
  EXPECT_EQ(a.metrics().requests_sent(), b.metrics().requests_sent());
}

}  // namespace
}  // namespace penelope
