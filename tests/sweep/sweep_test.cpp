#include "sweep/sweep.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "sweep/parallel.hpp"

namespace penelope::sweep {
namespace {

// --- parallel_map -----------------------------------------------------

TEST(ParallelMap, PreservesIndexOrder) {
  auto square = [](std::size_t i) { return static_cast<int>(i * i); };
  auto serial = parallel_map(64, 1, square);
  auto parallel = parallel_map(64, 4, square);
  ASSERT_EQ(serial.size(), 64u);
  EXPECT_EQ(serial, parallel);
  for (std::size_t i = 0; i < serial.size(); ++i)
    EXPECT_EQ(serial[i], static_cast<int>(i * i));
}

TEST(ParallelMap, EmptyInputYieldsEmptyOutput) {
  auto out = parallel_map(0, 4, [](std::size_t i) { return i; });
  EXPECT_TRUE(out.empty());
}

TEST(ParallelMap, MoreJobsThanItems) {
  auto out = parallel_map(3, 16, [](std::size_t i) { return i + 1; });
  EXPECT_EQ(out, (std::vector<std::size_t>{1, 2, 3}));
}

TEST(ParallelMap, ShuffledClaimOrderDoesNotMoveResults) {
  std::vector<std::size_t> order(32);
  std::iota(order.begin(), order.end(), 0u);
  // Fixed shuffle (no live randomness: determinism is the point).
  std::reverse(order.begin(), order.end());
  std::swap(order[3], order[17]);
  std::swap(order[0], order[9]);
  auto id = [](std::size_t i) { return i; };
  auto shuffled = parallel_map(32, 4, id, &order);
  auto serial = parallel_map(32, 1, id);
  EXPECT_EQ(shuffled, serial);
}

TEST(ParallelMap, PropagatesFirstException) {
  auto boom = [](std::size_t i) -> int {
    if (i == 7) throw std::runtime_error("item 7 failed");
    return static_cast<int>(i);
  };
  EXPECT_THROW(parallel_map(16, 4, boom), std::runtime_error);
  EXPECT_THROW(parallel_map(16, 1, boom), std::runtime_error);
}

TEST(ParallelMap, ResolveJobsDefaults) {
  EXPECT_GE(resolve_jobs(0), 1);
  EXPECT_EQ(resolve_jobs(3), 3);
  EXPECT_EQ(resolve_jobs(1), 1);
}

// --- effective_sim_jobs: the oversubscription guard -------------------

TEST(EffectiveSimJobs, SplitsHardwareAcrossSweepWorkers) {
  // jobs=4 sweep x sim_jobs=8 runs used to spawn 32 threads; on an
  // 8-way host each run now gets 8/4 = 2.
  EXPECT_EQ(effective_sim_jobs(4, 8, 8), 2);
  EXPECT_EQ(effective_sim_jobs(2, 8, 8), 4);
  EXPECT_EQ(effective_sim_jobs(1, 8, 8), 8);
}

TEST(EffectiveSimJobs, RequestBelowTheCapPassesThrough) {
  EXPECT_EQ(effective_sim_jobs(2, 3, 16), 3);
  EXPECT_EQ(effective_sim_jobs(1, 2, 64), 2);
}

TEST(EffectiveSimJobs, SerialRunsAreNeverTouched) {
  EXPECT_EQ(effective_sim_jobs(4, 1, 8), 1);
  EXPECT_EQ(effective_sim_jobs(4, 0, 8), 0);
}

TEST(EffectiveSimJobs, NeverClampsBelowOne) {
  // More sweep workers than cores: each run still gets one engine
  // thread (the serial engine), not zero.
  EXPECT_EQ(effective_sim_jobs(16, 8, 2), 1);
  EXPECT_EQ(effective_sim_jobs(8, 4, 1), 1);
}

TEST(EffectiveSimJobs, DegenerateWorkerCountsAreSanitized) {
  EXPECT_EQ(effective_sim_jobs(0, 8, 4), 4);
  EXPECT_EQ(effective_sim_jobs(-3, 8, 4), 4);
}

TEST(Sweep, SimJobsClampIsOutputNeutral) {
  // The guard changes thread counts only, never bytes: a sweep whose
  // runs request sim_jobs=4 produces identical traces at any jobs=N
  // (each run's trace is pinned across shard counts by the SimJobs
  // suite; this checks the clamp plumbing preserves that end to end).
  SweepSpec spec;
  cluster::ClusterConfig cc;
  cc.n_nodes = 6;
  cc.sim_jobs = 4;
  spec.configs = {cc};
  spec.managers = {cluster::ManagerKind::kPenelope};
  spec.seeds = {1, 2};
  spec.app_a = workload::NpbApp::kEP;
  spec.app_b = workload::NpbApp::kDC;
  spec.npb.duration_scale = 0.05;
  auto serial = run_sweep(spec, 1);
  auto parallel = run_sweep(spec, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].trace_hash, parallel[i].trace_hash) << "run " << i;
    EXPECT_EQ(serial[i].executed_events, parallel[i].executed_events);
  }
}

// --- sweep over cluster runs -----------------------------------------

SweepSpec small_spec() {
  SweepSpec spec;
  cluster::ClusterConfig cc;
  cc.n_nodes = 6;
  spec.configs = {cc};
  spec.managers = {cluster::ManagerKind::kPenelope,
                   cluster::ManagerKind::kCentral};
  spec.seeds = {1, 2};
  spec.app_a = workload::NpbApp::kEP;
  spec.app_b = workload::NpbApp::kDC;
  spec.npb.duration_scale = 0.05;
  return spec;
}

TEST(Sweep, ExpansionOrderIsCanonical) {
  SweepSpec spec = small_spec();
  auto runs = spec.expand();
  ASSERT_EQ(runs.size(), 4u);
  // configs > managers > seeds, seeds innermost.
  EXPECT_EQ(runs[0].config.manager, cluster::ManagerKind::kPenelope);
  EXPECT_EQ(runs[0].config.seed, 1u);
  EXPECT_EQ(runs[1].config.manager, cluster::ManagerKind::kPenelope);
  EXPECT_EQ(runs[1].config.seed, 2u);
  EXPECT_EQ(runs[2].config.manager, cluster::ManagerKind::kCentral);
  EXPECT_EQ(runs[2].config.seed, 1u);
  EXPECT_EQ(runs[3].config.manager, cluster::ManagerKind::kCentral);
  EXPECT_EQ(runs[3].config.seed, 2u);
  for (std::size_t i = 0; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i].index, i);
    EXPECT_EQ(runs[i].npb.seed, runs[i].config.seed);
  }
}

TEST(Sweep, ParallelTableIsByteIdenticalToSerial) {
  SweepSpec spec = small_spec();

  auto serial = run_sweep(spec, 1);
  auto parallel = run_sweep(spec, 4);

  // Shuffled completion order: last run starts first.
  std::vector<std::size_t> order(spec.size());
  std::iota(order.begin(), order.end(), 0u);
  std::reverse(order.begin(), order.end());
  auto shuffled = run_sweep(spec, 4, &order);

  ASSERT_EQ(serial.size(), spec.size());
  ASSERT_EQ(parallel.size(), spec.size());
  ASSERT_EQ(shuffled.size(), spec.size());

  // Per-run trace hashes match run-for-run: each run executed the exact
  // same event sequence no matter which thread hosted it.
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].trace_hash, parallel[i].trace_hash) << "run " << i;
    EXPECT_EQ(serial[i].trace_hash, shuffled[i].trace_hash) << "run " << i;
    EXPECT_EQ(serial[i].executed_events, parallel[i].executed_events);
    EXPECT_EQ(serial[i].executed_events, shuffled[i].executed_events);
    EXPECT_GT(serial[i].executed_events, 0u);
  }

  // The rendered tables — the user-visible observable — are
  // byte-identical, CSV included.
  std::string serial_text = sweep_table(spec, serial).render();
  EXPECT_EQ(serial_text, sweep_table(spec, parallel).render());
  EXPECT_EQ(serial_text, sweep_table(spec, shuffled).render());
  std::string serial_csv = sweep_table(spec, serial).to_csv();
  EXPECT_EQ(serial_csv, sweep_table(spec, parallel).to_csv());
  EXPECT_EQ(serial_csv, sweep_table(spec, shuffled).to_csv());
}

TEST(Sweep, DistinctSeedsProduceDistinctTraces) {
  SweepSpec spec = small_spec();
  spec.managers = {cluster::ManagerKind::kPenelope};
  auto results = run_sweep(spec, 2);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_NE(results[0].trace_hash, results[1].trace_hash);
}

TEST(Sweep, ScaleSweepMatchesSerialCalls) {
  std::vector<cluster::ScaleConfig> points;
  for (int nodes : {8, 16}) {
    cluster::ScaleConfig sc;
    sc.n_nodes = nodes;
    sc.window_seconds = 5.0;
    sc.burst_at_seconds = 1.0;
    sc.seed = 3;
    points.push_back(sc);
  }
  auto swept = run_scale_sweep(points, 4);
  ASSERT_EQ(swept.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    cluster::ScaleResult direct = run_scale_experiment(points[i]);
    EXPECT_DOUBLE_EQ(swept[i].available_watts, direct.available_watts);
    EXPECT_DOUBLE_EQ(swept[i].shifted_watts, direct.shifted_watts);
    EXPECT_DOUBLE_EQ(swept[i].median_redistribution_s,
                     direct.median_redistribution_s);
    EXPECT_EQ(swept[i].requests_sent, direct.requests_sent);
    EXPECT_EQ(swept[i].timeouts, direct.timeouts);
  }
}

}  // namespace
}  // namespace penelope::sweep
