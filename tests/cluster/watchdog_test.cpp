// The liveness watchdog: if sim-time advances `watchdog_s` seconds with
// no decider stepping anywhere while live incomplete nodes exist, the
// decider plane is wedged — dump diagnostics and stop (or abort in
// chaos jobs). The signal is sound because every live node's periodic
// tick records a decider step even when it has nothing to trade: steps
// only go flat when every incomplete node's management plane is gone.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"

namespace penelope::cluster {
namespace {

ClusterConfig watchdog_config() {
  ClusterConfig cc;
  cc.manager = ManagerKind::kPenelope;
  cc.n_nodes = 4;
  cc.per_socket_cap_watts = 70.0;
  cc.max_seconds = 600.0;
  cc.seed = 7;
  cc.audit_interval = common::from_seconds(0.5);
  return cc;
}

workload::NpbConfig watchdog_npb() {
  workload::NpbConfig cfg;
  cfg.duration_scale = 0.15;
  cfg.demand_jitter_frac = 0.02;
  cfg.seed = 11;
  return cfg;
}

Cluster make_cluster(const ClusterConfig& cc) {
  return Cluster(cc, make_pair_workloads(workload::NpbApp::kEP,
                                         workload::NpbApp::kDC,
                                         cc.n_nodes, watchdog_npb()));
}

TEST(Watchdog, AllManagementDeadWedgesTheRun) {
  // Kill every node's management plane early: workloads keep burning at
  // frozen caps, no decider ever steps again, and the run would crawl
  // to its deadline. The watchdog must call the wedge within its window
  // and stop the run instead.
  ClusterConfig cc = watchdog_config();
  cc.watchdog_s = 3.0;
  for (int i = 0; i < cc.n_nodes; ++i) {
    cc.faults.push_back(FaultEvent{FaultEvent::Kind::kKillManagement,
                                   common::from_seconds(2.0), i});
  }
  Cluster cluster = make_cluster(cc);
  RunResult result = cluster.run();
  EXPECT_TRUE(result.wedged);
  EXPECT_TRUE(cluster.wedged());
  EXPECT_FALSE(result.all_completed);
  // Stopped by the watchdog soon after the window, not at max_seconds.
  EXPECT_LT(result.runtime_seconds, 30.0);
}

TEST(Watchdog, HealthyRunNeverTripsAndStaysTraceIdentical) {
  // Arming the watchdog must not perturb the simulation: it piggybacks
  // the existing audit task and schedules nothing of its own, so a
  // healthy run's trace hash is bit-identical with it on or off.
  ClusterConfig off = watchdog_config();
  Cluster cl_off = make_cluster(off);
  RunResult r_off = cl_off.run();

  ClusterConfig on = watchdog_config();
  on.watchdog_s = 5.0;
  Cluster cl_on = make_cluster(on);
  RunResult r_on = cl_on.run();

  EXPECT_TRUE(r_off.all_completed);
  EXPECT_TRUE(r_on.all_completed);
  EXPECT_FALSE(r_on.wedged);
  EXPECT_EQ(cl_off.trace_hash(), cl_on.trace_hash());
  EXPECT_EQ(cl_off.executed_events(), cl_on.executed_events());
}

TEST(Watchdog, SingleManagementKillIsNotAWedge) {
  // One dead management plane leaves three live deciders stepping every
  // period: progress continues, the watchdog stays quiet, and the run
  // completes (the dead node's workload finishes at its frozen cap).
  ClusterConfig cc = watchdog_config();
  cc.watchdog_s = 3.0;
  cc.faults.push_back(FaultEvent{FaultEvent::Kind::kKillManagement,
                                 common::from_seconds(2.0), 1});
  Cluster cluster = make_cluster(cc);
  RunResult result = cluster.run();
  EXPECT_FALSE(result.wedged);
  EXPECT_TRUE(result.all_completed);
}

}  // namespace
}  // namespace penelope::cluster
