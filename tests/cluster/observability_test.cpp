// Observability-on determinism and end-to-end sampler behaviour. The
// telemetry subsystem's contract is two-sided: with everything off the
// golden trace is untouched (pinned by SimJobs.* and the
// telemetry.ZeroOverheadGate binary); with sampling and flow tracing ON
// the run is still deterministic — the control-plane sampler fires at
// barriers, so its events land at identical timestamps for every
// sim_jobs value, and the series/health/flow content matches
// bit-for-bit too.
#include <gtest/gtest.h>

#include <cmath>

#include "cluster/cluster.hpp"
#include "cluster/scale.hpp"

namespace penelope::cluster {
namespace {

ClusterConfig observed_config(int jobs) {
  ClusterConfig cc;
  cc.manager = ManagerKind::kPenelope;
  cc.n_nodes = 20;
  cc.per_socket_cap_watts = 60.0;
  cc.network.loss_probability = 0.02;
  cc.seed = 42;
  cc.sim_jobs = jobs;
  cc.series_interval = common::from_millis(250);
  cc.series_capacity = 256;
  cc.flow_tracer_capacity = 4096;
  cc.flight_recorder_capacity = 4096;
  return cc;
}

struct ObservedRun {
  std::uint64_t hash = 0;
  std::uint64_t executed = 0;
  std::string series_csv;
  std::string health_csv;
  std::uint64_t flow_hops = 0;

  bool operator==(const ObservedRun&) const = default;
};

ObservedRun run_observed(ClusterConfig cc, double seconds) {
  Cluster cluster(cc, make_pair_workloads(workload::NpbApp::kEP,
                                          workload::NpbApp::kDC,
                                          cc.n_nodes, {}));
  cluster.run_for(seconds);
  ObservedRun r;
  r.hash = cluster.trace_hash();
  r.executed = cluster.executed_events();
  r.series_csv = cluster.series().to_csv();
  r.health_csv = cluster.health().to_csv();
  r.flow_hops = cluster.metrics().tracer().recorded();
  return r;
}

TEST(Observability, SamplingOnIsBitIdenticalAcrossShardCounts) {
  ObservedRun serial = run_observed(observed_config(1), 20.0);
  EXPECT_GT(serial.executed, 0u);
  for (int jobs : {2, 4}) {
    EXPECT_EQ(run_observed(observed_config(jobs), 20.0), serial)
        << "jobs=" << jobs;
  }
}

TEST(Observability, FederatedSamplingOnIsBitIdenticalAcrossShardCounts) {
  auto fed = [](int jobs) {
    ClusterConfig cc = observed_config(jobs);
    cc.n_nodes = 64;
    cc.federation_pools = 8;
    cc.federation_fanout = 4;
    return cc;
  };
  ObservedRun serial = run_observed(fed(1), 15.0);
  EXPECT_GT(serial.flow_hops, 0u)
      << "federated run with tracing on must observe flow hops";
  for (int jobs : {2, 4}) {
    EXPECT_EQ(run_observed(fed(jobs), 15.0), serial) << "jobs=" << jobs;
  }
}

TEST(Observability, SamplerPopulatesSeriesAndHealth) {
  ClusterConfig cc = observed_config(1);
  Cluster cluster(cc, make_pair_workloads(workload::NpbApp::kEP,
                                          workload::NpbApp::kDC,
                                          cc.n_nodes, {}));
  cluster.run_for(10.0);

  // 10 s at 250 ms cadence: ~40 probes.
  EXPECT_GE(cluster.health().probes().size(), 35u);
  const telemetry::TimeSeries* delivered =
      cluster.series().find("delivered_watts");
  ASSERT_NE(delivered, nullptr);
  EXPECT_GE(delivered->total_samples(), 35u);
  EXPECT_GT(delivered->windows().back().last, 0.0);
  const telemetry::TimeSeries* jain = cluster.series().find("jain_index");
  ASSERT_NE(jain, nullptr);
  for (const auto& w : jain->windows()) {
    EXPECT_GE(w.min, 0.0);
    EXPECT_LE(w.max, 1.0 + 1e-12);
  }
  // Conservation drift visible to the monitor must stay at float noise,
  // matching the audit invariant.
  for (const auto& p : cluster.health().probes()) {
    EXPECT_LT(std::abs(p.conservation_drift), 1e-6);
  }
}

TEST(Observability, SamplerOffLeavesSeriesAndHealthEmpty) {
  ClusterConfig cc = observed_config(1);
  cc.series_interval = 0;
  Cluster cluster(cc, make_pair_workloads(workload::NpbApp::kEP,
                                          workload::NpbApp::kDC,
                                          cc.n_nodes, {}));
  cluster.run_for(5.0);
  EXPECT_FALSE(cluster.series().enabled());
  EXPECT_TRUE(cluster.series().series().empty());
  EXPECT_TRUE(cluster.health().probes().empty());
}

TEST(Observability, ClassicPathRecordsGrantChains) {
  // The classic (non-federated) Penelope path records peer-to-peer
  // grant chains: a grant's flow is minted at the serving node and
  // terminates when the requester applies the watts.
  ClusterConfig cc = observed_config(1);
  Cluster cluster(cc, make_pair_workloads(workload::NpbApp::kEP,
                                          workload::NpbApp::kDC,
                                          cc.n_nodes, {}));
  cluster.run_for(15.0);
  auto hops = cluster.metrics().tracer().snapshot();
  ASSERT_FALSE(hops.empty());
  bool saw_source = false;
  bool saw_sink = false;
  for (const auto& hop : hops) {
    if (hop.kind == telemetry::FlowHopKind::kSource) saw_source = true;
    if (hop.kind == telemetry::FlowHopKind::kSink) saw_sink = true;
    EXPECT_GT(hop.watts, 0.0);
  }
  EXPECT_TRUE(saw_source);
  EXPECT_TRUE(saw_sink);
}

TEST(Observability, ScaleExperimentMeasuresConvergence) {
  // A small completion burst: half the nodes release their watts at
  // ~3 s, Jain dips while the excess is clumped, then recovers as the
  // hungry half absorbs it. The health monitor must see the dip and
  // report a finite convergence time within the window. At 32 nodes the
  // peer-to-peer redistribution is fast, so the dip is shallow — epsilon
  // is tight here; the run is deterministic, so this is not flaky.
  ScaleConfig sc;
  sc.n_nodes = 32;
  sc.burst_at_seconds = 3.0;
  sc.window_seconds = 30.0;
  sc.series_interval = common::from_millis(200);
  sc.health_epsilon = 0.001;
  ScaleResult r = run_scale_experiment(sc);
  EXPECT_TRUE(r.health_sampled);
  EXPECT_LT(r.min_jain, 1.0 - sc.health_epsilon)
      << "the burst must dent Jain's index";
  EXPECT_TRUE(r.converged);
  EXPECT_GT(r.convergence_s, 0.0);
  EXPECT_LT(r.convergence_s, sc.window_seconds);
}

TEST(Observability, ScaleKnobsDefaultOff) {
  ScaleConfig sc;
  sc.n_nodes = 16;
  sc.window_seconds = 5.0;
  ScaleResult r = run_scale_experiment(sc);
  EXPECT_FALSE(r.health_sampled);
  EXPECT_FALSE(r.converged);
}

}  // namespace
}  // namespace penelope::cluster
