// Scale-study machinery (§4.5): completion bursts, redistribution-time
// analysis, and the queueing behaviours Figures 4-8 are built on —
// exercised at small scale so the suite stays fast.
#include "cluster/scale.hpp"

#include <gtest/gtest.h>

namespace penelope::cluster {
namespace {

ScaleConfig small_scale(ManagerKind manager, double freq_hz = 1.0) {
  ScaleConfig sc;
  sc.manager = manager;
  sc.n_nodes = 16;
  sc.frequency_hz = freq_hz;
  sc.burst_at_seconds = 4.0;
  sc.window_seconds = 40.0;
  sc.seed = 5;
  return sc;
}

TEST(AnalyzeRedistribution, ComputesCrossingTimes) {
  ClusterMetrics metrics;
  metrics.record_release(common::from_seconds(10.0), 100.0, 0);
  metrics.record_apply(common::from_seconds(11.0), 30.0, 1);
  metrics.record_apply(common::from_seconds(12.0), 30.0, 1);
  metrics.record_apply(common::from_seconds(14.0), 40.0, 2);
  RedistributionResult half =
      analyze_redistribution(metrics, common::from_seconds(10.0), 0.5);
  EXPECT_DOUBLE_EQ(half.available_watts, 100.0);
  ASSERT_TRUE(half.time_to_fraction_s.has_value());
  EXPECT_DOUBLE_EQ(*half.time_to_fraction_s, 2.0);  // 60 W at t=12
  RedistributionResult full =
      analyze_redistribution(metrics, common::from_seconds(10.0), 1.0);
  ASSERT_TRUE(full.time_to_fraction_s.has_value());
  EXPECT_DOUBLE_EQ(*full.time_to_fraction_s, 4.0);
}

TEST(AnalyzeRedistribution, NeverReachedIsEmpty) {
  ClusterMetrics metrics;
  metrics.record_release(common::from_seconds(1.0), 100.0, 0);
  metrics.record_apply(common::from_seconds(2.0), 10.0, 1);
  RedistributionResult full =
      analyze_redistribution(metrics, common::from_seconds(1.0), 1.0);
  EXPECT_FALSE(full.time_to_fraction_s.has_value());
  EXPECT_DOUBLE_EQ(full.shifted_watts, 10.0);
}

TEST(AnalyzeRedistribution, EventsBeforeBurstIgnored) {
  ClusterMetrics metrics;
  metrics.record_release(common::from_seconds(1.0), 50.0, 0);
  metrics.record_apply(common::from_seconds(2.0), 50.0, 1);
  metrics.record_release(common::from_seconds(10.0), 100.0, 0);
  metrics.record_apply(common::from_seconds(13.0), 100.0, 1);
  RedistributionResult r =
      analyze_redistribution(metrics, common::from_seconds(10.0), 1.0);
  EXPECT_DOUBLE_EQ(r.available_watts, 100.0);
  ASSERT_TRUE(r.time_to_fraction_s.has_value());
  EXPECT_DOUBLE_EQ(*r.time_to_fraction_s, 3.0);
}

TEST(AnalyzeRedistribution, NoReleasesGivesEmptyResult) {
  ClusterMetrics metrics;
  RedistributionResult r = analyze_redistribution(metrics, 0, 0.5);
  EXPECT_DOUBLE_EQ(r.available_watts, 0.0);
  EXPECT_FALSE(r.time_to_fraction_s.has_value());
}

TEST(ScaleExperiment, PenelopeRedistributesBurst) {
  ScaleResult result = run_scale_experiment(
      small_scale(ManagerKind::kPenelope));
  EXPECT_GT(result.available_watts, 0.0);
  EXPECT_TRUE(result.median_reached);
  EXPECT_GT(result.shifted_watts, result.available_watts * 0.5);
  EXPECT_GT(result.turnaround_samples, 0u);
  EXPECT_LT(result.max_conservation_error, 1e-6);
}

TEST(ScaleExperiment, CentralRedistributesBurst) {
  ScaleResult result = run_scale_experiment(
      small_scale(ManagerKind::kCentral));
  EXPECT_GT(result.available_watts, 0.0);
  EXPECT_TRUE(result.median_reached);
  EXPECT_TRUE(result.total_reached);
  EXPECT_LT(result.max_conservation_error, 1e-6);
}

TEST(ScaleExperiment, CentralIsFasterAtLowScaleLowFrequency) {
  // §3.3: "centralized approaches will converge faster than peer-to-peer
  // power management systems at low scale" — the global cache finds all
  // excess immediately, random probing does not.
  ScaleResult penelope =
      run_scale_experiment(small_scale(ManagerKind::kPenelope));
  ScaleResult central =
      run_scale_experiment(small_scale(ManagerKind::kCentral));
  ASSERT_TRUE(penelope.median_reached);
  ASSERT_TRUE(central.median_reached);
  EXPECT_LT(central.median_redistribution_s,
            penelope.median_redistribution_s);
}

TEST(ScaleExperiment, PenelopeImprovesWithFrequency) {
  // Figure 4's headline: a small increase in frequency causes a major
  // reduction in Penelope's redistribution time.
  ScaleResult slow = run_scale_experiment(
      small_scale(ManagerKind::kPenelope, /*freq_hz=*/1.0));
  ScaleResult fast = run_scale_experiment(
      small_scale(ManagerKind::kPenelope, /*freq_hz=*/8.0));
  ASSERT_TRUE(slow.median_reached);
  ASSERT_TRUE(fast.median_reached);
  EXPECT_LT(fast.median_redistribution_s,
            slow.median_redistribution_s * 0.5);
}

TEST(ScaleExperiment, TurnaroundSaneOnSmallCluster) {
  ScaleResult penelope =
      run_scale_experiment(small_scale(ManagerKind::kPenelope));
  ScaleResult central =
      run_scale_experiment(small_scale(ManagerKind::kCentral));
  // Quiet network: both should answer in well under a period.
  EXPECT_LT(penelope.mean_turnaround_ms, 50.0);
  EXPECT_LT(central.mean_turnaround_ms, 50.0);
  EXPECT_GT(penelope.mean_turnaround_ms, 0.0);
  EXPECT_GT(central.mean_turnaround_ms, 0.0);
}

TEST(ScaleExperiment, ConfigValidation) {
  ScaleConfig sc = small_scale(ManagerKind::kPenelope);
  ClusterConfig cc = make_scale_cluster_config(sc);
  EXPECT_EQ(cc.n_nodes, sc.n_nodes);
  EXPECT_EQ(cc.period, common::kTicksPerSecond);
  EXPECT_DOUBLE_EQ(cc.measurement_noise_watts, 0.0);
  ScaleConfig fast = small_scale(ManagerKind::kPenelope, 20.0);
  EXPECT_EQ(make_scale_cluster_config(fast).period,
            common::kTicksPerSecond / 20);
}

TEST(ScaleExperiment, DeterministicForSeed) {
  ScaleResult a =
      run_scale_experiment(small_scale(ManagerKind::kPenelope));
  ScaleResult b =
      run_scale_experiment(small_scale(ManagerKind::kPenelope));
  EXPECT_DOUBLE_EQ(a.median_redistribution_s, b.median_redistribution_s);
  EXPECT_EQ(a.turnaround_samples, b.turnaround_samples);
  EXPECT_DOUBLE_EQ(a.mean_turnaround_ms, b.mean_turnaround_ms);
}

}  // namespace
}  // namespace penelope::cluster
