#include "cluster/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "cluster/cluster.hpp"

namespace penelope::cluster {
namespace {

TraceSample sample(double t_s, int node, double cap) {
  TraceSample s;
  s.at = common::from_seconds(t_s);
  s.node = node;
  s.cap_watts = cap;
  return s;
}

TEST(Trace, NodeSeriesFiltersAndOrders) {
  Trace trace;
  trace.add(sample(1, 0, 100));
  trace.add(sample(1, 1, 200));
  trace.add(sample(2, 0, 110));
  auto series = trace.node_series(0);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_DOUBLE_EQ(series[0].cap_watts, 100);
  EXPECT_DOUBLE_EQ(series[1].cap_watts, 110);
}

TEST(Trace, CapOscillationIsMeanAbsDelta) {
  Trace trace;
  trace.add(sample(1, 0, 100));
  trace.add(sample(2, 0, 130));  // +30
  trace.add(sample(3, 0, 110));  // -20
  EXPECT_DOUBLE_EQ(trace.cap_oscillation(0), 25.0);
}

TEST(Trace, OscillationEdgeCases) {
  Trace trace;
  EXPECT_DOUBLE_EQ(trace.cap_oscillation(0), 0.0);
  trace.add(sample(1, 0, 100));
  EXPECT_DOUBLE_EQ(trace.cap_oscillation(0), 0.0);  // single sample
  EXPECT_DOUBLE_EQ(trace.mean_cap_oscillation(), 0.0);
}

TEST(Trace, MeanOscillationAveragesNodes) {
  Trace trace;
  trace.add(sample(1, 0, 100));
  trace.add(sample(2, 0, 110));  // osc 10
  trace.add(sample(1, 1, 100));
  trace.add(sample(2, 1, 130));  // osc 30
  EXPECT_DOUBLE_EQ(trace.mean_cap_oscillation(), 20.0);
}

TEST(Trace, MeanCapAndPeakSwing) {
  Trace trace;
  trace.add(sample(1, 0, 100));
  trace.add(sample(2, 0, 200));
  trace.add(sample(1, 1, 150));
  trace.add(sample(2, 1, 160));
  EXPECT_DOUBLE_EQ(trace.mean_cap(0), 150.0);
  EXPECT_DOUBLE_EQ(trace.peak_cap_swing(), 100.0);
  EXPECT_EQ(trace.nodes(), (std::vector<int>{0, 1}));
}

TEST(Trace, CsvHasHeaderAndRows) {
  Trace trace;
  trace.add(sample(1.5, 3, 123.456));
  std::string csv = trace.to_csv();
  EXPECT_NE(csv.find("t_s,node,cap_w"), std::string::npos);
  EXPECT_NE(csv.find("1.500,3,123.456"), std::string::npos);
}

TEST(Trace, WriteCsvRoundTrip) {
  Trace trace;
  trace.add(sample(1, 0, 100));
  std::string path = testing::TempDir() + "/penelope_trace_test.csv";
  ASSERT_TRUE(trace.write_csv(path));
  std::ifstream f(path);
  std::string header;
  std::getline(f, header);
  EXPECT_EQ(header, "t_s,node,cap_w,pool_w,power_w,demand_w,frac");
  std::remove(path.c_str());
}

TEST(ClusterTrace, RecordsWhenEnabled) {
  ClusterConfig cc;
  cc.manager = ManagerKind::kPenelope;
  cc.n_nodes = 4;
  cc.per_socket_cap_watts = 70.0;
  cc.trace_interval = common::from_millis(500);
  cc.seed = 5;
  workload::NpbConfig npb;
  npb.duration_scale = 0.05;
  Cluster cluster(cc, make_pair_workloads(workload::NpbApp::kEP,
                                          workload::NpbApp::kDC,
                                          cc.n_nodes, npb));
  cluster.run_for(5.0);
  const Trace& trace = cluster.trace();
  ASSERT_FALSE(trace.empty());
  // 4 nodes x 10 samples (every 0.5 s over 5 s).
  EXPECT_EQ(trace.samples().size(), 40u);
  EXPECT_EQ(trace.nodes().size(), 4u);
  for (const auto& s : trace.samples()) {
    EXPECT_GT(s.cap_watts, 0.0);
    EXPECT_GT(s.power_watts, 0.0);
    EXPECT_GE(s.pool_watts, 0.0);
    EXPECT_GT(s.demand_watts, 0.0);
  }
}

TEST(ClusterTrace, DisabledByDefault) {
  ClusterConfig cc;
  cc.manager = ManagerKind::kFair;
  cc.n_nodes = 2;
  workload::NpbConfig npb;
  npb.duration_scale = 0.05;
  Cluster cluster(cc, make_pair_workloads(workload::NpbApp::kEP,
                                          workload::NpbApp::kDC,
                                          cc.n_nodes, npb));
  cluster.run_for(3.0);
  EXPECT_TRUE(cluster.trace().empty());
}

TEST(ClusterTrace, UnlimitedGrantsOscillateMoreThanClamped) {
  // The §3.2 claim bench_ablation quantifies, held as a regression test
  // at small scale: removing the transaction clamp increases cap
  // oscillation.
  auto run_with = [](bool clamped) {
    ClusterConfig cc;
    cc.manager = ManagerKind::kPenelope;
    cc.n_nodes = 6;
    cc.per_socket_cap_watts = 70.0;
    cc.trace_interval = common::kTicksPerSecond;
    cc.seed = 11;
    if (!clamped) {
      cc.pool.share_fraction = 1.0;
      cc.pool.upper_limit_watts = 1e9;
      cc.pool.lower_limit_watts = 0.0;
    }
    workload::NpbConfig npb;
    npb.duration_scale = 0.3;
    Cluster cluster(cc, make_pair_workloads(workload::NpbApp::kEP,
                                            workload::NpbApp::kDC,
                                            cc.n_nodes, npb));
    cluster.run_for(40.0);
    return cluster.trace().mean_cap_oscillation();
  };
  double clamped = run_with(true);
  double unlimited = run_with(false);
  EXPECT_GT(unlimited, clamped);
}

}  // namespace
}  // namespace penelope::cluster
