// Dynamic system-budget reconfiguration: operators resize the
// system-wide cap mid-run (demand response, time-of-day pricing). A cut
// must retire watts — immediately where possible, via per-node
// retirement debt otherwise — without ever violating the (new) budget
// ledger; an increase must reach the nodes.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"

namespace penelope::cluster {
namespace {

ClusterConfig budget_config(ManagerKind manager) {
  ClusterConfig cc;
  cc.manager = manager;
  cc.n_nodes = 6;
  cc.per_socket_cap_watts = 80.0;  // 160 W/node, budget 960 W
  cc.seed = 13;
  cc.max_seconds = 1200.0;
  cc.audit_interval = common::from_millis(250);
  return cc;
}

std::vector<workload::WorkloadProfile> steady_mixed(int nodes) {
  std::vector<workload::WorkloadProfile> profiles;
  for (int i = 0; i < nodes; ++i) {
    workload::WorkloadProfile p;
    p.name = i % 2 ? "hungry" : "donor";
    p.phases.push_back(
        workload::Phase{"hot", i % 2 ? 240.0 : 100.0, 1e6});
    profiles.push_back(std::move(p));
  }
  return profiles;
}

double live_total(const ConservationAudit& audit) {
  return audit.cap_total + audit.pool_total + audit.server_cache +
         audit.in_flight;
}

class BudgetSweep : public ::testing::TestWithParam<ManagerKind> {};

TEST_P(BudgetSweep, IncreaseReachesTheNodes) {
  ClusterConfig cc = budget_config(GetParam());
  Cluster cluster(cc, steady_mixed(cc.n_nodes));
  cluster.run_for(10.0);
  double before = live_total(cluster.audit());
  double effective = cluster.set_system_budget(1200.0);
  EXPECT_NEAR(effective, 1200.0, 1e-6);
  cluster.run_for(10.0);
  ConservationAudit audit = cluster.audit();
  EXPECT_GT(live_total(audit), before + 100.0);
  EXPECT_NEAR(audit.conservation_error(), 0.0, 1e-6);
}

TEST_P(BudgetSweep, CutRetiresPowerAndBalances) {
  ClusterConfig cc = budget_config(GetParam());
  Cluster cluster(cc, steady_mixed(cc.n_nodes));
  cluster.run_for(10.0);
  cluster.set_system_budget(720.0);  // -25%
  EXPECT_NEAR(cluster.current_budget(), 720.0, 1e-6);
  // Immediately after the cut the ledger must balance (debt included).
  ConservationAudit right_after = cluster.audit();
  EXPECT_NEAR(right_after.conservation_error(), 0.0, 1e-6);
  cluster.run_for(30.0);
  ConservationAudit later = cluster.audit();
  EXPECT_NEAR(later.conservation_error(), 0.0, 1e-6);
  // Live power has come down toward the new budget.
  EXPECT_LT(live_total(later), 720.0 + later.retirement_debt + 1e-6);
  EXPECT_LT(live_total(later), live_total(right_after) + 1e-6);
}

TEST_P(BudgetSweep, AuditHoldsAcrossRepeatedReconfiguration) {
  ClusterConfig cc = budget_config(GetParam());
  Cluster cluster(cc, steady_mixed(cc.n_nodes));
  double budgets[] = {960.0, 700.0, 1100.0, 850.0, 960.0};
  for (double budget : budgets) {
    cluster.set_system_budget(budget);
    cluster.run_for(8.0);
    ConservationAudit audit = cluster.audit();
    EXPECT_NEAR(audit.conservation_error(), 0.0, 1e-6)
        << manager_name(GetParam()) << " at budget " << budget;
    EXPECT_FALSE(audit.cap_exceeded(1e-6));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Managers, BudgetSweep,
    ::testing::Values(ManagerKind::kFair, ManagerKind::kCentral,
                      ManagerKind::kPenelope, ManagerKind::kHierarchical),
    [](const ::testing::TestParamInfo<ManagerKind>& info) {
      return manager_name(info.param);
    });

TEST(Budget, DebtDrainsFromFutureExcess) {
  // Cut deep enough that hungry nodes cannot retire immediately, then
  // watch the debt shrink as donors' excess is retired instead of
  // pooled.
  ClusterConfig cc = budget_config(ManagerKind::kPenelope);
  Cluster cluster(cc, steady_mixed(cc.n_nodes));
  cluster.run_for(5.0);
  cluster.set_system_budget(620.0);
  double debt_initial = cluster.total_retirement_debt();
  cluster.run_for(40.0);
  double debt_later = cluster.total_retirement_debt();
  EXPECT_LE(debt_later, debt_initial);
  ConservationAudit audit = cluster.audit();
  EXPECT_NEAR(audit.conservation_error(), 0.0, 1e-6);
}

TEST(Budget, PerformanceRespondsToBudget) {
  // More budget, faster finish: the end-to-end sanity check.
  auto runtime_with = [](double mid_run_budget) {
    ClusterConfig cc = budget_config(ManagerKind::kPenelope);
    workload::NpbConfig npb;
    npb.duration_scale = 0.3;
    npb.seed = 5;
    Cluster cluster(cc, make_pair_workloads(workload::NpbApp::kEP,
                                            workload::NpbApp::kCG,
                                            cc.n_nodes, npb));
    cluster.run_for(10.0);
    cluster.set_system_budget(mid_run_budget);
    RunResult result = cluster.run();
    EXPECT_TRUE(result.all_completed);
    return result.runtime_seconds;
  };
  EXPECT_LT(runtime_with(1400.0), runtime_with(700.0));
}

TEST(BudgetDeath, NonPositiveBudgetRejected) {
  ClusterConfig cc = budget_config(ManagerKind::kFair);
  Cluster cluster(cc, steady_mixed(cc.n_nodes));
  EXPECT_DEATH(cluster.set_system_budget(0.0), "new_total_watts");
}

}  // namespace
}  // namespace penelope::cluster
