// Active-set-vs-brute-force parity for the arena's batched epoch sweeps
// (DESIGN.md §15). The active set is a pure scheduling optimization:
// per-shard dirty bitsets plus closed-form wake times decide WHICH nodes
// a sweep ticks, never WHAT a tick does — so a run with active-set
// scheduling must be bit-identical to a brute-force run that ticks every
// node every period: same trace hash, same executed-event count, same
// metrics, same energy, same conservation ledger, at every sim_jobs.
// The suite name `ArenaSweep` also registers under the sanitizer
// binaries as asan.ArenaSweep.* / tsan.ArenaSweep.*.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"

namespace penelope::cluster {
namespace {

ClusterConfig sweep_config(int n_nodes, int pools, int fanout,
                           std::uint64_t seed, bool active_set) {
  ClusterConfig cc;
  cc.manager = ManagerKind::kPenelope;
  cc.n_nodes = n_nodes;
  cc.per_socket_cap_watts = 70.0;
  cc.max_seconds = 600.0;
  cc.seed = seed;
  cc.federation_pools = pools;
  cc.federation_fanout = fanout;
  cc.arena_active_set = active_set;
  return cc;
}

/// Donor half / hungry half, block-contiguous (the federation suite's
/// shape: excess must cross pool boundaries). A short third-phase tail
/// on a few nodes exercises phase-boundary wakes inside the horizon.
std::vector<workload::WorkloadProfile> sweep_profiles(int n_nodes) {
  std::vector<workload::WorkloadProfile> profiles;
  for (int i = 0; i < n_nodes; ++i) {
    bool hungry = i >= n_nodes / 2;
    workload::WorkloadProfile p;
    p.name = hungry ? "hungry" : "donor";
    if (i % 7 == 0) {
      // Finishes inside the horizon: completion + the done-node shed
      // must happen in the same epoch in both modes.
      p.phases.push_back(workload::Phase{"burst", 150.0, 4.0});
      p.phases.push_back(workload::Phase{"tail", 90.0, 3.0});
    } else {
      p.phases.push_back(
          workload::Phase{"hot", hungry ? 220.0 : 110.0, 1e6});
    }
    profiles.push_back(std::move(p));
  }
  return profiles;
}

struct SweepRun {
  std::uint64_t trace_hash = 0;
  std::uint64_t executed = 0;
  double energy_j = 0.0;
  double conservation = 0.0;
  std::uint64_t requests = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t completed = 0;
};

SweepRun run_once(ClusterConfig cc,
                  std::vector<workload::WorkloadProfile> profiles,
                  double seconds) {
  Cluster cluster(cc, std::move(profiles));
  cluster.run_for(seconds);
  RunResult result = cluster.collect_result();
  SweepRun r;
  r.trace_hash = cluster.trace_hash();
  r.executed = cluster.executed_events();
  r.energy_j = cluster.total_energy_joules();
  r.conservation = result.audit.max_abs_conservation_error;
  r.requests = cluster.metrics().requests_sent();
  r.timeouts = cluster.metrics().timeouts();
  r.completed = result.node_completion_seconds.size();
  return r;
}

void expect_parity(const SweepRun& active, const SweepRun& brute,
                   const char* what) {
  EXPECT_EQ(active.trace_hash, brute.trace_hash) << what;
  EXPECT_EQ(active.executed, brute.executed) << what;
  EXPECT_EQ(active.requests, brute.requests) << what;
  EXPECT_EQ(active.timeouts, brute.timeouts) << what;
  EXPECT_EQ(active.completed, brute.completed) << what;
  // Same adds in the same order: the fold is bit-identical, not merely
  // close.
  EXPECT_EQ(active.energy_j, brute.energy_j) << what;
  EXPECT_LT(active.conservation, 1e-6) << what;
  EXPECT_LT(brute.conservation, 1e-6) << what;
}

TEST(ArenaSweep, ActiveSetMatchesBruteForceAcrossSimJobs) {
  for (int jobs : {1, 2, 4}) {
    ClusterConfig base = sweep_config(48, 6, 2, 7, true);
    base.sim_jobs = jobs;
    base.network.loss_probability = 0.02;
    SweepRun active = run_once(base, sweep_profiles(base.n_nodes), 30.0);
    base.arena_active_set = false;
    SweepRun brute = run_once(base, sweep_profiles(base.n_nodes), 30.0);
    expect_parity(active, brute,
                  (std::string("sim_jobs=") + std::to_string(jobs)).c_str());
    EXPECT_GT(active.completed, 0u);
    EXPECT_GT(active.requests, 0u);
  }
}

TEST(ArenaSweep, ActiveSetMatchesBruteForceUnderChaos) {
  // Loss + duplication + reordering: grants arrive late, twice, or out
  // of order, driving the timeout fold and the banked-grant path.
  for (int jobs : {1, 2, 4}) {
    ClusterConfig base = sweep_config(48, 6, 2, 13, true);
    base.sim_jobs = jobs;
    base.network.loss_probability = 0.05;
    base.network.duplicate_probability = 0.05;
    base.network.reorder_probability = 0.10;
    SweepRun active = run_once(base, sweep_profiles(base.n_nodes), 30.0);
    base.arena_active_set = false;
    SweepRun brute = run_once(base, sweep_profiles(base.n_nodes), 30.0);
    expect_parity(active, brute,
                  (std::string("chaos jobs=") + std::to_string(jobs)).c_str());
    EXPECT_GT(active.timeouts, 0u) << "chaos config should time out";
  }
}

TEST(ArenaSweep, ActiveSetMatchesBruteForceUnderChurn) {
  // Crash/recover pulls nodes out of and back into the active set at
  // barrier instants; conservation must hold and traces must agree
  // across seeds.
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    ClusterConfig base = sweep_config(48, 6, 2, seed, true);
    base.network.loss_probability = 0.03;
    base.churn_enabled = true;
    base.churn_mtbf_seconds = 15.0;
    base.churn_mttr_seconds = 3.0;
    SweepRun active = run_once(base, sweep_profiles(base.n_nodes), 45.0);
    base.arena_active_set = false;
    SweepRun brute = run_once(base, sweep_profiles(base.n_nodes), 45.0);
    expect_parity(active, brute,
                  (std::string("seed=") + std::to_string(seed)).c_str());
  }
}

TEST(ArenaSweep, EquilibriumNodesLeaveTheActiveSet) {
  // A uniform population whose demand sits inside the epsilon band of
  // its cap: after the first epoch's shed wave settles, nobody has
  // anything to decide and sweeps should touch nothing. The active set
  // may not be empty (nodes waiting on a phase boundary re-enter at
  // their wake), but it must collapse far below N — this pins the
  // mechanism that makes the million-node run affordable.
  ClusterConfig cc = sweep_config(64, 8, 4, 5, true);
  std::vector<workload::WorkloadProfile> profiles;
  for (int i = 0; i < cc.n_nodes; ++i) {
    workload::WorkloadProfile p;
    p.name = "steady";
    p.phases.push_back(workload::Phase{"hot", 120.0, 1e6});
    profiles.push_back(std::move(p));
  }
  Cluster cluster(cc, std::move(profiles));
  cluster.run_for(10.0);
  ASSERT_TRUE(cluster.federated());
  EXPECT_EQ(cluster.arena()->active_set_size(), 0)
      << "steady-state nodes must drop out of the sweep";
  // And they still advance lazily: energy accrues without any ticks.
  double e1 = cluster.total_energy_joules();
  cluster.run_for(5.0);
  EXPECT_GT(cluster.total_energy_joules(), e1);
}

TEST(ArenaSweep, LazyAdvanceMatchesSweptStateInTelemetry) {
  // The sampler reads closed-form lazy state (eval) while sweeps
  // materialize the same boundaries later; series content must be
  // identical in both sweep modes — i.e. the lazy read IS the swept
  // value, not an approximation.
  auto series_of = [](bool active_set) {
    ClusterConfig cc = sweep_config(64, 8, 4, 9, active_set);
    cc.series_interval = common::from_millis(250);
    Cluster cluster(cc, sweep_profiles(cc.n_nodes));
    cluster.run_for(15.0);
    return cluster.series().to_csv();
  };
  EXPECT_EQ(series_of(true), series_of(false));
}

}  // namespace
}  // namespace penelope::cluster
