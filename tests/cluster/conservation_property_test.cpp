// Property sweep: the two §2.1 requirements — system-wide cap enforced,
// node caps inside the safe range — must hold for every manager, across
// workload pairs, initial caps, frequencies, and seeds, including lossy
// networks and mid-run faults. TEST_P drives the grid.
#include <gtest/gtest.h>

#include <tuple>

#include "cluster/cluster.hpp"

namespace penelope::cluster {
namespace {

using Param = std::tuple<ManagerKind, double /*per-socket cap*/,
                         std::uint64_t /*seed*/>;

class ConservationSweep : public ::testing::TestWithParam<Param> {};

std::string sweep_name(const ::testing::TestParamInfo<Param>& info) {
  return std::string(manager_name(std::get<0>(info.param))) + "_cap" +
         std::to_string(static_cast<int>(std::get<1>(info.param))) +
         "_seed" + std::to_string(std::get<2>(info.param));
}

TEST_P(ConservationSweep, BudgetAndSafeRangeHold) {
  auto [manager, cap, seed] = GetParam();
  ClusterConfig cc;
  cc.manager = manager;
  cc.n_nodes = 8;
  cc.per_socket_cap_watts = cap;
  cc.seed = seed;
  cc.max_seconds = 240.0;
  cc.audit_interval = common::from_millis(500);

  workload::NpbConfig npb;
  npb.duration_scale = 0.08;
  npb.demand_jitter_frac = 0.02;
  npb.seed = seed;

  Cluster cluster(cc, make_pair_workloads(workload::NpbApp::kEP,
                                          workload::NpbApp::kDC,
                                          cc.n_nodes, npb));
  RunResult result = cluster.run();

  EXPECT_TRUE(result.all_completed);
  EXPECT_LT(result.audit.max_abs_conservation_error, 1e-6);
  EXPECT_LE(result.audit.max_live_overshoot, 1e-6);
  for (int i = 0; i < cc.n_nodes; ++i) {
    EXPECT_GE(cluster.node_cap(i), cc.rapl.safe_range.min_watts - 1e-9);
    EXPECT_LE(cluster.node_cap(i), cc.rapl.safe_range.max_watts + 1e-9);
  }

  ConservationAudit final_audit = cluster.audit();
  EXPECT_NEAR(final_audit.conservation_error(), 0.0, 1e-6);
  EXPECT_FALSE(final_audit.cap_exceeded(1e-6));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ConservationSweep,
    ::testing::Combine(
        ::testing::Values(ManagerKind::kFair, ManagerKind::kCentral,
                          ManagerKind::kPenelope),
        ::testing::Values(60.0, 80.0, 100.0),
        ::testing::Values(1u, 2u)),
    sweep_name);

class LossyConservationSweep
    : public ::testing::TestWithParam<double /*loss*/> {};

TEST_P(LossyConservationSweep, StrandedPowerIsLedgeredNotLeaked) {
  ClusterConfig cc;
  cc.manager = ManagerKind::kPenelope;
  cc.n_nodes = 8;
  cc.per_socket_cap_watts = 70.0;
  cc.seed = 9;
  cc.max_seconds = 240.0;
  cc.network.loss_probability = GetParam();

  workload::NpbConfig npb;
  npb.duration_scale = 0.08;
  npb.seed = 3;

  Cluster cluster(cc, make_pair_workloads(workload::NpbApp::kEP,
                                          workload::NpbApp::kDC,
                                          cc.n_nodes, npb));
  RunResult result = cluster.run();
  EXPECT_TRUE(result.all_completed);
  EXPECT_LT(result.audit.max_abs_conservation_error, 1e-6);
  if (GetParam() > 0.0) {
    EXPECT_GT(result.net_stats.dropped_loss, 0u);
  } else {
    EXPECT_DOUBLE_EQ(result.stranded_watts, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(LossRates, LossyConservationSweep,
                         ::testing::Values(0.0, 0.02, 0.10));

class FaultConservationSweep
    : public ::testing::TestWithParam<double /*kill time s*/> {};

TEST_P(FaultConservationSweep, ServerKillNeverBreaksTheBudget) {
  ClusterConfig cc;
  cc.manager = ManagerKind::kCentral;
  cc.n_nodes = 8;
  cc.per_socket_cap_watts = 70.0;
  cc.seed = 31;
  cc.max_seconds = 240.0;
  cc.faults = {FaultEvent{FaultEvent::Kind::kKillServer,
                          common::from_seconds(GetParam()), 0}};

  workload::NpbConfig npb;
  npb.duration_scale = 0.08;
  npb.seed = 4;

  Cluster cluster(cc, make_pair_workloads(workload::NpbApp::kEP,
                                          workload::NpbApp::kDC,
                                          cc.n_nodes, npb));
  RunResult result = cluster.run();
  EXPECT_TRUE(result.all_completed);
  EXPECT_LT(result.audit.max_abs_conservation_error, 1e-6);
  EXPECT_LE(result.audit.max_live_overshoot, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(KillTimes, FaultConservationSweep,
                         ::testing::Values(0.5, 3.0, 10.0));

}  // namespace
}  // namespace penelope::cluster
