// The sharded engine's hard contract, exercised end-to-end: a cluster
// run's merged (trace_hash, executed_events) — and the metrics the
// protocol derives from it — are bit-identical at sim_jobs=1 (serial
// engine), any jobs=N, and hardware_concurrency, across the golden,
// chaos, and churn configurations. run_for() is used throughout: both
// engines land exactly on the deadline, whereas completion-triggered
// stop() quantizes to a window boundary under sharding.
#include <gtest/gtest.h>

#include <thread>

#include "cluster/cluster.hpp"

namespace penelope::cluster {
namespace {

struct TraceFingerprint {
  std::uint64_t hash = 0;
  std::uint64_t executed = 0;
  std::uint64_t requests = 0;
  std::uint64_t timeouts = 0;
  double reclaimable = 0.0;

  bool operator==(const TraceFingerprint&) const = default;
};

ClusterConfig golden_config(int jobs) {
  ClusterConfig cc;
  cc.manager = ManagerKind::kPenelope;
  cc.n_nodes = 20;
  cc.per_socket_cap_watts = 60.0;
  cc.network.loss_probability = 0.02;
  cc.seed = 42;
  cc.sim_jobs = jobs;
  return cc;
}

TraceFingerprint run_config(ClusterConfig cc, double seconds) {
  Cluster cluster(cc, make_pair_workloads(workload::NpbApp::kEP,
                                          workload::NpbApp::kDC,
                                          cc.n_nodes, {}));
  cluster.run_for(seconds);
  TraceFingerprint fp;
  fp.hash = cluster.trace_hash();
  fp.executed = cluster.executed_events();
  fp.requests = cluster.metrics().requests_sent();
  fp.timeouts = cluster.metrics().timeouts();
  fp.reclaimable = cluster.metrics().reclaimable_watts();
  return fp;
}

int hardware_jobs() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 1 ? static_cast<int>(hw) : 2;
}

TEST(SimJobs, GoldenTraceIsBitIdenticalAtAnyShardCount) {
  TraceFingerprint serial = run_config(golden_config(1), 30.0);
  // The serial fingerprint is itself pinned by GoldenTrace.*; here the
  // sharded engine must reproduce it exactly.
  EXPECT_EQ(serial.hash, 0x868a597206f3db95ull);
  for (int jobs : {2, 4, hardware_jobs()}) {
    EXPECT_EQ(run_config(golden_config(jobs), 30.0), serial)
        << "jobs=" << jobs;
  }
}

TEST(SimJobs, ChaosTraceIsBitIdenticalAtAnyShardCount) {
  // Duplication, reordering, and loss all draw from per-source streams
  // and flow through the staged-send path; none may perturb the merge.
  auto chaos = [](int jobs) {
    ClusterConfig cc = golden_config(jobs);
    cc.network.loss_probability = 0.05;
    cc.network.duplicate_probability = 0.03;
    cc.network.reorder_probability = 0.05;
    return cc;
  };
  TraceFingerprint serial = run_config(chaos(1), 30.0);
  for (int jobs : {2, 4, hardware_jobs()}) {
    EXPECT_EQ(run_config(chaos(jobs), 30.0), serial) << "jobs=" << jobs;
  }
}

TEST(SimJobs, ChurnTraceIsBitIdenticalAtAnyShardCount) {
  // Kill/recover faults are control-plane events: they run with every
  // shard quiescent, strictly before same-timestamp shard events, so
  // the fault schedule replays identically at any K. (Membership stays
  // off — with it on, the cluster falls back to serial; see below.)
  auto churn = [](int jobs) {
    ClusterConfig cc = golden_config(jobs);
    cc.membership_enabled = false;
    cc.churn_enabled = true;
    cc.churn_mtbf_seconds = 10.0;
    cc.churn_mttr_seconds = 2.0;
    return cc;
  };
  TraceFingerprint serial = run_config(churn(1), 30.0);
  for (int jobs : {2, 4, hardware_jobs()}) {
    EXPECT_EQ(run_config(churn(jobs), 30.0), serial) << "jobs=" << jobs;
  }
}

TEST(SimJobs, CentralManagerTraceIsBitIdenticalSharded) {
  // The central server actor lands on the last shard with its clients
  // spread across the rest — every grant crosses shards.
  auto central = [](int jobs) {
    ClusterConfig cc = golden_config(jobs);
    cc.manager = ManagerKind::kCentral;
    return cc;
  };
  TraceFingerprint serial = run_config(central(1), 30.0);
  for (int jobs : {2, 4}) {
    EXPECT_EQ(run_config(central(jobs), 30.0), serial) << "jobs=" << jobs;
  }
}

TEST(SimJobs, RepeatedShardedRunsAreBitIdentical) {
  EXPECT_EQ(run_config(golden_config(4), 30.0),
            run_config(golden_config(4), 30.0));
}

TEST(SimJobs, MembershipFallsBackToSerialExecution) {
  // Failure detection mutates shared suspicion state on every heartbeat;
  // until that is context-split, membership runs force the serial
  // engine — with a warning, not silently wrong results.
  ClusterConfig cc = golden_config(4);
  cc.membership_enabled = true;
  Cluster cluster(cc, make_pair_workloads(workload::NpbApp::kEP,
                                          workload::NpbApp::kDC,
                                          cc.n_nodes, {}));
  EXPECT_FALSE(cluster.sharded());
  cluster.run_for(5.0);
  EXPECT_GT(cluster.executed_events(), 0u);
}

TEST(SimJobs, ShardedRunToCompletionConservesPower) {
  // Full run() under sharding: completion stop, audits, and the final
  // conservation sweep all cross the control plane.
  ClusterConfig cc;
  cc.manager = ManagerKind::kPenelope;
  cc.n_nodes = 8;
  cc.per_socket_cap_watts = 70.0;
  cc.seed = 17;
  cc.max_seconds = 600.0;
  cc.sim_jobs = 4;
  workload::NpbConfig npb;
  npb.duration_scale = 0.12;
  npb.seed = 23;
  Cluster cluster(cc, make_pair_workloads(workload::NpbApp::kEP,
                                          workload::NpbApp::kDC,
                                          cc.n_nodes, npb));
  RunResult result = cluster.run();
  EXPECT_TRUE(result.all_completed);
  EXPECT_LT(result.audit.max_abs_conservation_error, 1e-6);
  EXPECT_LE(result.audit.max_live_overshoot, 1e-6);
}

TEST(SimJobs, JobsAreClampedToTheNodeCount) {
  ClusterConfig cc = golden_config(64);  // 64 > 20 nodes
  cc.n_nodes = 4;
  Cluster cluster(cc, make_pair_workloads(workload::NpbApp::kEP,
                                          workload::NpbApp::kDC,
                                          cc.n_nodes, {}));
  EXPECT_TRUE(cluster.sharded());
  TraceFingerprint serial = run_config([] {
    ClusterConfig c = golden_config(1);
    c.n_nodes = 4;
    return c;
  }(), 10.0);
  cluster.run_for(10.0);
  EXPECT_EQ(cluster.trace_hash(), serial.hash);
}

}  // namespace
}  // namespace penelope::cluster
