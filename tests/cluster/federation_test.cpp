// Hierarchical pool federation (DESIGN.md §13): topology invariants,
// conservation under churn on a lossy fabric, golden-trace neutrality
// with federation off, and bit-identical sharded execution. The suite
// name `Federation` is load-bearing: the sanitizer binaries register
// these same tests as asan.Federation.* / tsan.Federation.*.
#include <gtest/gtest.h>

#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/scale.hpp"
#include "hierarchy/federation.hpp"

namespace penelope::cluster {
namespace {

using hierarchy::FederationTopology;

// --- pure topology ----------------------------------------------------

TEST(Federation, LeafAssignmentCoversEveryNodeContiguously) {
  FederationTopology topo = FederationTopology::build(48, 6, 2);
  EXPECT_EQ(topo.n_nodes, 48);
  EXPECT_EQ(topo.n_leaves, 6);
  ASSERT_EQ(topo.leaf_of_node.size(), 48u);
  int prev = 0;
  for (int node = 0; node < topo.n_nodes; ++node) {
    int leaf = topo.leaf_of_node[static_cast<std::size_t>(node)];
    ASSERT_GE(leaf, 0);
    ASSERT_LT(leaf, topo.n_leaves);
    EXPECT_GE(leaf, prev) << "leaf spans must be contiguous";
    prev = leaf;
    auto idx = static_cast<std::size_t>(leaf);
    EXPECT_GE(node, topo.leaf_first_node[idx]);
    EXPECT_LT(node, topo.leaf_last_node[idx]);
  }
  // Spans partition [0, n_nodes).
  int covered = 0;
  for (int leaf = 0; leaf < topo.n_leaves; ++leaf) {
    auto idx = static_cast<std::size_t>(leaf);
    EXPECT_GT(topo.leaf_last_node[idx], topo.leaf_first_node[idx]);
    covered += topo.leaf_last_node[idx] - topo.leaf_first_node[idx];
  }
  EXPECT_EQ(covered, topo.n_nodes);
}

TEST(Federation, ParentChainsReachTheSingleRoot) {
  FederationTopology topo = FederationTopology::build(1000, 32, 4);
  ASSERT_GT(topo.total_pools, topo.n_leaves);
  int roots = 0;
  for (int p = 0; p < topo.total_pools; ++p) {
    if (topo.parent[static_cast<std::size_t>(p)] < 0) ++roots;
  }
  EXPECT_EQ(roots, 1);
  EXPECT_EQ(topo.parent.back(), -1) << "root is the last pool index";
  for (int p = 0; p < topo.total_pools; ++p) {
    int cur = p;
    int hops = 0;
    while (topo.parent[static_cast<std::size_t>(cur)] >= 0) {
      cur = topo.parent[static_cast<std::size_t>(cur)];
      ASSERT_LE(++hops, topo.levels) << "parent chain longer than depth";
    }
    EXPECT_EQ(cur, topo.total_pools - 1);
  }
  // children[] is the exact inverse of parent[].
  for (int p = 0; p < topo.total_pools; ++p) {
    for (int child : topo.children[static_cast<std::size_t>(p)]) {
      EXPECT_EQ(topo.parent[static_cast<std::size_t>(child)], p);
    }
  }
}

TEST(Federation, WideFanoutCollapsesToLeavesPlusRoot) {
  FederationTopology topo = FederationTopology::build(64, 8, 8);
  EXPECT_EQ(topo.n_leaves, 8);
  EXPECT_EQ(topo.total_pools, 9);
  EXPECT_EQ(topo.levels, 2);
  EXPECT_EQ(topo.children.back().size(), 8u);
}

TEST(Federation, DegenerateShapesAreClamped) {
  // More pools than nodes: one node per leaf at most.
  FederationTopology topo = FederationTopology::build(4, 100, 2);
  EXPECT_LE(topo.n_leaves, 4);
  // A single pool is its own root: no federation edges at all.
  FederationTopology one = FederationTopology::build(16, 1, 8);
  EXPECT_EQ(one.total_pools, 1);
  EXPECT_EQ(one.parent[0], -1);
  EXPECT_TRUE(one.children[0].empty());
}

TEST(Federation, RepresentativeNodesLieInEachPoolsSubtree) {
  FederationTopology topo = FederationTopology::build(200, 16, 4);
  for (int p = 0; p < topo.total_pools; ++p) {
    auto idx = static_cast<std::size_t>(p);
    int rep = topo.representative_node[idx];
    ASSERT_GE(rep, 0);
    ASSERT_LT(rep, topo.n_nodes);
    if (topo.is_leaf(p)) {
      EXPECT_EQ(rep, topo.leaf_first_node[idx])
          << "leaf rep anchors shard placement to its first node";
    }
  }
}

// --- end-to-end federated runs ---------------------------------------

ClusterConfig federated_config(int n_nodes, int pools, int fanout,
                               std::uint64_t seed) {
  ClusterConfig cc;
  cc.manager = ManagerKind::kPenelope;
  cc.n_nodes = n_nodes;
  cc.per_socket_cap_watts = 70.0;
  cc.max_seconds = 600.0;
  cc.seed = seed;
  cc.federation_pools = pools;
  cc.federation_fanout = fanout;
  return cc;
}

/// First half donors (below the initial cap), second half hungry
/// (above it), long enough that nothing completes inside the test
/// horizon. The split is block-contiguous on purpose: leaf spans are
/// contiguous too, so donor leaves and hungry leaves are disjoint and
/// excess MUST cross pool boundaries to be useful — an interleaved mix
/// would let every leaf serve its own hungry nodes locally and the
/// federation layer would sit idle.
std::vector<workload::WorkloadProfile> mixed_profiles(int n_nodes) {
  std::vector<workload::WorkloadProfile> profiles;
  for (int i = 0; i < n_nodes; ++i) {
    bool hungry = i >= n_nodes / 2;
    workload::WorkloadProfile p;
    p.name = hungry ? "hungry" : "donor";
    p.phases.push_back(
        workload::Phase{"hot", hungry ? 220.0 : 110.0, 1e6});
    profiles.push_back(std::move(p));
  }
  return profiles;
}

TEST(Federation, FederatedRunConservesAndMovesPower) {
  ClusterConfig cc = federated_config(48, 6, 2, 7);
  Cluster cluster(cc, mixed_profiles(cc.n_nodes));
  ASSERT_TRUE(cluster.federated());
  cluster.run_for(30.0);

  // Donor excess crossed pool boundaries: aggregated reports flowed up
  // and batched transfers flowed back down.
  EXPECT_GT(cluster.metrics().federated_requests(), 0u);
  EXPECT_GT(cluster.metrics().federated_transfers(), 0u);
  EXPECT_GT(cluster.metrics().federated_watts_moved(), 0.0);
  EXPECT_NEAR(cluster.audit().conservation_error(), 0.0, 1e-6);
  RunResult result = cluster.collect_result();
  EXPECT_LT(result.audit.max_abs_conservation_error, 1e-6);
  EXPECT_LE(result.audit.max_live_overshoot, 1e-6);
}

TEST(Federation, ConservationHoldsUnderChurnAcrossSeeds) {
  // The issue's pinning property: pool ledgers + in-flight == global
  // budget to float tolerance while MTBF/MTTR churn crashes and
  // restarts nodes on a lossy fabric. Crash residues strand tagged with
  // the node's incarnation; rejoin self-reclaims at the bumped epoch —
  // the same ledger discipline as the flat path, audited every period.
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    ClusterConfig cc = federated_config(48, 6, 2, seed);
    cc.network.loss_probability = 0.03;
    cc.churn_enabled = true;
    cc.churn_mtbf_seconds = 15.0;
    cc.churn_mttr_seconds = 3.0;
    Cluster cluster(cc, mixed_profiles(cc.n_nodes));
    cluster.run_for(45.0);

    RunResult result = cluster.collect_result();
    EXPECT_GT(result.net_stats.node_failures, 0u) << "seed " << seed;
    EXPECT_GT(result.net_stats.node_recoveries, 0u) << "seed " << seed;
    EXPECT_LT(result.audit.max_abs_conservation_error, 1e-6)
        << "seed " << seed;
    EXPECT_LE(result.audit.max_live_overshoot, 1e-6) << "seed " << seed;
    EXPECT_NEAR(cluster.audit().conservation_error(), 0.0, 1e-6)
        << "seed " << seed;
  }
}

TEST(Federation, OffByDefaultMatchesTheGoldenTrace) {
  // Neutrality pin: pools=0 must replay the exact golden trace — the
  // federation code may not perturb a single RNG draw or event
  // timestamp of the classic path.
  ClusterConfig cc;
  cc.manager = ManagerKind::kPenelope;
  cc.n_nodes = 20;
  cc.per_socket_cap_watts = 60.0;
  cc.network.loss_probability = 0.02;
  cc.seed = 42;
  cc.federation_pools = 0;
  Cluster cluster(cc, make_pair_workloads(workload::NpbApp::kEP,
                                          workload::NpbApp::kDC,
                                          cc.n_nodes, {}));
  EXPECT_FALSE(cluster.federated());
  cluster.run_for(30.0);
  EXPECT_EQ(cluster.simulator().executed_events(), 1665u);
  EXPECT_EQ(cluster.simulator().trace_hash(), 0x868a597206f3db95ull);
}

TEST(Federation, TraceIsBitIdenticalAcrossSimJobs) {
  // Pools are shard boundaries: each pool actor lands on the shard
  // owning its subtree's first node, and all federation traffic crosses
  // the same staged-send merge as node traffic. The merged trace must
  // not depend on the shard count.
  auto run_once = [](int sim_jobs) {
    ClusterConfig cc = federated_config(48, 6, 2, 11);
    cc.sim_jobs = sim_jobs;
    cc.network.loss_probability = 0.02;
    Cluster cluster(cc, mixed_profiles(cc.n_nodes));
    cluster.run_for(20.0);
    return std::pair<std::uint64_t, std::uint64_t>(
        cluster.trace_hash(), cluster.executed_events());
  };
  auto serial = run_once(1);
  for (int jobs : {2, 4}) {
    EXPECT_EQ(run_once(jobs), serial) << "sim_jobs=" << jobs;
  }
}

TEST(Federation, ScaleRunRedistributesThroughPools) {
  // The completion-burst experiment on the federated path: the bursting
  // half's released watts must reach the hungry half through the pool
  // tree, conserving throughout.
  ScaleConfig sc;
  sc.n_nodes = 32;
  sc.pools = 6;
  sc.fanout = 2;
  sc.window_seconds = 20.0;
  sc.burst_at_seconds = 2.0;
  sc.seed = 3;
  ScaleResult result = run_scale_experiment(sc);
  EXPECT_GT(result.available_watts, 0.0);
  EXPECT_GT(result.shifted_watts, 0.0);
  EXPECT_TRUE(result.median_reached);
  EXPECT_GT(result.federated_transfers, 0u);
  EXPECT_LT(result.max_conservation_error, 1e-6);
}

// --- pending-events telemetry parity (serial vs sharded) --------------

TEST(PendingEventsTelemetry, SerialEngineRecordsTheHighWater) {
  // Regression: the gauge was only written on the sharded path; a
  // serial run exported 0 forever.
  ClusterConfig cc = federated_config(12, 0, 8, 5);
  Cluster cluster(cc, mixed_profiles(cc.n_nodes));
  ASSERT_FALSE(cluster.sharded());
  cluster.run_for(10.0);
  EXPECT_GT(cluster.metrics().pending_events_high_water(), 0.0);
  EXPECT_DOUBLE_EQ(cluster.metrics().pending_events_high_water(),
                   static_cast<double>(cluster.pending_high_water()));
}

TEST(PendingEventsTelemetry, ShardedEngineAgrees) {
  ClusterConfig cc = federated_config(12, 0, 8, 5);
  cc.sim_jobs = 2;
  Cluster cluster(cc, mixed_profiles(cc.n_nodes));
  ASSERT_TRUE(cluster.sharded());
  cluster.run_for(10.0);
  EXPECT_GT(cluster.metrics().pending_events_high_water(), 0.0);
  EXPECT_DOUBLE_EQ(cluster.metrics().pending_events_high_water(),
                   static_cast<double>(cluster.pending_high_water()));
}

}  // namespace
}  // namespace penelope::cluster
