// Peer blacklisting (fault-tolerance refinement) and cluster energy
// accounting.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"

namespace penelope::cluster {
namespace {

ClusterConfig base_config(ManagerKind manager = ManagerKind::kPenelope) {
  ClusterConfig cc;
  cc.manager = manager;
  cc.n_nodes = 8;
  cc.per_socket_cap_watts = 70.0;
  cc.seed = 3;
  cc.max_seconds = 600.0;
  return cc;
}

std::vector<workload::WorkloadProfile> donor_hungry(int nodes) {
  std::vector<workload::WorkloadProfile> profiles;
  for (int i = 0; i < nodes; ++i) {
    workload::WorkloadProfile p;
    p.name = i < nodes / 2 ? "donor" : "hungry";
    p.phases.push_back(
        workload::Phase{"hot", i < nodes / 2 ? 100.0 : 240.0, 1e6});
    profiles.push_back(std::move(p));
  }
  return profiles;
}

TEST(Blacklist, ReducesWastedProbesWithDeadPeers) {
  // Two donors' management planes die early; their pools stop
  // answering, so every probe at them costs a full period. With
  // blacklisting the hungry nodes learn to stop asking.
  auto run_with = [](int blacklist_after) {
    ClusterConfig cc = base_config();
    cc.blacklist_after_timeouts = blacklist_after;
    cc.blacklist_duration = 30 * common::kTicksPerSecond;
    cc.faults = {
        FaultEvent{FaultEvent::Kind::kKillManagement,
                   common::from_seconds(1.0), 0},
        FaultEvent{FaultEvent::Kind::kKillManagement,
                   common::from_seconds(1.0), 1},
    };
    Cluster cluster(cc, donor_hungry(cc.n_nodes));
    cluster.run_for(60.0);
    return cluster.metrics().timeouts();
  };
  std::uint64_t without = run_with(0);
  std::uint64_t with = run_with(2);
  EXPECT_LT(with, without);
  EXPECT_GT(without, 10u);  // dead peers really were being probed
}

TEST(Blacklist, RecoversWhenPeerComesBack) {
  // Blacklists expire: after blacklist_duration the peer is probed
  // again, so a *transiently* silent peer is not shunned forever.
  ClusterConfig cc = base_config();
  cc.n_nodes = 2;
  cc.blacklist_after_timeouts = 1;
  cc.blacklist_duration = 5 * common::kTicksPerSecond;
  cc.network.loss_probability = 0.0;
  Cluster cluster(cc, donor_hungry(cc.n_nodes));
  // Partition the two nodes briefly: requests time out, node 1
  // blacklists node 0; then heal.
  cluster.network().set_partition({{0}, {1}});
  cluster.run_for(4.0);
  std::uint64_t timeouts_during = cluster.metrics().timeouts();
  EXPECT_GT(timeouts_during, 0u);
  cluster.network().clear_partition();
  cluster.run_for(30.0);
  // After healing and blacklist expiry, transactions complete again.
  EXPECT_GT(cluster.metrics().turnaround_ms().size(), 0u);
}

TEST(Blacklist, NeverBlacklistsOnCleanNetwork) {
  ClusterConfig cc = base_config();
  cc.blacklist_after_timeouts = 2;
  Cluster cluster(cc, donor_hungry(cc.n_nodes));
  cluster.run_for(30.0);
  EXPECT_EQ(cluster.metrics().timeouts(), 0u);
}

TEST(Energy, AccumulatesAndIsBoundedByBudget) {
  ClusterConfig cc = base_config(ManagerKind::kFair);
  Cluster cluster(cc, donor_hungry(cc.n_nodes));
  cluster.run_for(20.0);
  double energy = cluster.total_energy_joules();
  EXPECT_GT(energy, 0.0);
  // Energy can never exceed budget x elapsed time (caps enforce it).
  EXPECT_LE(energy, cc.system_budget() * 20.0 * 1.001);
}

TEST(Energy, MonotonicallyIncreases) {
  ClusterConfig cc = base_config();
  Cluster cluster(cc, donor_hungry(cc.n_nodes));
  cluster.run_for(5.0);
  double early = cluster.total_energy_joules();
  cluster.run_for(5.0);
  double later = cluster.total_energy_joules();
  EXPECT_GT(later, early);
}

TEST(Energy, ReportedInRunResult) {
  ClusterConfig cc = base_config(ManagerKind::kCentral);
  workload::NpbConfig npb;
  npb.duration_scale = 0.05;
  Cluster cluster(cc, make_pair_workloads(workload::NpbApp::kEP,
                                          workload::NpbApp::kDC,
                                          cc.n_nodes, npb));
  RunResult result = cluster.run();
  EXPECT_TRUE(result.all_completed);
  EXPECT_GT(result.total_energy_joules, 0.0);
}

TEST(Energy, DynamicManagerUsesMorePowerForLessTime) {
  // Power shifting converts headroom into speed: the dynamic run draws
  // more average power but finishes sooner; energy stays comparable.
  auto run_with = [](ManagerKind manager) {
    ClusterConfig cc = base_config(manager);
    workload::NpbConfig npb;
    npb.duration_scale = 0.2;
    npb.seed = 7;
    Cluster cluster(cc, make_pair_workloads(workload::NpbApp::kEP,
                                            workload::NpbApp::kDC,
                                            cc.n_nodes, npb));
    return cluster.run();
  };
  RunResult fair = run_with(ManagerKind::kFair);
  RunResult pen = run_with(ManagerKind::kPenelope);
  ASSERT_TRUE(fair.all_completed && pen.all_completed);
  double fair_avg_power =
      fair.total_energy_joules / fair.runtime_seconds;
  double pen_avg_power = pen.total_energy_joules / pen.runtime_seconds;
  EXPECT_LT(pen.runtime_seconds, fair.runtime_seconds);
  EXPECT_GT(pen_avg_power, fair_avg_power * 0.98);
}

}  // namespace
}  // namespace penelope::cluster
