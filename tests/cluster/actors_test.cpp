#include "cluster/actors.hpp"

#include <gtest/gtest.h>

#include "core/protocol.hpp"

namespace penelope::cluster {
namespace {

using common::from_seconds;

NodeConfig test_node_config(int id) {
  NodeConfig nc;
  nc.id = id;
  nc.initial_cap_watts = 160.0;
  nc.epsilon_watts = 5.0;
  nc.period = common::kTicksPerSecond;
  nc.request_timeout = common::kTicksPerSecond;
  nc.start_offset = 1000;  // 1 ms
  nc.rapl.safe_range = {.min_watts = 80.0, .max_watts = 250.0};
  nc.rapl.idle_watts = 40.0;
  nc.measurement_noise_watts = 0.0;
  nc.seed = 99 + static_cast<std::uint64_t>(id);
  return nc;
}

workload::WorkloadProfile steady_profile(double demand, double work) {
  workload::WorkloadProfile p;
  p.name = "steady";
  p.phases.push_back(workload::Phase{"hot", demand, work});
  return p;
}

TEST(NodeBody, TickDrivesApplicationToCompletion) {
  sim::Simulator sim;
  NodeConfig nc = test_node_config(0);
  // Demand below cap: runs at full speed, 5 s of work.
  NodeBody body(sim, nc, steady_profile(120.0, 5.0));
  body.rapl().set_cap(nc.initial_cap_watts);
  bool completed = false;
  common::Ticks completed_at = 0;
  body.set_on_complete([&](net::NodeId, common::Ticks at) {
    completed = true;
    completed_at = at;
  });
  for (int t = 1; t <= 10; ++t) body.tick(from_seconds(t));
  EXPECT_TRUE(completed);
  EXPECT_TRUE(body.app_done());
  // RAPL converges in ~0.5 s; the app should finish close to 5 s.
  EXPECT_NEAR(common::to_seconds(completed_at), 5.0, 0.5);
}

TEST(NodeBody, DemandDropsToIdleAfterCompletion) {
  sim::Simulator sim;
  NodeConfig nc = test_node_config(0);
  NodeBody body(sim, nc, steady_profile(120.0, 2.0));
  body.rapl().set_cap(nc.initial_cap_watts);
  for (int t = 1; t <= 5; ++t) body.tick(from_seconds(t));
  EXPECT_NEAR(body.rapl().demand(), nc.rapl.idle_watts, 1e-9);
}

TEST(NodeBody, MeasurementNoiseAppliedToReturnOnly) {
  sim::Simulator sim;
  NodeConfig nc = test_node_config(0);
  nc.measurement_noise_watts = 5.0;
  NodeBody body(sim, nc, steady_profile(120.0, 1000.0));
  body.rapl().set_cap(nc.initial_cap_watts);
  double sum = 0.0;
  const int n = 200;
  for (int t = 1; t <= n; ++t) sum += body.tick(from_seconds(t));
  // Mean of noisy reads should still track the true ~120 W.
  EXPECT_NEAR(sum / n, 120.0, 2.0);
}

TEST(FairNodeActor, CapNeverChanges) {
  sim::Simulator sim;
  NodeConfig nc = test_node_config(0);
  FairNodeActor actor(sim, nc, steady_profile(200.0, 30.0));
  sim.run_until(from_seconds(10.0));
  EXPECT_DOUBLE_EQ(actor.cap(), nc.initial_cap_watts);
}

struct PenelopePairFixture {
  sim::Simulator sim;
  net::Network net;
  ClusterMetrics metrics;
  std::unique_ptr<PenelopeNodeActor> donor;
  std::unique_ptr<PenelopeNodeActor> hungry;

  PenelopePairFixture(double donor_demand, double hungry_demand)
      : net(sim, net::NetworkConfig{}) {
    core::PoolConfig pool;
    net::SerialServerConfig service{.service_min = 5, .service_max = 10,
                                    .queue_capacity = 64, .seed = 3};
    // Node 0 donates (low demand), node 1 is hungry.
    donor = std::make_unique<PenelopeNodeActor>(
        sim, net, test_node_config(0), pool, service,
        steady_profile(donor_demand, 1e6),
        [] { return net::NodeId{1}; }, metrics);
    hungry = std::make_unique<PenelopeNodeActor>(
        sim, net, test_node_config(1), pool, service,
        steady_profile(hungry_demand, 1e6),
        [] { return net::NodeId{0}; }, metrics);
  }
};

TEST(PenelopeNodeActor, PowerFlowsFromDonorToHungry) {
  PenelopePairFixture f(/*donor=*/100.0, /*hungry=*/240.0);
  // The protocol reaches a sawtooth equilibrium (the donor periodically
  // reclaims toward its initial cap via urgency), so assert on the
  // time-averaged caps, not an instantaneous snapshot.
  double donor_sum = 0.0;
  double hungry_sum = 0.0;
  const int kSeconds = 30;
  for (int s = 1; s <= kSeconds; ++s) {
    f.sim.run_until(from_seconds(s));
    donor_sum += f.donor->cap();
    hungry_sum += f.hungry->cap();
  }
  EXPECT_LT(donor_sum / kSeconds, 140.0);
  EXPECT_GT(hungry_sum / kSeconds, 170.0);
  EXPECT_GT(f.metrics.turnaround_ms().size(), 0u);
  EXPECT_GT(f.hungry->decider().stats().watts_received, 0.0);
}

TEST(PenelopeNodeActor, ConservationHolds) {
  PenelopePairFixture f(100.0, 240.0);
  f.sim.run_until(from_seconds(30.0));
  double total = f.donor->cap() + f.donor->pool_watts() +
                 f.hungry->cap() + f.hungry->pool_watts() +
                 f.metrics.in_flight_watts() + f.metrics.stranded_watts();
  EXPECT_NEAR(total, 320.0, 1e-6);
}

TEST(PenelopeNodeActor, TurnaroundIsSubMillisecondOnQuietNetwork) {
  PenelopePairFixture f(100.0, 240.0);
  f.sim.run_until(from_seconds(20.0));
  ASSERT_FALSE(f.metrics.turnaround_ms().empty());
  for (double ms : f.metrics.turnaround_ms()) {
    EXPECT_LT(ms, 5.0);
    EXPECT_GT(ms, 0.0);
  }
}

TEST(PenelopeNodeActor, DeadPeerCausesTimeoutsNotWedge) {
  PenelopePairFixture f(100.0, 240.0);
  f.net.fail_node(0);  // the donor (and target of all hungry requests)
  f.sim.run_until(from_seconds(15.0));
  EXPECT_GT(f.metrics.timeouts(), 5u);
  // The hungry node keeps running at its own cap; no crash, no wedge.
  EXPECT_NEAR(f.hungry->cap(), 160.0, 1.0);
}

TEST(PenelopeNodeActor, KillManagementFreezesCapButAppRuns) {
  PenelopePairFixture f(100.0, 240.0);
  f.sim.run_until(from_seconds(10.0));
  double donor_cap = f.donor->cap();
  f.donor->kill_management();
  f.sim.run_until(from_seconds(25.0));
  EXPECT_DOUBLE_EQ(f.donor->cap(), donor_cap);
  EXPECT_FALSE(f.donor->body().app_done());
  EXPECT_GT(f.donor->body().fraction_complete(), 0.0);
}

TEST(PenelopeNodeActor, UrgencyRestoresStarvedNode) {
  // Donor gives away power while idle, then becomes hungry below its
  // initial cap: urgency must pull it back up even though the system has
  // no free excess.
  sim::Simulator sim;
  net::Network net(sim, net::NetworkConfig{});
  ClusterMetrics metrics;
  core::PoolConfig pool;
  net::SerialServerConfig service{.service_min = 5, .service_max = 10,
                                  .queue_capacity = 64, .seed = 3};
  // Node 0: idle 12 s (donates down to safe min), then hot forever.
  workload::WorkloadProfile phased;
  phased.name = "phased";
  phased.phases = {workload::Phase{"idle", 40.0, 12.0},
                   workload::Phase{"hot", 240.0, 1e6}};
  auto node0 = std::make_unique<PenelopeNodeActor>(
      sim, net, test_node_config(0), pool, service, phased,
      [] { return net::NodeId{1}; }, metrics);
  // Node 1: always hungry; absorbs node 0's donations.
  auto node1 = std::make_unique<PenelopeNodeActor>(
      sim, net, test_node_config(1), pool, service,
      steady_profile(240.0, 1e6), [] { return net::NodeId{0}; }, metrics);

  sim.run_until(from_seconds(10.0));
  EXPECT_LT(node0->cap(), 100.0);   // donated down
  EXPECT_GT(node1->cap(), 180.0);   // absorbed it

  sim.run_until(from_seconds(40.0));
  // Node 0 went hot at ~12 s below its initial cap: urgent requests make
  // node 1 release down to its initial cap and return the power.
  EXPECT_GT(node0->cap(), 140.0);
  EXPECT_LE(node1->cap(), 165.0);
  EXPECT_GT(node0->decider().stats().urgent_requests, 0u);
  EXPECT_GT(node1->decider().stats().urgency_releases, 0u);
}

}  // namespace
}  // namespace penelope::cluster
