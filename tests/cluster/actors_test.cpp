#include "cluster/actors.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <unordered_map>

#include "central/protocol.hpp"
#include "core/protocol.hpp"

namespace penelope::cluster {
namespace {

using common::from_seconds;

NodeConfig test_node_config(int id) {
  NodeConfig nc;
  nc.id = id;
  nc.initial_cap_watts = 160.0;
  nc.epsilon_watts = 5.0;
  nc.period = common::kTicksPerSecond;
  nc.request_timeout = common::kTicksPerSecond;
  nc.start_offset = 1000;  // 1 ms
  nc.rapl.safe_range = {.min_watts = 80.0, .max_watts = 250.0};
  nc.rapl.idle_watts = 40.0;
  nc.measurement_noise_watts = 0.0;
  nc.seed = 99 + static_cast<std::uint64_t>(id);
  return nc;
}

workload::WorkloadProfile steady_profile(double demand, double work) {
  workload::WorkloadProfile p;
  p.name = "steady";
  p.phases.push_back(workload::Phase{"hot", demand, work});
  return p;
}

TEST(NodeBody, TickDrivesApplicationToCompletion) {
  sim::Simulator sim;
  NodeConfig nc = test_node_config(0);
  // Demand below cap: runs at full speed, 5 s of work.
  NodeBody body(sim, nc, steady_profile(120.0, 5.0));
  body.rapl().set_cap(nc.initial_cap_watts);
  bool completed = false;
  common::Ticks completed_at = 0;
  body.set_on_complete([&](net::NodeId, common::Ticks at) {
    completed = true;
    completed_at = at;
  });
  for (int t = 1; t <= 10; ++t) body.tick(from_seconds(t));
  EXPECT_TRUE(completed);
  EXPECT_TRUE(body.app_done());
  // RAPL converges in ~0.5 s; the app should finish close to 5 s.
  EXPECT_NEAR(common::to_seconds(completed_at), 5.0, 0.5);
}

TEST(NodeBody, DemandDropsToIdleAfterCompletion) {
  sim::Simulator sim;
  NodeConfig nc = test_node_config(0);
  NodeBody body(sim, nc, steady_profile(120.0, 2.0));
  body.rapl().set_cap(nc.initial_cap_watts);
  for (int t = 1; t <= 5; ++t) body.tick(from_seconds(t));
  EXPECT_NEAR(body.rapl().demand(), nc.rapl.idle_watts, 1e-9);
}

TEST(NodeBody, MeasurementNoiseAppliedToReturnOnly) {
  sim::Simulator sim;
  NodeConfig nc = test_node_config(0);
  nc.measurement_noise_watts = 5.0;
  NodeBody body(sim, nc, steady_profile(120.0, 1000.0));
  body.rapl().set_cap(nc.initial_cap_watts);
  double sum = 0.0;
  const int n = 200;
  for (int t = 1; t <= n; ++t) sum += body.tick(from_seconds(t));
  // Mean of noisy reads should still track the true ~120 W.
  EXPECT_NEAR(sum / n, 120.0, 2.0);
}

TEST(FairNodeActor, CapNeverChanges) {
  sim::Simulator sim;
  NodeConfig nc = test_node_config(0);
  FairNodeActor actor(sim, nc, steady_profile(200.0, 30.0));
  sim.run_until(from_seconds(10.0));
  EXPECT_DOUBLE_EQ(actor.cap(), nc.initial_cap_watts);
}

struct PenelopePairFixture {
  sim::Simulator sim;
  net::Network net;
  ClusterMetrics metrics;
  std::unique_ptr<PenelopeNodeActor> donor;
  std::unique_ptr<PenelopeNodeActor> hungry;

  PenelopePairFixture(double donor_demand, double hungry_demand,
                      net::NetworkConfig net_cfg = {})
      : net(sim, net_cfg) {
    core::PoolConfig pool;
    net::SerialServerConfig service{.service_min = 5, .service_max = 10,
                                    .queue_capacity = 64, .seed = 3};
    // Node 0 donates (low demand), node 1 is hungry.
    donor = std::make_unique<PenelopeNodeActor>(
        sim, net, test_node_config(0), pool, service,
        steady_profile(donor_demand, 1e6),
        [] { return net::NodeId{1}; }, metrics);
    hungry = std::make_unique<PenelopeNodeActor>(
        sim, net, test_node_config(1), pool, service,
        steady_profile(hungry_demand, 1e6),
        [] { return net::NodeId{0}; }, metrics);
  }
};

TEST(PenelopeNodeActor, PowerFlowsFromDonorToHungry) {
  PenelopePairFixture f(/*donor=*/100.0, /*hungry=*/240.0);
  // The protocol reaches a sawtooth equilibrium (the donor periodically
  // reclaims toward its initial cap via urgency), so assert on the
  // time-averaged caps, not an instantaneous snapshot.
  double donor_sum = 0.0;
  double hungry_sum = 0.0;
  const int kSeconds = 30;
  for (int s = 1; s <= kSeconds; ++s) {
    f.sim.run_until(from_seconds(s));
    donor_sum += f.donor->cap();
    hungry_sum += f.hungry->cap();
  }
  EXPECT_LT(donor_sum / kSeconds, 140.0);
  EXPECT_GT(hungry_sum / kSeconds, 170.0);
  EXPECT_GT(f.metrics.turnaround_ms().size(), 0u);
  EXPECT_GT(f.hungry->decider().stats().watts_received, 0.0);
}

TEST(PenelopeNodeActor, ConservationHolds) {
  PenelopePairFixture f(100.0, 240.0);
  f.sim.run_until(from_seconds(30.0));
  double total = f.donor->cap() + f.donor->pool_watts() +
                 f.hungry->cap() + f.hungry->pool_watts() +
                 f.metrics.in_flight_watts() + f.metrics.stranded_watts();
  EXPECT_NEAR(total, 320.0, 1e-6);
}

TEST(PenelopeNodeActor, TurnaroundIsSubMillisecondOnQuietNetwork) {
  PenelopePairFixture f(100.0, 240.0);
  f.sim.run_until(from_seconds(20.0));
  ASSERT_FALSE(f.metrics.turnaround_ms().empty());
  for (double ms : f.metrics.turnaround_ms()) {
    EXPECT_LT(ms, 5.0);
    EXPECT_GT(ms, 0.0);
  }
}

TEST(PenelopeNodeActor, DeadPeerCausesTimeoutsNotWedge) {
  PenelopePairFixture f(100.0, 240.0);
  f.net.fail_node(0);  // the donor (and target of all hungry requests)
  f.sim.run_until(from_seconds(15.0));
  EXPECT_GT(f.metrics.timeouts(), 5u);
  // The hungry node keeps running at its own cap; no crash, no wedge.
  EXPECT_NEAR(f.hungry->cap(), 160.0, 1.0);
}

TEST(PenelopeNodeActor, KillManagementFreezesCapButAppRuns) {
  PenelopePairFixture f(100.0, 240.0);
  f.sim.run_until(from_seconds(10.0));
  double donor_cap = f.donor->cap();
  f.donor->kill_management();
  f.sim.run_until(from_seconds(25.0));
  EXPECT_DOUBLE_EQ(f.donor->cap(), donor_cap);
  EXPECT_FALSE(f.donor->body().app_done());
  EXPECT_GT(f.donor->body().fraction_complete(), 0.0);
}

TEST(BoundStaleMap, UnderTheCapNothingIsTouched) {
  std::unordered_map<std::uint64_t, common::Ticks> stale;
  for (std::uint64_t t = 1; t <= 10; ++t) stale[t] = common::Ticks(t);
  // Even with a horizon that would prune everything, a map under the cap
  // is left alone — pruning is purely a memory bound, not a semantic
  // expiry (late grants against small maps must still match).
  bound_stale_map(stale, /*horizon=*/1000, /*cap=*/16);
  EXPECT_EQ(stale.size(), 10u);
}

TEST(BoundStaleMap, HorizonPruneDropsExpiredEntriesFirst) {
  std::unordered_map<std::uint64_t, common::Ticks> stale;
  for (std::uint64_t t = 1; t <= 300; ++t) stale[t] = common::Ticks(t);
  bound_stale_map(stale, /*horizon=*/100, /*cap=*/256);
  // Entries older than the horizon go; the survivors are under the cap,
  // so no further eviction is needed.
  EXPECT_EQ(stale.size(), 201u);
  EXPECT_FALSE(stale.contains(99));
  EXPECT_TRUE(stale.contains(100));
  EXPECT_TRUE(stale.contains(300));
}

TEST(BoundStaleMap, HardCapEvictsOldestWhenEverythingIsRecent) {
  // A loss burst can make every entry recent: the horizon prune deletes
  // nothing and the hard cap must evict oldest-first.
  std::unordered_map<std::uint64_t, common::Ticks> stale;
  for (std::uint64_t t = 1; t <= 300; ++t) stale[t] = common::Ticks(t);
  bound_stale_map(stale, /*horizon=*/0, /*cap=*/256);
  EXPECT_EQ(stale.size(), 256u);
  for (std::uint64_t t = 1; t <= 44; ++t) EXPECT_FALSE(stale.contains(t));
  for (std::uint64_t t = 45; t <= 300; ++t) EXPECT_TRUE(stale.contains(t));
}

TEST(PenelopeNodeActor, StaleMapStaysBoundedUnderSustainedLoss) {
  net::NetworkConfig cfg;
  cfg.loss_probability = 0.6;
  PenelopePairFixture f(100.0, 240.0, cfg);
  f.sim.run_until(from_seconds(90.0));
  EXPECT_GT(f.metrics.timeouts(), 10u);
  EXPECT_LE(f.donor->stale_entries(), 256u);
  EXPECT_LE(f.hungry->stale_entries(), 256u);
  // Losses leave watts in flight forever (no drop handler here), but the
  // ledger still accounts for every one of them.
  double total = f.donor->cap() + f.donor->pool_watts() +
                 f.hungry->cap() + f.hungry->pool_watts() +
                 f.metrics.in_flight_watts() + f.metrics.stranded_watts();
  EXPECT_NEAR(total, 320.0, 1e-6);
}

TEST(PenelopeNodeActor, DuplicatedMessagesNeverDoubleApply) {
  // Every request, grant, and push is delivered twice: the receive
  // windows must drop the second copies, or caps+pools would mint power.
  net::NetworkConfig cfg;
  cfg.duplicate_probability = 1.0;
  PenelopePairFixture f(100.0, 240.0, cfg);
  f.sim.run_until(from_seconds(30.0));
  EXPECT_GT(f.metrics.duplicates_dropped(), 0u);
  EXPECT_GT(f.hungry->decider().stats().watts_received, 0.0);
  double total = f.donor->cap() + f.donor->pool_watts() +
                 f.hungry->cap() + f.hungry->pool_watts() +
                 f.metrics.in_flight_watts() + f.metrics.stranded_watts();
  EXPECT_NEAR(total, 320.0, 1e-6);
}

TEST(PenelopeNodeActor, LateReorderedGrantsAreBankedExactlyOnce) {
  // Reorder delays past the request timeout force the stale-grant path;
  // combined with duplication, a late grant can also arrive twice. The
  // watts must land in the pool exactly once.
  net::NetworkConfig cfg;
  cfg.duplicate_probability = 0.25;
  cfg.reorder_probability = 0.5;
  cfg.reorder_delay = 3 * common::kTicksPerSecond;
  PenelopePairFixture f(100.0, 240.0, cfg);
  f.sim.run_until(from_seconds(40.0));
  EXPECT_GT(f.metrics.timeouts(), 0u);
  EXPECT_GT(f.metrics.duplicates_dropped(), 0u);
  double total = f.donor->cap() + f.donor->pool_watts() +
                 f.hungry->cap() + f.hungry->pool_watts() +
                 f.metrics.in_flight_watts() + f.metrics.stranded_watts();
  EXPECT_NEAR(total, 320.0, 1e-6);
}

TEST(PenelopeNodeActor, PartialGrantAppliesAreNotOverCounted) {
  // Demand far above the safe ceiling pins the hungry cap at max: grants
  // can only partially apply and the remainder is banked. Every applied
  // watt must trace back to exactly one release — counting full grants
  // as applied (and re-counting the banked part on a later pool take)
  // breaks this inequality.
  workload::WorkloadProfile surge;
  surge.name = "surge";
  for (int cycle = 0; cycle < 8; ++cycle) {
    surge.phases.push_back(workload::Phase{"hot", 400.0, 8.0});
    surge.phases.push_back(workload::Phase{"cool", 60.0, 4.0});
  }
  surge.phases.push_back(workload::Phase{"tail", 400.0, 1e6});

  sim::Simulator sim;
  net::Network net(sim, net::NetworkConfig{});
  ClusterMetrics metrics;
  core::PoolConfig pool;
  net::SerialServerConfig service{.service_min = 5, .service_max = 10,
                                  .queue_capacity = 64, .seed = 3};
  auto donor = std::make_unique<PenelopeNodeActor>(
      sim, net, test_node_config(0), pool, service,
      steady_profile(100.0, 1e6), [] { return net::NodeId{1}; }, metrics);
  auto hungry = std::make_unique<PenelopeNodeActor>(
      sim, net, test_node_config(1), pool, service, surge,
      [] { return net::NodeId{0}; }, metrics);
  sim.run_until(from_seconds(80.0));

  double applied = 0.0;
  double released = 0.0;
  for (const auto& e : metrics.applies()) applied += e.watts;
  for (const auto& e : metrics.releases()) released += e.watts;
  EXPECT_GT(applied, 0.0);
  EXPECT_LE(applied, released + 1e-6);
  EXPECT_LE(hungry->cap(), 250.0 + 1e-9);  // safe ceiling held
}

TEST(PenelopeNodeActor, BlacklistedStickyPeerFallsBackToRedraw) {
  sim::Simulator sim;
  net::Network net(sim, net::NetworkConfig{});
  ClusterMetrics metrics;
  core::PoolConfig pool;
  net::SerialServerConfig service{.service_min = 5, .service_max = 10,
                                  .queue_capacity = 64, .seed = 3};
  auto sticky_config = [](int id) {
    NodeConfig nc = test_node_config(id);
    nc.sticky_peers = true;
    nc.blacklist_after_timeouts = 3;
    return nc;
  };
  net::NodeId target = 0;
  auto donor0 = std::make_unique<PenelopeNodeActor>(
      sim, net, sticky_config(0), pool, service,
      steady_profile(100.0, 1e6), [] { return net::NodeId{1}; }, metrics);
  auto donor1 = std::make_unique<PenelopeNodeActor>(
      sim, net, sticky_config(1), pool, service,
      steady_profile(100.0, 1e6), [] { return net::NodeId{0}; }, metrics);
  auto hungry = std::make_unique<PenelopeNodeActor>(
      sim, net, sticky_config(2), pool, service,
      steady_profile(240.0, 1e6), [&] { return target; }, metrics);

  // Phase 1: the hungry node sticks to donor 0 (its only draw) and keeps
  // getting paid.
  sim.run_until(from_seconds(10.0));
  std::uint64_t served_by_0 = donor0->pool_service_stats().accepted;
  EXPECT_GT(served_by_0, 0u);

  // Phase 2: blacklist donor 0 and point fresh draws at donor 1. The
  // sticky branch must honour the blacklist and fall through to the
  // redraw instead of probing donor 0 forever.
  hungry->force_peer_blacklist(0, from_seconds(1e6));
  target = 1;
  std::uint64_t served_by_1 = donor1->pool_service_stats().accepted;
  double received_before = hungry->decider().stats().watts_received;
  sim.run_until(from_seconds(25.0));
  EXPECT_EQ(donor0->pool_service_stats().accepted, served_by_0);
  EXPECT_GT(donor1->pool_service_stats().accepted, served_by_1);
  EXPECT_GT(hungry->decider().stats().watts_received, received_before);
}

TEST(CentralClientActor, UnknownTxnGrantIsStrandedNotApplied) {
  sim::Simulator sim;
  net::Network net(sim, net::NetworkConfig{});
  ClusterMetrics metrics;
  NodeConfig nc = test_node_config(0);
  // Demand just under the cap: the client neither donates nor requests,
  // so the only traffic is the grant forged below.
  CentralClientActor client(sim, net, nc, /*server_id=*/5,
                            steady_profile(158.0, 1e6), metrics);
  sim.run_until(from_seconds(3.0));
  double cap_before = client.cap();

  // A grant for a transaction this client never issued (mis-routed or
  // spoofed). Applying it would mint power; it must be stranded instead.
  metrics.grant_departed(25.0);
  net.send(5, 0, central::CentralGrant{25.0, false, 0xBEEF});
  sim.run_until(from_seconds(4.0));

  EXPECT_DOUBLE_EQ(client.cap(), cap_before);
  EXPECT_EQ(metrics.unknown_txn_grants(), 1u);
  EXPECT_NEAR(metrics.stranded_watts(), 25.0, 1e-9);
  EXPECT_NEAR(metrics.in_flight_watts(), 0.0, 1e-9);
}

TEST(CentralClientActor, DuplicatedUnknownGrantStrandsOnlyOnce) {
  // The duplicate of a forged/unknown grant must be refused by the
  // receive window before the stranding branch can run twice.
  sim::Simulator sim;
  net::NetworkConfig cfg;
  cfg.duplicate_probability = 1.0;
  net::Network net(sim, cfg);
  ClusterMetrics metrics;
  NodeConfig nc = test_node_config(0);
  CentralClientActor client(sim, net, nc, /*server_id=*/5,
                            steady_profile(158.0, 1e6), metrics);
  sim.run_until(from_seconds(3.0));

  metrics.grant_departed(25.0);
  net.send(5, 0, central::CentralGrant{25.0, false, 0xBEEF});
  sim.run_until(from_seconds(4.0));

  EXPECT_EQ(metrics.unknown_txn_grants(), 1u);
  EXPECT_EQ(metrics.duplicates_dropped(), 1u);
  EXPECT_NEAR(metrics.stranded_watts(), 25.0, 1e-9);
  EXPECT_NEAR(metrics.in_flight_watts(), 0.0, 1e-9);
}

TEST(PenelopeNodeActor, UrgencyRestoresStarvedNode) {
  // Donor gives away power while idle, then becomes hungry below its
  // initial cap: urgency must pull it back up even though the system has
  // no free excess.
  sim::Simulator sim;
  net::Network net(sim, net::NetworkConfig{});
  ClusterMetrics metrics;
  core::PoolConfig pool;
  net::SerialServerConfig service{.service_min = 5, .service_max = 10,
                                  .queue_capacity = 64, .seed = 3};
  // Node 0: idle 12 s (donates down to safe min), then hot forever.
  workload::WorkloadProfile phased;
  phased.name = "phased";
  phased.phases = {workload::Phase{"idle", 40.0, 12.0},
                   workload::Phase{"hot", 240.0, 1e6}};
  auto node0 = std::make_unique<PenelopeNodeActor>(
      sim, net, test_node_config(0), pool, service, phased,
      [] { return net::NodeId{1}; }, metrics);
  // Node 1: always hungry; absorbs node 0's donations.
  auto node1 = std::make_unique<PenelopeNodeActor>(
      sim, net, test_node_config(1), pool, service,
      steady_profile(240.0, 1e6), [] { return net::NodeId{0}; }, metrics);

  sim.run_until(from_seconds(10.0));
  EXPECT_LT(node0->cap(), 100.0);   // donated down
  EXPECT_GT(node1->cap(), 180.0);   // absorbed it

  sim.run_until(from_seconds(40.0));
  // Node 0 went hot at ~12 s below its initial cap: urgent requests make
  // node 1 release down to its initial cap and return the power.
  EXPECT_GT(node0->cap(), 140.0);
  EXPECT_LE(node1->cap(), 165.0);
  EXPECT_GT(node0->decider().stats().urgent_requests, 0u);
  EXPECT_GT(node1->decider().stats().urgency_releases, 0u);
}

}  // namespace
}  // namespace penelope::cluster
