// Crash–restart churn and the membership layer: failure detection,
// epoch-guarded reclamation of dead nodes' watts, and rejoin at a
// bumped incarnation. The conservation audit is the spine of every
// test here — churn moves power between caps, pools, the in-flight
// ledger, and the stranded/reclaimable ledger, and none of those moves
// may mint or leak a single watt.
#include <gtest/gtest.h>

#include <vector>

#include "cluster/cluster.hpp"

namespace penelope::cluster {
namespace {

ClusterConfig membership_config(ManagerKind manager, int n_nodes,
                                std::uint64_t seed) {
  ClusterConfig cc;
  cc.manager = manager;
  cc.n_nodes = n_nodes;
  cc.per_socket_cap_watts = 70.0;
  cc.max_seconds = 600.0;
  cc.seed = seed;
  cc.membership_enabled = true;
  return cc;
}

/// Long-running flat profiles so membership timelines (suspect at 3 s,
/// dead at 6 s of silence) play out before any workload completes.
std::vector<workload::WorkloadProfile> long_profiles(int n_nodes) {
  std::vector<workload::WorkloadProfile> profiles;
  for (int i = 0; i < n_nodes; ++i) {
    workload::WorkloadProfile p;
    p.name = i % 2 ? "hungry" : "donor";
    p.phases.push_back(workload::Phase{"hot", i % 2 ? 220.0 : 110.0, 1e6});
    profiles.push_back(std::move(p));
  }
  return profiles;
}

TEST(Churn, CrashStrandsResidueTaggedWithIncarnation) {
  ClusterConfig cc = membership_config(ManagerKind::kPenelope, 6, 17);
  Cluster cluster(cc, long_profiles(cc.n_nodes));
  cluster.run_for(5.0);

  cluster.crash_node(2);
  EXPECT_TRUE(cluster.node_crashed(2));
  // The crash seized the cap share above the safe floor plus the banked
  // pool, and stranded it against (2, incarnation 1).
  EXPECT_GT(cluster.metrics().reclaimable_watts(), 0.0);
  EXPECT_GT(cluster.metrics().stranded_watts(), 0.0);
  EXPECT_DOUBLE_EQ(cluster.node_pool_watts(2), 0.0);
  EXPECT_NEAR(cluster.audit().conservation_error(), 0.0, 1e-6);
  double tagged = cluster.metrics().reclaimable_watts();

  // Six missed heartbeats later the survivors declare it dead and
  // exactly one of them consumes the reclaim tag into its pool.
  cluster.run_for(10.0);
  EXPECT_GT(cluster.metrics().nodes_suspected(), 0u);
  EXPECT_GT(cluster.metrics().nodes_declared_dead(), 0u);
  EXPECT_GE(cluster.metrics().reclaims(), 1u);
  EXPECT_GE(cluster.metrics().watts_reclaimed(), tagged - 1e-9);
  EXPECT_NEAR(cluster.audit().conservation_error(), 0.0, 1e-6);
  EXPECT_LT(cluster.collect_result().audit.max_abs_conservation_error,
            1e-6);
}

TEST(Churn, RestartSelfReclaimsAndBumpsIncarnation) {
  ClusterConfig cc = membership_config(ManagerKind::kPenelope, 6, 18);
  Cluster cluster(cc, long_profiles(cc.n_nodes));
  cluster.run_for(5.0);

  EXPECT_EQ(cluster.node_incarnation(3), 1u);
  cluster.crash_node(3);
  double tagged = cluster.metrics().reclaimable_watts();
  ASSERT_GT(tagged, 0.0);

  // Back up after 1 s: no peer has even suspected it yet, so the crash
  // residue is still tagged — the restarting node takes it back itself.
  cluster.run_for(1.0);
  cluster.recover_node(3);
  EXPECT_FALSE(cluster.node_crashed(3));
  EXPECT_EQ(cluster.node_incarnation(3), 2u);
  EXPECT_GE(cluster.metrics().watts_reclaimed(), tagged - 1e-9);
  EXPECT_NEAR(cluster.metrics().reclaimable_watts(), 0.0, 1e-9);

  cluster.run_for(5.0);
  EXPECT_EQ(cluster.metrics().false_suspicions(), 0u);
  EXPECT_NEAR(cluster.audit().conservation_error(), 0.0, 1e-6);
  EXPECT_LT(cluster.collect_result().audit.max_abs_conservation_error,
            1e-6);
}

TEST(Churn, IncarnationBumpsOnEveryRestart) {
  ClusterConfig cc = membership_config(ManagerKind::kPenelope, 4, 19);
  Cluster cluster(cc, long_profiles(cc.n_nodes));
  cluster.run_for(2.0);
  cluster.crash_node(1);
  cluster.run_for(1.0);
  cluster.recover_node(1);
  cluster.run_for(2.0);
  cluster.crash_node(1);
  cluster.run_for(1.0);
  cluster.recover_node(1);
  EXPECT_EQ(cluster.node_incarnation(1), 3u);
  // Idempotence: a double crash or double recover is a no-op.
  cluster.recover_node(1);
  cluster.crash_node(1);
  cluster.crash_node(1);
  cluster.recover_node(1);
  EXPECT_EQ(cluster.node_incarnation(1), 4u);
  EXPECT_NEAR(cluster.audit().conservation_error(), 0.0, 1e-6);
}

TEST(Churn, FalseSuspicionNeverReclaimsALiveNodesWatts) {
  // Partition node 0 away long enough to be declared dead, then heal.
  // Its watts were never stranded (it never crashed), so the epoch
  // guard must hand the suspectors nothing; when its heartbeats resume
  // at the same incarnation, the suspicion is recorded as false.
  ClusterConfig cc = membership_config(ManagerKind::kPenelope, 6, 20);
  Cluster cluster(cc, long_profiles(cc.n_nodes));
  cluster.run_for(3.0);
  cluster.network().set_partition({{0}, {1, 2, 3, 4, 5}});
  cluster.run_for(12.0);  // silence > dead_after_missed on both sides
  EXPECT_GT(cluster.metrics().nodes_declared_dead(), 0u);
  EXPECT_EQ(cluster.metrics().reclaims(), 0u);
  EXPECT_DOUBLE_EQ(cluster.metrics().watts_reclaimed(), 0.0);

  cluster.network().clear_partition();
  cluster.run_for(5.0);
  EXPECT_GT(cluster.metrics().false_suspicions(), 0u);
  EXPECT_EQ(cluster.metrics().reclaims(), 0u);
  EXPECT_DOUBLE_EQ(cluster.metrics().watts_reclaimed(), 0.0);
  EXPECT_FALSE(cluster.node_crashed(0));
  EXPECT_EQ(cluster.node_incarnation(0), 1u);
  EXPECT_NEAR(cluster.audit().conservation_error(), 0.0, 1e-6);
  EXPECT_LT(cluster.collect_result().audit.max_abs_conservation_error,
            1e-6);
}

TEST(Churn, CentralServerReclaimsDeadClientsShare) {
  // The SLURM-analogue path: a dead client's cap share above the safe
  // floor flows back into the server's budget; the client rejoins at a
  // bumped incarnation and is re-admitted through the normal request
  // path.
  ClusterConfig cc = membership_config(ManagerKind::kCentral, 6, 21);
  Cluster cluster(cc, long_profiles(cc.n_nodes));
  cluster.run_for(3.0);
  cluster.crash_node(1);
  double tagged = cluster.metrics().reclaimable_watts();
  ASSERT_GT(tagged, 0.0);

  cluster.run_for(10.0);  // detector: suspected at 3 s, dead at 6 s
  EXPECT_GT(cluster.metrics().nodes_declared_dead(), 0u);
  EXPECT_GE(cluster.metrics().reclaims(), 1u);
  // The whole tag flowed into the server's budget (the cache itself may
  // have been granted onward since — the reclaim ledger is the proof).
  EXPECT_GE(cluster.metrics().watts_reclaimed(), tagged - 1e-9);
  EXPECT_NEAR(cluster.audit().conservation_error(), 0.0, 1e-6);

  cluster.recover_node(1);
  cluster.run_for(5.0);
  EXPECT_EQ(cluster.node_incarnation(1), 2u);
  EXPECT_FALSE(cluster.node_crashed(1));
  EXPECT_NEAR(cluster.audit().conservation_error(), 0.0, 1e-6);
  EXPECT_LT(cluster.collect_result().audit.max_abs_conservation_error,
            1e-6);
}

TEST(Churn, ScriptedCrashAndRecoverFaultEvents) {
  // The same lifecycle through the declarative fault plan.
  ClusterConfig cc = membership_config(ManagerKind::kPenelope, 6, 22);
  cc.faults = {
      FaultEvent{FaultEvent::Kind::kCrashNode, common::from_seconds(5.0),
                 2},
      FaultEvent{FaultEvent::Kind::kRecoverNode,
                 common::from_seconds(9.0), 2},
  };
  Cluster cluster(cc, long_profiles(cc.n_nodes));
  cluster.run_for(20.0);
  EXPECT_FALSE(cluster.node_crashed(2));
  EXPECT_EQ(cluster.node_incarnation(2), 2u);
  EXPECT_GT(cluster.metrics().watts_reclaimed(), 0.0);
  EXPECT_LT(cluster.collect_result().audit.max_abs_conservation_error,
            1e-6);
}

TEST(Churn, AdversarialChurnConservesPowerAcrossSeeds) {
  // The pinning property test: random crash–restart churn on a lossy
  // fabric, with a partition layered on top mid-run so suspicion,
  // false suspicion, rejoin, and reclamation all interleave. Across
  // three seeds the periodic audit must never see more than float
  // noise of error, and live power must never exceed the budget.
  for (std::uint64_t seed : {31ull, 32ull, 33ull}) {
    ClusterConfig cc = membership_config(ManagerKind::kPenelope, 10, seed);
    cc.network.loss_probability = 0.03;
    cc.churn_enabled = true;
    cc.churn_mtbf_seconds = 15.0;
    cc.churn_mttr_seconds = 3.0;
    cc.max_seconds = 60.0;
    cc.faults = {
        FaultEvent{FaultEvent::Kind::kPartition,
                   common::from_seconds(20.0), 5},
        FaultEvent{FaultEvent::Kind::kHealPartition,
                   common::from_seconds(32.0), 0},
    };
    Cluster cluster(cc, long_profiles(cc.n_nodes));
    cluster.run_for(55.0);

    RunResult result = cluster.collect_result();
    EXPECT_GT(result.net_stats.node_failures, 0u) << "seed " << seed;
    EXPECT_GT(result.net_stats.node_recoveries, 0u) << "seed " << seed;
    EXPECT_GT(result.watts_reclaimed, 0.0) << "seed " << seed;
    EXPECT_LT(result.audit.max_abs_conservation_error, 1e-6)
        << "seed " << seed;
    EXPECT_LE(result.audit.max_live_overshoot, 1e-6) << "seed " << seed;
    EXPECT_NEAR(cluster.audit().conservation_error(), 0.0, 1e-6)
        << "seed " << seed;
  }
}

TEST(Churn, ChurnScheduleIsDeterministicPerSeed) {
  auto run_once = [](std::uint64_t seed) {
    ClusterConfig cc = membership_config(ManagerKind::kPenelope, 8, seed);
    cc.churn_enabled = true;
    cc.churn_mtbf_seconds = 10.0;
    cc.churn_mttr_seconds = 2.0;
    cc.max_seconds = 40.0;
    Cluster cluster(cc, long_profiles(cc.n_nodes));
    cluster.run_for(35.0);
    return cluster.simulator().trace_hash();
  };
  EXPECT_EQ(run_once(5), run_once(5));
  EXPECT_NE(run_once(5), run_once(6));
}

TEST(Churn, MembershipOffZeroChurnMatchesTheGoldenTrace) {
  // Neutrality pin: with membership and churn at their defaults (off),
  // the exact golden-trace configuration must replay bit-identically —
  // the membership layer may not perturb a single RNG draw or event
  // timestamp of the seed behavior.
  ClusterConfig cc;
  cc.manager = ManagerKind::kPenelope;
  cc.n_nodes = 20;
  cc.per_socket_cap_watts = 60.0;
  cc.network.loss_probability = 0.02;
  cc.seed = 42;
  cc.membership_enabled = false;
  cc.churn_enabled = false;
  Cluster cluster(cc, make_pair_workloads(workload::NpbApp::kEP,
                                          workload::NpbApp::kDC,
                                          cc.n_nodes, {}));
  cluster.run_for(30.0);
  EXPECT_EQ(cluster.simulator().executed_events(), 1665u);
  EXPECT_EQ(cluster.simulator().trace_hash(), 0x868a597206f3db95ull);
  EXPECT_EQ(cluster.metrics().requests_sent(), 352u);
  EXPECT_EQ(cluster.metrics().timeouts(), 15u);
  EXPECT_EQ(cluster.metrics().nodes_suspected(), 0u);
  EXPECT_EQ(cluster.metrics().watts_reclaimed(), 0.0);
}

}  // namespace
}  // namespace penelope::cluster
