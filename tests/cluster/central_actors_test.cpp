// Direct unit tests of the central and hierarchical actors against the
// discrete-event substrate (the cluster tests cover them end-to-end;
// these pin the per-message behaviours).
#include <gtest/gtest.h>

#include "central/protocol.hpp"
#include "cluster/actors.hpp"
#include "hierarchy/protocol.hpp"

namespace penelope::cluster {
namespace {

using common::from_seconds;

NodeConfig client_config(int id) {
  NodeConfig nc;
  nc.id = id;
  nc.initial_cap_watts = 160.0;
  nc.epsilon_watts = 5.0;
  nc.period = common::kTicksPerSecond;
  nc.request_timeout = common::kTicksPerSecond;
  nc.start_offset = 1000;
  nc.rapl.safe_range = {.min_watts = 80.0, .max_watts = 250.0};
  nc.rapl.idle_watts = 40.0;
  nc.measurement_noise_watts = 0.0;
  nc.seed = 31 + static_cast<std::uint64_t>(id);
  return nc;
}

workload::WorkloadProfile steady(double demand) {
  workload::WorkloadProfile p;
  p.name = "steady";
  p.phases.push_back(workload::Phase{"hot", demand, 1e6});
  return p;
}

struct CentralFixture {
  sim::Simulator sim;
  net::Network net;
  ClusterMetrics metrics;
  std::unique_ptr<CentralClientActor> donor;
  std::unique_ptr<CentralClientActor> hungry;
  std::unique_ptr<CentralServerActor> server;

  CentralFixture() : net(sim, net::NetworkConfig{}) {
    net::SerialServerConfig service;
    service.seed = 5;
    donor = std::make_unique<CentralClientActor>(
        sim, net, client_config(0), /*server_id=*/2, steady(100.0),
        metrics);
    hungry = std::make_unique<CentralClientActor>(
        sim, net, client_config(1), /*server_id=*/2, steady(240.0),
        metrics);
    server = std::make_unique<CentralServerActor>(
        sim, net, 2, central::ServerConfig{}, service, metrics);
  }
};

TEST(CentralActors, DonationsReachTheServerCacheThenTheHungry) {
  CentralFixture f;
  f.sim.run_until(from_seconds(3.0));
  // The donor's excess passed through the server...
  EXPECT_GT(f.server->logic().stats().watts_collected, 10.0);
  // ...and the hungry node climbs. The steady state is a sawtooth (the
  // donor reclaims toward its initial cap via centralized urgency), so
  // measure the time average.
  double donor_sum = 0.0;
  double hungry_sum = 0.0;
  const int kSeconds = 30;
  for (int s = 4; s < 4 + kSeconds; ++s) {
    f.sim.run_until(from_seconds(s));
    donor_sum += f.donor->cap();
    hungry_sum += f.hungry->cap();
  }
  EXPECT_LT(donor_sum / kSeconds, 140.0);
  // Comfortably above the 160 W initial cap. The exact steady average
  // moves a watt or two when the network's latency streams change (the
  // sawtooth's reclaim/grant phase against the 1 s sampling grid shifts),
  // so the bound is looser than the ~165 W observed.
  EXPECT_GT(hungry_sum / kSeconds, 163.0);
}

TEST(CentralActors, ConservationAcrossServerProxying) {
  CentralFixture f;
  f.sim.run_until(from_seconds(20.0));
  double total = f.donor->cap() + f.hungry->cap() +
                 f.server->cache_watts() + f.metrics.in_flight_watts() +
                 f.metrics.stranded_watts();
  EXPECT_NEAR(total, 320.0, 1e-6);
}

TEST(CentralActors, TurnaroundSamplesIncludeServiceTime) {
  CentralFixture f;
  f.sim.run_until(from_seconds(10.0));
  ASSERT_FALSE(f.metrics.turnaround_ms().empty());
  for (double ms : f.metrics.turnaround_ms()) {
    // 2x ~50 us latency + 80-100 us service, well under a period.
    EXPECT_GT(ms, 0.1);
    EXPECT_LT(ms, 100.0);
  }
}

TEST(CentralActors, ServerKillStopsGrantsButAppContinues) {
  CentralFixture f;
  f.sim.run_until(from_seconds(5.0));
  f.server->kill();
  std::size_t grants_at_kill = f.metrics.turnaround_ms().size();
  f.sim.run_until(from_seconds(15.0));
  EXPECT_EQ(f.metrics.turnaround_ms().size(), grants_at_kill);
  EXPECT_GT(f.metrics.timeouts(), 0u);
  EXPECT_GT(f.hungry->body().fraction_complete(), 0.0);
}

TEST(HierarchicalActors, ProfilesThenAssignsThenShifts) {
  sim::Simulator sim;
  net::Network net(sim, net::NetworkConfig{});
  ClusterMetrics metrics;
  net::SerialServerConfig service;
  service.seed = 5;

  hierarchy::PoddConfig podd;
  podd.n_nodes = 2;
  podd.initial_cap_watts = 160.0;
  podd.safe_range = {.min_watts = 80.0, .max_watts = 250.0};
  podd.profile_periods = 3;

  auto donor = std::make_unique<CentralClientActor>(
      sim, net, client_config(0), /*server_id=*/2, steady(100.0),
      metrics, /*hierarchical=*/true);
  auto hungry = std::make_unique<CentralClientActor>(
      sim, net, client_config(1), /*server_id=*/2, steady(240.0),
      metrics, /*hierarchical=*/true);
  auto server = std::make_unique<HierarchicalServerActor>(
      sim, net, 2, podd, service, metrics);

  // During the profiling window no shifting happens.
  sim.run_until(from_seconds(2.0));
  EXPECT_TRUE(donor->awaiting_assignment());
  EXPECT_DOUBLE_EQ(donor->cap(), 160.0);
  EXPECT_DOUBLE_EQ(hungry->cap(), 160.0);

  // After profile_periods reports, assignments arrive: the donor's
  // initial cap drops toward its ~100 W demand, the hungry node's
  // rises.
  sim.run_until(from_seconds(6.0));
  EXPECT_FALSE(donor->awaiting_assignment());
  EXPECT_FALSE(hungry->awaiting_assignment());
  EXPECT_TRUE(server->logic().profiling_complete());
  EXPECT_LT(server->logic().assignment().group_a_cap, 140.0);
  EXPECT_GT(server->logic().assignment().group_b_cap, 180.0);

  // Conservation through the reassignment handshake.
  sim.run_until(from_seconds(20.0));
  double total = donor->cap() + hungry->cap() + server->cache_watts() +
                 metrics.in_flight_watts() + metrics.stranded_watts();
  EXPECT_NEAR(total, 320.0, 1e-6);
  EXPECT_GT(hungry->cap(), donor->cap() + 40.0);
}

}  // namespace
}  // namespace penelope::cluster
