// Peer-discovery policies: uniform random (the paper), sticky-on-success
// (retry the last paying peer), and hint forwarding (empty-handed pools
// refer the requester to their own last-successful peer) — the knobs
// bench_ablation sweeps.
#include <gtest/gtest.h>

#include <algorithm>

#include "cluster/cluster.hpp"

namespace penelope::cluster {
namespace {

ClusterConfig discovery_config(int nodes) {
  ClusterConfig cc;
  cc.manager = ManagerKind::kPenelope;
  cc.n_nodes = nodes;
  cc.per_socket_cap_watts = 70.0;
  cc.seed = 3;
  cc.max_seconds = 600.0;
  return cc;
}

/// One donor among many hungry nodes: the hardest discovery setting —
/// a uniform probe finds the donor with probability 1/(n-1).
std::vector<workload::WorkloadProfile> needle_workloads(
    int nodes, double donor_demand = 90.0, double hungry_demand = 240.0) {
  std::vector<workload::WorkloadProfile> profiles;
  for (int i = 0; i < nodes; ++i) {
    workload::WorkloadProfile p;
    p.name = i == 0 ? "donor" : "hungry";
    p.phases.push_back(workload::Phase{
        "hot", i == 0 ? donor_demand : hungry_demand, 1e6});
    profiles.push_back(std::move(p));
  }
  return profiles;
}

double total_received(Cluster& cluster) {
  double total = 0.0;
  for (const auto& ev : cluster.metrics().applies()) total += ev.watts;
  return total;
}

TEST(Discovery, UniformFindsTheNeedleEventually) {
  ClusterConfig cc = discovery_config(12);
  Cluster cluster(cc, needle_workloads(cc.n_nodes));
  cluster.run_for(60.0);
  EXPECT_GT(total_received(cluster), 10.0);
}

TEST(Discovery, StickyReducesWastedProbesOnTheNeedle) {
  // The donor must usually be able to pay a returning requester: a
  // zero-watt revisit clears the sticky peer (actors.cpp), so a donor
  // that is drained most periods makes sticky collapse into uniform
  // and the comparison measures seed noise. A lightly loaded donor
  // whose per-period surplus covers every top-up request keeps the
  // advantage structural: sticky requesters revisit a paying peer
  // while uniform probing misses the needle (n-2)/(n-1) of the time.
  auto probes_per_watt = [](bool sticky) {
    ClusterConfig cc = discovery_config(12);
    cc.sticky_peers = sticky;
    Cluster cluster(cc, needle_workloads(cc.n_nodes, /*donor_demand=*/20.0,
                                         /*hungry_demand=*/150.0));
    cluster.run_for(60.0);
    double received = total_received(cluster);
    return received > 0.0
               ? static_cast<double>(cluster.metrics().requests_sent()) /
                     received
               : 1e18;
  };
  // Sticky requesters return straight to the donor, so they spend fewer
  // requests per received watt than uniform random probing — with a
  // wide margin in this setting (~6 vs ~10 in practice).
  EXPECT_LT(probes_per_watt(true), probes_per_watt(false) * 0.9);
}

TEST(Discovery, HintForwardingConservesPower) {
  ClusterConfig cc = discovery_config(12);
  cc.hint_discovery = true;
  Cluster cluster(cc, needle_workloads(cc.n_nodes));
  cluster.run_for(60.0);
  RunResult result = cluster.collect_result();
  EXPECT_LT(result.audit.max_abs_conservation_error, 1e-6);
  EXPECT_LE(result.audit.max_live_overshoot, 1e-6);
  EXPECT_GT(total_received(cluster), 10.0);
}

TEST(Discovery, HintsDoNotBreakDeterminism) {
  auto run_once = [] {
    ClusterConfig cc = discovery_config(10);
    cc.hint_discovery = true;
    Cluster cluster(cc, needle_workloads(cc.n_nodes));
    cluster.run_for(30.0);
    return cluster.metrics().requests_sent();
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Discovery, PushGossipSpreadsExcessFasterOnTheNeedle) {
  // With one donor among eleven hungry nodes, pull-only discovery finds
  // the donor at ~1/11 per probe — and the donor's urgency keeps
  // reclaiming whatever lingers in its pool. Push-gossip sprays the
  // excess outward before that happens, so more power ends up resting
  // on hungry caps.
  auto hungry_surplus = [](bool push, double seconds) {
    ClusterConfig cc = discovery_config(12);
    cc.push_gossip = push;
    Cluster cluster(cc, needle_workloads(cc.n_nodes));
    cluster.run_for(seconds);
    double initial = cc.initial_node_cap();
    double surplus = 0.0;
    for (int i = 1; i < cc.n_nodes; ++i) {
      surplus += std::max(0.0, cluster.node_cap(i) - initial);
    }
    return surplus;
  };
  double pull_only = hungry_surplus(false, 20.0);
  double with_push = hungry_surplus(true, 20.0);
  EXPECT_GT(with_push, pull_only * 1.2);
}

TEST(Discovery, PushGossipConservesUnderLoss) {
  ClusterConfig cc = discovery_config(12);
  cc.push_gossip = true;
  cc.network.loss_probability = 0.1;  // pushes get lost too
  Cluster cluster(cc, needle_workloads(cc.n_nodes));
  cluster.run_for(40.0);
  RunResult result = cluster.collect_result();
  EXPECT_LT(result.audit.max_abs_conservation_error, 1e-6);
  EXPECT_LE(result.audit.max_live_overshoot, 1e-6);
}

TEST(Discovery, PushGossipOffByDefault) {
  ClusterConfig cc = discovery_config(4);
  EXPECT_FALSE(cc.push_gossip);
}

TEST(Discovery, PoliciesWorkOnRealWorkloads) {
  // All three policies must complete an EP+DC pair and balance the
  // books; discovery changes efficiency, never safety.
  workload::NpbConfig npb;
  npb.duration_scale = 0.15;
  npb.seed = 9;
  for (int policy = 0; policy < 3; ++policy) {
    ClusterConfig cc = discovery_config(8);
    cc.sticky_peers = (policy == 1);
    cc.hint_discovery = (policy == 2);
    Cluster cluster(cc, make_pair_workloads(workload::NpbApp::kEP,
                                            workload::NpbApp::kDC,
                                            cc.n_nodes, npb));
    RunResult result = cluster.run();
    EXPECT_TRUE(result.all_completed) << "policy " << policy;
    EXPECT_LT(result.audit.max_abs_conservation_error, 1e-6)
        << "policy " << policy;
  }
}

}  // namespace
}  // namespace penelope::cluster
