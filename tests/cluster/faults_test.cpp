// Fault-injection behaviour backing Figure 3: killing SLURM's central
// server degrades it below even the static baseline, while Penelope is
// unaffected by that node (it doesn't use one) and tolerates losing a
// client's management plane.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"

namespace penelope::cluster {
namespace {

workload::NpbConfig short_npb() {
  workload::NpbConfig cfg;
  cfg.duration_scale = 0.15;
  cfg.demand_jitter_frac = 0.02;
  cfg.seed = 13;
  return cfg;
}

ClusterConfig config_for(ManagerKind manager) {
  ClusterConfig cc;
  cc.manager = manager;
  cc.n_nodes = 6;
  cc.per_socket_cap_watts = 70.0;
  cc.max_seconds = 600.0;
  cc.seed = 21;
  return cc;
}

RunResult run_one(ManagerKind manager, std::vector<FaultEvent> faults) {
  ClusterConfig cc = config_for(manager);
  cc.faults = std::move(faults);
  Cluster cluster(cc, make_pair_workloads(workload::NpbApp::kEP,
                                          workload::NpbApp::kDC,
                                          cc.n_nodes, short_npb()));
  return cluster.run();
}

TEST(Faults, ServerKillStopsCentralPowerShifting) {
  RunResult healthy = run_one(ManagerKind::kCentral, {});
  RunResult faulty = run_one(
      ManagerKind::kCentral,
      {FaultEvent{FaultEvent::Kind::kKillServer, common::from_seconds(5.0),
                  0}});
  ASSERT_TRUE(healthy.all_completed);
  ASSERT_TRUE(faulty.all_completed);
  // Losing the server costs real performance.
  EXPECT_GT(faulty.runtime_seconds, healthy.runtime_seconds * 1.02);
  // Requests into the void time out.
  EXPECT_GT(faulty.timeouts, 0u);
}

TEST(Faults, ServerKillStrandsInFlightDonations) {
  RunResult faulty = run_one(
      ManagerKind::kCentral,
      {FaultEvent{FaultEvent::Kind::kKillServer, common::from_seconds(3.0),
                  0}});
  // Clients keep donating into the void after the kill: those watts are
  // stranded (the Figure 3 ratchet) — and the conservation audit must
  // still balance because they are ledgered.
  EXPECT_GT(faulty.stranded_watts, 0.0);
  EXPECT_LT(faulty.audit.max_abs_conservation_error, 1e-6);
  EXPECT_LE(faulty.audit.max_live_overshoot, 1e-6);
}

TEST(Faults, CentralDegradesBelowFairWhenServerDies) {
  // The paper's headline fault result: "SLURM performs on average worse
  // than even the trivial solution, Fair." The mechanism is the
  // donation ratchet: clients keep shipping every demand dip to a dead
  // server, so caps only ever fall. It needs phase-rich workloads (FT's
  // compute/transpose alternation) and realistic phase lengths to bite.
  auto run_phased = [](ManagerKind manager, std::vector<FaultEvent> faults) {
    ClusterConfig cc = config_for(manager);
    cc.faults = std::move(faults);
    workload::NpbConfig npb;
    npb.duration_scale = 0.5;
    npb.demand_jitter_frac = 0.02;
    npb.seed = 13;
    Cluster cluster(cc, make_pair_workloads(workload::NpbApp::kFT,
                                            workload::NpbApp::kCG,
                                            cc.n_nodes, npb));
    return cluster.run();
  };
  RunResult fair = run_phased(ManagerKind::kFair, {});
  RunResult faulty_central = run_phased(
      ManagerKind::kCentral,
      {FaultEvent{FaultEvent::Kind::kKillServer, common::from_seconds(30.0),
                  0}});
  ASSERT_TRUE(fair.all_completed);
  ASSERT_TRUE(faulty_central.all_completed);
  EXPECT_GT(faulty_central.runtime_seconds, fair.runtime_seconds * 1.01);
}

TEST(Faults, PenelopeToleratesManagementKill) {
  RunResult healthy = run_one(ManagerKind::kPenelope, {});
  RunResult faulty = run_one(
      ManagerKind::kPenelope,
      {FaultEvent{FaultEvent::Kind::kKillManagement,
                  common::from_seconds(5.0), 2}});
  ASSERT_TRUE(healthy.all_completed);
  ASSERT_TRUE(faulty.all_completed);
  // One dead management plane barely moves the needle (paper: "not
  // significantly perturbed by a client-node failure").
  EXPECT_LT(faulty.runtime_seconds, healthy.runtime_seconds * 1.10);
}

TEST(Faults, PenelopeConservesWithDeadManagement) {
  RunResult faulty = run_one(
      ManagerKind::kPenelope,
      {FaultEvent{FaultEvent::Kind::kKillManagement,
                  common::from_seconds(4.0), 1}});
  EXPECT_LT(faulty.audit.max_abs_conservation_error, 1e-6);
  EXPECT_LE(faulty.audit.max_live_overshoot, 1e-6);
}

TEST(Faults, PenelopeSurvivesLossyNetwork) {
  ClusterConfig cc = config_for(ManagerKind::kPenelope);
  cc.network.loss_probability = 0.05;
  Cluster cluster(cc, make_pair_workloads(workload::NpbApp::kEP,
                                          workload::NpbApp::kDC,
                                          cc.n_nodes, short_npb()));
  RunResult result = cluster.run();
  EXPECT_TRUE(result.all_completed);
  EXPECT_GT(result.net_stats.dropped_loss, 0u);
  // Lost grants strand power but the books still balance.
  EXPECT_LT(result.audit.max_abs_conservation_error, 1e-6);
}

TEST(Faults, PenelopeSurvivesDuplicationAndReordering) {
  ClusterConfig cc = config_for(ManagerKind::kPenelope);
  cc.network.duplicate_probability = 0.05;
  cc.network.reorder_probability = 0.05;
  Cluster cluster(cc, make_pair_workloads(workload::NpbApp::kEP,
                                          workload::NpbApp::kDC,
                                          cc.n_nodes, short_npb()));
  RunResult result = cluster.run();
  EXPECT_TRUE(result.all_completed);
  EXPECT_GT(result.net_stats.duplicated, 0u);
  EXPECT_GT(result.net_stats.reordered, 0u);
  // Redelivered copies were refused, not applied: the books balance.
  EXPECT_GT(cluster.metrics().duplicates_dropped(), 0u);
  EXPECT_LT(result.audit.max_abs_conservation_error, 1e-6);
  EXPECT_LE(result.audit.max_live_overshoot, 1e-6);
}

TEST(Faults, CentralSurvivesDuplicatedDonationsAndGrants) {
  // Donations carry watts: a redelivered donation credited twice would
  // mint power at the server. Crank duplication high enough that every
  // run sees redelivered donations, requests, and grants.
  ClusterConfig cc = config_for(ManagerKind::kCentral);
  cc.network.duplicate_probability = 0.2;
  cc.network.reorder_probability = 0.05;
  Cluster cluster(cc, make_pair_workloads(workload::NpbApp::kEP,
                                          workload::NpbApp::kDC,
                                          cc.n_nodes, short_npb()));
  RunResult result = cluster.run();
  EXPECT_TRUE(result.all_completed);
  EXPECT_GT(result.net_stats.duplicated, 0u);
  EXPECT_GT(cluster.metrics().duplicates_dropped(), 0u);
  EXPECT_LT(result.audit.max_abs_conservation_error, 1e-6);
  EXPECT_LE(result.audit.max_live_overshoot, 1e-6);
}

TEST(Faults, DuplicationOnTopOfLossStillBalances) {
  // Loss and duplication interact: a message can have one copy lost and
  // one delivered (no strand), or both lost (strand once). Either way
  // the conservation audit must stay at float noise.
  ClusterConfig cc = config_for(ManagerKind::kPenelope);
  cc.network.loss_probability = 0.1;
  cc.network.duplicate_probability = 0.2;
  Cluster cluster(cc, make_pair_workloads(workload::NpbApp::kEP,
                                          workload::NpbApp::kDC,
                                          cc.n_nodes, short_npb()));
  RunResult result = cluster.run();
  EXPECT_TRUE(result.all_completed);
  EXPECT_GT(result.net_stats.dropped_loss, 0u);
  EXPECT_GT(result.net_stats.duplicated, 0u);
  EXPECT_LT(result.audit.max_abs_conservation_error, 1e-6);
}

TEST(Faults, KillManagementOnCentralIsIgnored) {
  // Management-kill is a Penelope concept; on the central manager the
  // fault plan entry must be a harmless no-op.
  RunResult result = run_one(
      ManagerKind::kCentral,
      {FaultEvent{FaultEvent::Kind::kKillManagement,
                  common::from_seconds(5.0), 2}});
  EXPECT_TRUE(result.all_completed);
}

TEST(Faults, PenelopeKeepsShiftingInsideAPartition) {
  // §1 names network partitions as a failure that "would fully halt any
  // power shifting" under a central server. Penelope keeps shifting
  // within each island: put a donor and a hungry node on both sides and
  // watch transactions continue on both.
  ClusterConfig cc = config_for(ManagerKind::kPenelope);
  cc.n_nodes = 8;
  Cluster cluster(cc, [&] {
    std::vector<workload::WorkloadProfile> profiles;
    for (int i = 0; i < cc.n_nodes; ++i) {
      workload::WorkloadProfile p;
      p.name = i % 2 ? "hungry" : "donor";
      p.phases.push_back(
          workload::Phase{"hot", i % 2 ? 240.0 : 100.0, 1e6});
      profiles.push_back(std::move(p));
    }
    return profiles;
  }());
  // Islands {0..3} and {4..7}: each contains donors (even) and hungry
  // nodes (odd).
  cluster.network().set_partition({{0, 1, 2, 3}, {4, 5, 6, 7}});
  cluster.run_for(30.0);
  std::size_t transactions = cluster.metrics().turnaround_ms().size();
  EXPECT_GT(transactions, 10u);  // shifting continued despite the split
  EXPECT_GT(cluster.metrics().timeouts(), 0u);  // cross-island probes die
  // Power moved toward the hungry side within each island (initial cap
  // is 140 W/node at 70 W/socket).
  double initial = cc.initial_node_cap();
  EXPECT_GT(cluster.node_cap(1) + cluster.node_cap(3),
            2 * initial + 10.0);
  EXPECT_GT(cluster.node_cap(5) + cluster.node_cap(7),
            2 * initial + 10.0);
  // The books balance (cross-island grant losses are ledgered).
  ConservationAudit audit = cluster.audit();
  EXPECT_NEAR(audit.conservation_error(), 0.0, 1e-6);

  // Healing the partition restores full connectivity.
  cluster.network().clear_partition();
  std::uint64_t timeouts_at_heal = cluster.metrics().timeouts();
  cluster.run_for(20.0);
  // New timeouts should tail off sharply (only stale blacklist-free
  // probes to busy pools could still miss).
  EXPECT_LT(cluster.metrics().timeouts() - timeouts_at_heal,
            timeouts_at_heal / 2 + 10);
}

TEST(Faults, CentralHaltsEntirelyAcrossPartitionFromServer) {
  // The mirror image: when clients are partitioned away from the
  // central server, *all* shifting stops — the §1 failure mode.
  ClusterConfig cc = config_for(ManagerKind::kCentral);
  cc.n_nodes = 8;
  Cluster cluster(cc, make_pair_workloads(workload::NpbApp::kEP,
                                          workload::NpbApp::kDC,
                                          cc.n_nodes, short_npb()));
  cluster.run_for(5.0);
  std::size_t transactions_before =
      cluster.metrics().turnaround_ms().size();
  // Server (node 8) alone on one island.
  cluster.network().set_partition({{0, 1, 2, 3, 4, 5, 6, 7}, {8}});
  cluster.run_for(20.0);
  std::size_t transactions_after =
      cluster.metrics().turnaround_ms().size();
  EXPECT_EQ(transactions_after, transactions_before);
  EXPECT_GT(cluster.metrics().timeouts(), 0u);
  EXPECT_NEAR(cluster.audit().conservation_error(), 0.0, 1e-6);
}

TEST(Faults, ConfigDrivenPartitionAndHeal) {
  // The same partition story, driven through the fault plan instead of
  // direct network access: split at t=5 (clients 0-3 vs 4-7 + server),
  // heal at t=20.
  ClusterConfig cc = config_for(ManagerKind::kCentral);
  cc.n_nodes = 8;
  cc.faults = {
      FaultEvent{FaultEvent::Kind::kPartition, common::from_seconds(5.0),
                 4},
      FaultEvent{FaultEvent::Kind::kHealPartition,
                 common::from_seconds(20.0), 0},
  };
  Cluster cluster(cc, make_pair_workloads(workload::NpbApp::kEP,
                                          workload::NpbApp::kDC,
                                          cc.n_nodes, short_npb()));
  RunResult result = cluster.run();
  EXPECT_TRUE(result.all_completed);
  // The left island (nodes 0-3) was cut off from the server: timeouts.
  EXPECT_GT(result.timeouts, 0u);
  // Partition-dropped messages are counted, and the books balance.
  EXPECT_GT(result.net_stats.dropped_partition, 0u);
  EXPECT_LT(result.audit.max_abs_conservation_error, 1e-6);
}

TEST(Faults, ServerKillOnPenelopeIsIgnored) {
  RunResult result = run_one(
      ManagerKind::kPenelope,
      {FaultEvent{FaultEvent::Kind::kKillServer, common::from_seconds(5.0),
                  0}});
  EXPECT_TRUE(result.all_completed);
}

}  // namespace
}  // namespace penelope::cluster
