#include "cluster/cluster.hpp"

#include <gtest/gtest.h>

namespace penelope::cluster {
namespace {

ClusterConfig small_config(ManagerKind manager,
                           double per_socket_cap = 80.0) {
  ClusterConfig cc;
  cc.manager = manager;
  cc.n_nodes = 6;
  cc.per_socket_cap_watts = per_socket_cap;
  cc.max_seconds = 600.0;
  cc.seed = 7;
  return cc;
}

workload::NpbConfig short_npb() {
  workload::NpbConfig cfg;
  cfg.duration_scale = 0.15;  // keep test runs quick
  cfg.demand_jitter_frac = 0.02;
  cfg.seed = 11;
  return cfg;
}

TEST(Cluster, FairRunsToCompletion) {
  ClusterConfig cc = small_config(ManagerKind::kFair);
  Cluster cluster(cc, make_pair_workloads(workload::NpbApp::kEP,
                                          workload::NpbApp::kDC,
                                          cc.n_nodes, short_npb()));
  RunResult result = cluster.run();
  EXPECT_TRUE(result.all_completed);
  EXPECT_GT(result.runtime_seconds, 1.0);
  EXPECT_GT(result.performance, 0.0);
  // Fair never shifts power: caps are static and equal.
  for (int i = 0; i < cc.n_nodes; ++i) {
    EXPECT_DOUBLE_EQ(cluster.node_cap(i), cc.initial_node_cap());
  }
  EXPECT_EQ(result.requests_sent, 0u);
}

TEST(Cluster, PenelopeRunsToCompletion) {
  ClusterConfig cc = small_config(ManagerKind::kPenelope);
  Cluster cluster(cc, make_pair_workloads(workload::NpbApp::kEP,
                                          workload::NpbApp::kDC,
                                          cc.n_nodes, short_npb()));
  RunResult result = cluster.run();
  EXPECT_TRUE(result.all_completed);
  EXPECT_GT(result.requests_sent, 0u);
  EXPECT_FALSE(result.server_stats.has_value());
}

TEST(Cluster, CentralRunsToCompletion) {
  ClusterConfig cc = small_config(ManagerKind::kCentral);
  Cluster cluster(cc, make_pair_workloads(workload::NpbApp::kEP,
                                          workload::NpbApp::kDC,
                                          cc.n_nodes, short_npb()));
  RunResult result = cluster.run();
  EXPECT_TRUE(result.all_completed);
  EXPECT_GT(result.requests_sent, 0u);
  ASSERT_TRUE(result.server_stats.has_value());
  EXPECT_GT(result.server_stats->processed, 0u);
}

TEST(Cluster, DynamicManagersBeatFairOnAsymmetricPair) {
  // EP (hog) + DC (donor) is the pair where shifting pays most; both
  // dynamic systems must beat the static baseline.
  auto run_with = [](ManagerKind manager) {
    ClusterConfig cc = small_config(manager, 70.0);
    Cluster cluster(cc, make_pair_workloads(workload::NpbApp::kEP,
                                            workload::NpbApp::kDC,
                                            cc.n_nodes, short_npb()));
    return cluster.run();
  };
  RunResult fair = run_with(ManagerKind::kFair);
  RunResult penelope = run_with(ManagerKind::kPenelope);
  RunResult central = run_with(ManagerKind::kCentral);
  ASSERT_TRUE(fair.all_completed);
  ASSERT_TRUE(penelope.all_completed);
  ASSERT_TRUE(central.all_completed);
  EXPECT_LT(penelope.runtime_seconds, fair.runtime_seconds);
  EXPECT_LT(central.runtime_seconds, fair.runtime_seconds);
}

TEST(Cluster, RunsAreDeterministicForSameSeed) {
  auto run_once = [] {
    ClusterConfig cc = small_config(ManagerKind::kPenelope);
    Cluster cluster(cc, make_pair_workloads(workload::NpbApp::kFT,
                                            workload::NpbApp::kMG,
                                            cc.n_nodes, short_npb()));
    return cluster.run();
  };
  RunResult a = run_once();
  RunResult b = run_once();
  EXPECT_DOUBLE_EQ(a.runtime_seconds, b.runtime_seconds);
  EXPECT_EQ(a.requests_sent, b.requests_sent);
  EXPECT_EQ(a.turnaround_ms.size(), b.turnaround_ms.size());
}

TEST(Cluster, SeedChangesRun) {
  auto run_with_seed = [](std::uint64_t seed) {
    ClusterConfig cc = small_config(ManagerKind::kPenelope);
    cc.seed = seed;
    Cluster cluster(cc, make_pair_workloads(workload::NpbApp::kFT,
                                            workload::NpbApp::kMG,
                                            cc.n_nodes, short_npb()));
    return cluster.run();
  };
  RunResult a = run_with_seed(1);
  RunResult b = run_with_seed(2);
  EXPECT_NE(a.runtime_seconds, b.runtime_seconds);
}

TEST(Cluster, ConservationAuditedThroughoutRun) {
  for (ManagerKind manager : {ManagerKind::kFair, ManagerKind::kPenelope,
                              ManagerKind::kCentral}) {
    ClusterConfig cc = small_config(manager);
    Cluster cluster(cc, make_pair_workloads(workload::NpbApp::kLU,
                                            workload::NpbApp::kDC,
                                            cc.n_nodes, short_npb()));
    RunResult result = cluster.run();
    EXPECT_GT(result.audit.audits, 0u) << manager_name(manager);
    EXPECT_LT(result.audit.max_abs_conservation_error, 1e-6)
        << manager_name(manager);
    EXPECT_LE(result.audit.max_live_overshoot, 1e-6)
        << manager_name(manager);
  }
}

TEST(Cluster, DeadlineReportsIncomplete) {
  ClusterConfig cc = small_config(ManagerKind::kFair);
  cc.max_seconds = 5.0;  // far too short
  Cluster cluster(cc, make_pair_workloads(workload::NpbApp::kEP,
                                          workload::NpbApp::kDC,
                                          cc.n_nodes, short_npb()));
  RunResult result = cluster.run();
  EXPECT_FALSE(result.all_completed);
  EXPECT_NEAR(result.runtime_seconds, 5.0, 0.01);
}

TEST(Cluster, NodeAccessorsWork) {
  ClusterConfig cc = small_config(ManagerKind::kPenelope);
  Cluster cluster(cc, make_pair_workloads(workload::NpbApp::kEP,
                                          workload::NpbApp::kDC,
                                          cc.n_nodes, short_npb()));
  cluster.run_for(10.0);
  for (int i = 0; i < cc.n_nodes; ++i) {
    EXPECT_GT(cluster.node_cap(i), 0.0);
    EXPECT_GE(cluster.node_pool_watts(i), 0.0);
    EXPECT_GE(cluster.node_fraction_complete(i), 0.0);
  }
  EXPECT_DOUBLE_EQ(cluster.server_cache_watts(), 0.0);  // not central
}

TEST(Cluster, CapsStayWithinSafeRangeUnderAllManagers) {
  for (ManagerKind manager : {ManagerKind::kPenelope,
                              ManagerKind::kCentral}) {
    ClusterConfig cc = small_config(manager, 60.0);
    Cluster cluster(cc, make_pair_workloads(workload::NpbApp::kEP,
                                            workload::NpbApp::kDC,
                                            cc.n_nodes, short_npb()));
    cluster.run_for(30.0);
    for (int i = 0; i < cc.n_nodes; ++i) {
      EXPECT_GE(cluster.node_cap(i),
                cc.rapl.safe_range.min_watts - 1e-9);
      EXPECT_LE(cluster.node_cap(i),
                cc.rapl.safe_range.max_watts + 1e-9);
    }
  }
}

TEST(Cluster, MakePairWorkloadsSplitsHalfHalf) {
  auto profiles = make_pair_workloads(workload::NpbApp::kEP,
                                      workload::NpbApp::kDC, 10,
                                      short_npb());
  ASSERT_EQ(profiles.size(), 10u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(profiles[i].name, "EP");
  for (int i = 5; i < 10; ++i)
    EXPECT_EQ(profiles[static_cast<std::size_t>(i)].name, "DC");
}

TEST(Cluster, PairWorkloadsHavePerNodeJitter) {
  auto profiles = make_pair_workloads(workload::NpbApp::kEP,
                                      workload::NpbApp::kEP, 4,
                                      short_npb());
  EXPECT_NE(profiles[0].phases[1].demand_watts,
            profiles[1].phases[1].demand_watts);
}

TEST(ClusterDeath, ProfileCountMustMatchNodes) {
  ClusterConfig cc = small_config(ManagerKind::kFair);
  std::vector<workload::WorkloadProfile> too_few;
  EXPECT_DEATH(Cluster(cc, std::move(too_few)), "one workload profile");
}

}  // namespace
}  // namespace penelope::cluster
