// The DST nemesis vocabulary at the fabric level: asymmetric (one-way)
// partitions, per-link latency bursts, node pauses that preserve state,
// and wire corruption caught by the frame checksum. Each primitive is
// exercised directly against net::Network, including the
// trace-neutrality property: armed-but-zero nemeses draw nothing, so
// pre-nemesis seeds replay bit-identically.
#include "net/network.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/protocol.hpp"
#include "net/codec.hpp"

namespace penelope::net {
namespace {

Payload probe(int i) {
  return core::PowerPush{static_cast<double>(i), 0};
}

int probe_value(const Message& m) {
  const auto* push = m.as<core::PowerPush>();
  EXPECT_NE(push, nullptr);
  return push == nullptr ? -1 : static_cast<int>(push->watts);
}

struct Fixture {
  sim::Simulator sim;
  NetworkConfig config;
  std::unique_ptr<Network> net;

  explicit Fixture(NetworkConfig cfg = {}) : config(cfg) {
    net = std::make_unique<Network>(sim, config);
  }
};

TEST(Nemesis, OneWayBlockSeversExactlyOneDirection) {
  Fixture f;
  std::vector<int> at_zero;
  std::vector<int> at_one;
  f.net->register_endpoint(0, [&](const Message& m) {
    at_zero.push_back(probe_value(m));
  });
  f.net->register_endpoint(1, [&](const Message& m) {
    at_one.push_back(probe_value(m));
  });
  f.net->set_one_way_block({0}, {1});
  f.net->send(0, 1, probe(1));  // blocked direction
  f.net->send(1, 0, probe(2));  // reverse stays open
  f.sim.run();
  EXPECT_TRUE(at_one.empty());
  ASSERT_EQ(at_zero.size(), 1u);
  EXPECT_EQ(at_zero[0], 2);
  EXPECT_EQ(f.net->stats().dropped_one_way, 1u);
}

TEST(Nemesis, OneWayBlockReportsDropReason) {
  Fixture f;
  f.net->register_endpoint(1, [](const Message&) {});
  DropReason reason{};
  int drops = 0;
  f.net->set_drop_handler([&](const Message&, DropReason r) {
    reason = r;
    ++drops;
  });
  f.net->set_one_way_block({0}, {1});
  f.net->send(0, 1, probe(1));
  f.sim.run();
  EXPECT_EQ(drops, 1);
  EXPECT_EQ(reason, DropReason::kOneWay);
}

TEST(Nemesis, ClearOneWayBlockRestoresTheDirection) {
  Fixture f;
  int received = 0;
  f.net->register_endpoint(1, [&](const Message&) { ++received; });
  f.net->set_one_way_block({0}, {1});
  f.net->send(0, 1, probe(1));
  f.net->clear_one_way_block();
  f.net->send(0, 1, probe(2));
  f.sim.run();
  EXPECT_EQ(received, 1);
  EXPECT_EQ(f.net->stats().dropped_one_way, 1u);
}

TEST(Nemesis, LatencyBurstDelaysOnlyTheBurstingSourceWindow) {
  Fixture f;
  common::Ticks from_bursting = 0;
  common::Ticks from_calm = 0;
  f.net->register_endpoint(2, [&](const Message& m) {
    if (m.src == 0) from_bursting = f.sim.now();
    if (m.src == 1) from_calm = f.sim.now();
  });
  const common::Ticks extra = common::from_millis(50);
  f.net->set_latency_burst(0, extra, common::from_millis(100));
  f.net->send(0, 2, probe(1));
  f.net->send(1, 2, probe(2));
  f.sim.run();
  EXPECT_GE(from_bursting, extra);
  EXPECT_LT(from_calm, extra);
  EXPECT_EQ(f.net->stats().burst_delayed, 1u);

  // Past `until` the burst is inert.
  f.sim.run_until(common::from_millis(200));
  common::Ticks late = 0;
  f.net->register_endpoint(2, [&](const Message&) { late = f.sim.now(); });
  const common::Ticks resume_at = f.sim.now();
  f.net->send(0, 2, probe(3));
  f.sim.run();
  EXPECT_LT(late - resume_at, extra);
  EXPECT_EQ(f.net->stats().burst_delayed, 1u);
}

TEST(Nemesis, PausedNodeQueuesDeliveriesAndReplaysInOrder) {
  Fixture f;
  std::vector<int> received;
  f.net->register_endpoint(1, [&](const Message& m) {
    received.push_back(probe_value(m));
  });
  f.net->pause_node(1);
  EXPECT_TRUE(f.net->node_paused(1));
  for (int i = 0; i < 4; ++i) f.net->send(0, 1, probe(i));
  f.sim.run();
  // Nothing delivered, nothing dropped: a stall, not a crash.
  EXPECT_TRUE(received.empty());
  EXPECT_EQ(f.net->stats().paused_held, 4u);
  EXPECT_EQ(f.net->stats().dropped_total(), 0u);

  f.net->resume_node(1);
  EXPECT_FALSE(f.net->node_paused(1));
  f.sim.run();
  ASSERT_EQ(received.size(), 4u);
  // Canonical replay order: arrival time, then message id.
  EXPECT_EQ(received, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Nemesis, PausedNodeHoldsItsOwnSendsUntilResume) {
  Fixture f;
  std::vector<int> received;
  f.net->register_endpoint(1, [&](const Message& m) {
    received.push_back(probe_value(m));
  });
  f.net->pause_node(0);
  f.net->send(0, 1, probe(7));
  f.sim.run();
  EXPECT_TRUE(received.empty());
  f.net->resume_node(0);
  f.sim.run();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0], 7);
}

TEST(Nemesis, PauseIsIdempotentAndResumeOfRunningNodeIsNoOp) {
  Fixture f;
  int received = 0;
  f.net->register_endpoint(1, [&](const Message&) { ++received; });
  f.net->resume_node(1);  // never paused: no-op
  f.net->pause_node(1);
  f.net->pause_node(1);
  f.net->send(0, 1, probe(1));
  f.sim.run();
  f.net->resume_node(1);
  f.net->resume_node(1);
  f.sim.run();
  EXPECT_EQ(received, 1);
}

TEST(Nemesis, CorruptionIsAlwaysCaughtByTheChecksum) {
  NetworkConfig cfg;
  cfg.corrupt_probability = 1.0;
  Fixture f(cfg);
  int received = 0;
  f.net->register_endpoint(1, [&](const Message&) { ++received; });
  DropReason reason{};
  int drops = 0;
  f.net->set_drop_handler([&](const Message&, DropReason r) {
    reason = r;
    ++drops;
  });
  for (int i = 0; i < 32; ++i) f.net->send(0, 1, probe(i));
  f.sim.run();
  // Single-bit flips never survive the FNV-1a frame checksum: every
  // corrupted copy is dropped, none misparses into a delivery.
  EXPECT_EQ(received, 0);
  EXPECT_EQ(drops, 32);
  EXPECT_EQ(reason, DropReason::kCorrupt);
  EXPECT_EQ(f.net->stats().corrupted, 32u);
  EXPECT_EQ(f.net->stats().dropped_corrupt, 32u);
}

TEST(Nemesis, SetFaultRatesSwitchesWeatherMidRun) {
  Fixture f;
  int received = 0;
  f.net->register_endpoint(1, [&](const Message&) { ++received; });
  f.net->send(0, 1, probe(1));
  f.sim.run();
  EXPECT_EQ(received, 1);

  FaultRates hostile;
  hostile.loss = 1.0;
  f.net->set_fault_rates(hostile);
  EXPECT_DOUBLE_EQ(f.net->fault_rates().loss, 1.0);
  f.net->send(0, 1, probe(2));
  f.sim.run();
  EXPECT_EQ(received, 1);
  EXPECT_EQ(f.net->stats().dropped_loss, 1u);

  f.net->set_fault_rates(FaultRates{});
  f.net->send(0, 1, probe(3));
  f.sim.run();
  EXPECT_EQ(received, 2);
}

TEST(Nemesis, ZeroRatesAndUnusedNemesesAreTraceNeutral) {
  // A fabric with every nemesis knob present-but-zero must consume the
  // exact Rng draw sequence of a plain fabric: same sampled latencies,
  // same delivery times. This is the property that keeps the golden
  // trace hash stable across the nemesis vocabulary's introduction.
  auto run = [](bool touch_nemeses) {
    NetworkConfig cfg;
    cfg.seed = 99;
    cfg.duplicate_probability = 0.0;
    cfg.corrupt_probability = 0.0;
    Fixture f(cfg);
    if (touch_nemeses) {
      f.net->set_fault_rates(FaultRates{});  // all zero
      f.net->set_latency_burst(3, common::from_millis(10),
                               common::from_millis(1));  // expires at 1ms
    }
    std::vector<common::Ticks> arrivals;
    f.net->register_endpoint(1, [&](const Message&) {
      arrivals.push_back(f.sim.now());
    });
    f.sim.run_until(common::from_millis(2));
    for (int i = 0; i < 64; ++i) f.net->send(0, 1, probe(i));
    f.sim.run();
    return arrivals;
  };
  EXPECT_EQ(run(false), run(true));
}

}  // namespace
}  // namespace penelope::net
