#include "net/codec.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace penelope::net {
namespace {

template <typename T>
T roundtrip(const T& msg) {
  auto bytes = encode(WirePayload{msg});
  auto decoded = decode(bytes);
  EXPECT_TRUE(decoded.has_value());
  const T* out = std::get_if<T>(&*decoded);
  EXPECT_NE(out, nullptr);
  return out ? *out : T{};
}

TEST(Codec, PowerRequestRoundTrip) {
  core::PowerRequest msg;
  msg.urgent = true;
  msg.alpha_watts = 37.25;
  msg.txn_id = 0xdeadbeefcafef00dULL;
  core::PowerRequest out = roundtrip(msg);
  EXPECT_EQ(out.urgent, msg.urgent);
  EXPECT_DOUBLE_EQ(out.alpha_watts, msg.alpha_watts);
  EXPECT_EQ(out.txn_id, msg.txn_id);
}

TEST(Codec, PowerGrantRoundTrip) {
  core::PowerGrant msg;
  msg.watts = 12.5;
  msg.txn_id = 42;
  msg.hint_peer = -1;
  core::PowerGrant out = roundtrip(msg);
  EXPECT_DOUBLE_EQ(out.watts, msg.watts);
  EXPECT_EQ(out.txn_id, msg.txn_id);
  EXPECT_EQ(out.hint_peer, -1);

  msg.hint_peer = 1055;
  EXPECT_EQ(roundtrip(msg).hint_peer, 1055);
}

TEST(Codec, CentralMessagesRoundTrip) {
  central::CentralDonation donation{3.75};
  EXPECT_DOUBLE_EQ(roundtrip(donation).watts, 3.75);

  central::CentralRequest request;
  request.urgent = true;
  request.alpha_watts = 60.0;
  request.txn_id = 7;
  central::CentralRequest request_out = roundtrip(request);
  EXPECT_TRUE(request_out.urgent);
  EXPECT_DOUBLE_EQ(request_out.alpha_watts, 60.0);

  central::CentralGrant grant;
  grant.watts = 30.0;
  grant.release_to_initial = true;
  grant.txn_id = 9;
  central::CentralGrant grant_out = roundtrip(grant);
  EXPECT_TRUE(grant_out.release_to_initial);
  EXPECT_DOUBLE_EQ(grant_out.watts, 30.0);
  EXPECT_EQ(grant_out.txn_id, 9u);
}

TEST(Codec, PowerPushRoundTrip) {
  EXPECT_DOUBLE_EQ(roundtrip(core::PowerPush{17.5}).watts, 17.5);
}

TEST(Codec, HeartbeatRoundTrip) {
  core::Heartbeat out = roundtrip(core::Heartbeat{7, 12});
  EXPECT_EQ(out.node, 7);
  EXPECT_EQ(out.incarnation, 12u);
}

TEST(Codec, HierarchyMessagesRoundTrip) {
  EXPECT_DOUBLE_EQ(
      roundtrip(hierarchy::ProfileReport{151.5}).avg_power_watts, 151.5);
  EXPECT_DOUBLE_EQ(
      roundtrip(hierarchy::CapAssignment{186.25}).initial_cap_watts,
      186.25);
}

TEST(Codec, FederationMessagesRoundTrip) {
  hierarchy::FederatedRequest req{73.5, 0x0123456789abcdefULL,
                                  0x1111222233334444ULL};
  hierarchy::FederatedRequest req_out = roundtrip(req);
  EXPECT_DOUBLE_EQ(req_out.deficit_watts, 73.5);
  EXPECT_EQ(req_out.txn_id, req.txn_id);
  EXPECT_EQ(req_out.flow, req.flow);

  hierarchy::FederatedTransfer xfer{41.125, 0xfedcba9876543210ULL,
                                    0x5555666677778888ULL};
  hierarchy::FederatedTransfer xfer_out = roundtrip(xfer);
  EXPECT_DOUBLE_EQ(xfer_out.watts, 41.125);
  EXPECT_EQ(xfer_out.txn_id, xfer.txn_id);
  EXPECT_EQ(xfer_out.flow, xfer.flow);

  // Untraced runs leave flow 0 and still round-trip.
  EXPECT_EQ(roundtrip(hierarchy::FederatedTransfer{1.0, 2}).flow, 0u);
}

TEST(Codec, EveryWireTagRoundTripsByteIdentical) {
  // Exhaustive sweep: one non-default exemplar per wire tag. For each,
  // encode -> decode -> re-encode must reproduce the exact bytes, the
  // leading tag byte must match the WireTag table, and the decoded
  // alternative must be the one that went in. The count check at the
  // bottom makes adding a ninth message type fail here until an
  // exemplar (and tag) is added.
  struct Case {
    WireTag tag;
    WirePayload payload;
  };
  const Case cases[] = {
      {WireTag::kPowerRequest,
       core::PowerRequest{true, 37.25, 0xdeadbeefcafef00dULL}},
      {WireTag::kPowerGrant, core::PowerGrant{12.5, 42, 1055}},
      {WireTag::kCentralDonation, central::CentralDonation{3.75}},
      {WireTag::kCentralRequest, central::CentralRequest{true, 60.0, 7}},
      {WireTag::kCentralGrant, central::CentralGrant{30.0, true, 9}},
      {WireTag::kProfileReport, hierarchy::ProfileReport{151.5}},
      {WireTag::kCapAssignment, hierarchy::CapAssignment{186.25}},
      {WireTag::kPowerPush, core::PowerPush{17.5, 0xfeedULL}},
      {WireTag::kHeartbeat, core::Heartbeat{12, 3}},
      {WireTag::kFederatedRequest,
       hierarchy::FederatedRequest{73.5, 0xbeefULL, 0x1234ULL}},
      {WireTag::kFederatedTransfer,
       hierarchy::FederatedTransfer{41.125, 0xf00dULL, 0x5678ULL}},
  };
  ASSERT_EQ(std::size(cases), std::variant_size_v<WirePayload>)
      << "new message type needs an exemplar here";
  for (const Case& c : cases) {
    auto bytes = encode(c.payload);
    ASSERT_FALSE(bytes.empty());
    EXPECT_EQ(bytes[0], static_cast<std::uint8_t>(c.tag));
    EXPECT_EQ(bytes.size(), encoded_size(c.payload));
    auto decoded = decode(bytes);
    ASSERT_TRUE(decoded.has_value())
        << "tag " << static_cast<int>(c.tag);
    EXPECT_EQ(decoded->index(), c.payload.index());
    auto reencoded = encode(*decoded);
    EXPECT_EQ(reencoded, bytes)
        << "re-encode not byte-identical for tag "
        << static_cast<int>(c.tag);
  }
}

TEST(Codec, SpecialDoubleValuesSurvive) {
  core::PowerGrant msg;
  msg.watts = 0.1 + 0.2;  // not exactly representable: bits must match
  core::PowerGrant out = roundtrip(msg);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(out.watts),
            std::bit_cast<std::uint64_t>(msg.watts));
}

TEST(Codec, EncodedSizeMatchesActual) {
  WirePayload payloads[] = {
      core::PowerRequest{}, core::PowerGrant{},
      central::CentralDonation{}, central::CentralRequest{},
      central::CentralGrant{}, hierarchy::ProfileReport{},
      hierarchy::CapAssignment{}, core::PowerPush{}, core::Heartbeat{},
      hierarchy::FederatedRequest{}, hierarchy::FederatedTransfer{}};
  for (const auto& p : payloads) {
    EXPECT_EQ(encode(p).size(), encoded_size(p));
  }
}

TEST(Codec, TruncatedInputRejected) {
  auto bytes = encode(WirePayload{core::PowerRequest{true, 5.0, 1, }});
  for (std::size_t keep = 0; keep < bytes.size(); ++keep) {
    EXPECT_FALSE(decode(bytes.data(), keep).has_value())
        << "prefix of " << keep << " bytes must not decode";
  }
}

TEST(Codec, TrailingGarbageRejected) {
  auto bytes = encode(WirePayload{central::CentralDonation{1.0}});
  bytes.push_back(0x00);
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(Codec, UnknownTagRejected) {
  std::vector<std::uint8_t> bytes(17, 0);
  bytes[0] = 0xff;
  EXPECT_FALSE(decode(bytes).has_value());
  bytes[0] = 0;  // tag 0 is reserved/unused
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(Codec, EmptyAndNullInputRejected) {
  EXPECT_FALSE(decode(nullptr, 0).has_value());
  EXPECT_FALSE(decode(std::vector<std::uint8_t>{}).has_value());
}

TEST(Codec, RandomBytesNeverCrash) {
  // Fuzz-style: decode must be total over arbitrary input.
  common::Rng rng(99);
  int decoded_count = 0;
  for (int trial = 0; trial < 20000; ++trial) {
    std::size_t len = rng.next_below(40);
    std::vector<std::uint8_t> bytes(len);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next_u32());
    if (decode(bytes).has_value()) ++decoded_count;
  }
  // Some random buffers legitimately decode (valid tag + right length);
  // the point is none of them crashed or read out of bounds.
  SUCCEED() << decoded_count << " random buffers decoded";
}

TEST(Codec, BitFlippedPacketsEitherDecodeOrReject) {
  auto bytes = encode(WirePayload{central::CentralGrant{30.0, true, 9}});
  for (std::size_t byte = 0; byte < bytes.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto corrupted = bytes;
      corrupted[byte] ^= static_cast<std::uint8_t>(1u << bit);
      (void)decode(corrupted);  // must be total
    }
  }
  SUCCEED();
}

// --- Checksummed frames ---------------------------------------------------

TEST(Frame, RoundTripsEveryWireTag) {
  WirePayload payloads[] = {
      core::PowerRequest{}, core::PowerGrant{},
      central::CentralDonation{}, central::CentralRequest{},
      central::CentralGrant{}, hierarchy::ProfileReport{},
      hierarchy::CapAssignment{}, core::PowerPush{}, core::Heartbeat{},
      hierarchy::FederatedRequest{}, hierarchy::FederatedTransfer{}};
  for (const auto& p : payloads) {
    auto bytes = encode_frame(p);
    EXPECT_EQ(bytes.size(), frame_size(p));
    EXPECT_EQ(bytes[0], kFrameMagic);
    CheckedDecode checked = decode_checked(bytes);
    ASSERT_TRUE(checked) << decode_error_name(checked.error);
    EXPECT_EQ(checked.error, DecodeError::kOk);
    EXPECT_EQ(checked.payload->index(), p.index());
  }
}

TEST(Frame, EverySingleBitFlipIsDetected) {
  // The acceptance property of the checksum layer: FNV-1a's per-byte
  // step is a bijection on the hash state, so no single-bit flip —
  // header or body, any position — can ever pass decode_checked.
  auto bytes =
      encode_frame(WirePayload{core::PowerGrant{42.5, 0xDEADBEEF, 3}});
  for (std::size_t byte = 0; byte < bytes.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto corrupted = bytes;
      corrupted[byte] ^= static_cast<std::uint8_t>(1u << bit);
      CheckedDecode checked = decode_checked(corrupted);
      EXPECT_FALSE(checked)
          << "flip at byte " << byte << " bit " << bit << " decoded";
      EXPECT_NE(checked.error, DecodeError::kOk);
    }
  }
}

TEST(Frame, ClassifiesEveryFailureMode) {
  auto good = encode_frame(WirePayload{core::PowerRequest{true, 5.0, 7}});

  EXPECT_EQ(decode_checked(good.data(), 0).error, DecodeError::kTruncated);
  EXPECT_EQ(decode_checked(good.data(), kFrameHeaderBytes - 1).error,
            DecodeError::kTruncated);

  auto bad_magic = good;
  bad_magic[0] = static_cast<std::uint8_t>(~kFrameMagic);
  EXPECT_EQ(decode_checked(bad_magic).error, DecodeError::kBadMagic);

  auto bad_sum = good;
  bad_sum[kFrameHeaderBytes] ^= 0x10;
  EXPECT_EQ(decode_checked(bad_sum).error, DecodeError::kBadChecksum);

  // Unknown tag with an honest checksum: only the tag check can reject.
  std::vector<std::uint8_t> body{0x7F};
  std::uint32_t sum = fnv1a32(body.data(), body.size());
  std::vector<std::uint8_t> unknown{
      kFrameMagic, static_cast<std::uint8_t>(sum),
      static_cast<std::uint8_t>(sum >> 8),
      static_cast<std::uint8_t>(sum >> 16),
      static_cast<std::uint8_t>(sum >> 24), 0x7F};
  EXPECT_EQ(decode_checked(unknown).error, DecodeError::kUnknownTag);

  // Valid tag, truncated body, honest checksum: structural decode is
  // the last line of defence.
  std::vector<std::uint8_t> stub(good.begin() + kFrameHeaderBytes,
                                 good.begin() + kFrameHeaderBytes + 2);
  sum = fnv1a32(stub.data(), stub.size());
  std::vector<std::uint8_t> malformed{
      kFrameMagic, static_cast<std::uint8_t>(sum),
      static_cast<std::uint8_t>(sum >> 8),
      static_cast<std::uint8_t>(sum >> 16),
      static_cast<std::uint8_t>(sum >> 24)};
  malformed.insert(malformed.end(), stub.begin(), stub.end());
  EXPECT_EQ(decode_checked(malformed).error, DecodeError::kMalformed);

  // Every error has a stable printable name.
  for (DecodeError e :
       {DecodeError::kOk, DecodeError::kTruncated, DecodeError::kBadMagic,
        DecodeError::kBadChecksum, DecodeError::kUnknownTag,
        DecodeError::kMalformed}) {
    EXPECT_NE(decode_error_name(e), nullptr);
    EXPECT_GT(std::string(decode_error_name(e)).size(), 0u);
  }
}

TEST(Frame, RandomBytesNeverCrashDecodeChecked) {
  common::Rng rng(7);
  int ok = 0;
  for (int trial = 0; trial < 20000; ++trial) {
    std::size_t len = rng.next_below(48);
    std::vector<std::uint8_t> bytes(len);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next_u32());
    if (decode_checked(bytes.data(), len)) ++ok;
  }
  // A random 32-bit checksum match is a ~2^-32 event; hostile garbage
  // essentially never parses, and nothing crashed.
  EXPECT_EQ(ok, 0);
}

}  // namespace
}  // namespace penelope::net
