#include "net/serial_server.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/protocol.hpp"

namespace penelope::net {
namespace {

Message make_msg(int payload, common::Ticks sent_at = 0) {
  Message m;
  m.src = 1;
  m.dst = 2;
  m.sent_at = sent_at;
  m.payload = core::PowerPush{static_cast<double>(payload), 0};
  return m;
}

TEST(SerialServer, ProcessesAfterServiceTime) {
  sim::Simulator sim;
  SerialServerConfig cfg;
  cfg.service_min = 90;
  cfg.service_max = 90;
  std::vector<common::Ticks> processed_at;
  SerialServer server(sim, cfg, [&](const Message&) {
    processed_at.push_back(sim.now());
  });
  server.inbox(make_msg(1));
  sim.run();
  ASSERT_EQ(processed_at.size(), 1u);
  EXPECT_EQ(processed_at[0], 90);
}

TEST(SerialServer, ServiceIsSerialNotParallel) {
  sim::Simulator sim;
  SerialServerConfig cfg;
  cfg.service_min = 100;
  cfg.service_max = 100;
  std::vector<common::Ticks> processed_at;
  SerialServer server(sim, cfg, [&](const Message&) {
    processed_at.push_back(sim.now());
  });
  // Three simultaneous arrivals must drain back to back.
  for (int i = 0; i < 3; ++i) server.inbox(make_msg(i));
  sim.run();
  ASSERT_EQ(processed_at.size(), 3u);
  EXPECT_EQ(processed_at[0], 100);
  EXPECT_EQ(processed_at[1], 200);
  EXPECT_EQ(processed_at[2], 300);
}

TEST(SerialServer, QueueWaitAccumulates) {
  sim::Simulator sim;
  SerialServerConfig cfg;
  cfg.service_min = 10;
  cfg.service_max = 10;
  SerialServer server(sim, cfg, [](const Message&) {});
  for (int i = 0; i < 5; ++i) server.inbox(make_msg(i));
  sim.run();
  // Waits: 0, 10, 20, 30, 40 -> mean 20 us.
  EXPECT_DOUBLE_EQ(server.stats().mean_queue_wait_us(), 20.0);
  EXPECT_EQ(server.stats().processed, 5u);
}

TEST(SerialServer, OverflowDropsBeyondCapacity) {
  sim::Simulator sim;
  SerialServerConfig cfg;
  cfg.service_min = 10;
  cfg.service_max = 10;
  cfg.queue_capacity = 3;
  int processed = 0;
  SerialServer server(sim, cfg, [&](const Message&) { ++processed; });
  // First arrival starts service immediately (not queued); the next 3
  // fill the queue; the rest drop.
  for (int i = 0; i < 10; ++i) server.inbox(make_msg(i));
  sim.run();
  EXPECT_EQ(processed, 4);
  EXPECT_EQ(server.stats().dropped_overflow, 6u);
  EXPECT_EQ(server.stats().accepted, 4u);
}

TEST(SerialServer, DropHandlerSeesOverflow) {
  sim::Simulator sim;
  SerialServerConfig cfg;
  cfg.queue_capacity = 1;
  SerialServer server(sim, cfg, [](const Message&) {});
  std::vector<int> dropped;
  server.set_drop_handler([&](const Message& m) {
    dropped.push_back(static_cast<int>(m.as<core::PowerPush>()->watts));
  });
  server.inbox(make_msg(1));  // serving
  server.inbox(make_msg(2));  // queued
  server.inbox(make_msg(3));  // dropped
  sim.run();
  ASSERT_EQ(dropped.size(), 1u);
  EXPECT_EQ(dropped[0], 3);
}

TEST(SerialServer, HaltStopsProcessingAndDropsQueue) {
  sim::Simulator sim;
  SerialServerConfig cfg;
  cfg.service_min = 100;
  cfg.service_max = 100;
  int processed = 0;
  SerialServer server(sim, cfg, [&](const Message&) { ++processed; });
  int dropped = 0;
  server.set_drop_handler([&](const Message&) { ++dropped; });
  for (int i = 0; i < 5; ++i) server.inbox(make_msg(i));
  sim.schedule_at(150, [&] { server.halt(); });
  sim.run();
  // One message finished service before the halt; the in-service one is
  // suppressed on completion; the rest were queued and dropped.
  EXPECT_EQ(processed, 1);
  EXPECT_EQ(dropped, 3);
  EXPECT_TRUE(server.halted());
}

TEST(SerialServer, HaltedServerDropsNewArrivals) {
  sim::Simulator sim;
  SerialServer server(sim, {}, [](const Message&) {});
  int dropped = 0;
  server.set_drop_handler([&](const Message&) { ++dropped; });
  server.halt();
  server.inbox(make_msg(1));
  sim.run();
  EXPECT_EQ(dropped, 1);
  EXPECT_EQ(server.stats().processed, 0u);
}

TEST(SerialServer, ServiceTimeWithinConfiguredBounds) {
  sim::Simulator sim;
  SerialServerConfig cfg;
  cfg.service_min = 80;
  cfg.service_max = 100;
  std::vector<common::Ticks> gaps;
  common::Ticks last = 0;
  SerialServer server(sim, cfg, [&](const Message&) {
    gaps.push_back(sim.now() - last);
    last = sim.now();
  });
  for (int i = 0; i < 200; ++i) server.inbox(make_msg(i));
  sim.run();
  for (common::Ticks gap : gaps) {
    EXPECT_GE(gap, 80);
    EXPECT_LE(gap, 100);
  }
}

TEST(SerialServer, PeakQueueDepthTracked) {
  sim::Simulator sim;
  SerialServerConfig cfg;
  cfg.service_min = 10;
  cfg.service_max = 10;
  SerialServer server(sim, cfg, [](const Message&) {});
  for (int i = 0; i < 6; ++i) server.inbox(make_msg(i));
  // First starts service; five wait.
  EXPECT_EQ(server.stats().peak_queue_depth, 5u);
  sim.run();
}

TEST(SerialServer, IdleThenBusyAgain) {
  sim::Simulator sim;
  SerialServerConfig cfg;
  cfg.service_min = 10;
  cfg.service_max = 10;
  std::vector<common::Ticks> processed_at;
  SerialServer server(sim, cfg, [&](const Message&) {
    processed_at.push_back(sim.now());
  });
  server.inbox(make_msg(1));
  sim.run();
  sim.schedule_at(500, [&] { server.inbox(make_msg(2)); });
  sim.run();
  ASSERT_EQ(processed_at.size(), 2u);
  EXPECT_EQ(processed_at[0], 10);
  EXPECT_EQ(processed_at[1], 510);
}

}  // namespace
}  // namespace penelope::net
