#include "net/network.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "common/stats.hpp"
#include "core/protocol.hpp"
#include "net/codec.hpp"

namespace penelope::net {
namespace {

// Probe payload for transport-level tests: a PowerPush whose watts field
// carries the test's sequence number (the payload type is irrelevant to
// the fabric; it only routes and drops).
Payload probe(int i) {
  return core::PowerPush{static_cast<double>(i), 0};
}

int probe_value(const Message& m) {
  const auto* push = m.as<core::PowerPush>();
  EXPECT_NE(push, nullptr);
  return push == nullptr ? -1 : static_cast<int>(push->watts);
}

struct Fixture {
  sim::Simulator sim;
  NetworkConfig config;
  std::unique_ptr<Network> net;

  explicit Fixture(NetworkConfig cfg = {}) : config(cfg) {
    net = std::make_unique<Network>(sim, config);
  }
};

TEST(Network, DeliversToRegisteredEndpoint) {
  Fixture f;
  std::vector<int> received;
  f.net->register_endpoint(1, [&](const Message& m) {
    received.push_back(probe_value(m));
  });
  f.net->send(0, 1, probe(42));
  f.sim.run();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0], 42);
  EXPECT_EQ(f.net->stats().delivered, 1u);
}

TEST(Network, DeliveryIsDelayedByLatency) {
  Fixture f;
  common::Ticks delivered_at = 0;
  f.net->register_endpoint(1, [&](const Message&) {
    delivered_at = f.sim.now();
  });
  f.net->send(0, 1, probe(1));
  f.sim.run();
  EXPECT_GE(delivered_at, f.config.latency.base -
                              3 * f.config.latency.jitter_stddev);
  EXPECT_GT(delivered_at, 0);
}

TEST(Network, MessageCarriesMetadata) {
  Fixture f;
  Message captured;
  f.net->register_endpoint(2, [&](const Message& m) { captured = m; });
  f.sim.run_until(100);
  std::uint64_t id = f.net->send(7, 2, core::PowerGrant{3.5, 0xFEED, 4});
  f.sim.run();
  EXPECT_EQ(captured.src, 7);
  EXPECT_EQ(captured.dst, 2);
  EXPECT_EQ(captured.id, id);
  EXPECT_EQ(captured.sent_at, 100);
  ASSERT_NE(captured.as<core::PowerGrant>(), nullptr);
  EXPECT_DOUBLE_EQ(captured.as<core::PowerGrant>()->watts, 3.5);
  EXPECT_EQ(captured.as<core::PowerGrant>()->txn_id, 0xFEEDu);
  EXPECT_EQ(captured.as<core::PowerGrant>()->hint_peer, 4);
  // Wrong-type access yields nullptr, not UB.
  EXPECT_EQ(captured.as<core::PowerRequest>(), nullptr);
  EXPECT_EQ(captured.as<core::PowerPush>(), nullptr);
}

TEST(Network, DefaultMessageHoldsNoPayload) {
  Message m;
  EXPECT_TRUE(std::holds_alternative<std::monostate>(m.payload));
  EXPECT_EQ(m.as<core::PowerRequest>(), nullptr);
  EXPECT_EQ(payload_wire_bytes(m.payload), 0u);
}

TEST(Network, MissingEndpointCountsAsDrop) {
  Fixture f;
  f.net->send(0, 99, probe(1));
  f.sim.run();
  EXPECT_EQ(f.net->stats().dropped_no_endpoint, 1u);
  EXPECT_EQ(f.net->stats().delivered, 0u);
}

TEST(Network, DeadDestinationDropsOnArrival) {
  Fixture f;
  int received = 0;
  f.net->register_endpoint(1, [&](const Message&) { ++received; });
  f.net->fail_node(1);
  f.net->send(0, 1, probe(1));
  f.sim.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(f.net->stats().dropped_dead_node, 1u);
}

TEST(Network, DeadSourceCannotSend) {
  Fixture f;
  int received = 0;
  f.net->register_endpoint(1, [&](const Message&) { ++received; });
  f.net->fail_node(0);
  EXPECT_EQ(f.net->send(0, 1, probe(1)), 0u);
  f.sim.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(f.net->stats().sent, 0u);
}

TEST(Network, MessageInFlightWhenNodeDiesIsLost) {
  Fixture f;
  int received = 0;
  f.net->register_endpoint(1, [&](const Message&) { ++received; });
  f.net->send(0, 1, probe(1));
  // Kill the destination before the latency elapses.
  f.sim.schedule_at(1, [&] { f.net->fail_node(1); });
  f.sim.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(f.net->stats().dropped_dead_node, 1u);
}

TEST(Network, RecoverNodeResumesDelivery) {
  Fixture f;
  int received = 0;
  f.net->register_endpoint(1, [&](const Message&) { ++received; });
  f.net->fail_node(1);
  f.net->send(0, 1, probe(1));
  f.sim.run();
  f.net->recover_node(1);
  f.net->send(0, 1, probe(2));
  f.sim.run();
  EXPECT_EQ(received, 1);
}

TEST(Network, FailNodeIsIdempotent) {
  // Churn schedules and fault scripts may both kill the same node; a
  // double kill (or a recover of a live node) must not double-count
  // transition stats or otherwise disturb bookkeeping.
  Fixture f;
  int received = 0;
  f.net->register_endpoint(1, [&](const Message&) { ++received; });
  f.net->fail_node(1);
  f.net->fail_node(1);
  EXPECT_EQ(f.net->stats().node_failures, 1u);
  f.net->recover_node(1);
  f.net->recover_node(1);
  EXPECT_EQ(f.net->stats().node_recoveries, 1u);
  f.net->send(0, 1, probe(1));
  f.sim.run();
  EXPECT_EQ(received, 1);
  f.net->fail_node(1);
  EXPECT_EQ(f.net->stats().node_failures, 2u);
}

TEST(Network, RecoverOfNeverFailedNodeIsNoOp) {
  Fixture f;
  f.net->recover_node(3);
  EXPECT_EQ(f.net->stats().node_recoveries, 0u);
}

TEST(Network, FailedNodeStaysDeadAcrossPartitionChanges) {
  // fail_node and set_partition are orthogonal: healing a partition
  // must not resurrect a dead node, and recovering a node must not
  // punch through an active partition.
  Fixture f;
  int received = 0;
  f.net->register_endpoint(2, [&](const Message&) { ++received; });
  f.net->fail_node(2);
  f.net->set_partition({{0, 1}, {2, 3}});
  f.net->clear_partition();
  f.net->send(0, 2, probe(1));
  f.sim.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(f.net->stats().dropped_dead_node, 1u);

  // Recover the node while a fresh partition separates it from the
  // sender: traffic now drops at the partition, not the node.
  f.net->recover_node(2);
  f.net->set_partition({{0, 1}, {2, 3}});
  f.net->send(0, 2, probe(2));
  f.sim.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(f.net->stats().dropped_partition, 1u);
  f.net->clear_partition();
  f.net->send(0, 2, probe(3));
  f.sim.run();
  EXPECT_EQ(received, 1);
}

TEST(Network, FullLossDropsEverything) {
  NetworkConfig cfg;
  cfg.loss_probability = 1.0;
  Fixture f(cfg);
  int received = 0;
  f.net->register_endpoint(1, [&](const Message&) { ++received; });
  for (int i = 0; i < 10; ++i) f.net->send(0, 1, probe(i));
  f.sim.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(f.net->stats().dropped_loss, 10u);
}

TEST(Network, PartialLossRateIsApproximate) {
  NetworkConfig cfg;
  cfg.loss_probability = 0.3;
  Fixture f(cfg);
  int received = 0;
  f.net->register_endpoint(1, [&](const Message&) { ++received; });
  const int n = 5000;
  for (int i = 0; i < n; ++i) f.net->send(0, 1, probe(i));
  f.sim.run();
  EXPECT_NEAR(static_cast<double>(received) / n, 0.7, 0.03);
}

TEST(Network, PartitionBlocksCrossIslandTraffic) {
  Fixture f;
  int received_1 = 0;
  int received_2 = 0;
  f.net->register_endpoint(1, [&](const Message&) { ++received_1; });
  f.net->register_endpoint(2, [&](const Message&) { ++received_2; });
  f.net->set_partition({{0, 1}, {2, 3}});
  f.net->send(0, 1, probe(1));  // same island: delivered
  f.net->send(0, 2, probe(1));  // cross island: dropped
  f.sim.run();
  EXPECT_EQ(received_1, 1);
  EXPECT_EQ(received_2, 0);
  EXPECT_EQ(f.net->stats().dropped_partition, 1u);
}

TEST(Network, ClearPartitionRestoresTraffic) {
  Fixture f;
  int received = 0;
  f.net->register_endpoint(2, [&](const Message&) { ++received; });
  f.net->set_partition({{0}, {2}});
  f.net->send(0, 2, probe(1));
  f.net->clear_partition();
  f.net->send(0, 2, probe(1));
  f.sim.run();
  EXPECT_EQ(received, 1);
}

TEST(Network, UnpartitionedNodesShareDefaultIsland) {
  Fixture f;
  int received = 0;
  f.net->register_endpoint(9, [&](const Message&) { ++received; });
  f.net->set_partition({{0, 1}});  // 8 and 9 are in no island (-1)
  f.net->send(8, 9, probe(1));
  f.sim.run();
  EXPECT_EQ(received, 1);
}

TEST(Network, DropHandlerSeesLostMessages) {
  NetworkConfig cfg;
  cfg.loss_probability = 1.0;
  Fixture f(cfg);
  f.net->register_endpoint(1, [](const Message&) {});
  std::vector<int> dropped;
  std::vector<DropReason> reasons;
  f.net->set_drop_handler([&](const Message& m, DropReason reason) {
    dropped.push_back(probe_value(m));
    reasons.push_back(reason);
  });
  f.net->send(0, 1, probe(17));
  f.sim.run();
  ASSERT_EQ(dropped.size(), 1u);
  EXPECT_EQ(dropped[0], 17);
  ASSERT_EQ(reasons.size(), 1u);
  EXPECT_EQ(reasons[0], DropReason::kLoss);
}

TEST(Network, DropHandlerFiresForDeadDestination) {
  Fixture f;
  int drops = 0;
  f.net->set_drop_handler([&](const Message&, DropReason reason) {
    ++drops;
    EXPECT_EQ(reason, DropReason::kDeadNode);
  });
  f.net->fail_node(1);
  f.net->send(0, 1, probe(1));
  f.sim.run();
  EXPECT_EQ(drops, 1);
}

TEST(Network, DropHandlerReportsPartitionReason) {
  Fixture f;
  std::vector<DropReason> reasons;
  f.net->set_drop_handler([&](const Message&, DropReason reason) {
    reasons.push_back(reason);
  });
  f.net->register_endpoint(2, [](const Message&) {});
  f.net->set_partition({{0, 1}, {2, 3}});
  f.net->send(0, 2, probe(1));
  f.sim.run();
  ASSERT_EQ(reasons.size(), 1u);
  EXPECT_EQ(reasons[0], DropReason::kPartition);
}

TEST(Network, LatencySamplesArePositiveAndNearBase) {
  Fixture f;
  common::OnlineStats stats;
  for (int i = 0; i < 1000; ++i) {
    auto lat = static_cast<double>(f.net->sample_latency());
    EXPECT_GE(lat, 1.0);
    stats.add(lat);
  }
  EXPECT_NEAR(stats.mean(), static_cast<double>(f.config.latency.base),
              static_cast<double>(f.config.latency.jitter_stddev));
}

TEST(Network, RemoveEndpointStopsDelivery) {
  Fixture f;
  int received = 0;
  f.net->register_endpoint(1, [&](const Message&) { ++received; });
  f.net->remove_endpoint(1);
  f.net->send(0, 1, probe(1));
  f.sim.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(f.net->stats().dropped_no_endpoint, 1u);
}

TEST(Network, PayloadBytesSentTracksWireSize) {
  Fixture f;
  f.net->register_endpoint(1, [](const Message&) {});
  f.net->send(0, 1, core::PowerPush{1.0, 1});
  std::uint64_t push_bytes = f.net->stats().payload_bytes_sent;
  EXPECT_EQ(push_bytes, payload_wire_bytes(Payload{core::PowerPush{}}));
  EXPECT_GT(push_bytes, 0u);
  f.net->send(0, 1, core::PowerGrant{1.0, 2, -1});
  EXPECT_EQ(f.net->stats().payload_bytes_sent,
            push_bytes + payload_wire_bytes(Payload{core::PowerGrant{}}));
  f.sim.run();
}

TEST(Network, DuplicationDeliversTwoCopiesOfOneSend) {
  NetworkConfig cfg;
  cfg.duplicate_probability = 1.0;
  Fixture f(cfg);
  std::vector<Message> received;
  f.net->register_endpoint(1, [&](const Message& m) {
    received.push_back(m);
  });
  std::uint64_t id = f.net->send(0, 1, probe(7));
  f.sim.run();
  ASSERT_EQ(received.size(), 2u);
  // Both copies carry the same message id and payload; exactly one is
  // flagged as the injected duplicate.
  EXPECT_EQ(received[0].id, id);
  EXPECT_EQ(received[1].id, id);
  EXPECT_EQ(probe_value(received[0]), 7);
  EXPECT_EQ(probe_value(received[1]), 7);
  int marked = 0;
  for (const auto& m : received) marked += m.duplicate ? 1 : 0;
  EXPECT_EQ(marked, 1);
  EXPECT_EQ(f.net->stats().sent, 1u);        // logical sends
  EXPECT_EQ(f.net->stats().delivered, 2u);   // physical deliveries
  EXPECT_EQ(f.net->stats().duplicated, 1u);
  // The duplicated copy shares the original's payload: one logical send
  // means one payload's worth of accounted bytes.
  EXPECT_EQ(f.net->stats().payload_bytes_sent,
            payload_wire_bytes(Payload{core::PowerPush{}}));
}

TEST(Network, ReorderingInvertsArrivalOrder) {
  NetworkConfig cfg;
  cfg.reorder_probability = 0.5;
  cfg.reorder_delay = common::from_millis(5.0);
  Fixture f(cfg);
  std::vector<int> order;
  f.net->register_endpoint(1, [&](const Message& m) {
    order.push_back(probe_value(m));
  });
  // Space the sends 1 ms apart: far wider than latency jitter, so only
  // an injected reorder delay can invert arrival order.
  const int n = 50;
  for (int i = 0; i < n; ++i) {
    f.sim.schedule_at(common::from_millis(static_cast<double>(i)),
                      [&f, i] { f.net->send(0, 1, probe(i)); });
  }
  f.sim.run();
  ASSERT_EQ(order.size(), static_cast<std::size_t>(n));
  EXPECT_GT(f.net->stats().reordered, 0u);
  EXPECT_FALSE(std::is_sorted(order.begin(), order.end()));
}

TEST(Network, ZeroFaultProbabilitiesInjectNothing) {
  Fixture f;  // duplicate/reorder default to 0
  std::vector<int> order;
  f.net->register_endpoint(1, [&](const Message& m) {
    order.push_back(probe_value(m));
  });
  const int n = 50;
  for (int i = 0; i < n; ++i) {
    f.sim.schedule_at(common::from_millis(static_cast<double>(i)),
                      [&f, i] { f.net->send(0, 1, probe(i)); });
  }
  f.sim.run();
  ASSERT_EQ(order.size(), static_cast<std::size_t>(n));
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
  EXPECT_EQ(f.net->stats().duplicated, 0u);
  EXPECT_EQ(f.net->stats().reordered, 0u);
}

TEST(Network, DuplicateDropHandlerFiresAtMostOnce) {
  // Both copies of a duplicated message drop (dead destination): the
  // drop handler must fire exactly once, or the cluster layer would
  // strand the same watts twice.
  NetworkConfig cfg;
  cfg.duplicate_probability = 1.0;
  Fixture f(cfg);
  f.net->register_endpoint(1, [](const Message&) {});
  int drops = 0;
  f.net->set_drop_handler([&](const Message&, DropReason) { ++drops; });
  f.net->fail_node(1);
  f.net->send(0, 1, probe(1));
  f.sim.run();
  EXPECT_EQ(drops, 1);
  EXPECT_EQ(f.net->stats().dropped_dead_node, 2u);
}

TEST(Network, NoDropHandlerWhenOneCopyWasDelivered) {
  // One copy arrives, the other drops: the message was *delivered*, so
  // the drop handler must stay silent (stranding watts that actually
  // landed would double-count them).
  NetworkConfig cfg;
  cfg.duplicate_probability = 1.0;
  Fixture f(cfg);
  int received = 0;
  f.net->register_endpoint(1, [&](const Message&) {
    ++received;
    f.net->fail_node(1);  // the sibling copy now drops on arrival
  });
  int drops = 0;
  f.net->set_drop_handler([&](const Message&, DropReason) { ++drops; });
  f.net->send(0, 1, probe(1));
  f.sim.run();
  EXPECT_EQ(received, 1);
  EXPECT_EQ(f.net->stats().dropped_dead_node, 1u);
  EXPECT_EQ(drops, 0);
}

TEST(Network, ReentrantSendFromHandlerIsSafe) {
  // A handler that sends while a delivery is being dispatched may grow
  // the in-flight slab; the fabric must tolerate that (it copies the
  // message out of the slab before invoking handlers).
  Fixture f;
  int pongs = 0;
  f.net->register_endpoint(0, [&](const Message&) { ++pongs; });
  f.net->register_endpoint(1, [&](const Message& m) {
    // Fan out replies to force slab growth mid-delivery.
    for (int i = 0; i < 8; ++i) f.net->send(1, 0, probe(i));
    (void)m;
  });
  for (int i = 0; i < 16; ++i) f.net->send(0, 1, probe(i));
  f.sim.run();
  EXPECT_EQ(pongs, 16 * 8);
  EXPECT_EQ(f.net->stats().delivered,
            static_cast<std::uint64_t>(16 + 16 * 8));
}

TEST(Network, StatsTotalsAreConsistent) {
  NetworkConfig cfg;
  cfg.loss_probability = 0.5;
  Fixture f(cfg);
  f.net->register_endpoint(1, [](const Message&) {});
  for (int i = 0; i < 1000; ++i) f.net->send(0, 1, probe(i));
  f.sim.run();
  const auto& s = f.net->stats();
  EXPECT_EQ(s.sent, 1000u);
  EXPECT_EQ(s.delivered + s.dropped_total(), 1000u);
}

}  // namespace
}  // namespace penelope::net
