#include "workload/profile_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "workload/application.hpp"

namespace penelope::workload {
namespace {

WorkloadProfile sample_profile() {
  WorkloadProfile p;
  p.name = "sample";
  p.phases = {{"init", 120.0, 4.0}, {"hot", 225.5, 16.25}};
  return p;
}

TEST(ProfileIo, CsvRoundTrip) {
  WorkloadProfile original = sample_profile();
  auto loaded = profile_from_csv(profile_to_csv(original));
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->name, "sample");
  ASSERT_EQ(loaded->phases.size(), 2u);
  EXPECT_EQ(loaded->phases[0].label, "init");
  EXPECT_DOUBLE_EQ(loaded->phases[1].demand_watts, 225.5);
  EXPECT_DOUBLE_EQ(loaded->phases[1].work_seconds, 16.25);
}

TEST(ProfileIo, NpbProfilesRoundTripExactlyEnough) {
  for (auto app : all_apps()) {
    WorkloadProfile original = npb_profile(app);
    auto loaded = profile_from_csv(profile_to_csv(original));
    ASSERT_TRUE(loaded.has_value()) << app_name(app);
    ASSERT_EQ(loaded->phases.size(), original.phases.size());
    EXPECT_NEAR(loaded->total_work_seconds(),
                original.total_work_seconds(), 1e-4);
    EXPECT_NEAR(loaded->mean_demand_watts(),
                original.mean_demand_watts(), 1e-4);
  }
}

TEST(ProfileIo, FileRoundTrip) {
  std::string path = testing::TempDir() + "/penelope_profile_io.csv";
  ASSERT_TRUE(save_profile_csv(sample_profile(), path));
  auto loaded = load_profile_csv(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->phases.size(), 2u);
  std::remove(path.c_str());
}

TEST(ProfileIo, MalformedInputsRejected) {
  EXPECT_FALSE(profile_from_csv("").has_value());
  EXPECT_FALSE(profile_from_csv("bogus header\n1,2,3\n").has_value());
  EXPECT_FALSE(
      profile_from_csv("label,demand_watts,work_seconds\n").has_value());
  EXPECT_FALSE(profile_from_csv(
                   "label,demand_watts,work_seconds\nx,notanumber,3\n")
                   .has_value());
  EXPECT_FALSE(
      profile_from_csv("label,demand_watts,work_seconds\nx,100\n")
          .has_value());
  EXPECT_FALSE(
      profile_from_csv("label,demand_watts,work_seconds\nx,100,0\n")
          .has_value());
  EXPECT_FALSE(
      profile_from_csv("label,demand_watts,work_seconds\nx,-5,2\n")
          .has_value());
}

TEST(ProfileIo, LoadMissingFileFails) {
  EXPECT_FALSE(load_profile_csv("/no/such/file.csv").has_value());
}

std::vector<PowerSample> timeline(
    const std::vector<std::pair<double, double>>& points) {
  std::vector<PowerSample> samples;
  for (const auto& [t, w] : points) {
    samples.push_back(PowerSample{common::from_seconds(t), w});
  }
  return samples;
}

TEST(CurateProfile, SplitsOnDemandSteps) {
  // 0-10 s at ~100 W, 10-20 s at ~200 W.
  std::vector<PowerSample> samples;
  for (int t = 0; t <= 20; ++t) {
    samples.push_back(PowerSample{common::from_seconds(t),
                                  t < 10 ? 100.0 : 200.0});
  }
  auto profile = curate_profile(samples, "stepped");
  ASSERT_TRUE(profile.has_value());
  ASSERT_EQ(profile->phases.size(), 2u);
  EXPECT_NEAR(profile->phases[0].demand_watts, 100.0, 1e-9);
  EXPECT_NEAR(profile->phases[0].work_seconds, 10.0, 1e-9);
  EXPECT_NEAR(profile->phases[1].demand_watts, 200.0, 1e-9);
  EXPECT_NEAR(profile->phases[1].work_seconds, 10.0, 1e-9);
}

TEST(CurateProfile, MergesWithinTolerance) {
  auto samples = timeline({{0, 100}, {1, 103}, {2, 98}, {3, 101},
                           {4, 102}, {5, 100}});
  auto profile = curate_profile(samples, "noisy");
  ASSERT_TRUE(profile.has_value());
  EXPECT_EQ(profile->phases.size(), 1u);
  EXPECT_NEAR(profile->phases[0].demand_watts, 100.8, 0.5);
  EXPECT_NEAR(profile->phases[0].work_seconds, 5.0, 1e-9);
}

TEST(CurateProfile, FoldsBlipsIntoNeighbours) {
  // A 0.2 s spike inside a steady phase must not become its own phase.
  auto samples = timeline({{0.0, 100}, {1.0, 100}, {2.0, 100},
                           {2.2, 250}, {2.4, 100}, {3.4, 100},
                           {4.4, 100}});
  CurateOptions options;
  options.min_phase_seconds = 0.5;
  auto profile = curate_profile(samples, "blip", options);
  ASSERT_TRUE(profile.has_value());
  EXPECT_EQ(profile->phases.size(), 1u);
}

TEST(CurateProfile, RejectsDegenerateInput) {
  EXPECT_FALSE(curate_profile({}, "x").has_value());
  EXPECT_FALSE(
      curate_profile({PowerSample{0, 100.0}}, "x").has_value());
  // Non-increasing timestamps.
  EXPECT_FALSE(curate_profile(timeline({{1, 100}, {1, 110}}), "x")
                   .has_value());
  EXPECT_FALSE(curate_profile(timeline({{2, 100}, {1, 110}}), "x")
                   .has_value());
}

TEST(CurateProfile, CuratedProfileDrivesApplication) {
  // End-to-end: a curated profile is a valid workload.
  auto samples = timeline({{0, 150}, {5, 150}, {10, 90}, {15, 90},
                           {20, 90}});
  auto profile = curate_profile(samples, "replay");
  ASSERT_TRUE(profile.has_value());
  Application app(*profile, 40.0);
  power::PerformanceModel model;
  app.advance(0, common::from_seconds(30.0), 250.0, model);
  EXPECT_TRUE(app.done());
}

TEST(CurateProfile, RoundTripsThroughCsv) {
  auto samples = timeline({{0, 100}, {5, 100}, {10, 200}, {15, 200},
                           {20, 200}});
  auto profile = curate_profile(samples, "rt");
  ASSERT_TRUE(profile.has_value());
  auto loaded = profile_from_csv(profile_to_csv(*profile));
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->phases.size(), profile->phases.size());
}

}  // namespace
}  // namespace penelope::workload
