#include "workload/npb.hpp"

#include <gtest/gtest.h>

#include <set>

namespace penelope::workload {
namespace {

TEST(Npb, NineApplicationsNoIS) {
  EXPECT_EQ(all_apps().size(), 9u);
  std::set<std::string> names;
  for (auto app : all_apps()) names.insert(app_name(app));
  EXPECT_EQ(names.size(), 9u);
  EXPECT_EQ(names.count("IS"), 0u);  // the paper omits Integer Sort
  EXPECT_EQ(names.count("EP"), 1u);
  EXPECT_EQ(names.count("DC"), 1u);
}

TEST(Npb, ThirtySixUniquePairs) {
  auto pairs = unique_pairs();
  EXPECT_EQ(pairs.size(), 36u);  // C(9,2), as in the paper
  std::set<std::pair<NpbApp, NpbApp>> distinct(pairs.begin(), pairs.end());
  EXPECT_EQ(distinct.size(), 36u);
  for (const auto& [a, b] : pairs) EXPECT_NE(a, b);
}

TEST(Npb, ProfilesAreNonTrivial) {
  for (auto app : all_apps()) {
    WorkloadProfile p = npb_profile(app);
    EXPECT_FALSE(p.phases.empty()) << p.name;
    EXPECT_GT(p.total_work_seconds(), 30.0) << p.name;
    for (const auto& phase : p.phases) {
      EXPECT_GT(phase.demand_watts, 0.0) << p.name;
      EXPECT_GT(phase.work_seconds, 0.0) << p.name;
    }
  }
}

TEST(Npb, RuntimesMatchPaperScale) {
  // §4.1: each application takes at least 40 s and all but one at least
  // two minutes (full-speed work at class-D-like scale).
  int over_two_minutes = 0;
  for (auto app : all_apps()) {
    double total = npb_profile(app).total_work_seconds();
    EXPECT_GE(total, 40.0) << app_name(app);
    if (total >= 120.0) ++over_two_minutes;
  }
  EXPECT_GE(over_two_minutes, 8);
}

TEST(Npb, AppsHaveDiversePowerNeeds) {
  // The evaluation depends on workload diversity; EP must be the hog and
  // DC the donor.
  double ep_mean = npb_profile(NpbApp::kEP).mean_demand_watts();
  double dc_mean = npb_profile(NpbApp::kDC).mean_demand_watts();
  EXPECT_GT(ep_mean, 200.0);
  EXPECT_LT(dc_mean, 130.0);
  EXPECT_GT(ep_mean - dc_mean, 60.0);
}

TEST(Npb, ProfilesAreDeterministic) {
  NpbConfig cfg;
  cfg.seed = 5;
  cfg.demand_jitter_frac = 0.05;
  WorkloadProfile a = npb_profile(NpbApp::kCG, cfg);
  WorkloadProfile b = npb_profile(NpbApp::kCG, cfg);
  ASSERT_EQ(a.phases.size(), b.phases.size());
  for (std::size_t i = 0; i < a.phases.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.phases[i].demand_watts, b.phases[i].demand_watts);
    EXPECT_DOUBLE_EQ(a.phases[i].work_seconds, b.phases[i].work_seconds);
  }
}

TEST(Npb, SeedChangesJitteredDemands) {
  NpbConfig a_cfg{.demand_jitter_frac = 0.05, .seed = 1};
  NpbConfig b_cfg{.demand_jitter_frac = 0.05, .seed = 2};
  WorkloadProfile a = npb_profile(NpbApp::kLU, a_cfg);
  WorkloadProfile b = npb_profile(NpbApp::kLU, b_cfg);
  bool any_different = false;
  for (std::size_t i = 0; i < a.phases.size(); ++i) {
    if (a.phases[i].demand_watts != b.phases[i].demand_watts)
      any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(Npb, JitterStaysWithinFraction) {
  NpbConfig plain;
  NpbConfig jittered{.demand_jitter_frac = 0.02, .seed = 3};
  for (auto app : all_apps()) {
    WorkloadProfile base = npb_profile(app, plain);
    WorkloadProfile jit = npb_profile(app, jittered);
    ASSERT_EQ(base.phases.size(), jit.phases.size());
    for (std::size_t i = 0; i < base.phases.size(); ++i) {
      double ratio =
          jit.phases[i].demand_watts / base.phases[i].demand_watts;
      EXPECT_GE(ratio, 0.98 - 1e-9);
      EXPECT_LE(ratio, 1.02 + 1e-9);
    }
  }
}

TEST(Npb, DurationScaleShrinksWork) {
  NpbConfig scaled{.duration_scale = 0.1};
  for (auto app : all_apps()) {
    double full = npb_profile(app).total_work_seconds();
    double small = npb_profile(app, scaled).total_work_seconds();
    EXPECT_NEAR(small, full * 0.1, 1e-9);
  }
}

TEST(Npb, ProfileAggregates) {
  WorkloadProfile p;
  p.phases = {{"a", 100.0, 10.0}, {"b", 200.0, 30.0}};
  EXPECT_DOUBLE_EQ(p.total_work_seconds(), 40.0);
  EXPECT_DOUBLE_EQ(p.mean_demand_watts(), (100 * 10 + 200 * 30) / 40.0);
  EXPECT_DOUBLE_EQ(p.peak_demand_watts(), 200.0);
}

TEST(Npb, CompletionBurstProfileIsOneHotPhase) {
  WorkloadProfile p = completion_burst_profile(NpbApp::kEP, 5.0);
  ASSERT_EQ(p.phases.size(), 1u);
  EXPECT_DOUBLE_EQ(p.phases[0].work_seconds, 5.0);
  EXPECT_DOUBLE_EQ(p.phases[0].demand_watts,
                   npb_profile(NpbApp::kEP).peak_demand_watts());
}

TEST(Npb, DemandsWithinDualSocketEnvelope) {
  // Node-level demands must be plausible for a 2-socket 125 W TDP box.
  for (auto app : all_apps()) {
    for (const auto& phase : npb_profile(app).phases) {
      EXPECT_LE(phase.demand_watts, 250.0) << app_name(app);
      EXPECT_GE(phase.demand_watts, 60.0) << app_name(app);
    }
  }
}

}  // namespace
}  // namespace penelope::workload
