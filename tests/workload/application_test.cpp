#include "workload/application.hpp"

#include <gtest/gtest.h>

#include "common/units.hpp"

namespace penelope::workload {
namespace {

using common::from_seconds;

WorkloadProfile two_phase() {
  WorkloadProfile p;
  p.name = "test";
  p.phases = {{"hot", 200.0, 10.0}, {"cool", 100.0, 5.0}};
  return p;
}

power::PerformanceModel linear_model() {
  return power::PerformanceModel(
      power::PerformanceModelConfig{.alpha = 1.0, .base_fraction = 0.0});
}

TEST(Application, FullPowerCompletesInWorkTime) {
  Application app(two_phase(), 40.0);
  auto model = linear_model();
  app.advance(0, from_seconds(15.0), 250.0, model);
  EXPECT_TRUE(app.done());
  ASSERT_TRUE(app.completion_time().has_value());
  EXPECT_EQ(*app.completion_time(), from_seconds(15.0));
}

TEST(Application, HalfPowerTakesTwiceAsLong) {
  Application app(two_phase(), 40.0);
  auto model = linear_model();
  // 100 W against 200 W demand: phase 1 at half speed -> 20 s; then
  // 100 W meets the 100 W demand of phase 2 -> 5 s. Total 25 s.
  app.advance(0, from_seconds(25.0), 100.0, model);
  EXPECT_TRUE(app.done());
  EXPECT_EQ(*app.completion_time(), from_seconds(25.0));
}

TEST(Application, PhaseBoundaryCrossedExactly) {
  Application app(two_phase(), 40.0);
  auto model = linear_model();
  EXPECT_DOUBLE_EQ(app.current_demand(), 200.0);
  bool changed = app.advance(0, from_seconds(10.0), 250.0, model);
  EXPECT_TRUE(changed);
  EXPECT_DOUBLE_EQ(app.current_demand(), 100.0);
  EXPECT_EQ(app.current_phase_index(), 1u);
}

TEST(Application, MidIntervalBoundaryHandled) {
  Application app(two_phase(), 40.0);
  auto model = linear_model();
  // 12 s at full power: 10 s finishes phase 1, 2 s into phase 2.
  bool changed = app.advance(0, from_seconds(12.0), 250.0, model);
  EXPECT_TRUE(changed);
  EXPECT_FALSE(app.done());
  EXPECT_NEAR(app.fraction_complete(), 12.0 / 15.0, 1e-9);
}

TEST(Application, MultiplePhasesInOneInterval) {
  WorkloadProfile p;
  p.phases = {{"a", 100.0, 1.0}, {"b", 100.0, 1.0}, {"c", 100.0, 1.0}};
  Application app(p, 40.0);
  auto model = linear_model();
  app.advance(0, from_seconds(10.0), 200.0, model);
  EXPECT_TRUE(app.done());
  EXPECT_EQ(*app.completion_time(), from_seconds(3.0));
}

TEST(Application, CompletionTimeInterpolatedInsideInterval) {
  WorkloadProfile p;
  p.phases = {{"only", 100.0, 4.0}};
  Application app(p, 40.0);
  auto model = linear_model();
  app.advance(0, from_seconds(10.0), 200.0, model);
  EXPECT_EQ(*app.completion_time(), from_seconds(4.0));
}

TEST(Application, StarvedNodeMakesNoProgress) {
  Application app(two_phase(), 40.0);
  power::PerformanceModel model(
      power::PerformanceModelConfig{.alpha = 0.5, .base_fraction = 0.25});
  // Delivered below the base fraction of 200 W demand -> speed 0.
  app.advance(0, from_seconds(100.0), 40.0, model);
  EXPECT_FALSE(app.done());
  EXPECT_DOUBLE_EQ(app.fraction_complete(), 0.0);
}

TEST(Application, DemandSwitchesToIdleAfterCompletion) {
  Application app(two_phase(), 40.0);
  auto model = linear_model();
  app.advance(0, from_seconds(15.0), 250.0, model);
  EXPECT_DOUBLE_EQ(app.current_demand(), 40.0);
}

TEST(Application, AdvanceAfterDoneIsNoop) {
  Application app(two_phase(), 40.0);
  auto model = linear_model();
  app.advance(0, from_seconds(15.0), 250.0, model);
  EXPECT_FALSE(app.advance(from_seconds(15.0), from_seconds(20.0), 250.0,
                           model));
  EXPECT_EQ(*app.completion_time(), from_seconds(15.0));
}

TEST(Application, ZeroLengthIntervalIsNoop) {
  Application app(two_phase(), 40.0);
  auto model = linear_model();
  EXPECT_FALSE(
      app.advance(from_seconds(1.0), from_seconds(1.0), 250.0, model));
  EXPECT_DOUBLE_EQ(app.fraction_complete(), 0.0);
}

TEST(Application, FractionCompleteIsMonotone) {
  Application app(two_phase(), 40.0);
  auto model = linear_model();
  double prev = 0.0;
  for (int i = 1; i <= 30; ++i) {
    app.advance(from_seconds(i - 1.0), from_seconds(i), 120.0, model);
    double f = app.fraction_complete();
    EXPECT_GE(f, prev);
    EXPECT_LE(f, 1.0);
    prev = f;
  }
}

TEST(Application, SplitAdvanceEqualsOneBigAdvance) {
  Application split(two_phase(), 40.0);
  Application whole(two_phase(), 40.0);
  auto model = linear_model();
  for (int i = 0; i < 150; ++i) {
    split.advance(from_seconds(i * 0.1), from_seconds((i + 1) * 0.1),
                  130.0, model);
  }
  whole.advance(0, from_seconds(15.0), 130.0, model);
  EXPECT_NEAR(split.fraction_complete(), whole.fraction_complete(), 1e-9);
}

TEST(ApplicationDeath, EmptyProfileRejected) {
  WorkloadProfile empty;
  empty.name = "empty";
  EXPECT_DEATH(Application(empty, 40.0), "phases");
}

}  // namespace
}  // namespace penelope::workload
