#include "core/pool.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace penelope::core {
namespace {

TEST(PowerPool, StartsEmpty) {
  PowerPool pool;
  EXPECT_DOUBLE_EQ(pool.available(), 0.0);
  EXPECT_FALSE(pool.peek_local_urgency());
}

TEST(PowerPool, DepositAccumulates) {
  PowerPool pool;
  pool.deposit(10.0);
  pool.deposit(5.5);
  EXPECT_DOUBLE_EQ(pool.available(), 15.5);
  EXPECT_DOUBLE_EQ(pool.stats().total_deposited_watts, 15.5);
}

TEST(PowerPool, ZeroDepositIsNoop) {
  PowerPool pool;
  pool.deposit(0.0);
  EXPECT_DOUBLE_EQ(pool.available(), 0.0);
  EXPECT_EQ(pool.stats().total_deposited_watts, 0.0);
}

// --- getMaxSize (Algorithm 2) -------------------------------------------

TEST(PowerPool, MaxTransactionPaperExamples) {
  // "So if the pool size is over 300 it returns 30, and if below 10 it
  // returns 1."
  PowerPool pool;
  EXPECT_DOUBLE_EQ(pool.max_transaction(400.0), 30.0);
  EXPECT_DOUBLE_EQ(pool.max_transaction(301.0), 30.0);
  EXPECT_DOUBLE_EQ(pool.max_transaction(5.0), 1.0);
  EXPECT_DOUBLE_EQ(pool.max_transaction(9.0), 1.0);
}

TEST(PowerPool, MaxTransactionTenPercentInMidRange) {
  PowerPool pool;
  EXPECT_DOUBLE_EQ(pool.max_transaction(100.0), 10.0);
  EXPECT_DOUBLE_EQ(pool.max_transaction(200.0), 20.0);
  EXPECT_DOUBLE_EQ(pool.max_transaction(300.0), 30.0);
  EXPECT_DOUBLE_EQ(pool.max_transaction(10.0), 1.0);
}

// --- non-urgent serving ----------------------------------------------------

TEST(PowerPool, NonUrgentGrantIsRateLimited) {
  PowerPool pool;
  pool.deposit(500.0);
  PowerRequest req;
  double granted = pool.serve(req);
  EXPECT_DOUBLE_EQ(granted, 30.0);  // upper clamp
  EXPECT_DOUBLE_EQ(pool.available(), 470.0);
}

TEST(PowerPool, NonUrgentGrantFromSmallPoolGivesEverything) {
  PowerPool pool;
  pool.deposit(0.4);
  double granted = pool.serve(PowerRequest{});
  // min(pool, clamp) = min(0.4, 1.0): the lower clamp cannot grant more
  // than the pool holds.
  EXPECT_DOUBLE_EQ(granted, 0.4);
  EXPECT_DOUBLE_EQ(pool.available(), 0.0);
}

TEST(PowerPool, EmptyPoolGrantsZero) {
  PowerPool pool;
  double granted = pool.serve(PowerRequest{});
  EXPECT_DOUBLE_EQ(granted, 0.0);
  EXPECT_EQ(pool.stats().empty_grants, 1u);
}

TEST(PowerPool, NonUrgentDoesNotSetLocalUrgency) {
  PowerPool pool;
  pool.deposit(100.0);
  pool.serve(PowerRequest{});
  EXPECT_FALSE(pool.peek_local_urgency());
}

// --- urgent serving --------------------------------------------------------

TEST(PowerPool, UrgentGrantBypassesLimit) {
  PowerPool pool;
  pool.deposit(500.0);
  PowerRequest req;
  req.urgent = true;
  req.alpha_watts = 120.0;
  double granted = pool.serve(req);
  EXPECT_DOUBLE_EQ(granted, 120.0);  // far above the 30 W clamp
  EXPECT_DOUBLE_EQ(pool.available(), 380.0);
}

TEST(PowerPool, UrgentGrantBoundedByPool) {
  PowerPool pool;
  pool.deposit(50.0);
  PowerRequest req;
  req.urgent = true;
  req.alpha_watts = 120.0;
  EXPECT_DOUBLE_EQ(pool.serve(req), 50.0);
  EXPECT_DOUBLE_EQ(pool.available(), 0.0);
}

TEST(PowerPool, UrgentGrantBoundedByAlpha) {
  PowerPool pool;
  pool.deposit(500.0);
  PowerRequest req;
  req.urgent = true;
  req.alpha_watts = 7.0;
  EXPECT_DOUBLE_EQ(pool.serve(req), 7.0);
}

TEST(PowerPool, UrgentSetsLocalUrgencyLatched) {
  PowerPool pool;
  pool.deposit(10.0);
  PowerRequest urgent;
  urgent.urgent = true;
  urgent.alpha_watts = 1.0;
  pool.serve(urgent);
  EXPECT_TRUE(pool.peek_local_urgency());
  // A later non-urgent request must not clear the latched signal.
  pool.serve(PowerRequest{});
  EXPECT_TRUE(pool.peek_local_urgency());
  EXPECT_TRUE(pool.consume_local_urgency());
  EXPECT_FALSE(pool.peek_local_urgency());
  EXPECT_FALSE(pool.consume_local_urgency());
}

TEST(PowerPool, NegativeAlphaTreatedAsZero) {
  PowerPool pool;
  pool.deposit(10.0);
  PowerRequest req;
  req.urgent = true;
  req.alpha_watts = -5.0;
  EXPECT_DOUBLE_EQ(pool.serve(req), 0.0);
  EXPECT_DOUBLE_EQ(pool.available(), 10.0);
}

// --- local take / drain ------------------------------------------------------

TEST(PowerPool, TakeLocalUsesTransactionLimit) {
  PowerPool pool;
  pool.deposit(500.0);
  EXPECT_DOUBLE_EQ(pool.take_local(), 30.0);
  EXPECT_DOUBLE_EQ(pool.available(), 470.0);
}

TEST(PowerPool, TakeLocalFromEmptyIsZero) {
  PowerPool pool;
  EXPECT_DOUBLE_EQ(pool.take_local(), 0.0);
}

TEST(PowerPool, DrainEmptiesEverything) {
  PowerPool pool;
  pool.deposit(123.0);
  EXPECT_DOUBLE_EQ(pool.drain(), 123.0);
  EXPECT_DOUBLE_EQ(pool.available(), 0.0);
  EXPECT_DOUBLE_EQ(pool.drain(), 0.0);
}

// --- conservation ------------------------------------------------------------

TEST(PowerPool, ServeIsZeroSum) {
  PowerPool pool;
  pool.deposit(100.0);
  double taken = 0.0;
  for (int i = 0; i < 50; ++i) {
    PowerRequest req;
    req.urgent = (i % 3 == 0);
    req.alpha_watts = 9.0;
    taken += pool.serve(req);
  }
  EXPECT_NEAR(taken + pool.available(), 100.0, 1e-9);
}

TEST(PowerPool, StatsTrackGrantsAndRequests) {
  PowerPool pool;
  pool.deposit(100.0);
  pool.serve(PowerRequest{});
  PowerRequest urgent;
  urgent.urgent = true;
  urgent.alpha_watts = 5.0;
  pool.serve(urgent);
  auto stats = pool.stats();
  EXPECT_EQ(stats.requests_served, 2u);
  EXPECT_EQ(stats.urgent_requests_served, 1u);
  EXPECT_DOUBLE_EQ(stats.total_granted_watts, 15.0);
}

TEST(PowerPool, ConcurrentDepositAndServeConserves) {
  // §3.3: pool mutations must be atomic or system-wide caps could be
  // violated. Hammer the pool from several threads and check the books.
  PowerPool pool;
  constexpr int kThreads = 4;
  constexpr int kOps = 2000;
  constexpr double kDeposit = 2.0;

  std::vector<std::thread> threads;
  std::vector<double> taken(kThreads, 0.0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, &taken, t] {
      for (int i = 0; i < kOps; ++i) {
        pool.deposit(kDeposit);
        PowerRequest req;
        req.urgent = (i % 2 == 0);
        req.alpha_watts = 1.5;
        taken[static_cast<std::size_t>(t)] += pool.serve(req);
      }
    });
  }
  for (auto& th : threads) th.join();

  double total_taken = 0.0;
  for (double t : taken) total_taken += t;
  EXPECT_NEAR(total_taken + pool.available(),
              kThreads * kOps * kDeposit, 1e-6);
}

TEST(PowerPoolDeath, NegativeDepositAborts) {
  PowerPool pool;
  EXPECT_DEATH(pool.deposit(-1.0), "negative");
}

TEST(PowerPoolDeath, BadConfigRejected) {
  PoolConfig cfg;
  cfg.share_fraction = 0.0;
  EXPECT_DEATH(PowerPool{cfg}, "share_fraction");
  PoolConfig cfg2;
  cfg2.lower_limit_watts = 10.0;
  cfg2.upper_limit_watts = 5.0;
  EXPECT_DEATH(PowerPool{cfg2}, "upper_limit");
}

class PoolShareSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(PoolShareSweep, GrantNeverExceedsPoolOrClamp) {
  auto [pool_size, share] = GetParam();
  PoolConfig cfg;
  cfg.share_fraction = share;
  PowerPool pool(cfg);
  pool.deposit(pool_size);
  double granted = pool.serve(PowerRequest{});
  EXPECT_LE(granted, pool_size + 1e-12);
  EXPECT_LE(granted, cfg.upper_limit_watts + 1e-12);
  EXPECT_GE(granted, 0.0);
  EXPECT_NEAR(pool.available(), pool_size - granted, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, PoolShareSweep,
    ::testing::Combine(::testing::Values(0.0, 0.5, 5.0, 50.0, 300.0,
                                         5000.0),
                       ::testing::Values(0.05, 0.10, 0.25, 1.0)));

}  // namespace
}  // namespace penelope::core
