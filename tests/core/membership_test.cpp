#include "core/membership.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace penelope::core {
namespace {

MembershipConfig config_1s() {
  MembershipConfig config;
  config.heartbeat_period = common::from_seconds(1.0);
  config.suspect_after_missed = 3;
  config.dead_after_missed = 6;
  return config;
}

common::Ticks sec(double s) { return common::from_seconds(s); }

std::vector<MembershipTransition> tick_at(FailureDetector& d,
                                          common::Ticks now) {
  std::vector<MembershipTransition> out;
  d.tick(now, out);
  return out;
}

TEST(FailureDetector, SilentPeerProgressesAliveSuspectedDead) {
  FailureDetector d(config_1s());
  d.track(7, 0);
  EXPECT_EQ(d.liveness(7), PeerLiveness::kAlive);

  // Under the suspicion threshold: nothing happens.
  EXPECT_TRUE(tick_at(d, sec(2.5)).empty());
  EXPECT_EQ(d.liveness(7), PeerLiveness::kAlive);

  // Three missed periods: suspected.
  auto transitions = tick_at(d, sec(3.0));
  ASSERT_EQ(transitions.size(), 1u);
  EXPECT_EQ(transitions[0].peer, 7);
  EXPECT_EQ(transitions[0].to, PeerLiveness::kSuspected);
  EXPECT_EQ(transitions[0].incarnation, 1u);
  EXPECT_EQ(d.liveness(7), PeerLiveness::kSuspected);

  // Six missed periods: dead.
  transitions = tick_at(d, sec(6.0));
  ASSERT_EQ(transitions.size(), 1u);
  EXPECT_EQ(transitions[0].to, PeerLiveness::kDead);
  EXPECT_EQ(d.liveness(7), PeerLiveness::kDead);

  // Dead is terminal for the clock: no repeated transitions.
  EXPECT_TRUE(tick_at(d, sec(60.0)).empty());
}

TEST(FailureDetector, BothTransitionsCanFireInOneTick) {
  // A detector that was not ticked for a long gap (e.g. its own node
  // was down) must still pass through suspected on the way to dead, so
  // the journal always shows the full lifecycle.
  FailureDetector d(config_1s());
  d.track(3, 0);
  auto transitions = tick_at(d, sec(10.0));
  ASSERT_EQ(transitions.size(), 2u);
  EXPECT_EQ(transitions[0].to, PeerLiveness::kSuspected);
  EXPECT_EQ(transitions[1].to, PeerLiveness::kDead);
}

TEST(FailureDetector, TrafficRefreshesTheSuspicionClock) {
  FailureDetector d(config_1s());
  d.track(1, 0);
  EXPECT_EQ(d.observe_traffic(1, sec(2.9)), MembershipSignal::kFresh);
  // Old silence no longer counts: the clock restarted at 2.9 s.
  EXPECT_TRUE(tick_at(d, sec(5.0)).empty());
  EXPECT_EQ(d.liveness(1), PeerLiveness::kAlive);
}

TEST(FailureDetector, TrafficFromSuspectedPeerIsAFalseSuspicion) {
  FailureDetector d(config_1s());
  d.track(1, 0);
  tick_at(d, sec(3.0));
  ASSERT_EQ(d.liveness(1), PeerLiveness::kSuspected);
  EXPECT_EQ(d.observe_traffic(1, sec(3.1)), MembershipSignal::kRecovered);
  EXPECT_EQ(d.liveness(1), PeerLiveness::kAlive);
  EXPECT_EQ(d.incarnation(1), 1u);
}

TEST(FailureDetector, SameIncarnationHeartbeatRecoversDeadPeer) {
  // A partition outlasting the dead threshold, then healing: the peer
  // returns at the incarnation it never stopped running.
  FailureDetector d(config_1s());
  d.track(1, 0);
  tick_at(d, sec(6.0));
  ASSERT_EQ(d.liveness(1), PeerLiveness::kDead);
  EXPECT_EQ(d.observe_heartbeat(1, 1, sec(6.5)),
            MembershipSignal::kRecovered);
  EXPECT_EQ(d.liveness(1), PeerLiveness::kAlive);
}

TEST(FailureDetector, HigherIncarnationHeartbeatIsARejoin) {
  FailureDetector d(config_1s());
  d.track(1, 0);
  tick_at(d, sec(6.0));
  ASSERT_EQ(d.liveness(1), PeerLiveness::kDead);
  EXPECT_EQ(d.observe_heartbeat(1, 2, sec(6.5)),
            MembershipSignal::kRejoined);
  EXPECT_EQ(d.liveness(1), PeerLiveness::kAlive);
  EXPECT_EQ(d.incarnation(1), 2u);
}

TEST(FailureDetector, StaleIncarnationIsQuarantined) {
  FailureDetector d(config_1s());
  d.track(1, 0);
  ASSERT_EQ(d.observe_heartbeat(1, 3, sec(0.5)),
            MembershipSignal::kRejoined);
  // A reordered beacon from incarnation 2 arrives late: ignored — it
  // must refresh nothing, or a ghost could keep a dead peer "alive".
  EXPECT_EQ(d.observe_heartbeat(1, 2, sec(0.6)),
            MembershipSignal::kStaleQuarantined);
  EXPECT_EQ(d.incarnation(1), 3u);
  // The stale beacon did not touch the clock: silence since 0.5 s
  // still accumulates.
  auto transitions = tick_at(d, sec(3.5));
  ASSERT_EQ(transitions.size(), 1u);
  EXPECT_EQ(transitions[0].to, PeerLiveness::kSuspected);
  EXPECT_EQ(transitions[0].incarnation, 3u);
}

TEST(FailureDetector, TransitionsComeInAscendingPeerOrder) {
  FailureDetector d(config_1s());
  d.track(9, 0);
  d.track(2, 0);
  d.track(5, 0);
  auto transitions = tick_at(d, sec(3.0));
  ASSERT_EQ(transitions.size(), 3u);
  EXPECT_EQ(transitions[0].peer, 2);
  EXPECT_EQ(transitions[1].peer, 5);
  EXPECT_EQ(transitions[2].peer, 9);
}

TEST(FailureDetector, UntrackedPeerReportsAliveAtIncarnationOne) {
  FailureDetector d(config_1s());
  EXPECT_EQ(d.liveness(42), PeerLiveness::kAlive);
  EXPECT_EQ(d.incarnation(42), 1u);
  EXPECT_EQ(d.tracked_peers(), 0u);
}

TEST(FailureDetector, TrackIsIdempotent) {
  FailureDetector d(config_1s());
  d.track(1, 0);
  d.observe_heartbeat(1, 4, sec(1.0));
  // Re-tracking an already-known peer must not reset its view.
  d.track(1, sec(2.0));
  EXPECT_EQ(d.incarnation(1), 4u);
  EXPECT_EQ(d.tracked_peers(), 1u);
}

}  // namespace
}  // namespace penelope::core
