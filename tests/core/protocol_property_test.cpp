// Randomized property tests of the decider/pool pair: drive a small
// federation of deciders with arbitrary power readings, random grant
// routing, message reordering and random urgency, and assert the
// invariants that must survive *any* schedule:
//   * every cap stays inside the safe range,
//   * watts are conserved exactly (caps + pools + in-flight == budget),
//   * pools never go negative,
//   * grants never exceed what the responder debited.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "core/decider.hpp"
#include "core/pool.hpp"

namespace penelope::core {
namespace {

struct Node {
  PowerPool pool;
  Decider decider;
  explicit Node(const DeciderConfig& config)
      : decider(config, pool) {}
};

struct InFlight {
  int target_node;
  double watts;
};

class ProtocolFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ProtocolFuzz, InvariantsSurviveArbitrarySchedules) {
  common::Rng rng(GetParam());
  DeciderConfig config;
  config.initial_cap_watts = 160.0;
  config.epsilon_watts = 5.0;
  config.safe_range = {.min_watts = 80.0, .max_watts = 250.0};
  // Half the runs use the literal Algorithm-1 local-take policy.
  if (GetParam() % 2 == 0) {
    config.local_take = LocalTakePolicy::kRateLimited;
  }

  constexpr int kNodes = 5;
  std::vector<std::unique_ptr<Node>> nodes;
  for (int i = 0; i < kNodes; ++i) {
    nodes.push_back(std::make_unique<Node>(config));
  }
  // The ledger: live power must always equal budget + outstanding
  // retirement debt, whatever the schedule does.
  double budget = kNodes * config.initial_cap_watts;

  // Grants travel through this mailbag with random delays/reordering.
  std::vector<InFlight> in_flight;

  auto live_total = [&] {
    double total = 0.0;
    for (const auto& node : nodes) {
      total += node->decider.cap() + node->pool.available();
    }
    for (const auto& grant : in_flight) total += grant.watts;
    return total;
  };
  auto debt_total = [&] {
    double total = 0.0;
    for (const auto& node : nodes) {
      total += node->decider.retirement_debt();
    }
    return total;
  };

  for (int step = 0; step < 3000; ++step) {
    int actor = rng.uniform_int(0, kNodes - 1);
    Node& node = *nodes[static_cast<std::size_t>(actor)];

    switch (rng.uniform_int(0, 3)) {
      case 0: {  // decider step with an arbitrary power reading
        double reading = rng.uniform(0.0, 300.0);
        StepOutcome outcome = node.decider.begin_step(reading);
        if (outcome.kind == StepKind::kNeedsPeer) {
          // Route to a random pool; its grant enters the mailbag.
          int peer = rng.uniform_int(0, kNodes - 1);
          if (peer == actor) peer = (peer + 1) % kNodes;
          double before =
              nodes[static_cast<std::size_t>(peer)]->pool.available();
          double granted = nodes[static_cast<std::size_t>(peer)]
                               ->pool.serve(outcome.request);
          EXPECT_LE(granted, before + 1e-9);
          EXPECT_GE(granted, 0.0);
          if (rng.chance(0.8)) {
            in_flight.push_back(InFlight{actor, granted});
          } else {
            // Grant delivered immediately.
            node.decider.complete_peer_grant(granted);
          }
          if (rng.chance(0.7)) node.decider.finish_step();
        } else {
          node.decider.finish_step();
        }
        break;
      }
      case 1: {  // deliver a random in-flight grant (reordered)
        if (in_flight.empty()) break;
        auto idx = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(in_flight.size()) - 1));
        InFlight grant = in_flight[idx];
        in_flight.erase(in_flight.begin() + static_cast<long>(idx));
        // Late grants are banked in the pool by the driver; emulate.
        nodes[static_cast<std::size_t>(grant.target_node)]
            ->pool.deposit(grant.watts);
        break;
      }
      case 2: {  // a random budget reconfiguration of this node
        if (rng.chance(0.05)) {
          double delta = rng.uniform(-20.0, 20.0);
          (void)node.decider.apply_budget_delta(delta);
          budget += delta;
        }
        break;
      }
      case 3: {  // spontaneous urgent probe against this node's pool
        PowerRequest request;
        request.urgent = rng.chance(0.5);
        request.alpha_watts = rng.uniform(0.0, 100.0);
        double before = node.pool.available();
        double granted = node.pool.serve(request);
        EXPECT_LE(granted, before + 1e-9);
        in_flight.push_back(InFlight{rng.uniform_int(0, kNodes - 1),
                                     granted});
        break;
      }
    }

    // The safety invariants hold after every single event.
    for (const auto& n : nodes) {
      ASSERT_GE(n->decider.cap(),
                config.safe_range.min_watts - 1e-9);
      ASSERT_LE(n->decider.cap(),
                config.safe_range.max_watts + 1e-9);
      ASSERT_GE(n->pool.available(), 0.0);
      ASSERT_GE(n->decider.retirement_debt(), 0.0);
    }
    ASSERT_NEAR(live_total(), budget + debt_total(), 1e-7)
        << "ledger broke at step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtocolFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u,
                                           8u));

TEST(ProtocolConservation, ClosedSystemConservesExactly) {
  // No budget reconfiguration, no lost messages: conservation must be
  // exact to floating point over a long random schedule.
  common::Rng rng(99);
  DeciderConfig config;
  config.initial_cap_watts = 160.0;
  config.epsilon_watts = 5.0;
  config.safe_range = {.min_watts = 80.0, .max_watts = 250.0};

  constexpr int kNodes = 4;
  std::vector<std::unique_ptr<Node>> nodes;
  for (int i = 0; i < kNodes; ++i) {
    nodes.push_back(std::make_unique<Node>(config));
  }
  const double budget = kNodes * config.initial_cap_watts;
  std::vector<InFlight> in_flight;

  for (int step = 0; step < 20000; ++step) {
    int actor = rng.uniform_int(0, kNodes - 1);
    Node& node = *nodes[static_cast<std::size_t>(actor)];
    double reading = rng.uniform(60.0, 260.0);
    StepOutcome outcome = node.decider.begin_step(reading);
    if (outcome.kind == StepKind::kNeedsPeer) {
      int peer = (actor + rng.uniform_int(1, kNodes - 1)) % kNodes;
      double granted =
          nodes[static_cast<std::size_t>(peer)]->pool.serve(
              outcome.request);
      in_flight.push_back(InFlight{actor, granted});
    }
    node.decider.finish_step();

    if (!in_flight.empty() && rng.chance(0.6)) {
      InFlight grant = in_flight.back();
      in_flight.pop_back();
      nodes[static_cast<std::size_t>(grant.target_node)]
          ->decider.complete_peer_grant(grant.watts);
    }

    double total = 0.0;
    for (const auto& n : nodes) {
      total += n->decider.cap() + n->pool.available();
    }
    for (const auto& grant : in_flight) total += grant.watts;
    ASSERT_NEAR(total, budget, 1e-7) << "at step " << step;
  }
}

}  // namespace
}  // namespace penelope::core
