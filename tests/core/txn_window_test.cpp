#include "core/txn_window.hpp"

#include <gtest/gtest.h>

#include "core/protocol.hpp"

namespace penelope::core {
namespace {

TEST(TxnWindow, FirstSightingAcceptsRedeliveryRefuses) {
  TxnWindow window;
  EXPECT_TRUE(window.insert(42));
  EXPECT_TRUE(window.contains(42));
  EXPECT_FALSE(window.insert(42));
  EXPECT_TRUE(window.insert(43));
  EXPECT_FALSE(window.insert(42));
  EXPECT_EQ(window.size(), 2u);
}

TEST(TxnWindow, SentinelTxnIsNeverDeduplicated) {
  TxnWindow window;
  // kNoTxn marks legacy senders with no dedup id: every copy must pass.
  EXPECT_TRUE(window.insert(kNoTxn));
  EXPECT_TRUE(window.insert(kNoTxn));
  EXPECT_FALSE(window.contains(kNoTxn));
  EXPECT_EQ(window.size(), 0u);
}

TEST(TxnWindow, EvictsOldestAtCapacity) {
  TxnWindow window(4);
  for (std::uint64_t t = 1; t <= 4; ++t) EXPECT_TRUE(window.insert(t));
  for (std::uint64_t t = 1; t <= 4; ++t) EXPECT_TRUE(window.contains(t));
  // A fifth insert pushes out the oldest; the evicted txn becomes
  // acceptable again (the window only promises recent-past dedup).
  EXPECT_TRUE(window.insert(5));
  EXPECT_FALSE(window.contains(1));
  EXPECT_TRUE(window.contains(2));
  EXPECT_TRUE(window.contains(5));
  EXPECT_TRUE(window.insert(1));
  EXPECT_EQ(window.size(), 4u);
}

TEST(TxnWindow, ReinsertedTxnSurvivesUnrelatedEvictions) {
  // A txn that was evicted and then legitimately re-inserted lives at a
  // new ring slot; evicting its *old* slot's successor must not erase
  // the fresh entry (the generation check in insert guards this).
  TxnWindow window(2);
  EXPECT_TRUE(window.insert(10));  // slot 0
  EXPECT_TRUE(window.insert(11));  // slot 1
  EXPECT_TRUE(window.insert(12));  // slot 0, evicts 10
  EXPECT_TRUE(window.insert(10));  // slot 1, evicts 11 — 10 is fresh again
  EXPECT_TRUE(window.contains(10));
  EXPECT_TRUE(window.contains(12));
  EXPECT_TRUE(window.insert(13));  // slot 0, evicts 12
  EXPECT_TRUE(window.contains(10));
  EXPECT_FALSE(window.insert(10));  // still deduplicated
  EXPECT_TRUE(window.insert(14));  // slot 1, finally evicts 10
  EXPECT_FALSE(window.contains(10));
}

TEST(TxnWindow, SizeIsBoundedByCapacityForever) {
  TxnWindow window(16);
  for (std::uint64_t t = 1; t <= 1000; ++t) {
    EXPECT_TRUE(window.insert(t));
    EXPECT_LE(window.size(), 16u);
  }
  for (std::uint64_t t = 985; t <= 1000; ++t) {
    EXPECT_TRUE(window.contains(t));
  }
  EXPECT_FALSE(window.contains(984));
  EXPECT_EQ(window.capacity(), 16u);
}

TEST(TxnId, NamespacesNodesAndStreams) {
  // Two nodes using the same sequence numbers, or one node's two streams,
  // must never collide: a collision would make the receive window drop a
  // legitimate first delivery as a duplicate.
  EXPECT_NE(make_txn_id(0, 0, 7), make_txn_id(1, 0, 7));
  EXPECT_NE(make_txn_id(0, 0, 7), make_txn_id(0, 1, 7));
  EXPECT_NE(make_txn_id(3, 1, 7), make_txn_id(3, 1, 8));
  // The unit-test degenerate form: node -1, stream 0 is the raw sequence.
  EXPECT_EQ(make_txn_id(-1, 0, 7), 7u);
  // Namespaced ids never collide with the sentinel.
  EXPECT_NE(make_txn_id(0, 0, 0), kNoTxn);
}

}  // namespace
}  // namespace penelope::core
