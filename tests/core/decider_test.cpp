#include "core/decider.hpp"

#include <gtest/gtest.h>

namespace penelope::core {
namespace {

DeciderConfig base_config() {
  DeciderConfig cfg;
  cfg.initial_cap_watts = 160.0;
  cfg.epsilon_watts = 5.0;
  cfg.safe_range = {.min_watts = 80.0, .max_watts = 250.0};
  return cfg;
}

struct Fixture {
  PowerPool pool;
  Decider decider;
  Fixture() : decider(base_config(), pool) {}
  explicit Fixture(DeciderConfig cfg) : decider(cfg, pool) {}
};

// --- classification (Algorithm 1) ---------------------------------------

TEST(Decider, ExcessBranchLowersCapAndDeposits) {
  Fixture f;
  // P = 100 < 160 - 5: excess of 60.
  StepOutcome out = f.decider.begin_step(100.0);
  EXPECT_EQ(out.kind, StepKind::kDepositedExcess);
  EXPECT_DOUBLE_EQ(out.delta_watts, 60.0);
  EXPECT_DOUBLE_EQ(f.decider.cap(), 100.0);
  EXPECT_DOUBLE_EQ(f.pool.available(), 60.0);
  EXPECT_FALSE(f.decider.last_step_hungry());
}

TEST(Decider, WithinEpsilonIsHungryNotExcess) {
  Fixture f;
  // P = 156 is within epsilon (5) of cap 160: power-hungry.
  StepOutcome out = f.decider.begin_step(156.0);
  EXPECT_NE(out.kind, StepKind::kDepositedExcess);
  EXPECT_TRUE(f.decider.last_step_hungry());
  EXPECT_DOUBLE_EQ(f.decider.cap(), 160.0);
}

TEST(Decider, ExactlyAtThresholdIsHungry) {
  Fixture f;
  // P == C - eps: the paper's condition for excess is strict (P < C - eps).
  StepOutcome out = f.decider.begin_step(155.0);
  EXPECT_NE(out.kind, StepKind::kDepositedExcess);
}

TEST(Decider, ExcessNeverLowersBelowSafeMin) {
  Fixture f;
  StepOutcome out = f.decider.begin_step(30.0);  // below safe min 80
  EXPECT_EQ(out.kind, StepKind::kDepositedExcess);
  EXPECT_DOUBLE_EQ(f.decider.cap(), 80.0);
  EXPECT_DOUBLE_EQ(f.pool.available(), 80.0);  // 160 - 80
}

// --- hungry: local pool first --------------------------------------------

TEST(Decider, HungryDrainsLocalPoolFirst) {
  Fixture f;
  f.pool.deposit(50.0);
  StepOutcome out = f.decider.begin_step(158.0);
  EXPECT_EQ(out.kind, StepKind::kTookLocal);
  // Default policy drains the whole local cache in one step.
  EXPECT_DOUBLE_EQ(out.delta_watts, 50.0);
  EXPECT_DOUBLE_EQ(f.decider.cap(), 210.0);
  EXPECT_DOUBLE_EQ(f.pool.available(), 0.0);
}

TEST(Decider, LocalDrainOverflowBeyondCeilingReturnsToPool) {
  Fixture f;
  f.pool.deposit(120.0);
  StepOutcome out = f.decider.begin_step(158.0);
  EXPECT_EQ(out.kind, StepKind::kTookLocal);
  EXPECT_DOUBLE_EQ(out.delta_watts, 90.0);  // 160 -> 250 ceiling
  EXPECT_DOUBLE_EQ(f.decider.cap(), 250.0);
  EXPECT_DOUBLE_EQ(f.pool.available(), 30.0);
}

TEST(Decider, RateLimitedPolicyFollowsAlgorithmOneLiterally) {
  DeciderConfig cfg = base_config();
  cfg.local_take = LocalTakePolicy::kRateLimited;
  Fixture f(cfg);
  f.pool.deposit(100.0);
  StepOutcome out = f.decider.begin_step(158.0);
  EXPECT_EQ(out.kind, StepKind::kTookLocal);
  EXPECT_DOUBLE_EQ(out.delta_watts, 10.0);  // min(Pool, getMaxSize) = 10%
  EXPECT_DOUBLE_EQ(f.decider.cap(), 170.0);
  EXPECT_DOUBLE_EQ(f.pool.available(), 90.0);
}

TEST(Decider, HungryWithEmptyPoolNeedsPeer) {
  Fixture f;
  StepOutcome out = f.decider.begin_step(158.0);
  EXPECT_EQ(out.kind, StepKind::kNeedsPeer);
  EXPECT_FALSE(out.request.urgent);
  EXPECT_DOUBLE_EQ(out.request.alpha_watts, 0.0);
  EXPECT_NE(out.request.txn_id, 0u);
}

TEST(Decider, TxnIdsAreUnique) {
  Fixture f;
  auto a = f.decider.begin_step(158.0);
  f.decider.complete_peer_grant(0.0);
  auto b = f.decider.begin_step(158.0);
  EXPECT_NE(a.request.txn_id, b.request.txn_id);
}

// --- urgency ---------------------------------------------------------------

TEST(Decider, UrgentWhenHungryBelowInitialCap) {
  Fixture f;
  // Drop the cap below initial via an excess step, then become hungry.
  f.decider.begin_step(100.0);  // cap -> 100
  f.pool.drain();               // empty the local pool
  StepOutcome out = f.decider.begin_step(98.0);  // hungry at cap 100
  EXPECT_EQ(out.kind, StepKind::kNeedsPeer);
  EXPECT_TRUE(out.request.urgent);
  EXPECT_DOUBLE_EQ(out.request.alpha_watts, 60.0);  // 160 - 100
  EXPECT_TRUE(f.decider.last_step_urgent());
}

TEST(Decider, NotUrgentAtOrAboveInitialCap) {
  Fixture f;
  StepOutcome out = f.decider.begin_step(158.0);
  EXPECT_FALSE(out.request.urgent);
  EXPECT_FALSE(f.decider.last_step_urgent());
}

TEST(Decider, LocalUrgencyReleaseDownToInitial) {
  Fixture f;
  // Raise the cap above initial via a local take.
  f.pool.deposit(40.0);
  f.decider.begin_step(158.0);  // drains 40 -> cap 200
  ASSERT_DOUBLE_EQ(f.decider.cap(), 200.0);
  // A remote urgent request hits our pool, latching localUrgency.
  PowerRequest urgent;
  urgent.urgent = true;
  urgent.alpha_watts = 50.0;
  f.pool.serve(urgent);
  // Next step is hungry with an empty pool (peer request); the
  // end-of-step release must drop everything above the initial cap.
  StepOutcome out = f.decider.begin_step(198.0);
  EXPECT_EQ(out.kind, StepKind::kNeedsPeer);
  f.decider.complete_peer_grant(0.0);
  double released = f.decider.finish_step();
  EXPECT_DOUBLE_EQ(released, 40.0);  // 200 -> initial 160
  EXPECT_DOUBLE_EQ(f.decider.cap(), 160.0);
  EXPECT_FALSE(f.pool.peek_local_urgency());
}

TEST(Decider, UrgentNodeDoesNotReleaseOnLocalUrgency) {
  Fixture f;
  f.decider.begin_step(100.0);  // cap -> 100, below initial
  f.pool.drain();
  PowerRequest urgent;
  urgent.urgent = true;
  urgent.alpha_watts = 10.0;
  f.pool.serve(urgent);  // latch the flag
  // This node is itself urgent now.
  f.decider.begin_step(98.0);
  f.decider.complete_peer_grant(0.0);
  EXPECT_DOUBLE_EQ(f.decider.finish_step(), 0.0);
  // The flag must survive for a later non-urgent step (Algorithm 1
  // clears it only in the release branch).
  EXPECT_TRUE(f.pool.peek_local_urgency());
}

TEST(Decider, LocalUrgencyWithNothingAboveInitialConsumesFlag) {
  Fixture f;
  PowerRequest urgent;
  urgent.urgent = true;
  urgent.alpha_watts = 10.0;
  f.pool.serve(urgent);
  f.decider.begin_step(158.0);  // hungry at initial cap, not urgent
  f.decider.complete_peer_grant(0.0);
  EXPECT_DOUBLE_EQ(f.decider.finish_step(), 0.0);
  EXPECT_FALSE(f.pool.peek_local_urgency());
}

// --- grants and the safe ceiling ------------------------------------------

TEST(Decider, GrantRaisesCap) {
  Fixture f;
  f.decider.begin_step(158.0);
  double applied = f.decider.complete_peer_grant(25.0);
  EXPECT_DOUBLE_EQ(applied, 25.0);
  EXPECT_DOUBLE_EQ(f.decider.cap(), 185.0);
}

TEST(Decider, GrantOverflowBeyondSafeMaxGoesToPool) {
  DeciderConfig cfg = base_config();
  cfg.initial_cap_watts = 240.0;
  Fixture f(cfg);
  f.decider.begin_step(238.0);  // hungry near the ceiling
  double applied = f.decider.complete_peer_grant(30.0);
  EXPECT_DOUBLE_EQ(applied, 10.0);  // 240 -> 250 ceiling
  EXPECT_DOUBLE_EQ(f.decider.cap(), 250.0);
  EXPECT_DOUBLE_EQ(f.pool.available(), 20.0);  // overflow banked
}

TEST(Decider, HungryAtCeilingHolds) {
  DeciderConfig cfg = base_config();
  cfg.initial_cap_watts = 250.0;
  Fixture f(cfg);
  StepOutcome out = f.decider.begin_step(249.0);
  EXPECT_EQ(out.kind, StepKind::kHeld);
  EXPECT_DOUBLE_EQ(f.decider.cap(), 250.0);
}

TEST(Decider, ZeroGrantLeavesCapUnchanged) {
  Fixture f;
  f.decider.begin_step(158.0);
  EXPECT_DOUBLE_EQ(f.decider.complete_peer_grant(0.0), 0.0);
  EXPECT_DOUBLE_EQ(f.decider.cap(), 160.0);
}

// --- conservation over many steps -------------------------------------------

TEST(Decider, CapPlusPoolConservedOverSteps) {
  Fixture f;
  double budget = f.decider.cap() + f.pool.available();
  // Alternate excess/hungry patterns; no external grants.
  double readings[] = {100.0, 158.0, 90.0, 150.0, 130.0, 145.0, 70.0};
  for (double p : readings) {
    StepOutcome out = f.decider.begin_step(p);
    if (out.kind == StepKind::kNeedsPeer) f.decider.complete_peer_grant(0.0);
    f.decider.finish_step();
    EXPECT_NEAR(f.decider.cap() + f.pool.available(), budget, 1e-9);
  }
}

TEST(Decider, StatsAccumulate) {
  Fixture f;
  f.decider.begin_step(100.0);  // excess
  f.decider.finish_step();
  f.pool.drain();
  f.decider.begin_step(98.0);  // hungry urgent -> peer
  f.decider.complete_peer_grant(0.0);
  f.decider.finish_step();
  const DeciderStats& stats = f.decider.stats();
  EXPECT_EQ(stats.steps, 2u);
  EXPECT_EQ(stats.excess_steps, 1u);
  EXPECT_EQ(stats.hungry_steps, 1u);
  EXPECT_EQ(stats.peer_requests, 1u);
  EXPECT_EQ(stats.urgent_requests, 1u);
  EXPECT_DOUBLE_EQ(stats.watts_donated, 60.0);
}

TEST(DeciderDeath, InitialCapOutsideSafeRangeRejected) {
  PowerPool pool;
  DeciderConfig cfg = base_config();
  cfg.initial_cap_watts = 20.0;
  EXPECT_DEATH(Decider(cfg, pool), "safe range");
}

// --- oscillation-damping property (§3.2) ------------------------------------

TEST(Decider, RepeatedGrantsAreGradual) {
  // A node that is hungry against a huge remote pool must climb in
  // clamped steps, not jump: this is the anti-oscillation rate limit.
  Fixture donor_side;
  donor_side.pool.deposit(1000.0);
  Fixture hungry;
  double previous_cap = hungry.decider.cap();
  for (int i = 0; i < 3; ++i) {
    StepOutcome out = hungry.decider.begin_step(previous_cap - 1.0);
    ASSERT_EQ(out.kind, StepKind::kNeedsPeer);
    double granted = donor_side.pool.serve(out.request);
    EXPECT_LE(granted, 30.0);
    hungry.decider.complete_peer_grant(granted);
    hungry.decider.finish_step();
    EXPECT_LE(hungry.decider.cap() - previous_cap, 30.0 + 1e-9);
    previous_cap = hungry.decider.cap();
  }
}

}  // namespace
}  // namespace penelope::core
