// Membership layer: per-peer failure detection with incarnation-guarded
// rejoin (PROTOCOL.md "Membership and incarnations").
//
// Each decider runs its own FailureDetector — there is no membership
// oracle, matching Penelope's no-central-authority stance (§1). Liveness
// evidence is piggybacked on every message a peer sends plus a cheap
// periodic Heartbeat beacon; a peer silent for `suspect_after_missed`
// heartbeat periods becomes suspected, and after `dead_after_missed`
// periods it is declared dead, at which point the watts stranded against
// it become reclaimable (cluster/metrics.hpp holds that ledger).
//
// Incarnations make rejoin safe. Every node carries a monotonically
// increasing crash counter starting at 1; a restarting node bumps it.
// The detector compares each piece of evidence against the highest
// incarnation it has seen for that peer:
//   * same incarnation after suspected/dead  -> kRecovered (false
//     suspicion — the peer never died, the fabric just hid it),
//   * higher incarnation                     -> kRejoined (a genuine
//     crash-restart; pre-crash state for that peer is obsolete),
//   * lower incarnation                      -> kStaleQuarantined (a
//     reordered pre-crash message; ignored so a ghost of the old
//     incarnation can never resurrect a consumed reclaim tag).
// All observation state lives in a std::map keyed by peer id so tick()
// walks peers in a deterministic order — transition order feeds the
// journal and must replay bit-identically across runs.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/units.hpp"

namespace penelope::core {

struct MembershipConfig {
  /// Beacon period; also the unit "missed periods" is measured in.
  common::Ticks heartbeat_period = common::from_seconds(1.0);
  /// Missed periods before alive -> suspected.
  std::uint32_t suspect_after_missed = 3;
  /// Missed periods before suspected -> dead (must exceed suspect).
  std::uint32_t dead_after_missed = 6;
};

enum class PeerLiveness : std::uint8_t { kAlive, kSuspected, kDead };

/// What a piece of evidence meant for the observer's view of the peer.
enum class MembershipSignal : std::uint8_t {
  kFresh,             ///< routine evidence from an alive peer
  kRecovered,         ///< suspected/dead peer returned, same incarnation
  kRejoined,          ///< peer returned at a higher incarnation
  kStaleQuarantined,  ///< evidence from an older incarnation; ignored
};

/// A liveness state change produced by tick().
struct MembershipTransition {
  std::int32_t peer = -1;
  PeerLiveness to = PeerLiveness::kAlive;
  /// Highest incarnation observed for the peer at transition time.
  std::uint32_t incarnation = 1;
};

class FailureDetector {
 public:
  explicit FailureDetector(MembershipConfig config);

  /// Start (or re-start) tracking `peer`; fresh as of `now` at
  /// incarnation 1 unless evidence already raised it.
  void track(std::int32_t peer, common::Ticks now);

  /// Piggybacked evidence: any protocol message from `peer` proves it is
  /// up at its last-known incarnation.
  MembershipSignal observe_traffic(std::int32_t peer, common::Ticks now);

  /// Explicit evidence: a Heartbeat names the sender's incarnation, so
  /// this is the only path that can report kRejoined/kStaleQuarantined.
  MembershipSignal observe_heartbeat(std::int32_t peer,
                                     std::uint32_t incarnation,
                                     common::Ticks now);

  /// Advance suspicion clocks; appends alive->suspected and
  /// suspected->dead transitions (in ascending peer order) to `out`.
  void tick(common::Ticks now,
            std::vector<MembershipTransition>& out);

  PeerLiveness liveness(std::int32_t peer) const;
  std::uint32_t incarnation(std::int32_t peer) const;
  std::size_t tracked_peers() const { return views_.size(); }

 private:
  struct PeerView {
    PeerLiveness state = PeerLiveness::kAlive;
    std::uint32_t incarnation = 1;
    common::Ticks last_seen = 0;
  };

  MembershipSignal refresh(PeerView& view, common::Ticks now);

  MembershipConfig config_;
  std::map<std::int32_t, PeerView> views_;
};

}  // namespace penelope::core
