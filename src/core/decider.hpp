// The local decider — Algorithm 1 of the paper, as a transport- and
// clock-agnostic state machine.
//
// Every period the driver (sim actor or real thread) feeds the decider
// the average power since the previous step. The decider classifies the
// node:
//   excess (P < C − ε):  lower the cap *first*, then deposit the freed
//                        watts in the local pool (ordering preserves the
//                        system-wide cap: power is never exposed while
//                        still counted in the cap);
//   hungry (P ≥ C − ε):  drain the local pool (bounded by the
//                        transaction limit); if it is empty, ask the
//                        driver to query one uniformly random peer —
//                        urgently, with alpha = initialCap − C, when the
//                        node sits below its initial assignment.
// After the grant (or timeout) resolves, the step finishes with the
// localUrgency check: if this node's pool served an urgent request and
// the node is not itself urgent, it releases everything above its initial
// cap back into the pool so the urgent node can find it.
//
// The decider never sets the cap outside the safe range, whatever the
// transaction traffic does (§3: deciders "can ensure that nodes do not
// exceed that safe range"); watts that cannot be applied because the cap
// is pinned at the safe maximum go back to the local pool instead of
// vanishing, preserving conservation.
#pragma once

#include <cstdint>

#include "core/pool.hpp"
#include "core/protocol.hpp"
#include "power/power_interface.hpp"

namespace penelope::core {

/// How a hungry decider drains its own local pool before querying peers.
///
/// Algorithm 1 as printed applies the same getMaxSize rate limit to the
/// local take as to remote transactions (kRateLimited). Read literally,
/// that makes a node crawl through its own cached watts at as little as
/// LOWER_LIMIT per period while remote excess sits undiscovered — which
/// cannot be the deployed behaviour given the paper's measured
/// near-parity with SLURM (Fig. 2). kDrainAll takes the whole local
/// cache in one step: it cannot hoard (the power was already local) and
/// cannot oscillate the network (no transaction occurs). The ablation
/// bench compares both policies; kDrainAll is the default.
enum class LocalTakePolicy { kDrainAll, kRateLimited };

struct DeciderConfig {
  /// Initial (and urgency-threshold) node-level cap.
  double initial_cap_watts = 160.0;
  /// Power margin epsilon: within epsilon of the cap counts as hungry.
  double epsilon_watts = 5.0;
  power::SafeRange safe_range;
  LocalTakePolicy local_take = LocalTakePolicy::kDrainAll;
  /// Ablation knob: disable the urgency mechanism entirely — requests
  /// are never urgent and localUrgency releases never fire. The paper's
  /// §3 motivates urgency; bench_ablation measures what it buys.
  bool urgency_enabled = true;
  /// Node id folded into every request's txn id (make_txn_id stream 0)
  /// so ids are unique across the cluster, not just per decider. The
  /// default (-1 = kNoNode) leaves the high bits zero, so single-node
  /// unit tests still see txn ids 1, 2, 3, ...
  std::int32_t txn_node = -1;
};

struct DeciderStats {
  std::uint64_t steps = 0;
  std::uint64_t excess_steps = 0;
  std::uint64_t hungry_steps = 0;
  std::uint64_t local_takes = 0;
  std::uint64_t peer_requests = 0;
  std::uint64_t urgent_requests = 0;
  std::uint64_t urgency_releases = 0;  ///< localUrgency-induced releases
  double watts_donated = 0.0;          ///< deposits from the excess branch
  double watts_received = 0.0;         ///< cap increases from transactions
};

enum class StepKind {
  kDepositedExcess,  ///< excess branch: cap lowered, pool credited
  kTookLocal,        ///< hungry, satisfied from the local pool
  kNeedsPeer,        ///< hungry, local pool empty: driver must query a peer
  kHeld,             ///< hungry but cap pinned at safe max — nothing to do
};

struct StepOutcome {
  StepKind kind = StepKind::kHeld;
  /// Watts moved (deposited for kDepositedExcess, applied to the cap for
  /// kTookLocal, 0 otherwise).
  double delta_watts = 0.0;
  /// Valid when kind == kNeedsPeer.
  PowerRequest request;
};

class Decider {
 public:
  Decider(DeciderConfig config, PowerPool& local_pool);

  /// Run the classification half of one control step. The caller applies
  /// the resulting cap via cap() to its PowerInterface.
  StepOutcome begin_step(double avg_power_watts);

  /// Resolve the peer transaction issued by the last kNeedsPeer step with
  /// the granted watts (0 for an empty grant or a timeout). Returns the
  /// watts actually applied to the cap; any remainder that would push the
  /// cap past the safe maximum is deposited back into the local pool.
  double complete_peer_grant(double granted_watts);

  /// End-of-step localUrgency release (Algorithm 1's final block). Call
  /// once per step, after the grant resolution if a request was sent.
  /// Returns the watts released into the local pool (0 if none).
  double finish_step();

  double cap() const { return cap_; }
  double initial_cap() const { return config_.initial_cap_watts; }

  /// --- dynamic system-budget reconfiguration -------------------------
  /// The cluster's share-per-node changed. A budget *increase* raises
  /// the initial cap and grants the node the headroom immediately
  /// (overflow past the safe ceiling banks in the pool). A budget *cut*
  /// lowers the initial cap and retires the node's share: first from
  /// the cap (down to the safe minimum), then from the local pool;
  /// whatever cannot be retired now becomes retirement debt, paid off
  /// from the node's future excess before it reaches the pool. Returns
  /// the watts retired immediately.
  double apply_budget_delta(double delta_watts);

  /// Outstanding watts this node still owes to a budget cut.
  double retirement_debt() const { return retirement_debt_; }

  /// Crash: the node drops to the safe-minimum cap (firmware default on
  /// power-up) and everything above it is surrendered to the caller,
  /// who strands it against this node's incarnation for reclamation.
  /// Step flags clear; the txn counter survives (modeled-persistent, so
  /// a restarted node can never re-mint a pre-crash txn id). Returns
  /// the seized watts (>= 0).
  double seize_for_restart();

  /// Whether the most recent step classified this node as urgent.
  bool last_step_urgent() const { return last_urgent_; }
  bool last_step_hungry() const { return last_hungry_; }

  const DeciderStats& stats() const { return stats_; }
  const DeciderConfig& config() const { return config_; }
  PowerPool& local_pool() { return pool_; }

  /// Observability hook: when set, every cap/debt mutation writes 1 to
  /// `cell` so the telemetry sampler knows to re-snapshot this node.
  void set_observer_dirty(std::uint8_t* cell) { observer_dirty_ = cell; }

 private:
  double raise_cap(double watts);

  void mark_dirty() {
    if (observer_dirty_) *observer_dirty_ = 1;
  }

  DeciderConfig config_;
  std::uint8_t* observer_dirty_ = nullptr;
  PowerPool& pool_;
  double cap_;
  double retirement_debt_ = 0.0;
  bool last_urgent_ = false;
  bool last_hungry_ = false;
  std::uint64_t next_txn_ = 1;
  DeciderStats stats_;
};

}  // namespace penelope::core
