// Bounded seen-transaction window for at-most-once message application.
//
// Receivers pass every power-carrying message's txn id through insert();
// a false return means the id was already seen inside the window and the
// message is a redelivery (fabric duplicate, retry, or a copy that
// survived a partition heal) that must be counted, never applied.
//
// The window is a ring of the last `capacity` distinct ids plus a hash
// map for O(1) membership. Eviction is generation-checked: a ring slot
// being overwritten only erases its map entry if that entry still points
// at this slot's generation — an id re-inserted after eviction (possible
// only via kNoTxn-adjacent misuse, but cheap to defend) can occupy a
// newer slot, and blindly erasing by value would forget it.
//
// Sizing: the window only has to outlive the fabric's redelivery horizon
// (a duplicate arrives at most one reorder-delay after its sibling), not
// the life of the node. With per-sender txn streams, 1024 distinct ids
// span far more traffic than any copy can stay in flight.
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace penelope::core {

class TxnWindow {
 public:
  static constexpr std::size_t kDefaultCapacity = 1024;

  explicit TxnWindow(std::size_t capacity = kDefaultCapacity)
      : ring_(capacity, 0) {}

  /// Record `txn` as seen. Returns true if it was NOT in the window
  /// (first sighting: apply the message), false if it was (duplicate:
  /// drop it). kNoTxn is a sentinel and is always "new".
  bool insert(std::uint64_t txn) {
    if (txn == 0) return true;  // kNoTxn: dedup disabled for this sender
    auto [it, inserted] = seen_.try_emplace(txn, next_seq_);
    if (!inserted) return false;
    const std::size_t slot = next_seq_ % ring_.size();
    const std::uint64_t evicted = ring_[slot];
    if (evicted != 0) {
      auto old = seen_.find(evicted);
      // Generation check: only forget the evicted id if its map entry
      // still belongs to the slot being recycled.
      if (old != seen_.end() && old->second + ring_.size() == next_seq_)
        seen_.erase(old);
    }
    ring_[slot] = txn;
    ++next_seq_;
    return true;
  }

  /// Membership without insertion.
  bool contains(std::uint64_t txn) const {
    return txn != 0 && seen_.count(txn) != 0;
  }

  /// Forget everything: a crash-restart loses the window (it is volatile
  /// state by design — see PROTOCOL.md "Membership and incarnations").
  /// Safe only because restarted senders keep their sequence counters,
  /// so pre-crash txn ids are never re-minted at the new incarnation.
  void reset() {
    std::fill(ring_.begin(), ring_.end(), 0);
    seen_.clear();
    next_seq_ = 0;
  }

  std::size_t size() const { return seen_.size(); }
  std::size_t capacity() const { return ring_.size(); }

 private:
  std::vector<std::uint64_t> ring_;  ///< insertion order, slot = seq % cap
  std::unordered_map<std::uint64_t, std::uint64_t> seen_;  ///< txn -> seq
  std::uint64_t next_seq_ = 0;
};

}  // namespace penelope::core
