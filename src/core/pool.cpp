#include "core/pool.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/units.hpp"

namespace penelope::core {

PowerPool::PowerPool(PoolConfig config) : config_(config) {
  PEN_CHECK(config_.share_fraction > 0.0 && config_.share_fraction <= 1.0);
  PEN_CHECK(config_.lower_limit_watts >= 0.0);
  PEN_CHECK(config_.upper_limit_watts >= config_.lower_limit_watts);
}

double PowerPool::max_transaction(double pool_watts) const {
  double size = config_.share_fraction * pool_watts;
  if (size > config_.upper_limit_watts) return config_.upper_limit_watts;
  if (size < config_.lower_limit_watts) return config_.lower_limit_watts;
  return size;
}

void PowerPool::deposit(double watts) {
  PEN_CHECK_MSG(watts >= -common::kWattEpsilon,
                "cannot deposit negative power");
  if (watts <= 0.0) return;
  std::scoped_lock lock(mutex_);
  watts_ += watts;
  mark_dirty();
  stats_.total_deposited_watts += watts;
}

double PowerPool::serve(const PowerRequest& request) {
  std::scoped_lock lock(mutex_);
  double delta;
  if (request.urgent) {
    double alpha = std::max(request.alpha_watts, 0.0);
    delta = std::min(watts_, alpha);
    ++stats_.urgent_requests_served;
  } else {
    delta = std::min(watts_, max_transaction(watts_));
  }
  delta = std::max(delta, 0.0);
  watts_ -= delta;
  mark_dirty();
  ++stats_.requests_served;
  if (delta <= 0.0) ++stats_.empty_grants;
  stats_.total_granted_watts += delta;
  // Algorithm 2 sets localUrgency to the request's urgency on every
  // request; a subsequent non-urgent request would clear it before the
  // decider sees it. We latch it instead (cleared only by the decider) so
  // an urgent signal cannot be lost under request interleaving — without
  // the latch, urgency propagation degrades as request rate grows, which
  // is clearly not the paper's intent.
  if (request.urgent) local_urgency_ = true;
  return delta;
}

double PowerPool::take_local() {
  std::scoped_lock lock(mutex_);
  if (watts_ <= 0.0) return 0.0;
  double delta = std::min(watts_, max_transaction(watts_));
  delta = std::max(delta, 0.0);
  watts_ -= delta;
  mark_dirty();
  return delta;
}

double PowerPool::drain() {
  std::scoped_lock lock(mutex_);
  double all = watts_;
  watts_ = 0.0;
  mark_dirty();
  return all;
}

double PowerPool::withdraw(double watts) {
  if (watts <= 0.0) return 0.0;
  std::scoped_lock lock(mutex_);
  double taken = std::min(watts_, watts);
  watts_ -= taken;
  mark_dirty();
  return taken;
}

double PowerPool::available() const {
  std::scoped_lock lock(mutex_);
  return watts_;
}

bool PowerPool::consume_local_urgency() {
  std::scoped_lock lock(mutex_);
  bool was = local_urgency_;
  local_urgency_ = false;
  return was;
}

bool PowerPool::peek_local_urgency() const {
  std::scoped_lock lock(mutex_);
  return local_urgency_;
}

PoolStats PowerPool::stats() const {
  std::scoped_lock lock(mutex_);
  return stats_;
}

}  // namespace penelope::core
