// The local power pool — Algorithm 2 of the paper.
//
// Each node holds a cache of excess watts and serves requests from other
// nodes' deciders. Non-urgent requests are rate-limited to
// clamp(10% of pool, LOWER_LIMIT, UPPER_LIMIT) to spread excess fairly
// and damp power oscillation (§3.2); urgent requests may take up to their
// full deficit alpha. Serving an urgent request sets the localUrgency
// flag, which induces the co-located decider to release power down to its
// initial cap on its next step.
//
// §3.3: "some care is needed to ensure that changes to this value are
// atomic, otherwise system-wide caps could be violated. Penelope
// guarantees this through the use of a simple lock." Same here: the pool
// is internally synchronized so the discrete-event driver and the
// real-thread driver share one implementation. All mutators are
// debit-before-expose: power is removed from the pool in the same
// critical section that decides the grant.
#pragma once

#include <cstdint>
#include <mutex>

#include "core/protocol.hpp"

namespace penelope::core {

struct PoolConfig {
  /// Fraction of the pool a non-urgent transaction may take.
  double share_fraction = 0.10;
  /// Clamp bounds for non-urgent transactions, in watts. "Our system
  /// sets UPPER_LIMIT to 30 watts and LOWER_LIMIT to 1 watt."
  double lower_limit_watts = 1.0;
  double upper_limit_watts = 30.0;
};

struct PoolStats {
  std::uint64_t requests_served = 0;
  std::uint64_t urgent_requests_served = 0;
  std::uint64_t empty_grants = 0;       ///< served with 0 W available
  double total_granted_watts = 0.0;
  double total_deposited_watts = 0.0;
};

class PowerPool {
 public:
  explicit PowerPool(PoolConfig config = {});

  /// getMaxSize(Pool) from Algorithm 2: the non-urgent transaction limit
  /// for a pool of the given size.
  double max_transaction(double pool_watts) const;

  /// Deposit excess power (decider excess branch, localUrgency release).
  void deposit(double watts);

  /// Serve a remote request per Algorithm 2: computes the grant, debits
  /// the pool, records localUrgency. Returns the granted watts.
  double serve(const PowerRequest& request);

  /// Local drain (Algorithm 1's "if Pool > 0" branch): the co-located
  /// decider takes up to the non-urgent transaction limit from its own
  /// cache before querying peers.
  double take_local();

  /// Drain everything (used on shutdown to return power to the cap).
  double drain();

  /// Withdraw up to `watts` exactly (budget retirement); returns the
  /// amount actually removed (bounded by the pool's contents).
  double withdraw(double watts);

  double available() const;

  /// The localUrgency flag: set by urgent remote requests, consumed by
  /// the co-located decider (returns previous value and clears it).
  bool consume_local_urgency();
  bool peek_local_urgency() const;

  PoolStats stats() const;
  const PoolConfig& config() const { return config_; }

  /// Observability hook: when set, every pool mutation writes 1 to
  /// `cell` so the telemetry sampler knows to re-snapshot this node.
  void set_observer_dirty(std::uint8_t* cell) { observer_dirty_ = cell; }

 private:
  void mark_dirty() {
    if (observer_dirty_) *observer_dirty_ = 1;
  }

  PoolConfig config_;
  std::uint8_t* observer_dirty_ = nullptr;
  mutable std::mutex mutex_;  // guards everything below
  double watts_ = 0.0;
  bool local_urgency_ = false;
  PoolStats stats_;
};

}  // namespace penelope::core
