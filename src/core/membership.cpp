#include "core/membership.hpp"

#include "common/check.hpp"

namespace penelope::core {

FailureDetector::FailureDetector(MembershipConfig config)
    : config_(config) {
  PEN_CHECK(config_.heartbeat_period > 0);
  PEN_CHECK(config_.suspect_after_missed > 0);
  PEN_CHECK(config_.dead_after_missed > config_.suspect_after_missed);
}

void FailureDetector::track(std::int32_t peer, common::Ticks now) {
  auto [it, inserted] = views_.try_emplace(peer);
  if (inserted) it->second.last_seen = now;
}

MembershipSignal FailureDetector::refresh(PeerView& view,
                                          common::Ticks now) {
  view.last_seen = now;
  if (view.state == PeerLiveness::kAlive) return MembershipSignal::kFresh;
  // The peer we suspected (or buried) at this incarnation is talking
  // again: the suspicion was false. The caller readmits it — any reclaim
  // of its watts already happened exactly once and is not undone; the
  // peer rebuilds from fair share through the normal urgent path.
  view.state = PeerLiveness::kAlive;
  return MembershipSignal::kRecovered;
}

MembershipSignal FailureDetector::observe_traffic(std::int32_t peer,
                                                  common::Ticks now) {
  track(peer, now);
  return refresh(views_.find(peer)->second, now);
}

MembershipSignal FailureDetector::observe_heartbeat(
    std::int32_t peer, std::uint32_t incarnation, common::Ticks now) {
  track(peer, now);
  PeerView& view = views_.find(peer)->second;
  if (incarnation < view.incarnation) {
    // Quarantine rule: a beacon from a dead incarnation (reordered
    // pre-crash traffic, or the node itself racing its own restart)
    // must not refresh liveness — otherwise a ghost could keep a
    // consumed reclaim tag's owner looking alive forever.
    return MembershipSignal::kStaleQuarantined;
  }
  if (incarnation > view.incarnation) {
    view.incarnation = incarnation;
    view.last_seen = now;
    view.state = PeerLiveness::kAlive;
    return MembershipSignal::kRejoined;
  }
  return refresh(view, now);
}

void FailureDetector::tick(common::Ticks now,
                           std::vector<MembershipTransition>& out) {
  for (auto& [peer, view] : views_) {
    if (view.state == PeerLiveness::kDead) continue;
    if (now <= view.last_seen) continue;
    auto missed = static_cast<std::uint64_t>(
        (now - view.last_seen) / config_.heartbeat_period);
    if (view.state == PeerLiveness::kAlive &&
        missed >= config_.suspect_after_missed) {
      view.state = PeerLiveness::kSuspected;
      out.push_back({peer, PeerLiveness::kSuspected, view.incarnation});
    }
    if (view.state == PeerLiveness::kSuspected &&
        missed >= config_.dead_after_missed) {
      view.state = PeerLiveness::kDead;
      out.push_back({peer, PeerLiveness::kDead, view.incarnation});
    }
  }
}

PeerLiveness FailureDetector::liveness(std::int32_t peer) const {
  auto it = views_.find(peer);
  return it == views_.end() ? PeerLiveness::kAlive : it->second.state;
}

std::uint32_t FailureDetector::incarnation(std::int32_t peer) const {
  auto it = views_.find(peer);
  return it == views_.end() ? 1 : it->second.incarnation;
}

}  // namespace penelope::core
