// Wire protocol for Penelope's peer-to-peer transactions. A transaction
// is one PowerRequest answered by one PowerGrant (§3: "an exchange of
// power between a local decider and a power pool"). Grants carry real
// watts that the responding pool has already debited, so a grant message
// in flight *owns* that power — the metrics layer accounts for in-flight
// grants when checking the system-wide cap invariant.
//
// Delivery semantics: the fabric (simulated or UDP) may lose, duplicate,
// or reorder any message. Every power-carrying message therefore carries
// a transaction id that is unique across the cluster, and every receiver
// runs the id through a TxnWindow before acting, making application
// at-most-once. See PROTOCOL.md "Delivery semantics".
#pragma once

#include <cstdint>

namespace penelope::core {

/// Sentinel transaction id: never deduplicated. Senders that predate the
/// at-most-once layer (and tests driving logic classes directly) default
/// to it and keep their exactly-once-fabric behavior.
inline constexpr std::uint64_t kNoTxn = 0;

/// Compose a cluster-unique transaction id. Node ids, per-node streams
/// (0 = decider/client request counter, 1 = actor push/donation counter),
/// and per-stream sequence numbers each get disjoint bits, so no two
/// senders can mint the same id. `node` may be kNoNode (-1): the node
/// bits become zero and the id degenerates to the raw sequence number,
/// which keeps single-node unit tests readable.
constexpr std::uint64_t make_txn_id(std::int32_t node, std::uint32_t stream,
                                    std::uint64_t seq) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(node + 1))
          << 40) |
         (static_cast<std::uint64_t>(stream & 0xFu) << 36) |
         (seq & 0xFFFFFFFFFull);
}

/// Inverses of make_txn_id, used by the telemetry exporters to label
/// spans with the minting node without threading extra state around.
constexpr std::int32_t txn_node(std::uint64_t txn_id) {
  return static_cast<std::int32_t>(txn_id >> 40) - 1;
}
constexpr std::uint32_t txn_stream(std::uint64_t txn_id) {
  return static_cast<std::uint32_t>((txn_id >> 36) & 0xFu);
}
constexpr std::uint64_t txn_seq(std::uint64_t txn_id) {
  return txn_id & 0xFFFFFFFFFull;
}

struct PowerRequest {
  /// True when the requester is power-hungry *and* below its initial cap
  /// (§3: the urgent state). Urgent requests bypass the transaction-size
  /// limit and trigger the responder's localUrgency release.
  bool urgent = false;
  /// For urgent requests: watts needed to return to the initial cap
  /// (alpha in Algorithm 1). Ignored for non-urgent requests.
  double alpha_watts = 0.0;
  /// Correlates the grant with the decider step that issued the request.
  std::uint64_t txn_id = 0;
};

struct PowerGrant {
  /// Watts transferred; zero grants are legal (empty pool).
  double watts = 0.0;
  std::uint64_t txn_id = 0;
  /// Optional discovery hint (an extension beyond the paper, see
  /// DESIGN.md §5): when an empty-handed pool knows a peer that recently
  /// had power, it forwards that peer's id so the requester's next probe
  /// is informed instead of uniform. -1 means no hint.
  std::int32_t hint_peer = -1;
};

/// Extension beyond the paper (push-gossip balancing, DESIGN.md §5b):
/// a pool holding plenty of excess proactively pushes a slice of it to
/// a uniformly random peer's pool. Push is the dual of the paper's pull
/// discovery — instead of hungry nodes searching for excess, excess
/// diffuses toward where it will be found. The watts were withdrawn
/// from the sender's pool before the message left, so a push in flight
/// owns its power exactly like a grant does.
struct PowerPush {
  double watts = 0.0;
  /// Dedup id (stream 1 of the sending node); kNoTxn disables dedup.
  std::uint64_t txn_id = kNoTxn;
};

/// Membership liveness beacon (PROTOCOL.md "Membership and
/// incarnations"). Carries no power, needs no txn id: heartbeats are
/// idempotent — observing the same one twice just refreshes the same
/// per-peer freshness timestamp. The incarnation is the sender's crash
/// counter; receivers use it to tell a restarted peer (higher
/// incarnation) from a falsely-suspected one returning (same
/// incarnation) and to quarantine stale pre-crash evidence (lower).
struct Heartbeat {
  std::int32_t node = -1;
  std::uint32_t incarnation = 1;
};

}  // namespace penelope::core
