#include "core/decider.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/units.hpp"

namespace penelope::core {

Decider::Decider(DeciderConfig config, PowerPool& local_pool)
    : config_(config), pool_(local_pool) {
  PEN_CHECK(config_.epsilon_watts >= 0.0);
  PEN_CHECK_MSG(
      config_.safe_range.contains(config_.initial_cap_watts),
      "initial cap must lie inside the safe range");
  cap_ = config_.initial_cap_watts;
}

double Decider::raise_cap(double watts) {
  if (watts <= 0.0) return 0.0;
  double headroom = config_.safe_range.max_watts - cap_;
  double applied = std::min(watts, std::max(headroom, 0.0));
  cap_ += applied;
  double overflow = watts - applied;
  if (overflow > 0.0) pool_.deposit(overflow);
  stats_.watts_received += applied;
  return applied;
}

StepOutcome Decider::begin_step(double avg_power_watts) {
  mark_dirty();
  ++stats_.steps;
  StepOutcome out;

  if (avg_power_watts < cap_ - config_.epsilon_watts) {
    // Excess branch: C_{t+1} = P (never below the safe minimum); the
    // difference goes to the local pool. Cap is lowered before the
    // deposit so the freed watts are never double-counted. Outstanding
    // retirement debt (from a system-budget cut) is paid first — those
    // watts leave the system instead of entering the pool.
    ++stats_.excess_steps;
    last_hungry_ = false;
    last_urgent_ = false;
    double new_cap =
        std::max(avg_power_watts, config_.safe_range.min_watts);
    double delta = cap_ - new_cap;
    if (delta > 0.0) {
      cap_ = new_cap;
      double retired = std::min(delta, retirement_debt_);
      retirement_debt_ -= retired;
      double to_pool = delta - retired;
      if (to_pool > 0.0) {
        pool_.deposit(to_pool);
        stats_.watts_donated += to_pool;
      }
      out.delta_watts = to_pool;
    }
    out.kind = StepKind::kDepositedExcess;
    return out;
  }

  // Power-hungry branch.
  ++stats_.hungry_steps;
  last_hungry_ = true;
  last_urgent_ = config_.urgency_enabled &&
                 common::watts_less(cap_, config_.initial_cap_watts);

  if (cap_ >= config_.safe_range.max_watts - common::kWattEpsilon) {
    // Already at the hardware ceiling: more power could not be applied,
    // so don't take any out of the system.
    out.kind = StepKind::kHeld;
    return out;
  }

  double local = config_.local_take == LocalTakePolicy::kDrainAll
                     ? pool_.drain()
                     : pool_.take_local();
  if (local > 0.0) {
    ++stats_.local_takes;
    out.kind = StepKind::kTookLocal;
    // raise_cap returns what fit under the safe ceiling; any remainder
    // was re-deposited into the pool, so nothing is lost.
    out.delta_watts = raise_cap(local);
    return out;
  }

  ++stats_.peer_requests;
  out.kind = StepKind::kNeedsPeer;
  out.request.urgent = last_urgent_;
  out.request.alpha_watts =
      last_urgent_ ? config_.initial_cap_watts - cap_ : 0.0;
  out.request.txn_id = make_txn_id(config_.txn_node, 0, next_txn_++);
  if (last_urgent_) ++stats_.urgent_requests;
  return out;
}

double Decider::complete_peer_grant(double granted_watts) {
  mark_dirty();
  PEN_CHECK_MSG(granted_watts >= -common::kWattEpsilon,
                "grants cannot be negative");
  return raise_cap(std::max(granted_watts, 0.0));
}

double Decider::apply_budget_delta(double delta_watts) {
  mark_dirty();
  if (delta_watts >= 0.0) {
    // Budget grew: raise the assignment and hand the node its share
    // immediately. raise_cap banks any overflow in the pool.
    config_.initial_cap_watts = std::min(
        config_.initial_cap_watts + delta_watts,
        config_.safe_range.max_watts);
    raise_cap(delta_watts);
    return 0.0;
  }

  double owed = -delta_watts;
  config_.initial_cap_watts = std::max(
      config_.initial_cap_watts - owed, config_.safe_range.min_watts);

  // Retire from the cap first (live power the node is entitled to),
  // then from the local pool, then remember the rest as debt.
  double from_cap =
      std::min(owed, std::max(cap_ - config_.safe_range.min_watts, 0.0));
  cap_ -= from_cap;
  owed -= from_cap;

  double from_pool = pool_.withdraw(owed);
  owed -= from_pool;

  retirement_debt_ += owed;
  return from_cap + from_pool;
}

double Decider::seize_for_restart() {
  mark_dirty();
  double seized = std::max(cap_ - config_.safe_range.min_watts, 0.0);
  cap_ = config_.safe_range.min_watts;
  last_urgent_ = false;
  last_hungry_ = false;
  return seized;
}

double Decider::finish_step() {
  mark_dirty();
  // Algorithm 1's closing block: a pool that served an urgent request
  // induces its own node to give back everything above the initial cap —
  // unless this node is itself urgent. The flag survives while the node
  // is urgent (the pseudocode clears it only inside the release branch).
  if (!config_.urgency_enabled) return 0.0;
  if (last_urgent_) return 0.0;
  if (!pool_.peek_local_urgency()) return 0.0;
  double delta = cap_ - config_.initial_cap_watts;
  if (delta <= common::kWattEpsilon) {
    // Nothing to release, but the signal is consumed: the node examined
    // it and has no power above its initial assignment.
    (void)pool_.consume_local_urgency();
    return 0.0;
  }
  (void)pool_.consume_local_urgency();
  cap_ = config_.initial_cap_watts;
  pool_.deposit(delta);
  ++stats_.urgency_releases;
  return delta;
}

}  // namespace penelope::core
