// Deterministic discrete-event simulator.
//
// The paper's scale study (§4.5) replaces hardware with curated power
// profiles and simulated deciders; this engine is the equivalent
// substrate here. Virtual time is integer microseconds, events at equal
// timestamps execute in scheduling order (a monotone sequence number
// breaks ties), and all randomness comes from seeded common::Rng streams,
// so a run is a pure function of its configuration.
//
// The engine is deliberately single-threaded: determinism and the ability
// to simulate 1000+ nodes on one core matter more here than parallel
// speedup, and the protocol logic it drives is shared with the rt::
// runtime which does exercise real concurrency.
//
// Implementation: an indexed 4-ary min-heap (sim/timer_heap.hpp) keyed
// by (timestamp, sequence). cancel() is a true O(log n) delete — the
// dominant Penelope pattern of scheduling a timeout and cancelling it
// when the reply wins the race costs two heap operations and no garbage.
// Callbacks are sim::EventFn (sim/event_fn.hpp): move-only with 48 bytes
// of inline storage, so scheduling a lambda that captures `this` and a
// few scalars never touches the allocator, and events are moved (never
// copied) out of the heap when they fire. Periodic timers are native:
// the engine re-arms a fired periodic event by resetting its heap key in
// place, reusing the same closure and EventId across firings.
#pragma once

#include <cstdint>
#include <functional>

#include "common/units.hpp"
#include "sim/event_fn.hpp"
#include "sim/timer_heap.hpp"

namespace penelope::sim {

using common::Ticks;

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  Ticks now() const { return now_; }

  /// Schedule `fn` at absolute time `at` (>= now). Returns an id usable
  /// with cancel(). `fn` is any callable taking () or (Ticks fired_at).
  EventId schedule_at(Ticks at, EventFn fn);

  /// Schedule `fn` after a relative delay (>= 0).
  EventId schedule_after(Ticks delay, EventFn fn);

  /// Schedule `fn` to run at `first_at`, then every `period` (> 0) until
  /// cancelled. The same closure and EventId serve every firing: no
  /// per-firing allocation or re-scheduling cost beyond one heap re-key.
  /// Re-arming happens after the callback returns, from the *scheduled*
  /// firing time, so periods never drift and a cancel() from inside the
  /// callback sticks.
  EventId schedule_periodic(Ticks first_at, Ticks period, EventFn fn);

  /// Change a periodic event's period for re-arms after the next firing
  /// (the already-armed firing keeps its time). When called from inside
  /// the event's own callback the re-arm has not happened yet, so the
  /// new period takes effect at the very next firing. Returns false if
  /// `id` is not pending or names a one-shot event (a one-shot cannot
  /// be promoted to periodic). PeriodicTask is the RAII wrapper over
  /// this.
  bool set_period(EventId id, Ticks period);

  /// Cancel a pending event: a true delete, O(log n), effective
  /// immediately. Safe to call with ids that already fired, were already
  /// cancelled, or are kInvalidEventId — those return without effect.
  void cancel(EventId id);

  /// Preallocate room for `n` concurrently pending events; schedule and
  /// cancel churn below that bound never allocates.
  void reserve(std::size_t n) { heap_.reserve(n); }

  /// Run until the event queue drains or `stop()` is called.
  void run();

  /// Run events with time <= deadline; afterwards now() == deadline if
  /// the queue outlived it (further events remain pending).
  void run_until(Ticks deadline);

  /// Execute at most `n` events; returns the number actually executed.
  std::size_t run_steps(std::size_t n);

  /// Request that run()/run_until() return after the current event.
  void stop() { stopped_ = true; }

  bool stopped() const { return stopped_; }

  /// Pending event count. Exact: cancelled events are deleted on the
  /// spot and never counted.
  std::size_t pending_events() const { return heap_.size(); }

  /// Total events executed since construction.
  std::uint64_t executed_events() const { return executed_; }

  /// FNV-1a hash accumulated over the timestamp of every executed event,
  /// in execution order. Two runs executed the same event sequence iff
  /// their (executed_events, trace_hash) pairs match; the golden-trace
  /// determinism tests pin this across engine rewrites.
  std::uint64_t trace_hash() const { return trace_hash_; }

 private:
  bool pop_and_run_next();

  Ticks now_ = 0;
  std::uint64_t next_seq_ = 1;
  bool stopped_ = false;
  std::uint64_t executed_ = 0;
  std::uint64_t trace_hash_ = 0xcbf29ce484222325ULL;
  TimerHeap heap_;
};

/// Repeating task helper: runs `fn` every `period` starting at
/// `first_at`, until cancelled or the owner is destroyed. The callback
/// receives the firing time; it may cancel() the task (no further
/// firings) or set_period() it — re-arming happens after the callback
/// returns, so a period change made inside the callback applies to the
/// very next firing, while one made between firings leaves the
/// already-armed next firing in place and applies from the one after.
///
/// Thin RAII wrapper over Simulator::schedule_periodic: one engine-side
/// timer serves every firing, with no per-firing closure construction.
class PeriodicTask {
 public:
  PeriodicTask(Simulator& sim, Ticks first_at, Ticks period,
               std::function<void(Ticks)> fn);
  ~PeriodicTask();

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void cancel();
  bool active() const { return active_; }
  Ticks period() const { return period_; }

  /// Change the period: from inside the callback, effective at the next
  /// firing; between firings, the pending firing keeps its time and the
  /// new spacing applies after it (see Simulator::set_period).
  void set_period(Ticks period);

 private:
  Simulator& sim_;
  Ticks period_;
  EventId id_ = kInvalidEventId;
  bool active_ = true;
};

}  // namespace penelope::sim
