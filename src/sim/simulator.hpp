// Deterministic discrete-event simulator.
//
// The paper's scale study (§4.5) replaces hardware with curated power
// profiles and simulated deciders; this engine is the equivalent
// substrate here. Virtual time is integer microseconds, events at equal
// timestamps execute in scheduling order (a monotone sequence number
// breaks ties), and all randomness comes from seeded common::Rng streams,
// so a run is a pure function of its configuration.
//
// The engine itself is single-threaded: determinism and the ability to
// simulate 1000+ nodes on one core matter more here than parallel
// speedup, and the protocol logic it drives is shared with the rt::
// runtime which does exercise real concurrency. Parallel single-run
// execution is layered on top, not inside: sim/sharded.hpp runs K of
// these engines in conservative time windows with a deterministic
// cross-shard merge (DESIGN.md §12), leaving this hot loop lock-free.
//
// Implementation: an indexed 4-ary min-heap (sim/timer_heap.hpp) keyed
// by (timestamp, sequence). cancel() is a true O(log n) delete — the
// dominant Penelope pattern of scheduling a timeout and cancelling it
// when the reply wins the race costs two heap operations and no garbage.
// Callbacks are sim::EventFn (sim/event_fn.hpp): move-only with 48 bytes
// of inline storage, so scheduling a lambda that captures `this` and a
// few scalars never touches the allocator, and events are moved (never
// copied) out of the heap when they fire. Periodic timers are native:
// the engine re-arms a fired periodic event by resetting its heap key in
// place, reusing the same closure and EventId across firings.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>

#include "common/check.hpp"
#include "common/units.hpp"
#include "sim/event_fn.hpp"
#include "sim/timer_heap.hpp"

namespace penelope::sim {

using common::Ticks;

/// Sentinel returned by Simulator::next_event_at() on an empty queue:
/// later than any schedulable time, so min() folds over shards stay
/// branch-free.
inline constexpr Ticks kNoPendingEvent = std::numeric_limits<Ticks>::max();

/// One executed event's contribution to the trace hash: a splitmix64-
/// style finalizer of the event's timestamp. The full hash is the
/// wrapping sum of these mixes, which makes it order-insensitive across
/// equal work partitions — the property that lets sharded execution
/// (sim/sharded.hpp) merge per-shard hashes into exactly the value a
/// serial run produces, and that turns the per-event fold from a
/// loop-carried multiply chain into one independent add.
constexpr std::uint64_t trace_mix(std::uint64_t at) {
  at ^= at >> 33;
  at *= 0xff51afd7ed558ccdULL;
  at ^= at >> 33;
  at *= 0xc4ceb9fe1a85ec53ULL;
  at ^= at >> 33;
  return at;
}

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  Ticks now() const { return now_; }

  /// Schedule `fn` at absolute time `at` (>= now). Returns an id usable
  /// with cancel(). `fn` is any callable taking () or (Ticks fired_at).
  EventId schedule_at(Ticks at, EventFn fn);

  /// Schedule `fn` after a relative delay (>= 0).
  EventId schedule_after(Ticks delay, EventFn fn);

  /// Schedule `fn` to run at `first_at`, then every `period` (> 0) until
  /// cancelled. The same closure and EventId serve every firing: no
  /// per-firing allocation or re-scheduling cost beyond one heap re-key.
  /// Re-arming happens after the callback returns, from the *scheduled*
  /// firing time, so periods never drift and a cancel() from inside the
  /// callback sticks.
  EventId schedule_periodic(Ticks first_at, Ticks period, EventFn fn);

  /// Like schedule_periodic, but every firing sorts *before* any normal
  /// event at the same timestamp (sequence numbers come from a reserved
  /// low band, re-arms included). This is the serial-engine mirror of the
  /// sharded rule that control events run before same-timestamp shard
  /// events: a control-plane observer scheduled this way sees identical
  /// state at a tick boundary whether the run is serial or sharded.
  /// Intended for read-mostly observers (telemetry samplers); events that
  /// drive protocol state should use the normal lane.
  EventId schedule_periodic_pre(Ticks first_at, Ticks period, EventFn fn);

  /// The sweep lane: a periodic event that (a) sorts after every pre
  /// event and before every normal event at the same timestamp, and
  /// (b) is *trace-neutral* — firings bump neither executed_events()
  /// nor trace_hash(). This exists for batched epoch sweeps (one event
  /// per engine walking a column range, cluster/arena.*): the sweep is
  /// an execution strategy, not a protocol event, and a serial run
  /// schedules one of them where a K-shard run schedules K. Counting
  /// them would make the trace depend on the engine shape, breaking the
  /// bit-identical-at-any-sim_jobs contract; everything the sweep *does*
  /// (sends, timeouts, completions) still lands in the trace through the
  /// events it causes. The lane position gives the deterministic
  /// tie-break both engines need: observers (pre/control) see pre-sweep
  /// state, and deliveries at the sweep's timestamp (normal lane) run
  /// after it, in every engine.
  EventId schedule_periodic_sweep(Ticks first_at, Ticks period, EventFn fn);

  /// Change a periodic event's period for re-arms after the next firing
  /// (the already-armed firing keeps its time). When called from inside
  /// the event's own callback the re-arm has not happened yet, so the
  /// new period takes effect at the very next firing. Returns false if
  /// `id` is not pending or names a one-shot event (a one-shot cannot
  /// be promoted to periodic). PeriodicTask is the RAII wrapper over
  /// this.
  bool set_period(EventId id, Ticks period);

  /// Cancel a pending event: a true delete, O(log n), effective
  /// immediately. Safe to call with ids that already fired, were already
  /// cancelled, or are kInvalidEventId — those return without effect.
  void cancel(EventId id);

  /// Preallocate room for `n` concurrently pending events; schedule and
  /// cancel churn below that bound never allocates.
  void reserve(std::size_t n) { heap_.reserve(n); }

  /// Run until the event queue drains or `stop()` is called.
  void run();

  /// Run events with time <= deadline; afterwards now() == deadline if
  /// the queue outlived it (further events remain pending).
  void run_until(Ticks deadline);

  /// Conservative-window execution primitive for sharded mode: run every
  /// pending event with time strictly below `end`, including events those
  /// events schedule inside the window. Unlike run_until it neither
  /// advances now() to the boundary nor touches the stop flag — now()
  /// stays at the last executed event so the next window can start
  /// wherever the global frontier says.
  void run_window(Ticks end);

  /// Timestamp of the earliest pending event, or kNoPendingEvent when
  /// the queue is empty. The sharded engine polls this to pick the next
  /// window's start.
  Ticks next_event_at() const {
    return heap_.empty() ? kNoPendingEvent : heap_.min_at();
  }

  /// Move now() forward without executing anything. Legal only when no
  /// pending event precedes `t` — the sharded engine uses it to land
  /// quiescent shards on a control-event or deadline timestamp so code
  /// reached from there sees the same clock a serial run would.
  void advance_to(Ticks t) {
    PEN_CHECK(t >= now_);
    PEN_DCHECK(heap_.empty() || heap_.min_at() >= t);
    now_ = t;
  }

  /// Execute at most `n` events; returns the number actually executed.
  std::size_t run_steps(std::size_t n);

  /// Request that run()/run_until() return after the current event.
  void stop() { stopped_ = true; }

  bool stopped() const { return stopped_; }

  /// Pending event count. Exact: cancelled events are deleted on the
  /// spot and never counted.
  std::size_t pending_events() const { return heap_.size(); }

  /// Most events ever pending at once — the honest number to feed back
  /// into reserve() sizing for the next run of the same shape.
  std::size_t pending_high_water() const { return pending_high_water_; }

  /// Total events executed since construction.
  std::uint64_t executed_events() const { return executed_; }

  /// Wrapping sum of trace_mix(timestamp) over every executed event.
  /// Two runs executed the same event multiset iff their
  /// (executed_events, trace_hash) pairs match; because the sum is
  /// order-insensitive and time-ordered execution makes equal-timestamp
  /// permutations the only reordering possible, this pins the event
  /// *sequence* as tightly as the old FNV-1a in-order fold did while
  /// staying mergeable across shards. The golden-trace determinism tests
  /// pin it across engine rewrites.
  std::uint64_t trace_hash() const { return trace_hash_; }

 private:
  /// Sequence-number bands, one per lane. At equal timestamps the lanes
  /// sort pre < sweep < normal: pre is [1, kFirstSweepSeq), sweep is
  /// [kFirstSweepSeq, kFirstNormalSeq), normal is kFirstNormalSeq and
  /// up. Only the relative order within a lane matters, so carving the
  /// sweep band out of the (never remotely exhausted) pre band leaves
  /// every existing schedule bit-for-bit unchanged.
  static constexpr std::uint64_t kFirstSweepSeq = std::uint64_t{1} << 31;
  static constexpr std::uint64_t kFirstNormalSeq = std::uint64_t{1} << 32;

  bool pop_and_run_next();

  Ticks now_ = 0;
  std::uint64_t next_seq_ = kFirstNormalSeq;
  std::uint64_t next_pre_seq_ = 1;
  std::uint64_t next_sweep_seq_ = kFirstSweepSeq;
  bool stopped_ = false;
  std::uint64_t executed_ = 0;
  std::uint64_t trace_hash_ = 0;
  std::size_t pending_high_water_ = 0;
  TimerHeap heap_;
};

/// Repeating task helper: runs `fn` every `period` starting at
/// `first_at`, until cancelled or the owner is destroyed. The callback
/// receives the firing time; it may cancel() the task (no further
/// firings) or set_period() it — re-arming happens after the callback
/// returns, so a period change made inside the callback applies to the
/// very next firing, while one made between firings leaves the
/// already-armed next firing in place and applies from the one after.
///
/// Tie-break lane for PeriodicTask: kNormal events order by scheduling
/// sequence among equal timestamps; kPre events run before any normal
/// event at the same timestamp (see Simulator::schedule_periodic_pre);
/// kSweep events run between the two and are trace-neutral (see
/// Simulator::schedule_periodic_sweep).
enum class TaskOrder { kNormal, kPre, kSweep };

/// Thin RAII wrapper over Simulator::schedule_periodic: one engine-side
/// timer serves every firing, with no per-firing closure construction.
class PeriodicTask {
 public:
  PeriodicTask(Simulator& sim, Ticks first_at, Ticks period,
               std::function<void(Ticks)> fn,
               TaskOrder order = TaskOrder::kNormal);
  ~PeriodicTask();

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void cancel();
  bool active() const { return active_; }
  Ticks period() const { return period_; }

  /// Change the period: from inside the callback, effective at the next
  /// firing; between firings, the pending firing keeps its time and the
  /// new spacing applies after it (see Simulator::set_period).
  void set_period(Ticks period);

 private:
  Simulator& sim_;
  Ticks period_;
  EventId id_ = kInvalidEventId;
  bool active_ = true;
};

}  // namespace penelope::sim
