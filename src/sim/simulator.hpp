// Deterministic discrete-event simulator.
//
// The paper's scale study (§4.5) replaces hardware with curated power
// profiles and simulated deciders; this engine is the equivalent
// substrate here. Virtual time is integer microseconds, events at equal
// timestamps execute in scheduling order (a monotone sequence number
// breaks ties), and all randomness comes from seeded common::Rng streams,
// so a run is a pure function of its configuration.
//
// The engine is deliberately single-threaded: determinism and the ability
// to simulate 1000+ nodes on one core matter more here than parallel
// speedup, and the protocol logic it drives is shared with the rt::
// runtime which does exercise real concurrency.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/units.hpp"

namespace penelope::sim {

using common::Ticks;

/// Handle used to cancel a scheduled event. Cancellation is lazy: the
/// event stays in the queue but is skipped when popped.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEventId = 0;

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  Ticks now() const { return now_; }

  /// Schedule `fn` at absolute time `at` (>= now). Returns an id usable
  /// with cancel().
  EventId schedule_at(Ticks at, std::function<void()> fn);

  /// Schedule `fn` after a relative delay (>= 0).
  EventId schedule_after(Ticks delay, std::function<void()> fn);

  /// Cancel a pending event; safe to call with ids that already fired.
  void cancel(EventId id);

  /// Run until the event queue drains or `stop()` is called.
  void run();

  /// Run events with time <= deadline; afterwards now() == deadline if
  /// the queue outlived it (further events remain pending).
  void run_until(Ticks deadline);

  /// Execute at most `n` events; returns the number actually executed.
  std::size_t run_steps(std::size_t n);

  /// Request that run()/run_until() return after the current event.
  void stop() { stopped_ = true; }

  bool stopped() const { return stopped_; }

  /// Pending (non-cancelled, best-effort) event count.
  std::size_t pending_events() const { return queue_.size(); }

  /// Total events executed since construction.
  std::uint64_t executed_events() const { return executed_; }

 private:
  struct Event {
    Ticks at;
    std::uint64_t seq;  // tie-break: FIFO among equal timestamps
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  bool pop_and_run_next();

  Ticks now_ = 0;
  std::uint64_t next_seq_ = 1;
  EventId next_id_ = 1;
  bool stopped_ = false;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<EventId> cancelled_;
};

/// Repeating task helper: runs `fn` every `period` starting at
/// `first_at`, until cancelled or the owner is destroyed. The callback
/// receives the firing time; it may cancel the task or change its
/// period, both taking effect immediately (re-arming happens after the
/// callback returns).
class PeriodicTask {
 public:
  PeriodicTask(Simulator& sim, Ticks first_at, Ticks period,
               std::function<void(Ticks)> fn);
  ~PeriodicTask();

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void cancel();
  bool active() const { return active_; }
  Ticks period() const { return period_; }

  /// Change the period; takes effect at the next firing.
  void set_period(Ticks period);

 private:
  void arm(Ticks at);

  Simulator& sim_;
  Ticks period_;
  std::function<void(Ticks)> fn_;
  EventId pending_ = kInvalidEventId;
  bool active_ = true;
};

}  // namespace penelope::sim
