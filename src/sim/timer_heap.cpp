#include "sim/timer_heap.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"

namespace penelope::sim {

void TimerHeap::reserve(std::size_t n) {
  if (n > slots_.size()) {
    pos_.resize(n);
    slots_.resize(n);
    fn_.resize(n);
  }
  heap_.reserve(n);
  free_.reserve(n);
  run_.reserve(n);
}

void TimerHeap::grow_slab() {
  std::size_t cap = slots_.empty() ? 64 : slots_.size() * 2;
  pos_.resize(cap);
  slots_.resize(cap);
  fn_.resize(cap);
}

std::uint32_t TimerHeap::node_of(EventId id) const {
  auto slot = static_cast<std::uint32_t>(id & 0xffffffffu);
  auto gen = static_cast<std::uint32_t>(id >> 32);
  if (slot >= slab_size_) return kNpos;
  if (slots_[slot].gen != gen || pos_[slot] == kNpos) return kNpos;
  return slot;
}

bool TimerHeap::cancel(EventId id) {
  std::uint32_t slot = node_of(id);
  if (slot == kNpos) return false;
  std::uint32_t pos = pos_[slot];
  free_node(slot);
  if ((pos & kRunTag) != 0) {
    // Run-resident: the slot and callback are freed immediately (the
    // count and captures go now); only the dead 24-byte key lingers,
    // skipped in O(1) when the head reaches it.
    --run_live_;
    if ((pos & ~kRunTag) == run_head_) skip_dead_run_entries();
  } else {
    remove_from_heap(pos);
  }
  return true;
}

bool TimerHeap::set_period(EventId id, Ticks period) {
  std::uint32_t slot = node_of(id);
  if (slot == kNpos) return false;
  if (slots_[slot].period == 0) return false;  // one-shots stay one-shot
  slots_[slot].period = period;
  return true;
}

#ifdef PEN_HEAP_STATS
std::uint64_t g_convert_count = 0;
std::uint64_t g_convert_entries = 0;
#endif

void TimerHeap::convert_to_run() {
#ifdef PEN_HEAP_STATS
  ++g_convert_count;
  g_convert_entries += heap_.size();
#endif
  fires_since_convert_ = 0;
  run_.clear();
  run_head_ = 0;
  // Partition: one-shot entries move to the run, periodic timers stay
  // heap-resident (rearm() re-keys them in place). The same pass tracks
  // whether the moved entries already come out in ascending order —
  // ascending scheduling (the common sim-loop shape) leaves the heap
  // array sorted, and then the sort below is skipped entirely.
  std::size_t keep = 0;
  bool sorted = true;
  for (std::size_t i = 0; i < heap_.size(); ++i) {
    const Entry entry = heap_[i];
    if (slots_[entry.slot].period > 0) {
      heap_[keep++] = entry;
    } else {
      sorted = sorted && (run_.empty() || !less(entry, run_.back()));
      run_.push_back(entry);
    }
  }
  heap_.resize(keep);
  for (std::size_t i = keep; i-- > 0;) sift_down(i, heap_[i]);
  if (!sorted) {
    std::sort(run_.begin(), run_.end(),
              [](const Entry& a, const Entry& b) { return less(a, b); });
  }
  run_live_ = run_.size();
  for (std::size_t i = 0; i < run_.size(); ++i) {
    pos_[run_[i].slot] = kRunTag | static_cast<std::uint32_t>(i);
  }
}

bool TimerHeap::rearm(EventId id, Ticks fired_at, std::uint64_t seq,
                      EventFn&& fn) {
  std::uint32_t slot = node_of(id);
  if (slot == kNpos) return false;  // cancelled inside its own callback
  fn_[slot] = std::move(fn);
  // The key only grew (period > 0), and the callback can have inserted
  // or removed arbitrary other events meanwhile, so restore from
  // wherever the node sits now. sift_down re-places the entry even when
  // it stays put; sift_up then is a no-op guard for the (impossible
  // today) shrinking-key case.
  std::size_t pos = pos_[slot];
  sift_down(pos, Entry{fired_at + slots_[slot].period, seq, slot});
  sift_up(pos_[slot], heap_[pos_[slot]]);
  return true;
}

void TimerHeap::sift_up(std::size_t pos, Entry entry) {
  while (pos > 0) {
    std::size_t parent = (pos - 1) >> 2;
    if (!less(entry, heap_[parent])) break;
    place(pos, heap_[parent]);
    pos = parent;
  }
  place(pos, entry);
}

void TimerHeap::sift_down(std::size_t pos, Entry entry) {
  const std::size_t n = heap_.size();
  for (;;) {
    std::size_t first_child = (pos << 2) + 1;
    if (first_child >= n) break;
    std::size_t best = min_child(first_child, n);
    if (!less(heap_[best], entry)) break;
    place(pos, heap_[best]);
    pos = best;
  }
  place(pos, entry);
}

void TimerHeap::remove_from_heap(std::size_t pos) {
  PEN_DCHECK(pos < heap_.size());
  Entry displaced = heap_.back();
  heap_.pop_back();
  if (pos == heap_.size()) return;  // removed the last entry
  // Floyd's hole scheme: the displaced entry is (almost always) a leaf,
  // so push the hole straight down along min-children to a leaf, then
  // bubble the displaced entry up from there — one compare per level
  // instead of two. The upward pass also covers removal positions whose
  // replacement belongs above them.
  const std::size_t n = heap_.size();
  for (;;) {
    std::size_t first_child = (pos << 2) + 1;
    if (first_child >= n) break;
    std::size_t best = min_child(first_child, n);
    place(pos, heap_[best]);
    pos = best;
  }
  sift_up(pos, displaced);
}

}  // namespace penelope::sim
