// Indexed d-ary min-heap of timers: the data structure behind
// sim::Simulator.
//
// Three properties the engine needs and std::priority_queue cannot give:
//
//   * true-delete cancel() in O(log n): cancelling the request/timeout
//     pairs that dominate Penelope runs removes the event immediately —
//     no tombstone set, no cancelled-head skip loop, and
//     pending-event counts are exact;
//   * events are *moved* out when they fire (priority_queue::top is
//     const, forcing a copy of the callback);
//   * periodic timers re-arm by resetting the fired node's key in place
//     (one sift from its current slot) under a stable EventId, instead
//     of freeing the node and constructing a fresh closure per firing.
//
// Layout: callbacks and bookkeeping live in a slab addressed by 32-bit
// slot with a freelist; the heap itself (`heap_`) is an array of 24-byte
// (at, seq, slot) entries, so every sift comparison reads contiguous
// heap memory — never the slab — and sifts move 24 bytes, not 80-byte
// events. The slab is structure-of-arrays (`pos_`, `slots_`, `fn_`):
// each sift step must write the moved entry's new heap position
// back to its slot, and with a dense u32 `pos_` array that store lands
// in a small hot region instead of dirtying a random 80-byte-stride
// node — and slab growth memmoves three POD arrays plus memcpy-relocated
// EventFns instead of move-constructing fat structs. The per-slot heap
// position is what makes cancel-by-id O(log n). EventIds are
// (generation << 32 | slot): a slot's generation bumps every time it is
// freed, so cancelling an id that already fired — or that was recycled
// for a newer event — is detected and refused instead of deleting a
// stranger.
//
// 4-ary beats binary here: the hot cost is pop-min's sift-down, and a
// 4-ary heap halves its depth while the four sibling keys it compares
// sit in ~1.5 cache lines of heap_. Pops use Floyd's hole scheme (push
// the hole to a leaf, then bubble the displaced last entry up) because
// the displaced entry is almost always leaf-sized — this saves the
// per-level "is the replacement smaller?" compare of the classic pop,
// and the min-child selection is branch-free (heap comparisons are
// data-dependent coin flips; conditional moves don't mispredict).
//
// Drain run: popping n events through a heap costs n log n comparisons
// served one root-removal at a time. When a drain begins against a
// batch of already-scheduled one-shot events (the schedule-then-run
// shape of every sim loop), fire_top() instead sorts those entries
// *once* into `run_` — std::sort over 24-byte PODs is several times
// cheaper per element than the equivalent heap pops — and then consumes
// the run front-to-back. Events inserted while the run drains go to the
// (now small) heap; every pop takes the global (at, seq) minimum of
// run-head vs heap-top, so the execution order is bit-identical to the
// pure-heap engine. Cancelling a run-resident event frees its slot and
// callback immediately (pending counts stay exact); the dead 24-byte
// key is skipped in O(1) when the head reaches it. Periodic timers
// never enter the run, so re-arming stays a pure heap re-key.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/check.hpp"
#include "common/units.hpp"
#include "sim/event_fn.hpp"

namespace penelope::sim {

using common::Ticks;

/// Handle used to cancel or re-key a scheduled event. Stable for the
/// lifetime of the event (for periodic timers: the timer, across
/// firings). Never 0 for a live event.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEventId = 0;

class TimerHeap {
 public:
  /// A fired event, moved out of the heap. For one-shot events the node
  /// is already removed; a periodic event's node stays in the heap
  /// (keyed at its firing time) until rearm() or cancel().
  struct Fired {
    Ticks at = 0;
    std::uint64_t seq = 0;  ///< the fired entry's tie-break key
    EventId id = kInvalidEventId;
    bool periodic = false;
    EventFn fn;
  };

  bool empty() const { return heap_.empty() && run_live_ == 0; }
  std::size_t size() const { return heap_.size() + run_live_; }

  /// Timestamp of the earliest pending event. Requires !empty().
  Ticks min_at() const {
    if (run_live_ > 0 &&
        (heap_.empty() || less(run_[run_head_], heap_[0]))) {
      return run_[run_head_].at;
    }
    return heap_[0].at;
  }

  /// Preallocate capacity for `n` concurrently pending events, making
  /// subsequent insert/cancel churn allocation-free up to that bound.
  void reserve(std::size_t n);

  /// Insert an event; `period == 0` means one-shot. (at, seq) is the
  /// total order — seq must be unique across live and future events.
  /// Inline: this and fire_top() are the per-event engine loop.
  EventId insert(Ticks at, std::uint64_t seq, Ticks period, EventFn&& fn) {
    std::uint32_t slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
      slots_[slot].period = period;
      fn_[slot] = std::move(fn);
    } else {
      slot = slab_size_;
      PEN_CHECK_MSG(slot != kNpos, "timer slab full");
      if (slot == slots_.size()) grow_slab();
      slots_[slot] = Slot{period, 1};
      fn_[slot] = std::move(fn);
      ++slab_size_;
    }
    const Entry entry{at, seq, slot};
    std::size_t pos = heap_.size();
    heap_.push_back(entry);
    if (pos > 0 && less(entry, heap_[(pos - 1) >> 2])) {
      sift_up(pos, entry);
    } else {
      pos_[slot] = static_cast<std::uint32_t>(pos);
    }
    return make_id(slots_[slot].gen, slot);
  }

  /// True-delete. Returns false (and does nothing) if `id` is not
  /// pending: already fired, already cancelled, or never existed.
  bool cancel(EventId id);

  bool contains(EventId id) const { return node_of(id) != kNpos; }

  /// Update a periodic event's period for subsequent re-arms; the
  /// already-scheduled next firing keeps its time. False if `id` is not
  /// a pending periodic timer (one-shot events cannot be made periodic).
  bool set_period(EventId id, Ticks period);

  /// Pop the minimum event for execution. Requires !empty().
  Fired fire_top() {
    PEN_DCHECK(!empty());
    // Amortization guard: a conversion sorts heap_.size() entries, so it
    // must not happen again until at least that many events have fired —
    // otherwise a workload that cancels most of what it schedules (the
    // Penelope timeout pattern) would re-sort its whole pending set over
    // and over for a handful of firings.
    if (run_live_ == 0 && heap_.size() >= kConvertThreshold) {
      if (fires_since_convert_ >= heap_.size()) {
        convert_to_run();
      } else {
        // Count this fire toward the next conversion only while one is
        // actually being held back, so the counter cannot wrap its
        // saturated initial value.
        ++fires_since_convert_;
      }
    }
    // One named return object shared by both branches, so the return is
    // guaranteed NRVO — no Fired (and no EventFn) move per pop.
    Fired fired;
    if (run_live_ > 0 &&
        (heap_.empty() || less(run_[run_head_], heap_[0]))) {
      const Entry top = run_[run_head_];
      fired.at = top.at;
      fired.seq = top.seq;
      fired.id = make_id(slots_[top.slot].gen, top.slot);
      fired.periodic = false;  // periodic timers never enter the run
      fired.fn = std::move(fn_[top.slot]);
      free_node(top.slot);
      --run_live_;
      ++run_head_;
      skip_dead_run_entries();
      return fired;
    }
    const Entry top = heap_[0];
    const Slot& meta = slots_[top.slot];
    fired.at = top.at;
    fired.seq = top.seq;
    fired.id = make_id(meta.gen, top.slot);
    fired.periodic = meta.period > 0;
    fired.fn = std::move(fn_[top.slot]);
    // One-shot events leave the heap before their callback runs: the id
    // is dead (cancelling it is a detected no-op) and pending counts
    // exclude the running event. Periodic nodes stay for rearm().
    if (!fired.periodic) {
      free_node(top.slot);
      remove_from_heap(0);
    }
    return fired;
  }

  /// Re-key a periodic node after its callback ran: next firing at
  /// `fired_at + period` (the node's *current* period, so set_period
  /// calls made inside the callback apply immediately), with a fresh
  /// sequence number, restoring the moved-out callback. Returns false
  /// (discarding `fn`) if the event was cancelled during its callback.
  bool rearm(EventId id, Ticks fired_at, std::uint64_t seq, EventFn&& fn);

 private:
  static constexpr std::uint32_t kNpos = 0xffffffffu;

  /// Heap sizes below this are not worth a conversion sort; the Penelope
  /// steady state (a few dozen pending timeouts) stays on the pure heap
  /// path.
  static constexpr std::size_t kConvertThreshold = 64;

  /// High bit of a slot's `pos_` value marks run residency; the low 31
  /// bits are the index into `run_`.
  static constexpr std::uint32_t kRunTag = 0x80000000u;

  /// Heap-resident key: everything a sift comparison needs, contiguous.
  struct Entry {
    Ticks at;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  static EventId make_id(std::uint32_t gen, std::uint32_t slot) {
    return (static_cast<EventId>(gen) << 32) | slot;
  }

  static bool less(const Entry& a, const Entry& b) {
    // Bitwise, not short-circuit: this compiles branch-free, and the
    // min-child selection in the drain loop is built from conditional
    // moves on top of it. Heap comparisons are data-dependent coin
    // flips, so a branchy compare mispredicts constantly; branchless
    // selection is where the drain beats the seed priority_queue.
    return (a.at < b.at) | ((a.at == b.at) & (a.seq < b.seq));
  }

  /// Index of the least of the children of a heap position, given the
  /// first child's index (`first_child < n`). Branch-free for the
  /// common full-quad case.
  std::size_t min_child(std::size_t first_child, std::size_t n) const {
    const Entry* h = heap_.data();
    if (first_child + 4 <= n) {
      std::size_t a =
          less(h[first_child + 1], h[first_child]) ? first_child + 1
                                                   : first_child;
      std::size_t b =
          less(h[first_child + 3], h[first_child + 2]) ? first_child + 3
                                                       : first_child + 2;
      return less(h[b], h[a]) ? b : a;
    }
    std::size_t best = first_child;
    for (std::size_t c = first_child + 1; c < n; ++c) {
      best = less(h[c], h[best]) ? c : best;
    }
    return best;
  }

  /// Slot of a live event, or kNpos for stale/invalid ids.
  std::uint32_t node_of(EventId id) const;

  void place(std::size_t pos, const Entry& entry) {
    heap_[pos] = entry;
    pos_[entry.slot] = static_cast<std::uint32_t>(pos);
  }

  void sift_up(std::size_t pos, Entry entry);
  void sift_down(std::size_t pos, Entry entry);

  /// Detach the entry at heap position `pos`; the caller has already
  /// freed its slot (or is keeping it, for a fired one-shot).
  void remove_from_heap(std::size_t pos);

  void free_node(std::uint32_t slot) {
    fn_[slot].reset();  // release captures eagerly, not at slab reuse
    ++slots_[slot].gen;
    pos_[slot] = kNpos;
    free_.push_back(slot);
  }

  /// Double the slab arrays. The three arrays share one capacity
  /// (`slots_.size()`) and one occupancy counter (`slab_size_`), so the
  /// append path in insert() pays a single capacity branch.
  void grow_slab();

  /// Sort the heap's one-shot entries into `run_`; periodic timers stay
  /// behind (re-heapified).
  void convert_to_run();

  /// Advance `run_head_` past cancelled (dead) entries.
  void skip_dead_run_entries() {
    while (run_head_ < run_.size() &&
           pos_[run_[run_head_].slot] !=
               (kRunTag | static_cast<std::uint32_t>(run_head_))) {
      ++run_head_;
    }
  }

  /// Slab metadata read once per fire/cancel; the hot per-sift store
  /// goes to `pos_`, kept as its own dense u32 array.
  struct Slot {
    Ticks period;       ///< 0 = one-shot
    std::uint32_t gen;  ///< bumped on free; stale ids never match
  };

  // Slab, structure-of-arrays; all three are indexed by slot, sized to
  // the shared capacity, and occupied up to `slab_size_`.
  std::vector<std::uint32_t> pos_;  ///< heap position; kNpos when free
  std::vector<Slot> slots_;
  std::vector<EventFn> fn_;
  std::uint32_t slab_size_ = 0;

  std::vector<Entry> heap_;
  std::vector<std::uint32_t> free_;

  std::vector<Entry> run_;    ///< sorted ascending; consumed from the front
  std::size_t run_head_ = 0;  ///< first unconsumed run entry
  std::size_t run_live_ = 0;  ///< uncancelled entries at/after run_head_

  /// Events fired since the last conversion; starts saturated so the
  /// first drain may convert immediately.
  std::uint64_t fires_since_convert_ = ~std::uint64_t{0};
};

}  // namespace penelope::sim
