// Parallel single-run execution: K independent Simulator shards advanced
// in conservative time windows (DESIGN.md §12).
//
// The classic conservative-PDES argument (the same one SimGrid's parallel
// mode rests on): if every cross-shard interaction takes at least
// `lookahead` ticks of virtual time to arrive — here, net::Network's
// fixed one-way latency floor — then all events in
// [frontier, frontier + lookahead) are causally independent across
// shards and can execute concurrently. The engine loop repeats:
//
//   1. drain barrier posts (deterministic cross-shard handoffs),
//   2. run barrier hooks (the network flushes staged sends, in canonical
//      (arrival, message-id, duplicate) order, into destination heaps),
//   3. let the control-plane Simulator run if its next event is due
//      before any shard's (faults, churn, audits, trace sampling — all
//      cluster-global mutations happen here, single-threaded, with every
//      shard quiescent),
//   4. otherwise execute one window: every shard runs its events in
//      [min over shards of next_event_at(), that minimum + lookahead),
//      in parallel on a persistent worker pool.
//
// Determinism contract: a run's merged (executed_events, trace_hash) is
// bit-identical for any shard count K — the window boundary sequence
// depends only on event timestamps (not K), every send is staged and
// flushed in an order independent of shard layout, and Simulator's trace
// hash is an order-insensitive sum so per-shard hashes merge exactly.
//
// Threading: shard s is pinned to worker s-1 (shard 0 runs on the
// caller's thread); workers park on a condition variable between windows
// and synchronize through an acquire/release epoch counter, so everything
// a window writes happens-before the barrier and everything the barrier
// writes happens-before the next window. Windows with at most one active
// shard run inline on the caller's thread — sparse regions of virtual
// time cost no wakeups.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/units.hpp"
#include "sim/simulator.hpp"

namespace penelope::sim {

class ShardedSimulator {
 public:
  /// `shards` >= 1 event heaps executed by as many threads; `lookahead`
  /// >= 1 is the conservative window width (the network latency floor).
  ShardedSimulator(int shards, Ticks lookahead);
  ~ShardedSimulator();

  ShardedSimulator(const ShardedSimulator&) = delete;
  ShardedSimulator& operator=(const ShardedSimulator&) = delete;

  int shards() const { return static_cast<int>(shards_.size()); }
  Ticks lookahead() const { return lookahead_; }

  /// Shard s's engine. Schedule into it only from its own window context
  /// or from a barrier (posts, hooks, control events).
  Simulator& shard(int s) { return *shards_[static_cast<std::size_t>(s)]; }
  const Simulator& shard(int s) const {
    return *shards_[static_cast<std::size_t>(s)];
  }

  /// The control-plane engine: its events run single-threaded at window
  /// boundaries, strictly before any shard event with an equal or later
  /// timestamp. Cluster-global mutations (faults, churn, audits) belong
  /// here.
  Simulator& control() { return control_; }
  const Simulator& control() const { return control_; }

  /// Index of the shard whose window the calling thread is executing, or
  /// -1 outside any window (barrier, control events, the main thread
  /// between runs). Thread-local; the network and metrics layers use it
  /// to pick their per-shard state slot.
  static int current_shard();

  /// Global frontier: every event strictly below now() has executed.
  /// Inside a window or control callback, prefer context_now().
  Ticks now() const { return now_; }

  /// The executing context's virtual time: the current shard's now()
  /// inside a window, the control engine's inside a control event, the
  /// global frontier otherwise.
  Ticks context_now() const;

  /// Run `fn` at the next barrier, single-threaded, before anything else
  /// in that barrier. Callable from window context; the relative order
  /// of posts from different shards follows shard index, so commutative
  /// uses (completion bookkeeping, stop requests) stay K-invariant.
  void post_to_barrier(std::function<void()> fn);

  /// Hook run at every barrier after posts, in registration order. The
  /// network registers its staged-send flush here.
  void add_barrier_hook(std::function<void()> hook);

  /// Advance until every heap (shards + control) is past `deadline`, or
  /// stop() was requested at a barrier. now() == deadline afterwards
  /// unless stopped.
  void run_until(Ticks deadline);

  /// Request run_until to return at the next barrier. Callable from a
  /// barrier post or control event; from window context, route it
  /// through post_to_barrier so the request lands deterministically.
  void stop() { stop_requested_ = true; }
  bool stopped() const { return stopped_; }

  /// Preallocate `per_shard` pending-event slots in every shard heap.
  void reserve(std::size_t per_shard);

  /// Merged views over all shards plus the control engine. Because the
  /// per-engine trace hash is an order-insensitive sum, the merged hash
  /// equals what one serial engine executing the same event multiset
  /// reports.
  std::uint64_t trace_hash() const;
  std::uint64_t executed_events() const;
  std::size_t pending_events() const;
  std::size_t pending_high_water() const;

 private:
  void run_shards_window(Ticks end);
  void start_workers();
  void worker_loop(int worker);
  void drain_posts();

  std::vector<std::unique_ptr<Simulator>> shards_;
  Simulator control_;
  Ticks lookahead_;
  Ticks now_ = 0;
  bool stop_requested_ = false;
  bool stopped_ = false;
  /// Per-context post queues (shard rows 0..K-1, barrier/control row K):
  /// each row is written only by its own context, drained single-threaded
  /// at the barrier in row order.
  std::vector<std::vector<std::function<void()>>> posts_;
  std::vector<std::function<void()>> barrier_hooks_;

  // Worker pool (started lazily at the first multi-shard window).
  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<int> done_count_{0};
  bool shutdown_ = false;
  Ticks window_end_ = 0;  ///< published before the epoch bump
};

}  // namespace penelope::sim
