// Small-buffer-optimized, move-only callback type for simulator events.
//
// Every scheduled event used to carry a std::function<void()>: scheduling
// a lambda that captures more than std::function's tiny inline buffer
// heap-allocated, and the old priority_queue additionally *copied* the
// function out of top() before running it. EventFn fixes both costs:
// callables up to kInlineCapacity bytes live inside the event itself
// (the engine's dominant closure — `this` plus a few scalars — always
// fits), and the type is move-only so events are moved, never copied.
//
// Events are invoked with the firing time. A callable may accept it
// (`void(Ticks)`, the periodic-timer shape) or ignore it (`void()`, the
// one-shot shape); the () form is adapted at construction with zero
// overhead — the adapter is the same size as the callable it wraps.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

#include "common/units.hpp"

namespace penelope::sim {

class EventFn {
 public:
  /// Callables at most this large (and at most max_align_t-aligned, and
  /// nothrow-move-constructible) are stored inline; larger ones fall
  /// back to a single heap allocation. 48 bytes covers `this` + five
  /// 8-byte captures, and a whole net::Message by value.
  static constexpr std::size_t kInlineCapacity = 48;

  EventFn() noexcept = default;
  EventFn(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<
                !std::is_same_v<D, EventFn> &&
                (std::is_invocable_r_v<void, D&, common::Ticks> ||
                 std::is_invocable_r_v<void, D&>)>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor)
    if constexpr (std::is_invocable_r_v<void, D&, common::Ticks>) {
      emplace<D>(std::forward<F>(f));
    } else {
      emplace<DropTicks<D>>(DropTicks<D>{std::forward<F>(f)});
    }
  }

  EventFn(EventFn&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      relocate_from(other);
    }
  }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        relocate_from(other);
      }
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { reset(); }

  void reset() noexcept {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  /// Invoke with the firing time. Undefined if empty.
  void operator()(common::Ticks fired_at) { ops_->invoke(storage_, fired_at); }

 private:
  /// Adapter for callables that take no arguments: same size as the
  /// wrapped callable, so it never pushes a small capture off the
  /// inline path.
  template <typename D>
  struct DropTicks {
    D fn;
    void operator()(common::Ticks) { fn(); }
  };

  struct Ops {
    void (*invoke)(void* self, common::Ticks fired_at);
    /// Move-construct into `dst` raw storage, then destroy the source.
    /// nullptr means trivially relocatable: memcpy the whole buffer. This
    /// covers every trivially-copyable inline callable (the hot
    /// `this`-plus-scalars lambdas) and every heap-held callable (the
    /// buffer holds a pointer), so moving events — including vector
    /// reallocation inside the timer heap — is branch-plus-memcpy, with
    /// no indirect call.
    void (*relocate)(void* self, void* dst) noexcept;
    /// nullptr means trivially destructible: nothing to do.
    void (*destroy)(void* self) noexcept;
  };

  void relocate_from(EventFn& other) noexcept {
    if (ops_->relocate == nullptr) {
      std::memcpy(storage_, other.storage_, kInlineCapacity);
    } else {
      ops_->relocate(other.storage_, storage_);
    }
    other.ops_ = nullptr;
  }

  template <typename T>
  static constexpr bool kFitsInline =
      sizeof(T) <= kInlineCapacity &&
      alignof(T) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<T>;

  template <typename T>
  static T* inline_ptr(void* storage) noexcept {
    return std::launder(reinterpret_cast<T*>(storage));
  }

  template <typename T>
  struct InlineOps {
    static void invoke(void* self, common::Ticks fired_at) {
      (*inline_ptr<T>(self))(fired_at);
    }
    static void relocate(void* self, void* dst) noexcept {
      T* src = inline_ptr<T>(self);
      ::new (dst) T(std::move(*src));
      src->~T();
    }
    static void destroy(void* self) noexcept { inline_ptr<T>(self)->~T(); }
    static constexpr Ops kOps{
        &invoke, std::is_trivially_copyable_v<T> ? nullptr : &relocate,
        std::is_trivially_destructible_v<T> ? nullptr : &destroy};
  };

  template <typename T>
  struct HeapOps {
    static T* held(void* self) noexcept {
      return *std::launder(reinterpret_cast<T**>(self));
    }
    static void invoke(void* self, common::Ticks fired_at) {
      (*held(self))(fired_at);
    }
    static void destroy(void* self) noexcept { delete held(self); }
    // relocate == nullptr: the held pointer moves by memcpy.
    static constexpr Ops kOps{&invoke, nullptr, &destroy};
  };

  template <typename T, typename Arg>
  void emplace(Arg&& arg) {
    if constexpr (kFitsInline<T>) {
      ::new (static_cast<void*>(storage_)) T(std::forward<Arg>(arg));
      ops_ = &InlineOps<T>::kOps;
    } else {
      ::new (static_cast<void*>(storage_)) T*(new T(std::forward<Arg>(arg)));
      ops_ = &HeapOps<T>::kOps;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineCapacity];
  const Ops* ops_ = nullptr;
};

}  // namespace penelope::sim
