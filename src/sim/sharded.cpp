#include "sim/sharded.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"

namespace penelope::sim {

namespace {

/// Which shard's window this thread is executing; -1 everywhere else.
thread_local int t_current_shard = -1;

}  // namespace

int ShardedSimulator::current_shard() { return t_current_shard; }

ShardedSimulator::ShardedSimulator(int shards, Ticks lookahead)
    : lookahead_(lookahead) {
  PEN_CHECK(shards >= 1);
  PEN_CHECK_MSG(lookahead_ >= 1,
                "conservative windows need a positive lookahead");
  shards_.reserve(static_cast<std::size_t>(shards));
  for (int s = 0; s < shards; ++s)
    shards_.push_back(std::make_unique<Simulator>());
  posts_.resize(static_cast<std::size_t>(shards) + 1);
}

ShardedSimulator::~ShardedSimulator() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

Ticks ShardedSimulator::context_now() const {
  int ctx = current_shard();
  if (ctx >= 0) return shards_[static_cast<std::size_t>(ctx)]->now();
  return std::max(control_.now(), now_);
}

void ShardedSimulator::post_to_barrier(std::function<void()> fn) {
  PEN_CHECK(fn != nullptr);
  int ctx = current_shard();
  std::size_t row = ctx >= 0 ? static_cast<std::size_t>(ctx) : shards_.size();
  posts_[row].push_back(std::move(fn));
}

void ShardedSimulator::add_barrier_hook(std::function<void()> hook) {
  PEN_CHECK(hook != nullptr);
  barrier_hooks_.push_back(std::move(hook));
}

void ShardedSimulator::reserve(std::size_t per_shard) {
  for (auto& shard : shards_) shard->reserve(per_shard);
}

std::uint64_t ShardedSimulator::trace_hash() const {
  // Wrapping sum: Simulator's per-engine hash is itself an
  // order-insensitive sum of per-event mixes, so adding the partial sums
  // reproduces exactly the value one engine executing everything reports.
  std::uint64_t hash = control_.trace_hash();
  for (const auto& shard : shards_) hash += shard->trace_hash();
  return hash;
}

std::uint64_t ShardedSimulator::executed_events() const {
  std::uint64_t total = control_.executed_events();
  for (const auto& shard : shards_) total += shard->executed_events();
  return total;
}

std::size_t ShardedSimulator::pending_events() const {
  std::size_t total = control_.pending_events();
  for (const auto& shard : shards_) total += shard->pending_events();
  return total;
}

std::size_t ShardedSimulator::pending_high_water() const {
  std::size_t total = control_.pending_high_water();
  for (const auto& shard : shards_) total += shard->pending_high_water();
  return total;
}

void ShardedSimulator::drain_posts() {
  // A post may itself post (it runs with context -1, so into the last
  // row); keep sweeping until a full pass finds every row empty.
  bool any = true;
  while (any) {
    any = false;
    for (auto& row : posts_) {
      if (row.empty()) continue;
      any = true;
      std::vector<std::function<void()>> batch;
      batch.swap(row);
      for (auto& fn : batch) fn();
    }
  }
}

void ShardedSimulator::run_until(Ticks deadline) {
  PEN_CHECK(deadline >= now_);
  stopped_ = false;
  stop_requested_ = false;
  for (;;) {
    drain_posts();
    if (stop_requested_) {
      stopped_ = true;
      return;
    }
    for (auto& hook : barrier_hooks_) hook();

    Ticks control_next = control_.next_event_at();
    Ticks shard_next = kNoPendingEvent;
    for (const auto& shard : shards_)
      shard_next = std::min(shard_next, shard->next_event_at());

    if (std::min(control_next, shard_next) > deadline) {
      // Drained (or only future work left): land every engine exactly on
      // the deadline so context_now() and scheduling stay consistent.
      for (auto& shard : shards_) shard->advance_to(deadline);
      control_.advance_to(deadline);
      now_ = deadline;
      return;
    }

    if (control_next <= shard_next) {
      // Control events run before any shard event at the same timestamp.
      // Every shard heap's minimum is >= control_next, so fast-forwarding
      // the shard clocks is safe — and necessary: control events reach
      // into actors (crash, restart, budget changes) whose relative
      // scheduling must see the same now() a serial run would.
      for (auto& shard : shards_) shard->advance_to(control_next);
      control_.run_until(control_next);
      now_ = control_next;
      continue;
    }

    Ticks end = shard_next + lookahead_;
    if (control_next < end) end = control_next;
    if (deadline + 1 < end) end = deadline + 1;
    run_shards_window(end);
    now_ = std::min(end, deadline);
  }
}

void ShardedSimulator::run_shards_window(Ticks end) {
  int active = 0;
  int last_active = -1;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (shards_[s]->next_event_at() < end) {
      ++active;
      last_active = static_cast<int>(s);
    }
  }
  if (active == 0) return;
  if (active == 1 || shards_.size() == 1) {
    // Sparse region of virtual time: no wakeups, no handshake. Sends the
    // lone shard makes still stage and flush at the next barrier, so the
    // merge order is identical to the parallel path.
    t_current_shard = last_active;
    shards_[static_cast<std::size_t>(last_active)]->run_window(end);
    t_current_shard = -1;
    return;
  }

  if (workers_.empty()) start_workers();
  window_end_ = end;
  done_count_.store(0, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    epoch_.fetch_add(1, std::memory_order_release);
  }
  cv_.notify_all();

  t_current_shard = 0;
  shards_[0]->run_window(end);
  t_current_shard = -1;

  const int target = static_cast<int>(shards_.size()) - 1;
  while (done_count_.load(std::memory_order_acquire) < target)
    std::this_thread::yield();
}

void ShardedSimulator::start_workers() {
  workers_.reserve(shards_.size() - 1);
  for (int w = 0; w < static_cast<int>(shards_.size()) - 1; ++w)
    workers_.emplace_back([this, w] { worker_loop(w); });
}

void ShardedSimulator::worker_loop(int worker) {
  const std::size_t shard = static_cast<std::size_t>(worker) + 1;
  std::uint64_t seen = 0;
  for (;;) {
    std::uint64_t epoch = epoch_.load(std::memory_order_acquire);
    for (int spin = 0; spin < 2048 && epoch == seen; ++spin)
      epoch = epoch_.load(std::memory_order_acquire);
    if (epoch == seen) {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [&] {
        return shutdown_ ||
               epoch_.load(std::memory_order_acquire) != seen;
      });
      if (shutdown_) return;
      epoch = epoch_.load(std::memory_order_acquire);
    }
    seen = epoch;
    t_current_shard = static_cast<int>(shard);
    shards_[shard]->run_window(window_end_);
    t_current_shard = -1;
    done_count_.fetch_add(1, std::memory_order_release);
  }
}

}  // namespace penelope::sim
