#include "sim/simulator.hpp"

#include <utility>

#include "common/check.hpp"

namespace penelope::sim {

EventId Simulator::schedule_at(Ticks at, EventFn fn) {
  PEN_CHECK_MSG(at >= now_, "cannot schedule into the past");
  PEN_CHECK(static_cast<bool>(fn));
  EventId id = heap_.insert(at, next_seq_++, /*period=*/0, std::move(fn));
  if (heap_.size() > pending_high_water_) pending_high_water_ = heap_.size();
  return id;
}

EventId Simulator::schedule_after(Ticks delay, EventFn fn) {
  PEN_CHECK(delay >= 0);
  return schedule_at(now_ + delay, std::move(fn));
}

EventId Simulator::schedule_periodic(Ticks first_at, Ticks period,
                                     EventFn fn) {
  PEN_CHECK_MSG(first_at >= now_, "cannot schedule into the past");
  PEN_CHECK(period > 0);
  PEN_CHECK(static_cast<bool>(fn));
  EventId id = heap_.insert(first_at, next_seq_++, period, std::move(fn));
  if (heap_.size() > pending_high_water_) pending_high_water_ = heap_.size();
  return id;
}

EventId Simulator::schedule_periodic_pre(Ticks first_at, Ticks period,
                                         EventFn fn) {
  PEN_CHECK_MSG(first_at >= now_, "cannot schedule into the past");
  PEN_CHECK(period > 0);
  PEN_CHECK(static_cast<bool>(fn));
  PEN_CHECK_MSG(next_pre_seq_ < kFirstSweepSeq, "pre-lane sequence space exhausted");
  EventId id = heap_.insert(first_at, next_pre_seq_++, period, std::move(fn));
  if (heap_.size() > pending_high_water_) pending_high_water_ = heap_.size();
  return id;
}

EventId Simulator::schedule_periodic_sweep(Ticks first_at, Ticks period,
                                           EventFn fn) {
  PEN_CHECK_MSG(first_at >= now_, "cannot schedule into the past");
  PEN_CHECK(period > 0);
  PEN_CHECK(static_cast<bool>(fn));
  PEN_CHECK_MSG(next_sweep_seq_ < kFirstNormalSeq,
                "sweep-lane sequence space exhausted");
  EventId id = heap_.insert(first_at, next_sweep_seq_++, period, std::move(fn));
  if (heap_.size() > pending_high_water_) pending_high_water_ = heap_.size();
  return id;
}

bool Simulator::set_period(EventId id, Ticks period) {
  PEN_CHECK(period > 0);
  return heap_.set_period(id, period);
}

void Simulator::cancel(EventId id) {
  if (id != kInvalidEventId) heap_.cancel(id);
}

bool Simulator::pop_and_run_next() {
  if (heap_.empty()) return false;
  TimerHeap::Fired event = heap_.fire_top();
  PEN_DCHECK(event.at >= now_);
  now_ = event.at;
  // Sweep-band firings are trace-neutral: they are engine infrastructure
  // (one per shard, so their count depends on sim_jobs), not protocol
  // events. Everything a sweep does still reaches the trace through the
  // events it causes.
  const bool sweep =
      event.seq >= kFirstSweepSeq && event.seq < kFirstNormalSeq;
  if (!sweep) {
    ++executed_;
    trace_hash_ += trace_mix(static_cast<std::uint64_t>(event.at));
  }
  event.fn(now_);
  if (event.periodic) {
    // Re-arm only if the callback did not cancel the timer, and assign
    // the re-arm sequence number *after* the callback so events it
    // scheduled at the next firing time sort ahead of that firing —
    // the order the old schedule-a-fresh-event implementation produced,
    // which the golden-trace tests pin. Pre- and sweep-lane timers
    // re-arm from their own bands so every firing keeps its lane rank
    // at tied timestamps.
    if (heap_.contains(event.id)) {
      std::uint64_t* lane = &next_seq_;
      if (event.seq < kFirstSweepSeq) {
        PEN_CHECK_MSG(next_pre_seq_ < kFirstSweepSeq,
                      "pre-lane sequence space exhausted");
        lane = &next_pre_seq_;
      } else if (sweep) {
        PEN_CHECK_MSG(next_sweep_seq_ < kFirstNormalSeq,
                      "sweep-lane sequence space exhausted");
        lane = &next_sweep_seq_;
      }
      heap_.rearm(event.id, event.at, (*lane)++, std::move(event.fn));
    }
  }
  return true;
}

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && pop_and_run_next()) {
  }
}

void Simulator::run_until(Ticks deadline) {
  PEN_CHECK(deadline >= now_);
  stopped_ = false;
  while (!stopped_ && !heap_.empty() && heap_.min_at() <= deadline) {
    pop_and_run_next();
  }
  if (!stopped_ && now_ < deadline) now_ = deadline;
}

void Simulator::run_window(Ticks end) {
  while (!heap_.empty() && heap_.min_at() < end) pop_and_run_next();
}

std::size_t Simulator::run_steps(std::size_t n) {
  stopped_ = false;
  std::size_t done = 0;
  while (done < n && !stopped_ && pop_and_run_next()) ++done;
  return done;
}

PeriodicTask::PeriodicTask(Simulator& sim, Ticks first_at, Ticks period,
                           std::function<void(Ticks)> fn, TaskOrder order)
    : sim_(sim), period_(period) {
  PEN_CHECK(period_ > 0);
  PEN_CHECK(fn != nullptr);
  switch (order) {
    case TaskOrder::kPre:
      id_ = sim_.schedule_periodic_pre(first_at, period, std::move(fn));
      break;
    case TaskOrder::kSweep:
      id_ = sim_.schedule_periodic_sweep(first_at, period, std::move(fn));
      break;
    case TaskOrder::kNormal:
      id_ = sim_.schedule_periodic(first_at, period, std::move(fn));
      break;
  }
}

PeriodicTask::~PeriodicTask() { cancel(); }

void PeriodicTask::cancel() {
  if (!active_) return;
  active_ = false;
  sim_.cancel(id_);
  id_ = kInvalidEventId;
}

void PeriodicTask::set_period(Ticks period) {
  PEN_CHECK(period > 0);
  period_ = period;
  if (active_) sim_.set_period(id_, period);
}

}  // namespace penelope::sim
