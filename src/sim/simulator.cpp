#include "sim/simulator.hpp"

#include <utility>

#include "common/check.hpp"

namespace penelope::sim {

EventId Simulator::schedule_at(Ticks at, std::function<void()> fn) {
  PEN_CHECK_MSG(at >= now_, "cannot schedule into the past");
  PEN_CHECK(fn != nullptr);
  EventId id = next_id_++;
  queue_.push(Event{at, next_seq_++, id, std::move(fn)});
  return id;
}

EventId Simulator::schedule_after(Ticks delay, std::function<void()> fn) {
  PEN_CHECK(delay >= 0);
  return schedule_at(now_ + delay, std::move(fn));
}

void Simulator::cancel(EventId id) {
  if (id != kInvalidEventId) cancelled_.insert(id);
}

bool Simulator::pop_and_run_next() {
  while (!queue_.empty()) {
    // priority_queue::top is const; the event is copied out by value. The
    // std::function copy is cheap relative to event work and keeps the
    // queue's invariants out of the callback's reach.
    Event ev = queue_.top();
    queue_.pop();
    auto it = cancelled_.find(ev.id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    PEN_DCHECK(ev.at >= now_);
    now_ = ev.at;
    ++executed_;
    ev.fn();
    return true;
  }
  return false;
}

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && pop_and_run_next()) {
  }
}

void Simulator::run_until(Ticks deadline) {
  PEN_CHECK(deadline >= now_);
  stopped_ = false;
  while (!stopped_ && !queue_.empty()) {
    // Skip cancelled heads without advancing time.
    Event head = queue_.top();
    if (cancelled_.count(head.id)) {
      queue_.pop();
      cancelled_.erase(head.id);
      continue;
    }
    if (head.at > deadline) break;
    pop_and_run_next();
  }
  if (!stopped_ && now_ < deadline) now_ = deadline;
}

std::size_t Simulator::run_steps(std::size_t n) {
  stopped_ = false;
  std::size_t done = 0;
  while (done < n && !stopped_ && pop_and_run_next()) ++done;
  return done;
}

PeriodicTask::PeriodicTask(Simulator& sim, Ticks first_at, Ticks period,
                           std::function<void(Ticks)> fn)
    : sim_(sim), period_(period), fn_(std::move(fn)) {
  PEN_CHECK(period_ > 0);
  PEN_CHECK(fn_ != nullptr);
  arm(first_at);
}

PeriodicTask::~PeriodicTask() { cancel(); }

void PeriodicTask::cancel() {
  if (!active_) return;
  active_ = false;
  sim_.cancel(pending_);
  pending_ = kInvalidEventId;
}

void PeriodicTask::set_period(Ticks period) {
  PEN_CHECK(period > 0);
  period_ = period;
}

void PeriodicTask::arm(Ticks at) {
  pending_ = sim_.schedule_at(at, [this] {
    if (!active_) return;
    Ticks fired_at = sim_.now();
    fn_(fired_at);
    // Re-arm after the callback so set_period() calls made inside it
    // apply to the very next firing, and cancel() inside it sticks.
    if (active_) arm(fired_at + period_);
  });
}

}  // namespace penelope::sim
