// SLURM-style local decider (client side of the centralized manager).
//
// Same epsilon classification as Penelope's decider (§2.3.2), but all
// power motion goes through the server: excess is donated upward
// (fire-and-forget, after lowering the local cap), hunger becomes a
// request and the cap rises only when the server's grant arrives. The
// grant can instead carry a release order (centralized urgency), in which
// case the client drops to its initial cap and donates the difference.
#pragma once

#include <cstdint>

#include "central/protocol.hpp"
#include "power/power_interface.hpp"

namespace penelope::central {

struct ClientConfig {
  double initial_cap_watts = 160.0;
  double epsilon_watts = 5.0;
  power::SafeRange safe_range;
  /// Node id folded into request txn ids (core::make_txn_id stream 0)
  /// for cluster-wide uniqueness; -1 keeps raw 1, 2, 3, ... for unit
  /// tests driving a single client.
  std::int32_t txn_node = -1;
};

struct ClientStats {
  std::uint64_t steps = 0;
  std::uint64_t excess_steps = 0;
  std::uint64_t hungry_steps = 0;
  std::uint64_t requests = 0;
  std::uint64_t urgent_requests = 0;
  std::uint64_t release_orders_obeyed = 0;
  double watts_donated = 0.0;
  double watts_received = 0.0;
};

enum class ClientStepKind {
  kDonate,       ///< excess: send CentralDonation{delta_watts}
  kNeedsServer,  ///< hungry: send `request`
  kHeld,         ///< hungry at the safe ceiling, or nothing to do
};

struct ClientStepOutcome {
  ClientStepKind kind = ClientStepKind::kHeld;
  double delta_watts = 0.0;  ///< donation size for kDonate
  CentralRequest request;    ///< valid for kNeedsServer
};

/// Result of applying a server grant.
struct GrantApplication {
  double applied_watts = 0.0;  ///< cap increase actually realised
  /// Watts the client must donate back (release order, or grant overflow
  /// beyond the safe ceiling). The driver sends this as a
  /// CentralDonation so no power is stranded on the client.
  double donate_back_watts = 0.0;
};

class Client {
 public:
  explicit Client(ClientConfig config);

  ClientStepOutcome begin_step(double avg_power_watts);

  GrantApplication apply_grant(const CentralGrant& grant);

  /// Timeout: the request went unanswered (dead server, dropped packet).
  /// No state changes — the cap simply stays where it was, which is
  /// exactly the failure mode Figure 3 measures.
  void on_grant_timeout();

  /// PoDD-style reassignment (hierarchy/): adopt a new initial cap. If
  /// the current cap exceeds it, the difference is returned and must be
  /// donated back to the server (the caller sends the message); if the
  /// current cap is below it, the node is now under its initial
  /// assignment and climbs back through the normal urgency path.
  double reassign(double new_initial_cap_watts);

  /// Dynamic system-budget reconfiguration: this node's share changed
  /// by `delta_watts`. Increase: the initial cap and cap rise together;
  /// any part the safe ceiling rejects is returned as `donate_watts`
  /// for the server to redistribute. Cut: retire from the cap down to
  /// the safe minimum immediately; the remainder becomes retirement
  /// debt, paid from future excess before it is donated.
  struct BudgetDeltaResult {
    double retired_now = 0.0;
    double donate_watts = 0.0;
  };
  BudgetDeltaResult apply_budget_delta(double delta_watts);

  double retirement_debt() const { return retirement_debt_; }

  /// Crash: drop to the safe-minimum cap and surrender the difference
  /// (the SLURM-analogue of Decider::seize_for_restart). The initial
  /// cap assignment is kept — re-admission adjusts it if the server
  /// re-divides the budget. Returns the seized watts (>= 0).
  double seize_for_restart() {
    double seized = cap_ - config_.safe_range.min_watts;
    if (seized < 0.0) seized = 0.0;
    cap_ = config_.safe_range.min_watts;
    last_urgent_ = false;
    return seized;
  }

  double cap() const { return cap_; }
  double initial_cap() const { return config_.initial_cap_watts; }
  bool last_step_urgent() const { return last_urgent_; }

  const ClientStats& stats() const { return stats_; }
  const ClientConfig& config() const { return config_; }

 private:
  ClientConfig config_;
  double cap_;
  double retirement_debt_ = 0.0;
  bool last_urgent_ = false;
  std::uint64_t next_txn_ = 1;
  ClientStats stats_;
};

}  // namespace penelope::central
