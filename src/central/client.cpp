#include "central/client.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/units.hpp"
#include "core/protocol.hpp"

namespace penelope::central {

Client::Client(ClientConfig config) : config_(config) {
  PEN_CHECK(config_.epsilon_watts >= 0.0);
  PEN_CHECK_MSG(config_.safe_range.contains(config_.initial_cap_watts),
                "initial cap must lie inside the safe range");
  cap_ = config_.initial_cap_watts;
}

ClientStepOutcome Client::begin_step(double avg_power_watts) {
  ++stats_.steps;
  ClientStepOutcome out;

  if (avg_power_watts < cap_ - config_.epsilon_watts) {
    ++stats_.excess_steps;
    last_urgent_ = false;
    double new_cap =
        std::max(avg_power_watts, config_.safe_range.min_watts);
    double delta = cap_ - new_cap;
    if (delta <= 0.0) {
      out.kind = ClientStepKind::kHeld;
      return out;
    }
    cap_ = new_cap;  // lowered before the donation leaves the node
    // Retirement debt (budget cut) is paid before anything is donated:
    // those watts leave the system.
    double retired = std::min(delta, retirement_debt_);
    retirement_debt_ -= retired;
    delta -= retired;
    if (delta <= 0.0) {
      out.kind = ClientStepKind::kHeld;
      return out;
    }
    stats_.watts_donated += delta;
    out.kind = ClientStepKind::kDonate;
    out.delta_watts = delta;
    return out;
  }

  ++stats_.hungry_steps;
  last_urgent_ = common::watts_less(cap_, config_.initial_cap_watts);

  if (cap_ >= config_.safe_range.max_watts - common::kWattEpsilon) {
    out.kind = ClientStepKind::kHeld;
    return out;
  }

  ++stats_.requests;
  if (last_urgent_) ++stats_.urgent_requests;
  out.kind = ClientStepKind::kNeedsServer;
  out.request.urgent = last_urgent_;
  out.request.alpha_watts =
      last_urgent_ ? config_.initial_cap_watts - cap_ : 0.0;
  out.request.txn_id = core::make_txn_id(config_.txn_node, 0, next_txn_++);
  return out;
}

GrantApplication Client::apply_grant(const CentralGrant& grant) {
  GrantApplication result;

  if (grant.release_to_initial && !last_urgent_) {
    ++stats_.release_orders_obeyed;
    double above = cap_ - config_.initial_cap_watts;
    if (above > common::kWattEpsilon) {
      cap_ = config_.initial_cap_watts;
      result.donate_back_watts += above;
      stats_.watts_donated += above;
    }
  }

  double watts = std::max(grant.watts, 0.0);
  if (watts > 0.0) {
    double headroom = config_.safe_range.max_watts - cap_;
    double applied = std::min(watts, std::max(headroom, 0.0));
    cap_ += applied;
    stats_.watts_received += applied;
    result.applied_watts = applied;
    result.donate_back_watts += watts - applied;
  }
  return result;
}

double Client::reassign(double new_initial_cap_watts) {
  PEN_CHECK_MSG(config_.safe_range.contains(new_initial_cap_watts),
                "reassigned cap must lie inside the safe range");
  config_.initial_cap_watts = new_initial_cap_watts;
  double give_back = cap_ - new_initial_cap_watts;
  if (give_back > common::kWattEpsilon) {
    cap_ = new_initial_cap_watts;
    stats_.watts_donated += give_back;
    return give_back;
  }
  return 0.0;
}

Client::BudgetDeltaResult Client::apply_budget_delta(double delta_watts) {
  BudgetDeltaResult result;
  if (delta_watts >= 0.0) {
    config_.initial_cap_watts = std::min(
        config_.initial_cap_watts + delta_watts,
        config_.safe_range.max_watts);
    double headroom = config_.safe_range.max_watts - cap_;
    double applied = std::min(delta_watts, std::max(headroom, 0.0));
    cap_ += applied;
    result.donate_watts = delta_watts - applied;
    return result;
  }

  double owed = -delta_watts;
  config_.initial_cap_watts = std::max(
      config_.initial_cap_watts - owed, config_.safe_range.min_watts);
  double from_cap =
      std::min(owed, std::max(cap_ - config_.safe_range.min_watts, 0.0));
  cap_ -= from_cap;
  owed -= from_cap;
  retirement_debt_ += owed;
  result.retired_now = from_cap;
  return result;
}

void Client::on_grant_timeout() {
  // Nothing: the power the request hoped for never moved, so no state
  // needs repair. Statistics of timed-out requests live in the driver.
}

}  // namespace penelope::central
