#include "central/server.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/units.hpp"

namespace penelope::central {

ServerLogic::ServerLogic(ServerConfig config) : config_(config) {
  PEN_CHECK(config_.share_fraction > 0.0 && config_.share_fraction <= 1.0);
  PEN_CHECK(config_.upper_limit_watts >= config_.lower_limit_watts);
}

void ServerLogic::handle_donation(const CentralDonation& donation) {
  PEN_CHECK_MSG(donation.watts >= -common::kWattEpsilon,
                "donations cannot be negative");
  double watts = std::max(donation.watts, 0.0);
  cache_ += watts;
  ++stats_.donations;
  stats_.watts_collected += watts;
  // Returning power satisfies the outstanding urgent deficit: the urgent
  // node will collect it on its next request.
  unmet_urgent_ = std::max(0.0, unmet_urgent_ - watts);
}

double ServerLogic::non_urgent_grant_size() const {
  double share = config_.share_fraction * cache_;
  if (!config_.clamp_grants) return share;
  return common::clamp_watts(share, config_.lower_limit_watts,
                             config_.upper_limit_watts);
}

CentralGrant ServerLogic::handle_request(const CentralRequest& request) {
  ++stats_.requests;
  CentralGrant grant;
  grant.txn_id = request.txn_id;

  if (request.urgent) {
    ++stats_.urgent_requests;
    double alpha = std::max(request.alpha_watts, 0.0);
    grant.watts = std::min(cache_, alpha);
    cache_ -= grant.watts;
    // Remember how far this urgent node remains from its initial cap;
    // the most recent observation wins (re-requests would otherwise
    // double-count the same deficit).
    unmet_urgent_ = alpha - grant.watts;
  } else if (unmet_urgent_ > common::kWattEpsilon) {
    // Centralized urgency: withhold power from non-urgent nodes and
    // order them back to their initial caps until the deficit clears.
    grant.watts = 0.0;
    grant.release_to_initial = true;
    ++stats_.release_orders;
  } else {
    grant.watts = std::min(cache_, non_urgent_grant_size());
    grant.watts = std::max(grant.watts, 0.0);
    cache_ -= grant.watts;
  }
  stats_.watts_granted += grant.watts;
  return grant;
}

}  // namespace penelope::central
