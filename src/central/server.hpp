// The central power server: SLURM's dynamic power-management behaviour
// as the paper describes it (§2.3.2, §4.1).
//
// The server is the global cache of excess power. Donations accumulate;
// hungry clients receive "a percentage of the total excess". We clamp
// non-urgent grants with the same (share, lower, upper) rule Penelope's
// pools use — this is the "modified rate limiting scheme to account for
// scale" of §4.5, and using identical limits keeps the comparison between
// the two systems about *architecture*, not tuning.
//
// Centralized urgency (§4.1): urgent requests are served greedily up to
// their initial-cap deficit. When an urgent request cannot be fully met,
// the server remembers the unmet deficit and instructs subsequent
// non-urgent hungry clients to release down to their initial caps until
// enough power has come back.
//
// This class is pure decision logic — the cluster driver parks it behind
// a net::SerialServer so that queueing, service time (80–100 µs per the
// paper's measurement) and packet drops emerge from the network model.
#pragma once

#include <cstdint>

#include "central/protocol.hpp"

namespace penelope::central {

struct ServerConfig {
  /// Non-urgent grant = clamp(share_fraction * cache, lower, upper).
  double share_fraction = 0.10;
  double lower_limit_watts = 1.0;
  double upper_limit_watts = 30.0;
  /// Ablation knob: disable the clamp (original unbounded percentage
  /// hand-out) to reproduce the oscillation the paper warns about.
  bool clamp_grants = true;
};

struct ServerStats {
  std::uint64_t donations = 0;
  std::uint64_t requests = 0;
  std::uint64_t urgent_requests = 0;
  std::uint64_t release_orders = 0;  ///< grants carrying release_to_initial
  double watts_collected = 0.0;
  double watts_granted = 0.0;
  /// Watts returned to the cache from clients declared dead (the
  /// SLURM-analogue reclamation path: a dead client's assignment goes
  /// back into the server budget).
  double watts_reclaimed = 0.0;
};

class ServerLogic {
 public:
  explicit ServerLogic(ServerConfig config = {});

  void handle_donation(const CentralDonation& donation);

  CentralGrant handle_request(const CentralRequest& request);

  /// Membership reclamation: a client was declared dead; its seized cap
  /// share and the watts stranded against it return to the cache for
  /// redistribution.
  void reclaim(double watts) {
    if (watts <= 0.0) return;
    cache_ += watts;
    stats_.watts_reclaimed += watts;
  }

  /// Current cached excess.
  double cache_watts() const { return cache_; }

  /// Outstanding urgent deficit driving release orders.
  double unmet_urgent_watts() const { return unmet_urgent_; }

  const ServerStats& stats() const { return stats_; }

 private:
  double non_urgent_grant_size() const;

  ServerConfig config_;
  double cache_ = 0.0;
  double unmet_urgent_ = 0.0;
  ServerStats stats_;
};

}  // namespace penelope::central
