// Wire protocol for the centralized (SLURM-style) power manager: clients
// ship excess to the server and request power from it; the server's
// grants may instead instruct a client to release down to its initial cap
// (the centralized urgency mechanism of §4.1).
#pragma once

#include <cstdint>

namespace penelope::central {

/// Client -> server: excess power freed by lowering the local cap. The
/// cap was lowered before this message was sent, so the watts it carries
/// are already outside every node-level cap.
struct CentralDonation {
  double watts = 0.0;
  /// Dedup id (stream 1 of the donating client); core::kNoTxn (0)
  /// disables dedup for legacy senders and direct-logic tests.
  std::uint64_t txn_id = 0;
};

/// Client -> server: the node is power-hungry.
struct CentralRequest {
  bool urgent = false;       ///< hungry and below the initial cap
  double alpha_watts = 0.0;  ///< urgent only: deficit to the initial cap
  std::uint64_t txn_id = 0;
};

/// Server -> client: response to a CentralRequest.
struct CentralGrant {
  double watts = 0.0;
  /// Centralized urgency: an urgent node elsewhere could not reach its
  /// initial cap, so this (non-urgent) client must release everything
  /// above its own initial cap back to the server.
  bool release_to_initial = false;
  std::uint64_t txn_id = 0;
};

}  // namespace penelope::central
