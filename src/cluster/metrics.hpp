// Cluster-wide measurement: everything the paper's evaluation reports is
// computed from the event streams collected here.
//
//   * turnaround time — per-transaction send→grant latency (Figures 7, 8)
//   * redistribution timeline — timestamped watts applied to caps through
//     transactions, against the excess released by a completion burst
//     (Figures 4, 5, 6)
//   * conservation accounting — grants in flight and watts stranded by
//     dropped messages or dead nodes, so the system-cap invariant can be
//     audited at any instant
//
// Counters and gauges live in a telemetry::MetricsRegistry so the same
// snapshot that backs these accessors can be exported as Prometheus text
// or Perfetto counter tracks. The embedded FlightRecorder (off unless
// ClusterConfig::flight_recorder_capacity enables it) journals per-
// transaction lifecycle events for the same run.
//
// Sharded runs (DESIGN.md §12): counters/gauges/histograms are atomic
// already; the event-list collectors (turnarounds, releases, applies)
// write into per-execution-context slots selected by
// sim::ShardedSimulator::current_shard(), merged on read. Reclaim tags
// are dense per-node slots, each touched only by its owner's context
// in-window (drop handler in the destination's shard) or at barriers
// (crash/restart), so no lock is needed anywhere on the hot path.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/units.hpp"
#include "sim/sharded.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/flow_tracer.hpp"
#include "telemetry/registry.hpp"

namespace penelope::cluster {

struct TransferEvent {
  common::Ticks at = 0;
  double watts = 0.0;
  int node = -1;
};

class ClusterMetrics {
 public:
  ClusterMetrics();

  ClusterMetrics(const ClusterMetrics&) = delete;
  ClusterMetrics& operator=(const ClusterMetrics&) = delete;

  /// Sharded runs: pre-size one event-collector slot per execution
  /// context (K shard windows plus the barrier/control context) and one
  /// reclaim-tag slot per node, so windows never resize shared storage.
  /// Serial runs skip this and use the single default slot.
  void configure_sharding(int shards, int n_nodes);

  /// --- turnaround -------------------------------------------------------
  void record_turnaround(common::Ticks sent_at, common::Ticks resolved_at);
  void record_timeout() { timeouts_.inc(); }

  /// Merged across context slots (slot-major, so serial runs keep their
  /// exact append order). Call from a barrier or after the run.
  const std::vector<double>& turnaround_ms() const;
  std::uint64_t timeouts() const { return timeouts_.value(); }

  /// --- redistribution ---------------------------------------------------
  /// Watts released by a node lowering its cap (donation into a pool or
  /// to the server).
  void record_release(common::Ticks at, double watts, int node);
  /// Watts applied to a node's cap through a transaction (peer grant,
  /// server grant, or local pool take).
  void record_apply(common::Ticks at, double watts, int node);

  /// Merged across context slots and re-sorted by virtual time (stable,
  /// so a serial run's append order is preserved exactly). Call from a
  /// barrier or after the run.
  const std::vector<TransferEvent>& releases() const;
  const std::vector<TransferEvent>& applies() const;

  /// --- conservation accounting -----------------------------------------
  /// A grant of `watts` left a pool/server and is now in a message.
  void grant_departed(double watts) { in_flight_watts_.add(watts); }
  /// The grant arrived and was applied/banked.
  void grant_arrived(double watts) { in_flight_watts_.add(-watts); }
  /// The grant (or donation) was lost: dropped packet or dead recipient.
  void watts_stranded(double watts) {
    in_flight_watts_.add(-watts);
    stranded_watts_.add(watts);
  }
  /// A donation left a client for the central server.
  void donation_departed(double watts) { in_flight_watts_.add(watts); }
  void donation_arrived(double watts) { in_flight_watts_.add(-watts); }

  double in_flight_watts() const { return in_flight_watts_.value(); }
  double stranded_watts() const { return stranded_watts_.value(); }

  /// A redelivered copy of an already-applied message was dropped by the
  /// receiver's TxnWindow. No ledger movement: the first copy did all the
  /// accounting, and a duplicate carries no power of its own.
  void record_duplicate_drop(double watts) {
    duplicates_dropped_.inc();
    duplicate_watts_dropped_.add(watts);
  }
  std::uint64_t duplicates_dropped() const {
    return duplicates_dropped_.value();
  }
  double duplicate_watts_dropped() const {
    return duplicate_watts_dropped_.value();
  }

  /// A grant arrived for a transaction the receiver has no record of
  /// (neither outstanding nor timed-out-stale). Its watts were stranded
  /// rather than applied.
  void record_unknown_txn() { unknown_txn_grants_.inc(); }
  std::uint64_t unknown_txn_grants() const {
    return unknown_txn_grants_.value();
  }

  /// --- membership and epoch-guarded reclamation ------------------------
  /// Watts a crashing node surrendered (cap above safe-min, drained
  /// pool). They were live — not in flight — so this only moves them
  /// into the stranded ledger, tagged (node, incarnation) so exactly one
  /// later observer can reclaim them.
  void strand_residue_against(std::int32_t node, std::uint32_t incarnation,
                              double watts) {
    if (watts <= 0.0) return;
    stranded_watts_.add(watts);
    add_reclaim_tag(node, incarnation, watts);
  }
  /// An in-flight message died against a dead node: the usual strand
  /// bookkeeping, plus the reclaim tag. Sharded runs: safe from the dead
  /// node's own shard context (the network delivers — and so drops — a
  /// node's traffic in its shard), which is the only in-window caller.
  void strand_in_flight_against(std::int32_t node,
                                std::uint32_t incarnation, double watts) {
    if (watts <= 0.0) return;
    watts_stranded(watts);
    add_reclaim_tag(node, incarnation, watts);
  }
  /// Consume the (node, incarnation) reclaim tag exactly once: the tag's
  /// watts leave the stranded ledger and the caller must put them back
  /// into circulation (a pool deposit or the server cache) atomically in
  /// sim time. Returns 0 for an unknown or already-consumed tag, which
  /// is what makes double reclamation (two peers declaring the same
  /// death, or a ghost of an old incarnation) impossible.
  double reclaim_from(std::int32_t node, std::uint32_t incarnation) {
    if (node < 0 || static_cast<std::size_t>(node) >= reclaim_tags_.size())
      return 0.0;
    auto& tags = reclaim_tags_[static_cast<std::size_t>(node)];
    for (std::size_t i = 0; i < tags.size(); ++i) {
      if (tags[i].incarnation != incarnation) continue;
      double watts = tags[i].watts;
      tags.erase(tags.begin() + static_cast<std::ptrdiff_t>(i));
      stranded_watts_.add(-watts);
      watts_reclaimed_.add(watts);
      reclaims_.inc();
      return watts;
    }
    return 0.0;
  }
  /// Watts still tagged reclaimable (subset of stranded_watts()).
  double reclaimable_watts() const {
    double sum = 0.0;
    for (const auto& tags : reclaim_tags_)
      for (const auto& tag : tags) sum += tag.watts;
    return sum;
  }
  double watts_reclaimed() const { return watts_reclaimed_.value(); }
  std::uint64_t reclaims() const { return reclaims_.value(); }

  void record_suspicion() { nodes_suspected_.inc(); }
  std::uint64_t nodes_suspected() const { return nodes_suspected_.value(); }
  void record_false_suspicion() { false_suspicions_.inc(); }
  std::uint64_t false_suspicions() const {
    return false_suspicions_.value();
  }
  void record_declared_dead() { nodes_declared_dead_.inc(); }
  std::uint64_t nodes_declared_dead() const {
    return nodes_declared_dead_.value();
  }

  /// --- federation (DESIGN.md §13) ---------------------------------------
  /// One aggregated child->parent deficit report left a pool. Carries no
  /// power, so only the message counter moves.
  void record_federated_request() { federated_requests_.inc(); }
  /// One aggregated inter-pool transfer departed; its watts ride the
  /// in-flight ledger via grant_departed like every other carrier.
  void record_federated_transfer(double watts) {
    federated_transfers_.inc();
    federated_watts_moved_.add(watts);
  }
  std::uint64_t federated_requests() const {
    return federated_requests_.value();
  }
  std::uint64_t federated_transfers() const {
    return federated_transfers_.value();
  }
  double federated_watts_moved() const {
    return federated_watts_moved_.value();
  }

  /// --- misc counters ----------------------------------------------------
  void record_request_sent() { requests_sent_.inc(); }
  std::uint64_t requests_sent() const { return requests_sent_.value(); }

  /// One decider made one control decision (a begin_step on the classic
  /// path, a node sweep action on the arena path, a central client
  /// step). The liveness watchdog compares successive readings: a run
  /// whose clock advances while this stays flat is wedged.
  void record_decider_step() { decider_steps_.inc(); }
  std::uint64_t decider_steps() const { return decider_steps_.value(); }

  /// Honest heap-sizing feedback: the most simulator events ever pending
  /// at once across the run's engines, sampled by the cluster's audit
  /// task against Simulator::pending_high_water().
  void note_pending_events_high_water(double events) {
    pending_events_high_water_.set(events);
  }
  double pending_events_high_water() const {
    return pending_events_high_water_.value();
  }

  /// --- telemetry --------------------------------------------------------
  telemetry::MetricsRegistry& registry() { return registry_; }
  const telemetry::MetricsRegistry& registry() const { return registry_; }
  telemetry::FlightRecorder& recorder() { return recorder_; }
  const telemetry::FlightRecorder& recorder() const { return recorder_; }
  telemetry::PowerFlowTracer& tracer() { return tracer_; }
  const telemetry::PowerFlowTracer& tracer() const { return tracer_; }

 private:
  /// Event-list collectors for one execution context: written only by
  /// that context's thread inside a window, merged single-threaded.
  struct EventSlot {
    std::vector<double> turnaround_ms;
    std::vector<TransferEvent> releases;
    std::vector<TransferEvent> applies;
  };

  /// Stranded watts tagged against one incarnation of a dead node.
  struct ReclaimTag {
    std::uint32_t incarnation = 0;
    double watts = 0.0;
  };

  /// Which EventSlot the calling context owns: shard s -> slot s + 1,
  /// everything else (serial runs, barriers, control events) -> slot 0.
  EventSlot& slot() {
    int shard = sim::ShardedSimulator::current_shard();
    return slots_[shard >= 0 ? static_cast<std::size_t>(shard) + 1 : 0];
  }

  void add_reclaim_tag(std::int32_t node, std::uint32_t incarnation,
                       double watts) {
    if (node < 0) return;
    if (static_cast<std::size_t>(node) >= reclaim_tags_.size())
      reclaim_tags_.resize(static_cast<std::size_t>(node) + 1);
    auto& tags = reclaim_tags_[static_cast<std::size_t>(node)];
    for (auto& tag : tags) {
      if (tag.incarnation == incarnation) {
        tag.watts += watts;
        return;
      }
    }
    tags.push_back(ReclaimTag{incarnation, watts});
  }

  // Registry before handles: handles point into registry cells.
  telemetry::MetricsRegistry registry_;
  telemetry::FlightRecorder recorder_;
  telemetry::PowerFlowTracer tracer_;

  std::vector<EventSlot> slots_;
  mutable std::vector<double> merged_turnaround_;
  mutable std::vector<TransferEvent> merged_releases_;
  mutable std::vector<TransferEvent> merged_applies_;
  telemetry::Histogram turnaround_hist_;
  telemetry::Counter timeouts_;
  telemetry::Gauge in_flight_watts_;
  telemetry::Gauge stranded_watts_;
  telemetry::Counter duplicates_dropped_;
  telemetry::Gauge duplicate_watts_dropped_;
  telemetry::Counter unknown_txn_grants_;
  telemetry::Counter federated_requests_;
  telemetry::Counter federated_transfers_;
  telemetry::Gauge federated_watts_moved_;
  telemetry::Counter requests_sent_;
  telemetry::Counter decider_steps_;
  telemetry::Gauge pending_events_high_water_;
  /// Reclaim tags per dead node (few incarnations outstanding at once,
  /// so a flat scan beats a map — and each node's row is touched only by
  /// contexts that may legally do so, see class comment).
  std::vector<std::vector<ReclaimTag>> reclaim_tags_;
  telemetry::Gauge watts_reclaimed_;
  telemetry::Counter reclaims_;
  telemetry::Counter nodes_suspected_;
  telemetry::Counter false_suspicions_;
  telemetry::Counter nodes_declared_dead_;
};

/// Redistribution-time analysis for the scale study (§4.5): given the
/// metrics of a completion-burst run, compute the time to shift the given
/// fraction of the burst's released power.
struct RedistributionResult {
  double available_watts = 0.0;   ///< released by burst nodes after t0
  double shifted_watts = 0.0;     ///< applied via transactions after t0
  /// Time from the burst until `fraction` of available was applied;
  /// empty if never reached within the run.
  std::optional<double> time_to_fraction_s;
};

RedistributionResult analyze_redistribution(const ClusterMetrics& metrics,
                                            common::Ticks burst_at,
                                            double fraction);

}  // namespace penelope::cluster
