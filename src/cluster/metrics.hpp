// Cluster-wide measurement: everything the paper's evaluation reports is
// computed from the event streams collected here.
//
//   * turnaround time — per-transaction send→grant latency (Figures 7, 8)
//   * redistribution timeline — timestamped watts applied to caps through
//     transactions, against the excess released by a completion burst
//     (Figures 4, 5, 6)
//   * conservation accounting — grants in flight and watts stranded by
//     dropped messages or dead nodes, so the system-cap invariant can be
//     audited at any instant
//
// Counters and gauges live in a telemetry::MetricsRegistry so the same
// snapshot that backs these accessors can be exported as Prometheus text
// or Perfetto counter tracks. The embedded FlightRecorder (off unless
// ClusterConfig::flight_recorder_capacity enables it) journals per-
// transaction lifecycle events for the same run.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "common/units.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/registry.hpp"

namespace penelope::cluster {

struct TransferEvent {
  common::Ticks at = 0;
  double watts = 0.0;
  int node = -1;
};

class ClusterMetrics {
 public:
  ClusterMetrics();

  ClusterMetrics(const ClusterMetrics&) = delete;
  ClusterMetrics& operator=(const ClusterMetrics&) = delete;

  /// --- turnaround -------------------------------------------------------
  void record_turnaround(common::Ticks sent_at, common::Ticks resolved_at);
  void record_timeout() { timeouts_.inc(); }

  const std::vector<double>& turnaround_ms() const { return turnaround_ms_; }
  std::uint64_t timeouts() const { return timeouts_.value(); }

  /// --- redistribution ---------------------------------------------------
  /// Watts released by a node lowering its cap (donation into a pool or
  /// to the server).
  void record_release(common::Ticks at, double watts, int node);
  /// Watts applied to a node's cap through a transaction (peer grant,
  /// server grant, or local pool take).
  void record_apply(common::Ticks at, double watts, int node);

  const std::vector<TransferEvent>& releases() const { return releases_; }
  const std::vector<TransferEvent>& applies() const { return applies_; }

  /// --- conservation accounting -----------------------------------------
  /// A grant of `watts` left a pool/server and is now in a message.
  void grant_departed(double watts) { in_flight_watts_.add(watts); }
  /// The grant arrived and was applied/banked.
  void grant_arrived(double watts) { in_flight_watts_.add(-watts); }
  /// The grant (or donation) was lost: dropped packet or dead recipient.
  void watts_stranded(double watts) {
    in_flight_watts_.add(-watts);
    stranded_watts_.add(watts);
  }
  /// A donation left a client for the central server.
  void donation_departed(double watts) { in_flight_watts_.add(watts); }
  void donation_arrived(double watts) { in_flight_watts_.add(-watts); }

  double in_flight_watts() const { return in_flight_watts_.value(); }
  double stranded_watts() const { return stranded_watts_.value(); }

  /// A redelivered copy of an already-applied message was dropped by the
  /// receiver's TxnWindow. No ledger movement: the first copy did all the
  /// accounting, and a duplicate carries no power of its own.
  void record_duplicate_drop(double watts) {
    duplicates_dropped_.inc();
    duplicate_watts_dropped_.add(watts);
  }
  std::uint64_t duplicates_dropped() const {
    return duplicates_dropped_.value();
  }
  double duplicate_watts_dropped() const {
    return duplicate_watts_dropped_.value();
  }

  /// A grant arrived for a transaction the receiver has no record of
  /// (neither outstanding nor timed-out-stale). Its watts were stranded
  /// rather than applied.
  void record_unknown_txn() { unknown_txn_grants_.inc(); }
  std::uint64_t unknown_txn_grants() const {
    return unknown_txn_grants_.value();
  }

  /// --- membership and epoch-guarded reclamation ------------------------
  /// Watts a crashing node surrendered (cap above safe-min, drained
  /// pool). They were live — not in flight — so this only moves them
  /// into the stranded ledger, tagged (node, incarnation) so exactly one
  /// later observer can reclaim them.
  void strand_residue_against(std::int32_t node, std::uint32_t incarnation,
                              double watts) {
    if (watts <= 0.0) return;
    stranded_watts_.add(watts);
    reclaimable_[{node, incarnation}] += watts;
  }
  /// An in-flight message died against a dead node: the usual strand
  /// bookkeeping, plus the reclaim tag.
  void strand_in_flight_against(std::int32_t node,
                                std::uint32_t incarnation, double watts) {
    if (watts <= 0.0) return;
    watts_stranded(watts);
    reclaimable_[{node, incarnation}] += watts;
  }
  /// Consume the (node, incarnation) reclaim tag exactly once: the tag's
  /// watts leave the stranded ledger and the caller must put them back
  /// into circulation (a pool deposit or the server cache) atomically in
  /// sim time. Returns 0 for an unknown or already-consumed tag, which
  /// is what makes double reclamation (two peers declaring the same
  /// death, or a ghost of an old incarnation) impossible.
  double reclaim_from(std::int32_t node, std::uint32_t incarnation) {
    auto it = reclaimable_.find({node, incarnation});
    if (it == reclaimable_.end()) return 0.0;
    double watts = it->second;
    reclaimable_.erase(it);
    stranded_watts_.add(-watts);
    watts_reclaimed_.add(watts);
    reclaims_.inc();
    return watts;
  }
  /// Watts still tagged reclaimable (subset of stranded_watts()).
  double reclaimable_watts() const {
    double sum = 0.0;
    for (const auto& [key, watts] : reclaimable_) sum += watts;
    return sum;
  }
  double watts_reclaimed() const { return watts_reclaimed_.value(); }
  std::uint64_t reclaims() const { return reclaims_.value(); }

  void record_suspicion() { nodes_suspected_.inc(); }
  std::uint64_t nodes_suspected() const { return nodes_suspected_.value(); }
  void record_false_suspicion() { false_suspicions_.inc(); }
  std::uint64_t false_suspicions() const {
    return false_suspicions_.value();
  }
  void record_declared_dead() { nodes_declared_dead_.inc(); }
  std::uint64_t nodes_declared_dead() const {
    return nodes_declared_dead_.value();
  }

  /// --- misc counters ----------------------------------------------------
  void record_request_sent() { requests_sent_.inc(); }
  std::uint64_t requests_sent() const { return requests_sent_.value(); }

  /// --- telemetry --------------------------------------------------------
  telemetry::MetricsRegistry& registry() { return registry_; }
  const telemetry::MetricsRegistry& registry() const { return registry_; }
  telemetry::FlightRecorder& recorder() { return recorder_; }
  const telemetry::FlightRecorder& recorder() const { return recorder_; }

 private:
  // Registry before handles: handles point into registry cells.
  telemetry::MetricsRegistry registry_;
  telemetry::FlightRecorder recorder_;

  std::vector<double> turnaround_ms_;
  telemetry::Histogram turnaround_hist_;
  telemetry::Counter timeouts_;
  std::vector<TransferEvent> releases_;
  std::vector<TransferEvent> applies_;
  telemetry::Gauge in_flight_watts_;
  telemetry::Gauge stranded_watts_;
  telemetry::Counter duplicates_dropped_;
  telemetry::Gauge duplicate_watts_dropped_;
  telemetry::Counter unknown_txn_grants_;
  telemetry::Counter requests_sent_;
  /// Reclaim tags: (dead node, incarnation) -> watts stranded against
  /// it. std::map for deterministic reclaimable_watts() iteration.
  std::map<std::pair<std::int32_t, std::uint32_t>, double> reclaimable_;
  telemetry::Gauge watts_reclaimed_;
  telemetry::Counter reclaims_;
  telemetry::Counter nodes_suspected_;
  telemetry::Counter false_suspicions_;
  telemetry::Counter nodes_declared_dead_;
};

/// Redistribution-time analysis for the scale study (§4.5): given the
/// metrics of a completion-burst run, compute the time to shift the given
/// fraction of the burst's released power.
struct RedistributionResult {
  double available_watts = 0.0;   ///< released by burst nodes after t0
  double shifted_watts = 0.0;     ///< applied via transactions after t0
  /// Time from the burst until `fraction` of available was applied;
  /// empty if never reached within the run.
  std::optional<double> time_to_fraction_s;
};

RedistributionResult analyze_redistribution(const ClusterMetrics& metrics,
                                            common::Ticks burst_at,
                                            double fraction);

}  // namespace penelope::cluster
