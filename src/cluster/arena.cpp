#include "cluster/arena.hpp"

#include <algorithm>
#include <functional>

#include "common/check.hpp"
#include "core/protocol.hpp"
#include "hierarchy/protocol.hpp"

namespace penelope::cluster {

namespace {
/// Watts below this are treated as zero by the federation planes: they
/// are float dust that would otherwise generate real messages.
constexpr double kWattDust = 1e-9;
}  // namespace

FederatedArena::FederatedArena(
    const ArenaConfig& config, const hierarchy::FederationTopology& topo,
    net::Network& net, ClusterMetrics& metrics, SimOf sim_of,
    std::vector<workload::WorkloadProfile> profiles,
    OnComplete on_complete)
    : config_(config),
      topo_(topo),
      net_(net),
      metrics_(metrics),
      sim_of_(std::move(sim_of)),
      on_complete_(std::move(on_complete)),
      model_(config.perf),
      base_(static_cast<net::NodeId>(config.n_nodes)) {
  const auto n = static_cast<std::size_t>(config_.n_nodes);
  PEN_CHECK(config_.n_nodes > 0);
  PEN_CHECK(topo_.n_nodes == config_.n_nodes);
  PEN_CHECK(profiles.size() == n);
  PEN_CHECK(config_.safe_range.contains(config_.initial_cap_watts));
  if (config_.federation.period <= 0)
    config_.federation.period = config_.period;
  if (config_.request_timeout <= 0)
    config_.request_timeout = config_.period;

  cap_.assign(n, config_.initial_cap_watts);
  energy_j_.assign(n, 0.0);
  anchor_at_.assign(n, 0);
  demand_.assign(n, 0.0);
  delivered_.assign(n, 0.0);
  speed_.assign(n, 0.0);
  phase_first_.resize(n);
  phase_count_.resize(n);
  phase_idx_.assign(n, 0);
  work_left_.assign(n, 0.0);
  work_done_.assign(n, 0.0);
  work_total_.assign(n, 0.0);
  done_.assign(n, 0);
  crashed_.assign(n, 0);
  incarnation_.assign(n, 1);
  outstanding_txn_.assign(n, 0);
  outstanding_sent_at_.assign(n, 0);
  wake_at_.assign(n, 0);
  req_seq_.assign(n, 0);
  push_seq_.assign(n, 0);
  dedup_.assign(n * kDedupRing, 0);
  dedup_next_.assign(n, 0);

  std::size_t total_phases = 0;
  for (const auto& profile : profiles) total_phases += profile.phases.size();
  phase_demand_.reserve(total_phases);
  phase_work_.reserve(total_phases);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& phases = profiles[i].phases;
    PEN_CHECK(!phases.empty());
    phase_first_[i] = static_cast<std::int32_t>(phase_demand_.size());
    phase_count_[i] = static_cast<std::int32_t>(phases.size());
    for (const auto& phase : phases) {
      phase_demand_.push_back(phase.demand_watts);
      phase_work_.push_back(phase.work_seconds);
      work_total_[i] += phase.work_seconds;
    }
    work_left_[i] = phase_work_[static_cast<std::size_t>(phase_first_[i])];
    refresh_rate(static_cast<int>(i));
  }

  const auto pools = static_cast<std::size_t>(topo_.total_pools);
  pool_available_.assign(pools, 0.0);
  pool_deficit_accum_.assign(pools, 0.0);
  pool_pending_up_.assign(pools, 0.0);
  pool_last_report_seq_.assign(pools, 0);
  pool_window_.reserve(pools);
  for (std::size_t p = 0; p < pools; ++p) pool_window_.emplace_back();
  pool_req_seq_.assign(pools, 0);
  pool_push_seq_.assign(pools, 0);
  pool_inflow_flow_.assign(pools, 0);
  pool_deficit_flow_.assign(pools, 0);
  pool_pending_flow_.assign(pools, 0);

  // Endpoints for every node; the decider itself runs from the epoch
  // sweeps below, not from per-node timers.
  for (int i = 0; i < config_.n_nodes; ++i) {
    net_.register_endpoint(i, [this, i](const net::Message& msg) {
      handle_node_message(i, msg);
    });
  }

  // Slices: shard_of is contiguous monotone, so each engine owns exactly
  // one run of NodeIds (the serial engine owns all of them). One
  // periodic sweep-lane event per slice replaces the old N periodic
  // node timers; every slice sweeps at ticks 1, 1+period, 1+2*period, …
  // so both engines fire the same epochs at the same virtual times.
  for (int i = 0; i < config_.n_nodes; ++i) {
    sim::Simulator* engine = &sim_of_(i);
    if (slices_.empty() || slices_.back().sim != engine) {
      for (const Slice& prior : slices_) PEN_CHECK(prior.sim != engine);
      Slice sl;
      sl.first = i;
      sl.last = i + 1;
      sl.sim = engine;
      slices_.push_back(std::move(sl));
    } else {
      slices_.back().last = i + 1;
    }
  }
  for (std::size_t si = 0; si < slices_.size(); ++si) {
    Slice& sl = slices_[si];
    const auto len = static_cast<std::size_t>(sl.last - sl.first);
    // Everyone starts dirty: the first sweep evaluates the whole
    // population, after which equilibrium nodes drop out.
    sl.dirty.assign((len + 63) / 64, ~std::uint64_t{0});
    if (len % 64 != 0)
      sl.dirty.back() = ~std::uint64_t{0} >> (64 - (len % 64));
    sl.wakes.reserve(std::min<std::size_t>(len, 1024));
    sl.sim->schedule_periodic_sweep(
        1, config_.period,
        [this, si](common::Ticks now) { sweep(si, now); });
  }
  for (int p = 0; p < topo_.total_pools; ++p) {
    net::NodeId pid = pool_node_id(p);
    net_.register_endpoint(pid, [this, p](const net::Message& msg) {
      handle_pool_message(p, msg);
    });
    sim_of_(pid).schedule_periodic(
        config_.federation.period, config_.federation.period,
        [this, p](common::Ticks now) { pool_tick(p, now); });
  }
}

void FederatedArena::refresh_rate(int node) {
  auto i = static_cast<std::size_t>(node);
  if (done_[i] || crashed_[i]) {
    demand_[i] = 0.0;
    delivered_[i] = 0.0;
    speed_[i] = 0.0;
    return;
  }
  double demand = phase_demand_[static_cast<std::size_t>(phase_first_[i] +
                                                         phase_idx_[i])];
  double delivered = std::min(cap_[i], demand);
  demand_[i] = demand;
  delivered_[i] = delivered;
  speed_[i] = model_.speed(delivered, demand);
}

void FederatedArena::materialize(int node, common::Ticks t) {
  auto i = static_cast<std::size_t>(node);
  common::Ticks a = anchor_at_[i];
  if (t <= a) return;
  if (crashed_[i] || done_[i]) {
    anchor_at_[i] = t;
    return;
  }
  // Cross every phase boundary <= t. Each crossing is a pure function
  // of the previous anchor state (never of t), so crossing them one
  // sweep at a time (brute force) or all at once (lazy) produces
  // bit-identical columns — the active-set parity invariant. A starved
  // phase (speed 0) has no boundary: the anchor freezes there and
  // energy accrues in closed form at the cached delivered rate.
  double sp = speed_[i];
  while (sp > 0.0) {
    double phase_dt = work_left_[i] / sp;
    common::Ticks end_at = a + common::from_seconds(phase_dt);
    if (end_at > t) break;
    energy_j_[i] += delivered_[i] * phase_dt;
    work_done_[i] += work_left_[i];
    work_left_[i] = 0.0;
    a = end_at;
    if (++phase_idx_[i] >= phase_count_[i]) {
      done_[i] = 1;
      refresh_rate(node);
      anchor_at_[i] = a;
      if (on_complete_) on_complete_(node, a);
      return;
    }
    work_left_[i] = phase_work_[static_cast<std::size_t>(phase_first_[i] +
                                                         phase_idx_[i])];
    refresh_rate(node);
    sp = speed_[i];
  }
  anchor_at_[i] = a;
}

void FederatedArena::reanchor(int node, common::Ticks t) {
  materialize(node, t);
  auto i = static_cast<std::size_t>(node);
  if (!crashed_[i] && !done_[i] && t > anchor_at_[i]) {
    double dt = common::to_seconds(t - anchor_at_[i]);
    energy_j_[i] += delivered_[i] * dt;
    double w = speed_[i] * dt;
    if (w > 0.0) {
      if (w > work_left_[i]) w = work_left_[i];  // float guard
      work_left_[i] -= w;
      work_done_[i] += w;
    }
  }
  anchor_at_[i] = t;
}

FederatedArena::EvalView FederatedArena::eval(int node,
                                              common::Ticks t) const {
  auto i = static_cast<std::size_t>(node);
  EvalView v;
  v.energy_j = energy_j_[i];
  v.work_done = work_done_[i];
  if (crashed_[i] || done_[i]) return v;
  // Read-only mirror of materialize + the reanchor partial fold: same
  // expressions in the same order over local copies, so a query returns
  // exactly what a mutating advance to t would have stored.
  common::Ticks a = anchor_at_[i];
  double wl = work_left_[i];
  std::int32_t idx = phase_idx_[i];
  double delivered = delivered_[i];
  double sp = speed_[i];
  while (sp > 0.0) {
    double phase_dt = wl / sp;
    common::Ticks end_at = a + common::from_seconds(phase_dt);
    if (end_at > t) break;
    v.energy_j += delivered * phase_dt;
    v.work_done += wl;
    a = end_at;
    if (++idx >= phase_count_[i]) return v;  // virtually done: power 0
    auto slot = static_cast<std::size_t>(phase_first_[i] + idx);
    wl = phase_work_[slot];
    double demand = phase_demand_[slot];
    delivered = std::min(cap_[i], demand);
    sp = model_.speed(delivered, demand);
  }
  if (t > a) {
    double dt = common::to_seconds(t - a);
    v.energy_j += delivered * dt;
    double w = sp * dt;
    if (w > 0.0) {
      if (w > wl) w = wl;
      v.work_done += w;
    }
  }
  v.power = delivered;
  return v;
}

double FederatedArena::node_demand(int node) const {
  return demand_[static_cast<std::size_t>(node)];
}

double FederatedArena::node_power(int node, common::Ticks now) const {
  return eval(node, now).power;
}

double FederatedArena::node_fraction_complete(int node,
                                              common::Ticks now) const {
  auto i = static_cast<std::size_t>(node);
  if (done_[i]) return 1.0;
  if (work_total_[i] <= 0.0) return 0.0;
  return std::min(1.0, eval(node, now).work_done / work_total_[i]);
}

double FederatedArena::cap_total() const {
  double total = 0.0;
  for (double cap : cap_) total += cap;
  return total;
}

double FederatedArena::pool_total() const {
  double total = 0.0;
  for (double avail : pool_available_) total += avail;
  return total;
}

double FederatedArena::total_energy_joules(common::Ticks now) const {
  // Node-index order, independent of slice layout: the summation order
  // (and hence the float result) is identical at any sim_jobs and in
  // both sweep modes.
  double total = 0.0;
  for (int i = 0; i < config_.n_nodes; ++i) total += eval(i, now).energy_j;
  return total;
}

FederatedArena::NodeSample FederatedArena::sample_node(
    int node, common::Ticks now) const {
  auto i = static_cast<std::size_t>(node);
  EvalView v = eval(node, now);
  return NodeSample{cap_[i], demand_[i], v.power, v.energy_j};
}

bool FederatedArena::node_in_active_set(int node) const {
  const Slice& s = slices_[slice_index_of(node)];
  auto rel = static_cast<std::size_t>(node - s.first);
  return (s.dirty[rel >> 6] >> (rel & 63)) & 1;
}

int FederatedArena::active_set_size() const {
  int count = 0;
  for (const Slice& s : slices_)
    for (std::uint64_t word : s.dirty)
      count += static_cast<int>(__builtin_popcountll(word));
  return count;
}

std::size_t FederatedArena::slice_index_of(int node) const {
  std::size_t s = 0;
  while (node >= slices_[s].last) ++s;
  return s;
}

void FederatedArena::mark_dirty(int node) {
  Slice& s = slices_[slice_index_of(node)];
  auto rel = static_cast<std::size_t>(node - s.first);
  s.dirty[rel >> 6] |= std::uint64_t{1} << (rel & 63);
}

void FederatedArena::schedule_wake(Slice& s, int node, common::Ticks now) {
  auto i = static_cast<std::size_t>(node);
  if (done_[i] || crashed_[i]) return;
  common::Ticks wake = 0;
  if (speed_[i] > 0.0) {
    wake = anchor_at_[i] + common::from_seconds(work_left_[i] / speed_[i]);
    if (wake <= now) wake = now + 1;  // rounding guard
  }
  if (outstanding_txn_[i] != 0) {
    common::Ticks timeout_at =
        outstanding_sent_at_[i] + config_.request_timeout;
    if (wake == 0 || timeout_at < wake) wake = timeout_at;
  }
  if (wake == 0) return;  // nothing will ever change on its own
  // An earlier-or-equal wake already queued covers this one: it fires
  // first, the tick re-evaluates, and any later boundary re-queues then.
  if (wake_at_[i] != 0 && wake_at_[i] <= wake) return;
  wake_at_[i] = wake;
  s.wakes.push_back({wake, static_cast<std::int32_t>(node)});
  std::push_heap(s.wakes.begin(), s.wakes.end(), std::greater<>{});
}

void FederatedArena::sweep(std::size_t slice, common::Ticks now) {
  Slice& s = slices_[slice];
  // One progress beat per slice epoch, even when every node is at
  // equilibrium (an idle-but-deciding arena is alive, not wedged).
  metrics_.record_decider_step();
  if (!config_.active_set) {
    // Brute force: tick every node in index order. Kept branch-light and
    // prefetched — this is also the first-epoch shape of the active-set
    // path, and the baseline the parity suite compares against.
    for (int node = s.first; node < s.last; ++node) {
      if (node + 16 < s.last) {
        auto ahead = static_cast<std::size_t>(node + 16);
        __builtin_prefetch(&cap_[ahead]);
        __builtin_prefetch(&work_left_[ahead]);
        __builtin_prefetch(&outstanding_txn_[ahead]);
      }
      node_tick(node, now, s);
    }
    return;
  }
  // Wakes due by now re-enter the active set. Pop order does not matter
  // (set-union into the bitset); stale entries — superseded by an
  // earlier wake that already fired and re-evaluated the node — are
  // identified by wake_at_ mismatch and dropped.
  while (!s.wakes.empty() && s.wakes.front().at <= now) {
    std::pop_heap(s.wakes.begin(), s.wakes.end(), std::greater<>{});
    Slice::Wake w = s.wakes.back();
    s.wakes.pop_back();
    auto i = static_cast<std::size_t>(w.node);
    if (wake_at_[i] != w.at) continue;
    wake_at_[i] = 0;
    auto rel = static_cast<std::size_t>(w.node - s.first);
    s.dirty[rel >> 6] |= std::uint64_t{1} << (rel & 63);
  }
  // Walk set bits in index order. Words are claimed (zeroed) before
  // their ticks run so a tick that acted can re-mark itself dirty for
  // the next epoch.
  const int n_words = static_cast<int>(s.dirty.size());
  for (int w = 0; w < n_words; ++w) {
    std::uint64_t bits = s.dirty[static_cast<std::size_t>(w)];
    if (bits == 0) continue;
    s.dirty[static_cast<std::size_t>(w)] = 0;
    const int word_base = s.first + w * 64;
    do {
      const int bit = __builtin_ctzll(bits);
      bits &= bits - 1;
      if (bits != 0) {
        auto next = static_cast<std::size_t>(word_base +
                                             __builtin_ctzll(bits));
        __builtin_prefetch(&cap_[next]);
        __builtin_prefetch(&work_left_[next]);
      }
      node_tick(word_base + bit, now, s);
    } while (bits != 0);
  }
}

bool FederatedArena::first_sighting(int node, std::uint64_t txn) {
  if (txn == core::kNoTxn) return true;
  auto* ring = &dedup_[static_cast<std::size_t>(node) * kDedupRing];
  for (int k = 0; k < kDedupRing; ++k) {
    if (ring[k] == txn) return false;
  }
  auto i = static_cast<std::size_t>(node);
  ring[dedup_next_[i]] = txn;
  dedup_next_[i] =
      static_cast<std::uint8_t>((dedup_next_[i] + 1) % kDedupRing);
  return true;
}

void FederatedArena::push_to_leaf(int node, double watts) {
  if (watts <= kWattDust) return;
  auto i = static_cast<std::size_t>(node);
  metrics_.grant_departed(watts);
  std::uint64_t txn = core::make_txn_id(node, 1, ++push_seq_[i]);
  net::NodeId leaf = pool_node_id(topo_.leaf_of_node[i]);
  auto& tracer = metrics_.tracer();
  if (tracer.enabled()) {
    // A push mints a new flow: these watts begin their journey here.
    tracer.bind(txn, txn);
    tracer.record(sim_of_(node).now(), txn, telemetry::FlowHopKind::kSource,
                  node, static_cast<std::int32_t>(leaf), watts, "push");
  }
  net_.send(node, leaf, core::PowerPush{watts, txn});
}

void FederatedArena::node_tick(int node, common::Ticks now, Slice& s) {
  auto i = static_cast<std::size_t>(node);
  if (crashed_[i]) return;  // stays out of the active set; recover re-marks
  materialize(node, now);

  // Request timeouts fold into the sweep: a timestamp comparison here
  // replaces the old schedule_after/cancel pair (two heap operations
  // per request). Granularity is the sweep period — a grant landing
  // after the deadline but before this epoch's sweep still resolves as
  // a turnaround, which both modes and every shard shape agree on.
  if (outstanding_txn_[i] != 0 &&
      now - outstanding_sent_at_[i] >= config_.request_timeout) {
    outstanding_txn_[i] = 0;
    metrics_.record_timeout();
  }

  const double demand = demand_[i];
  const double measured = delivered_[i];  // = min(cap, demand) while live
  double safe_min = config_.safe_range.min_watts;
  bool acted = false;
  if (cap_[i] - measured > config_.epsilon_watts) {
    // Excess above the sense band: shed down to measured + epsilon
    // (never below the safe floor) and bank the freed watts in the leaf.
    // Shedding never lowers cap below demand (new_cap >= measured +
    // epsilon and measured == demand here), so delivered/speed caches
    // stay valid without a refresh.
    double new_cap = std::max(safe_min, measured + config_.epsilon_watts);
    double freed = cap_[i] - new_cap;
    if (freed > kWattDust) {
      cap_[i] = new_cap;
      metrics_.record_release(now, freed, node);
      push_to_leaf(node, freed);
      acted = true;
    }
  } else if (demand > cap_[i] + config_.epsilon_watts &&
             outstanding_txn_[i] == 0) {
    double want = std::min(demand, config_.safe_range.max_watts) - cap_[i];
    if (want > kWattDust) {
      std::uint64_t txn = core::make_txn_id(node, 0, ++req_seq_[i]);
      outstanding_txn_[i] = txn;
      outstanding_sent_at_[i] = now;
      metrics_.record_request_sent();
      net_.send(node, pool_node_id(topo_.leaf_of_node[i]),
                core::PowerRequest{cap_[i] < config_.initial_cap_watts,
                                   want, txn});
      acted = true;
    }
  }

  if (!config_.active_set) return;
  if (acted) {
    // Something moved: stay in the active set and re-evaluate next epoch.
    auto rel = static_cast<std::size_t>(node - s.first);
    s.dirty[rel >> 6] |= std::uint64_t{1} << (rel & 63);
  } else {
    schedule_wake(s, node, now);
  }
}

void FederatedArena::handle_node_message(int node,
                                         const net::Message& msg) {
  const auto* grant = msg.as<core::PowerGrant>();
  if (grant == nullptr) return;  // nodes only ever receive grants
  auto i = static_cast<std::size_t>(node);
  common::Ticks now = sim_of_(node).now();
  if (!first_sighting(node, grant->txn_id)) {
    metrics_.record_duplicate_drop(grant->watts);
    return;
  }
  if (grant->watts > 0.0) metrics_.grant_arrived(grant->watts);
  if (outstanding_txn_[i] == grant->txn_id && grant->txn_id != 0) {
    outstanding_txn_[i] = 0;
    metrics_.record_turnaround(outstanding_sent_at_[i], now);
  } else {
    // Late grant after its timeout was recorded. Unlike the flat path
    // (which strands unmatched watts), the arena banks them:
    // first_sighting already guarantees at-most-once, so applying keeps
    // the watts in circulation without any double-count risk.
    metrics_.record_unknown_txn();
  }
  // Protocol state changed either way (the node may want to re-request
  // or shed next epoch), so it re-enters the active set.
  mark_dirty(node);
  if (grant->watts <= kWattDust) return;
  reanchor(node, now);
  double room = config_.safe_range.max_watts - cap_[i];
  double applied = std::min(grant->watts, std::max(0.0, room));
  if (applied > kWattDust) {
    cap_[i] += applied;
    refresh_rate(node);  // cap rose: delivered/speed may rise with it
    metrics_.record_apply(now, applied, node);
    auto& tracer = metrics_.tracer();
    if (tracer.enabled()) {
      tracer.record(now, tracer.flow_of(grant->txn_id),
                    telemetry::FlowHopKind::kSink, node,
                    static_cast<std::int32_t>(msg.src), applied, "apply");
    }
  }
  double overflow = grant->watts - applied;
  if (overflow > kWattDust) push_to_leaf(node, overflow);
}

void FederatedArena::handle_pool_message(int pool,
                                         const net::Message& msg) {
  auto p = static_cast<std::size_t>(pool);
  net::NodeId pid = pool_node_id(pool);
  auto& tracer = metrics_.tracer();
  if (const auto* req = msg.as<core::PowerRequest>()) {
    if (!pool_window_[p].insert(req->txn_id)) {
      metrics_.record_duplicate_drop(0.0);
      return;
    }
    double granted = std::min(req->alpha_watts, pool_available_[p]);
    if (granted < 0.0) granted = 0.0;
    pool_available_[p] -= granted;
    if (granted > 0.0) metrics_.grant_departed(granted);
    if (tracer.enabled() && granted > 0.0) {
      // The grant inherits the flow that last fed this pool, and the
      // node-side sink resolves it through the txn binding (PowerGrant
      // carries no flow on the wire).
      std::uint64_t flow = pool_inflow_flow_[p];
      tracer.bind(req->txn_id, flow);
      tracer.record(sim_of_(pid).now(), flow,
                    telemetry::FlowHopKind::kStep,
                    static_cast<std::int32_t>(pid),
                    static_cast<std::int32_t>(msg.src), granted, "grant");
    }
    // Always answer, even empty-handed: the requester resolves by grant
    // instead of timeout, and the unmet remainder joins the aggregated
    // deficit this pool reports upward.
    net_.send(pid, msg.src, core::PowerGrant{granted, req->txn_id, -1});
    double unmet = req->alpha_watts - granted;
    if (unmet > kWattDust) {
      pool_deficit_accum_[p] += unmet;
      // Demand-side flow: remember the first unmet request so the
      // deficit report up the tree can name what it is asking for.
      if (tracer.enabled() && pool_deficit_flow_[p] == 0)
        pool_deficit_flow_[p] = req->txn_id;
    }
  } else if (const auto* push = msg.as<core::PowerPush>()) {
    if (!pool_window_[p].insert(push->txn_id)) {
      metrics_.record_duplicate_drop(push->watts);
      return;
    }
    metrics_.grant_arrived(push->watts);
    pool_available_[p] += push->watts;
    if (tracer.enabled()) {
      std::uint64_t flow = tracer.flow_of(push->txn_id);
      if (flow != 0) pool_inflow_flow_[p] = flow;
      tracer.record(sim_of_(pid).now(), flow,
                    telemetry::FlowHopKind::kStep,
                    static_cast<std::int32_t>(pid),
                    static_cast<std::int32_t>(msg.src), push->watts,
                    "bank");
    }
  } else if (const auto* report = msg.as<hierarchy::FederatedRequest>()) {
    // Aggregated child deficit: overwrite, never accumulate (the child
    // re-derives its whole deficit every period). The per-child seq
    // guard drops reordered stale reports; duplicates are idempotent.
    int child = static_cast<int>(msg.src) - base_;
    PEN_CHECK(child >= 0 && child < topo_.total_pools);
    std::uint64_t seq = core::txn_seq(report->txn_id);
    auto c = static_cast<std::size_t>(child);
    if (seq <= pool_last_report_seq_[c]) return;
    pool_last_report_seq_[c] = seq;
    pool_pending_up_[c] = report->deficit_watts;
    if (tracer.enabled()) {
      pool_pending_flow_[c] = report->flow;
      tracer.record(sim_of_(pid).now(), report->flow,
                    telemetry::FlowHopKind::kStep,
                    static_cast<std::int32_t>(pid),
                    static_cast<std::int32_t>(msg.src),
                    report->deficit_watts, "deficit_in");
    }
  } else if (const auto* xfer = msg.as<hierarchy::FederatedTransfer>()) {
    if (!pool_window_[p].insert(xfer->txn_id)) {
      metrics_.record_duplicate_drop(xfer->watts);
      return;
    }
    metrics_.grant_arrived(xfer->watts);
    pool_available_[p] += xfer->watts;
    if (tracer.enabled()) {
      if (xfer->flow != 0) pool_inflow_flow_[p] = xfer->flow;
      tracer.record(sim_of_(pid).now(), xfer->flow,
                    telemetry::FlowHopKind::kStep,
                    static_cast<std::int32_t>(pid),
                    static_cast<std::int32_t>(msg.src), xfer->watts,
                    "xfer_in");
    }
  }
}

void FederatedArena::pool_tick(int pool, common::Ticks now) {
  auto p = static_cast<std::size_t>(pool);
  net::NodeId pid = pool_node_id(pool);
  auto& tracer = metrics_.tracer();

  // Serve children's reported deficits in child-index order (the
  // deterministic tie-break), one aggregated transfer per needy child.
  double unmet_children = 0.0;
  std::uint64_t unmet_flow = 0;  // first still-hungry child's demand flow
  for (int child : topo_.children[p]) {
    auto c = static_cast<std::size_t>(child);
    double want = pool_pending_up_[c];
    pool_pending_up_[c] = 0.0;  // children re-report every period
    std::uint64_t child_flow = pool_pending_flow_[c];
    pool_pending_flow_[c] = 0;
    if (want <= kWattDust) continue;
    double give = std::min(want, pool_available_[p]);
    if (give > kWattDust) {
      pool_available_[p] -= give;
      metrics_.grant_departed(give);
      metrics_.record_federated_transfer(give);
      std::uint64_t txn = core::make_txn_id(pid, 1, ++pool_push_seq_[p]);
      std::uint64_t flow = 0;
      if (tracer.enabled()) {
        flow = pool_inflow_flow_[p] != 0 ? pool_inflow_flow_[p] : txn;
        tracer.record(now, flow, telemetry::FlowHopKind::kStep,
                      static_cast<std::int32_t>(pid),
                      static_cast<std::int32_t>(pool_node_id(child)),
                      give, "xfer_down");
      }
      net_.send(pid, pool_node_id(child),
                hierarchy::FederatedTransfer{give, txn, flow});
    }
    if (want - std::max(give, 0.0) > kWattDust && unmet_flow == 0)
      unmet_flow = child_flow;
    unmet_children += want - std::max(give, 0.0);
  }

  // Residual deficit (leaves: unmet node requests; inner: unmet child
  // reports) federates up as ONE aggregated report; otherwise surplus
  // above the low-water buffer federates up as ONE transfer. The root
  // holds its surplus as the global buffer.
  double deficit =
      topo_.is_leaf(pool) ? pool_deficit_accum_[p] : unmet_children;
  pool_deficit_accum_[p] = 0.0;
  std::uint64_t deficit_flow =
      topo_.is_leaf(pool) ? pool_deficit_flow_[p] : unmet_flow;
  pool_deficit_flow_[p] = 0;
  deficit = std::max(0.0, deficit - pool_available_[p]);
  int up = topo_.parent[p];
  if (up < 0) return;
  if (deficit > kWattDust) {
    metrics_.record_federated_request();
    std::uint64_t txn = core::make_txn_id(pid, 0, ++pool_req_seq_[p]);
    std::uint64_t flow = 0;
    if (tracer.enabled()) {
      // Leaves mint the demand flow from the first unmet node request
      // (falling back to the report txn); inner pools thread through
      // the first still-hungry child's flow.
      flow = deficit_flow != 0 ? deficit_flow : txn;
      tracer.record(now, flow,
                    deficit_flow != 0 ? telemetry::FlowHopKind::kStep
                                      : telemetry::FlowHopKind::kSource,
                    static_cast<std::int32_t>(pid),
                    static_cast<std::int32_t>(pool_node_id(up)), deficit,
                    "deficit_up");
    }
    net_.send(pid, pool_node_id(up),
              hierarchy::FederatedRequest{deficit, txn, flow});
  } else {
    double surplus =
        pool_available_[p] - config_.federation.low_water_watts;
    if (surplus > kWattDust) {
      pool_available_[p] -= surplus;
      metrics_.grant_departed(surplus);
      metrics_.record_federated_transfer(surplus);
      std::uint64_t txn = core::make_txn_id(pid, 1, ++pool_push_seq_[p]);
      std::uint64_t flow = 0;
      if (tracer.enabled()) {
        flow = pool_inflow_flow_[p] != 0 ? pool_inflow_flow_[p] : txn;
        tracer.record(now, flow, telemetry::FlowHopKind::kStep,
                      static_cast<std::int32_t>(pid),
                      static_cast<std::int32_t>(pool_node_id(up)), surplus,
                      "xfer_up");
      }
      net_.send(pid, pool_node_id(up),
                hierarchy::FederatedTransfer{surplus, txn, flow});
    }
  }
}

void FederatedArena::crash_node(int node, common::Ticks now) {
  auto i = static_cast<std::size_t>(node);
  if (crashed_[i]) return;
  reanchor(node, now);  // fold the partial segment at pre-crash rates
  crashed_[i] = 1;
  refresh_rate(node);  // rates to zero; ticks skip crashed nodes
  outstanding_txn_[i] = 0;  // any in-flight grant strands via the fabric
  double safe_min = config_.safe_range.min_watts;
  double residue = cap_[i] - safe_min;
  cap_[i] = safe_min;
  metrics_.strand_residue_against(node, incarnation_[i], residue);
  net_.fail_node(node);
}

void FederatedArena::recover_node(int node, common::Ticks now) {
  auto i = static_cast<std::size_t>(node);
  if (!crashed_[i]) return;
  reanchor(node, now);  // no-op accounting; resets the advance anchor
  crashed_[i] = 0;
  std::uint32_t prev = incarnation_[i]++;
  net_.recover_node(node);
  refresh_rate(node);  // live again at the phase it crashed in
  mark_dirty(node);    // re-enters the active set next epoch
  // Reclaim this node's own pre-crash residue (plus any grants that
  // died against it while down — the drop handler tags those with the
  // same incarnation). Exactly-once: the tag is consumed here or never.
  double leftover = metrics_.reclaim_from(node, prev);
  if (leftover <= kWattDust) return;
  double room = config_.safe_range.max_watts - cap_[i];
  double applied = std::min(leftover, std::max(0.0, room));
  if (applied > kWattDust) {
    cap_[i] += applied;
    refresh_rate(node);
    metrics_.record_apply(now, applied, node);
  }
  double overflow = leftover - applied;
  if (overflow > kWattDust) push_to_leaf(node, overflow);
}

}  // namespace penelope::cluster
