#include "cluster/arena.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "core/protocol.hpp"
#include "hierarchy/protocol.hpp"

namespace penelope::cluster {

namespace {
/// Watts below this are treated as zero by the federation planes: they
/// are float dust that would otherwise generate real messages.
constexpr double kWattDust = 1e-9;
}  // namespace

FederatedArena::FederatedArena(
    const ArenaConfig& config, const hierarchy::FederationTopology& topo,
    net::Network& net, ClusterMetrics& metrics, SimOf sim_of,
    std::vector<workload::WorkloadProfile> profiles,
    OnComplete on_complete)
    : config_(config),
      topo_(topo),
      net_(net),
      metrics_(metrics),
      sim_of_(std::move(sim_of)),
      on_complete_(std::move(on_complete)),
      model_(config.perf),
      base_(static_cast<net::NodeId>(config.n_nodes)) {
  const auto n = static_cast<std::size_t>(config_.n_nodes);
  PEN_CHECK(config_.n_nodes > 0);
  PEN_CHECK(topo_.n_nodes == config_.n_nodes);
  PEN_CHECK(profiles.size() == n);
  PEN_CHECK(config_.safe_range.contains(config_.initial_cap_watts));
  if (config_.federation.period <= 0)
    config_.federation.period = config_.period;
  if (config_.request_timeout <= 0)
    config_.request_timeout = config_.period;

  cap_.assign(n, config_.initial_cap_watts);
  energy_j_.assign(n, 0.0);
  last_advance_.assign(n, 0);
  phase_first_.resize(n);
  phase_count_.resize(n);
  phase_idx_.assign(n, 0);
  work_left_.assign(n, 0.0);
  work_done_.assign(n, 0.0);
  work_total_.assign(n, 0.0);
  done_.assign(n, 0);
  crashed_.assign(n, 0);
  incarnation_.assign(n, 1);
  outstanding_txn_.assign(n, 0);
  outstanding_sent_at_.assign(n, 0);
  timeout_event_.assign(n, sim::kInvalidEventId);
  req_seq_.assign(n, 0);
  push_seq_.assign(n, 0);
  dedup_.assign(n * kDedupRing, 0);
  dedup_next_.assign(n, 0);

  std::size_t total_phases = 0;
  for (const auto& profile : profiles) total_phases += profile.phases.size();
  phase_demand_.reserve(total_phases);
  phase_work_.reserve(total_phases);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& phases = profiles[i].phases;
    PEN_CHECK(!phases.empty());
    phase_first_[i] = static_cast<std::int32_t>(phase_demand_.size());
    phase_count_[i] = static_cast<std::int32_t>(phases.size());
    for (const auto& phase : phases) {
      phase_demand_.push_back(phase.demand_watts);
      phase_work_.push_back(phase.work_seconds);
      work_total_[i] += phase.work_seconds;
    }
    work_left_[i] = phase_work_[static_cast<std::size_t>(phase_first_[i])];
  }

  const auto pools = static_cast<std::size_t>(topo_.total_pools);
  pool_available_.assign(pools, 0.0);
  pool_deficit_accum_.assign(pools, 0.0);
  pool_pending_up_.assign(pools, 0.0);
  pool_last_report_seq_.assign(pools, 0);
  pool_window_.reserve(pools);
  for (std::size_t p = 0; p < pools; ++p) pool_window_.emplace_back();
  pool_req_seq_.assign(pools, 0);
  pool_push_seq_.assign(pools, 0);
  pool_inflow_flow_.assign(pools, 0);
  pool_deficit_flow_.assign(pools, 0);
  pool_pending_flow_.assign(pools, 0);

  // Endpoints + ticks. Start offsets follow the classic path's shape
  // (uniform in [1, start_jitter], one draw per node in node order) so
  // deciders stay roughly in phase; pool aggregation runs one period
  // behind the first decider wave.
  common::Rng jitter_rng(config_.seed);
  for (int i = 0; i < config_.n_nodes; ++i) {
    net_.register_endpoint(i, [this, i](const net::Message& msg) {
      handle_node_message(i, msg);
    });
    common::Ticks offset =
        config_.start_jitter > 0
            ? static_cast<common::Ticks>(jitter_rng.next_below(
                  static_cast<std::uint32_t>(config_.start_jitter))) +
                  1
            : 1;
    sim_of_(i).schedule_periodic(
        offset, config_.period,
        [this, i](common::Ticks now) { node_tick(i, now); });
  }
  for (int p = 0; p < topo_.total_pools; ++p) {
    net::NodeId pid = pool_node_id(p);
    net_.register_endpoint(pid, [this, p](const net::Message& msg) {
      handle_pool_message(p, msg);
    });
    sim_of_(pid).schedule_periodic(
        config_.federation.period, config_.federation.period,
        [this, p](common::Ticks now) { pool_tick(p, now); });
  }
}

void FederatedArena::advance(int node, common::Ticks now) {
  auto i = static_cast<std::size_t>(node);
  common::Ticks last = last_advance_[i];
  if (now <= last) return;
  last_advance_[i] = now;
  if (crashed_[i] || done_[i]) return;

  double dt = common::to_seconds(now - last);
  while (dt > 1e-12 && !done_[i]) {
    auto slot = static_cast<std::size_t>(phase_first_[i] + phase_idx_[i]);
    double demand = phase_demand_[slot];
    double delivered = std::min(cap_[i], demand);
    double speed = model_.speed(delivered, demand);
    if (speed <= 0.0) {
      // Starved below the base fraction: burns power, makes no progress.
      energy_j_[i] += delivered * dt;
      return;
    }
    double step = std::min(dt, work_left_[i] / speed);
    energy_j_[i] += delivered * step;
    work_left_[i] -= speed * step;
    work_done_[i] += speed * step;
    dt -= step;
    if (work_left_[i] <= 1e-9) {
      work_done_[i] += work_left_[i];  // snap float residue
      work_left_[i] = 0.0;
      if (++phase_idx_[i] >= phase_count_[i]) {
        done_[i] = 1;
        common::Ticks at = now - common::from_seconds(dt);
        if (on_complete_) on_complete_(node, at);
      } else {
        work_left_[i] = phase_work_[static_cast<std::size_t>(
            phase_first_[i] + phase_idx_[i])];
      }
    }
  }
}

double FederatedArena::node_demand(int node) const {
  auto i = static_cast<std::size_t>(node);
  if (done_[i] || crashed_[i]) return 0.0;
  return phase_demand_[static_cast<std::size_t>(phase_first_[i] +
                                                phase_idx_[i])];
}

double FederatedArena::node_power(int node, common::Ticks now) {
  advance(node, now);
  auto i = static_cast<std::size_t>(node);
  if (crashed_[i] || done_[i]) return 0.0;
  return std::min(cap_[i], node_demand(node));
}

double FederatedArena::node_fraction_complete(int node) const {
  auto i = static_cast<std::size_t>(node);
  if (done_[i]) return 1.0;
  if (work_total_[i] <= 0.0) return 0.0;
  return std::min(1.0, work_done_[i] / work_total_[i]);
}

double FederatedArena::cap_total() const {
  double total = 0.0;
  for (double cap : cap_) total += cap;
  return total;
}

double FederatedArena::pool_total() const {
  double total = 0.0;
  for (double avail : pool_available_) total += avail;
  return total;
}

double FederatedArena::total_energy_joules(common::Ticks now) {
  double total = 0.0;
  for (int i = 0; i < config_.n_nodes; ++i) {
    advance(i, now);
    total += energy_j_[static_cast<std::size_t>(i)];
  }
  return total;
}

bool FederatedArena::first_sighting(int node, std::uint64_t txn) {
  if (txn == core::kNoTxn) return true;
  auto* ring = &dedup_[static_cast<std::size_t>(node) * kDedupRing];
  for (int k = 0; k < kDedupRing; ++k) {
    if (ring[k] == txn) return false;
  }
  auto i = static_cast<std::size_t>(node);
  ring[dedup_next_[i]] = txn;
  dedup_next_[i] =
      static_cast<std::uint8_t>((dedup_next_[i] + 1) % kDedupRing);
  return true;
}

void FederatedArena::push_to_leaf(int node, double watts) {
  if (watts <= kWattDust) return;
  auto i = static_cast<std::size_t>(node);
  metrics_.grant_departed(watts);
  std::uint64_t txn = core::make_txn_id(node, 1, ++push_seq_[i]);
  net::NodeId leaf = pool_node_id(topo_.leaf_of_node[i]);
  auto& tracer = metrics_.tracer();
  if (tracer.enabled()) {
    // A push mints a new flow: these watts begin their journey here.
    tracer.bind(txn, txn);
    tracer.record(sim_of_(node).now(), txn, telemetry::FlowHopKind::kSource,
                  node, static_cast<std::int32_t>(leaf), watts, "push");
  }
  net_.send(node, leaf, core::PowerPush{watts, txn});
}

void FederatedArena::node_tick(int node, common::Ticks now) {
  advance(node, now);
  auto i = static_cast<std::size_t>(node);
  if (crashed_[i]) return;

  double demand = node_demand(node);
  double measured = std::min(cap_[i], demand);
  double safe_min = config_.safe_range.min_watts;
  if (cap_[i] - measured > config_.epsilon_watts) {
    // Excess above the sense band: shed down to measured + epsilon
    // (never below the safe floor) and bank the freed watts in the leaf.
    double new_cap = std::max(safe_min, measured + config_.epsilon_watts);
    double freed = cap_[i] - new_cap;
    if (freed > kWattDust) {
      cap_[i] = new_cap;
      metrics_.record_release(now, freed, node);
      push_to_leaf(node, freed);
    }
  } else if (demand > cap_[i] + config_.epsilon_watts &&
             outstanding_txn_[i] == 0) {
    double want = std::min(demand, config_.safe_range.max_watts) - cap_[i];
    if (want > kWattDust) {
      std::uint64_t txn = core::make_txn_id(node, 0, ++req_seq_[i]);
      outstanding_txn_[i] = txn;
      outstanding_sent_at_[i] = now;
      metrics_.record_request_sent();
      net_.send(node, pool_node_id(topo_.leaf_of_node[i]),
                core::PowerRequest{cap_[i] < config_.initial_cap_watts,
                                   want, txn});
      timeout_event_[i] = sim_of_(node).schedule_after(
          config_.request_timeout, [this, node, txn, i] {
            if (outstanding_txn_[i] != txn) return;
            outstanding_txn_[i] = 0;
            timeout_event_[i] = sim::kInvalidEventId;
            metrics_.record_timeout();
          });
    }
  }
}

void FederatedArena::handle_node_message(int node,
                                         const net::Message& msg) {
  const auto* grant = msg.as<core::PowerGrant>();
  if (grant == nullptr) return;  // nodes only ever receive grants
  auto i = static_cast<std::size_t>(node);
  common::Ticks now = sim_of_(node).now();
  if (!first_sighting(node, grant->txn_id)) {
    metrics_.record_duplicate_drop(grant->watts);
    return;
  }
  if (grant->watts > 0.0) metrics_.grant_arrived(grant->watts);
  if (outstanding_txn_[i] == grant->txn_id && grant->txn_id != 0) {
    sim_of_(node).cancel(timeout_event_[i]);
    timeout_event_[i] = sim::kInvalidEventId;
    outstanding_txn_[i] = 0;
    metrics_.record_turnaround(outstanding_sent_at_[i], now);
  } else {
    // Late grant after its timeout fired. Unlike the flat path (which
    // strands unmatched watts), the arena banks them: first_sighting
    // already guarantees at-most-once, so applying keeps the watts in
    // circulation without any double-count risk.
    metrics_.record_unknown_txn();
  }
  if (grant->watts <= kWattDust) return;
  advance(node, now);
  double room = config_.safe_range.max_watts - cap_[i];
  double applied = std::min(grant->watts, std::max(0.0, room));
  if (applied > kWattDust) {
    cap_[i] += applied;
    metrics_.record_apply(now, applied, node);
    auto& tracer = metrics_.tracer();
    if (tracer.enabled()) {
      tracer.record(now, tracer.flow_of(grant->txn_id),
                    telemetry::FlowHopKind::kSink, node,
                    static_cast<std::int32_t>(msg.src), applied, "apply");
    }
  }
  double overflow = grant->watts - applied;
  if (overflow > kWattDust) push_to_leaf(node, overflow);
}

void FederatedArena::handle_pool_message(int pool,
                                         const net::Message& msg) {
  auto p = static_cast<std::size_t>(pool);
  net::NodeId pid = pool_node_id(pool);
  auto& tracer = metrics_.tracer();
  if (const auto* req = msg.as<core::PowerRequest>()) {
    if (!pool_window_[p].insert(req->txn_id)) {
      metrics_.record_duplicate_drop(0.0);
      return;
    }
    double granted = std::min(req->alpha_watts, pool_available_[p]);
    if (granted < 0.0) granted = 0.0;
    pool_available_[p] -= granted;
    if (granted > 0.0) metrics_.grant_departed(granted);
    if (tracer.enabled() && granted > 0.0) {
      // The grant inherits the flow that last fed this pool, and the
      // node-side sink resolves it through the txn binding (PowerGrant
      // carries no flow on the wire).
      std::uint64_t flow = pool_inflow_flow_[p];
      tracer.bind(req->txn_id, flow);
      tracer.record(sim_of_(pid).now(), flow,
                    telemetry::FlowHopKind::kStep,
                    static_cast<std::int32_t>(pid),
                    static_cast<std::int32_t>(msg.src), granted, "grant");
    }
    // Always answer, even empty-handed: the requester resolves by grant
    // instead of timeout, and the unmet remainder joins the aggregated
    // deficit this pool reports upward.
    net_.send(pid, msg.src, core::PowerGrant{granted, req->txn_id, -1});
    double unmet = req->alpha_watts - granted;
    if (unmet > kWattDust) {
      pool_deficit_accum_[p] += unmet;
      // Demand-side flow: remember the first unmet request so the
      // deficit report up the tree can name what it is asking for.
      if (tracer.enabled() && pool_deficit_flow_[p] == 0)
        pool_deficit_flow_[p] = req->txn_id;
    }
  } else if (const auto* push = msg.as<core::PowerPush>()) {
    if (!pool_window_[p].insert(push->txn_id)) {
      metrics_.record_duplicate_drop(push->watts);
      return;
    }
    metrics_.grant_arrived(push->watts);
    pool_available_[p] += push->watts;
    if (tracer.enabled()) {
      std::uint64_t flow = tracer.flow_of(push->txn_id);
      if (flow != 0) pool_inflow_flow_[p] = flow;
      tracer.record(sim_of_(pid).now(), flow,
                    telemetry::FlowHopKind::kStep,
                    static_cast<std::int32_t>(pid),
                    static_cast<std::int32_t>(msg.src), push->watts,
                    "bank");
    }
  } else if (const auto* report = msg.as<hierarchy::FederatedRequest>()) {
    // Aggregated child deficit: overwrite, never accumulate (the child
    // re-derives its whole deficit every period). The per-child seq
    // guard drops reordered stale reports; duplicates are idempotent.
    int child = static_cast<int>(msg.src) - base_;
    PEN_CHECK(child >= 0 && child < topo_.total_pools);
    std::uint64_t seq = core::txn_seq(report->txn_id);
    auto c = static_cast<std::size_t>(child);
    if (seq <= pool_last_report_seq_[c]) return;
    pool_last_report_seq_[c] = seq;
    pool_pending_up_[c] = report->deficit_watts;
    if (tracer.enabled()) {
      pool_pending_flow_[c] = report->flow;
      tracer.record(sim_of_(pid).now(), report->flow,
                    telemetry::FlowHopKind::kStep,
                    static_cast<std::int32_t>(pid),
                    static_cast<std::int32_t>(msg.src),
                    report->deficit_watts, "deficit_in");
    }
  } else if (const auto* xfer = msg.as<hierarchy::FederatedTransfer>()) {
    if (!pool_window_[p].insert(xfer->txn_id)) {
      metrics_.record_duplicate_drop(xfer->watts);
      return;
    }
    metrics_.grant_arrived(xfer->watts);
    pool_available_[p] += xfer->watts;
    if (tracer.enabled()) {
      if (xfer->flow != 0) pool_inflow_flow_[p] = xfer->flow;
      tracer.record(sim_of_(pid).now(), xfer->flow,
                    telemetry::FlowHopKind::kStep,
                    static_cast<std::int32_t>(pid),
                    static_cast<std::int32_t>(msg.src), xfer->watts,
                    "xfer_in");
    }
  }
}

void FederatedArena::pool_tick(int pool, common::Ticks now) {
  auto p = static_cast<std::size_t>(pool);
  net::NodeId pid = pool_node_id(pool);
  auto& tracer = metrics_.tracer();

  // Serve children's reported deficits in child-index order (the
  // deterministic tie-break), one aggregated transfer per needy child.
  double unmet_children = 0.0;
  std::uint64_t unmet_flow = 0;  // first still-hungry child's demand flow
  for (int child : topo_.children[p]) {
    auto c = static_cast<std::size_t>(child);
    double want = pool_pending_up_[c];
    pool_pending_up_[c] = 0.0;  // children re-report every period
    std::uint64_t child_flow = pool_pending_flow_[c];
    pool_pending_flow_[c] = 0;
    if (want <= kWattDust) continue;
    double give = std::min(want, pool_available_[p]);
    if (give > kWattDust) {
      pool_available_[p] -= give;
      metrics_.grant_departed(give);
      metrics_.record_federated_transfer(give);
      std::uint64_t txn = core::make_txn_id(pid, 1, ++pool_push_seq_[p]);
      std::uint64_t flow = 0;
      if (tracer.enabled()) {
        flow = pool_inflow_flow_[p] != 0 ? pool_inflow_flow_[p] : txn;
        tracer.record(now, flow, telemetry::FlowHopKind::kStep,
                      static_cast<std::int32_t>(pid),
                      static_cast<std::int32_t>(pool_node_id(child)),
                      give, "xfer_down");
      }
      net_.send(pid, pool_node_id(child),
                hierarchy::FederatedTransfer{give, txn, flow});
    }
    if (want - std::max(give, 0.0) > kWattDust && unmet_flow == 0)
      unmet_flow = child_flow;
    unmet_children += want - std::max(give, 0.0);
  }

  // Residual deficit (leaves: unmet node requests; inner: unmet child
  // reports) federates up as ONE aggregated report; otherwise surplus
  // above the low-water buffer federates up as ONE transfer. The root
  // holds its surplus as the global buffer.
  double deficit =
      topo_.is_leaf(pool) ? pool_deficit_accum_[p] : unmet_children;
  pool_deficit_accum_[p] = 0.0;
  std::uint64_t deficit_flow =
      topo_.is_leaf(pool) ? pool_deficit_flow_[p] : unmet_flow;
  pool_deficit_flow_[p] = 0;
  deficit = std::max(0.0, deficit - pool_available_[p]);
  int up = topo_.parent[p];
  if (up < 0) return;
  if (deficit > kWattDust) {
    metrics_.record_federated_request();
    std::uint64_t txn = core::make_txn_id(pid, 0, ++pool_req_seq_[p]);
    std::uint64_t flow = 0;
    if (tracer.enabled()) {
      // Leaves mint the demand flow from the first unmet node request
      // (falling back to the report txn); inner pools thread through
      // the first still-hungry child's flow.
      flow = deficit_flow != 0 ? deficit_flow : txn;
      tracer.record(now, flow,
                    deficit_flow != 0 ? telemetry::FlowHopKind::kStep
                                      : telemetry::FlowHopKind::kSource,
                    static_cast<std::int32_t>(pid),
                    static_cast<std::int32_t>(pool_node_id(up)), deficit,
                    "deficit_up");
    }
    net_.send(pid, pool_node_id(up),
              hierarchy::FederatedRequest{deficit, txn, flow});
  } else {
    double surplus =
        pool_available_[p] - config_.federation.low_water_watts;
    if (surplus > kWattDust) {
      pool_available_[p] -= surplus;
      metrics_.grant_departed(surplus);
      metrics_.record_federated_transfer(surplus);
      std::uint64_t txn = core::make_txn_id(pid, 1, ++pool_push_seq_[p]);
      std::uint64_t flow = 0;
      if (tracer.enabled()) {
        flow = pool_inflow_flow_[p] != 0 ? pool_inflow_flow_[p] : txn;
        tracer.record(now, flow, telemetry::FlowHopKind::kStep,
                      static_cast<std::int32_t>(pid),
                      static_cast<std::int32_t>(pool_node_id(up)), surplus,
                      "xfer_up");
      }
      net_.send(pid, pool_node_id(up),
                hierarchy::FederatedTransfer{surplus, txn, flow});
    }
  }
}

void FederatedArena::crash_node(int node, common::Ticks now) {
  auto i = static_cast<std::size_t>(node);
  if (crashed_[i]) return;
  advance(node, now);
  crashed_[i] = 1;
  sim_of_(node).cancel(timeout_event_[i]);
  timeout_event_[i] = sim::kInvalidEventId;
  outstanding_txn_[i] = 0;  // any in-flight grant strands via the fabric
  double safe_min = config_.safe_range.min_watts;
  double residue = cap_[i] - safe_min;
  cap_[i] = safe_min;
  metrics_.strand_residue_against(node, incarnation_[i], residue);
  net_.fail_node(node);
}

void FederatedArena::recover_node(int node, common::Ticks now) {
  auto i = static_cast<std::size_t>(node);
  if (!crashed_[i]) return;
  advance(node, now);  // no-op accounting; resets the advance anchor
  crashed_[i] = 0;
  std::uint32_t prev = incarnation_[i]++;
  net_.recover_node(node);
  // Reclaim this node's own pre-crash residue (plus any grants that
  // died against it while down — the drop handler tags those with the
  // same incarnation). Exactly-once: the tag is consumed here or never.
  double leftover = metrics_.reclaim_from(node, prev);
  if (leftover <= kWattDust) return;
  double room = config_.safe_range.max_watts - cap_[i];
  double applied = std::min(leftover, std::max(0.0, room));
  if (applied > kWattDust) {
    cap_[i] += applied;
    metrics_.record_apply(now, applied, node);
  }
  double overflow = leftover - applied;
  if (overflow > kWattDust) push_to_leaf(node, overflow);
}

}  // namespace penelope::cluster
