// Flat-arena actors for hierarchical pool federation (DESIGN.md §13).
//
// The classic cluster path allocates one actor object per node — decider,
// SimulatedRapl, Application, pool, txn window — behind a unique_ptr,
// which is fine at 10^3 nodes and hostile at 10^5..10^6: each tick
// pointer-chases through a dozen cache lines of per-node heap islands.
// The arena restructures all per-node state into NodeId-indexed columns
// (struct of arrays, the PR-4 Network-tables idiom): a node's decider
// tick touches a handful of contiguous doubles, and the whole population
// fits in a few flat allocations sized once at construction.
//
// The power/progress model on this path is deliberately idealized:
// delivered power = min(cap, demand) with no first-order RAPL lag or
// measurement noise, progress via the shared concave PerformanceModel,
// energy = delivered x dt. Everything the federation experiment measures
// — redistribution, convergence, conservation, message volume — depends
// on the allocation dynamics, which are identical to the classic path's
// decider rule (release excess above epsilon, request deficit up to the
// safe ceiling, at-most-one outstanding request).
//
// Conservation: every watt moves through the existing ClusterMetrics
// ledger (grant_departed/arrived, stranded, epoch-tagged residues), so
// ConservationAudit holds to float tolerance under loss and churn.
// Threading: a node's columns are touched only by its shard (its tick
// and its endpoint handler) or at barriers (crash/recover/audit); a
// pool's columns only by the pool's shard. Distinct vector elements are
// distinct memory locations, so sharded runs need no locks — the same
// argument the metrics slots and Network tables already make.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "cluster/metrics.hpp"
#include "common/units.hpp"
#include "core/txn_window.hpp"
#include "hierarchy/federation.hpp"
#include "net/network.hpp"
#include "power/performance_model.hpp"
#include "power/power_interface.hpp"
#include "sim/simulator.hpp"
#include "workload/npb.hpp"

namespace penelope::cluster {

struct ArenaConfig {
  int n_nodes = 0;
  double initial_cap_watts = 160.0;
  double epsilon_watts = 5.0;
  common::Ticks period = common::kTicksPerSecond;
  common::Ticks start_jitter = common::from_millis(10);
  common::Ticks request_timeout = common::kTicksPerSecond;
  power::SafeRange safe_range;
  power::PerformanceModelConfig perf;
  hierarchy::FederationConfig federation;
  std::uint64_t seed = 42;
};

class FederatedArena {
 public:
  /// Resolves the simulator a NodeId's events run on (the cluster's
  /// node_sim: per-shard when sharded, the serial engine otherwise).
  /// Must cover pool ids (>= n_nodes) too.
  using SimOf = std::function<sim::Simulator&(net::NodeId)>;
  using OnComplete = std::function<void(net::NodeId, common::Ticks)>;

  FederatedArena(const ArenaConfig& config,
                 const hierarchy::FederationTopology& topo,
                 net::Network& net, ClusterMetrics& metrics, SimOf sim_of,
                 std::vector<workload::WorkloadProfile> profiles,
                 OnComplete on_complete);

  FederatedArena(const FederatedArena&) = delete;
  FederatedArena& operator=(const FederatedArena&) = delete;

  /// Pool p's network address (pools live above the client id range).
  net::NodeId pool_node_id(int pool) const {
    return base_ + static_cast<net::NodeId>(pool);
  }

  const hierarchy::FederationTopology& topology() const { return topo_; }

  /// --- cluster-facing views --------------------------------------------
  double node_cap(int node) const {
    return cap_[static_cast<std::size_t>(node)];
  }
  double node_demand(int node) const;
  /// Instantaneous delivered power; advances the progress model to now.
  double node_power(int node, common::Ticks now);
  double node_fraction_complete(int node) const;
  bool node_done(int node) const {
    return done_[static_cast<std::size_t>(node)] != 0;
  }
  bool node_crashed(int node) const {
    return crashed_[static_cast<std::size_t>(node)] != 0;
  }
  std::uint32_t node_incarnation(int node) const {
    return incarnation_[static_cast<std::size_t>(node)];
  }
  double pool_available(int pool) const {
    return pool_available_[static_cast<std::size_t>(pool)];
  }
  double cap_total() const;
  double pool_total() const;
  double total_energy_joules(common::Ticks now);

  /// Crash/restart with epoch-guarded reclamation: crash strands the
  /// cap residue tagged (node, incarnation); restart bumps the
  /// incarnation and reclaims its predecessor's tag (unless a drop
  /// handler already fattened it — that is reclaimed too). Sharded
  /// mode: barrier context only (the cluster's churn/fault plane).
  void crash_node(int node, common::Ticks now);
  void recover_node(int node, common::Ticks now);

 private:
  static constexpr int kDedupRing = 4;

  void advance(int node, common::Ticks now);
  void node_tick(int node, common::Ticks now);
  void handle_node_message(int node, const net::Message& msg);
  /// First-sighting filter for grants (small per-node ring instead of a
  /// full TxnWindow: a node only ever receives from its one leaf pool).
  bool first_sighting(int node, std::uint64_t txn);
  /// Bank `watts` into the node's leaf pool (departure ledgered).
  void push_to_leaf(int node, double watts);

  void pool_tick(int pool, common::Ticks now);
  void handle_pool_message(int pool, const net::Message& msg);

  ArenaConfig config_;
  hierarchy::FederationTopology topo_;
  net::Network& net_;
  ClusterMetrics& metrics_;
  SimOf sim_of_;
  OnComplete on_complete_;
  power::PerformanceModel model_;
  net::NodeId base_ = 0;

  /// --- node columns (one slot per client NodeId) -----------------------
  std::vector<double> cap_;
  std::vector<double> energy_j_;
  std::vector<common::Ticks> last_advance_;
  /// Workload phases flattened across all nodes: node i's phases are
  /// phase_demand_/phase_work_[phase_first_[i] .. +phase_count_[i]).
  std::vector<double> phase_demand_;
  std::vector<double> phase_work_;
  std::vector<std::int32_t> phase_first_;
  std::vector<std::int32_t> phase_count_;
  std::vector<std::int32_t> phase_idx_;
  std::vector<double> work_left_;   ///< work-seconds left in current phase
  std::vector<double> work_done_;
  std::vector<double> work_total_;
  std::vector<std::uint8_t> done_;
  std::vector<std::uint8_t> crashed_;
  std::vector<std::uint32_t> incarnation_;
  std::vector<std::uint64_t> outstanding_txn_;
  std::vector<common::Ticks> outstanding_sent_at_;
  std::vector<sim::EventId> timeout_event_;
  std::vector<std::uint64_t> req_seq_;
  std::vector<std::uint64_t> push_seq_;
  std::vector<std::uint64_t> dedup_;       ///< n_nodes x kDedupRing
  std::vector<std::uint8_t> dedup_next_;

  /// --- pool columns (one slot per pool) --------------------------------
  std::vector<double> pool_available_;
  /// Leaf pools: node watts requested but not granted this period.
  std::vector<double> pool_deficit_accum_;
  /// Deficit pool p last reported to its parent (written by the parent's
  /// message handler, consumed by the parent's tick — same shard).
  std::vector<double> pool_pending_up_;
  /// Freshness guard for deficit reports: reordering must not let a
  /// stale report overwrite a newer one.
  std::vector<std::uint64_t> pool_last_report_seq_;
  std::vector<core::TxnWindow> pool_window_;
  std::vector<std::uint64_t> pool_req_seq_;
  std::vector<std::uint64_t> pool_push_seq_;

  /// --- causal flow-trace columns (telemetry only, never fed back into
  /// the protocol; all zero and untouched unless the cluster enabled
  /// metrics().tracer()). Ownership mirrors the neighbouring pool
  /// columns: inflow/deficit by pool p's shard, pending by the parent's.
  /// Flow that most recently fed pool p (a push, transfer, or reclaim):
  /// outgoing transfers and grants are attributed to it — the documented
  /// most-recent-inflow approximation of "the watts you got are the
  /// watts I last received".
  std::vector<std::uint64_t> pool_inflow_flow_;
  /// Demand-side flow: the node request that first went unmet at leaf p
  /// this period, threaded up the deficit-report chain.
  std::vector<std::uint64_t> pool_deficit_flow_;
  /// Flow carried by child c's pending deficit report.
  std::vector<std::uint64_t> pool_pending_flow_;
};

}  // namespace penelope::cluster
