// Flat-arena actors for hierarchical pool federation (DESIGN.md §13).
//
// The classic cluster path allocates one actor object per node — decider,
// SimulatedRapl, Application, pool, txn window — behind a unique_ptr,
// which is fine at 10^3 nodes and hostile at 10^5..10^6: each tick
// pointer-chases through a dozen cache lines of per-node heap islands.
// The arena restructures all per-node state into NodeId-indexed columns
// (struct of arrays, the PR-4 Network-tables idiom): a node's decider
// tick touches a handful of contiguous doubles, and the whole population
// fits in a few flat allocations sized once at construction.
//
// Scheduling is batched epoch sweeps, not per-node timers: one periodic
// sweep-lane event per shard slice walks its column range in index order
// each period, so the heap carries O(sim_jobs) recurring events instead
// of O(N), and request timeouts are detected in-sweep by timestamp
// comparison instead of costing two heap operations per request. On top
// of that sits active-set scheduling: per-slice dirty bitsets plus a
// wake heap of closed-form future events (phase boundaries, timeouts)
// let a sweep touch only nodes with something to decide, while
// equilibrium nodes advance lazily via the anchor columns when next
// touched or sampled. DESIGN.md §15 carries the full determinism
// argument; the short form is that sweeps run in a trace-neutral lane,
// iterate in index order, and never reorder sends or RNG draws, so
// traces stay bit-identical across sim_jobs and across
// active-set/brute-force modes.
//
// The power/progress model on this path is deliberately idealized:
// delivered power = min(cap, demand) with no first-order RAPL lag or
// measurement noise, progress via the shared concave PerformanceModel,
// energy = delivered x dt. Everything the federation experiment measures
// — redistribution, convergence, conservation, message volume — depends
// on the allocation dynamics, which are identical to the classic path's
// decider rule (release excess above epsilon, request deficit up to the
// safe ceiling, at-most-one outstanding request).
//
// Conservation: every watt moves through the existing ClusterMetrics
// ledger (grant_departed/arrived, stranded, epoch-tagged residues), so
// ConservationAudit holds to float tolerance under loss and churn.
// Threading: a node's columns are touched only by its shard (its tick
// and its endpoint handler) or at barriers (crash/recover/audit); a
// pool's columns only by the pool's shard. Distinct vector elements are
// distinct memory locations, so sharded runs need no locks — the same
// argument the metrics slots and Network tables already make.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "cluster/metrics.hpp"
#include "common/units.hpp"
#include "core/txn_window.hpp"
#include "hierarchy/federation.hpp"
#include "net/network.hpp"
#include "power/performance_model.hpp"
#include "power/power_interface.hpp"
#include "sim/simulator.hpp"
#include "workload/npb.hpp"

namespace penelope::cluster {

struct ArenaConfig {
  int n_nodes = 0;
  double initial_cap_watts = 160.0;
  double epsilon_watts = 5.0;
  common::Ticks period = common::kTicksPerSecond;
  common::Ticks request_timeout = common::kTicksPerSecond;
  power::SafeRange safe_range;
  power::PerformanceModelConfig perf;
  hierarchy::FederationConfig federation;
  std::uint64_t seed = 42;
  /// Active-set scheduling: sweeps touch only dirty nodes (nodes whose
  /// cap, phase, or pending protocol state changed, or whose wake time
  /// arrived). false = brute-force full sweep every period — same
  /// per-node decisions in the same index order, so traces are
  /// bit-identical either way (the parity suite pins this); the knob
  /// exists for that test and for measuring the skip win.
  bool active_set = true;
};

class FederatedArena {
 public:
  /// Resolves the simulator a NodeId's events run on (the cluster's
  /// node_sim: per-shard when sharded, the serial engine otherwise).
  /// Must cover pool ids (>= n_nodes) too.
  using SimOf = std::function<sim::Simulator&(net::NodeId)>;
  using OnComplete = std::function<void(net::NodeId, common::Ticks)>;

  FederatedArena(const ArenaConfig& config,
                 const hierarchy::FederationTopology& topo,
                 net::Network& net, ClusterMetrics& metrics, SimOf sim_of,
                 std::vector<workload::WorkloadProfile> profiles,
                 OnComplete on_complete);

  FederatedArena(const FederatedArena&) = delete;
  FederatedArena& operator=(const FederatedArena&) = delete;

  /// Pool p's network address (pools live above the client id range).
  net::NodeId pool_node_id(int pool) const {
    return base_ + static_cast<net::NodeId>(pool);
  }

  const hierarchy::FederationTopology& topology() const { return topo_; }

  /// --- cluster-facing views --------------------------------------------
  double node_cap(int node) const {
    return cap_[static_cast<std::size_t>(node)];
  }
  double node_demand(int node) const;
  /// Instantaneous delivered power at `now`, read-only: walks phase
  /// boundaries in closed form from the node's anchor without mutating
  /// it, so observers can sample equilibrium nodes the sweep never
  /// touches.
  double node_power(int node, common::Ticks now) const;
  double node_fraction_complete(int node, common::Ticks now) const;
  bool node_done(int node) const {
    return done_[static_cast<std::size_t>(node)] != 0;
  }
  bool node_crashed(int node) const {
    return crashed_[static_cast<std::size_t>(node)] != 0;
  }
  std::uint32_t node_incarnation(int node) const {
    return incarnation_[static_cast<std::size_t>(node)];
  }
  double pool_available(int pool) const {
    return pool_available_[static_cast<std::size_t>(pool)];
  }
  double cap_total() const;
  double pool_total() const;
  /// Closed-form lazy fold in node-index order (jobs- and mode-invariant
  /// summation order: the observability suite pins the sampled series
  /// bit-for-bit across sim_jobs). Never mutates anchors — an audit or
  /// sample costs one read pass, not an O(N) advance.
  double total_energy_joules(common::Ticks now) const;

  /// One-pass telemetry view of a node (cap, demand, delivered power,
  /// energy) — the sampler's per-node read, fused so the closed-form
  /// phase walk runs once instead of once per field.
  struct NodeSample {
    double cap = 0.0;
    double demand = 0.0;
    double power = 0.0;
    double energy_j = 0.0;
  };
  NodeSample sample_node(int node, common::Ticks now) const;

  /// Active-set introspection for tests and benches: whether a node is
  /// marked for the next sweep, and how many are.
  bool node_in_active_set(int node) const;
  int active_set_size() const;

  /// Crash/restart with epoch-guarded reclamation: crash strands the
  /// cap residue tagged (node, incarnation); restart bumps the
  /// incarnation and reclaims its predecessor's tag (unless a drop
  /// handler already fattened it — that is reclaimed too). Sharded
  /// mode: barrier context only (the cluster's churn/fault plane).
  void crash_node(int node, common::Ticks now);
  void recover_node(int node, common::Ticks now);

 private:
  static constexpr int kDedupRing = 4;

  /// One contiguous run of NodeIds whose events live on the same
  /// simulator (shard_of is monotone, so each shard owns exactly one
  /// slice; serial runs have one slice for everything). The slice is the
  /// sweep unit: one periodic sweep-lane event per slice replaces the
  /// old one-timer-per-node storm, and the dirty bitset + wake heap are
  /// slice-local so sharded sweeps never share a cache line across
  /// shards (separate heap allocations, the metrics-slot argument).
  struct Slice {
    int first = 0;
    int last = 0;  ///< exclusive
    sim::Simulator* sim = nullptr;
    /// Bit (i - first) set => node i is in the active set: its next
    /// sweep must run node_tick on it. Order-free set-union writes only.
    std::vector<std::uint64_t> dirty;
    /// Min-heap (std::push_heap on >) of scheduled self-wakes: phase
    /// boundaries and request timeouts of nodes that left the active
    /// set. wake_at_ dedups pushes; stale entries are dropped on pop.
    struct Wake {
      common::Ticks at;
      std::int32_t node;
      bool operator>(const Wake& o) const {
        return at > o.at || (at == o.at && node > o.node);
      }
    };
    std::vector<Wake> wakes;
  };

  /// Move the node's anchor across every phase boundary <= t, folding
  /// energy and work in closed form and firing completion. Anchor
  /// mutations are pure functions of prior anchor state, so the result
  /// is bit-identical whether boundaries are crossed one sweep at a
  /// time (brute force) or lazily at the next touch (active set).
  void materialize(int node, common::Ticks t);
  /// materialize, then fold the partial segment [anchor, t) and move the
  /// anchor to t. Only called at protocol-determined instants (grant
  /// apply, crash, recover) that occur identically in every mode/shape.
  void reanchor(int node, common::Ticks t);
  /// Refresh the cached demand_/delivered_/speed_ columns from the
  /// materialized phase and current cap (zero when done or crashed).
  void refresh_rate(int node);
  /// Read-only mirror of materialize + partial fold: walks boundaries
  /// virtually from the anchor without mutating columns.
  struct EvalView {
    double power = 0.0;
    double energy_j = 0.0;
    double work_done = 0.0;
  };
  EvalView eval(int node, common::Ticks t) const;

  void sweep(std::size_t slice, common::Ticks now);
  std::size_t slice_index_of(int node) const;
  void mark_dirty(int node);
  /// Post-tick transition out of the active set: schedule a self-wake at
  /// the next closed-form event (phase boundary or request timeout).
  void schedule_wake(Slice& s, int node, common::Ticks now);

  void node_tick(int node, common::Ticks now, Slice& s);
  void handle_node_message(int node, const net::Message& msg);
  /// First-sighting filter for grants (small per-node ring instead of a
  /// full TxnWindow: a node only ever receives from its one leaf pool).
  bool first_sighting(int node, std::uint64_t txn);
  /// Bank `watts` into the node's leaf pool (departure ledgered).
  void push_to_leaf(int node, double watts);

  void pool_tick(int pool, common::Ticks now);
  void handle_pool_message(int pool, const net::Message& msg);

  ArenaConfig config_;
  hierarchy::FederationTopology topo_;
  net::Network& net_;
  ClusterMetrics& metrics_;
  SimOf sim_of_;
  OnComplete on_complete_;
  power::PerformanceModel model_;
  net::NodeId base_ = 0;

  /// --- node columns (one slot per client NodeId) -----------------------
  /// Progress state is anchor-based: energy_j_/work_left_/work_done_ are
  /// exact AT anchor_at_, and everything since accrues in closed form at
  /// the cached delivered_/speed_ rates (constant between boundaries on
  /// the idealized model). Reads never mutate; writes happen only at
  /// phase boundaries (materialize) and protocol instants (reanchor).
  std::vector<double> cap_;
  std::vector<double> energy_j_;
  std::vector<common::Ticks> anchor_at_;
  /// Cached per-node rates of the materialized phase: demand_ is the
  /// phase demand, delivered_ = min(cap, demand), speed_ the model speed
  /// (all zero when done or crashed). Maintained by refresh_rate().
  std::vector<double> demand_;
  std::vector<double> delivered_;
  std::vector<double> speed_;
  /// Workload phases flattened across all nodes: node i's phases are
  /// phase_demand_/phase_work_[phase_first_[i] .. +phase_count_[i]).
  std::vector<double> phase_demand_;
  std::vector<double> phase_work_;
  std::vector<std::int32_t> phase_first_;
  std::vector<std::int32_t> phase_count_;
  std::vector<std::int32_t> phase_idx_;
  std::vector<double> work_left_;   ///< work-seconds left in current phase
  std::vector<double> work_done_;
  std::vector<double> work_total_;
  std::vector<std::uint8_t> done_;
  std::vector<std::uint8_t> crashed_;
  std::vector<std::uint32_t> incarnation_;
  std::vector<std::uint64_t> outstanding_txn_;
  std::vector<common::Ticks> outstanding_sent_at_;
  /// Earliest queued self-wake per node (0 = none): dedups wake-heap
  /// pushes and identifies stale heap entries on pop. Request timeouts
  /// are folded into the sweep (detected by timestamp comparison), so
  /// the per-request timeout heap event of the old path is gone.
  std::vector<common::Ticks> wake_at_;
  std::vector<std::uint64_t> req_seq_;
  std::vector<std::uint64_t> push_seq_;
  std::vector<std::uint64_t> dedup_;       ///< n_nodes x kDedupRing
  std::vector<std::uint8_t> dedup_next_;

  std::vector<Slice> slices_;

  /// --- pool columns (one slot per pool) --------------------------------
  std::vector<double> pool_available_;
  /// Leaf pools: node watts requested but not granted this period.
  std::vector<double> pool_deficit_accum_;
  /// Deficit pool p last reported to its parent (written by the parent's
  /// message handler, consumed by the parent's tick — same shard).
  std::vector<double> pool_pending_up_;
  /// Freshness guard for deficit reports: reordering must not let a
  /// stale report overwrite a newer one.
  std::vector<std::uint64_t> pool_last_report_seq_;
  std::vector<core::TxnWindow> pool_window_;
  std::vector<std::uint64_t> pool_req_seq_;
  std::vector<std::uint64_t> pool_push_seq_;

  /// --- causal flow-trace columns (telemetry only, never fed back into
  /// the protocol; all zero and untouched unless the cluster enabled
  /// metrics().tracer()). Ownership mirrors the neighbouring pool
  /// columns: inflow/deficit by pool p's shard, pending by the parent's.
  /// Flow that most recently fed pool p (a push, transfer, or reclaim):
  /// outgoing transfers and grants are attributed to it — the documented
  /// most-recent-inflow approximation of "the watts you got are the
  /// watts I last received".
  std::vector<std::uint64_t> pool_inflow_flow_;
  /// Demand-side flow: the node request that first went unmet at leaf p
  /// this period, threaded up the deficit-report chain.
  std::vector<std::uint64_t> pool_deficit_flow_;
  /// Flow carried by child c's pending deficit report.
  std::vector<std::uint64_t> pool_pending_flow_;
};

}  // namespace penelope::cluster
