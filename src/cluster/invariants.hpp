// Conservation audit for the two requirements every power manager must
// meet (§2.1 / §3): the system-wide cap is never exceeded, and no power
// silently leaks out of the accounting. Power in this system lives in
// exactly five places — node caps, local pools, the central cache,
// messages in flight, and the "stranded" ledger for watts lost to drops
// and dead nodes — and their sum must equal the system budget exactly.
#pragma once

#include <cmath>

namespace penelope::cluster {

struct ConservationAudit {
  double cap_total = 0.0;
  double pool_total = 0.0;
  double server_cache = 0.0;
  double in_flight = 0.0;
  double stranded = 0.0;
  double budget = 0.0;
  /// Watts still circulating that a system-budget cut has earmarked for
  /// retirement (they disappear as nodes pay their debt from excess).
  double retirement_debt = 0.0;

  /// Everything the accounting can see.
  double system_total() const {
    return cap_total + pool_total + server_cache + in_flight + stranded;
  }

  /// Signed conservation error; should be ~0 (floating-point only).
  /// During a budget cut the not-yet-retired debt legitimately floats
  /// above the new budget, so it is part of the ledger.
  double conservation_error() const {
    return system_total() - budget - retirement_debt;
  }

  /// The safety property: *live* power (excluding stranded watts, which
  /// can never be spent) must not exceed the budget plus the declared
  /// transitional debt.
  bool cap_exceeded(double tolerance_watts) const {
    return cap_total + pool_total + server_cache + in_flight >
           budget + retirement_debt + tolerance_watts;
  }
};

/// Running worst-case tracker filled in by the Cluster's periodic audit.
struct AuditSummary {
  double max_abs_conservation_error = 0.0;
  double max_live_overshoot = 0.0;  ///< max(live - budget), clamped at 0
  std::size_t audits = 0;

  void observe(const ConservationAudit& audit) {
    ++audits;
    max_abs_conservation_error =
        std::fmax(max_abs_conservation_error,
                  std::fabs(audit.conservation_error()));
    double live = audit.cap_total + audit.pool_total +
                  audit.server_cache + audit.in_flight;
    max_live_overshoot = std::fmax(
        max_live_overshoot, live - audit.budget - audit.retirement_debt);
  }
};

}  // namespace penelope::cluster
