// Cluster assembly and experiment runner: builds a simulated cluster
// under one of the three power-management systems the paper evaluates
// (Fair, SLURM-style central, Penelope), runs the workload, and collects
// the measurements every figure is computed from.
//
// Topology mirrors §4.1: N client nodes run applications; the central
// manager adds one extra node (id = N) hosting the server — "20 of these
// are client nodes that run actual applications, and 1 is used to host
// the server for SLURM. Penelope and Fair use only the 20 client nodes."
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "central/server.hpp"
#include "cluster/actors.hpp"
#include "cluster/arena.hpp"
#include "cluster/invariants.hpp"
#include "cluster/metrics.hpp"
#include "cluster/trace.hpp"
#include "core/pool.hpp"
#include "net/network.hpp"
#include "net/serial_server.hpp"
#include "sim/sharded.hpp"
#include "telemetry/health.hpp"
#include "telemetry/time_series.hpp"
#include "workload/npb.hpp"

namespace penelope::cluster {

enum class ManagerKind {
  kFair,          ///< static even split (§2.3.1)
  kCentral,       ///< SLURM-style central manager (§2.3.2)
  kPenelope,      ///< the paper's peer-to-peer system (§3)
  kHierarchical,  ///< PoDD-style profiled assignment + central (§2.3.3)
};

const char* manager_name(ManagerKind kind);

struct FaultEvent {
  enum class Kind {
    /// Kill the central server node (network + service): Figure 3.
    kKillServer,
    /// Kill one node's management plane (decider + pool); the workload
    /// keeps running at the frozen cap. Penelope's analogue of losing a
    /// coordinator process.
    kKillManagement,
    /// Split the network into two islands: client nodes [0, node) vs
    /// [node, N) — the server node (central managers) lands in the
    /// second island. §1 names partitions as the failure that halts a
    /// centralized manager entirely.
    kPartition,
    /// Heal any active partition.
    kHealPartition,
    /// Crash a client node entirely: volatile state (transaction
    /// windows, banked grants, pool) is lost, the cap collapses to the
    /// safe minimum, and the residue is stranded against the node's
    /// current incarnation for epoch-guarded reclamation.
    kCrashNode,
    /// Restart a previously crashed node: it rejoins with a bumped
    /// incarnation and reclaims its own previous incarnation's residue
    /// (if no peer got there first).
    kRecoverNode,
    /// Asymmetric (one-way) partition: messages from client nodes
    /// [0, node) to [node, N) + server are dropped; the reverse
    /// direction still flows. The failure mode a half-broken switch or
    /// asymmetric routing exhibits — requests arrive, grants vanish.
    kAsymPartition,
    /// Heal any active one-way block.
    kHealAsymPartition,
    /// Pause a node (process stall / long GC / VM migration): volatile
    /// state survives, inbound and outbound frames queue in the NIC and
    /// replay at resume. No watts strand.
    kPauseNode,
    /// Resume a paused node.
    kResumeNode,
    /// Per-link latency burst: node `node`'s sends gain `magnitude`
    /// seconds of extra one-way latency until t = `until`.
    kLatencyBurst,
    /// Swap the stochastic fault knobs (loss/dup/reorder/corrupt) to
    /// `rates`; schedules emit these in pairs to make bounded hostile
    /// windows, each independently droppable by the shrinker.
    kSetFaultRates,
  };
  Kind kind = Kind::kKillServer;
  common::Ticks at = 0;
  /// For kKillManagement/kCrashNode/kRecoverNode/kPauseNode/kResumeNode/
  /// kLatencyBurst: which client node. For kPartition/kAsymPartition:
  /// the split point.
  net::NodeId node = 0;
  /// kLatencyBurst only: burst end time.
  common::Ticks until = 0;
  /// kLatencyBurst only: extra one-way latency in seconds.
  double magnitude = 0.0;
  /// kSetFaultRates only.
  net::FaultRates rates{};
};

struct ClusterConfig {
  ManagerKind manager = ManagerKind::kPenelope;
  int n_nodes = 20;
  /// Event-execution threads for this single run (DESIGN.md §12): 1 (the
  /// default) runs the classic serial engine; >1 shards the nodes over
  /// that many engines advanced in conservative time windows, with a
  /// bit-identical merged trace. Clamped to n_nodes. Runs with the
  /// membership layer enabled fall back to 1 with a warning: peer
  /// reclamation is cross-shard protocol feedback with no conservative
  /// window, so it stays serial.
  int sim_jobs = 1;
  double per_socket_cap_watts = 80.0;
  int sockets_per_node = 2;
  double epsilon_watts = 5.0;
  common::Ticks period = common::kTicksPerSecond;
  /// 0 means "one period".
  common::Ticks request_timeout = 0;
  /// Deciders start at a uniform offset in [0, start_jitter]. Small by
  /// default: deciders launched together stay roughly in phase, which is
  /// what loads a central server in bursts (§4.5.2's N x 80 µs
  /// extrapolation assumes exactly this).
  common::Ticks start_jitter = common::from_millis(10);
  double measurement_noise_watts = 0.5;
  power::SimulatedRaplConfig rapl;
  power::PerformanceModelConfig perf;
  core::PoolConfig pool;
  /// Penelope ablation knobs (see core/decider.hpp and actors.hpp).
  core::LocalTakePolicy local_take = core::LocalTakePolicy::kDrainAll;
  bool urgency_enabled = true;
  bool sticky_peers = false;
  bool hint_discovery = false;
  int blacklist_after_timeouts = 0;  ///< 0 disables peer blacklisting
  common::Ticks blacklist_duration = 30 * common::kTicksPerSecond;
  bool push_gossip = false;  ///< proactive excess diffusion (DESIGN §5b)
  double push_threshold_watts = 20.0;
  double push_fraction = 0.25;
  central::ServerConfig server;
  net::NetworkConfig network;
  /// Central server request processing: the paper's measured 80–100 µs.
  net::SerialServerConfig server_service;
  /// Hierarchical manager: profile reports per node before assignment.
  int podd_profile_periods = 5;
  /// Hierarchical pool federation (DESIGN.md §13), Penelope manager
  /// only. 0 (default) disables it and runs the classic flat-actor
  /// path, bit-identical to the pinned golden traces. > 0 switches to
  /// the flat-arena path: deciders bank into / request from this many
  /// leaf pools, which federate residual surplus and deficit up a
  /// fanout-ary tree in one aggregated message per pool per period.
  int federation_pools = 0;
  int federation_fanout = 8;
  /// Pool aggregation period; 0 means "one decider period".
  common::Ticks federation_period = 0;
  /// Local serving buffer a pool retains before federating surplus up.
  double federation_low_water_watts = 30.0;
  /// Arena sweep scheduling (federated path only): true (default) runs
  /// active-set sweeps — per-shard dirty bitsets plus closed-form wake
  /// times, so a period costs O(changed nodes). false brute-force
  /// sweeps every node every period. Traces, conservation, and energy
  /// are bit-identical either way (the arena parity suite pins this);
  /// the knob exists for that comparison and for benchmarking.
  bool arena_active_set = true;
  /// Penelope pool request processing: a local cache probe.
  net::SerialServerConfig pool_service =
      net::SerialServerConfig{.service_min = 5, .service_max = 10,
                              .queue_capacity = 1024, .seed = 7};
  std::vector<FaultEvent> faults;
  /// Membership layer (DESIGN §3b): heartbeat-driven failure detection
  /// plus epoch-guarded reclamation of dead peers' stranded watts. Off
  /// by default so zero-churn runs stay bit-identical to the pinned
  /// golden trace.
  bool membership_enabled = false;
  core::MembershipConfig membership;
  /// Crash–restart churn: when enabled, every client node draws an
  /// exponential lifetime (mean churn_mtbf_seconds) followed by an
  /// exponential repair time (mean churn_mttr_seconds), repeated until
  /// max_seconds. The schedule derives only from `seed`, so it is
  /// reproducible and composes with sweep parallelism.
  bool churn_enabled = false;
  double churn_mtbf_seconds = 120.0;
  double churn_mttr_seconds = 10.0;
  /// Hard deadline for run(); experiments that do not finish report
  /// all_completed = false with runtime == deadline.
  double max_seconds = 3600.0;
  common::Ticks audit_interval = common::kTicksPerSecond;
  /// Liveness watchdog (piggybacks on the audit task, so enabling it
  /// schedules no extra events and leaves the trace hash untouched): if
  /// sim time advances `watchdog_s` seconds with zero decider steps
  /// while work remains and at least one node is neither crashed nor
  /// done, the run is declared wedged — a diagnostic dump (pending
  /// events, per-node outstanding txns, last health probe) goes to the
  /// log, RunResult.wedged is set, and the run stops early (or aborts,
  /// below). 0 (default) disables the watchdog; benches leave it off,
  /// chaos/DST ctest jobs turn it on. Not meaningful under kFair (no
  /// deciders). Requires audit_interval > 0 to observe progress.
  double watchdog_s = 0.0;
  /// When the watchdog fires: true aborts the process after the dump
  /// (chaos ctest jobs — a wedged soak should fail loudly), false stops
  /// the run and reports wedged (the DST explorer treats wedged as an
  /// oracle violation and keeps exploring).
  bool watchdog_abort = false;
  /// TEST HOOK (DST planted bug): revert the PR 2 grant hardening —
  /// duplicate grants bypass the at-most-once dedup window and late
  /// grants deposit into the pool without the in-flight decrement,
  /// minting watts. The known-injectable conservation bug the DST swarm
  /// proves it can find and shrink. Never enable outside dst tests.
  bool test_revert_grant_fix = false;
  /// Per-node trajectory sampling cadence; 0 disables tracing.
  common::Ticks trace_interval = 0;
  /// Transaction flight-recorder ring size; 0 (default) disables the
  /// journal entirely, keeping the hot path a single predicted branch.
  std::size_t flight_recorder_capacity = 0;
  /// Cluster-wide time-series sampling cadence; 0 (default) disables
  /// the sampler and the health monitor entirely. Samples run on the
  /// control plane (barriers when sharded), so enabling them changes
  /// the trace hash relative to a disabled run — but identically for
  /// every sim_jobs value. Memory is O(pools + fixed series), never
  /// O(nodes): per-node detail stays the province of trace_interval.
  common::Ticks series_interval = 0;
  /// Ring capacity per series; on overflow the window width doubles and
  /// adjacent windows merge (downsampling), so memory stays bounded for
  /// arbitrarily long runs.
  std::size_t series_capacity = 512;
  /// Causal power-flow tracer ring size; 0 (default) disables flow
  /// tracing (one relaxed load + predicted branch per hop site).
  std::size_t flow_tracer_capacity = 0;
  /// Health-monitor convergence tolerance: converged means Jain's
  /// fairness index over active nodes' delivered power >= 1 - epsilon.
  double health_epsilon = 0.01;
  std::uint64_t seed = 42;

  double initial_node_cap() const {
    return per_socket_cap_watts * sockets_per_node;
  }
  double system_budget() const {
    return initial_node_cap() * n_nodes;
  }
};

struct RunResult {
  bool all_completed = false;
  /// Time for all nodes to finish their workloads (the paper's runtime
  /// definition), or the deadline if they did not.
  double runtime_seconds = 0.0;
  /// 1 / runtime — the paper's performance metric.
  double performance = 0.0;
  std::vector<double> node_completion_seconds;
  std::vector<double> turnaround_ms;
  std::uint64_t requests_sent = 0;
  std::uint64_t timeouts = 0;
  /// Total package energy consumed across all client nodes.
  double total_energy_joules = 0.0;
  net::NetworkStats net_stats;
  /// Central manager only.
  std::optional<net::SerialServerStats> server_stats;
  double stranded_watts = 0.0;
  /// Membership layer (zero unless membership_enabled).
  double watts_reclaimed = 0.0;
  std::uint64_t reclaims = 0;
  std::uint64_t nodes_suspected = 0;
  std::uint64_t false_suspicions = 0;
  std::uint64_t nodes_declared_dead = 0;
  /// Liveness watchdog verdict: true if the run was stopped because sim
  /// time advanced watchdog_s without any decider progress.
  bool wedged = false;
  AuditSummary audit;
};

class Cluster {
 public:
  /// `profiles` must contain exactly config.n_nodes workloads (node i
  /// runs profiles[i]).
  Cluster(ClusterConfig config,
          std::vector<workload::WorkloadProfile> profiles);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Run until every node's workload completes (or the deadline).
  RunResult run();

  /// Run for a fixed virtual-time window (scale study); the cluster
  /// remains inspectable afterwards.
  void run_for(double seconds);

  /// Snapshot the conservation audit right now.
  ConservationAudit audit() const;

  /// Dynamic system-budget reconfiguration: change the system-wide cap
  /// at the current virtual time. The delta is split evenly across
  /// nodes; increases take effect immediately (safe-ceiling overflow is
  /// pooled/donated), cuts retire power from caps and pools at once and
  /// leave the remainder as per-node retirement debt that drains from
  /// future excess. Returns the effective new budget (requested changes
  /// that no node could absorb — e.g. Fair at the safe ceiling — are
  /// not counted). Supported by all managers.
  double set_system_budget(double new_total_watts);

  /// The budget the audit currently enforces (config budget until the
  /// first set_system_budget call).
  double current_budget() const { return current_budget_; }

  /// Outstanding retirement debt across all nodes.
  double total_retirement_debt() const;

  RunResult collect_result() const;

  ClusterMetrics& metrics() { return metrics_; }
  const ClusterMetrics& metrics() const { return metrics_; }
  /// The serial engine. Sharded runs (sim_jobs > 1) have no single
  /// engine — use the engine-agnostic accessors below instead.
  sim::Simulator& simulator() {
    PEN_CHECK_MSG(!engine_, "no serial simulator when sim_jobs > 1");
    return sim_;
  }
  net::Network& network() { return *net_; }
  const ClusterConfig& config() const { return config_; }

  /// --- engine-agnostic views (serial or sharded) -----------------------
  bool sharded() const { return engine_ != nullptr; }
  /// Current virtual time: the executing context's clock during a run,
  /// the global frontier between runs.
  common::Ticks now_ticks() const {
    return engine_ ? engine_->context_now() : sim_.now();
  }
  /// Merged across engines in sharded mode; bit-identical to the serial
  /// value for the same configuration (the determinism contract the
  /// SimJobs tests pin).
  std::uint64_t trace_hash() const {
    return engine_ ? engine_->trace_hash() : sim_.trace_hash();
  }
  std::uint64_t executed_events() const {
    return engine_ ? engine_->executed_events() : sim_.executed_events();
  }
  std::size_t pending_events() const {
    return engine_ ? engine_->pending_events() : sim_.pending_events();
  }
  std::size_t pending_high_water() const {
    return engine_ ? engine_->pending_high_water()
                   : sim_.pending_high_water();
  }

  /// Crash / restart a client node now (Penelope and central managers).
  /// Idempotent; used by the fault scheduler and directly by tests.
  void crash_node(int node);
  void recover_node(int node);
  bool node_crashed(int node) const;
  /// The node's current incarnation (1 until its first restart).
  std::uint32_t node_incarnation(int node) const;

  /// Did the liveness watchdog declare this run wedged?
  bool wedged() const { return wedged_; }
  /// The txn id of the node's outstanding peer request, or 0 (classic
  /// Penelope path; used by the watchdog's diagnostic dump and tests).
  std::uint64_t node_outstanding_txn(int node) const;

  double node_cap(int node) const;
  double node_pool_watts(int node) const;  ///< Penelope only, else 0
  double server_cache_watts() const;       ///< central only, else 0
  bool node_app_done(int node) const;
  double node_fraction_complete(int node) const;
  /// Instantaneous delivered power / current workload demand at now().
  double node_power(int node) const;
  double node_demand(int node) const;

  /// Package energy consumed by all client nodes since t=0, advanced to
  /// now().
  double total_energy_joules() const;

  /// Recorded trajectory (empty unless config.trace_interval > 0).
  const Trace& trace() const { return trace_; }

  /// Cluster-wide time series (empty unless config.series_interval > 0).
  const telemetry::TimeSeriesSet& series() const { return series_; }
  /// Online health probes (empty unless config.series_interval > 0).
  const telemetry::HealthMonitor& health() const { return health_; }

  /// Federated arena path active (manager == kPenelope and
  /// federation_pools > 0)?
  bool federated() const { return arena_ != nullptr; }
  /// The arena, or nullptr on the classic path.
  const FederatedArena* arena() const { return arena_.get(); }
  FederatedArena* arena() { return arena_.get(); }

 private:
  void build(std::vector<workload::WorkloadProfile> profiles);
  void arm_faults();
  void arm_churn();
  void on_node_complete(net::NodeId node, common::Ticks at);
  NodeConfig make_node_config(int node);
  /// The engine a node's actor lives on: its shard when sharded, the
  /// serial engine otherwise.
  sim::Simulator& node_sim(int node) {
    return engine_ ? engine_->shard(shard_of_[static_cast<std::size_t>(node)])
                   : sim_;
  }
  /// The engine cluster-global events (faults, churn, audit, trace
  /// sampling) run on: the control plane when sharded, the serial engine
  /// otherwise.
  sim::Simulator& control_sim() {
    return engine_ ? engine_->control() : sim_;
  }

  ClusterConfig config_;
  sim::Simulator sim_;                            ///< sim_jobs == 1
  std::unique_ptr<sim::ShardedSimulator> engine_; ///< sim_jobs > 1
  std::vector<int> shard_of_;
  std::unique_ptr<net::Network> net_;
  ClusterMetrics metrics_;
  common::Rng rng_;

  std::vector<std::unique_ptr<FairNodeActor>> fair_nodes_;
  std::vector<std::unique_ptr<PenelopeNodeActor>> penelope_nodes_;
  std::vector<std::unique_ptr<CentralClientActor>> central_clients_;
  std::unique_ptr<CentralServerActor> server_;
  std::unique_ptr<HierarchicalServerActor> podd_server_;
  /// Federation (DESIGN.md §13): built in the constructor (the shard
  /// map must cover pool ids before the network exists), consumed by
  /// build() when it constructs the arena.
  std::unique_ptr<hierarchy::FederationTopology> fed_topo_;
  std::unique_ptr<FederatedArena> arena_;
  std::unique_ptr<sim::PeriodicTask> audit_task_;
  std::unique_ptr<sim::PeriodicTask> trace_task_;
  std::unique_ptr<sim::PeriodicTask> sampler_task_;
  Trace trace_;
  /// Sampler state (series_interval > 0 only). Handles are cached at
  /// construction so the per-sample path does no name hashing and no
  /// allocation once every series ring is at capacity.
  telemetry::TimeSeriesSet series_;
  telemetry::HealthMonitor health_;
  telemetry::TimeSeries* ts_delivered_ = nullptr;
  telemetry::TimeSeries* ts_demand_ = nullptr;
  telemetry::TimeSeries* ts_cap_ = nullptr;
  telemetry::TimeSeries* ts_pool_ = nullptr;
  telemetry::TimeSeries* ts_stranded_ = nullptr;
  telemetry::TimeSeries* ts_in_flight_ = nullptr;
  telemetry::TimeSeries* ts_energy_ = nullptr;
  telemetry::TimeSeries* ts_jain_ = nullptr;
  std::vector<telemetry::TimeSeries*> ts_pools_;
  void sample_telemetry(common::Ticks now);

  /// Telemetry mirror (classic Penelope path only): one dense row per
  /// node with everything a sample needs, refreshed lazily. Actors mark
  /// their dirty byte on every sampled-state mutation (decider, pool,
  /// rapl hooks); the sampler re-snapshots dirty nodes and then
  /// integrates the row array sequentially instead of chasing ~6 cache
  /// lines through every 1.7 KB actor per sample. Empty unless
  /// series_interval > 0.
  struct MirrorRow {
    double cap = 0.0;        ///< decider (ledger) cap
    double rapl_cap = 0.0;   ///< safe-range-clamped cap (power target)
    double demand = 0.0;
    double pool = 0.0;
    double debt = 0.0;
    double power0 = 0.0;     ///< rapl anchor: power at `last`
    double energy0 = 0.0;    ///< rapl anchor: joules at `last`
    common::Ticks last = 0;  ///< rapl anchor time
    double idle = 0.0;       ///< 1.0 when app_done or crashed
  };
  std::vector<MirrorRow> mirror_rows_;
  std::vector<std::uint8_t> mirror_dirty_;
  void refresh_mirror_row(std::size_t i);

  double current_budget_ = 0.0;
  int completed_nodes_ = 0;
  common::Ticks last_completion_ = 0;
  std::vector<std::optional<common::Ticks>> completions_;
  AuditSummary audit_summary_;

  /// Liveness watchdog state (watchdog_s > 0 only), advanced by the
  /// audit task at audit_interval cadence.
  void watchdog_check(common::Ticks now);
  void watchdog_dump(common::Ticks now);
  std::uint64_t watchdog_last_steps_ = 0;
  common::Ticks watchdog_last_progress_ = 0;
  bool wedged_ = false;
};

/// Build the paper's half/half workload assignment: nodes [0, n/2) run
/// `a`, nodes [n/2, n) run `b`, with per-node demand jitter derived from
/// `config.seed` so replicas are not bit-identical.
std::vector<workload::WorkloadProfile> make_pair_workloads(
    workload::NpbApp a, workload::NpbApp b, int n_nodes,
    workload::NpbConfig config);

}  // namespace penelope::cluster
