// Scale-study runner (§4.5): reproduces the methodology the paper uses
// when it runs out of hardware — deciders no longer drive real
// applications but replay a completion-burst window: half the cluster
// runs an application that finishes mid-window, flooding the system with
// excess power that must move "from the now idle nodes to those still
// running". The two §4.5 metrics fall out:
//
//   power redistribution time — time from the burst until X% of the
//     released power has been applied to power-hungry caps (Figs 4–6);
//     when a system never reaches X% (a saturated SLURM server dropping
//     packets), the paper charges it the whole experiment runtime, and so
//     do we.
//   turnaround time — per-request wait for a pool/server response
//     (Figs 7–8).
#pragma once

#include <cstdint>
#include <optional>

#include "cluster/cluster.hpp"

namespace penelope::cluster {

struct ScaleConfig {
  ManagerKind manager = ManagerKind::kPenelope;
  int n_nodes = 1056;
  /// Local decider iteration frequency (x-axis of Figures 4, 5, 7).
  double frequency_hz = 1.0;
  /// When the bursting half completes (full-speed work seconds).
  double burst_at_seconds = 5.0;
  /// Measurement window after the burst.
  double window_seconds = 60.0;
  /// Per-socket initial cap; 60 W keeps plenty of absorption headroom so
  /// full redistribution is feasible (see DESIGN.md §4).
  double per_socket_cap_watts = 60.0;
  /// Demand of the still-running half (well above its cap: hungry).
  double hungry_demand_watts = 240.0;
  /// Demand of the bursting half while it runs (slightly above its cap).
  double burst_demand_margin_watts = 30.0;
  /// Event-execution threads for the single run (ClusterConfig::sim_jobs):
  /// >1 shards the cluster over that many engines with a bit-identical
  /// merged trace (DESIGN.md §12).
  int sim_jobs = 1;
  /// Hierarchical pool federation (DESIGN.md §13): leaf pool count for
  /// the flat-arena path; 0 (default) runs the classic flat actors.
  int pools = 0;
  /// Children per inner pool in the federation tree.
  int fanout = 8;
  /// Health-monitor sampling cadence (ClusterConfig::series_interval);
  /// 0 (default) keeps telemetry off so existing scale runs and their
  /// trace hashes are untouched. When > 0 the result carries the online
  /// convergence measurements below.
  common::Ticks series_interval = 0;
  /// Convergence tolerance on Jain's index (converged: J >= 1 - eps).
  double health_epsilon = 0.01;
  std::uint64_t seed = 42;
};

struct ScaleResult {
  /// Excess released by the bursting half (watts).
  double available_watts = 0.0;
  double shifted_watts = 0.0;
  /// Time to redistribute 50% of the excess; the full window if never.
  double median_redistribution_s = 0.0;
  bool median_reached = false;
  /// Time to redistribute 100%; the full window if never (the paper's
  /// convention for a dropping server).
  double total_redistribution_s = 0.0;
  bool total_reached = false;
  double mean_turnaround_ms = 0.0;
  double stddev_turnaround_ms = 0.0;
  double p99_turnaround_ms = 0.0;
  std::uint64_t turnaround_samples = 0;
  /// Raw turnaround samples (ms) for distribution plots.
  std::vector<double> turnaround_ms;
  std::uint64_t timeouts = 0;
  std::uint64_t requests_sent = 0;
  std::uint64_t server_drops = 0;   ///< central only: inbox overflow
  double server_mean_queue_wait_ms = 0.0;
  double stranded_watts = 0.0;
  double max_conservation_error = 0.0;
  /// Total logical sends across the run (the message-volume axis of the
  /// federation A/B figure).
  std::uint64_t messages_sent = 0;
  /// Federation traffic (zero on the classic path): aggregated deficit
  /// reports, inter-pool transfers, and the watts those transfers moved.
  std::uint64_t federated_requests = 0;
  std::uint64_t federated_transfers = 0;
  double federated_watts_moved = 0.0;
  /// Online convergence (series_interval > 0 only): time from the burst
  /// until Jain's index over active nodes recovers to >= 1 - epsilon,
  /// the lowest J seen after the burst, and whether recovery happened
  /// inside the window at all.
  bool health_sampled = false;
  bool converged = false;
  double convergence_s = 0.0;
  double min_jain = 1.0;
};

/// Run one completion-burst experiment and analyze it.
ScaleResult run_scale_experiment(const ScaleConfig& config);

/// The ClusterConfig a scale experiment uses (exposed for tests).
ClusterConfig make_scale_cluster_config(const ScaleConfig& config);

}  // namespace penelope::cluster
