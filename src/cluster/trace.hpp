// Per-node trajectory tracing: samples every node's cap, pool, actual
// power and progress on a fixed cadence so runs can be plotted and so
// the ablation benches can measure *power oscillation* (§3.2) directly
// instead of through proxies.
//
// Tracing is off by default (ClusterConfig::trace_interval == 0); a
// 1056-node scale run would otherwise accumulate millions of samples.
#pragma once

#include <string>
#include <vector>

#include "common/units.hpp"
#include "telemetry/export.hpp"

namespace penelope::cluster {

struct TraceSample {
  common::Ticks at = 0;
  int node = -1;
  double cap_watts = 0.0;
  double pool_watts = 0.0;
  double power_watts = 0.0;   ///< instantaneous delivered power
  double demand_watts = 0.0;  ///< what the workload currently wants
  double fraction_complete = 0.0;
};

class Trace {
 public:
  void add(TraceSample sample) { samples_.push_back(sample); }

  const std::vector<TraceSample>& samples() const { return samples_; }
  bool empty() const { return samples_.empty(); }

  /// Samples of one node, in time order.
  std::vector<TraceSample> node_series(int node) const;

  /// Mean |cap(t) - cap(t-1)| for one node — the §3.2 oscillation
  /// metric. Returns 0 with fewer than two samples.
  double cap_oscillation(int node) const;

  /// Mean oscillation across all nodes present in the trace.
  double mean_cap_oscillation() const;

  /// Time-averaged cap of one node.
  double mean_cap(int node) const;

  /// Largest cap swing (max - min) seen on any node.
  double peak_cap_swing() const;

  /// Node ids present in the trace, ascending.
  std::vector<int> nodes() const;

  /// CSV with header: t_s,node,cap_w,pool_w,power_w,demand_w,frac.
  std::string to_csv() const;
  bool write_csv(const std::string& path) const;

  /// One JSON object per line, same fields as the CSV columns.
  std::string to_jsonl() const;
  bool write_jsonl(const std::string& path) const;

  /// Per-node cap and pool series as Perfetto counter tracks
  /// ("node 3 cap_w", "node 3 pool_w", ...).
  std::vector<telemetry::CounterTrack> counter_tracks() const;

 private:
  std::vector<TraceSample> samples_;
};

}  // namespace penelope::cluster
