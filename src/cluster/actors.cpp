#include "cluster/actors.hpp"

#include <utility>

#include "central/protocol.hpp"
#include "common/check.hpp"
#include "common/log.hpp"
#include "common/units.hpp"
#include "core/protocol.hpp"

namespace penelope::cluster {

namespace {
/// Hard cap on the timed-out-transaction maps (S2): the horizon prune
/// alone cannot bound them when every entry is recent.
constexpr std::size_t kStaleCap = 256;
/// Entries older than this many periods are certainly dead: the fabric's
/// redelivery horizon is far shorter than 64 control periods.
constexpr common::Ticks kStaleHorizonPeriods = 64;
/// Txn-id stream for membership/reclaim journal records: reclaimed
/// watts are attributable to (dead node, incarnation) straight from the
/// id, like grants are to their minting node.
constexpr std::uint32_t kMembershipStream = 2;

std::uint64_t membership_txn(std::int32_t node, std::uint32_t incarnation) {
  return core::make_txn_id(node, kMembershipStream, incarnation);
}

/// Shared server-side bookkeeping for a detector signal about `peer`.
void note_server_signal(ClusterMetrics& metrics, common::Ticks now,
                        const core::FailureDetector& detector,
                        net::NodeId observer, std::int32_t peer,
                        core::MembershipSignal signal) {
  if (signal == core::MembershipSignal::kRecovered) {
    metrics.record_false_suspicion();
    metrics.recorder().record(
        now, membership_txn(peer, detector.incarnation(peer)),
        telemetry::TxnEventKind::kFalseSuspicion, observer, peer, 0.0);
  } else if (signal == core::MembershipSignal::kRejoined) {
    metrics.recorder().record(
        now, membership_txn(peer, detector.incarnation(peer)),
        telemetry::TxnEventKind::kPeerRejoined, observer, peer, 0.0);
  }
}
}  // namespace

void bound_stale_map(
    std::unordered_map<std::uint64_t, common::Ticks>& stale,
    common::Ticks horizon, std::size_t cap) {
  if (stale.size() <= cap) return;
  std::erase_if(stale,
                [horizon](const auto& kv) { return kv.second < horizon; });
  // A loss burst can leave every entry inside the horizon; evict oldest
  // until the cap holds. Linear min-scans are fine at cap = 256.
  while (stale.size() > cap) {
    auto oldest = stale.begin();
    for (auto it = stale.begin(); it != stale.end(); ++it) {
      if (it->second < oldest->second) oldest = it;
    }
    stale.erase(oldest);
  }
}

// ---------------------------------------------------------------------------
// NodeBody

NodeBody::NodeBody(sim::Simulator& sim, const NodeConfig& config,
                   workload::WorkloadProfile profile)
    : sim_(sim),
      config_(config),
      rapl_([&] {
        power::SimulatedRaplConfig rc = config.rapl;
        rc.initial_cap_watts = config.initial_cap_watts;
        rc.initial_demand_watts = profile.phases.front().demand_watts;
        rc.seed = config.seed ^ 0x9d2c5680u;
        return rc;
      }()),
      perf_(config.perf),
      app_(std::move(profile), config.rapl.idle_watts),
      noise_rng_(config.seed ^ 0xb5297a4du) {}

double NodeBody::tick(common::Ticks now) {
  PEN_CHECK(now >= last_tick_);
  // True average power delivered since the last tick drives application
  // progress; the manager sees this value plus measurement noise.
  double avg = rapl_.read_average_power(now);
  bool was_done = app_.done();
  bool demand_changed = app_.advance(last_tick_, now, avg, perf_);
  if (demand_changed) {
    rapl_.set_demand(app_.current_demand(), now);
  }
  if (!was_done && app_.done() && !completion_reported_) {
    completion_reported_ = true;
    if (on_complete_) {
      on_complete_(config_.id, app_.completion_time().value());
    }
  }
  last_tick_ = now;
  if (config_.measurement_noise_watts > 0.0) {
    avg += noise_rng_.normal(0.0, config_.measurement_noise_watts);
    if (avg < 0.0) avg = 0.0;
  }
  return avg;
}

// ---------------------------------------------------------------------------
// FairNodeActor

FairNodeActor::FairNodeActor(sim::Simulator& sim, const NodeConfig& config,
                             workload::WorkloadProfile profile)
    : body_(sim, config, std::move(profile)),
      tick_task_(sim, config.start_offset, config.period,
                 [this](common::Ticks now) { body_.tick(now); }) {
  body_.rapl().set_cap(config.initial_cap_watts);
}

// ---------------------------------------------------------------------------
// PenelopeNodeActor

PenelopeNodeActor::PenelopeNodeActor(
    sim::Simulator& sim, net::Network& net, const NodeConfig& config,
    const core::PoolConfig& pool_config,
    const net::SerialServerConfig& pool_service,
    workload::WorkloadProfile profile, std::function<NodeId()> pick_peer,
    ClusterMetrics& metrics)
    : sim_(sim),
      net_(net),
      body_(sim, config, std::move(profile)),
      pool_(pool_config),
      decider_(
          core::DeciderConfig{config.initial_cap_watts,
                              config.epsilon_watts,
                              config.rapl.safe_range,
                              config.local_take,
                              config.urgency_enabled,
                              config.id},
          pool_),
      pool_service_(
          sim,
          [&] {
            net::SerialServerConfig sc = pool_service;
            sc.seed = config.seed ^ 0x1f83d9abu;
            return sc;
          }(),
          [this](const net::Message& m) { on_pool_request(m); }),
      pick_peer_(std::move(pick_peer)),
      metrics_(metrics),
      tick_task_(sim, config.start_offset, config.period,
                 [this](common::Ticks now) { on_tick(now); }) {
  PEN_CHECK(pick_peer_ != nullptr);
  body_.rapl().set_cap(decider_.cap());
  net_.register_endpoint(config.id,
                         [this](const net::Message& m) { on_message(m); });
  if (config.membership_enabled) {
    detector_.emplace(config.membership);
    for (NodeId peer : config.membership_peers)
      detector_->track(peer, sim_.now());
    next_heartbeat_at_ = config.start_offset;
  }
}

bool PenelopeNodeActor::peer_blacklisted(NodeId peer) const {
  if (body_.config().blacklist_after_timeouts <= 0) return false;
  auto it = peer_health_.find(peer);
  return it != peer_health_.end() &&
         it->second.blacklisted_until > sim_.now();
}

void PenelopeNodeActor::note_peer_timeout(NodeId peer) {
  if (body_.config().blacklist_after_timeouts <= 0 ||
      peer == net::kNoNode)
    return;
  PeerHealth& health = peer_health_[peer];
  if (++health.consecutive_timeouts >=
      body_.config().blacklist_after_timeouts) {
    health.blacklisted_until =
        sim_.now() + body_.config().blacklist_duration;
    health.consecutive_timeouts = 0;
  }
}

void PenelopeNodeActor::force_peer_blacklist(NodeId peer,
                                             common::Ticks until) {
  peer_health_[peer].blacklisted_until = until;
}

void PenelopeNodeActor::note_peer_answered(NodeId peer) {
  if (body_.config().blacklist_after_timeouts <= 0 ||
      peer == net::kNoNode)
    return;
  auto it = peer_health_.find(peer);
  if (it != peer_health_.end()) {
    it->second.consecutive_timeouts = 0;
    it->second.blacklisted_until = 0;
  }
}

double PenelopeNodeActor::apply_budget_delta(double delta_watts) {
  double retired = decider_.apply_budget_delta(delta_watts);
  body_.rapl().set_cap(decider_.cap());
  return retired;
}

void PenelopeNodeActor::kill_management() {
  management_alive_ = false;
  pool_service_.halt();
  // The workload keeps running at the frozen cap; only the decision
  // plane is gone. Peer requests still arriving are dropped by the
  // halted service (empty-handed peers simply time out).
}

bool PenelopeNodeActor::peer_unusable(NodeId peer) const {
  if (peer_blacklisted(peer)) return true;
  // Detector-informed avoidance: probing a declared-dead peer is a
  // guaranteed timeout until it rejoins (which flips it back to alive).
  return detector_ &&
         detector_->liveness(peer) == core::PeerLiveness::kDead;
}

void PenelopeNodeActor::note_membership_signal(
    core::MembershipSignal signal, NodeId peer) {
  if (signal == core::MembershipSignal::kRecovered) {
    // The peer we suspected (or buried) is talking at the incarnation we
    // condemned: the suspicion was false. Nothing to undo — if its tag
    // was reclaimed, that consumption was exactly-once and the peer
    // readmits itself at fair share like any rejoiner.
    metrics_.record_false_suspicion();
    metrics_.recorder().record(
        sim_.now(), membership_txn(peer, detector_->incarnation(peer)),
        telemetry::TxnEventKind::kFalseSuspicion, body_.config().id, peer,
        0.0);
  } else if (signal == core::MembershipSignal::kRejoined) {
    metrics_.recorder().record(
        sim_.now(), membership_txn(peer, detector_->incarnation(peer)),
        telemetry::TxnEventKind::kPeerRejoined, body_.config().id, peer,
        0.0);
  }
  // kFresh: routine. kStaleQuarantined: a ghost of a dead incarnation;
  // deliberately no liveness credit and no ledger movement.
}

void PenelopeNodeActor::membership_tick(common::Ticks now) {
  if (!detector_) return;
  if (now >= next_heartbeat_at_) {
    for (NodeId peer : body_.config().membership_peers) {
      net_.send(body_.config().id, peer,
                core::Heartbeat{body_.config().id, incarnation_});
    }
    next_heartbeat_at_ = now + body_.config().membership.heartbeat_period;
  }
  transitions_.clear();
  detector_->tick(now, transitions_);
  for (const core::MembershipTransition& t : transitions_) {
    if (t.to == core::PeerLiveness::kSuspected) {
      metrics_.record_suspicion();
      metrics_.recorder().record(now, membership_txn(t.peer, t.incarnation),
                                 telemetry::TxnEventKind::kPeerSuspected,
                                 body_.config().id, t.peer, 0.0);
    } else if (t.to == core::PeerLiveness::kDead) {
      metrics_.record_declared_dead();
      metrics_.recorder().record(
          now, membership_txn(t.peer, t.incarnation),
          telemetry::TxnEventKind::kPeerDeclaredDead, body_.config().id,
          t.peer, 0.0);
      // Epoch-guarded reclamation: consume the dead peer's (node,
      // incarnation) tag — exactly one declarer cluster-wide gets the
      // watts — and put them back into circulation through this pool.
      double reclaimed = metrics_.reclaim_from(t.peer, t.incarnation);
      if (reclaimed > 0.0) {
        pool_.deposit(reclaimed);
        metrics_.record_release(now, reclaimed, body_.config().id);
        metrics_.recorder().record(
            now, membership_txn(t.peer, t.incarnation),
            telemetry::TxnEventKind::kReclaimed, body_.config().id, t.peer,
            reclaimed);
      }
    }
  }
}

void PenelopeNodeActor::crash() {
  if (crashed_) return;
  crashed_ = true;
  if (observer_dirty_) *observer_dirty_ = 1;
  management_alive_ = false;
  // Volatile protocol state dies with the process.
  if (outstanding_) {
    sim_.cancel(outstanding_->timeout_event);
    outstanding_.reset();
  }
  stale_sent_times_.clear();
  peer_health_.clear();
  sticky_peer_ = net::kNoNode;
  hinted_peer_ = net::kNoNode;
  last_queried_peer_ = net::kNoNode;
  grant_window_.reset();
  request_window_.reset();
  pool_service_.halt();
  // Live power above the firmware-default safe minimum is seized and
  // stranded against this incarnation: the banked pool plus the cap
  // share. It was live — not in flight — hence the residue variant.
  double residue = pool_.drain() + decider_.seize_for_restart();
  body_.rapl().set_cap(decider_.cap());
  if (residue > 0.0) {
    metrics_.strand_residue_against(body_.config().id, incarnation_,
                                    residue);
    metrics_.recorder().record(
        sim_.now(), membership_txn(body_.config().id, incarnation_),
        telemetry::TxnEventKind::kStranded, body_.config().id,
        net::kNoNode, residue);
  }
  net_.fail_node(body_.config().id);
}

void PenelopeNodeActor::restart() {
  if (!crashed_) return;
  crashed_ = false;
  if (observer_dirty_) *observer_dirty_ = 1;
  std::uint32_t previous = incarnation_++;
  management_alive_ = true;
  pool_service_.resume();
  net_.recover_node(body_.config().id);
  if (detector_) {
    // The detector's peer views were volatile too: rebuild them fresh so
    // the restarted node does not instantly condemn peers it has not
    // heard from since before its own crash.
    detector_.emplace(body_.config().membership);
    for (NodeId peer : body_.config().membership_peers)
      detector_->track(peer, sim_.now());
    next_heartbeat_at_ = sim_.now();
  }
  // Self-reclaim: if no peer consumed this node's crash residue while it
  // was down, the tag would strand forever (peers saw it return before
  // declaring it dead). The restarting node takes its own leftovers
  // back; the exactly-once tag makes this race-free against a
  // simultaneous peer declaration.
  double leftover = metrics_.reclaim_from(body_.config().id, previous);
  if (leftover > 0.0) {
    pool_.deposit(leftover);
    metrics_.record_release(sim_.now(), leftover, body_.config().id);
    metrics_.recorder().record(
        sim_.now(), membership_txn(body_.config().id, previous),
        telemetry::TxnEventKind::kReclaimed, body_.config().id,
        body_.config().id, leftover);
  }
}

void PenelopeNodeActor::on_message(const net::Message& msg) {
  if (detector_ && msg.src >= 0 && msg.src != body_.config().id) {
    if (const auto* beat = msg.as<core::Heartbeat>()) {
      note_membership_signal(
          detector_->observe_heartbeat(beat->node, beat->incarnation,
                                       sim_.now()),
          msg.src);
      return;
    }
    // Piggybacked liveness: any protocol message proves the sender is up
    // at its last-known incarnation.
    note_membership_signal(detector_->observe_traffic(msg.src, sim_.now()),
                           msg.src);
  } else if (msg.as<core::Heartbeat>() != nullptr) {
    return;  // membership disabled here; a peer's beacon is just noise
  }
  if (msg.as<core::PowerRequest>() != nullptr) {
    // Requests contend for the pool's serial service (this is where a
    // pool being "overburdened with requests" would show up — it never
    // does, because load spreads across N pools).
    pool_service_.inbox(msg);
  } else if (msg.as<core::PowerGrant>() != nullptr) {
    on_grant(msg);
  } else if (const auto* push = msg.as<core::PowerPush>()) {
    // Push-gossip deposit: the watts were withdrawn from the sender's
    // pool; they land in ours (or strand if our management is dead).
    // The window check comes first so a redelivered push can neither
    // deposit nor strand its watts a second time.
    if (!grant_window_.insert(push->txn_id)) {
      metrics_.record_duplicate_drop(push->watts);
      metrics_.recorder().record(sim_.now(), push->txn_id,
                                 telemetry::TxnEventKind::kDuplicateDropped,
                                 body_.config().id, msg.src, push->watts);
    } else if (push->watts > 0.0) {
      if (management_alive_) {
        metrics_.grant_arrived(push->watts);
        pool_.deposit(push->watts);
        metrics_.recorder().record(sim_.now(), push->txn_id,
                                   telemetry::TxnEventKind::kPushReceived,
                                   body_.config().id, msg.src, push->watts);
      } else {
        metrics_.watts_stranded(push->watts);
        metrics_.recorder().record(sim_.now(), push->txn_id,
                                   telemetry::TxnEventKind::kStranded,
                                   body_.config().id, msg.src, push->watts);
      }
    }
  } else {
    PEN_LOG_WARN("penelope node %d: unexpected payload from %d",
                 body_.config().id, msg.src);
  }
}

void PenelopeNodeActor::on_pool_request(const net::Message& msg) {
  const auto* request = msg.as<core::PowerRequest>();
  PEN_CHECK(request != nullptr);
  if (!management_alive_) return;
  // A redelivered request must not debit the pool twice (the first copy's
  // grant is the transaction's one answer; the requester dedups it too).
  if (!request_window_.insert(request->txn_id)) {
    metrics_.record_duplicate_drop(0.0);
    metrics_.recorder().record(sim_.now(), request->txn_id,
                               telemetry::TxnEventKind::kDuplicateDropped,
                               body_.config().id, msg.src, 0.0);
    return;
  }
  double granted = pool_.serve(*request);
  if (granted > 0.0) metrics_.grant_departed(granted);
  metrics_.recorder().record(sim_.now(), request->txn_id,
                             telemetry::TxnEventKind::kRequestServed,
                             body_.config().id, msg.src, granted);
  if (granted > 0.0 && metrics_.tracer().enabled()) {
    // Peer-to-peer grant chain: the flow is the request txn itself (one
    // hop pair, source at the server, sink where the watts apply).
    metrics_.tracer().record(sim_.now(), request->txn_id,
                             telemetry::FlowHopKind::kSource,
                             body_.config().id,
                             static_cast<std::int32_t>(msg.src), granted,
                             "grant");
  }
  core::PowerGrant grant{granted, request->txn_id};
  if (body_.config().hint_discovery && granted <= 0.0 &&
      sticky_peer_ != net::kNoNode && sticky_peer_ != msg.src) {
    // Empty-handed: refer the requester to the peer that last paid us.
    grant.hint_peer = sticky_peer_;
  }
  net_.send(body_.config().id, msg.src, grant);
}

void PenelopeNodeActor::prune_stale() {
  bound_stale_map(stale_sent_times_,
                  sim_.now() - kStaleHorizonPeriods * body_.config().period,
                  kStaleCap);
}

void PenelopeNodeActor::resolve_outstanding_as_timeout() {
  if (!outstanding_ || !management_alive_) return;
  metrics_.record_timeout();
  metrics_.recorder().record(sim_.now(), outstanding_->txn,
                             telemetry::TxnEventKind::kTimeout,
                             body_.config().id, outstanding_->peer, 0.0);
  sticky_peer_ = net::kNoNode;  // a silent peer is not worth retrying
  note_peer_timeout(outstanding_->peer);
  stale_sent_times_[outstanding_->txn] = outstanding_->sent_at;
  // Bound the map: entries whose grants were genuinely lost would
  // otherwise accumulate over long lossy runs.
  prune_stale();
  sim_.cancel(outstanding_->timeout_event);
  outstanding_.reset();
  // The decider's pending step resolves with nothing; the localUrgency
  // check still runs so a timed-out urgent round cannot wedge releases.
  decider_.complete_peer_grant(0.0);
  finish_step(sim_.now());
}

void PenelopeNodeActor::on_tick(common::Ticks now) {
  double measured = body_.tick(now);
  if (!management_alive_) return;

  membership_tick(now);

  // A request from the previous period that never resolved is a timeout
  // (dead peer, lost packet): Figure 3's fault tolerance comes from this
  // path — the decider just moves on.
  if (outstanding_) resolve_outstanding_as_timeout();

  core::StepOutcome outcome = decider_.begin_step(measured);
  metrics_.record_decider_step();
  body_.rapl().set_cap(decider_.cap());

  switch (outcome.kind) {
    case core::StepKind::kDepositedExcess:
      metrics_.record_release(now, outcome.delta_watts,
                              body_.config().id);
      finish_step(now);
      break;
    case core::StepKind::kTookLocal:
      metrics_.record_apply(now, outcome.delta_watts, body_.config().id);
      finish_step(now);
      break;
    case core::StepKind::kHeld:
      finish_step(now);
      break;
    case core::StepKind::kNeedsPeer: {
      // Sticky and hinted peers are subject to the blacklist like any
      // other draw: a blacklisted sticky/hinted peer falls through to
      // the redraw path instead of eating a guaranteed-timeout probe.
      NodeId peer = net::kNoNode;
      if (body_.config().sticky_peers && sticky_peer_ != net::kNoNode &&
          !peer_unusable(sticky_peer_)) {
        peer = sticky_peer_;
      } else if (body_.config().hint_discovery &&
                 hinted_peer_ != net::kNoNode &&
                 hinted_peer_ != body_.config().id) {
        NodeId hint = hinted_peer_;
        hinted_peer_ = net::kNoNode;  // hints are one-shot, even refused
        if (!peer_unusable(hint)) peer = hint;
      }
      if (peer == net::kNoNode) {
        peer = pick_peer_();
        // Skip blacklisted (or detector-dead) peers with a few bounded
        // redraws; if the whole sample comes up unusable, probe anyway
        // (the view could be stale and starving discovery entirely is
        // worse).
        for (int attempt = 0;
             attempt < 4 && peer_unusable(peer); ++attempt) {
          peer = pick_peer_();
        }
      }
      PEN_DCHECK(peer != body_.config().id);
      last_queried_peer_ = peer;
      metrics_.record_request_sent();
      metrics_.recorder().record(now, outcome.request.txn_id,
                                 telemetry::TxnEventKind::kRequestSent,
                                 body_.config().id, peer,
                                 outcome.request.alpha_watts);
      net_.send(body_.config().id, peer, outcome.request);
      Outstanding out;
      out.txn = outcome.request.txn_id;
      out.sent_at = now;
      out.peer = peer;
      out.timeout_event = sim_.schedule_after(
          body_.config().request_timeout, [this] {
            // Cancelling a fired id is a detected no-op in the engine
            // (generation-checked); clearing it here just keeps the
            // record honest about having no pending timeout.
            if (outstanding_)
              outstanding_->timeout_event = sim::kInvalidEventId;
            resolve_outstanding_as_timeout();
          });
      outstanding_ = out;
      break;
    }
  }
}

void PenelopeNodeActor::on_grant(const net::Message& msg) {
  const auto* grant = msg.as<core::PowerGrant>();
  PEN_CHECK(grant != nullptr);

  // At-most-once: a redelivered grant is counted and dropped before any
  // other branch can apply, bank, or strand its watts a second time.
  // The DST planted-bug hook reverts this hardening (and the late-grant
  // in-flight decrement below) so the swarm has a real bug to find.
  if (!body_.config().test_revert_grant_fix &&
      !grant_window_.insert(grant->txn_id)) {
    metrics_.record_duplicate_drop(grant->watts);
    metrics_.recorder().record(sim_.now(), grant->txn_id,
                               telemetry::TxnEventKind::kDuplicateDropped,
                               body_.config().id, msg.src, grant->watts);
    return;
  }

  if (!management_alive_) {
    // Management died with a request in flight: the watts would strand
    // inside a dead process; account them as lost.
    if (grant->watts > 0.0) {
      metrics_.watts_stranded(grant->watts);
      metrics_.recorder().record(sim_.now(), grant->txn_id,
                                 telemetry::TxnEventKind::kStranded,
                                 body_.config().id, msg.src, grant->watts);
    }
    return;
  }

  if (outstanding_ && outstanding_->txn == grant->txn_id) {
    sim_.cancel(outstanding_->timeout_event);
    metrics_.record_turnaround(outstanding_->sent_at, sim_.now());
    metrics_.recorder().record(sim_.now(), grant->txn_id,
                               telemetry::TxnEventKind::kGrantReceived,
                               body_.config().id, msg.src, grant->watts);
    note_peer_answered(outstanding_->peer);
    outstanding_.reset();
    if (body_.config().sticky_peers || body_.config().hint_discovery) {
      sticky_peer_ = grant->watts > 0.0 ? last_queried_peer_ : net::kNoNode;
    }
    if (body_.config().hint_discovery && grant->hint_peer >= 0 &&
        grant->hint_peer != body_.config().id) {
      hinted_peer_ = grant->hint_peer;
    }
    if (grant->watts > 0.0) {
      metrics_.grant_arrived(grant->watts);
      // The decider applies what fits under the safe ceiling and banks
      // the remainder in the local pool; record each part as what it is
      // (counting the full grant as applied over-stated cap movement).
      double applied = decider_.complete_peer_grant(grant->watts);
      body_.rapl().set_cap(decider_.cap());
      if (applied > 0.0) {
        metrics_.record_apply(sim_.now(), applied, body_.config().id);
        metrics_.recorder().record(sim_.now(), grant->txn_id,
                                   telemetry::TxnEventKind::kApplied,
                                   body_.config().id, msg.src, applied);
        if (metrics_.tracer().enabled()) {
          metrics_.tracer().record(sim_.now(), grant->txn_id,
                                   telemetry::FlowHopKind::kSink,
                                   body_.config().id,
                                   static_cast<std::int32_t>(msg.src),
                                   applied, "apply");
        }
      }
      double banked = grant->watts - applied;
      if (banked > common::kWattEpsilon) {
        metrics_.record_release(sim_.now(), banked, body_.config().id);
        metrics_.recorder().record(sim_.now(), grant->txn_id,
                                   telemetry::TxnEventKind::kBanked,
                                   body_.config().id, msg.src, banked);
      }
    } else {
      decider_.complete_peer_grant(0.0);
    }
    finish_step(sim_.now());
    return;
  }

  // A grant for a transaction we already gave up on. The power is real —
  // the peer debited its pool — so bank it in the local pool; the next
  // hungry step takes it from there. Nothing is lost, just late, and the
  // waiting time still belongs in the turnaround distribution.
  auto stale = stale_sent_times_.find(grant->txn_id);
  if (stale != stale_sent_times_.end()) {
    metrics_.record_turnaround(stale->second, sim_.now());
    stale_sent_times_.erase(stale);
  } else {
    // Rate-limited: a hostile fault schedule (or the DST planted bug)
    // can make unknown-txn grants arrive in bursts.
    PEN_LOG_WARN_RATED(64, "penelope node %d: grant for unknown txn %llu",
                       body_.config().id,
                       static_cast<unsigned long long>(grant->txn_id));
  }
  // Grant arrivals also bound the stale map, so shrinking it does not
  // have to wait for the next timeout.
  prune_stale();
  metrics_.recorder().record(sim_.now(), grant->txn_id,
                             telemetry::TxnEventKind::kLateGrant,
                             body_.config().id, msg.src, grant->watts);
  if (grant->watts > 0.0) {
    if (!body_.config().test_revert_grant_fix)
      metrics_.grant_arrived(grant->watts);
    pool_.deposit(grant->watts);
    metrics_.recorder().record(sim_.now(), grant->txn_id,
                               telemetry::TxnEventKind::kBanked,
                               body_.config().id, msg.src, grant->watts);
  }
}

void PenelopeNodeActor::finish_step(common::Ticks now) {
  double released = decider_.finish_step();
  if (released > 0.0) {
    body_.rapl().set_cap(decider_.cap());
    metrics_.record_release(now, released, body_.config().id);
  }
  if (body_.config().push_gossip &&
      pool_.available() > body_.config().push_threshold_watts) {
    double push_watts =
        pool_.withdraw(body_.config().push_fraction * pool_.available());
    if (push_watts > 0.0) {
      metrics_.grant_departed(push_watts);
      NodeId push_peer = pick_peer_();
      std::uint64_t push_txn =
          core::make_txn_id(body_.config().id, 1, ++push_seq_);
      metrics_.recorder().record(now, push_txn,
                                 telemetry::TxnEventKind::kPushSent,
                                 body_.config().id, push_peer, push_watts);
      net_.send(body_.config().id, push_peer,
                core::PowerPush{push_watts, push_txn});
    }
  }
}

// ---------------------------------------------------------------------------
// CentralClientActor

CentralClientActor::CentralClientActor(sim::Simulator& sim,
                                       net::Network& net,
                                       const NodeConfig& config,
                                       NodeId server_id,
                                       workload::WorkloadProfile profile,
                                       ClusterMetrics& metrics,
                                       bool hierarchical)
    : sim_(sim),
      net_(net),
      body_(sim, config, std::move(profile)),
      client_(central::ClientConfig{config.initial_cap_watts,
                                    config.epsilon_watts,
                                    config.rapl.safe_range,
                                    config.id}),
      server_id_(server_id),
      metrics_(metrics),
      tick_task_(sim, config.start_offset, config.period,
                 [this](common::Ticks now) { on_tick(now); }),
      awaiting_assignment_(hierarchical) {
  body_.rapl().set_cap(client_.cap());
  net_.register_endpoint(
      config.id, [this](const net::Message& m) { on_message(m); });
}

void CentralClientActor::on_message(const net::Message& msg) {
  if (const auto* assignment = msg.as<hierarchy::CapAssignment>()) {
    // PoDD's top-level assignment arrived: adopt it. A cap reduction is
    // donated back immediately; a raise is claimed through the normal
    // urgency path (the node is now below its initial cap).
    awaiting_assignment_ = false;
    double give_back = client_.reassign(assignment->initial_cap_watts);
    body_.rapl().set_cap(client_.cap());
    donate(give_back, sim_.now());
    return;
  }
  on_grant(msg);
}

double CentralClientActor::apply_budget_delta(double delta_watts) {
  central::Client::BudgetDeltaResult result =
      client_.apply_budget_delta(delta_watts);
  body_.rapl().set_cap(client_.cap());
  // Share the unusable part of a budget increase through the server.
  donate(result.donate_watts, sim_.now());
  return result.retired_now;
}

void CentralClientActor::donate(double watts, common::Ticks now) {
  if (watts <= 0.0) return;
  metrics_.record_release(now, watts, body_.config().id);
  metrics_.donation_departed(watts);
  std::uint64_t txn =
      core::make_txn_id(body_.config().id, 1, ++donation_seq_);
  metrics_.recorder().record(now, txn,
                             telemetry::TxnEventKind::kDonationSent,
                             body_.config().id, server_id_, watts);
  net_.send(body_.config().id, server_id_,
            central::CentralDonation{watts, txn});
}

void CentralClientActor::prune_stale() {
  bound_stale_map(stale_sent_times_,
                  sim_.now() - kStaleHorizonPeriods * body_.config().period,
                  kStaleCap);
}

void CentralClientActor::resolve_outstanding_as_timeout() {
  if (!outstanding_) return;
  metrics_.record_timeout();
  metrics_.recorder().record(sim_.now(), outstanding_->txn,
                             telemetry::TxnEventKind::kTimeout,
                             body_.config().id, server_id_, 0.0);
  stale_sent_times_[outstanding_->txn] = outstanding_->sent_at;
  prune_stale();
  sim_.cancel(outstanding_->timeout_event);
  outstanding_.reset();
  client_.on_grant_timeout();
}

void CentralClientActor::crash() {
  if (crashed_) return;
  crashed_ = true;
  if (outstanding_) {
    sim_.cancel(outstanding_->timeout_event);
    outstanding_.reset();
  }
  stale_sent_times_.clear();
  grant_window_.reset();
  double residue = client_.seize_for_restart();
  body_.rapl().set_cap(client_.cap());
  if (residue > 0.0) {
    // Stranded against this incarnation; the server's detector reclaims
    // it into the central budget (the SLURM-analogue path).
    metrics_.strand_residue_against(body_.config().id, incarnation_,
                                    residue);
    metrics_.recorder().record(
        sim_.now(), membership_txn(body_.config().id, incarnation_),
        telemetry::TxnEventKind::kStranded, body_.config().id,
        net::kNoNode, residue);
  }
  net_.fail_node(body_.config().id);
}

void CentralClientActor::restart() {
  if (!crashed_) return;
  crashed_ = false;
  std::uint32_t previous = incarnation_++;
  net_.recover_node(body_.config().id);
  next_heartbeat_at_ = sim_.now();
  // Self-reclaim leftovers the server never condemned us for, and hand
  // them straight to the server: a rejoining SLURM client owns nothing
  // beyond its cap — the budget lives centrally.
  double leftover = metrics_.reclaim_from(body_.config().id, previous);
  if (leftover > 0.0) {
    metrics_.recorder().record(
        sim_.now(), membership_txn(body_.config().id, previous),
        telemetry::TxnEventKind::kReclaimed, body_.config().id,
        body_.config().id, leftover);
    donate(leftover, sim_.now());
  }
}

void CentralClientActor::on_tick(common::Ticks now) {
  if (crashed_) {
    body_.tick(now);
    return;
  }
  if (body_.config().membership_enabled && now >= next_heartbeat_at_) {
    net_.send(body_.config().id, server_id_,
              core::Heartbeat{body_.config().id, incarnation_});
    next_heartbeat_at_ = now + body_.config().membership.heartbeat_period;
  }
  double measured = body_.tick(now);

  if (awaiting_assignment_) {
    // PoDD profiling phase: report, don't shift. The cap stays at the
    // uniform initial assignment while the server learns demands.
    net_.send(body_.config().id, server_id_,
              hierarchy::ProfileReport{measured});
    return;
  }

  if (outstanding_) resolve_outstanding_as_timeout();

  central::ClientStepOutcome outcome = client_.begin_step(measured);
  metrics_.record_decider_step();
  body_.rapl().set_cap(client_.cap());

  switch (outcome.kind) {
    case central::ClientStepKind::kDonate:
      donate(outcome.delta_watts, now);
      break;
    case central::ClientStepKind::kHeld:
      break;
    case central::ClientStepKind::kNeedsServer: {
      metrics_.record_request_sent();
      metrics_.recorder().record(now, outcome.request.txn_id,
                                 telemetry::TxnEventKind::kRequestSent,
                                 body_.config().id, server_id_, 0.0);
      net_.send(body_.config().id, server_id_, outcome.request);
      Outstanding out;
      out.txn = outcome.request.txn_id;
      out.sent_at = now;
      out.timeout_event = sim_.schedule_after(
          body_.config().request_timeout, [this] {
            if (outstanding_)
              outstanding_->timeout_event = sim::kInvalidEventId;
            resolve_outstanding_as_timeout();
          });
      outstanding_ = out;
      break;
    }
  }
}

void CentralClientActor::on_grant(const net::Message& msg) {
  const auto* grant = msg.as<central::CentralGrant>();
  if (grant == nullptr) {
    PEN_LOG_WARN("central client %d: unexpected payload",
                 body_.config().id);
    return;
  }

  // At-most-once: count and drop a redelivered grant before any branch
  // can apply it (or obey its release order) twice.
  if (!grant_window_.insert(grant->txn_id)) {
    metrics_.record_duplicate_drop(grant->watts);
    metrics_.recorder().record(sim_.now(), grant->txn_id,
                               telemetry::TxnEventKind::kDuplicateDropped,
                               body_.config().id, msg.src, grant->watts);
    return;
  }

  bool matches = outstanding_ && outstanding_->txn == grant->txn_id;
  if (matches) {
    sim_.cancel(outstanding_->timeout_event);
    metrics_.record_turnaround(outstanding_->sent_at, sim_.now());
    metrics_.recorder().record(sim_.now(), grant->txn_id,
                               telemetry::TxnEventKind::kGrantReceived,
                               body_.config().id, msg.src, grant->watts);
    outstanding_.reset();
  } else {
    auto stale = stale_sent_times_.find(grant->txn_id);
    if (stale == stale_sent_times_.end()) {
      // A grant for a transaction this client has no record of — not
      // outstanding, not timed out. There is no legitimate sender for
      // it (the server only answers requests), so applying it would
      // mint watts on a spoofed or mis-routed message. Account its
      // power as stranded and move on.
      if (grant->watts > 0.0) {
        metrics_.watts_stranded(grant->watts);
        metrics_.recorder().record(sim_.now(), grant->txn_id,
                                   telemetry::TxnEventKind::kStranded,
                                   body_.config().id, msg.src,
                                   grant->watts);
      }
      metrics_.record_unknown_txn();
      metrics_.recorder().record(sim_.now(), grant->txn_id,
                                 telemetry::TxnEventKind::kUnknownTxn,
                                 body_.config().id, msg.src, grant->watts);
      PEN_LOG_WARN("central client %d: grant for unknown txn %llu "
                   "stranded (%.3f W)",
                   body_.config().id,
                   static_cast<unsigned long long>(grant->txn_id),
                   grant->watts);
      return;
    }
    metrics_.record_turnaround(stale->second, sim_.now());
    stale_sent_times_.erase(stale);
    prune_stale();
    metrics_.recorder().record(sim_.now(), grant->txn_id,
                               telemetry::TxnEventKind::kLateGrant,
                               body_.config().id, msg.src, grant->watts);
  }

  if (grant->watts > 0.0) metrics_.grant_arrived(grant->watts);
  central::GrantApplication applied = client_.apply_grant(*grant);
  body_.rapl().set_cap(client_.cap());
  if (applied.applied_watts > 0.0) {
    metrics_.record_apply(sim_.now(), applied.applied_watts,
                          body_.config().id);
    metrics_.recorder().record(sim_.now(), grant->txn_id,
                               telemetry::TxnEventKind::kApplied,
                               body_.config().id, msg.src,
                               applied.applied_watts);
  }
  // Release orders (and safe-ceiling overflow) send power straight back.
  donate(applied.donate_back_watts, sim_.now());
}

// ---------------------------------------------------------------------------
// HierarchicalServerActor

HierarchicalServerActor::HierarchicalServerActor(
    sim::Simulator& sim, net::Network& net, NodeId id,
    const hierarchy::PoddConfig& config,
    const net::SerialServerConfig& service, ClusterMetrics& metrics)
    : sim_(sim),
      net_(net),
      id_(id),
      logic_(config),
      service_(sim, service,
               [this](const net::Message& m) { process(m); }),
      metrics_(metrics) {
  net_.register_endpoint(
      id_, [this](const net::Message& m) { service_.inbox(m); });
  // Queue overflow (and halt) strands donation watts — but only for the
  // transaction's first sighting. Inserting into the window here means a
  // sibling copy that did get queued is later recognised as a duplicate
  // instead of crediting watts that were already written off.
  service_.set_drop_handler([this](const net::Message& m) {
    if (const auto* donation = m.as<central::CentralDonation>()) {
      if (donation->watts <= 0.0) return;
      if (txn_window_.insert(donation->txn_id)) {
        metrics_.watts_stranded(donation->watts);
        metrics_.recorder().record(sim_.now(), donation->txn_id,
                                   telemetry::TxnEventKind::kStranded, id_,
                                   m.src, donation->watts);
      } else {
        metrics_.record_duplicate_drop(donation->watts);
        metrics_.recorder().record(
            sim_.now(), donation->txn_id,
            telemetry::TxnEventKind::kDuplicateDropped, id_, m.src,
            donation->watts);
      }
    }
  });
}

void HierarchicalServerActor::enable_membership(
    const core::MembershipConfig& config, int n_clients) {
  detector_.emplace(config);
  for (int client = 0; client < n_clients; ++client)
    detector_->track(client, sim_.now());
  detector_task_.emplace(sim_, config.heartbeat_period,
                         config.heartbeat_period,
                         [this](common::Ticks now) { membership_tick(now); });
}

void HierarchicalServerActor::membership_tick(common::Ticks now) {
  if (!alive_ || !detector_) return;
  transitions_.clear();
  detector_->tick(now, transitions_);
  for (const core::MembershipTransition& t : transitions_) {
    if (t.to == core::PeerLiveness::kSuspected) {
      metrics_.record_suspicion();
      metrics_.recorder().record(now, membership_txn(t.peer, t.incarnation),
                                 telemetry::TxnEventKind::kPeerSuspected,
                                 id_, t.peer, 0.0);
    } else if (t.to == core::PeerLiveness::kDead) {
      metrics_.record_declared_dead();
      metrics_.recorder().record(
          now, membership_txn(t.peer, t.incarnation),
          telemetry::TxnEventKind::kPeerDeclaredDead, id_, t.peer, 0.0);
      double reclaimed = metrics_.reclaim_from(t.peer, t.incarnation);
      if (reclaimed > 0.0) {
        logic_.central().reclaim(reclaimed);
        metrics_.recorder().record(
            now, membership_txn(t.peer, t.incarnation),
            telemetry::TxnEventKind::kReclaimed, id_, t.peer, reclaimed);
      }
      // A node dead mid-profiling-window must not gate the window or
      // skew the survivors' assignment with its stale draw; expiry can
      // itself close the window (everyone else already reported).
      if (logic_.expire_reports(t.peer)) maybe_send_assignments();
    }
  }
}

void HierarchicalServerActor::maybe_send_assignments() {
  if (assignments_sent_ || !logic_.profiling_complete()) return;
  assignments_sent_ = true;
  // Broadcast the learned assignments. Nodes losing cap donate back
  // first; nodes gaining cap become urgent and the embedded central
  // logic funds them greedily from those donations.
  for (int node = 0; node < logic_.config_n_nodes(); ++node) {
    net_.send(id_, node,
              hierarchy::CapAssignment{logic_.assigned_cap(node)});
  }
}

void HierarchicalServerActor::process(const net::Message& msg) {
  if (detector_ && msg.src >= 0) {
    if (const auto* beat = msg.as<core::Heartbeat>()) {
      core::MembershipSignal signal = detector_->observe_heartbeat(
          beat->node, beat->incarnation, sim_.now());
      note_server_signal(metrics_, sim_.now(), *detector_, id_,
                         beat->node, signal);
      // Epoch bump: the peer restarted, so anything its previous
      // incarnation reported describes a workload state that no longer
      // exists. Drop it; the fresh incarnation's reports readmit it.
      if (signal == core::MembershipSignal::kRejoined &&
          logic_.expire_reports(beat->node)) {
        maybe_send_assignments();
      }
      return;
    }
    note_server_signal(metrics_, sim_.now(), *detector_, id_, msg.src,
                       detector_->observe_traffic(msg.src, sim_.now()));
  } else if (msg.as<core::Heartbeat>() != nullptr) {
    return;
  }
  if (const auto* report = msg.as<hierarchy::ProfileReport>()) {
    bool still_profiling = logic_.handle_profile_report(msg.src, *report);
    if (!still_profiling && assignments_sent_) {
      // Late reporter after the window already closed (rejoined node,
      // or its CapAssignment was lost): re-send its assignment so it
      // leaves the profiling phase instead of reporting forever.
      net_.send(id_, msg.src,
                hierarchy::CapAssignment{logic_.assigned_cap(msg.src)});
      return;
    }
    maybe_send_assignments();
    return;
  }
  if (const auto* donation = msg.as<central::CentralDonation>()) {
    if (!txn_window_.insert(donation->txn_id)) {
      metrics_.record_duplicate_drop(donation->watts);
      metrics_.recorder().record(
          sim_.now(), donation->txn_id,
          telemetry::TxnEventKind::kDuplicateDropped, id_, msg.src,
          donation->watts);
      return;
    }
    metrics_.donation_arrived(donation->watts);
    metrics_.recorder().record(sim_.now(), donation->txn_id,
                               telemetry::TxnEventKind::kDonationReceived,
                               id_, msg.src, donation->watts);
    logic_.central().handle_donation(*donation);
    return;
  }
  if (const auto* request = msg.as<central::CentralRequest>()) {
    // A redelivered request gets no second grant (and debits nothing);
    // the first copy's reply is the transaction's one answer.
    if (!txn_window_.insert(request->txn_id)) {
      metrics_.record_duplicate_drop(0.0);
      metrics_.recorder().record(
          sim_.now(), request->txn_id,
          telemetry::TxnEventKind::kDuplicateDropped, id_, msg.src, 0.0);
      return;
    }
    central::CentralGrant grant = logic_.central().handle_request(*request);
    if (grant.watts > 0.0) metrics_.grant_departed(grant.watts);
    metrics_.recorder().record(sim_.now(), request->txn_id,
                               telemetry::TxnEventKind::kRequestServed, id_,
                               msg.src, grant.watts);
    net_.send(id_, msg.src, grant);
    return;
  }
  PEN_LOG_WARN("hierarchical server: unexpected payload from %d", msg.src);
}

void HierarchicalServerActor::kill() {
  if (!alive_) return;
  alive_ = false;
  service_.halt();
  net_.fail_node(id_);
}

// ---------------------------------------------------------------------------
// CentralServerActor

CentralServerActor::CentralServerActor(
    sim::Simulator& sim, net::Network& net, NodeId id,
    const central::ServerConfig& config,
    const net::SerialServerConfig& service, ClusterMetrics& metrics)
    : sim_(sim),
      net_(net),
      id_(id),
      logic_(config),
      service_(sim, service,
               [this](const net::Message& m) { process(m); }),
      metrics_(metrics) {
  net_.register_endpoint(
      id_, [this](const net::Message& m) { service_.inbox(m); });
  // Messages lost in the bounded inbox strand their watts (donations) —
  // but only on the transaction's first sighting; see
  // HierarchicalServerActor for the duplicate-copy reasoning.
  service_.set_drop_handler([this](const net::Message& m) {
    if (const auto* donation = m.as<central::CentralDonation>()) {
      if (donation->watts <= 0.0) return;
      if (txn_window_.insert(donation->txn_id)) {
        metrics_.watts_stranded(donation->watts);
        metrics_.recorder().record(sim_.now(), donation->txn_id,
                                   telemetry::TxnEventKind::kStranded, id_,
                                   m.src, donation->watts);
      } else {
        metrics_.record_duplicate_drop(donation->watts);
        metrics_.recorder().record(
            sim_.now(), donation->txn_id,
            telemetry::TxnEventKind::kDuplicateDropped, id_, m.src,
            donation->watts);
      }
    }
  });
}

void CentralServerActor::enable_membership(
    const core::MembershipConfig& config, int n_clients) {
  detector_.emplace(config);
  for (int client = 0; client < n_clients; ++client)
    detector_->track(client, sim_.now());
  detector_task_.emplace(sim_, config.heartbeat_period,
                         config.heartbeat_period,
                         [this](common::Ticks now) { membership_tick(now); });
}

void CentralServerActor::membership_tick(common::Ticks now) {
  if (!alive_ || !detector_) return;
  transitions_.clear();
  detector_->tick(now, transitions_);
  for (const core::MembershipTransition& t : transitions_) {
    if (t.to == core::PeerLiveness::kSuspected) {
      metrics_.record_suspicion();
      metrics_.recorder().record(now, membership_txn(t.peer, t.incarnation),
                                 telemetry::TxnEventKind::kPeerSuspected,
                                 id_, t.peer, 0.0);
    } else if (t.to == core::PeerLiveness::kDead) {
      metrics_.record_declared_dead();
      metrics_.recorder().record(
          now, membership_txn(t.peer, t.incarnation),
          telemetry::TxnEventKind::kPeerDeclaredDead, id_, t.peer, 0.0);
      // SLURM-analogue reclamation: the dead client's seized share (and
      // anything stranded toward it) returns to the server budget.
      double reclaimed = metrics_.reclaim_from(t.peer, t.incarnation);
      if (reclaimed > 0.0) {
        logic_.reclaim(reclaimed);
        metrics_.recorder().record(
            now, membership_txn(t.peer, t.incarnation),
            telemetry::TxnEventKind::kReclaimed, id_, t.peer, reclaimed);
      }
    }
  }
}

void CentralServerActor::process(const net::Message& msg) {
  if (detector_ && msg.src >= 0) {
    if (const auto* beat = msg.as<core::Heartbeat>()) {
      note_server_signal(metrics_, sim_.now(), *detector_, id_, beat->node,
                         detector_->observe_heartbeat(
                             beat->node, beat->incarnation, sim_.now()));
      return;
    }
    note_server_signal(metrics_, sim_.now(), *detector_, id_, msg.src,
                       detector_->observe_traffic(msg.src, sim_.now()));
  } else if (msg.as<core::Heartbeat>() != nullptr) {
    return;
  }
  if (const auto* donation = msg.as<central::CentralDonation>()) {
    if (!txn_window_.insert(donation->txn_id)) {
      metrics_.record_duplicate_drop(donation->watts);
      metrics_.recorder().record(
          sim_.now(), donation->txn_id,
          telemetry::TxnEventKind::kDuplicateDropped, id_, msg.src,
          donation->watts);
      return;
    }
    metrics_.donation_arrived(donation->watts);
    metrics_.recorder().record(sim_.now(), donation->txn_id,
                               telemetry::TxnEventKind::kDonationReceived,
                               id_, msg.src, donation->watts);
    logic_.handle_donation(*donation);
    return;
  }
  if (const auto* request = msg.as<central::CentralRequest>()) {
    if (!txn_window_.insert(request->txn_id)) {
      metrics_.record_duplicate_drop(0.0);
      metrics_.recorder().record(
          sim_.now(), request->txn_id,
          telemetry::TxnEventKind::kDuplicateDropped, id_, msg.src, 0.0);
      return;
    }
    central::CentralGrant grant = logic_.handle_request(*request);
    if (grant.watts > 0.0) metrics_.grant_departed(grant.watts);
    metrics_.recorder().record(sim_.now(), request->txn_id,
                               telemetry::TxnEventKind::kRequestServed, id_,
                               msg.src, grant.watts);
    net_.send(id_, msg.src, grant);
    return;
  }
  PEN_LOG_WARN("central server: unexpected payload from %d", msg.src);
}

void CentralServerActor::kill() {
  if (!alive_) return;
  alive_ = false;
  // Order matters: halting the service strands queued donations through
  // the drop handler; failing the node makes the network strand
  // everything already in flight toward it on arrival.
  service_.halt();
  net_.fail_node(id_);
}

}  // namespace penelope::cluster
