#include "cluster/trace.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>

#include "common/log.hpp"

namespace penelope::cluster {

std::vector<TraceSample> Trace::node_series(int node) const {
  std::vector<TraceSample> series;
  for (const auto& s : samples_) {
    if (s.node == node) series.push_back(s);
  }
  return series;
}

double Trace::cap_oscillation(int node) const {
  double prev = 0.0;
  bool have_prev = false;
  double total = 0.0;
  std::size_t steps = 0;
  for (const auto& s : samples_) {
    if (s.node != node) continue;
    if (have_prev) {
      total += std::fabs(s.cap_watts - prev);
      ++steps;
    }
    prev = s.cap_watts;
    have_prev = true;
  }
  return steps ? total / static_cast<double>(steps) : 0.0;
}

double Trace::mean_cap_oscillation() const {
  auto ids = nodes();
  if (ids.empty()) return 0.0;
  double total = 0.0;
  for (int id : ids) total += cap_oscillation(id);
  return total / static_cast<double>(ids.size());
}

double Trace::mean_cap(int node) const {
  double total = 0.0;
  std::size_t count = 0;
  for (const auto& s : samples_) {
    if (s.node != node) continue;
    total += s.cap_watts;
    ++count;
  }
  return count ? total / static_cast<double>(count) : 0.0;
}

double Trace::peak_cap_swing() const {
  std::map<int, std::pair<double, double>> ranges;  // node -> (min, max)
  for (const auto& s : samples_) {
    auto [it, inserted] = ranges.try_emplace(
        s.node, std::make_pair(s.cap_watts, s.cap_watts));
    if (!inserted) {
      it->second.first = std::min(it->second.first, s.cap_watts);
      it->second.second = std::max(it->second.second, s.cap_watts);
    }
  }
  double peak = 0.0;
  for (const auto& [node, range] : ranges) {
    (void)node;
    peak = std::max(peak, range.second - range.first);
  }
  return peak;
}

std::vector<int> Trace::nodes() const {
  std::set<int> ids;
  for (const auto& s : samples_) ids.insert(s.node);
  return {ids.begin(), ids.end()};
}

std::string Trace::to_csv() const {
  std::string out = "t_s,node,cap_w,pool_w,power_w,demand_w,frac\n";
  char line[160];
  for (const auto& s : samples_) {
    std::snprintf(line, sizeof line, "%.3f,%d,%.3f,%.3f,%.3f,%.3f,%.4f\n",
                  common::to_seconds(s.at), s.node, s.cap_watts,
                  s.pool_watts, s.power_watts, s.demand_watts,
                  s.fraction_complete);
    out += line;
  }
  return out;
}

bool Trace::write_csv(const std::string& path) const {
  std::ofstream f(path, std::ios::trunc);
  if (!f) {
    PEN_LOG_WARN("trace: failed to open %s", path.c_str());
    return false;
  }
  f << to_csv();
  return static_cast<bool>(f);
}

}  // namespace penelope::cluster
