#include "cluster/trace.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>

#include "common/log.hpp"

namespace penelope::cluster {

std::vector<TraceSample> Trace::node_series(int node) const {
  std::vector<TraceSample> series;
  for (const auto& s : samples_) {
    if (s.node == node) series.push_back(s);
  }
  return series;
}

double Trace::cap_oscillation(int node) const {
  double prev = 0.0;
  bool have_prev = false;
  double total = 0.0;
  std::size_t steps = 0;
  for (const auto& s : samples_) {
    if (s.node != node) continue;
    if (have_prev) {
      total += std::fabs(s.cap_watts - prev);
      ++steps;
    }
    prev = s.cap_watts;
    have_prev = true;
  }
  return steps ? total / static_cast<double>(steps) : 0.0;
}

double Trace::mean_cap_oscillation() const {
  auto ids = nodes();
  if (ids.empty()) return 0.0;
  double total = 0.0;
  for (int id : ids) total += cap_oscillation(id);
  return total / static_cast<double>(ids.size());
}

double Trace::mean_cap(int node) const {
  double total = 0.0;
  std::size_t count = 0;
  for (const auto& s : samples_) {
    if (s.node != node) continue;
    total += s.cap_watts;
    ++count;
  }
  return count ? total / static_cast<double>(count) : 0.0;
}

double Trace::peak_cap_swing() const {
  std::map<int, std::pair<double, double>> ranges;  // node -> (min, max)
  for (const auto& s : samples_) {
    auto [it, inserted] = ranges.try_emplace(
        s.node, std::make_pair(s.cap_watts, s.cap_watts));
    if (!inserted) {
      it->second.first = std::min(it->second.first, s.cap_watts);
      it->second.second = std::max(it->second.second, s.cap_watts);
    }
  }
  double peak = 0.0;
  for (const auto& [node, range] : ranges) {
    (void)node;
    peak = std::max(peak, range.second - range.first);
  }
  return peak;
}

std::vector<int> Trace::nodes() const {
  std::set<int> ids;
  for (const auto& s : samples_) ids.insert(s.node);
  return {ids.begin(), ids.end()};
}

namespace {
constexpr const char* kCsvHeader =
    "t_s,node,cap_w,pool_w,power_w,demand_w,frac\n";

int format_csv_line(char* buf, std::size_t size, const TraceSample& s) {
  return std::snprintf(buf, size, "%.3f,%d,%.3f,%.3f,%.3f,%.3f,%.4f\n",
                       common::to_seconds(s.at), s.node, s.cap_watts,
                       s.pool_watts, s.power_watts, s.demand_watts,
                       s.fraction_complete);
}

int format_jsonl_line(char* buf, std::size_t size, const TraceSample& s) {
  return std::snprintf(
      buf, size,
      "{\"t_s\":%.3f,\"node\":%d,\"cap_w\":%.3f,\"pool_w\":%.3f,"
      "\"power_w\":%.3f,\"demand_w\":%.3f,\"frac\":%.4f}\n",
      common::to_seconds(s.at), s.node, s.cap_watts, s.pool_watts,
      s.power_watts, s.demand_watts, s.fraction_complete);
}
}  // namespace

std::string Trace::to_csv() const {
  std::string out = kCsvHeader;
  // ~56 bytes per formatted line; reserving up front keeps a million-
  // sample scale trace from reallocating its way through 64 MB of copies.
  out.reserve(out.size() + samples_.size() * 64);
  char line[160];
  for (const auto& s : samples_) {
    format_csv_line(line, sizeof line, s);
    out += line;
  }
  return out;
}

bool Trace::write_csv(const std::string& path) const {
  std::ofstream f(path, std::ios::trunc);
  if (!f) {
    PEN_LOG_WARN("trace: failed to open %s", path.c_str());
    return false;
  }
  // Stream line by line instead of materializing the whole file.
  f << kCsvHeader;
  char line[160];
  for (const auto& s : samples_) {
    format_csv_line(line, sizeof line, s);
    f << line;
  }
  return static_cast<bool>(f);
}

std::string Trace::to_jsonl() const {
  std::string out;
  out.reserve(samples_.size() * 112);
  char line[224];
  for (const auto& s : samples_) {
    format_jsonl_line(line, sizeof line, s);
    out += line;
  }
  return out;
}

bool Trace::write_jsonl(const std::string& path) const {
  std::ofstream f(path, std::ios::trunc);
  if (!f) {
    PEN_LOG_WARN("trace: failed to open %s", path.c_str());
    return false;
  }
  char line[224];
  for (const auto& s : samples_) {
    format_jsonl_line(line, sizeof line, s);
    f << line;
  }
  return static_cast<bool>(f);
}

std::vector<telemetry::CounterTrack> Trace::counter_tracks() const {
  std::vector<telemetry::CounterTrack> tracks;
  std::map<int, std::size_t> cap_idx;
  std::map<int, std::size_t> pool_idx;
  for (const auto& s : samples_) {
    auto [cap_it, cap_new] = cap_idx.try_emplace(s.node, tracks.size());
    if (cap_new) {
      tracks.push_back(telemetry::CounterTrack{
          "node " + std::to_string(s.node) + " cap_w", {}});
    }
    tracks[cap_it->second].points.emplace_back(s.at, s.cap_watts);
    auto [pool_it, pool_new] = pool_idx.try_emplace(s.node, tracks.size());
    if (pool_new) {
      tracks.push_back(telemetry::CounterTrack{
          "node " + std::to_string(s.node) + " pool_w", {}});
    }
    tracks[pool_it->second].points.emplace_back(s.at, s.pool_watts);
  }
  return tracks;
}

}  // namespace penelope::cluster
