#include "cluster/metrics.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace penelope::cluster {

void ClusterMetrics::record_turnaround(common::Ticks sent_at,
                                       common::Ticks resolved_at) {
  PEN_CHECK(resolved_at >= sent_at);
  turnaround_ms_.push_back(common::to_millis(resolved_at - sent_at));
}

void ClusterMetrics::record_release(common::Ticks at, double watts,
                                    int node) {
  if (watts <= 0.0) return;
  releases_.push_back(TransferEvent{at, watts, node});
}

void ClusterMetrics::record_apply(common::Ticks at, double watts,
                                  int node) {
  if (watts <= 0.0) return;
  applies_.push_back(TransferEvent{at, watts, node});
}

RedistributionResult analyze_redistribution(const ClusterMetrics& metrics,
                                            common::Ticks burst_at,
                                            double fraction) {
  PEN_CHECK(fraction > 0.0 && fraction <= 1.0);
  RedistributionResult result;
  for (const auto& ev : metrics.releases()) {
    if (ev.at >= burst_at) result.available_watts += ev.watts;
  }
  if (result.available_watts <= 0.0) return result;

  // The transfer streams are appended in virtual-time order (the
  // simulator is single-threaded), so a single forward scan finds the
  // crossing.
  double target = fraction * result.available_watts;
  double cumulative = 0.0;
  for (const auto& ev : metrics.applies()) {
    if (ev.at < burst_at) continue;
    cumulative += ev.watts;
    if (!result.time_to_fraction_s && cumulative >= target - 1e-9) {
      result.time_to_fraction_s = common::to_seconds(ev.at - burst_at);
    }
  }
  result.shifted_watts = cumulative;
  return result;
}

}  // namespace penelope::cluster
