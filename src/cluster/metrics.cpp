#include "cluster/metrics.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace penelope::cluster {

ClusterMetrics::ClusterMetrics()
    : registry_(telemetry::Concurrency::kSingleThread) {
  slots_.resize(1);  // serial default; configure_sharding() widens this
  turnaround_hist_ = registry_.histogram(
      "penelope_turnaround_ms", 0.0, 4000.0, 40, {},
      "request-to-grant turnaround in milliseconds");
  timeouts_ = registry_.counter("penelope_timeouts_total", {},
                                "requests resolved by timeout");
  in_flight_watts_ =
      registry_.gauge("penelope_in_flight_watts", {},
                      "watts currently owned by messages in flight");
  stranded_watts_ =
      registry_.gauge("penelope_stranded_watts", {},
                      "watts lost in flight and ledgered as stranded");
  duplicates_dropped_ =
      registry_.counter("penelope_duplicates_dropped_total", {},
                        "redeliveries rejected by a TxnWindow");
  duplicate_watts_dropped_ =
      registry_.gauge("penelope_duplicate_watts_dropped", {},
                      "watts carried by rejected redeliveries");
  unknown_txn_grants_ =
      registry_.counter("penelope_unknown_txn_grants_total", {},
                        "grants for transactions nobody tracked");
  federated_requests_ =
      registry_.counter("penelope_federated_requests_total", {},
                        "aggregated child->parent pool deficit reports");
  federated_transfers_ =
      registry_.counter("penelope_federated_transfers_total", {},
                        "aggregated inter-pool power transfers");
  federated_watts_moved_ =
      registry_.gauge("penelope_federated_watts_moved", {},
                      "watts moved by inter-pool transfers");
  requests_sent_ = registry_.counter("penelope_requests_sent_total", {},
                                     "power requests sent");
  decider_steps_ = registry_.counter(
      "penelope_decider_steps_total", {},
      "decider control decisions (liveness watchdog progress signal)");
  pending_events_high_water_ = registry_.gauge(
      "penelope_pending_events_high_water", {},
      "most simulator events pending at once across the run's engines");
  watts_reclaimed_ = registry_.gauge(
      "penelope_watts_reclaimed", {},
      "stranded watts of dead peers returned to circulation");
  reclaims_ = registry_.counter("penelope_reclaims_total", {},
                                "consumed (node, incarnation) reclaim tags");
  nodes_suspected_ =
      registry_.counter("penelope_nodes_suspected_total", {},
                        "alive->suspected detector transitions");
  false_suspicions_ = registry_.counter(
      "penelope_false_suspicions_total", {},
      "suspected/dead peers that returned at the same incarnation");
  nodes_declared_dead_ =
      registry_.counter("penelope_nodes_declared_dead_total", {},
                        "suspected->dead detector transitions");
}

void ClusterMetrics::configure_sharding(int shards, int n_nodes) {
  PEN_CHECK(shards >= 1 && n_nodes >= 0);
  slots_.resize(static_cast<std::size_t>(shards) + 1);
  if (static_cast<std::size_t>(n_nodes) > reclaim_tags_.size())
    reclaim_tags_.resize(static_cast<std::size_t>(n_nodes));
}

void ClusterMetrics::record_turnaround(common::Ticks sent_at,
                                       common::Ticks resolved_at) {
  PEN_CHECK(resolved_at >= sent_at);
  double ms = common::to_millis(resolved_at - sent_at);
  slot().turnaround_ms.push_back(ms);
  turnaround_hist_.observe(ms);
}

void ClusterMetrics::record_release(common::Ticks at, double watts,
                                    int node) {
  if (watts <= 0.0) return;
  slot().releases.push_back(TransferEvent{at, watts, node});
}

void ClusterMetrics::record_apply(common::Ticks at, double watts,
                                  int node) {
  if (watts <= 0.0) return;
  slot().applies.push_back(TransferEvent{at, watts, node});
}

const std::vector<double>& ClusterMetrics::turnaround_ms() const {
  if (slots_.size() == 1) return slots_[0].turnaround_ms;
  merged_turnaround_.clear();
  for (const auto& s : slots_)
    merged_turnaround_.insert(merged_turnaround_.end(),
                              s.turnaround_ms.begin(),
                              s.turnaround_ms.end());
  return merged_turnaround_;
}

const std::vector<TransferEvent>& ClusterMetrics::releases() const {
  if (slots_.size() == 1) return slots_[0].releases;
  merged_releases_.clear();
  for (const auto& s : slots_)
    merged_releases_.insert(merged_releases_.end(), s.releases.begin(),
                            s.releases.end());
  std::stable_sort(
      merged_releases_.begin(), merged_releases_.end(),
      [](const TransferEvent& a, const TransferEvent& b) { return a.at < b.at; });
  return merged_releases_;
}

const std::vector<TransferEvent>& ClusterMetrics::applies() const {
  if (slots_.size() == 1) return slots_[0].applies;
  merged_applies_.clear();
  for (const auto& s : slots_)
    merged_applies_.insert(merged_applies_.end(), s.applies.begin(),
                           s.applies.end());
  std::stable_sort(
      merged_applies_.begin(), merged_applies_.end(),
      [](const TransferEvent& a, const TransferEvent& b) { return a.at < b.at; });
  return merged_applies_;
}

RedistributionResult analyze_redistribution(const ClusterMetrics& metrics,
                                            common::Ticks burst_at,
                                            double fraction) {
  PEN_CHECK(fraction > 0.0 && fraction <= 1.0);
  RedistributionResult result;
  for (const auto& ev : metrics.releases()) {
    if (ev.at >= burst_at) result.available_watts += ev.watts;
  }
  if (result.available_watts <= 0.0) return result;

  // The transfer streams are in virtual-time order — appended that way
  // by a serial run, re-sorted by the merged accessor for a sharded one —
  // so a single forward scan finds the crossing.
  double target = fraction * result.available_watts;
  double cumulative = 0.0;
  for (const auto& ev : metrics.applies()) {
    if (ev.at < burst_at) continue;
    cumulative += ev.watts;
    if (!result.time_to_fraction_s && cumulative >= target - 1e-9) {
      result.time_to_fraction_s = common::to_seconds(ev.at - burst_at);
    }
  }
  result.shifted_watts = cumulative;
  return result;
}

}  // namespace penelope::cluster
