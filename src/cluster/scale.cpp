#include "cluster/scale.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/stats.hpp"
#include "power/performance_model.hpp"

namespace penelope::cluster {

ClusterConfig make_scale_cluster_config(const ScaleConfig& config) {
  PEN_CHECK(config.n_nodes >= 2);
  PEN_CHECK(config.frequency_hz > 0.0);

  ClusterConfig cc;
  cc.manager = config.manager;
  cc.n_nodes = config.n_nodes;
  cc.per_socket_cap_watts = config.per_socket_cap_watts;
  cc.period = common::from_seconds(1.0 / config.frequency_hz);
  PEN_CHECK_MSG(cc.period >= 1000,
                "decider frequency above 1 kHz is not meaningful here");
  cc.request_timeout = cc.period;
  // Deciders launched together iterate in phase; this is what loads a
  // central server in bursts (see DESIGN.md §4 and the §4.5.2
  // N x 80 µs extrapolation, which assumes synchronized arrival).
  cc.start_jitter = std::min<common::Ticks>(common::from_millis(10),
                                            cc.period / 4);
  // Scale runs measure protocol behaviour, not sensor realism.
  cc.measurement_noise_watts = 0.0;
  cc.rapl.read_noise_watts = 0.0;
  cc.seed = config.seed;
  cc.sim_jobs = config.sim_jobs;
  cc.federation_pools = config.pools;
  cc.federation_fanout = config.fanout;
  cc.series_interval = config.series_interval;
  cc.health_epsilon = config.health_epsilon;
  cc.max_seconds =
      config.burst_at_seconds + config.window_seconds + 10.0;
  return cc;
}

namespace {

std::vector<workload::WorkloadProfile> make_burst_workloads(
    const ScaleConfig& config, const ClusterConfig& cc) {
  const double initial_cap = cc.initial_node_cap();
  const double burst_demand =
      initial_cap + config.burst_demand_margin_watts;

  // The bursting half runs capped below its demand, so it progresses at
  // the model's reduced speed; size its work so it completes at
  // burst_at_seconds of *wall* time under the initial cap.
  power::PerformanceModel model(cc.perf);
  double speed = model.speed(initial_cap, burst_demand);
  PEN_CHECK_MSG(speed > 0.0, "burst nodes must make progress when capped");
  double burst_work = config.burst_at_seconds * speed;

  // The hungry half must outlive the window by a wide margin.
  double hungry_work =
      (config.burst_at_seconds + config.window_seconds + 100.0) * 2.0;

  std::vector<workload::WorkloadProfile> profiles;
  profiles.reserve(static_cast<std::size_t>(config.n_nodes));
  for (int i = 0; i < config.n_nodes; ++i) {
    workload::WorkloadProfile profile;
    if (i < config.n_nodes / 2) {
      profile.name = "burst";
      profile.phases.push_back(
          workload::Phase{"hot", burst_demand, burst_work});
    } else {
      profile.name = "hungry";
      profile.phases.push_back(workload::Phase{
          "hot", config.hungry_demand_watts, hungry_work});
    }
    profiles.push_back(std::move(profile));
  }
  return profiles;
}

}  // namespace

ScaleResult run_scale_experiment(const ScaleConfig& config) {
  ClusterConfig cc = make_scale_cluster_config(config);
  Cluster cluster(cc, make_burst_workloads(config, cc));

  double horizon =
      config.burst_at_seconds + config.window_seconds + 2.0;
  cluster.run_for(horizon);

  ScaleResult result;
  const ClusterMetrics& metrics = cluster.metrics();

  // The burst instant is the first release of excess power (nothing is
  // released before the bursting half completes — both halves run hungry
  // until then).
  common::Ticks burst_at = 0;
  if (!metrics.releases().empty()) {
    burst_at = metrics.releases().front().at;
  }

  RedistributionResult median =
      analyze_redistribution(metrics, burst_at, 0.5);
  RedistributionResult total =
      analyze_redistribution(metrics, burst_at, 1.0 - 1e-6);

  result.available_watts = total.available_watts;
  result.shifted_watts = total.shifted_watts;
  result.median_reached = median.time_to_fraction_s.has_value();
  result.median_redistribution_s =
      median.time_to_fraction_s.value_or(config.window_seconds);
  result.total_reached = total.time_to_fraction_s.has_value();
  result.total_redistribution_s =
      total.time_to_fraction_s.value_or(config.window_seconds);

  const auto& turnaround = metrics.turnaround_ms();
  result.turnaround_samples = turnaround.size();
  result.mean_turnaround_ms = common::mean_of(turnaround);
  result.stddev_turnaround_ms = common::stddev_of(turnaround);
  result.p99_turnaround_ms = common::percentile(turnaround, 99.0);
  result.turnaround_ms = turnaround;
  result.timeouts = metrics.timeouts();
  result.requests_sent = metrics.requests_sent();
  result.stranded_watts = metrics.stranded_watts();

  RunResult run = cluster.collect_result();
  if (run.server_stats) {
    result.server_drops = run.server_stats->dropped_overflow;
    result.server_mean_queue_wait_ms =
        run.server_stats->mean_queue_wait_us() / 1000.0;
  }
  result.max_conservation_error =
      run.audit.max_abs_conservation_error;
  result.messages_sent = run.net_stats.sent;
  result.federated_requests = metrics.federated_requests();
  result.federated_transfers = metrics.federated_transfers();
  result.federated_watts_moved = metrics.federated_watts_moved();

  if (config.series_interval > 0) {
    // Online convergence: the burst dents Jain's index while released
    // watts are still clumped at the ex-bursting nodes; recovery to
    // 1 - eps is the health monitor's convergence instant.
    result.health_sampled = true;
    result.min_jain = cluster.health().min_jain_since(burst_at);
    auto conv = cluster.health().convergence_seconds(burst_at);
    result.converged = conv.has_value();
    result.convergence_s = conv.value_or(config.window_seconds);
  }
  return result;
}

}  // namespace penelope::cluster
