// Intentionally header-only logic; this TU exists so the target has a
// stable archive member for the module and a home for future non-inline
// audit helpers.
#include "cluster/invariants.hpp"
