#include "cluster/cluster.hpp"

#include <algorithm>

#include "central/protocol.hpp"
#include "common/check.hpp"
#include "common/log.hpp"
#include "core/protocol.hpp"
#include "hierarchy/protocol.hpp"

namespace penelope::cluster {

const char* manager_name(ManagerKind kind) {
  switch (kind) {
    case ManagerKind::kFair: return "Fair";
    case ManagerKind::kCentral: return "SLURM";
    case ManagerKind::kPenelope: return "Penelope";
    case ManagerKind::kHierarchical: return "PoDD";
  }
  return "??";
}

Cluster::Cluster(ClusterConfig config,
                 std::vector<workload::WorkloadProfile> profiles)
    : config_(config), rng_(config.seed) {
  PEN_CHECK(config_.n_nodes > 0);
  PEN_CHECK_MSG(static_cast<int>(profiles.size()) == config_.n_nodes,
                "need one workload profile per client node");
  if (config_.request_timeout == 0)
    config_.request_timeout = config_.period;
  if (config_.flight_recorder_capacity > 0)
    metrics_.recorder().enable(config_.flight_recorder_capacity);
  if (config_.flow_tracer_capacity > 0)
    metrics_.tracer().enable(config_.flow_tracer_capacity);

  if (config_.federation_pools > 0 &&
      config_.manager != ManagerKind::kPenelope) {
    PEN_LOG_WARN_RATED(
        16,
        "federation_pools=%d ignored: pool federation composes with the "
        "Penelope manager only",
        config_.federation_pools);
    config_.federation_pools = 0;
  }
  if (config_.federation_pools > 0 && config_.membership_enabled) {
    PEN_LOG_WARN_RATED(
        16,
        "membership layer is not implemented on the federated arena "
        "path; disabling it (churn still conserves via epoch-tagged "
        "self-reclamation)");
    config_.membership_enabled = false;
  }
  if (config_.federation_pools > 0) {
    fed_topo_ = std::make_unique<hierarchy::FederationTopology>(
        hierarchy::FederationTopology::build(config_.n_nodes,
                                             config_.federation_pools,
                                             config_.federation_fanout));
  }

  int jobs = config_.sim_jobs < 1 ? 1 : config_.sim_jobs;
  if (jobs > config_.n_nodes) jobs = config_.n_nodes;
  if (jobs > 1 && config_.membership_enabled) {
    PEN_LOG_WARN_RATED(
        16,
        "sim_jobs=%d requested with the membership layer enabled; peer "
        "reclamation is cross-shard protocol feedback with no "
        "conservative window, running serial instead",
        jobs);
    jobs = 1;
  }
  config_.sim_jobs = jobs;

  net::NetworkConfig net_config = config_.network;
  net_config.seed = config_.seed ^ 0x85ebca6bu;
  if (jobs > 1) {
    // Contiguous balanced shard assignment (node i -> shard i*K/N); the
    // server node (id N, central managers only) rides the last shard.
    // The conservative window width is the network's latency floor: no
    // message can cross shards faster than that.
    engine_ = std::make_unique<sim::ShardedSimulator>(
        jobs, net_config.latency.effective_floor());
    shard_of_.resize(static_cast<std::size_t>(config_.n_nodes) + 1);
    for (int i = 0; i < config_.n_nodes; ++i)
      shard_of_[static_cast<std::size_t>(i)] =
          static_cast<int>(static_cast<std::int64_t>(i) * jobs /
                           config_.n_nodes);
    shard_of_[static_cast<std::size_t>(config_.n_nodes)] = jobs - 1;
    if (fed_topo_) {
      // Pool ids live above the client range (pool p -> id N + p, the
      // server slot is unused under Penelope). Each pool rides the
      // shard of the first node its subtree covers, so leaf traffic is
      // mostly intra-shard.
      shard_of_.resize(static_cast<std::size_t>(config_.n_nodes) +
                       static_cast<std::size_t>(fed_topo_->total_pools));
      for (int p = 0; p < fed_topo_->total_pools; ++p) {
        shard_of_[static_cast<std::size_t>(config_.n_nodes + p)] =
            shard_of_[static_cast<std::size_t>(
                fed_topo_->representative_node[static_cast<std::size_t>(
                    p)])];
      }
    }
    net_ = std::make_unique<net::Network>(*engine_, net_config, shard_of_);
    metrics_.configure_sharding(jobs, config_.n_nodes);
  } else {
    net_ = std::make_unique<net::Network>(sim_, net_config);
  }

  // Pre-size the event heaps before any actor arms its first timer. On
  // the classic path a node keeps roughly four events pending at once
  // (decider tick, request timeout, pool service completion, an
  // in-flight delivery), plus slack for the control plane. The arena
  // path carries no per-node timers at all (one epoch sweep per shard,
  // timeouts folded into the sweep), so its heap holds in-flight
  // deliveries only: ~2 per node covers a request/grant pair in flight,
  // plus pool-tick and delivery slack per pool. The audit task feeds
  // the observed high-water mark back out through the metrics registry
  // so these estimates stay honest.
  const std::size_t pending_per_node = fed_topo_ ? 2 : 4;
  const auto pool_slack =
      fed_topo_ ? 4 * static_cast<std::size_t>(fed_topo_->total_pools) : 0;
  if (engine_) {
    auto nodes_per_shard = static_cast<std::size_t>(
        (config_.n_nodes + jobs - 1) / jobs + 1);
    engine_->reserve(pending_per_node * nodes_per_shard + pool_slack + 64);
    engine_->control().reserve(256);
  } else {
    sim_.reserve(pending_per_node *
                     static_cast<std::size_t>(config_.n_nodes) +
                 pool_slack + 64);
  }

  // Watts lost inside the fabric (dropped grant/donation messages) are
  // stranded: they left one cap and will never reach another. Drops
  // against a crashed client node additionally carry a (node,
  // incarnation) reclaim tag, so the membership layer can return them
  // to circulation once the death is confirmed. Loss and partition
  // drops stay untagged: the recipient may well be alive, and a false
  // suspicion must never be able to reclaim a live node's watts.
  net_->set_drop_handler([this](const net::Message& msg,
                                net::DropReason reason) {
    auto strand = [this, &msg, reason](double watts,
                                       std::uint64_t txn_id) {
      if (watts <= 0.0) return;
      if (reason == net::DropReason::kDeadNode && msg.dst >= 0 &&
          msg.dst < config_.n_nodes) {
        metrics_.strand_in_flight_against(
            msg.dst, node_incarnation(msg.dst), watts);
      } else {
        metrics_.watts_stranded(watts);
      }
      metrics_.recorder().record(now_ticks(), txn_id,
                                 telemetry::TxnEventKind::kStranded,
                                 msg.dst, msg.src, watts);
    };
    if (const auto* grant = msg.as<core::PowerGrant>()) {
      strand(grant->watts, grant->txn_id);
    } else if (const auto* push = msg.as<core::PowerPush>()) {
      strand(push->watts, push->txn_id);
    } else if (const auto* cgrant = msg.as<central::CentralGrant>()) {
      strand(cgrant->watts, cgrant->txn_id);
    } else if (const auto* donation = msg.as<central::CentralDonation>()) {
      strand(donation->watts, donation->txn_id);
    } else if (const auto* xfer = msg.as<hierarchy::FederatedTransfer>()) {
      // Pool destinations sit above the client id range and never die,
      // so a lost inter-pool transfer strands untagged (fabric loss).
      strand(xfer->watts, xfer->txn_id);
    }
  });

  completions_.resize(static_cast<std::size_t>(config_.n_nodes));
  current_budget_ = config_.system_budget();
  build(std::move(profiles));
  arm_faults();
  arm_churn();

  if (config_.watchdog_s > 0.0) {
    PEN_CHECK_MSG(config_.audit_interval > 0,
                  "watchdog_s needs the audit task to piggyback on");
  }
  audit_task_ = std::make_unique<sim::PeriodicTask>(
      control_sim(), config_.audit_interval, config_.audit_interval,
      [this](common::Ticks now) {
        audit_summary_.observe(audit());
        metrics_.note_pending_events_high_water(
            static_cast<double>(pending_high_water()));
        // The watchdog rides the audit cadence — no events of its own,
        // so arming it cannot perturb a pinned trace.
        if (config_.watchdog_s > 0.0) watchdog_check(now);
      });

  if (config_.trace_interval > 0) {
    trace_task_ = std::make_unique<sim::PeriodicTask>(
        control_sim(), config_.trace_interval, config_.trace_interval,
        [this](common::Ticks now) {
          for (int i = 0; i < config_.n_nodes; ++i) {
            TraceSample sample;
            sample.at = now;
            sample.node = i;
            sample.cap_watts = node_cap(i);
            sample.pool_watts = node_pool_watts(i);
            sample.power_watts = node_power(i);
            sample.demand_watts = node_demand(i);
            sample.fraction_complete = node_fraction_complete(i);
            trace_.add(sample);
          }
        });
  }

  if (config_.series_interval > 0) {
    // Control-plane sampling: runs at barriers when sharded, with every
    // shard quiescent, so reads are race-free and timestamps identical
    // at any sim_jobs. Handles are resolved once, here, so the sampler
    // itself never hashes a name (and, once rings are full, never
    // allocates — the ZeroOverheadGate pins this).
    series_.configure(config_.series_interval, config_.series_capacity);
    health_.configure(config_.health_epsilon);
    ts_delivered_ = series_.open("delivered_watts");
    ts_demand_ = series_.open("demand_watts");
    ts_cap_ = series_.open("cap_watts");
    ts_pool_ = series_.open("pool_watts");
    ts_stranded_ = series_.open("stranded_watts");
    ts_in_flight_ = series_.open("in_flight_watts");
    ts_energy_ = series_.open("energy_joules");
    ts_jain_ = series_.open("jain_index");
    if (fed_topo_) {
      // Per-pool occupancy: O(pools) series, never O(nodes).
      ts_pools_.reserve(static_cast<std::size_t>(fed_topo_->total_pools));
      for (int p = 0; p < fed_topo_->total_pools; ++p)
        ts_pools_.push_back(
            series_.open("pool_" + std::to_string(p) + "_watts"));
    }
    // Pre-lane ordering: when a sample instant collides with protocol
    // events (the 250 ms cadence hits pool ticks at whole seconds), the
    // sampler must observe the *pre-event* state in every engine. The
    // sharded engine already runs control events before same-timestamp
    // shard events; TaskOrder::kPre gives the serial engine the same
    // rule, so series/health content is bit-identical across sim_jobs.
    if (config_.manager == ManagerKind::kPenelope && !arena_) {
      // Telemetry mirror: dense per-node rows, refreshed only when the
      // owning actor marks its dirty byte. All rows start dirty so the
      // first sample populates them.
      mirror_rows_.resize(penelope_nodes_.size());
      mirror_dirty_.assign(penelope_nodes_.size(), 1);
      for (std::size_t i = 0; i < penelope_nodes_.size(); ++i)
        penelope_nodes_[i]->set_observer_dirty(&mirror_dirty_[i]);
    }
    sampler_task_ = std::make_unique<sim::PeriodicTask>(
        control_sim(), config_.series_interval, config_.series_interval,
        [this](common::Ticks now) { sample_telemetry(now); },
        sim::TaskOrder::kPre);
  }
}

void Cluster::sample_telemetry(common::Ticks now) {
  // ONE fused O(N) walk; everything the series, the health monitor,
  // and the conservation ledger need comes out of a single pass over
  // whichever actor vector this config uses. The obvious composition —
  // the public node_* accessors plus audit() plus total_energy_joules()
  // — walks the node set three times with a manager dispatch per read,
  // and measured >20% of events/sec on bench_parallel's sampler A/B;
  // fused it is a few percent. "Active" excludes completed and crashed
  // nodes: both legitimately idle near zero watts and would read as
  // unfairness.
  telemetry::HealthSample hs;
  hs.at = now;
  double node_pool = 0.0;       // per-node pool shares (classic Penelope)
  double retirement_debt = 0.0;
  bool first = true;
  auto integrate = [&](double cap, double demand, double pool, bool idle,
                       double delivered, double energy) {
    hs.cap_watts += cap;
    hs.demand_watts += demand;
    node_pool += pool;
    hs.energy_joules += energy;
    if (idle) return;
    ++hs.active_nodes;
    hs.delivered_sum += delivered;
    hs.delivered_sq_sum += delivered * delivered;
    if (first) {
      hs.delivered_min = hs.delivered_max = delivered;
      first = false;
    } else {
      hs.delivered_min = std::min(hs.delivered_min, delivered);
      hs.delivered_max = std::max(hs.delivered_max, delivered);
    }
  };
  if (arena_) {
    // One closed-form phase walk per node (sample_node fuses power and
    // energy); summation stays in node-index order so series content is
    // bit-identical at any sim_jobs and in either sweep mode.
    for (int i = 0; i < config_.n_nodes; ++i) {
      bool idle = arena_->node_done(i) || arena_->node_crashed(i);
      FederatedArena::NodeSample ns = arena_->sample_node(i, now);
      integrate(ns.cap, ns.demand, 0.0, idle, idle ? 0.0 : ns.power,
                ns.energy_j);
    }
  } else {
    switch (config_.manager) {
      case ManagerKind::kPenelope: {
        // Mirror path: re-snapshot only nodes whose state changed since
        // the last sample, then integrate the dense row array. The
        // closed-form extrapolation is SimulatedRapl::extrapolate — the
        // exact code peek() uses, so mirror and direct reads agree
        // bit for bit.
        const std::size_t n = mirror_rows_.size();
        if (n == 0) break;
        // Refresh scan with distance prefetch: a node tick dirties every
        // node at whole seconds, so dirty runs are long and the refresh
        // walk is latency-bound on the ~5 scattered actor cache lines it
        // snapshots. Prefetching the lines of the node 8 slots ahead
        // roughly halves the all-dirty refresh.
        const char* base0 =
            reinterpret_cast<const char*>(penelope_nodes_[0].get());
        const std::ptrdiff_t pf_rapl =
            reinterpret_cast<const char*>(
                &penelope_nodes_[0]->body().rapl()) -
            base0 + 64;
        const std::ptrdiff_t pf_pool =
            reinterpret_cast<const char*>(&penelope_nodes_[0]->pool()) -
            base0;
        const std::ptrdiff_t pf_cap =
            reinterpret_cast<const char*>(&penelope_nodes_[0]->decider()) -
            base0;
        constexpr std::size_t kAhead = 8;
        for (std::size_t i = 0; i < n; ++i) {
          if (i + kAhead < n && mirror_dirty_[i + kAhead]) {
            const char* p = reinterpret_cast<const char*>(
                penelope_nodes_[i + kAhead].get());
            __builtin_prefetch(p + pf_rapl);
            __builtin_prefetch(p + pf_pool);
            __builtin_prefetch(p + pf_cap);
            __builtin_prefetch(p + sizeof(PenelopeNodeActor) - 64);
          }
          if (mirror_dirty_[i]) {
            refresh_mirror_row(i);
            mirror_dirty_[i] = 0;
          }
        }
        const double tau = config_.rapl.tau_seconds;
        const double idle_watts = config_.rapl.idle_watts;
        for (const MirrorRow& r : mirror_rows_) {
          double target =
              std::max(idle_watts, std::min(r.demand, r.rapl_cap));
          double dt =
              now <= r.last ? 0.0 : common::to_seconds(now - r.last);
          auto pe = power::SimulatedRapl::extrapolate(
              r.power0, r.energy0, dt, target, tau);
          retirement_debt += r.debt;
          integrate(r.cap, r.demand, r.pool, r.idle != 0.0,
                    r.idle != 0.0 ? 0.0 : pe.power, pe.energy_joules);
        }
        break;
      }
      case ManagerKind::kFair:
        for (auto& node : fair_nodes_) {
          const auto& rapl = node->body().rapl();
          auto pe = rapl.peek(now);
          bool idle = node->body().app_done();
          integrate(node->cap(), rapl.demand(), 0.0, idle,
                    idle ? 0.0 : pe.power, pe.energy_joules);
        }
        break;
      case ManagerKind::kCentral:
      case ManagerKind::kHierarchical:
        for (auto& node : central_clients_) {
          const auto& rapl = node->body().rapl();
          auto pe = rapl.peek(now);
          bool idle = node->body().app_done() || node->crashed();
          retirement_debt += node->retirement_debt();
          integrate(node->cap(), rapl.demand(), 0.0, idle,
                    idle ? 0.0 : pe.power, pe.energy_joules);
        }
        break;
    }
  }
  hs.pool_watts =
      node_pool + (arena_ ? arena_->pool_total() : server_cache_watts());
  hs.stranded_watts = metrics_.stranded_watts();
  hs.suspicions = metrics_.nodes_suspected();
  // The conservation ledger, assembled from the same pass. Matches
  // audit() term for term (same per-node reads, same summation order)
  // without re-walking every node.
  ConservationAudit ledger;
  ledger.budget = current_budget_;
  ledger.retirement_debt = retirement_debt;
  ledger.in_flight = metrics_.in_flight_watts();
  ledger.stranded = metrics_.stranded_watts();
  if (arena_) {
    ledger.cap_total = arena_->cap_total();
    ledger.pool_total = arena_->pool_total();
  } else {
    ledger.cap_total = hs.cap_watts;
    ledger.pool_total = node_pool;
    ledger.server_cache = server_cache_watts();
  }
  hs.conservation_error = ledger.conservation_error();
  health_.observe(hs);

  ts_delivered_->sample(now, hs.delivered_sum);
  ts_demand_->sample(now, hs.demand_watts);
  ts_cap_->sample(now, hs.cap_watts);
  ts_pool_->sample(now, hs.pool_watts);
  ts_stranded_->sample(now, hs.stranded_watts);
  ts_in_flight_->sample(now, metrics_.in_flight_watts());
  ts_energy_->sample(now, hs.energy_joules);
  ts_jain_->sample(now,
                   telemetry::HealthMonitor::jain_index(
                       hs.active_nodes, hs.delivered_sum,
                       hs.delivered_sq_sum));
  for (std::size_t p = 0; p < ts_pools_.size(); ++p)
    ts_pools_[p]->sample(now,
                         arena_->pool_available(static_cast<int>(p)));
}

void Cluster::refresh_mirror_row(std::size_t i) {
  auto& node = *penelope_nodes_[i];
  const auto& rapl = node.body().rapl();
  auto anchor = rapl.anchor();
  MirrorRow& r = mirror_rows_[i];
  r.cap = node.cap();
  r.rapl_cap = rapl.cap();
  r.demand = rapl.demand();
  r.pool = node.pool_watts();
  r.debt = node.retirement_debt();
  r.power0 = anchor.power;
  r.energy0 = anchor.energy_joules;
  r.last = anchor.last;
  r.idle = node.body().app_done() || node.crashed() ? 1.0 : 0.0;
}

Cluster::~Cluster() = default;

NodeConfig Cluster::make_node_config(int node) {
  NodeConfig nc;
  nc.id = node;
  nc.initial_cap_watts = config_.initial_node_cap();
  nc.epsilon_watts = config_.epsilon_watts;
  nc.period = config_.period;
  nc.request_timeout = config_.request_timeout;
  nc.start_offset =
      config_.start_jitter > 0
          ? static_cast<common::Ticks>(rng_.next_below(
                static_cast<std::uint32_t>(config_.start_jitter))) +
                1
          : 1;  // never 0: the first tick needs a nonempty interval
  nc.rapl = config_.rapl;
  nc.perf = config_.perf;
  nc.measurement_noise_watts = config_.measurement_noise_watts;
  nc.local_take = config_.local_take;
  nc.urgency_enabled = config_.urgency_enabled;
  nc.sticky_peers = config_.sticky_peers;
  nc.hint_discovery = config_.hint_discovery;
  nc.blacklist_after_timeouts = config_.blacklist_after_timeouts;
  nc.blacklist_duration = config_.blacklist_duration;
  nc.push_gossip = config_.push_gossip;
  nc.push_threshold_watts = config_.push_threshold_watts;
  nc.push_fraction = config_.push_fraction;
  nc.membership_enabled = config_.membership_enabled;
  nc.membership = config_.membership;
  nc.test_revert_grant_fix = config_.test_revert_grant_fix;
  if (config_.membership_enabled &&
      config_.manager == ManagerKind::kPenelope) {
    // Full-mesh liveness: every client watches every other client.
    for (int peer = 0; peer < config_.n_nodes; ++peer) {
      if (peer != node) nc.membership_peers.push_back(peer);
    }
  } else if (config_.membership_enabled) {
    // Central managers: clients heartbeat only the server node.
    nc.membership_peers.push_back(config_.n_nodes);
  }
  nc.seed = config_.seed ^ (0x9e3779b9u * static_cast<unsigned>(node + 1));
  return nc;
}

void Cluster::build(std::vector<workload::WorkloadProfile> profiles) {
  const int n = config_.n_nodes;

  // Completion bookkeeping mutates cluster-global state, so sharded runs
  // route it through the barrier (deterministic order: posts drain in
  // shard-index order, and the counting is commutative anyway).
  std::function<void(net::NodeId, common::Ticks)> on_complete =
      [this](net::NodeId id, common::Ticks at) {
        if (engine_) {
          engine_->post_to_barrier(
              [this, id, at] { on_node_complete(id, at); });
        } else {
          on_node_complete(id, at);
        }
      };

  if (fed_topo_) {
    ArenaConfig ac;
    ac.n_nodes = n;
    ac.initial_cap_watts = config_.initial_node_cap();
    ac.epsilon_watts = config_.epsilon_watts;
    ac.period = config_.period;
    ac.request_timeout = config_.request_timeout;
    ac.active_set = config_.arena_active_set;
    ac.safe_range = config_.rapl.safe_range;
    ac.perf = config_.perf;
    ac.federation.pools = config_.federation_pools;
    ac.federation.fanout = config_.federation_fanout;
    ac.federation.period = config_.federation_period;
    ac.federation.low_water_watts = config_.federation_low_water_watts;
    ac.seed = config_.seed;
    arena_ = std::make_unique<FederatedArena>(
        ac, *fed_topo_, *net_, metrics_,
        [this](net::NodeId id) -> sim::Simulator& { return node_sim(id); },
        std::move(profiles), on_complete);
    return;
  }

  for (int i = 0; i < n; ++i) {
    NodeConfig nc = make_node_config(i);
    auto profile = std::move(profiles[static_cast<std::size_t>(i)]);
    sim::Simulator& node_engine = node_sim(i);

    switch (config_.manager) {
      case ManagerKind::kFair: {
        auto actor = std::make_unique<FairNodeActor>(node_engine, nc,
                                                     std::move(profile));
        actor->body().set_on_complete(on_complete);
        fair_nodes_.push_back(std::move(actor));
        break;
      }
      case ManagerKind::kPenelope: {
        // Uniform random peer discovery (§3.1): any client but self.
        // Each node owns its draw stream, derived only from (seed, id),
        // so the sequence a node sees is independent of how other nodes'
        // picks interleave — the property sharded execution needs, and
        // which also makes serial runs robust to actor reordering.
        auto pick_peer =
            [this, i,
             rng = common::Rng(config_.seed ^
                               (0x94d049bb133111ebULL *
                                static_cast<std::uint64_t>(i + 1)))]() mutable
            -> net::NodeId {
          auto peer = static_cast<net::NodeId>(rng.next_below(
              static_cast<std::uint32_t>(config_.n_nodes - 1)));
          if (peer >= i) ++peer;
          return peer;
        };
        auto actor = std::make_unique<PenelopeNodeActor>(
            node_engine, *net_, nc, config_.pool, config_.pool_service,
            std::move(profile), pick_peer, metrics_);
        actor->body().set_on_complete(on_complete);
        penelope_nodes_.push_back(std::move(actor));
        break;
      }
      case ManagerKind::kCentral:
      case ManagerKind::kHierarchical: {
        auto actor = std::make_unique<CentralClientActor>(
            node_engine, *net_, nc, /*server_id=*/n, std::move(profile),
            metrics_,
            /*hierarchical=*/config_.manager ==
                ManagerKind::kHierarchical);
        actor->body().set_on_complete(on_complete);
        central_clients_.push_back(std::move(actor));
        break;
      }
    }
  }

  if (config_.manager == ManagerKind::kCentral) {
    net::SerialServerConfig service = config_.server_service;
    service.seed = config_.seed ^ 0xc2b2ae35u;
    server_ = std::make_unique<CentralServerActor>(
        node_sim(n), *net_, /*id=*/n, config_.server, service, metrics_);
    if (config_.membership_enabled)
      server_->enable_membership(config_.membership, n);
  } else if (config_.manager == ManagerKind::kHierarchical) {
    net::SerialServerConfig service = config_.server_service;
    service.seed = config_.seed ^ 0xc2b2ae35u;
    hierarchy::PoddConfig podd;
    podd.n_nodes = n;
    podd.initial_cap_watts = config_.initial_node_cap();
    podd.safe_range = config_.rapl.safe_range;
    podd.central = config_.server;
    podd.profile_periods = config_.podd_profile_periods;
    podd_server_ = std::make_unique<HierarchicalServerActor>(
        node_sim(n), *net_, /*id=*/n, podd, service, metrics_);
    if (config_.membership_enabled)
      podd_server_->enable_membership(config_.membership, n);
  }
}

void Cluster::arm_faults() {
  for (const FaultEvent& fault : config_.faults) {
    switch (fault.kind) {
      case FaultEvent::Kind::kKillServer:
        control_sim().schedule_at(fault.at, [this] {
          if (server_) server_->kill();
          if (podd_server_) podd_server_->kill();
        });
        break;
      case FaultEvent::Kind::kKillManagement:
        control_sim().schedule_at(fault.at, [this, node = fault.node] {
          if (config_.manager == ManagerKind::kPenelope &&
              node >= 0 && node < config_.n_nodes) {
            penelope_nodes_[static_cast<std::size_t>(node)]
                ->kill_management();
          }
        });
        break;
      case FaultEvent::Kind::kPartition:
        control_sim().schedule_at(fault.at, [this, split = fault.node] {
          std::vector<net::NodeId> left;
          std::vector<net::NodeId> right;
          for (int i = 0; i < config_.n_nodes; ++i) {
            (i < split ? left : right).push_back(i);
          }
          // Server node (if any) joins the right island.
          right.push_back(config_.n_nodes);
          net_->set_partition({left, right});
        });
        break;
      case FaultEvent::Kind::kHealPartition:
        control_sim().schedule_at(fault.at, [this] { net_->clear_partition(); });
        break;
      case FaultEvent::Kind::kCrashNode:
        control_sim().schedule_at(fault.at, [this, node = fault.node] {
          if (node >= 0 && node < config_.n_nodes) crash_node(node);
        });
        break;
      case FaultEvent::Kind::kRecoverNode:
        control_sim().schedule_at(fault.at, [this, node = fault.node] {
          if (node >= 0 && node < config_.n_nodes) recover_node(node);
        });
        break;
      case FaultEvent::Kind::kAsymPartition:
        control_sim().schedule_at(fault.at, [this, split = fault.node] {
          std::vector<net::NodeId> from;
          std::vector<net::NodeId> to;
          for (int i = 0; i < config_.n_nodes; ++i) {
            (i < split ? from : to).push_back(i);
          }
          // Mirror kPartition's island shape: the server node (if any)
          // sits on the unreachable side, so central grants vanish while
          // requests still arrive.
          to.push_back(config_.n_nodes);
          net_->set_one_way_block(from, to);
        });
        break;
      case FaultEvent::Kind::kHealAsymPartition:
        control_sim().schedule_at(fault.at,
                                  [this] { net_->clear_one_way_block(); });
        break;
      case FaultEvent::Kind::kPauseNode:
        control_sim().schedule_at(fault.at, [this, node = fault.node] {
          if (node >= 0 && node <= config_.n_nodes)
            net_->pause_node(node);
        });
        break;
      case FaultEvent::Kind::kResumeNode:
        control_sim().schedule_at(fault.at, [this, node = fault.node] {
          if (node >= 0 && node <= config_.n_nodes)
            net_->resume_node(node);
        });
        break;
      case FaultEvent::Kind::kLatencyBurst:
        control_sim().schedule_at(
            fault.at, [this, node = fault.node,
                       extra = common::from_seconds(fault.magnitude),
                       until = fault.until] {
              if (node >= 0 && node <= config_.n_nodes)
                net_->set_latency_burst(node, extra, until);
            });
        break;
      case FaultEvent::Kind::kSetFaultRates:
        control_sim().schedule_at(fault.at, [this, rates = fault.rates] {
          net_->set_fault_rates(rates);
        });
        break;
    }
  }
}

void Cluster::arm_churn() {
  if (!config_.churn_enabled) return;
  PEN_CHECK(config_.churn_mtbf_seconds > 0.0);
  PEN_CHECK(config_.churn_mttr_seconds > 0.0);
  // The schedule derives only from the seed (its own stream, so it does
  // not perturb start-jitter or network draws): every client alternates
  // exponential up-time and down-time until the run deadline. Scheduled
  // up front rather than on the fly, which keeps the event sequence
  // independent of anything the run itself does.
  common::Rng churn_rng(config_.seed ^ 0x27d4eb2fu);
  common::Ticks deadline = common::from_seconds(config_.max_seconds);
  for (int node = 0; node < config_.n_nodes; ++node) {
    double t = 0.0;
    for (;;) {
      t += churn_rng.exponential(config_.churn_mtbf_seconds);
      common::Ticks down_at = common::from_seconds(t);
      if (down_at >= deadline) break;
      t += churn_rng.exponential(config_.churn_mttr_seconds);
      common::Ticks up_at = common::from_seconds(t);
      if (up_at >= deadline) break;  // never leave a node down for good
      control_sim().schedule_at(down_at, [this, node] { crash_node(node); });
      control_sim().schedule_at(up_at, [this, node] { recover_node(node); });
    }
  }
}

void Cluster::crash_node(int node) {
  PEN_CHECK(node >= 0 && node < config_.n_nodes);
  if (arena_) {
    arena_->crash_node(node, now_ticks());
    return;
  }
  auto idx = static_cast<std::size_t>(node);
  switch (config_.manager) {
    case ManagerKind::kPenelope:
      penelope_nodes_[idx]->crash();
      break;
    case ManagerKind::kCentral:
    case ManagerKind::kHierarchical:
      central_clients_[idx]->crash();
      break;
    case ManagerKind::kFair:
      break;  // no volatile management state to lose
  }
}

void Cluster::recover_node(int node) {
  PEN_CHECK(node >= 0 && node < config_.n_nodes);
  if (arena_) {
    arena_->recover_node(node, now_ticks());
    return;
  }
  auto idx = static_cast<std::size_t>(node);
  switch (config_.manager) {
    case ManagerKind::kPenelope:
      penelope_nodes_[idx]->restart();
      break;
    case ManagerKind::kCentral:
    case ManagerKind::kHierarchical:
      central_clients_[idx]->restart();
      break;
    case ManagerKind::kFair:
      break;
  }
}

bool Cluster::node_crashed(int node) const {
  if (arena_) return arena_->node_crashed(node);
  auto idx = static_cast<std::size_t>(node);
  switch (config_.manager) {
    case ManagerKind::kPenelope:
      return penelope_nodes_.at(idx)->crashed();
    case ManagerKind::kCentral:
    case ManagerKind::kHierarchical:
      return central_clients_.at(idx)->crashed();
    case ManagerKind::kFair:
      return false;
  }
  return false;
}

std::uint32_t Cluster::node_incarnation(int node) const {
  if (arena_) return arena_->node_incarnation(node);
  auto idx = static_cast<std::size_t>(node);
  switch (config_.manager) {
    case ManagerKind::kPenelope:
      return penelope_nodes_.at(idx)->incarnation();
    case ManagerKind::kCentral:
    case ManagerKind::kHierarchical:
      return central_clients_.at(idx)->incarnation();
    case ManagerKind::kFair:
      return 1;
  }
  return 1;
}

void Cluster::on_node_complete(net::NodeId node, common::Ticks at) {
  PEN_CHECK(node >= 0 && node < config_.n_nodes);
  auto& slot = completions_[static_cast<std::size_t>(node)];
  PEN_CHECK_MSG(!slot.has_value(), "node completed twice");
  slot = at;
  last_completion_ = std::max(last_completion_, at);
  if (++completed_nodes_ == config_.n_nodes) {
    if (engine_) {
      engine_->stop();  // already at a barrier: posts run there
    } else {
      sim_.stop();
    }
  }
}

RunResult Cluster::run() {
  common::Ticks deadline = common::from_seconds(config_.max_seconds);
  if (engine_) {
    engine_->run_until(deadline);
  } else {
    while (completed_nodes_ < config_.n_nodes && sim_.now() < deadline &&
           sim_.pending_events() > 0) {
      sim_.run_until(deadline);
      // run_until returns on stop() (all nodes complete) or deadline.
      if (sim_.stopped()) break;
    }
  }
  // The audit task samples the high-water mark periodically, but short
  // runs (or audit_interval > runtime) would otherwise never record it
  // on the serial path; close the books on both engines at run end.
  metrics_.note_pending_events_high_water(
      static_cast<double>(pending_high_water()));
  return collect_result();
}

void Cluster::run_for(double seconds) {
  common::Ticks deadline = now_ticks() + common::from_seconds(seconds);
  if (engine_) {
    engine_->run_until(deadline);
  } else {
    sim_.run_until(deadline);
  }
  metrics_.note_pending_events_high_water(
      static_cast<double>(pending_high_water()));
}

std::uint64_t Cluster::node_outstanding_txn(int node) const {
  PEN_CHECK(node >= 0 && node < config_.n_nodes);
  auto idx = static_cast<std::size_t>(node);
  switch (config_.manager) {
    case ManagerKind::kPenelope:
      if (arena_) return 0;  // arena nodes fold timeouts inline
      return penelope_nodes_.at(idx)->outstanding_txn();
    case ManagerKind::kCentral:
    case ManagerKind::kHierarchical:
      return central_clients_.at(idx)->outstanding_txn();
    case ManagerKind::kFair:
      return 0;
  }
  return 0;
}

void Cluster::watchdog_check(common::Ticks now) {
  if (wedged_) return;
  const std::uint64_t steps = metrics_.decider_steps();
  if (steps != watchdog_last_steps_) {
    watchdog_last_steps_ = steps;
    watchdog_last_progress_ = now;
    return;
  }
  if (completed_nodes_ >= config_.n_nodes) return;  // finished, not stuck
  if (config_.manager == ManagerKind::kFair) return;  // no decider plane
  // A stall is only a wedge if some node could still make progress: at
  // least one incomplete node that is not crashed. All-crashed clusters
  // are expected strands (recovery may still be scheduled), not wedges.
  bool any_live_incomplete = false;
  for (int i = 0; i < config_.n_nodes; ++i) {
    if (completions_[static_cast<std::size_t>(i)]) continue;
    if (node_crashed(i)) continue;
    any_live_incomplete = true;
    break;
  }
  if (!any_live_incomplete) return;
  if (now - watchdog_last_progress_ <
      common::from_seconds(config_.watchdog_s))
    return;
  watchdog_dump(now);
  wedged_ = true;
  PEN_CHECK_MSG(!config_.watchdog_abort,
                "liveness watchdog: decider plane wedged (see dump above)");
  if (engine_) {
    engine_->stop();
  } else {
    sim_.stop();
  }
}

void Cluster::watchdog_dump(common::Ticks now) {
  PEN_LOG_WARN(
      "liveness watchdog: no decider progress for %.1fs (t=%.3fs, "
      "decider_steps=%llu, pending_events=%zu, completed=%d/%d)",
      common::to_seconds(now - watchdog_last_progress_),
      common::to_seconds(now),
      static_cast<unsigned long long>(watchdog_last_steps_),
      pending_events(), completed_nodes_, config_.n_nodes);
  for (int i = 0; i < config_.n_nodes; ++i) {
    const bool done = completions_[static_cast<std::size_t>(i)].has_value();
    PEN_LOG_WARN(
        "  node %d: %s%s inc=%u outstanding_txn=%llu cap=%.1fW pool=%.1fW",
        i, done ? "done" : "running",
        node_crashed(i) ? " CRASHED" : "", node_incarnation(i),
        static_cast<unsigned long long>(node_outstanding_txn(i)),
        node_cap(i), node_pool_watts(i));
  }
  if (!health_.probes().empty()) {
    const telemetry::HealthProbe& probe = health_.probes().back();
    PEN_LOG_WARN(
        "  last health probe: t=%.3fs active=%llu jain=%.4f "
        "delivered=%.1fW drift=%.3g",
        common::to_seconds(probe.at),
        static_cast<unsigned long long>(probe.active_nodes), probe.jain,
        probe.delivered_watts, probe.conservation_drift);
  }
}

RunResult Cluster::collect_result() const {
  RunResult result;
  result.all_completed = completed_nodes_ == config_.n_nodes;
  common::Ticks end =
      result.all_completed ? last_completion_ : now_ticks();
  result.runtime_seconds = common::to_seconds(end);
  result.performance =
      result.runtime_seconds > 0.0 ? 1.0 / result.runtime_seconds : 0.0;
  for (const auto& completion : completions_) {
    result.node_completion_seconds.push_back(
        completion ? common::to_seconds(*completion) : -1.0);
  }
  result.turnaround_ms = metrics_.turnaround_ms();
  result.requests_sent = metrics_.requests_sent();
  result.timeouts = metrics_.timeouts();
  result.total_energy_joules = total_energy_joules();
  result.net_stats = net_->stats();
  if (server_) result.server_stats = server_->service_stats();
  if (podd_server_) result.server_stats = podd_server_->service_stats();
  result.stranded_watts = metrics_.stranded_watts();
  result.watts_reclaimed = metrics_.watts_reclaimed();
  result.reclaims = metrics_.reclaims();
  result.nodes_suspected = metrics_.nodes_suspected();
  result.false_suspicions = metrics_.false_suspicions();
  result.nodes_declared_dead = metrics_.nodes_declared_dead();
  result.audit = audit_summary_;
  result.wedged = wedged_;
  return result;
}

double Cluster::total_retirement_debt() const {
  double total = 0.0;
  for (const auto& node : penelope_nodes_)
    total += node->retirement_debt();
  for (const auto& node : central_clients_)
    total += node->retirement_debt();
  return total;
}

double Cluster::set_system_budget(double new_total_watts) {
  PEN_CHECK(new_total_watts > 0.0);
  PEN_CHECK_MSG(!arena_,
                "dynamic budget reconfiguration is not supported on the "
                "federated arena path");
  double delta_per_node =
      (new_total_watts - current_budget_) / config_.n_nodes;
  double applied_total = 0.0;

  switch (config_.manager) {
    case ManagerKind::kFair:
      // Static manager: rescale every cap; the safe range bounds what
      // can actually be applied.
      for (const auto& node : fair_nodes_) {
        auto& rapl = node->body().rapl();
        double before = rapl.cap();
        rapl.set_cap(before + delta_per_node);
        applied_total += rapl.cap() - before;
      }
      break;
    case ManagerKind::kPenelope:
      for (const auto& node : penelope_nodes_) {
        node->apply_budget_delta(delta_per_node);
      }
      applied_total = new_total_watts - current_budget_;
      break;
    case ManagerKind::kCentral:
    case ManagerKind::kHierarchical:
      for (const auto& node : central_clients_) {
        node->apply_budget_delta(delta_per_node);
      }
      applied_total = new_total_watts - current_budget_;
      break;
  }

  current_budget_ += applied_total;
  PEN_LOG_INFO("budget reconfigured to %.1f W (requested %.1f) at "
               "t=%.3fs, outstanding debt %.1f W",
               current_budget_, new_total_watts,
               common::to_seconds(now_ticks()), total_retirement_debt());
  return current_budget_;
}

ConservationAudit Cluster::audit() const {
  ConservationAudit audit;
  audit.budget = current_budget_;
  audit.retirement_debt = total_retirement_debt();
  if (arena_) {
    audit.cap_total = arena_->cap_total();
    audit.pool_total = arena_->pool_total();
    audit.in_flight = metrics_.in_flight_watts();
    audit.stranded = metrics_.stranded_watts();
    return audit;
  }
  for (const auto& node : fair_nodes_) audit.cap_total += node->cap();
  for (const auto& node : penelope_nodes_) {
    audit.cap_total += node->cap();
    audit.pool_total += node->pool_watts();
  }
  for (const auto& node : central_clients_) audit.cap_total += node->cap();
  if (server_) audit.server_cache = server_->cache_watts();
  if (podd_server_) audit.server_cache = podd_server_->cache_watts();
  audit.in_flight = metrics_.in_flight_watts();
  audit.stranded = metrics_.stranded_watts();
  return audit;
}

double Cluster::node_cap(int node) const {
  if (arena_) return arena_->node_cap(node);
  auto idx = static_cast<std::size_t>(node);
  switch (config_.manager) {
    case ManagerKind::kFair: return fair_nodes_.at(idx)->cap();
    case ManagerKind::kPenelope: return penelope_nodes_.at(idx)->cap();
    case ManagerKind::kHierarchical:
    case ManagerKind::kCentral: return central_clients_.at(idx)->cap();
  }
  return 0.0;
}

double Cluster::node_pool_watts(int node) const {
  if (config_.manager != ManagerKind::kPenelope) return 0.0;
  // Federated path: pools are shared per leaf, not per node; the audit
  // accounts them via FederatedArena::pool_total().
  if (arena_) return 0.0;
  return penelope_nodes_.at(static_cast<std::size_t>(node))->pool_watts();
}

double Cluster::server_cache_watts() const {
  if (server_) return server_->cache_watts();
  if (podd_server_) return podd_server_->cache_watts();
  return 0.0;
}

bool Cluster::node_app_done(int node) const {
  if (arena_) return arena_->node_done(node);
  auto idx = static_cast<std::size_t>(node);
  switch (config_.manager) {
    case ManagerKind::kFair:
      return fair_nodes_.at(idx)->body().app_done();
    case ManagerKind::kPenelope:
      return penelope_nodes_.at(idx)->body().app_done();
    case ManagerKind::kHierarchical:
    case ManagerKind::kCentral:
      return central_clients_.at(idx)->body().app_done();
  }
  return false;
}

double Cluster::node_power(int node) const {
  auto idx = static_cast<std::size_t>(node);
  // instantaneous_power advances the analytic model to now(), which is
  // a const-view operation conceptually but mutates cached state; the
  // actors expose non-const bodies for exactly this reason.
  if (arena_) return arena_->node_power(node, now_ticks());
  auto* self = const_cast<Cluster*>(this);
  switch (config_.manager) {
    case ManagerKind::kFair:
      return self->fair_nodes_.at(idx)->body().rapl().instantaneous_power(
          now_ticks());
    case ManagerKind::kPenelope:
      return self->penelope_nodes_.at(idx)
          ->body()
          .rapl()
          .instantaneous_power(now_ticks());
    case ManagerKind::kHierarchical:
    case ManagerKind::kCentral:
      return self->central_clients_.at(idx)
          ->body()
          .rapl()
          .instantaneous_power(now_ticks());
  }
  return 0.0;
}

double Cluster::total_energy_joules() const {
  // Advancing the analytic model to now() mutates cached state (same
  // note as node_power).
  if (arena_) return arena_->total_energy_joules(now_ticks());
  auto* self = const_cast<Cluster*>(this);
  double total = 0.0;
  for (auto& node : self->fair_nodes_)
    total += node->body().rapl().total_energy_joules(now_ticks());
  for (auto& node : self->penelope_nodes_)
    total += node->body().rapl().total_energy_joules(now_ticks());
  for (auto& node : self->central_clients_)
    total += node->body().rapl().total_energy_joules(now_ticks());
  return total;
}

double Cluster::node_demand(int node) const {
  if (arena_) return arena_->node_demand(node);
  auto idx = static_cast<std::size_t>(node);
  switch (config_.manager) {
    case ManagerKind::kFair:
      return fair_nodes_.at(idx)->body().rapl().demand();
    case ManagerKind::kPenelope:
      return penelope_nodes_.at(idx)->body().rapl().demand();
    case ManagerKind::kHierarchical:
    case ManagerKind::kCentral:
      return central_clients_.at(idx)->body().rapl().demand();
  }
  return 0.0;
}

double Cluster::node_fraction_complete(int node) const {
  if (arena_) return arena_->node_fraction_complete(node, now_ticks());
  auto idx = static_cast<std::size_t>(node);
  switch (config_.manager) {
    case ManagerKind::kFair:
      return fair_nodes_.at(idx)->body().fraction_complete();
    case ManagerKind::kPenelope:
      return penelope_nodes_.at(idx)->body().fraction_complete();
    case ManagerKind::kHierarchical:
    case ManagerKind::kCentral:
      return central_clients_.at(idx)->body().fraction_complete();
  }
  return 0.0;
}

std::vector<workload::WorkloadProfile> make_pair_workloads(
    workload::NpbApp a, workload::NpbApp b, int n_nodes,
    workload::NpbConfig config) {
  PEN_CHECK(n_nodes >= 2);
  std::vector<workload::WorkloadProfile> profiles;
  profiles.reserve(static_cast<std::size_t>(n_nodes));
  for (int i = 0; i < n_nodes; ++i) {
    workload::NpbConfig node_config = config;
    node_config.seed =
        config.seed ^ (0x9e3779b97f4a7c15ULL * static_cast<unsigned>(i + 1));
    profiles.push_back(
        workload::npb_profile(i < n_nodes / 2 ? a : b, node_config));
  }
  return profiles;
}

}  // namespace penelope::cluster
