// Simulation drivers ("actors") that wire the protocol logic to the
// discrete-event substrate: one per node kind.
//
//   FairNodeActor     — static cap; only advances the workload (§2.3.1)
//   PenelopeNodeActor — decider + power pool + peer transactions (§3)
//   CentralClientActor / CentralServerActor — the SLURM-style system
//                       (§2.3.2, §4.1)
//
// Each actor owns a NodeBody (power model + application) ticked on the
// node's control period. All messaging goes through net::Network; pool
// and server request processing sits behind net::SerialServer so
// queueing delay and packet drops come out of the model, not out of
// special cases.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "central/client.hpp"
#include "central/server.hpp"
#include "cluster/metrics.hpp"
#include "hierarchy/podd_server.hpp"
#include "common/rng.hpp"
#include "core/decider.hpp"
#include "core/membership.hpp"
#include "core/pool.hpp"
#include "core/txn_window.hpp"
#include "net/network.hpp"
#include "net/serial_server.hpp"
#include "power/performance_model.hpp"
#include "power/simulated_rapl.hpp"
#include "sim/simulator.hpp"
#include "workload/application.hpp"

namespace penelope::cluster {

using net::NodeId;

/// Bound a txn -> sent-time map: drop entries older than `horizon`, then,
/// if still above `cap`, evict oldest entries until the cap holds. The
/// horizon prune alone can delete nothing when a loss burst makes every
/// entry recent — the hard cap is what actually bounds memory. Exposed
/// for tests.
void bound_stale_map(
    std::unordered_map<std::uint64_t, common::Ticks>& stale,
    common::Ticks horizon, std::size_t cap);

struct NodeConfig {
  NodeId id = 0;
  double initial_cap_watts = 160.0;
  double epsilon_watts = 5.0;
  common::Ticks period = common::kTicksPerSecond;
  /// How long a decider waits for a grant before giving up; defaults to
  /// one period in ClusterConfig.
  common::Ticks request_timeout = common::kTicksPerSecond;
  /// First tick fires at this offset (decider start jitter).
  common::Ticks start_offset = 0;
  power::SimulatedRaplConfig rapl;
  power::PerformanceModelConfig perf;
  /// Gaussian noise added to the power reading the *manager* sees (the
  /// application always progresses on true delivered power).
  double measurement_noise_watts = 0.0;
  /// Penelope protocol knobs (see core/decider.hpp); exposed here so the
  /// ablation benches can sweep them per cluster.
  core::LocalTakePolicy local_take = core::LocalTakePolicy::kDrainAll;
  bool urgency_enabled = true;
  /// Peer-discovery ablation: remember the last peer that granted power
  /// and retry it while it keeps paying out, instead of sampling
  /// uniformly every time.
  bool sticky_peers = false;
  /// Peer-discovery extension: empty-handed pools forward a hint (their
  /// own last-successful peer) and requesters follow it on their next
  /// probe. Composes with uniform random (hints expire after one use).
  bool hint_discovery = false;
  /// Fault-tolerance refinement: after this many *consecutive* timeouts
  /// from the same peer, stop probing it for blacklist_duration (a dead
  /// node otherwise keeps eating one probe period per unlucky draw).
  /// 0 disables blacklisting.
  int blacklist_after_timeouts = 0;
  common::Ticks blacklist_duration = 30 * common::kTicksPerSecond;
  /// Push-gossip extension: when the local pool exceeds the threshold
  /// at the end of a step, push `push_fraction` of it to a uniformly
  /// random peer's pool. The dual of the paper's pull discovery —
  /// excess diffuses instead of waiting to be found.
  bool push_gossip = false;
  double push_threshold_watts = 20.0;
  double push_fraction = 0.25;
  /// Membership layer (PROTOCOL.md "Membership and incarnations"): the
  /// node heartbeats `membership_peers` every heartbeat period and runs
  /// a FailureDetector over them. Off by default — heartbeats are extra
  /// traffic and detector events are extra simulator events, either of
  /// which would perturb the pinned golden trace.
  bool membership_enabled = false;
  core::MembershipConfig membership;
  std::vector<NodeId> membership_peers;
  /// TEST HOOK (DST planted bug): revert the PR 2 grant hardening —
  /// duplicate grants bypass the dedup window and late grants deposit
  /// into the pool without the in-flight decrement, minting watts. Never
  /// enable outside the fault-schedule explorer's self-test.
  bool test_revert_grant_fix = false;
  std::uint64_t seed = 1;
};

/// Power model + workload progress shared by every actor kind.
class NodeBody {
 public:
  NodeBody(sim::Simulator& sim, const NodeConfig& config,
           workload::WorkloadProfile profile);

  /// Advance power and application to `now`; returns the *measured*
  /// average power since the previous tick (true average plus
  /// measurement noise). Fires `on_complete` once when the app finishes.
  double tick(common::Ticks now);

  void set_on_complete(std::function<void(NodeId, common::Ticks)> fn) {
    on_complete_ = std::move(fn);
  }

  bool app_done() const { return app_.done(); }
  std::optional<common::Ticks> completion_time() const {
    return app_.completion_time();
  }
  double fraction_complete() const { return app_.fraction_complete(); }
  power::SimulatedRapl& rapl() { return rapl_; }
  const power::SimulatedRapl& rapl() const { return rapl_; }
  const NodeConfig& config() const { return config_; }

 private:
  sim::Simulator& sim_;
  NodeConfig config_;
  power::SimulatedRapl rapl_;
  power::PerformanceModel perf_;
  workload::Application app_;
  common::Rng noise_rng_;
  common::Ticks last_tick_ = 0;
  bool completion_reported_ = false;
  std::function<void(NodeId, common::Ticks)> on_complete_;
};

/// Static allocation: the Fair baseline. The cap is set once and the
/// node merely runs its workload.
class FairNodeActor {
 public:
  FairNodeActor(sim::Simulator& sim, const NodeConfig& config,
                workload::WorkloadProfile profile);

  NodeBody& body() { return body_; }
  double cap() const { return body_.rapl().cap(); }

 private:
  NodeBody body_;
  sim::PeriodicTask tick_task_;
};

/// A Penelope node: local decider + local power pool. The pool listens
/// behind a SerialServer; the decider issues peer requests chosen by
/// `pick_peer` and resolves them on grant arrival or timeout.
class PenelopeNodeActor {
 public:
  PenelopeNodeActor(sim::Simulator& sim, net::Network& net,
                    const NodeConfig& config,
                    const core::PoolConfig& pool_config,
                    const net::SerialServerConfig& pool_service,
                    workload::WorkloadProfile profile,
                    std::function<NodeId()> pick_peer,
                    ClusterMetrics& metrics);

  /// Fault injection: stop the decider and the pool service while the
  /// application keeps running at its frozen cap (a management-plane
  /// crash, the Penelope analogue of losing SLURM's server process).
  void kill_management();
  bool management_alive() const { return management_alive_; }

  /// Crash-restart fault injection (whole-node, unlike kill_management):
  /// the node drops off the network, loses its volatile protocol state
  /// (TxnWindows, banked pool, outstanding request, discovery caches),
  /// and its live power above the safe minimum is stranded against
  /// (id, incarnation) for epoch-guarded reclamation. The hardware keeps
  /// drawing at the firmware-default safe-minimum cap while down.
  void crash();
  /// Rejoin after crash(): incarnation bumps, the network endpoint and
  /// pool service come back, and any of this node's own crash residue
  /// that nobody reclaimed yet is self-reclaimed into the fresh pool.
  /// The node re-admits itself at fair share through the normal urgent
  /// path (it is far below its initial cap).
  void restart();
  bool crashed() const { return crashed_; }
  std::uint32_t incarnation() const { return incarnation_; }
  const core::FailureDetector* detector() const {
    return detector_ ? &*detector_ : nullptr;
  }

  NodeBody& body() { return body_; }
  const core::Decider& decider() const { return decider_; }
  const core::PowerPool& pool() const { return pool_; }
  double cap() const { return decider_.cap(); }
  double pool_watts() const { return pool_.available(); }
  double retirement_debt() const { return decider_.retirement_debt(); }

  /// Observability: route every sampled-state mutation (cap, debt, pool,
  /// rapl anchor, crash/restart) to one dirty byte owned by the
  /// cluster's telemetry mirror. Never set on the golden path.
  void set_observer_dirty(std::uint8_t* cell) {
    observer_dirty_ = cell;
    decider_.set_observer_dirty(cell);
    pool_.set_observer_dirty(cell);
    body_.rapl().set_observer_dirty(cell);
  }

  /// Dynamic budget reconfiguration: adjust this node's share. Returns
  /// the watts retired immediately (cut) — the rest becomes debt.
  double apply_budget_delta(double delta_watts);
  const net::SerialServerStats& pool_service_stats() const {
    return pool_service_.stats();
  }

  /// Timed-out requests whose grants may still arrive (bounded; exposed
  /// so tests can assert the bound under sustained loss).
  std::size_t stale_entries() const { return stale_sent_times_.size(); }

  /// Transaction id of the currently outstanding request, 0 if none
  /// (used by the liveness watchdog's diagnostic dump).
  std::uint64_t outstanding_txn() const {
    return outstanding_ ? outstanding_->txn : 0;
  }

  bool peer_blacklisted(NodeId peer) const;
  /// Operational/test control: refuse to probe `peer` until `until`,
  /// as if it had accumulated the configured consecutive timeouts.
  void force_peer_blacklist(NodeId peer, common::Ticks until);

 private:
  void on_tick(common::Ticks now);
  void on_message(const net::Message& msg);
  void on_pool_request(const net::Message& msg);
  void on_grant(const net::Message& msg);
  void finish_step(common::Ticks now);
  void resolve_outstanding_as_timeout();
  void prune_stale();
  void membership_tick(common::Ticks now);
  void note_membership_signal(core::MembershipSignal signal, NodeId peer);
  /// Detector-informed peer avoidance for the kNeedsPeer draw.
  bool peer_unusable(NodeId peer) const;

  struct Outstanding {
    std::uint64_t txn = 0;
    common::Ticks sent_at = 0;
    NodeId peer = net::kNoNode;
    sim::EventId timeout_event = sim::kInvalidEventId;
  };

  void note_peer_timeout(NodeId peer);
  void note_peer_answered(NodeId peer);

  sim::Simulator& sim_;
  net::Network& net_;
  NodeBody body_;
  core::PowerPool pool_;
  core::Decider decider_;
  net::SerialServer pool_service_;
  std::function<NodeId()> pick_peer_;
  ClusterMetrics& metrics_;
  sim::PeriodicTask tick_task_;
  std::optional<Outstanding> outstanding_;
  /// Requests that timed out locally but whose grants may still arrive
  /// (the peer debited its pool; the watts must be banked, and the true
  /// waiting time still belongs in the turnaround distribution).
  std::unordered_map<std::uint64_t, common::Ticks> stale_sent_times_;
  /// sticky_peers ablation: the last peer whose grant paid out.
  NodeId sticky_peer_ = net::kNoNode;
  NodeId last_queried_peer_ = net::kNoNode;
  /// hint_discovery: a one-shot referral received in an empty grant.
  NodeId hinted_peer_ = net::kNoNode;
  /// Blacklist bookkeeping: consecutive timeouts and expiry per peer.
  struct PeerHealth {
    int consecutive_timeouts = 0;
    common::Ticks blacklisted_until = 0;
  };
  std::unordered_map<NodeId, PeerHealth> peer_health_;
  /// At-most-once receive windows: one for grants + pushes arriving at
  /// the decider side, one for requests arriving at the pool service. A
  /// redelivered copy is counted (dropped_duplicate) and never applied,
  /// deposited, or served twice.
  core::TxnWindow grant_window_;
  core::TxnWindow request_window_;
  std::uint64_t push_seq_ = 0;  ///< stream-1 sequence for PowerPush txns
  bool management_alive_ = true;
  /// Membership: per-peer suspicion state, present only when enabled.
  std::optional<core::FailureDetector> detector_;
  std::vector<core::MembershipTransition> transitions_;  ///< tick scratch
  common::Ticks next_heartbeat_at_ = 0;
  std::uint32_t incarnation_ = 1;  ///< crash counter, bumps on restart()
  bool crashed_ = false;
  std::uint8_t* observer_dirty_ = nullptr;
};

/// SLURM-style client: classifies locally, moves all power through the
/// central server. With `hierarchical = true` the client first runs the
/// PoDD profiling phase — reporting its power draw each period instead
/// of shifting — until the server sends its learned CapAssignment, then
/// proceeds exactly like a central client from the assigned cap.
class CentralClientActor {
 public:
  CentralClientActor(sim::Simulator& sim, net::Network& net,
                     const NodeConfig& config, NodeId server_id,
                     workload::WorkloadProfile profile,
                     ClusterMetrics& metrics, bool hierarchical = false);

  NodeBody& body() { return body_; }
  const central::Client& client() const { return client_; }
  double cap() const { return client_.cap(); }
  bool awaiting_assignment() const { return awaiting_assignment_; }
  double retirement_debt() const { return client_.retirement_debt(); }

  /// Crash-restart (the SLURM-analogue churn path): the client drops to
  /// the safe-minimum cap, its seized share is stranded against
  /// (id, incarnation) so the server's detector can return it to the
  /// budget, and volatile state (grant window, outstanding request) is
  /// lost. restart() rejoins at a bumped incarnation; unreclaimed own
  /// residue is self-reclaimed and donated straight back to the server
  /// (re-admission then happens through the normal urgent path).
  void crash();
  void restart();
  bool crashed() const { return crashed_; }
  std::uint32_t incarnation() const { return incarnation_; }

  /// Dynamic budget reconfiguration (see PenelopeNodeActor).
  double apply_budget_delta(double delta_watts);

  std::size_t stale_entries() const { return stale_sent_times_.size(); }

  /// Outstanding request's txn id, 0 if none (watchdog diagnostics).
  std::uint64_t outstanding_txn() const {
    return outstanding_ ? outstanding_->txn : 0;
  }

 private:
  void on_tick(common::Ticks now);
  void on_message(const net::Message& msg);
  void on_grant(const net::Message& msg);
  void resolve_outstanding_as_timeout();
  void donate(double watts, common::Ticks now);
  void prune_stale();

  struct Outstanding {
    std::uint64_t txn = 0;
    common::Ticks sent_at = 0;
    sim::EventId timeout_event = sim::kInvalidEventId;
  };

  sim::Simulator& sim_;
  net::Network& net_;
  NodeBody body_;
  central::Client client_;
  NodeId server_id_;
  ClusterMetrics& metrics_;
  sim::PeriodicTask tick_task_;
  std::optional<Outstanding> outstanding_;
  /// Send times of requests that timed out; late grants (the norm when a
  /// saturated server answers slower than the decider period) still
  /// produce honest turnaround samples from these.
  std::unordered_map<std::uint64_t, common::Ticks> stale_sent_times_;
  /// At-most-once window over server grants; duplicates are counted,
  /// never applied. Unknown-txn grants (in neither outstanding_ nor
  /// stale_sent_times_) are stranded-accounted and logged.
  core::TxnWindow grant_window_;
  std::uint64_t donation_seq_ = 0;  ///< stream-1 sequence for donations
  /// Hierarchical (PoDD) mode: true until the server's CapAssignment
  /// arrives; while true, ticks send ProfileReports and do not shift.
  bool awaiting_assignment_ = false;
  common::Ticks next_heartbeat_at_ = 0;
  std::uint32_t incarnation_ = 1;
  bool crashed_ = false;
};

/// PoDD-style hierarchical server (§2.3.3): collects profile reports,
/// computes per-group initial-cap assignments, broadcasts them, then
/// behaves as a central power server for steady-state refinement. Uses
/// the same serial-service queue model as the central server.
class HierarchicalServerActor {
 public:
  HierarchicalServerActor(sim::Simulator& sim, net::Network& net,
                          NodeId id,
                          const hierarchy::PoddConfig& config,
                          const net::SerialServerConfig& service,
                          ClusterMetrics& metrics);

  void kill();
  bool alive() const { return alive_; }

  /// SLURM-analogue membership: run a detector over the clients; a dead
  /// client's reclaimable share returns to the embedded central cache.
  void enable_membership(const core::MembershipConfig& config,
                         int n_clients);

  NodeId id() const { return id_; }
  const hierarchy::PoddServerLogic& logic() const { return logic_; }
  double cache_watts() const { return logic_.central().cache_watts(); }
  const net::SerialServerStats& service_stats() const {
    return service_.stats();
  }

 private:
  void process(const net::Message& msg);
  void membership_tick(common::Ticks now);
  /// Broadcast the learned CapAssignments exactly once, as soon as the
  /// profiling window closes — whether the closing event was the final
  /// ProfileReport or the expiry of a dead node's stale reports.
  void maybe_send_assignments();

  sim::Simulator& sim_;
  net::Network& net_;
  NodeId id_;
  hierarchy::PoddServerLogic logic_;
  net::SerialServer service_;
  ClusterMetrics& metrics_;
  /// At-most-once window over donations and requests; shared with the
  /// service's overflow drop handler so a queued copy of a stranded
  /// donation is recognised as a duplicate (and vice versa).
  core::TxnWindow txn_window_;
  std::optional<core::FailureDetector> detector_;
  std::optional<sim::PeriodicTask> detector_task_;
  std::vector<core::MembershipTransition> transitions_;
  bool alive_ = true;
  bool assignments_sent_ = false;
};

/// The central power server, parked behind the serial-service queue that
/// produces the paper's 80–100 µs per-request behaviour and its
/// saturation knee.
class CentralServerActor {
 public:
  CentralServerActor(sim::Simulator& sim, net::Network& net, NodeId id,
                     const central::ServerConfig& config,
                     const net::SerialServerConfig& service,
                     ClusterMetrics& metrics);

  /// Fault injection for Figure 3: the node dies; queued and future
  /// messages are lost (donation watts in them are stranded).
  void kill();
  bool alive() const { return alive_; }

  /// SLURM-analogue membership (the dead-client reclamation path the
  /// paper's comparison lacks): the server watches client heartbeats;
  /// a client declared dead has its seized share and stranded watts
  /// returned to the server budget via ServerLogic::reclaim. A client
  /// rejoining at a higher incarnation is readmitted implicitly — its
  /// urgent requests draw fair share back out of the cache.
  void enable_membership(const core::MembershipConfig& config,
                         int n_clients);

  NodeId id() const { return id_; }
  const central::ServerLogic& logic() const { return logic_; }
  double cache_watts() const { return logic_.cache_watts(); }
  const net::SerialServerStats& service_stats() const {
    return service_.stats();
  }

 private:
  void process(const net::Message& msg);
  void membership_tick(common::Ticks now);

  sim::Simulator& sim_;
  net::Network& net_;
  NodeId id_;
  central::ServerLogic logic_;
  net::SerialServer service_;
  ClusterMetrics& metrics_;
  /// See HierarchicalServerActor::txn_window_.
  core::TxnWindow txn_window_;
  std::optional<core::FailureDetector> detector_;
  std::optional<sim::PeriodicTask> detector_task_;
  std::vector<core::MembershipTransition> transitions_;
  bool alive_ = true;
};

}  // namespace penelope::cluster
