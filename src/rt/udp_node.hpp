// Penelope over real UDP sockets.
//
// The discrete-event cluster and the in-process ThreadCluster prove the
// protocol; this driver proves the *deployment path*: each node owns a
// UDP socket (loopback in tests, any interface in a real cluster), the
// wire format is net/codec.hpp, requests go to a random peer's
// (address, port), and grants come back to the requester's socket. The
// decider/pool logic is the same core/ code the other two drivers use —
// §3.3's claim that Penelope only needs a power interface and a message
// channel, made concrete.
//
// Thread structure per node:
//   * receiver thread — blocking recvfrom (with a short timeout so stop
//     requests are honoured); decodes packets; PowerRequests are served
//     against the pool and answered inline; PowerGrants are routed to
//     the decider thread through a mailbox.
//   * decider thread — wall-clock periodic control loop, identical in
//     shape to rt::ThreadCluster's.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "core/decider.hpp"
#include "core/pool.hpp"
#include "core/txn_window.hpp"
#include "net/codec.hpp"
#include "power/simulated_rapl.hpp"
#include "rt/mailbox.hpp"
#include "rt/thread_cluster.hpp"

namespace penelope::rt {

struct UdpNodeConfig {
  int id = 0;
  /// Port to bind on 127.0.0.1; 0 lets the kernel pick (read it back
  /// via port()).
  std::uint16_t port = 0;
  double initial_cap_watts = 120.0;
  double epsilon_watts = 5.0;
  common::Ticks period = common::from_millis(20);
  common::Ticks request_timeout = common::from_millis(20);
  core::PoolConfig pool;
  power::SafeRange safe_range{.min_watts = 40.0, .max_watts = 250.0};
  double idle_watts = 40.0;
  double rapl_tau_seconds = 0.02;
  /// Transaction flight-recorder ring size; 0 disables the journal.
  std::size_t flight_recorder_capacity = 0;
  /// Send a membership Heartbeat beacon to every peer each period and
  /// track peer incarnations on receive (PROTOCOL.md "Membership and
  /// incarnations"). Off by default: heartbeats add a datagram per peer
  /// per period, and the pre-membership tests pin packet counts.
  bool heartbeats = false;
  /// TEST-ONLY wire-corruption nemesis: probability that an outgoing
  /// frame has one random bit flipped after encoding. The FNV-1a frame
  /// checksum guarantees the receiver detects and drops every such
  /// frame, so any watts the frame carried are stranded — tracked in
  /// corrupt_stranded_watts so conservation stays checkable:
  ///   total_live + corrupt_stranded == budget.
  double corrupt_probability = 0.0;
  std::uint64_t seed = 42;
};

struct UdpPeer {
  int id = 0;
  std::uint16_t port = 0;  ///< on 127.0.0.1
};

struct UdpNodeReport {
  int id = 0;
  double final_cap = 0.0;
  double final_pool = 0.0;
  std::uint64_t grants_received = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t packets_received = 0;
  std::uint64_t decode_failures = 0;
  /// Datagrams rejected by the checked frame decoder (bad magic, bad
  /// checksum, truncated, unknown tag, malformed body). Hostile or
  /// bit-flipped traffic lands here instead of aborting the node.
  std::uint64_t udp_malformed_dropped = 0;
  /// Outgoing frames the corruption nemesis bit-flipped (test-only).
  std::uint64_t frames_corrupted = 0;
  /// Watts carried by corrupted grant frames: guaranteed dropped by the
  /// receiver's checksum, so they leave the live ledger. Conservation
  /// under corruption: sum(cap + pool) + sum(corrupt_stranded) == budget.
  double corrupt_stranded_watts = 0.0;
  /// Redelivered datagrams refused by the receive-side TxnWindows. UDP
  /// genuinely duplicates, so this can be nonzero on a healthy run.
  std::uint64_t duplicates_dropped = 0;
  /// Membership beacons decoded by the receiver (0 unless peers run
  /// with heartbeats enabled).
  std::uint64_t heartbeats_received = 0;
  /// Beacons naming an incarnation older than the highest seen for that
  /// peer: quarantined (counted, otherwise ignored) so a reordered
  /// pre-crash beacon can never pass for fresh liveness evidence.
  std::uint64_t stale_heartbeats = 0;
  /// This node's crash counter: 1 + the number of crash_restart()s.
  std::uint32_t incarnation = 1;
  core::DeciderStats decider;
};

class UdpPenelopeNode {
 public:
  /// Binds the socket immediately; throws nothing — check ok().
  UdpPenelopeNode(UdpNodeConfig config,
                  std::vector<DemandPhase> demand_script);
  ~UdpPenelopeNode();

  UdpPenelopeNode(const UdpPenelopeNode&) = delete;
  UdpPenelopeNode& operator=(const UdpPenelopeNode&) = delete;

  /// False if the socket could not be created/bound (report via
  /// error()).
  bool ok() const { return fd_ >= 0; }
  const std::string& error() const { return error_; }

  /// The actually bound port (after kernel assignment for port 0).
  std::uint16_t port() const { return bound_port_; }
  int id() const { return config_.id; }

  /// Must be called before start(); peers may not include this node.
  void set_peers(std::vector<UdpPeer> peers);

  /// Launch receiver + decider threads.
  void start();

  /// Stop the decider (no new requests); the receiver keeps banking
  /// late grants until stop_receiver().
  void stop_decider();
  void stop_receiver();

  /// Simulate a process crash followed by an immediate restart: the
  /// receiver thread wipes its volatile state at the next datagram
  /// boundary — both TxnWindows reset (the at-most-once history is
  /// gone, exactly what a real restart loses), grants queued for the
  /// dead decider incarnation drain into the pool (self-reclaim, so
  /// conservation holds), and the incarnation bumps. Subsequent
  /// heartbeats advertise the new incarnation; peers quarantine any
  /// stale pre-crash beacon still floating in the kernel's buffers.
  /// Safe to call from any thread while the node is running.
  void crash_restart();
  std::uint32_t incarnation() const {
    return incarnation_.load(std::memory_order_acquire);
  }

  UdpNodeReport report() const;
  double cap() const { return decider_.cap(); }
  double pool_watts() const { return pool_.available(); }

  /// This node's registry snapshot (counters labeled with its id).
  std::vector<telemetry::MetricSample> metrics_snapshot() const {
    return registry_.snapshot();
  }
  const telemetry::FlightRecorder& flight_recorder() const {
    return recorder_;
  }

 private:
  void receiver_loop(std::stop_token stop);
  void decider_loop(std::stop_token stop);
  bool send_to_port(std::uint16_t port,
                    const std::vector<std::uint8_t>& bytes);
  /// Encode `payload` as a checksummed frame and send it; applies the
  /// corruption nemesis when armed. `rng` must belong to the calling
  /// thread. `watts_at_risk` is the power this frame carries: if the
  /// frame is corrupted (and the syscall still succeeds) those watts are
  /// charged to the stranded ledger, because the receiver's checksum is
  /// guaranteed to reject the frame.
  bool send_frame(std::uint16_t port, const net::WirePayload& payload,
                  common::Rng& rng, double watts_at_risk);

  UdpNodeConfig config_;
  std::vector<DemandPhase> script_;
  std::vector<UdpPeer> peers_;
  int fd_ = -1;
  std::uint16_t bound_port_ = 0;
  std::string error_;

  power::SimulatedRapl rapl_;
  core::PowerPool pool_;
  core::Decider decider_;
  Mailbox<core::PowerGrant> grant_box_;
  common::Rng rng_;
  /// Corruption-nemesis draws for frames sent from the receiver thread
  /// (grant replies); rng_ covers the decider thread's sends. Two
  /// streams so the threads never share an Rng.
  common::Rng rx_rng_;
  /// Watts stranded by corrupted grant frames (receiver + decider
  /// threads both send grants' worth of power, so this is atomic).
  std::atomic<double> corrupt_stranded_{0.0};
  /// At-most-once receive windows, both owned by the receiver thread:
  /// every datagram — request or grant — is deduplicated before it can
  /// touch the pool or reach the decider's mailbox.
  core::TxnWindow request_window_;
  core::TxnWindow grant_window_;
  /// Highest incarnation heard per peer; receiver-thread owned.
  std::map<std::int32_t, std::uint32_t> peer_incarnations_;
  /// Crash counter; bumped by the receiver thread when it executes a
  /// crash_restart() request, read by the decider when beaconing.
  std::atomic<std::uint32_t> incarnation_{1};
  std::atomic<bool> crash_requested_{false};

  /// Registry-backed counters (receiver + decider threads update them
  /// lock-free; snapshot aggregates the shards).
  telemetry::MetricsRegistry registry_{telemetry::Concurrency::kSharded};
  telemetry::FlightRecorder recorder_;
  telemetry::Counter grants_received_;
  telemetry::Counter timeouts_;
  telemetry::Counter packets_received_;
  telemetry::Counter decode_failures_;
  telemetry::Counter duplicates_dropped_;
  telemetry::Counter heartbeats_received_;
  telemetry::Counter stale_heartbeats_;
  telemetry::Counter malformed_dropped_;
  telemetry::Counter frames_corrupted_;

  std::jthread receiver_thread_;
  std::jthread decider_thread_;
};

/// Convenience harness: N loopback nodes wired together, run for a wall
/// duration with the usual donor/hungry demand split semantics.
class UdpCluster {
 public:
  UdpCluster(int n_nodes, const UdpNodeConfig& base_config,
             std::vector<std::vector<DemandPhase>> demand_scripts);

  bool ok() const;

  /// Start everything, sleep `duration`, stop deciders, give late
  /// grants a grace window, stop receivers.
  void run_for(common::Ticks duration);

  std::vector<UdpNodeReport> reports() const;
  double total_live_watts() const;
  double budget() const;
  /// Sum of every node's corrupt-stranded ledger; under the corruption
  /// nemesis, total_live_watts() + corrupt_stranded_watts() == budget().
  double corrupt_stranded_watts() const;

  /// Direct node access, e.g. to inject a crash_restart() mid-run.
  UdpPenelopeNode& node(int i) {
    return *nodes_.at(static_cast<std::size_t>(i));
  }

  /// Every node's registry snapshot merged into one sample vector;
  /// series stay distinct through their `node` label, so the merged
  /// vector renders to duplicate-free Prometheus text.
  std::vector<telemetry::MetricSample> metrics_snapshot() const;
  /// Every node's flight journal merged, sorted by timestamp.
  std::vector<telemetry::TxnRecord> flight_records() const;

 private:
  double initial_cap_;
  std::vector<std::unique_ptr<UdpPenelopeNode>> nodes_;
};

}  // namespace penelope::rt
