// Bounded multi-producer / multi-consumer mailbox for the real-thread
// runtime. Condition-variable waits are always predicated (Core
// Guidelines CP.42), close() wakes every waiter, and the queue is bounded
// so a stalled consumer applies backpressure instead of growing without
// limit.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace penelope::rt {

template <typename T>
class Mailbox {
 public:
  explicit Mailbox(std::size_t capacity = 1024) : capacity_(capacity) {}

  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Blocking push; returns false if the mailbox closed while waiting.
  bool push(T value) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock,
                   [this] { return closed_ || queue_.size() < capacity_; });
    if (closed_) return false;
    queue_.push_back(std::move(value));
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; returns false when full or closed. Used where
  /// drop-on-overload is the intended semantics (mirrors the simulated
  /// SerialServer's bounded inbox).
  bool try_push(T value) {
    std::scoped_lock lock(mutex_);
    if (closed_ || queue_.size() >= capacity_) return false;
    queue_.push_back(std::move(value));
    not_empty_.notify_one();
    return true;
  }

  /// Blocking pop; empty optional means the mailbox closed and drained.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [this] { return closed_ || !queue_.empty(); });
    return take_locked();
  }

  /// Pop with timeout; empty optional on timeout or closed-and-drained.
  template <typename Rep, typename Period>
  std::optional<T> pop_for(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock lock(mutex_);
    not_empty_.wait_for(lock, timeout,
                        [this] { return closed_ || !queue_.empty(); });
    return take_locked();
  }

  /// Pop with an absolute deadline — the mailbox mirror of the
  /// simulator's run_until(). Timeout loops that race a reply against a
  /// fixed deadline wait against the deadline directly instead of
  /// re-computing a shrinking relative timeout on every wakeup.
  template <typename ClockT, typename Duration>
  std::optional<T> pop_until(
      std::chrono::time_point<ClockT, Duration> deadline) {
    std::unique_lock lock(mutex_);
    not_empty_.wait_until(lock, deadline,
                          [this] { return closed_ || !queue_.empty(); });
    return take_locked();
  }

  /// Non-blocking pop; the mirror of try_push. Empty optional when the
  /// mailbox is empty (closed or not).
  std::optional<T> try_pop() {
    std::scoped_lock lock(mutex_);
    return take_locked();
  }

  /// Close the mailbox: pending items remain poppable, pushes fail, and
  /// all waiters wake.
  void close() {
    std::scoped_lock lock(mutex_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::scoped_lock lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::scoped_lock lock(mutex_);
    return queue_.size();
  }

 private:
  std::optional<T> take_locked() {
    if (queue_.empty()) return std::nullopt;
    T value = std::move(queue_.front());
    queue_.pop_front();
    not_full_.notify_one();
    return value;
  }

  std::size_t capacity_;
  mutable std::mutex mutex_;  // guards queue_ and closed_
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> queue_;
  bool closed_ = false;
};

}  // namespace penelope::rt
