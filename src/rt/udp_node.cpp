#include "rt/udp_node.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/check.hpp"
#include "common/log.hpp"
#include "net/codec.hpp"

namespace penelope::rt {

namespace {
using Clock = std::chrono::steady_clock;

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}
}  // namespace

UdpPenelopeNode::UdpPenelopeNode(UdpNodeConfig config,
                                 std::vector<DemandPhase> demand_script)
    : config_(config),
      script_(std::move(demand_script)),
      rapl_([&] {
        power::SimulatedRaplConfig rc;
        rc.safe_range = config.safe_range;
        rc.tau_seconds = config.rapl_tau_seconds;
        rc.idle_watts = config.idle_watts;
        rc.initial_cap_watts = config.initial_cap_watts;
        rc.initial_demand_watts = script_.empty()
                                      ? config.idle_watts
                                      : script_.front().demand_watts;
        rc.seed = config.seed ^ 0x2545f491ULL;
        return rc;
      }()),
      pool_(config.pool),
      decider_([&] {
        core::DeciderConfig dc;
        dc.initial_cap_watts = config.initial_cap_watts;
        dc.epsilon_watts = config.epsilon_watts;
        dc.safe_range = config.safe_range;
        dc.txn_node = config.id;
        return dc;
      }(), pool_),
      rng_(config.seed ^ (0x9e3779b9ULL * (config.id + 1))),
      rx_rng_(config.seed ^ (0x85ebca6bULL * (config.id + 1))) {
  if (config_.flight_recorder_capacity > 0)
    recorder_.enable(config_.flight_recorder_capacity);
  telemetry::Labels labels{{"node", std::to_string(config_.id)}};
  grants_received_ =
      registry_.counter("udp_grants_applied_total", labels,
                        "peer grants applied by the decider");
  timeouts_ = registry_.counter("udp_timeouts_total", labels,
                                "requests resolved by timeout");
  packets_received_ = registry_.counter(
      "udp_packets_received_total", labels, "datagrams received");
  decode_failures_ = registry_.counter(
      "udp_decode_failures_total", labels, "undecodable datagrams");
  duplicates_dropped_ =
      registry_.counter("udp_duplicates_dropped_total", labels,
                        "redeliveries rejected by a TxnWindow");
  heartbeats_received_ =
      registry_.counter("udp_heartbeats_received_total", labels,
                        "membership beacons decoded");
  stale_heartbeats_ =
      registry_.counter("udp_stale_heartbeats_total", labels,
                        "beacons quarantined for an old incarnation");
  malformed_dropped_ =
      registry_.counter("udp_malformed_dropped_total", labels,
                        "datagrams rejected by the frame checksum layer");
  frames_corrupted_ =
      registry_.counter("udp_frames_corrupted_total", labels,
                        "outgoing frames bit-flipped by the nemesis");
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) {
    error_ = std::string("socket: ") + std::strerror(errno);
    return;
  }
  int reuse = 1;
  (void)::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof reuse);
  // A receive timeout lets the receiver thread poll its stop token.
  timeval timeout{};
  timeout.tv_usec = 20'000;  // 20 ms
  (void)::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout,
                     sizeof timeout);

  sockaddr_in addr = loopback_addr(config_.port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    error_ = std::string("bind: ") + std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    return;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    bound_port_ = ntohs(bound.sin_port);
  }
}

UdpPenelopeNode::~UdpPenelopeNode() {
  stop_decider();
  stop_receiver();
  if (fd_ >= 0) ::close(fd_);
}

void UdpPenelopeNode::set_peers(std::vector<UdpPeer> peers) {
  for (const auto& peer : peers) {
    PEN_CHECK_MSG(peer.id != config_.id, "a node cannot peer with itself");
  }
  peers_ = std::move(peers);
}

void UdpPenelopeNode::start() {
  PEN_CHECK(ok());
  PEN_CHECK_MSG(!peers_.empty(), "set_peers before start");
  receiver_thread_ =
      std::jthread([this](std::stop_token st) { receiver_loop(st); });
  decider_thread_ =
      std::jthread([this](std::stop_token st) { decider_loop(st); });
}

void UdpPenelopeNode::stop_decider() {
  if (decider_thread_.joinable()) {
    decider_thread_.request_stop();
    grant_box_.close();
    decider_thread_.join();
  }
}

void UdpPenelopeNode::stop_receiver() {
  if (receiver_thread_.joinable()) {
    receiver_thread_.request_stop();
    receiver_thread_.join();
  }
}

bool UdpPenelopeNode::send_to_port(
    std::uint16_t port, const std::vector<std::uint8_t>& bytes) {
  sockaddr_in addr = loopback_addr(port);
  ssize_t sent =
      ::sendto(fd_, bytes.data(), bytes.size(), 0,
               reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  return sent == static_cast<ssize_t>(bytes.size());
}

bool UdpPenelopeNode::send_frame(std::uint16_t port,
                                 const net::WirePayload& payload,
                                 common::Rng& rng, double watts_at_risk) {
  std::vector<std::uint8_t> bytes = net::encode_frame(payload);
  bool corrupted = false;
  if (config_.corrupt_probability > 0.0 &&
      rng.chance(config_.corrupt_probability)) {
    // One random bit flip anywhere in the frame. The FNV-1a checksum
    // (bijective per-byte step) detects every single-bit flip, so the
    // receiver is guaranteed to drop this frame.
    std::size_t byte = rng.next_below(
        static_cast<std::uint32_t>(bytes.size()));
    bytes[byte] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
    corrupted = true;
  }
  bool sent = send_to_port(port, bytes);
  if (corrupted && sent) {
    frames_corrupted_.inc();
    if (watts_at_risk > 0.0) {
      // The grant left this node's ledger (pool_.serve debited it) and
      // will never arrive: charge the stranded ledger so the cluster's
      // conservation identity stays exact.
      double prev = corrupt_stranded_.load(std::memory_order_relaxed);
      while (!corrupt_stranded_.compare_exchange_weak(
          prev, prev + watts_at_risk, std::memory_order_relaxed)) {
      }
    }
  }
  return sent;
}

void UdpPenelopeNode::crash_restart() {
  crash_requested_.store(true, std::memory_order_release);
}

void UdpPenelopeNode::receiver_loop(std::stop_token stop) {
  common::set_log_node(config_.id);
  std::uint8_t buffer[256];
  while (!stop.stop_requested()) {
    if (crash_requested_.exchange(false, std::memory_order_acq_rel)) {
      // The restart wipes everything a process loses: the at-most-once
      // windows and the peers this receiver had vouched for. Grants
      // already queued for the decider belong to the dead incarnation;
      // they self-reclaim into the pool so no watts vanish.
      request_window_.reset();
      grant_window_.reset();
      peer_incarnations_.clear();
      while (auto grant = grant_box_.try_pop()) {
        if (grant->watts > 0.0) pool_.deposit(grant->watts);
      }
      incarnation_.fetch_add(1, std::memory_order_acq_rel);
    }
    sockaddr_in from{};
    socklen_t from_len = sizeof from;
    ssize_t received =
        ::recvfrom(fd_, buffer, sizeof buffer, 0,
                   reinterpret_cast<sockaddr*>(&from), &from_len);
    if (received < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
        continue;  // timeout: re-check the stop token
      }
      PEN_LOG_WARN("udp node %d: recvfrom: %s", config_.id,
                   std::strerror(errno));
      continue;
    }
    packets_received_.inc();

    net::CheckedDecode checked =
        net::decode_checked(buffer, static_cast<std::size_t>(received));
    if (!checked) {
      // Hostile or bit-flipped bytes: drop, count, keep serving. A real
      // fault storm can burst this path, so the warning is rate-limited.
      malformed_dropped_.inc();
      decode_failures_.inc();
      PEN_LOG_WARN_RATED(64,
                         "udp node %d: dropping malformed datagram "
                         "(%s, %zd bytes)",
                         config_.id,
                         net::decode_error_name(checked.error), received);
      continue;
    }
    auto& payload = checked.payload;

    if (const auto* request = std::get_if<core::PowerRequest>(&*payload)) {
      if (!request_window_.insert(request->txn_id)) {
        // Redelivered request: the first copy's grant already answered
        // this transaction; serving again would debit the pool twice.
        duplicates_dropped_.inc();
        recorder_.record(wall_ticks(), request->txn_id,
                         telemetry::TxnEventKind::kDuplicateDropped,
                         config_.id, -1, 0.0);
        continue;
      }
      double granted = pool_.serve(*request);
      recorder_.record(wall_ticks(), request->txn_id,
                       telemetry::TxnEventKind::kRequestServed, config_.id,
                       -1, granted);
      core::PowerGrant grant{granted, request->txn_id};
      if (!send_frame(ntohs(from.sin_port), net::WirePayload{grant},
                      rx_rng_, granted) &&
          granted > 0.0) {
        // Could not answer: the watts must not vanish.
        pool_.deposit(granted);
        recorder_.record(wall_ticks(), request->txn_id,
                         telemetry::TxnEventKind::kBanked, config_.id, -1,
                         granted);
      }
    } else if (const auto* grant =
                   std::get_if<core::PowerGrant>(&*payload)) {
      if (!grant_window_.insert(grant->txn_id)) {
        // Redelivered grant: already applied by the decider or banked.
        duplicates_dropped_.inc();
        recorder_.record(wall_ticks(), grant->txn_id,
                         telemetry::TxnEventKind::kDuplicateDropped,
                         config_.id, -1, grant->watts);
        continue;
      }
      if (!grant_box_.try_push(*grant) && grant->watts > 0.0) {
        // Decider gone or box full: bank the power locally.
        pool_.deposit(grant->watts);
        recorder_.record(wall_ticks(), grant->txn_id,
                         telemetry::TxnEventKind::kBanked, config_.id, -1,
                         grant->watts);
      }
    } else if (const auto* beat =
                   std::get_if<core::Heartbeat>(&*payload)) {
      heartbeats_received_.inc();
      auto [it, inserted] =
          peer_incarnations_.try_emplace(beat->node, beat->incarnation);
      if (!inserted) {
        if (beat->incarnation < it->second) {
          // Reordered pre-crash beacon: quarantined, not evidence.
          stale_heartbeats_.inc();
        } else {
          it->second = beat->incarnation;
        }
      }
    } else {
      decode_failures_.inc();
    }
  }
}

void UdpPenelopeNode::decider_loop(std::stop_token stop) {
  common::set_log_node(config_.id);
  const common::Ticks start = wall_ticks();
  std::size_t phase_idx = 0;
  common::Ticks phase_start = start;
  if (!script_.empty()) {
    rapl_.set_demand(script_.front().demand_watts, start);
  }
  rapl_.set_cap(decider_.cap());

  common::Ticks next_tick = start + config_.period;
  while (!stop.stop_requested()) {
    std::this_thread::sleep_until(Clock::now() +
                                  std::chrono::microseconds(
                                      next_tick - wall_ticks()));
    if (stop.stop_requested()) break;
    common::Ticks now = wall_ticks();

    if (config_.heartbeats) {
      // Liveness beacon naming this node's current incarnation; fire
      // and forget — a lost beacon just means one more missed period on
      // the peers' suspicion clocks.
      net::WirePayload beacon{core::Heartbeat{
          config_.id, incarnation_.load(std::memory_order_acquire)}};
      for (const auto& peer : peers_) {
        (void)send_frame(peer.port, beacon, rng_, 0.0);
      }
    }

    while (phase_idx + 1 < script_.size() &&
           now - phase_start >= script_[phase_idx].duration) {
      phase_start += script_[phase_idx].duration;
      ++phase_idx;
      rapl_.set_demand(script_[phase_idx].demand_watts, now);
    }

    double avg_power = rapl_.read_average_power(now);
    core::StepOutcome outcome = decider_.begin_step(avg_power);
    rapl_.set_cap(decider_.cap());

    if (outcome.kind == core::StepKind::kNeedsPeer) {
      const UdpPeer& peer = peers_[rng_.next_below(
          static_cast<std::uint32_t>(peers_.size()))];
      bool matched = false;
      if (send_frame(peer.port, net::WirePayload{outcome.request}, rng_,
                     0.0)) {
        recorder_.record(wall_ticks(), outcome.request.txn_id,
                         telemetry::TxnEventKind::kRequestSent, config_.id,
                         peer.id, outcome.request.alpha_watts);
        const auto deadline = Clock::now() + std::chrono::microseconds(
                                                 config_.request_timeout);
        while (!matched) {
          std::optional<core::PowerGrant> grant =
              grant_box_.pop_until(deadline);
          if (!grant) break;  // deadline passed or mailbox closed
          if (grant->txn_id == outcome.request.txn_id) {
            decider_.complete_peer_grant(grant->watts);
            grants_received_.inc();
            recorder_.record(wall_ticks(), grant->txn_id,
                             telemetry::TxnEventKind::kGrantReceived,
                             config_.id, peer.id, grant->watts);
            matched = true;
          } else if (grant->watts > 0.0) {
            pool_.deposit(grant->watts);  // stale round: bank it
            recorder_.record(wall_ticks(), grant->txn_id,
                             telemetry::TxnEventKind::kBanked, config_.id,
                             -1, grant->watts);
          }
        }
      }
      if (!matched) {
        decider_.complete_peer_grant(0.0);
        timeouts_.inc();
        recorder_.record(wall_ticks(), outcome.request.txn_id,
                         telemetry::TxnEventKind::kTimeout, config_.id,
                         peer.id, 0.0);
      }
      rapl_.set_cap(decider_.cap());
    }

    decider_.finish_step();
    rapl_.set_cap(decider_.cap());
    next_tick += config_.period;
  }

  // Drain any grants still queued for us into the pool so shutdown
  // conserves power.
  while (auto grant = grant_box_.try_pop()) {
    if (grant->watts > 0.0) pool_.deposit(grant->watts);
  }
}

UdpNodeReport UdpPenelopeNode::report() const {
  UdpNodeReport report;
  report.id = config_.id;
  report.final_cap = decider_.cap();
  report.final_pool = pool_.available();
  report.grants_received = grants_received_.value();
  report.timeouts = timeouts_.value();
  report.packets_received = packets_received_.value();
  report.decode_failures = decode_failures_.value();
  report.duplicates_dropped = duplicates_dropped_.value();
  report.heartbeats_received = heartbeats_received_.value();
  report.stale_heartbeats = stale_heartbeats_.value();
  report.udp_malformed_dropped = malformed_dropped_.value();
  report.frames_corrupted = frames_corrupted_.value();
  report.corrupt_stranded_watts =
      corrupt_stranded_.load(std::memory_order_relaxed);
  report.incarnation = incarnation_.load(std::memory_order_acquire);
  report.decider = decider_.stats();
  return report;
}

// ---------------------------------------------------------------------------
// UdpCluster

UdpCluster::UdpCluster(int n_nodes, const UdpNodeConfig& base_config,
                       std::vector<std::vector<DemandPhase>> scripts)
    : initial_cap_(base_config.initial_cap_watts) {
  PEN_CHECK(n_nodes >= 2);
  PEN_CHECK(scripts.size() == static_cast<std::size_t>(n_nodes));
  for (int i = 0; i < n_nodes; ++i) {
    UdpNodeConfig config = base_config;
    config.id = i;
    config.port = 0;  // kernel-assigned
    config.seed = base_config.seed + static_cast<std::uint64_t>(i);
    nodes_.push_back(std::make_unique<UdpPenelopeNode>(
        config, std::move(scripts[static_cast<std::size_t>(i)])));
  }
  // Exchange the kernel-assigned ports.
  std::vector<UdpPeer> all;
  for (const auto& node : nodes_) {
    all.push_back(UdpPeer{node->id(), node->port()});
  }
  for (auto& node : nodes_) {
    std::vector<UdpPeer> peers;
    for (const auto& peer : all) {
      if (peer.id != node->id()) peers.push_back(peer);
    }
    node->set_peers(std::move(peers));
  }
}

bool UdpCluster::ok() const {
  for (const auto& node : nodes_) {
    if (!node->ok()) return false;
  }
  return true;
}

void UdpCluster::run_for(common::Ticks duration) {
  for (auto& node : nodes_) node->start();
  std::this_thread::sleep_for(std::chrono::microseconds(duration));
  // Two-phase shutdown: deciders stop issuing requests, receivers keep
  // answering/banking for a grace window so in-flight grants land, then
  // everything stops.
  for (auto& node : nodes_) node->stop_decider();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  for (auto& node : nodes_) node->stop_receiver();
}

std::vector<UdpNodeReport> UdpCluster::reports() const {
  std::vector<UdpNodeReport> reports;
  for (const auto& node : nodes_) reports.push_back(node->report());
  return reports;
}

double UdpCluster::total_live_watts() const {
  double total = 0.0;
  for (const auto& node : nodes_) {
    total += node->cap() + node->pool_watts();
  }
  return total;
}

double UdpCluster::budget() const {
  return initial_cap_ * static_cast<double>(nodes_.size());
}

double UdpCluster::corrupt_stranded_watts() const {
  double total = 0.0;
  for (const auto& node : nodes_) {
    total += node->report().corrupt_stranded_watts;
  }
  return total;
}

std::vector<telemetry::MetricSample> UdpCluster::metrics_snapshot() const {
  std::vector<telemetry::MetricSample> merged;
  for (const auto& node : nodes_) {
    auto samples = node->metrics_snapshot();
    merged.insert(merged.end(),
                  std::make_move_iterator(samples.begin()),
                  std::make_move_iterator(samples.end()));
  }
  return merged;
}

std::vector<telemetry::TxnRecord> UdpCluster::flight_records() const {
  std::vector<telemetry::TxnRecord> merged;
  for (const auto& node : nodes_) {
    auto records = node->flight_recorder().snapshot();
    merged.insert(merged.end(), records.begin(), records.end());
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const telemetry::TxnRecord& a,
                      const telemetry::TxnRecord& b) { return a.at < b.at; });
  return merged;
}

}  // namespace penelope::rt
